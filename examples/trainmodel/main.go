// Trainmodel: the end-to-end PMM pipeline at demo scale — harvest a
// mutation dataset from the kernel (§3.1), train the Program Mutation Model
// (§3.3), and compare its argument-selection accuracy against the random
// baseline (Table 1).
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

func main() {
	k := kernel.MustBuild("6.8")
	an := cfa.New(k)
	fmt.Println(k)

	// 1. Harvest successful argument mutations by random search.
	g := prog.NewGenerator(k.Target)
	r := rng.New(11)
	bases := make([]*prog.Prog, 60)
	for i := range bases {
		bases[i] = g.Generate(r, 2+r.Intn(3))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = 150
	fmt.Printf("harvesting: %d bases x %d mutations...\n", len(bases), c.MutationsPerBase)
	ds, stats := c.Collect(rng.New(12), bases)
	fmt.Printf("successful mutations: %d/%d (%.1f per 1000; paper ~45)\n",
		stats.Successful, stats.Mutations, 1000*float64(stats.Successful)/float64(stats.Mutations))
	fmt.Printf("training examples: %d\n", ds.Len())

	// 2. Train PMM.
	train, val, eval := ds.Split(0.8, 0.1)
	if eval.Len() == 0 {
		eval = val
	}
	b := qgraph.NewBuilder(k, an)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = 6
	tcfg.Quiet = false
	tcfg.Log = os.Stdout
	fmt.Printf("training on %d examples...\n", train.Len())
	m, report := pmm.Train(b, pmm.DefaultConfig(), tcfg, train, val)
	fmt.Printf("tuned decision threshold: %.2f\n", report.Threshold)

	// 3. Evaluate against the Rand.8 baseline (Table 1).
	fmt.Printf("\nPMM:    %v\n", pmm.Evaluate(m, b, eval))
	fmt.Printf("Rand.8: %v\n", pmm.EvaluateRandomK(rng.New(13), b, eval, 8))
	fmt.Println("(paper: PMM F1 84.2% vs Rand.8 30.3%; at demo scale expect a smaller gap, same ordering)")

	// 4. Persist and reload the checkpoint.
	f, err := os.CreateTemp("", "pmm-*.model")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := m.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	if _, err := pmm.Load(rf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint round-trip OK: %s\n", f.Name())
}
