// Crashhunt: a bug-finding campaign with full triage — fuzz the kernel,
// filter and deduplicate crash reports, check the simulated Syzbot known
// list, extract minimized reproducers (syz-repro), and symbolize the crash
// locations (syz-symbolize), as in §5.3.2.
package main

import (
	"fmt"
	"log"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/crash"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

func main() {
	k := kernel.MustBuild("6.8")
	an := cfa.New(k)
	fmt.Println(k)

	// Fuzz with a generous budget; the baseline mode suffices to find the
	// shallow known bugs and some new ones.
	g := prog.NewGenerator(k.Target)
	r := rng.New(3)
	var seeds []*prog.Prog
	for i := 0; i < 20; i++ {
		seeds = append(seeds, g.Generate(r, 3+r.Intn(3)))
	}
	fmt.Println("\nfuzzing (this takes a few seconds)...")
	stats, err := fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: 3, Budget: 4_000_000, SeedCorpus: seeds,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executions: %d, edges: %d, unique crashes: %d\n",
		stats.Executions, stats.FinalEdges, len(stats.Crashes))

	// Triage.
	tri := crash.NewTriage(k)
	var titles []string
	progOf := map[string]string{}
	for _, c := range stats.Crashes {
		titles = append(titles, c.Spec.Title)
		progOf[c.Spec.Title] = c.ProgText
	}
	summary := tri.Classify(titles)
	fmt.Printf("\ntriage: %d new, %d known (Syzbot list), %d filtered\n",
		len(summary.New), len(summary.KnownOld), len(summary.Filtered))

	shown := 0
	for _, title := range append(summary.New, summary.KnownOld...) {
		if shown >= 5 {
			fmt.Println("  ...")
			break
		}
		shown++
		fmt.Printf("\n== %s ==\n", title)
		fmt.Printf("   category: %s, known: %v\n", crash.Categorize(title), tri.IsKnown(title))
		if loc, ok := tri.Symbolize(title); ok {
			fmt.Printf("   location: %s%s()\n", loc.Path, loc.Fn)
		}
		repro, err := tri.Reproduce(title, progOf[title])
		switch {
		case err != nil:
			fmt.Printf("   repro error: %v\n", err)
		case repro == nil:
			fmt.Printf("   no reproducer (crash did not re-manifest — likely a race)\n")
		default:
			fmt.Printf("   minimized reproducer (%d calls):\n", len(repro.Calls))
			fmt.Print(indent(repro.Serialize()))
		}
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "      " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
