// Quickstart: build a synthetic kernel, execute a hand-written test program
// against it, inspect coverage and the mutation surface, and run a short
// baseline fuzzing session — the minimal tour of the public pieces.
package main

import (
	"fmt"
	"log"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

func main() {
	// 1. Build the deterministic synthetic kernel (Linux-like 6.8).
	k, err := kernel.Build("6.8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k)

	// 2. Write a kernel test in the syz-like text format and parse it.
	test := "r0 = open(\"./file0\", 0x42, 0x1ff)\n" +
		"read(r0, &b\"00ff\", 0x2)\n" +
		"close(r0)\n"
	p, err := prog.Parse(k.Target, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntest program (%d calls, %d mutable argument slots):\n%s",
		len(p.Calls), p.NumSlots(), p.Serialize())

	// 3. Execute it and look at KCOV-style coverage.
	res, err := exec.New(k).Run(p)
	if err != nil {
		log.Fatal(err)
	}
	edges := trace.EdgesOf(res)
	fmt.Printf("\nexecution: %d blocks traced, %d unique edges, crash=%v\n",
		res.Cost, edges.Len(), res.Crash != nil)
	for i, tr := range res.CallTraces {
		fmt.Printf("  call %d (%s): %d blocks\n", i, p.Calls[i].Meta.Name, len(tr))
	}

	// 4. Static analysis: what could a mutation newly reach?
	an := cfa.New(k)
	covered := trace.NewBlockSet(trace.BlocksOf(res))
	alts := an.Frontier(covered)
	fmt.Printf("\nalternative path entries one branch away: %d\n", len(alts))
	for i, alt := range alts {
		if i >= 3 {
			fmt.Println("  ...")
			break
		}
		b := k.Block(alt.Entry)
		fmt.Printf("  block %d in %s/%s (branch %v)\n", alt.Entry, b.Subsystem, b.Fn, k.Block(alt.From).Pred)
	}

	// 5. Fuzz for a short budget with the Syzkaller baseline.
	g := prog.NewGenerator(k.Target)
	r := rng.New(7)
	var seeds []*prog.Prog
	for i := 0; i < 10; i++ {
		seeds = append(seeds, g.Generate(r, 3))
	}
	stats, err := fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: 7, Budget: 300_000, SeedCorpus: seeds,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline fuzzing: %d executions -> %d edges, corpus %d, crashes %d\n",
		stats.Executions, stats.FinalEdges, stats.CorpusSize, len(stats.Crashes))
	fmt.Println("\nnext: examples/trainmodel trains PMM; examples/crashhunt runs the full Snowplow loop.")
}
