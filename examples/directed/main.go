// Directed: reach a specific kernel code location with directed fuzzing —
// first the SyzDirect-style distance-guided fuzzer, then Snowplow-D with a
// freshly trained PMM steering the argument mutations (§5.4).
package main

import (
	"fmt"
	"log"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/directed"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

func main() {
	k := kernel.MustBuild("6.8")
	an := cfa.New(k)
	fmt.Println(k)

	// The target: the deepest branch of the planted ATA out-of-bounds bug
	// chain — reachable only with four correct ioctl argument constraints.
	// The chain's innermost branch is the first one appended to the handler.
	h := k.Handler("ioctl$SCSI_IOCTL_SEND_COMMAND")
	var target kernel.BlockID = -1
	for _, id := range h.Blocks {
		b := k.Block(id)
		if b.Fn == "ata_pio_sector" && b.Kind == kernel.BlockBranch {
			target = id
			break
		}
	}
	if target < 0 {
		log.Fatal("target chain not found")
	}
	fmt.Printf("target: block %d (%s, %s)\n\n", target, k.Block(target).Fn, k.Block(target).Subsystem)

	const budget = 600_000

	// 1. SyzDirect-style directed fuzzing.
	fmt.Println("SyzDirect-style (distance-guided, random argument localization):")
	res, err := directed.New(directed.Config{
		Kernel: k, An: an, Target: target, Seed: 2, Budget: budget,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	// 2. Train a small PMM and run Snowplow-D.
	fmt.Println("\ntraining a small PMM for Snowplow-D...")
	g := prog.NewGenerator(k.Target)
	r := rng.New(5)
	bases := make([]*prog.Prog, 60)
	for i := range bases {
		bases[i] = g.Generate(r, 3+r.Intn(3))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = 150
	ds, _ := c.Collect(rng.New(6), bases)
	train, val, _ := ds.Split(0.9, 0.1)
	b := qgraph.NewBuilder(k, an)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = 6
	m, _ := pmm.Train(b, pmm.DefaultConfig(), tcfg, train, val)
	srv := serve.NewServer(m, b, 4)
	defer srv.Close()

	fmt.Println("Snowplow-D (distance-guided + PMM argument localization):")
	res2, err := directed.New(directed.Config{
		Kernel: k, An: an, Target: target, Seed: 2, Budget: budget, Server: srv,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	report(res2)

	if res.Reached && res2.Reached {
		fmt.Printf("\nspeedup: %.1fx (paper reports 8.5x aggregate on hard targets)\n",
			float64(res.Cost)/float64(res2.Cost))
	}
}

func report(res *directed.Result) {
	if res.Reached {
		fmt.Printf("  reached after cost %d (%d executions)\n", res.Cost, res.Executions)
	} else {
		fmt.Printf("  NOT reached within budget (%d executions)\n", res.Executions)
	}
}
