module github.com/repro/snowplow

go 1.22
