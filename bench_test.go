// Package snowplow's top-level benchmarks regenerate each table and figure
// of the paper's evaluation (see DESIGN.md's experiment index). Macro
// experiments run once per benchmark iteration; the key result values are
// attached as custom benchmark metrics so `go test -bench=.` doubles as the
// reproduction log. Artifacts (kernel, dataset, trained model) are shared
// across benchmarks through one lazily initialized harness.
package snowplow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/experiments"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

var (
	benchOnce    sync.Once
	benchHarness *experiments.Harness
)

// harness returns the shared experiment harness at "quick" scale, with a
// reduced long-campaign budget so the full benchmark suite stays in the
// minutes range.
func harness() *experiments.Harness {
	benchOnce.Do(func() {
		opts := experiments.Quick()
		benchHarness = experiments.NewHarness(opts)
		benchHarness.Log = io.Discard
	})
	return benchHarness
}

// BenchmarkDatasetStats regenerates the §5.1 dataset statistics (arguments
// per test, graph sizes, successful-mutation rate).
func BenchmarkDatasetStats(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.Stats(h)
		b.ReportMetric(res.AvgSlotsPerBase, "args/test")
		b.ReportMetric(res.SuccessPerThousand, "successful/1000")
		b.ReportMetric(res.AvgVertices, "graph-vertices")
		b.ReportMetric(res.AvgEdges, "graph-edges")
	}
}

// BenchmarkTable1PMMAccuracy regenerates Table 1: PMM vs Rand.8 selector
// metrics on the held-out evaluation split.
func BenchmarkTable1PMMAccuracy(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(h)
		b.ReportMetric(res.PMM.F1*100, "PMM-F1-%")
		b.ReportMetric(res.Rand8.F1*100, "Rand8-F1-%")
		b.ReportMetric(res.F1Ratio, "F1-ratio(paper:2.8)")
		b.ReportMetric(res.JaccardRatio, "Jaccard-ratio(paper:3.8)")
	}
}

// BenchmarkFig6Coverage regenerates Figure 6a-d: repeated side-by-side
// coverage runs on kernels 6.8/6.9/6.10 with improvement and speedup.
func BenchmarkFig6Coverage(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(h)
		for _, v := range res.Versions {
			b.ReportMetric(v.ImprovementPct, "improv-%-"+v.Version)
			b.ReportMetric(v.Speedup, "speedup-"+v.Version)
		}
	}
}

// benchCampaign caches the Table-2/3/4 campaign (it is the most expensive
// experiment; three benchmarks report different views of it).
var (
	campaignOnce sync.Once
	campaignRes  experiments.CampaignResult
)

func campaign(b *testing.B) experiments.CampaignResult {
	b.Helper()
	campaignOnce.Do(func() {
		campaignRes = experiments.Campaign(harness(), "6.8")
	})
	return campaignRes
}

// BenchmarkTable2Crashes regenerates Table 2: new vs known crashes found by
// each system in the long campaign.
func BenchmarkTable2Crashes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := campaign(b)
		b.ReportMetric(float64(res.SnowplowNewTotal), "snowplow-new")
		b.ReportMetric(float64(res.SyzkallerNewTotal), "syzkaller-new")
	}
}

// BenchmarkTable3Triage regenerates Table 3: triage of the new crashes by
// manifestation with reproducibility.
func BenchmarkTable3Triage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := campaign(b)
		total := res.ReproducibleCount + res.NoReproCount
		b.ReportMetric(float64(res.ReproducibleCount), "with-repro")
		b.ReportMetric(float64(res.NoReproCount), "no-repro")
		if total > 0 {
			b.ReportMetric(100*float64(res.ReproducibleCount)/float64(total), "repro-%(paper:66)")
		}
	}
}

// BenchmarkTable4Bugs regenerates Table 4: how many of the seven diagnosed
// named bugs the campaign rediscovered.
func BenchmarkTable4Bugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := campaign(b)
		found := 0
		for _, bug := range res.NamedBugs {
			if bug.Found {
				found++
			}
		}
		b.ReportMetric(float64(found), "named-bugs-found/7")
	}
}

// BenchmarkTable5Directed regenerates Table 5: directed fuzzing time-to-
// target, SyzDirect vs Snowplow-D.
func BenchmarkTable5Directed(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(h)
		b.ReportMetric(float64(res.ReachedSyz), "syzdirect-reached")
		b.ReportMetric(float64(res.ReachedSnow), "snowplowD-reached")
		b.ReportMetric(float64(res.ExtraTargets), "extra-targets(paper:2)")
		b.ReportMetric(res.SubtotalSpeedup, "speedup(paper:8.5)")
	}
}

// BenchmarkInferenceThroughput regenerates the §5.5 serving measurements.
func BenchmarkInferenceThroughput(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.Perf(h)
		b.ReportMetric(res.InferenceQPS, "inference-qps")
		b.ReportMetric(float64(res.InferenceLatency.Microseconds()), "latency-us")
		b.ReportMetric(res.ParityPct, "fuzz-tput-parity-%(paper:98)")
	}
}

// BenchmarkFuzzThroughput regenerates the fuzz-throughput half of §5.5:
// tests/second in both modes (paper: 383 vs 390, near parity).
func BenchmarkFuzzThroughput(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		snow, syz := experiments.FuzzThroughput(h)
		b.ReportMetric(snow, "snowplow-tests/s")
		b.ReportMetric(syz, "syzkaller-tests/s")
	}
}

// BenchmarkAblationSwitchEdges measures the representation ablation:
// retraining without kernel-user context-switch edges.
func BenchmarkAblationSwitchEdges(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationSwitchEdges(h)
		b.ReportMetric(res.Full*100, "full-F1-%")
		b.ReportMetric(res.Ablated*100, "ablated-F1-%")
	}
}

// BenchmarkAblationTargetNoise measures §3.1 design option (a) vs (c):
// exact vs noisy target sets.
func BenchmarkAblationTargetNoise(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationTargetNoise(h)
		b.ReportMetric(res.Full*100, "noisy-F1-%")
		b.ReportMetric(res.Ablated*100, "exact-F1-%")
	}
}

// BenchmarkAblationPopularityCap measures §3.1's popular-block capping:
// retraining on an uncapped dataset.
func BenchmarkAblationPopularityCap(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationPopularityCap(h)
		b.ReportMetric(res.Full*100, "capped-F1-%")
		b.ReportMetric(res.Ablated*100, "uncapped-F1-%")
	}
}

// BenchmarkAblationNoise measures the determinism engineering of §3.1: the
// coverage-flip rate with and without the noise model.
func BenchmarkAblationNoise(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationDeterminism(h)
		b.ReportMetric(res.Full*100, "clean-flip-%")
		b.ReportMetric(res.Ablated*100, "noisy-flip-%")
	}
}

// BenchmarkAblationFallback sweeps the Snowplow random-fallback probability.
func BenchmarkAblationFallback(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		sweep := experiments.AblationFallbackSweep(h)
		for j, p := range sweep.Probs {
			b.ReportMetric(float64(sweep.Edges[j]), "edges@p="+fmtProb(p))
		}
	}
}

// BenchmarkAblationSyncInference compares wall-clock fuzzing throughput of
// the asynchronous integration against a synchronous-inference ablation.
func BenchmarkAblationSyncInference(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationSyncInference(h)
		b.ReportMetric(res.AsyncTPS, "async-tests/s")
		b.ReportMetric(res.SyncTPS, "sync-tests/s")
	}
}

func fmtProb(p float64) string {
	switch {
	case p < 0.075:
		return "0.05"
	case p < 0.2:
		return "0.1"
	case p < 0.45:
		return "0.3"
	case p < 0.75:
		return "0.6"
	default:
		return "0.9"
	}
}

// BenchmarkServeThroughput measures end-to-end serving throughput under
// concurrent load at micro-batch limits 1 and 16. It deliberately uses an
// untrained (but structurally real) model so the CI benchmark smoke job
// runs in seconds: batching economics do not depend on the weights. The
// qps custom metric is the headline; when the BENCH_JSON environment
// variable names a directory, the results are also written to
// BENCH_serve_throughput.json for artifact upload.
func BenchmarkServeThroughput(b *testing.B) {
	k := kernel.MustBuild("6.8")
	an := cfa.New(k)
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(k))

	// One realistic query: a small program, its execution traces, and a few
	// frontier targets.
	p := prog.MustParse(k.Target, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n")
	res, err := exec.New(k).Run(p)
	if err != nil {
		b.Fatal(err)
	}
	covered := trace.NewBlockSet(trace.BlocksOf(res))
	var targets []kernel.BlockID
	for i, alt := range an.Frontier(covered) {
		if i >= 4 {
			break
		}
		targets = append(targets, alt.Entry)
	}
	q := serve.Query{Prog: p, Traces: res.CallTraces, Targets: targets}

	qps := map[string]float64{}
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := serve.NewServerOpts(m, qgraph.NewBuilder(k, an).WithCache(64), serve.Options{
				Workers:   2,
				BatchSize: batch,
				QueueSize: 1024,
			})
			defer s.Close()
			// Clients pipeline queries through a pending window, as the
			// fuzzer's asynchronous integration does; a saturated queue is
			// what gives micro-batching something to drain.
			const clients, window = 32, 8
			perClient := (b.N + clients - 1) / clients
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var pending []<-chan serve.Prediction
					for i := 0; i < perClient; i++ {
						ch, err := s.InferAsync(q)
						if err != nil {
							b.Error(err)
							return
						}
						pending = append(pending, ch)
						if len(pending) >= window {
							<-pending[0]
							pending = pending[1:]
						}
					}
					for _, ch := range pending {
						<-ch
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			served := float64(clients * perClient)
			if elapsed > 0 {
				qps[fmt.Sprintf("batch=%d", batch)] = served / elapsed
				b.ReportMetric(served/elapsed, "qps")
			}
			st := s.Stats()
			b.ReportMetric(st.AvgBatchSize, "avg-batch")
		})
	}
	if dir := os.Getenv("BENCH_JSON"); dir != "" {
		writeBenchJSON(b, filepath.Join(dir, "BENCH_serve_throughput.json"), qps)
	}
}

// writeBenchJSON persists a benchmark result map as a machine-readable
// artifact (the CI bench smoke job uploads BENCH_*.json).
func writeBenchJSON(b *testing.B, path string, v interface{}) {
	b.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchCorpus builds a realistic corpus (covers shaped by a real short
// campaign) for the coverage/corpus hot-path benchmarks.
func benchCorpus(b *testing.B) *fuzzer.Fuzzer {
	b.Helper()
	h := harness()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	f := fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: 7, Budget: 300_000,
	})
	if _, err := f.Run(); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkCoverMerge measures the paged-bitmap cover merge on realistic
// execution covers — the per-execution triage hot path the bitmap layout
// exists for. When BENCH_JSON names a directory the ns/op lands in
// BENCH_cover_merge.json.
func BenchmarkCoverMerge(b *testing.B) {
	entries := benchCorpus(b).Corpus().Entries()
	if len(entries) == 0 {
		b.Fatal("empty benchmark corpus")
	}
	b.ResetTimer()
	start := time.Now()
	total := trace.NewCover()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		total.Merge(e.Cover)
		total.NewEdges(e.Cover)
	}
	if dir := os.Getenv("BENCH_JSON"); dir != "" {
		b.StopTimer()
		writeBenchJSON(b, filepath.Join(dir, "BENCH_cover_merge.json"), map[string]float64{
			"ns/op": float64(time.Since(start).Nanoseconds()) / float64(b.N),
		})
	}
}

// BenchmarkCorpusChoose measures the lock-free snapshot Choose path under
// parallel readers (every VM picks a base every step).
func BenchmarkCorpusChoose(b *testing.B) {
	corp := benchCorpus(b).Corpus()
	if corp.Len() == 0 {
		b.Fatal("empty benchmark corpus")
	}
	var seed uint64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(atomicAddUint64(&seed, 1))
		for pb.Next() {
			if corp.Choose(r) == nil {
				b.Error("empty choose")
				return
			}
		}
	})
	if dir := os.Getenv("BENCH_JSON"); dir != "" {
		b.StopTimer()
		writeBenchJSON(b, filepath.Join(dir, "BENCH_corpus_choose.json"), map[string]float64{
			"ns/op": float64(time.Since(start).Nanoseconds()) / float64(b.N),
		})
	}
}

func atomicAddUint64(p *uint64, d uint64) uint64 { return atomic.AddUint64(p, d) }

// BenchmarkFuzzLoopParallel measures the multi-VM campaign engine end to
// end at 4 simulated VMs (same total budget as BenchmarkFuzzLoop).
func BenchmarkFuzzLoopParallel(b *testing.B) {
	h := harness()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
			Seed: uint64(i + 1), Budget: 100_000, VMs: 4,
		})
		if _, err := f.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzLoop measures raw loop speed of both modes (not a paper
// table; a sanity measurement for the simulator itself).
func BenchmarkFuzzLoop(b *testing.B) {
	h := harness()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
			Seed: uint64(i + 1), Budget: 100_000,
		})
		if _, err := f.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
