// Command snowplow-collect harvests the §3.1 mutation dataset: it generates
// (or loads) a base corpus, runs a large number of random argument mutations
// per base on the synthetic kernel, keeps the successful ones, and writes
// the training dataset to disk.
//
// Usage:
//
//	snowplow-collect -kernel 6.8 -bases 400 -mutations 400 -o dataset.txt
//	snowplow-collect -kernel 6.8 -bases 400 -collect-workers 4 -o dataset.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

func main() {
	var (
		version   = flag.String("kernel", "6.8", "kernel version")
		bases     = flag.Int("bases", 400, "number of base tests to generate")
		mutations = flag.Int("mutations", 400, "random argument mutations per base (paper: 1000)")
		seed      = flag.Uint64("seed", 1, "generation seed")
		out       = flag.String("o", "dataset.txt", "output dataset path")
		cap       = flag.Int("popcap", 64, "popularity cap per target block (0 disables)")
		workers   = flag.Int("collect-workers", 1, "harvest shard width (the dataset is identical at any width)")
	)
	flag.Parse()
	if err := run(*version, *bases, *mutations, *seed, *out, *cap, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "snowplow-collect:", err)
		os.Exit(1)
	}
}

func run(version string, bases, mutations int, seed uint64, out string, popCap, workers int) error {
	k, err := kernel.Build(version)
	if err != nil {
		return err
	}
	fmt.Println(k)
	an := cfa.New(k)
	g := prog.NewGenerator(k.Target)
	r := rng.New(seed)
	baseProgs := make([]*prog.Prog, bases)
	for i := range baseProgs {
		baseProgs[i] = g.Generate(r, 2+r.Intn(4))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = mutations
	c.PopularityCap = popCap
	c.Workers = workers
	fmt.Printf("collecting: %d bases x %d mutations...\n", bases, mutations)
	ds, stats := c.Collect(rng.New(seed+1), baseProgs)
	fmt.Printf("bases: %d (%d skipped)\n", stats.Bases, stats.SkippedBases)
	fmt.Printf("mutations: %d, successful: %d (%.1f per 1000; paper ~45)\n",
		stats.Mutations, stats.Successful, 1000*float64(stats.Successful)/float64(stats.Mutations))
	fmt.Printf("examples: %d (popularity-discarded: %d)\n", stats.Examples, stats.DiscardedPopularity)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
