// Command snowplow-train trains the Program Mutation Model on a dataset
// harvested by snowplow-collect, optionally running a hyperparameter search
// (§5.1), and writes the best checkpoint.
//
// Usage:
//
//	snowplow-train -kernel 6.8 -dataset dataset.txt -o pmm.model -epochs 15
//	snowplow-train -kernel 6.8 -dataset dataset.txt -o pmm.model -tune
//	snowplow-train -kernel 6.8 -dataset dataset.txt -train-workers 4 -batch 8
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

func main() {
	var (
		version  = flag.String("kernel", "6.8", "kernel version the dataset was collected on")
		dsPath   = flag.String("dataset", "dataset.txt", "dataset path")
		out      = flag.String("o", "pmm.model", "output checkpoint path")
		epochs   = flag.Int("epochs", 15, "training epochs")
		lr       = flag.Float64("lr", 3e-3, "learning rate")
		posw     = flag.Float64("posweight", 2, "loss weight of MUTATE labels")
		seed     = flag.Uint64("seed", 1, "training seed")
		tune     = flag.Bool("tune", false, "run a hyperparameter search over model configs")
		pretrain = flag.Bool("pretrain", false, "masked-token pretraining of the assembly encoder first")
		batch    = flag.Int("batch", 1, "minibatch size (gradients averaged per optimizer step; 1 = per-example)")
		workers  = flag.Int("train-workers", 1, "data-parallel training width (checkpoints are byte-identical at any width)")
		quant    = flag.Bool("quant", false, "int8-quantize the trained model and write a mixed-precision checkpoint")
	)
	flag.Parse()
	if err := run(*version, *dsPath, *out, *epochs, *lr, *posw, *seed, *tune, *pretrain, *batch, *workers, *quant); err != nil {
		fmt.Fprintln(os.Stderr, "snowplow-train:", err)
		os.Exit(1)
	}
}

func run(version, dsPath, out string, epochs int, lr, posw float64, seed uint64, tune, pretrain bool, batch, workers int, quant bool) error {
	k, err := kernel.Build(version)
	if err != nil {
		return err
	}
	f, err := os.Open(dsPath)
	if err != nil {
		return err
	}
	ds, err := dataset.Load(f, k)
	f.Close()
	if err != nil {
		return err
	}
	train, val, eval := ds.Split(0.8, 0.1)
	fmt.Printf("dataset: %d examples (train %d / val %d / eval %d)\n",
		ds.Len(), train.Len(), val.Len(), eval.Len())

	b := qgraph.NewBuilder(k, cfa.New(k))
	tcfg := pmm.TrainConfig{
		LR: lr, Epochs: epochs, PosWeight: posw, ClipNorm: 1, Seed: seed,
		Log: os.Stdout, Pretrain: pretrain, Batch: batch, Workers: workers,
	}

	// Compile each split against the builder exactly once: training,
	// validation passes, hyperparameter search and the final evaluation all
	// share these (compilation dominates short runs).
	ctrain := pmm.CompileDataset(b, train, tcfg.PosWeight)
	cval := pmm.CompileDataset(b, val, 1)
	ceval := pmm.CompileDataset(b, eval, 1)

	cfg := pmm.DefaultConfig()
	if tune {
		candidates := []pmm.Config{}
		for _, dim := range []int{16, 24, 32} {
			for _, layers := range []int{1, 2, 3} {
				c := pmm.DefaultConfig()
				c.Dim, c.Layers = dim, layers
				candidates = append(candidates, c)
			}
		}
		fmt.Printf("hyperparameter search over %d configurations...\n", len(candidates))
		results := pmm.SearchHyperparamsCompiled(b, candidates, tcfg, ctrain, cval)
		for _, res := range results {
			fmt.Printf("  dim=%d layers=%d: val F1 %.3f\n", res.Cfg.Dim, res.Cfg.Layers, res.ValF1)
		}
		cfg = results[0].Cfg
		fmt.Printf("best: dim=%d layers=%d\n", cfg.Dim, cfg.Layers)
	}

	m, report := pmm.TrainCompiled(b, cfg, tcfg, ctrain, cval)
	fmt.Printf("threshold: %.2f\n", report.Threshold)
	fmt.Printf("eval (PMM):    %v\n", pmm.EvaluateCompiled(m, ceval))
	fmt.Printf("eval (Rand.8): %v\n", pmm.EvaluateRandomK(rng.New(seed+7), b, eval, 8))

	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	if quant {
		// Quantize after evaluation so the reported metrics describe the
		// float64 model; the checkpoint then carries int8 codes plus the
		// dequantized float64 weights every loader serves from.
		m.Freeze()
		if err := m.Quantize(); err != nil {
			return err
		}
		if err := m.SaveQuantized(of); err != nil {
			return err
		}
		fmt.Printf("wrote %s (int8-quantized)\n", out)
		return nil
	}
	if err := m.Save(of); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
