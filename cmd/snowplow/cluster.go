// Cluster mode: the same binary runs as either the campaign coordinator
// (-coordinator N) or a shard worker (-worker). The coordinator owns the
// authoritative corpus, coverage and journal and periodically writes an
// atomic checkpoint; if the checkpoint file already exists at startup the
// campaign resumes from it — onto any worker count — with output identical
// to the uninterrupted run (DESIGN.md §11).
//
//	snowplow -coordinator 2 -cluster-addr 127.0.0.1:9035 \
//	    -mode snowplow -model pmm.model -checkpoint campaign.ckpt
//	snowplow -worker -cluster-addr 127.0.0.1:9035   # run twice

package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

// clusterFlags groups the distributed-campaign knobs.
type clusterFlags struct {
	worker          bool
	coordinator     int
	addr            string
	checkpoint      string
	checkpointEvery int64
	compress        int
	legacyWire      bool
	wanBandwidth    int64
	wanLatency      time.Duration
}

// runClusterWorker joins the coordinator at cf.addr and serves barrier
// steps until the campaign ends. -wan-bandwidth/-wan-latency shape the
// coordinator link with deterministic write stalls (the WAN stand-in used
// by the wire experiment); -wire-v1 pins the legacy codec.
func runClusterWorker(cf clusterFlags, workers int, fused bool) error {
	nn.SetWorkers(workers)
	logger := log.New(os.Stderr, "worker: ", log.Ltime)
	logger.Printf("joining coordinator at %s", cf.addr)
	opts := cluster.WorkerOptions{
		ServeWorkers: workers,
		Fused:        fused,
		LegacyWire:   cf.legacyWire,
		Logf:         logger.Printf,
	}
	if cf.wanBandwidth > 0 || cf.wanLatency > 0 {
		logger.Printf("shaping coordinator link: %d B/s, +%v per write", cf.wanBandwidth, cf.wanLatency)
		opts.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultinject.NewLink(conn, faultinject.LinkOptions{
				Bandwidth: cf.wanBandwidth,
				Latency:   cf.wanLatency,
			}), nil
		}
	}
	return cluster.RunWorker(cf.addr, opts)
}

// quantizeModelBytes re-encodes a float64 model checkpoint as the
// mixed-precision (int8 codes + dequantized float64) form.
func quantizeModelBytes(model []byte) ([]byte, error) {
	m, err := pmm.Load(bytes.NewReader(model))
	if err != nil {
		return nil, err
	}
	m.Freeze()
	if m.Quantized() == nil {
		if err := m.Quantize(); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := m.SaveQuantized(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runClusterCoordinator builds the campaign spec exactly like the
// single-host path (same seed recipe, same knobs), waits for
// cf.coordinator workers, and drives the campaign to completion. If the
// checkpoint file exists the campaign resumes from it instead of starting
// fresh.
func runClusterCoordinator(cf clusterFlags, mode, version, modelPath string, budget int64, seed uint64, nseeds int, fallback float64, vms int, quant bool, of obsFlags, onf onlineFlags) error {
	k, err := kernel.Build(version)
	if err != nil {
		return err
	}
	fmt.Println(k)
	cfg := fuzzer.Config{
		Kernel: k, An: cfa.New(k), Seed: seed, Budget: budget,
		FallbackProb: fallback, VMs: vms,
		Journal: obs.NewJournal(1), // flag only: the coordinator owns the real journal
	}
	var model []byte
	switch mode {
	case "syzkaller":
		if onf.enabled {
			return fmt.Errorf("-online requires -mode snowplow")
		}
		cfg.Mode = fuzzer.ModeSyzkaller
	case "snowplow":
		cfg.Mode = fuzzer.ModeSnowplow
		if modelPath == "" {
			return fmt.Errorf("-mode snowplow requires -model")
		}
		if model, err = os.ReadFile(modelPath); err != nil {
			return err
		}
		if quant {
			// Quantization must be decided once, by the coordinator: the
			// model is re-encoded as a mixed-precision checkpoint, so every
			// worker loads identical int8 weights (and the checkpoint's
			// model digest pins the quantized form). Worker-local flags
			// could not guarantee that.
			if model, err = quantizeModelBytes(model); err != nil {
				return fmt.Errorf("quantizing model: %w", err)
			}
			fmt.Println("model: int8-quantized for the cluster")
		}
		if oc := onf.config(); oc != nil {
			// The schedule travels in the campaign spec; the coordinator
			// trains and gates, then pushes accepted checkpoints to every
			// worker with the two-phase prep/commit frames.
			cfg.Online = oc
			fmt.Printf("online learning: retrain every %d barriers, swap lag %d (see TRAINING.md)\n", oc.Every, oc.Lag)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	g := prog.NewGenerator(k.Target)
	r := rng.New(seed + 0x5eed)
	for i := 0; i < nseeds; i++ {
		cfg.SeedCorpus = append(cfg.SeedCorpus, g.Generate(r, 2+r.Intn(3)))
	}

	ccfg := cluster.Config{
		Spec:            cluster.SpecFromConfig(cfg, model),
		Workers:         cf.coordinator,
		Addr:            cf.addr,
		CheckpointPath:  cf.checkpoint,
		CheckpointEvery: cf.checkpointEvery,
		Compress:        cf.compress,
		TrainWorkers:    onf.trainWorkers,
		CollectWorkers:  onf.collectWorkers,
		Logf:            log.New(os.Stderr, "coordinator: ", log.Ltime).Printf,
	}
	var sampler *obs.Sampler
	if of.addr != "" {
		reg := obs.NewRegistry()
		sampler = obs.NewSampler(reg, of.sampleInterval)
		addr, shutdown, err := obs.Serve(of.addr, reg, nil, sampler)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("observability: http://%s (metrics, timeseries, pprof)\n", addr)
		ccfg.Metrics = reg
	}

	var co *cluster.Coordinator
	if data, err := os.ReadFile(cf.checkpoint); cf.checkpoint != "" && err == nil {
		co, err = cluster.ResumeCoordinator(ccfg, data)
		if err != nil {
			return fmt.Errorf("resuming from %s: %w", cf.checkpoint, err)
		}
		fmt.Printf("resuming campaign from %s\n", cf.checkpoint)
	} else {
		if co, err = cluster.NewCoordinator(ccfg); err != nil {
			return err
		}
	}
	fmt.Printf("coordinator listening on %s, waiting for %d workers\n", co.Addr(), cf.coordinator)

	if sampler != nil {
		sampler.Start()
	}
	res, err := co.Run()
	if sampler != nil {
		sampler.Stop()
	}
	if err != nil {
		return err
	}

	// Single-buffer report, same convention as the single-host path.
	var out bytes.Buffer
	stats := res.Stats
	fmt.Fprintf(&out, "mode=%s kernel=%s budget=%d workers=%d\n", stats.Mode, version, budget, res.Workers)
	fmt.Fprintf(&out, "final: %d edges, %d executions, corpus %d\n",
		stats.FinalEdges, stats.Executions, stats.CorpusSize)
	for _, vm := range stats.VMs {
		fmt.Fprintf(&out, "vm %d: %d execs, %d new edges, %d queries, %d epochs\n",
			vm.VM, vm.Executions, vm.NewEdges, vm.Queries, vm.Epochs)
	}
	if cfg.Mode == fuzzer.ModeSnowplow {
		fmt.Fprintf(&out, "PMM: %d queries, %d predictions, %d failed, %d shed\n",
			stats.PMMQueries, stats.PMMPredictions, stats.PMMFailed, stats.PMMShed)
	}
	if cfg.Online != nil {
		fmt.Fprintf(&out, "online: %d retrains, %d swaps applied, %d skipped by the gate, serving model v%d\n",
			stats.ModelRetrains, stats.ModelSwaps, stats.ModelSwapsSkipped, stats.ModelVersion)
	}
	fmt.Fprintf(&out, "digests: corpus=%s cover=%s journal=%s\n",
		res.CorpusDigest, res.CoverDigest, res.JournalDigest)
	if res.Wire.TxWireBytes+res.Wire.RxWireBytes > 0 {
		fmt.Fprintf(&out, "wire: tx %d B (%d raw), rx %d B (%d raw), %d/%d workers compressed\n",
			res.Wire.TxWireBytes, res.Wire.TxRawBytes, res.Wire.RxWireBytes, res.Wire.RxRawBytes,
			res.Wire.CompressedWorkers, res.Workers)
	}
	if cf.checkpoint != "" {
		fmt.Fprintf(&out, "checkpoint: %s (every %d epochs)\n", cf.checkpoint, cf.checkpointEvery)
	}
	if len(stats.Crashes) > 0 {
		fmt.Fprintf(&out, "\ncrashes (%d unique):\n", len(stats.Crashes))
		for _, c := range stats.Crashes {
			fmt.Fprintf(&out, "  [cost %d] %s\n", c.Cost, c.Spec.Title)
		}
	}
	_, err = os.Stdout.Write(out.Bytes())
	return err
}
