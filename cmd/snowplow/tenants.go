package main

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// Multi-campaign mode: -tenants N runs N concurrent Snowplow campaigns as
// weighted-fair tenants of the one shared model server built by run(). Each
// campaign gets its own seed corpus and campaign seed (base seed + index) so
// runs stay individually reproducible, while the serving layer multiplexes
// their inference through deficit-round-robin scheduling, per-tenant quotas
// and the autoscaling worker pool.

// runTenantCampaigns registers one tenant per campaign on the shared server,
// runs all campaigns concurrently, and prints a per-campaign and per-tenant
// report. Sharing one obs registry across campaigns is safe: instrument
// registration is idempotent per name, so the counters aggregate.
func runTenantCampaigns(base fuzzer.Config, srv *serve.Server, tf tenantFlags, seed uint64, nseeds int, k *kernel.Kernel, sampler *obs.Sampler) error {
	spec, err := serve.ParseTenantSpec(tf.tenants, tf.weights, tf.quota, tf.minWorkers, tf.maxWorkers)
	if err != nil {
		return err
	}
	handles := make([]*serve.Tenant, len(spec.Tenants))
	for i, tc := range spec.Tenants {
		if handles[i], err = srv.Tenant(tc); err != nil {
			return err
		}
	}
	fmt.Printf("multi-tenant: %d campaigns on one shared server (weights %v, quota %d, pool %d..%d)\n",
		len(handles), specWeights(spec), tf.quota, tf.minWorkers, tf.maxWorkers)

	n := len(handles)
	cfgs := make([]fuzzer.Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Seed = seed + uint64(i)
		cfg.Server = handles[i]
		// Each campaign generates its own seed corpus from its own seed, so
		// campaign i is reproducible standalone (-seed seed+i, -tenants 1).
		g := prog.NewGenerator(k.Target)
		r := rng.New(cfg.Seed + 0x5eed)
		cfg.SeedCorpus = nil
		for j := 0; j < nseeds; j++ {
			cfg.SeedCorpus = append(cfg.SeedCorpus, g.Generate(r, 2+r.Intn(3)))
		}
		cfgs[i] = cfg
	}

	if sampler != nil {
		sampler.Start()
	}
	stats := make([]*fuzzer.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = fuzzer.New(cfgs[i]).Run()
		}(i)
	}
	wg.Wait()
	if sampler != nil {
		sampler.Stop()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("campaign %d (tenant %s): %w", i, spec.Tenants[i].Name, err)
		}
	}

	// One buffer, one write: campaign goroutines are done but the obs HTTP
	// server may still log.
	var out bytes.Buffer
	var totalEdges, totalExecs, totalQueries int64
	for i, st := range stats {
		totalEdges += int64(st.FinalEdges)
		totalExecs = totalExecs + st.Executions
		totalQueries += st.PMMQueries
		fmt.Fprintf(&out, "campaign %d (tenant %s, seed %d): %d edges, %d execs, corpus %d, %d queries, %d shed, %d crashes\n",
			i, spec.Tenants[i].Name, cfgs[i].Seed,
			st.FinalEdges, st.Executions, st.CorpusSize, st.PMMQueries, st.PMMShed, len(st.Crashes))
	}
	fmt.Fprintf(&out, "fleet: %d edges total, %d executions, %d PMM queries across %d campaigns\n",
		totalEdges, totalExecs, totalQueries, n)

	fmt.Fprintf(&out, "%-10s %3s %10s %10s %8s %6s %6s %12s\n",
		"tenant", "w", "queries", "served", "batches", "quota", "shed", "mean wait")
	for _, ts := range srv.TenantStats() {
		if ts.Queries == 0 && ts.Name == "default" {
			continue // default tenant idle in multi-campaign mode
		}
		fmt.Fprintf(&out, "%-10s %3d %10d %10d %8d %6d %6d %12v\n",
			ts.Name, ts.Weight, ts.Queries, ts.Served, ts.Batches,
			ts.QuotaRejected, ts.Shed, ts.MeanQueueWait.Round(time.Microsecond))
	}

	ss := srv.Stats()
	fmt.Fprintf(&out, "serving: %d ok / %d failed of %d queries, error rate %.2f, healthy %v\n",
		ss.Succeeded, ss.Failed, ss.Queries, ss.ErrorRate, ss.Healthy)
	fmt.Fprintf(&out, "batching: %d passes, avg batch %.2f (fill %.0f%%); cache: %d hits, %d misses\n",
		ss.Batches, ss.AvgBatchSize, 100*ss.BatchFill, ss.CacheHits, ss.CacheMisses)
	if ss.ScaleUps+ss.ScaleDowns > 0 {
		fmt.Fprintf(&out, "autoscale: %d ups, %d downs, final pool %d workers (%d journaled events)\n",
			ss.ScaleUps, ss.ScaleDowns, ss.Workers, len(srv.ScaleLog()))
	}
	for i, st := range stats {
		for _, c := range st.Crashes {
			fmt.Fprintf(&out, "crash [campaign %d, cost %d] %s\n", i, c.Cost, c.Spec.Title)
		}
	}
	_, err = os.Stdout.Write(out.Bytes())
	return err
}

// specWeights flattens a spec's per-tenant weights for the banner line.
func specWeights(sp serve.TenantSpec) []int {
	ws := make([]int, len(sp.Tenants))
	for i, t := range sp.Tenants {
		ws[i] = t.Weight
	}
	return ws
}
