// Command snowplow fuzzes a synthetic kernel in either the Syzkaller
// baseline mode or the PMM-guided Snowplow mode, printing the coverage time
// series and any crashes found.
//
// Usage:
//
//	snowplow -mode snowplow -kernel 6.8 -model pmm.model -budget 2000000
//	snowplow -mode syzkaller -kernel 6.9 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

func main() {
	var (
		mode      = flag.String("mode", "syzkaller", "fuzzer mode: syzkaller or snowplow")
		version   = flag.String("kernel", "6.8", "kernel version to fuzz (6.8, 6.9, 6.10)")
		modelPath = flag.String("model", "", "trained PMM checkpoint (required for -mode snowplow)")
		budget    = flag.Int64("budget", 2_000_000, "simulated execution budget (blocks)")
		seed      = flag.Uint64("seed", 1, "campaign seed")
		seeds     = flag.Int("seeds", 20, "number of generated seed programs")
		workers   = flag.Int("workers", 4, "inference worker goroutines")
		fallback  = flag.Float64("fallback", 0.1, "random-localization fallback probability")
	)
	flag.Parse()
	if err := run(*mode, *version, *modelPath, *budget, *seed, *seeds, *workers, *fallback); err != nil {
		fmt.Fprintln(os.Stderr, "snowplow:", err)
		os.Exit(1)
	}
}

func run(mode, version, modelPath string, budget int64, seed uint64, nseeds, workers int, fallback float64) error {
	k, err := kernel.Build(version)
	if err != nil {
		return err
	}
	fmt.Println(k)
	an := cfa.New(k)

	cfg := fuzzer.Config{
		Kernel: k, An: an, Seed: seed, Budget: budget,
		FallbackProb: fallback,
	}
	switch mode {
	case "syzkaller":
		cfg.Mode = fuzzer.ModeSyzkaller
	case "snowplow":
		cfg.Mode = fuzzer.ModeSnowplow
		if modelPath == "" {
			return fmt.Errorf("-mode snowplow requires -model")
		}
		f, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		m, err := pmm.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		srv := serve.NewServer(m, qgraph.NewBuilder(k, an), workers)
		defer srv.Close()
		cfg.Server = srv
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	g := prog.NewGenerator(k.Target)
	r := rng.New(seed + 0x5eed)
	for i := 0; i < nseeds; i++ {
		cfg.SeedCorpus = append(cfg.SeedCorpus, g.Generate(r, 2+r.Intn(3)))
	}

	stats, err := fuzzer.New(cfg).Run()
	if err != nil {
		return err
	}
	fmt.Printf("mode=%s kernel=%s budget=%d\n", stats.Mode, version, budget)
	fmt.Printf("%12s %10s\n", "cost", "edges")
	step := len(stats.Series) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(stats.Series); i += step {
		p := stats.Series[i]
		fmt.Printf("%12d %10d\n", p.Cost, p.Edges)
	}
	fmt.Printf("final: %d edges, %d executions, corpus %d\n",
		stats.FinalEdges, stats.Executions, stats.CorpusSize)
	if cfg.Mode == fuzzer.ModeSnowplow {
		fmt.Printf("PMM: %d queries, %d predictions\n", stats.PMMQueries, stats.PMMPredictions)
	}
	if len(stats.Crashes) > 0 {
		fmt.Printf("\ncrashes (%d unique):\n", len(stats.Crashes))
		for _, c := range stats.Crashes {
			fmt.Printf("  [cost %d] %s\n", c.Cost, c.Spec.Title)
		}
	}
	return nil
}
