// Command snowplow fuzzes a synthetic kernel in either the Syzkaller
// baseline mode or the PMM-guided Snowplow mode, printing the coverage time
// series and any crashes found.
//
// Usage:
//
//	snowplow -mode snowplow -kernel 6.8 -model pmm.model -budget 2000000
//	snowplow -mode syzkaller -kernel 6.9 -budget 2000000
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// serveFlags groups the inference-serving robustness knobs.
type serveFlags struct {
	faults   string
	deadline time.Duration
	retries  int
	degraded float64
}

// tenantFlags groups the multi-tenant serving knobs: how many concurrent
// campaigns share one model server, their weighted-fair shares and quotas,
// and the autoscaling worker-pool bounds.
type tenantFlags struct {
	tenants    int
	weights    string
	quota      int
	minWorkers int
	maxWorkers int
}

// obsFlags groups the observability knobs.
type obsFlags struct {
	addr           string
	sampleInterval time.Duration
}

// onlineFlags groups the continual-learning knobs: whether the campaign
// retrains on its own corpus and hot-swaps checkpoints at epoch barriers,
// the retrain schedule, and the wall-clock-only worker widths (TRAINING.md).
type onlineFlags struct {
	enabled        bool
	every          int64
	lag            int64
	minCorpus      int
	mutations      int
	trainEpochs    int
	trainBatch     int
	trainWorkers   int
	collectWorkers int
}

// config resolves the flags into the campaign schedule, nil when -online is
// off. Zero-valued knobs take the online.Config defaults.
func (o onlineFlags) config() *online.Config {
	if !o.enabled {
		return nil
	}
	c := online.Config{
		Every:            o.every,
		Lag:              o.lag,
		MinCorpus:        o.minCorpus,
		MutationsPerBase: o.mutations,
		TrainEpochs:      o.trainEpochs,
		TrainBatch:       o.trainBatch,
	}.Normalized()
	return &c
}

func main() {
	var (
		mode      = flag.String("mode", "syzkaller", "fuzzer mode: syzkaller or snowplow")
		version   = flag.String("kernel", "6.8", "kernel version to fuzz (6.8, 6.9, 6.10)")
		modelPath = flag.String("model", "", "trained PMM checkpoint (required for -mode snowplow)")
		budget    = flag.Int64("budget", 2_000_000, "simulated execution budget (blocks)")
		seed      = flag.Uint64("seed", 1, "campaign seed")
		seeds     = flag.Int("seeds", 20, "number of generated seed programs")
		workers   = flag.Int("workers", 4, "inference worker goroutines (also sizes the MatMul worker pool)")
		batch     = flag.Int("batch", 1, "inference micro-batch limit (1 = no batching)")
		cache     = flag.Int("cache", 1024, "graph-encoding LRU cache capacity (0 = disabled)")
		fallback  = flag.Float64("fallback", 0.1, "random-localization fallback probability")
		vms       = flag.Int("vms", 1, "simulated fuzzing VMs (parallel campaign; 1 = sequential)")
		fused     = flag.Bool("fused", true, "serve inference through the fused kernels (bit-identical to unfused)")
		quant     = flag.Bool("quant", false, "int8-quantize model weights before serving (reproducible per seed; coordinator re-encodes the model for workers)")
		sf        serveFlags
		of        obsFlags
		cf        clusterFlags
		tf        tenantFlags
		onf       onlineFlags
	)
	flag.BoolVar(&onf.enabled, "online", false,
		"continually retrain the model on the campaign's own corpus and hot-swap checkpoints at epoch barriers (requires -mode snowplow; see TRAINING.md)")
	flag.Int64Var(&onf.every, "online-every", 0,
		"retrain kickoff cadence in epoch barriers (0 = default 8)")
	flag.Int64Var(&onf.lag, "online-lag", 0,
		"barriers between a retrain kickoff and its hot swap (0 = default 2)")
	flag.IntVar(&onf.minCorpus, "online-min-corpus", 0,
		"minimum corpus entries before a retrain kicks off (0 = default 8)")
	flag.IntVar(&onf.mutations, "online-mutations", 0,
		"harvest mutations per corpus base when building retrain datasets (0 = default 24)")
	flag.IntVar(&onf.trainEpochs, "online-train-epochs", 0,
		"training epochs per retrain (0 = default 4)")
	flag.IntVar(&onf.trainBatch, "online-train-batch", 0,
		"retrain minibatch size (0 = default 8)")
	flag.IntVar(&onf.trainWorkers, "train-workers", 0,
		"data-parallel retrain width for -online (wall-clock only, results identical; 0 = single-threaded)")
	flag.IntVar(&onf.collectWorkers, "collect-workers", 0,
		"harvest shard width for -online retrains (wall-clock only, results identical; 0 = single-threaded)")
	flag.IntVar(&tf.tenants, "tenants", 1,
		"concurrent snowplow campaigns sharing one multi-tenant model server via weighted-fair tenant handles (1 = single campaign)")
	flag.StringVar(&tf.weights, "tenant-weight", "",
		"comma-separated deficit-round-robin weights for -tenants campaigns (short list repeats its last value; empty = all 1)")
	flag.IntVar(&tf.quota, "quota", 0,
		"per-tenant in-flight query quota for -tenants campaigns (0 = default 2x queue)")
	flag.IntVar(&tf.minWorkers, "min-workers", 0,
		"autoscaling worker-pool floor (0 = fixed pool of -workers)")
	flag.IntVar(&tf.maxWorkers, "max-workers", 0,
		"autoscaling worker-pool ceiling (0 = fixed pool of -workers)")
	flag.BoolVar(&cf.worker, "worker", false,
		"run as a cluster shard worker: join the coordinator at -cluster-addr and exit when the campaign ends")
	flag.IntVar(&cf.coordinator, "coordinator", 0,
		"run as cluster coordinator and wait for this many workers (0 = single-process campaign)")
	flag.StringVar(&cf.addr, "cluster-addr", "127.0.0.1:9035",
		"cluster listen/dial address for -coordinator/-worker")
	flag.StringVar(&cf.checkpoint, "checkpoint", "",
		"coordinator checkpoint file; written atomically every -checkpoint-every epochs, resumed from if present")
	flag.Int64Var(&cf.checkpointEvery, "checkpoint-every", 16,
		"epoch barriers between checkpoints (with -coordinator and -checkpoint)")
	flag.IntVar(&cf.compress, "compress", 0,
		"coordinator: flate level (1-9) negotiated for cluster frame compression; 0 = uncompressed (v1 workers always get uncompressed frames)")
	flag.BoolVar(&cf.legacyWire, "wire-v1", false,
		"worker: speak only the legacy v1 wire codec (no sparse traces, no compression), as a pre-v2 build would")
	flag.Int64Var(&cf.wanBandwidth, "wan-bandwidth", 0,
		"worker: shape the coordinator link to this many bytes/sec (deterministic write stalls; 0 = unshaped)")
	flag.DurationVar(&cf.wanLatency, "wan-latency", 0,
		"worker: add this fixed delay to every coordinator-link write (with -wan-bandwidth; 0 = none)")
	flag.StringVar(&of.addr, "obs", "",
		"observability endpoint address, e.g. :6060 (serves /metrics, /journal, /timeseries, /debug/pprof; empty = disabled)")
	flag.DurationVar(&of.sampleInterval, "sample-interval", 0,
		"metrics sampling period for /timeseries (0 = default 250ms; only with -obs)")
	flag.StringVar(&sf.faults, "faults", "off",
		"inference fault model, e.g. drop=0.1,transient=0.2,corrupt=0.05,latency=0.1:50ms,seed=7")
	flag.DurationVar(&sf.deadline, "deadline", 0, "per-attempt inference deadline (0 = default)")
	flag.IntVar(&sf.retries, "retries", 0, "inference retries after the first attempt (0 = default, negative = none)")
	flag.Float64Var(&sf.degraded, "degraded-fallback", 0,
		"fallback probability while serving is unhealthy (0 = default 0.9)")
	flag.Parse()
	var err error
	switch {
	case cf.worker:
		err = runClusterWorker(cf, *workers, *fused)
	case cf.coordinator > 0:
		err = runClusterCoordinator(cf, *mode, *version, *modelPath, *budget, *seed, *seeds, *fallback, *vms, *quant, of, onf)
	default:
		err = run(*mode, *version, *modelPath, *budget, *seed, *seeds, *workers, *batch, *cache, *fallback, *vms, *fused, *quant, sf, of, tf, onf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snowplow:", err)
		os.Exit(1)
	}
}

func run(mode, version, modelPath string, budget int64, seed uint64, nseeds, workers, batch, cache int, fallback float64, vms int, fused, quant bool, sf serveFlags, of obsFlags, tf tenantFlags, onf onlineFlags) error {
	// Size the MatMul worker pool alongside the inference pool; results are
	// bit-identical for any worker count.
	nn.SetWorkers(workers)
	k, err := kernel.Build(version)
	if err != nil {
		return err
	}
	fmt.Println(k)
	an := cfa.New(k)

	cfg := fuzzer.Config{
		Kernel: k, An: an, Seed: seed, Budget: budget,
		FallbackProb:         fallback,
		DegradedFallbackProb: sf.degraded,
		VMs:                  vms,
	}

	// Observability is strictly opt-in: without -obs the campaign carries
	// nil Metrics/Journal and the fuzz loop's instrumented sites cost one
	// nil check each.
	var (
		reg     *obs.Registry
		journal *obs.Journal
		sampler *obs.Sampler
	)
	if of.addr != "" {
		reg = obs.NewRegistry()
		journal = obs.NewJournal(obs.DefaultJournalCap)
		sampler = obs.NewSampler(reg, of.sampleInterval)
		addr, shutdown, err := obs.Serve(of.addr, reg, journal, sampler)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("observability: http://%s (metrics, journal, timeseries, pprof)\n", addr)
		cfg.Metrics = reg
		cfg.Journal = journal
	}
	// Online campaigns always journal: the model_train / model_swap records
	// are part of the replayable output, and the end-of-run digest line is
	// computed from them.
	if onf.enabled && journal == nil {
		journal = obs.NewJournal(obs.DefaultJournalCap)
		cfg.Journal = journal
	}
	switch mode {
	case "syzkaller":
		if tf.tenants > 1 {
			return fmt.Errorf("-tenants requires -mode snowplow")
		}
		if onf.enabled {
			return fmt.Errorf("-online requires -mode snowplow")
		}
		cfg.Mode = fuzzer.ModeSyzkaller
	case "snowplow":
		cfg.Mode = fuzzer.ModeSnowplow
		if modelPath == "" {
			return fmt.Errorf("-mode snowplow requires -model")
		}
		f, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		m, err := pmm.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fault, err := faultinject.ParseSpec(sf.faults)
		if err != nil {
			return err
		}
		opts := serve.Options{
			Workers:       workers,
			MinWorkers:    tf.minWorkers,
			MaxWorkers:    tf.maxWorkers,
			BatchSize:     batch,
			Deadline:      sf.deadline,
			MaxRetries:    sf.retries,
			Metrics:       reg,
			Fused:         fused,
			Quant:         quant,
			KernelProfile: true,
		}
		if fault.Enabled() {
			opts.Fault = fault
			fmt.Printf("fault model: %s\n", fault)
		}
		builder := qgraph.NewBuilder(k, an)
		if cache > 0 {
			builder.WithCache(cache)
		}
		srv := serve.NewServerOpts(m, builder, opts)
		defer srv.Close()
		cfg.Server = srv
		if tf.tenants > 1 {
			if onf.enabled {
				return fmt.Errorf("-online is incompatible with -tenants (each campaign would retrain the shared model)")
			}
			return runTenantCampaigns(cfg, srv, tf, seed, nseeds, k, sampler)
		}
		if oc := onf.config(); oc != nil {
			cfg.Online = oc
			cfg.OnlineTrainWorkers = onf.trainWorkers
			cfg.OnlineCollectWorkers = onf.collectWorkers
			fmt.Printf("online learning: retrain every %d barriers, swap lag %d (see TRAINING.md)\n", oc.Every, oc.Lag)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	g := prog.NewGenerator(k.Target)
	r := rng.New(seed + 0x5eed)
	for i := 0; i < nseeds; i++ {
		cfg.SeedCorpus = append(cfg.SeedCorpus, g.Generate(r, 2+r.Intn(3)))
	}

	if sampler != nil {
		sampler.Start()
	}
	f := fuzzer.New(cfg)
	stats, err := f.Run()
	if sampler != nil {
		sampler.Stop()
	}
	if err != nil {
		return err
	}

	// The whole end-of-run report is assembled in one buffer and written
	// with a single call, so its lines — the per-VM breakdown especially —
	// can never interleave with output from goroutines that outlive the
	// campaign (the obs HTTP server, late serving logs).
	var out bytes.Buffer
	fmt.Fprintf(&out, "mode=%s kernel=%s budget=%d\n", stats.Mode, version, budget)
	fmt.Fprintf(&out, "%12s %10s\n", "cost", "edges")
	step := len(stats.Series) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(stats.Series); i += step {
		p := stats.Series[i]
		fmt.Fprintf(&out, "%12d %10d\n", p.Cost, p.Edges)
	}
	fmt.Fprintf(&out, "final: %d edges, %d executions, corpus %d\n",
		stats.FinalEdges, stats.Executions, stats.CorpusSize)
	if len(stats.VMs) > 1 {
		for _, vm := range stats.VMs {
			fmt.Fprintf(&out, "vm %d: %d execs, %d new edges, %d queries, %d epochs, queue wait %v\n",
				vm.VM, vm.Executions, vm.NewEdges, vm.Queries, vm.Epochs,
				time.Duration(vm.QueueWaitNs).Round(time.Millisecond))
		}
	}
	if cfg.Mode == fuzzer.ModeSnowplow {
		fmt.Fprintf(&out, "PMM: %d queries, %d predictions, %d failed, %d shed, %d invalid slots, %d degraded steps\n",
			stats.PMMQueries, stats.PMMPredictions, stats.PMMFailed,
			stats.PMMShed, stats.PMMInvalidSlots, stats.DegradedSteps)
		ss := cfg.Server.Stats()
		fmt.Fprintf(&out, "serving: %d ok / %d failed of %d queries, %d retries, %d timeouts, error rate %.2f, healthy %v\n",
			ss.Succeeded, ss.Failed, ss.Queries, ss.Retries, ss.Timeouts, ss.ErrorRate, ss.Healthy)
		fmt.Fprintf(&out, "batching: %d passes, %d batched queries, avg batch %.2f (fill %.0f%%); graph cache: %d hits, %d misses\n",
			ss.Batches, ss.BatchedQueries, ss.AvgBatchSize, 100*ss.BatchFill, ss.CacheHits, ss.CacheMisses)
		kp := ss.Kernel
		fmt.Fprintf(&out, "inference: fused=%v quant=%v; kernels: %d linear, %d attention, %d add+norm, %d int8\n",
			ss.Fused, ss.Quantized, kp.FusedLinear, kp.FusedAttention, kp.FusedAddNorm, kp.QuantKernels)
		if kp.KernelNs() > 0 {
			fmt.Fprintf(&out, "kernel time: %v total (matmul %v, linear %v, attention %v, norm %v, softmax %v)\n",
				time.Duration(kp.KernelNs()).Round(time.Microsecond),
				time.Duration(kp.MatMulNs).Round(time.Microsecond),
				time.Duration(kp.FusedLinearNs).Round(time.Microsecond),
				time.Duration(kp.AttentionNs).Round(time.Microsecond),
				time.Duration(kp.NormNs).Round(time.Microsecond),
				time.Duration(kp.SoftmaxNs).Round(time.Microsecond))
		}
		if ss.InjDropped+ss.InjTransient+ss.InjLatency+ss.InjCorrupt > 0 {
			fmt.Fprintf(&out, "injected: %d dropped, %d transient, %d latency, %d corrupt\n",
				ss.InjDropped, ss.InjTransient, ss.InjLatency, ss.InjCorrupt)
		}
		if cfg.Online != nil {
			fmt.Fprintf(&out, "online: %d retrains, %d swaps applied, %d skipped by the gate, serving model v%d\n",
				stats.ModelRetrains, stats.ModelSwaps, stats.ModelSwapsSkipped, stats.ModelVersion)
			// The digest line is the replay fingerprint: two same-seed
			// -online runs must print it identically (TRAINING.md).
			fmt.Fprintf(&out, "online digests: corpus=%s journal=%s\n",
				cluster.CorpusDigest(f.Corpus()), cluster.JournalDigest(journal.Events()))
		}
	}
	if journal != nil {
		fmt.Fprintf(&out, "journal: %d events retained, %d dropped\n", journal.Len(), journal.Dropped())
	}
	if len(stats.Crashes) > 0 {
		fmt.Fprintf(&out, "\ncrashes (%d unique):\n", len(stats.Crashes))
		for _, c := range stats.Crashes {
			fmt.Fprintf(&out, "  [cost %d] %s\n", c.Cost, c.Spec.Title)
		}
	}
	_, err = os.Stdout.Write(out.Bytes())
	return err
}
