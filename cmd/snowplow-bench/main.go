// Command snowplow-bench regenerates the paper's evaluation tables and
// figures on the synthetic-kernel substrate.
//
// Usage:
//
//	snowplow-bench -experiment all
//	snowplow-bench -experiment fig6 -scale full
//	snowplow-bench -experiment table1,table5
//
// Experiments: stats, table1, fig6, table2 (includes tables 3 and 4),
// table5, perf, ablations, faults, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/repro/snowplow/internal/experiments"
	"github.com/repro/snowplow/internal/faultinject"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "comma-separated experiments: stats,table1,fig6,table2,table5,perf,ablations,faults,all")
		scale  = flag.String("scale", "quick", "experiment scale: quick or full")
		seed   = flag.Uint64("seed", 1, "suite seed")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
		faults = flag.String("faults", "",
			"fault shape at rate 1.0 for the degraded-serving sweep, e.g. drop=0.4,transient=0.3,corrupt=0.2 (empty = default shape)")
	)
	flag.Parse()

	opts := experiments.Quick()
	if *scale == "full" {
		opts = experiments.Full()
	}
	opts.Seed = *seed
	if *faults != "" {
		fm, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snowplow-bench:", err)
			os.Exit(2)
		}
		if fm.Enabled() {
			opts.FaultModel = fm
		}
	}
	h := experiments.NewHarness(opts)
	if !*quiet {
		h.Log = os.Stderr
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*which, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	start := time.Now()

	if all || want["stats"] {
		experiments.Stats(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["table1"] {
		experiments.Table1(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["fig6"] {
		experiments.Fig6(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["table2"] || want["table3"] || want["table4"] {
		experiments.Campaign(h, "6.8").Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["table5"] {
		experiments.Table5(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["perf"] {
		experiments.Perf(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["ablations"] {
		fmt.Println("== Ablations (DESIGN.md §5) ==")
		experiments.AblationDeterminism(h).Render(os.Stdout)
		experiments.AblationSwitchEdges(h).Render(os.Stdout)
		experiments.AblationTargetNoise(h).Render(os.Stdout)
		experiments.AblationFallbackSweep(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if all || want["faults"] {
		fmt.Println("== Degraded serving (fault-injected inference) ==")
		experiments.AblationFaultSweep(h).Render(os.Stdout)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snowplow-bench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fmt.Printf("completed %d experiment group(s) in %v\n", ran, time.Since(start).Round(time.Second))
}
