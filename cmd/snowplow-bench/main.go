// Command snowplow-bench regenerates the paper's evaluation tables and
// figures on the synthetic-kernel substrate.
//
// Usage:
//
//	snowplow-bench -experiment all
//	snowplow-bench -experiment fig6 -scale full
//	snowplow-bench -experiment table1,table5
//
// Experiments: stats, table1, fig6, table2 (includes tables 3 and 4),
// table5, perf, parallel, cluster, wire, quant, micro, train, ablations, faults,
// timeseries, tenants, online, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/repro/snowplow/internal/experiments"
	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/nn"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "comma-separated experiments: stats,table1,fig6,table2,table5,perf,parallel,cluster,wire,quant,micro,train,ablations,faults,timeseries,tenants,online,all")
		scale  = flag.String("scale", "quick", "experiment scale: quick or full")
		seed   = flag.Uint64("seed", 1, "suite seed")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
		faults = flag.String("faults", "",
			"fault shape at rate 1.0 for the degraded-serving sweep, e.g. drop=0.4,transient=0.3,corrupt=0.2 (empty = default shape)")
		workers = flag.Int("workers", 0, "MatMul worker-pool size (0 = leave at 1)")
		vms     = flag.Int("vms", 0, "simulated-VM fleet size for fuzzing campaigns (0 = sequential)")
		batch   = flag.Int("batch", 0, "serving micro-batch limit for harness servers (0 = no batching)")
		jsonDir = flag.String("json", "", "directory for machine-readable BENCH_<experiment>.json results (empty = disabled)")
		sample  = flag.Duration("sample-interval", 0, "wall-clock metrics sampling period for the timeseries experiment (0 = default 250ms)")
		trainW  = flag.Int("train-workers", 0, "data-parallel PMM training width for harness training (0 = single-threaded)")
		collW   = flag.Int("collect-workers", 0, "harvest shard width for harness dataset collection (0 = single-threaded)")
	)
	flag.Parse()
	if *workers > 0 {
		nn.SetWorkers(*workers)
	}

	opts := experiments.Quick()
	if *scale == "full" {
		opts = experiments.Full()
	}
	opts.Seed = *seed
	opts.BatchSize = *batch
	opts.VMs = *vms
	opts.SampleInterval = *sample
	opts.TrainWorkers = *trainW
	opts.CollectWorkers = *collW
	if *faults != "" {
		fm, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snowplow-bench:", err)
			os.Exit(2)
		}
		if fm.Enabled() {
			opts.FaultModel = fm
		}
	}
	h := experiments.NewHarness(opts)
	if !*quiet {
		h.Log = os.Stderr
	}

	// emit writes one experiment's result struct as a machine-readable
	// artifact next to the rendered table (BENCH_<experiment>.json).
	emit := func(name string, v interface{}) {
		if *jsonDir == "" {
			return
		}
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "snowplow-bench:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "snowplow-bench: encode", name+":", err)
			os.Exit(1)
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "snowplow-bench:", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*which, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	start := time.Now()

	if all || want["stats"] {
		res := experiments.Stats(h)
		res.Render(os.Stdout)
		emit("stats", res)
		fmt.Println()
		ran++
	}
	if all || want["table1"] {
		res := experiments.Table1(h)
		res.Render(os.Stdout)
		emit("table1", res)
		fmt.Println()
		ran++
	}
	if all || want["fig6"] {
		res := experiments.Fig6(h)
		res.Render(os.Stdout)
		emit("fig6", res)
		fmt.Println()
		ran++
	}
	if all || want["table2"] || want["table3"] || want["table4"] {
		res := experiments.Campaign(h, "6.8")
		res.Render(os.Stdout)
		emit("table2", res)
		fmt.Println()
		ran++
	}
	if all || want["table5"] {
		res := experiments.Table5(h)
		res.Render(os.Stdout)
		emit("table5", res)
		fmt.Println()
		ran++
	}
	if all || want["perf"] {
		res := experiments.Perf(h)
		res.Render(os.Stdout)
		emit("perf", res)
		fmt.Println()
		ran++
	}
	if all || want["parallel"] {
		res := experiments.Parallel(h, nil)
		res.Render(os.Stdout)
		emit("parallel", res)
		fmt.Println()
		ran++
	}
	if all || want["cluster"] {
		res := experiments.Cluster(h, nil)
		res.Render(os.Stdout)
		emit("cluster", res)
		fmt.Println()
		ran++
	}
	if all || want["wire"] {
		res := experiments.Wire(h, nil)
		res.Render(os.Stdout)
		emit("wire", res)
		fmt.Println()
		ran++
	}
	if all || want["quant"] {
		res := experiments.Quant(h)
		res.Render(os.Stdout)
		emit("quant", res)
		fmt.Println()
		ran++
	}
	if all || want["micro"] {
		res := experiments.Micro(h)
		res.Render(os.Stdout)
		emit("micro", res)
		fmt.Println()
		ran++
	}
	if all || want["train"] {
		res := experiments.Train(h, nil)
		res.Render(os.Stdout)
		emit("train", res)
		fmt.Println()
		ran++
	}
	if all || want["ablations"] {
		fmt.Println("== Ablations (DESIGN.md §5) ==")
		determinism := experiments.AblationDeterminism(h)
		determinism.Render(os.Stdout)
		switchEdges := experiments.AblationSwitchEdges(h)
		switchEdges.Render(os.Stdout)
		targetNoise := experiments.AblationTargetNoise(h)
		targetNoise.Render(os.Stdout)
		fallback := experiments.AblationFallbackSweep(h)
		fallback.Render(os.Stdout)
		emit("ablations", map[string]interface{}{
			"determinism": determinism,
			"switchEdges": switchEdges,
			"targetNoise": targetNoise,
			"fallback":    fallback,
		})
		fmt.Println()
		ran++
	}
	if all || want["faults"] {
		fmt.Println("== Degraded serving (fault-injected inference) ==")
		res := experiments.AblationFaultSweep(h)
		res.Render(os.Stdout)
		emit("faults", res)
		fmt.Println()
		ran++
	}
	if all || want["tenants"] {
		res := experiments.Tenants(h)
		res.Render(os.Stdout)
		emit("tenants", res)
		fmt.Println()
		ran++
	}
	if all || want["online"] {
		res := experiments.Online(h)
		res.Render(os.Stdout)
		emit("online", res)
		fmt.Println()
		ran++
	}
	if all || want["timeseries"] {
		res := experiments.Timeseries(h)
		res.Render(os.Stdout)
		emit("timeseries", res)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snowplow-bench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fmt.Printf("completed %d experiment group(s) in %v\n", ran, time.Since(start).Round(time.Second))
}
