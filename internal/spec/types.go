// Package spec implements a Syzlang-like system-call specification language.
//
// A specification describes, for each system call variant, the shape of its
// arguments: plain integers with ranges, flag bitmasks, enumerations,
// buffers, length fields, pointers, nested structs, strings, and kernel
// resources (handles such as file descriptors that one call produces and
// later calls consume). Specifications are written in a small text language
// (see Parse) closely modeled on Syzkaller's syscall description syntax, and
// compiled into a Registry that the program generator, the mutation engine,
// and the kernel simulator all share.
package spec

import "fmt"

// TypeKind identifies the shape of an argument type.
type TypeKind int

// The supported argument type kinds.
const (
	KindInt      TypeKind = iota // integer constrained to [Min, Max]
	KindFlags                    // bitwise OR of a named flag set
	KindEnum                     // exactly one of a named constant set
	KindLen                      // length (in bytes) of the sibling field named LenTarget
	KindBuffer                   // byte buffer of at most MaxSize bytes
	KindString                   // NUL-free string (e.g. a path)
	KindPtr                      // pointer to Elem (may be null)
	KindStruct                   // record of named Fields
	KindResource                 // a kernel resource handle of kind Resource
	KindProc                     // per-process id value (pid-like small integer)
)

// String returns the kind's syzlang keyword.
func (k TypeKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFlags:
		return "flags"
	case KindEnum:
		return "enum"
	case KindLen:
		return "len"
	case KindBuffer:
		return "buffer"
	case KindString:
		return "string"
	case KindPtr:
		return "ptr"
	case KindStruct:
		return "struct"
	case KindResource:
		return "resource"
	case KindProc:
		return "proc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Type describes one argument type. Types are immutable after registry
// construction and may be shared between syscalls.
type Type struct {
	Kind TypeKind
	Name string // type name for named types (flag sets, enums, structs)

	// KindInt: inclusive range.
	Min, Max uint64

	// KindFlags, KindEnum: the legal values and their source names.
	Values     []uint64
	ValueNames []string

	// KindLen: name of the sibling field whose byte length this encodes.
	LenTarget string

	// KindBuffer: maximum size in bytes.
	MaxSize int

	// KindPtr: pointee.
	Elem *Type

	// KindStruct: ordered fields.
	Fields []Field

	// KindResource: resource kind name (e.g. "fd", "sock").
	Resource string
}

// Field is a named member of a struct or a named syscall parameter.
type Field struct {
	Name string
	Type *Type
}

// IsScalar reports whether values of this type are represented by a single
// integer (and therefore mutated by scalar mutators).
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case KindInt, KindFlags, KindEnum, KindLen, KindResource, KindProc:
		return true
	}
	return false
}

// FlagMask returns the OR of all flag values; zero for non-flag types.
func (t *Type) FlagMask() uint64 {
	if t.Kind != KindFlags {
		return 0
	}
	var m uint64
	for _, v := range t.Values {
		m |= v
	}
	return m
}

// Syscall describes one system-call variant (e.g. "openat" or
// "ioctl$SCSI_SEND"). Variants of the same underlying call share the NR.
type Syscall struct {
	ID        int    // dense index into Registry.Calls
	NR        int    // underlying syscall number (shared across variants)
	Name      string // variant name, e.g. "sendmsg$inet"
	CallName  string // base name before '$', e.g. "sendmsg"
	Subsystem string // kernel subsystem that handles the call
	Args      []Field
	Ret       string // resource kind produced, or "" if none

	slots []Slot // lazily built flattened argument slots
}

// Slot identifies one mutable argument position of a syscall, after
// flattening nested pointers and structs. A "syz" test's mutation surface is
// the union of the slots of its calls; the paper reports >60 slots per test
// on average (§5.1).
type Slot struct {
	Index int    // dense index within the syscall's slot list
	Path  []int  // tree path: arg index, then field/pointee indices
	Name  string // dotted human-readable path, e.g. "msg.iov.len"
	Type  *Type
}

// Slots returns the flattened mutation slots of the syscall, computed once.
func (s *Syscall) Slots() []Slot {
	if s.slots == nil {
		s.slots = flattenSlots(s.Args)
		if len(s.slots) == 0 {
			s.slots = []Slot{} // distinguish "computed, empty" from "not computed"
		}
	}
	return s.slots
}

func flattenSlots(args []Field) []Slot {
	var slots []Slot
	var walk func(t *Type, path []int, name string)
	walk = func(t *Type, path []int, name string) {
		switch t.Kind {
		case KindPtr:
			// The pointer itself is mutable (null it, misalign it), and so
			// is everything behind it.
			slots = append(slots, Slot{Path: append([]int(nil), path...), Name: name, Type: t})
			walk(t.Elem, append(path, 0), name+".*")
		case KindStruct:
			for i, f := range t.Fields {
				walk(f.Type, append(path, i), name+"."+f.Name)
			}
		default:
			slots = append(slots, Slot{Path: append([]int(nil), path...), Name: name, Type: t})
		}
	}
	for i, a := range args {
		walk(a.Type, []int{i}, a.Name)
	}
	for i := range slots {
		slots[i].Index = i
	}
	return slots
}

// Resource describes a kernel resource kind.
type Resource struct {
	Name string
	// InvalidValue is the placeholder used when a program consumes a
	// resource no prior call produced (Syzkaller uses 0xffffffffffffffff).
	InvalidValue uint64
}

// Registry holds a compiled specification: every syscall variant, named
// type, and resource kind.
type Registry struct {
	Calls     []*Syscall
	Resources map[string]*Resource

	byName    map[string]*Syscall
	flagSets  map[string]*Type
	enumSets  map[string]*Type
	structs   map[string]*Type
	producers map[string][]*Syscall // resource kind -> calls producing it
}

// NewRegistry returns an empty registry ready for declarations.
func NewRegistry() *Registry {
	return &Registry{
		Resources: map[string]*Resource{},
		byName:    map[string]*Syscall{},
		flagSets:  map[string]*Type{},
		enumSets:  map[string]*Type{},
		structs:   map[string]*Type{},
		producers: map[string][]*Syscall{},
	}
}

// Lookup returns the syscall with the given variant name, or nil.
func (r *Registry) Lookup(name string) *Syscall { return r.byName[name] }

// Struct returns the named struct type, or nil.
func (r *Registry) Struct(name string) *Type { return r.structs[name] }

// FlagSet returns the named flag set type, or nil.
func (r *Registry) FlagSet(name string) *Type { return r.flagSets[name] }

// EnumSet returns the named enum type, or nil.
func (r *Registry) EnumSet(name string) *Type { return r.enumSets[name] }

// Producers returns the syscalls that produce the given resource kind.
func (r *Registry) Producers(kind string) []*Syscall { return r.producers[kind] }

// AddSyscall registers a syscall variant. It assigns the dense ID and
// derives CallName; it returns an error on duplicate names or references to
// undeclared resources.
func (r *Registry) AddSyscall(s *Syscall) error {
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("spec: duplicate syscall %q", s.Name)
	}
	s.ID = len(r.Calls)
	s.CallName = callName(s.Name)
	if s.Ret != "" {
		if _, ok := r.Resources[s.Ret]; !ok {
			return fmt.Errorf("spec: syscall %q returns undeclared resource %q", s.Name, s.Ret)
		}
		r.producers[s.Ret] = append(r.producers[s.Ret], s)
	}
	if err := r.checkResources(s); err != nil {
		return err
	}
	r.Calls = append(r.Calls, s)
	r.byName[s.Name] = s
	return nil
}

func (r *Registry) checkResources(s *Syscall) error {
	var check func(t *Type) error
	check = func(t *Type) error {
		switch t.Kind {
		case KindResource:
			if _, ok := r.Resources[t.Resource]; !ok {
				return fmt.Errorf("spec: syscall %q consumes undeclared resource %q", s.Name, t.Resource)
			}
		case KindPtr:
			return check(t.Elem)
		case KindStruct:
			for _, f := range t.Fields {
				if err := check(f.Type); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, a := range s.Args {
		if err := check(a.Type); err != nil {
			return err
		}
	}
	return nil
}

// AddResource declares a resource kind.
func (r *Registry) AddResource(name string) error {
	if _, dup := r.Resources[name]; dup {
		return fmt.Errorf("spec: duplicate resource %q", name)
	}
	r.Resources[name] = &Resource{Name: name, InvalidValue: ^uint64(0)}
	return nil
}

// callName strips the '$variant' suffix.
func callName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '$' {
			return name[:i]
		}
	}
	return name
}

// MaxSlots returns the largest slot count over all calls; useful for sizing
// model inputs.
func (r *Registry) MaxSlots() int {
	max := 0
	for _, c := range r.Calls {
		if n := len(c.Slots()); n > max {
			max = n
		}
	}
	return max
}
