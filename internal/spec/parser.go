package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles specification text into a Registry.
//
// The language is line-oriented; '#' starts a comment. Declarations must
// appear before their first use (resources, flag sets, enums and structs
// before the syscalls or structs that reference them). The forms are:
//
//	resource fd
//	flags open_flags = O_RDONLY:0x0, O_CREAT:0x40, O_RDWR:0x2
//	enum scsi_cmd = SEND_COMMAND:0x1, GET_BUS:0x5386
//	struct iovec = base ptr[buffer[128]], len len[base]
//	open(file string, flags flags[open_flags], mode int[0:511]) fd @fs
//	read(f fd, buf ptr[buffer[4096]], count len[buf]) @fs
//
// Type expressions: int[min:max], flags[set], enum[set], len[field],
// buffer[maxsize], string, proc, ptr[T], struct[name], or a bare resource
// kind name. A trailing bare word after the argument list names the resource
// the call produces; a trailing @word names the handling kernel subsystem.
func Parse(text string) (*Registry, error) {
	r := NewRegistry()
	nrByCall := map[string]int{}
	nextNR := 0
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		err := func() error {
			switch {
			case strings.HasPrefix(line, "resource "):
				return r.AddResource(strings.TrimSpace(strings.TrimPrefix(line, "resource ")))
			case strings.HasPrefix(line, "flags "):
				return r.parseValueSet(line[len("flags "):], KindFlags)
			case strings.HasPrefix(line, "enum "):
				return r.parseValueSet(line[len("enum "):], KindEnum)
			case strings.HasPrefix(line, "struct "):
				return r.parseStruct(line[len("struct "):])
			default:
				return r.parseSyscall(line, nrByCall, &nextNR)
			}
		}()
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", lineNo+1, err)
		}
	}
	return r, nil
}

// MustParse is Parse that panics on error; for built-in specifications.
func MustParse(text string) *Registry {
	r, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Registry) parseValueSet(rest string, kind TypeKind) error {
	name, body, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("missing '=' in value set declaration")
	}
	name = strings.TrimSpace(name)
	t := &Type{Kind: kind, Name: name}
	for _, item := range strings.Split(body, ",") {
		vname, vval, ok := strings.Cut(strings.TrimSpace(item), ":")
		if !ok {
			return fmt.Errorf("value %q missing ':value'", item)
		}
		v, err := parseUint(strings.TrimSpace(vval))
		if err != nil {
			return fmt.Errorf("value %q: %w", item, err)
		}
		t.ValueNames = append(t.ValueNames, strings.TrimSpace(vname))
		t.Values = append(t.Values, v)
	}
	if len(t.Values) == 0 {
		return fmt.Errorf("empty value set %q", name)
	}
	target := r.flagSets
	if kind == KindEnum {
		target = r.enumSets
	}
	if _, dup := target[name]; dup {
		return fmt.Errorf("duplicate %s set %q", kind, name)
	}
	target[name] = t
	return nil
}

func (r *Registry) parseStruct(rest string) error {
	name, body, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("missing '=' in struct declaration")
	}
	name = strings.TrimSpace(name)
	if _, dup := r.structs[name]; dup {
		return fmt.Errorf("duplicate struct %q", name)
	}
	fields, err := r.parseFieldList(body)
	if err != nil {
		return fmt.Errorf("struct %q: %w", name, err)
	}
	if len(fields) == 0 {
		return fmt.Errorf("struct %q has no fields", name)
	}
	r.structs[name] = &Type{Kind: KindStruct, Name: name, Fields: fields}
	return nil
}

func (r *Registry) parseSyscall(line string, nrByCall map[string]int, nextNR *int) error {
	open := strings.IndexByte(line, '(')
	if open < 0 {
		return fmt.Errorf("expected syscall declaration, got %q", line)
	}
	closeIdx := strings.LastIndexByte(line, ')')
	if closeIdx < open {
		return fmt.Errorf("unbalanced parentheses in %q", line)
	}
	name := strings.TrimSpace(line[:open])
	if name == "" {
		return fmt.Errorf("missing syscall name in %q", line)
	}
	args, err := r.parseFieldList(line[open+1 : closeIdx])
	if err != nil {
		return fmt.Errorf("syscall %q: %w", name, err)
	}
	s := &Syscall{Name: name, Args: args}
	for _, tok := range strings.Fields(line[closeIdx+1:]) {
		if strings.HasPrefix(tok, "@") {
			s.Subsystem = tok[1:]
		} else {
			if s.Ret != "" {
				return fmt.Errorf("syscall %q declares two return resources", name)
			}
			s.Ret = tok
		}
	}
	cn := callName(name)
	nr, ok := nrByCall[cn]
	if !ok {
		nr = *nextNR
		*nextNR++
		nrByCall[cn] = nr
	}
	s.NR = nr
	return r.AddSyscall(s)
}

// parseFieldList parses "name type, name type, ..." respecting nested
// brackets inside type expressions.
func (r *Registry) parseFieldList(body string) ([]Field, error) {
	var fields []Field
	for _, part := range splitTop(body, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sp := strings.IndexAny(part, " \t")
		if sp < 0 {
			return nil, fmt.Errorf("field %q missing type", part)
		}
		fname := part[:sp]
		t, err := r.parseType(strings.TrimSpace(part[sp+1:]))
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", fname, err)
		}
		fields = append(fields, Field{Name: fname, Type: t})
	}
	return fields, nil
}

// parseType parses one type expression.
func (r *Registry) parseType(expr string) (*Type, error) {
	expr = strings.TrimSpace(expr)
	base, arg, hasArg, err := splitBracket(expr)
	if err != nil {
		return nil, err
	}
	switch base {
	case "int":
		t := &Type{Kind: KindInt, Max: ^uint64(0)}
		if hasArg {
			lo, hi, ok := strings.Cut(arg, ":")
			if !ok {
				return nil, fmt.Errorf("int range %q must be min:max", arg)
			}
			if t.Min, err = parseUint(strings.TrimSpace(lo)); err != nil {
				return nil, err
			}
			if t.Max, err = parseUint(strings.TrimSpace(hi)); err != nil {
				return nil, err
			}
			if t.Min > t.Max {
				return nil, fmt.Errorf("int range %q inverted", arg)
			}
		}
		return t, nil
	case "flags":
		if !hasArg {
			return nil, fmt.Errorf("flags requires a set name")
		}
		t := r.flagSets[arg]
		if t == nil {
			return nil, fmt.Errorf("unknown flag set %q", arg)
		}
		return t, nil
	case "enum":
		if !hasArg {
			return nil, fmt.Errorf("enum requires a set name")
		}
		t := r.enumSets[arg]
		if t == nil {
			return nil, fmt.Errorf("unknown enum set %q", arg)
		}
		return t, nil
	case "len":
		if !hasArg {
			return nil, fmt.Errorf("len requires a target field name")
		}
		return &Type{Kind: KindLen, LenTarget: arg}, nil
	case "buffer":
		t := &Type{Kind: KindBuffer, MaxSize: 64}
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("buffer size %q invalid", arg)
			}
			t.MaxSize = n
		}
		return t, nil
	case "string":
		return &Type{Kind: KindString}, nil
	case "proc":
		return &Type{Kind: KindProc}, nil
	case "ptr":
		if !hasArg {
			return nil, fmt.Errorf("ptr requires a pointee type")
		}
		elem, err := r.parseType(arg)
		if err != nil {
			return nil, err
		}
		return &Type{Kind: KindPtr, Elem: elem}, nil
	case "struct":
		if !hasArg {
			return nil, fmt.Errorf("struct reference requires a name")
		}
		t := r.structs[arg]
		if t == nil {
			return nil, fmt.Errorf("unknown struct %q", arg)
		}
		return t, nil
	default:
		if hasArg {
			return nil, fmt.Errorf("unknown parameterized type %q", base)
		}
		if _, ok := r.Resources[base]; !ok {
			return nil, fmt.Errorf("unknown type or resource %q", base)
		}
		return &Type{Kind: KindResource, Resource: base}, nil
	}
}

// splitBracket separates "base[arg]" into base and arg, validating bracket
// balance. hasArg is false when expr has no brackets.
func splitBracket(expr string) (base, arg string, hasArg bool, err error) {
	i := strings.IndexByte(expr, '[')
	if i < 0 {
		return expr, "", false, nil
	}
	if !strings.HasSuffix(expr, "]") {
		return "", "", false, fmt.Errorf("unbalanced brackets in %q", expr)
	}
	depth := 0
	for j := i; j < len(expr); j++ {
		switch expr[j] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 && j != len(expr)-1 {
				return "", "", false, fmt.Errorf("trailing characters after bracket in %q", expr)
			}
		}
	}
	if depth != 0 {
		return "", "", false, fmt.Errorf("unbalanced brackets in %q", expr)
	}
	return expr[:i], expr[i+1 : len(expr)-1], true, nil
}

// splitTop splits s at top-level occurrences of sep (not inside brackets).
func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(', '{':
			depth++
		case ']', ')', '}':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseUint(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
