package spec

import (
	"strings"
	"testing"
)

func TestParseBaseSpec(t *testing.T) {
	r, err := Parse(BaseSpecText)
	if err != nil {
		t.Fatalf("base spec does not parse: %v", err)
	}
	if len(r.Calls) < 40 {
		t.Fatalf("base spec has %d calls, want >= 40", len(r.Calls))
	}
	if len(r.Resources) != 8 {
		t.Fatalf("base spec has %d resources, want 8", len(r.Resources))
	}
}

func TestLookupAndVariants(t *testing.T) {
	r := Base()
	open := r.Lookup("open")
	if open == nil {
		t.Fatal("open not found")
	}
	if open.Ret != "fd" || open.Subsystem != "fs" {
		t.Fatalf("open: ret=%q subsystem=%q", open.Ret, open.Subsystem)
	}
	sm := r.Lookup("sendmsg$inet")
	if sm == nil {
		t.Fatal("sendmsg$inet not found")
	}
	if sm.CallName != "sendmsg" {
		t.Fatalf("sendmsg$inet CallName = %q", sm.CallName)
	}
	if sm.NR != r.Lookup("sendmsg").NR {
		t.Fatal("variants of sendmsg do not share NR")
	}
	if sm.NR == r.Lookup("open").NR {
		t.Fatal("different calls share NR")
	}
}

func TestProducers(t *testing.T) {
	r := Base()
	fds := r.Producers("fd")
	if len(fds) < 3 {
		t.Fatalf("only %d producers of fd", len(fds))
	}
	names := map[string]bool{}
	for _, c := range fds {
		names[c.Name] = true
	}
	for _, want := range []string{"open", "openat", "dup"} {
		if !names[want] {
			t.Fatalf("fd producers missing %q (have %v)", want, names)
		}
	}
	if len(r.Producers("nonexistent")) != 0 {
		t.Fatal("producers of unknown resource should be empty")
	}
}

func TestSlotsFlattening(t *testing.T) {
	r := Base()
	// read(f fd, buf ptr[buffer[4096]], count len[buf]):
	// slots = f, buf(ptr), buf.*(buffer), count → 4.
	read := r.Lookup("read")
	slots := read.Slots()
	if len(slots) != 4 {
		t.Fatalf("read has %d slots: %+v", len(slots), slots)
	}
	wantKinds := []TypeKind{KindResource, KindPtr, KindBuffer, KindLen}
	for i, k := range wantKinds {
		if slots[i].Type.Kind != k {
			t.Fatalf("read slot %d kind %v, want %v", i, slots[i].Type.Kind, k)
		}
	}
	// Slot indices must be dense and match positions.
	for i, s := range slots {
		if s.Index != i {
			t.Fatalf("slot %d has Index %d", i, s.Index)
		}
	}
}

func TestSlotsNestedStruct(t *testing.T) {
	r := Base()
	sm := r.Lookup("sendmsg$inet")
	slots := sm.Slots()
	// msghdr nests sockaddr and iovec; expect a deep flattening.
	if len(slots) < 15 {
		t.Fatalf("sendmsg$inet has only %d slots, expected deep nesting", len(slots))
	}
	var sawPort, sawIovLen bool
	for _, s := range slots {
		if strings.Contains(s.Name, "port") {
			sawPort = true
		}
		if strings.Contains(s.Name, "iov_len") {
			sawIovLen = true
		}
	}
	if !sawPort || !sawIovLen {
		t.Fatalf("nested slots missing (port=%v iov_len=%v): %v", sawPort, sawIovLen, slotNames(slots))
	}
}

func slotNames(slots []Slot) []string {
	var names []string
	for _, s := range slots {
		names = append(names, s.Name)
	}
	return names
}

func TestSlotsCachedAndStable(t *testing.T) {
	r := Base()
	c := r.Lookup("mmap")
	a, b := c.Slots(), c.Slots()
	if len(a) != len(b) {
		t.Fatal("Slots not stable")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("Slots not cached consistently")
		}
	}
}

func TestSlotPathsResolveUniquely(t *testing.T) {
	r := Base()
	for _, c := range r.Calls {
		seen := map[string]bool{}
		for _, s := range c.Slots() {
			key := pathKey(s.Path)
			if seen[key] {
				t.Fatalf("%s: duplicate slot path %v", c.Name, s.Path)
			}
			seen[key] = true
			if len(s.Path) == 0 || s.Path[0] >= len(c.Args) {
				t.Fatalf("%s: slot path %v escapes arg list", c.Name, s.Path)
			}
		}
	}
}

func pathKey(p []int) string {
	var b strings.Builder
	for _, v := range p {
		b.WriteByte('.')
		b.WriteByte(byte('0' + v))
	}
	return b.String()
}

func TestFlagMask(t *testing.T) {
	r := Base()
	of := r.FlagSet("open_flags")
	if of == nil {
		t.Fatal("open_flags not found")
	}
	mask := of.FlagMask()
	if mask&0x40 == 0 || mask&0x2 == 0 {
		t.Fatalf("open_flags mask %#x missing O_CREAT or O_RDWR", mask)
	}
	if (&Type{Kind: KindInt}).FlagMask() != 0 {
		t.Fatal("FlagMask of non-flags type should be 0")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"unknown type", "foo(a nosuchtype)", "unknown type or resource"},
		{"dup resource", "resource fd\nresource fd", "duplicate resource"},
		{"dup call", "resource fd\nopen(a int) fd\nopen(b int) fd", "duplicate syscall"},
		{"undeclared ret", "open(a int) ghost", "undeclared resource"},
		{"bad int range", "foo(a int[5:1])", "inverted"},
		{"bad brackets", "foo(a int[1:2)", "unbalanced brackets"},
		{"unknown flags", "foo(a flags[nope])", "unknown flag set"},
		{"unknown struct", "foo(a ptr[struct[nope]])", "unknown struct"},
		{"flags no eq", "flags broken O_A:1", "missing '='"},
		{"empty enum", "enum e = ", "missing ':value'"},
		{"two rets", "resource fd\nfoo(a int) fd fd", "two return resources"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	r, err := Parse("# header\nresource fd # trailing\n\nopen(f string) fd # after\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Lookup("open") == nil {
		t.Fatal("comment handling broke declarations")
	}
}

func TestNestedPtrType(t *testing.T) {
	r, err := Parse("foo(a ptr[ptr[buffer[8]]])")
	if err != nil {
		t.Fatal(err)
	}
	foo := r.Lookup("foo")
	tt := foo.Args[0].Type
	if tt.Kind != KindPtr || tt.Elem.Kind != KindPtr || tt.Elem.Elem.Kind != KindBuffer {
		t.Fatalf("nested ptr parsed wrong: %+v", tt)
	}
	if tt.Elem.Elem.MaxSize != 8 {
		t.Fatalf("buffer size %d", tt.Elem.Elem.MaxSize)
	}
	// Slots: ptr, ptr, buffer.
	if n := len(foo.Slots()); n != 3 {
		t.Fatalf("got %d slots, want 3", n)
	}
}

func TestMaxSlots(t *testing.T) {
	r := Base()
	if m := r.MaxSlots(); m < 15 {
		t.Fatalf("MaxSlots = %d, want >= 15 (deep msghdr/scsi nesting)", m)
	}
}

func TestEnumAndIntParsing(t *testing.T) {
	r := Base()
	dom := r.EnumSet("sock_domain")
	if dom == nil || len(dom.Values) != 5 {
		t.Fatalf("sock_domain = %+v", dom)
	}
	if dom.Values[1] != 2 || dom.ValueNames[1] != "AF_INET" {
		t.Fatalf("AF_INET parsed wrong: %v %v", dom.Values, dom.ValueNames)
	}
	mm := r.Lookup("mmap")
	lenT := mm.Args[1].Type
	if lenT.Kind != KindInt || lenT.Min != 4096 || lenT.Max != 1048576 {
		t.Fatalf("mmap length type = %+v", lenT)
	}
}

func TestScalarClassification(t *testing.T) {
	scalar := []TypeKind{KindInt, KindFlags, KindEnum, KindLen, KindResource, KindProc}
	nonScalar := []TypeKind{KindBuffer, KindString, KindPtr, KindStruct}
	for _, k := range scalar {
		if !(&Type{Kind: k}).IsScalar() {
			t.Fatalf("%v should be scalar", k)
		}
	}
	for _, k := range nonScalar {
		if (&Type{Kind: k}).IsScalar() {
			t.Fatalf("%v should not be scalar", k)
		}
	}
}
