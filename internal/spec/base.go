package spec

// BaseSpecText is the hand-written core of the Linux-like specification:
// the file, memory, socket, and SCSI/ATA syscall surface used by the
// examples and by the planted Table-4 bugs. Kernel version generators
// (internal/kernel) append generated subsystem specifications to this text.
const BaseSpecText = `
# Resources.
resource fd
resource sock
resource scsi_fd
resource pipe_fd
resource epoll_fd
resource timer_id
resource shm_id
resource io_uring_fd

# Flag and enum sets.
flags open_flags = O_RDONLY:0x0, O_WRONLY:0x1, O_RDWR:0x2, O_CREAT:0x40, O_EXCL:0x80, O_TRUNC:0x200, O_APPEND:0x400, O_NONBLOCK:0x800, O_DIRECT:0x4000
flags mmap_prot = PROT_READ:0x1, PROT_WRITE:0x2, PROT_EXEC:0x4
flags mmap_flags = MAP_SHARED:0x1, MAP_PRIVATE:0x2, MAP_FIXED:0x10, MAP_ANONYMOUS:0x20, MAP_GROWSDOWN:0x100
flags msg_flags = MSG_OOB:0x1, MSG_PEEK:0x2, MSG_DONTROUTE:0x4, MSG_DONTWAIT:0x40, MSG_EOR:0x80, MSG_WAITALL:0x100
flags sock_type_flags = SOCK_NONBLOCK:0x800, SOCK_CLOEXEC:0x80000
flags madvise_flags = MADV_NORMAL:0x0, MADV_RANDOM:0x1, MADV_SEQUENTIAL:0x2, MADV_WILLNEED:0x3, MADV_DONTNEED:0x4
flags epoll_events = EPOLLIN:0x1, EPOLLOUT:0x4, EPOLLERR:0x8, EPOLLHUP:0x10, EPOLLET:0x80000000
flags uring_enter_flags = IORING_ENTER_GETEVENTS:0x1, IORING_ENTER_SQ_WAKEUP:0x2, IORING_ENTER_SQ_WAIT:0x4, IORING_ENTER_EXT_ARG:0x8
enum sock_domain = AF_UNIX:0x1, AF_INET:0x2, AF_INET6:0xa, AF_NETLINK:0x10, AF_PACKET:0x11
enum sock_type = SOCK_STREAM:0x1, SOCK_DGRAM:0x2, SOCK_RAW:0x3, SOCK_SEQPACKET:0x5
enum scsi_ioctl_cmd = SCSI_IOCTL_SEND_COMMAND:0x1, SCSI_IOCTL_GET_IDLUN:0x5382, SCSI_IOCTL_GET_BUS_NUMBER:0x5386, SCSI_IOCTL_PROBE_HOST:0x5385
enum ata_proto = ATA_PROT_NODATA:0x0, ATA_PROT_PIO:0x1, ATA_PROT_DMA:0x2
enum ata_cmd = ATA_NOP:0x0, ATA_READ_SECTORS:0x20, ATA_WRITE_SECTORS:0x30, ATA_IDENTIFY:0xec
enum scsi_opcode = TEST_UNIT_READY:0x0, READ_6:0x8, WRITE_6:0xa, INQUIRY:0x12, ATA_16:0x85
enum seek_whence = SEEK_SET:0x0, SEEK_CUR:0x1, SEEK_END:0x2
enum epoll_op = EPOLL_CTL_ADD:0x1, EPOLL_CTL_DEL:0x2, EPOLL_CTL_MOD:0x3

# Structs.
struct iovec = base ptr[buffer[128]], iov_len len[base]
struct sockaddr = family enum[sock_domain], port int[0:65535], addr buffer[16]
struct msghdr = name ptr[struct[sockaddr]], namelen len[name], iov ptr[struct[iovec]], iovlen int[0:8], control ptr[buffer[64]], controllen len[control], flags flags[msg_flags]
struct ata_taskfile = proto enum[ata_proto], command enum[ata_cmd], nsect int[0:256], lbal int[0:255], lbam int[0:255], lbah int[0:255], device int[0:255]
struct scsi_cmd_hdr = opcode enum[scsi_opcode], tf ptr[struct[ata_taskfile]], inlen int[0:131072], outlen int[0:131072], data ptr[buffer[512]]
struct epoll_event = events flags[epoll_events], data int[0:0xffffffff]
struct itimerspec = interval_sec int[0:3600], interval_nsec int[0:999999999], value_sec int[0:3600], value_nsec int[0:999999999]

# File subsystem.
open(file string, flags flags[open_flags], mode int[0:511]) fd @fs
openat(dirfd fd, file string, flags flags[open_flags], mode int[0:511]) fd @fs
read(f fd, buf ptr[buffer[4096]], count len[buf]) @fs
write(f fd, buf ptr[buffer[4096]], count len[buf]) @fs
pread64(f fd, buf ptr[buffer[4096]], count len[buf], off int[0:1048576]) @fs
pwrite64(f fd, buf ptr[buffer[4096]], count len[buf], off int[0:1048576]) @fs
lseek(f fd, offset int[0:1048576], whence enum[seek_whence]) @fs
close(f fd) @fs
fsync(f fd) @fs
ftruncate(f fd, length int[0:1048576]) @fs
fallocate(f fd, mode int[0:3], off int[0:1048576], length int[0:1048576]) @fs
dup(f fd) fd @fs
pipe2(flags flags[open_flags]) pipe_fd @fs

# Memory subsystem.
mmap(addr int[0:0xffffffff], length int[4096:1048576], prot flags[mmap_prot], flags flags[mmap_flags], f fd, off int[0:1048576]) @mm
munmap(addr int[0:0xffffffff], length int[4096:1048576]) @mm
mprotect(addr int[0:0xffffffff], length int[4096:1048576], prot flags[mmap_prot]) @mm
madvise(addr int[0:0xffffffff], length int[4096:1048576], advice flags[madvise_flags]) @mm
mremap(old int[0:0xffffffff], oldlen int[4096:1048576], newlen int[4096:1048576], flags int[0:3]) @mm

# Socket subsystem.
socket(domain enum[sock_domain], type enum[sock_type], proto int[0:255]) sock @net
socket$inet(domain enum[sock_domain], type enum[sock_type], proto int[0:255]) sock @net
bind(s sock, addr ptr[struct[sockaddr]], addrlen len[addr]) @net
connect(s sock, addr ptr[struct[sockaddr]], addrlen len[addr]) @net
listen(s sock, backlog int[0:128]) @net
accept(s sock, addr ptr[struct[sockaddr]], addrlen len[addr]) sock @net
sendmsg(s sock, msg ptr[struct[msghdr]], flags flags[msg_flags]) @net
sendmsg$inet(s sock, msg ptr[struct[msghdr]], flags flags[msg_flags]) @net
recvmsg(s sock, msg ptr[struct[msghdr]], flags flags[msg_flags]) @net
sendto(s sock, buf ptr[buffer[1024]], count len[buf], flags flags[msg_flags], addr ptr[struct[sockaddr]], addrlen len[addr]) @net
recvfrom(s sock, buf ptr[buffer[1024]], count len[buf], flags flags[msg_flags], addr ptr[struct[sockaddr]], addrlen len[addr]) @net
setsockopt(s sock, level int[0:41], optname int[0:64], optval ptr[buffer[64]], optlen len[optval]) @net
getsockopt(s sock, level int[0:41], optname int[0:64], optval ptr[buffer[64]], optlen len[optval]) @net
shutdown(s sock, how int[0:2]) @net

# Epoll subsystem.
epoll_create1(flags flags[sock_type_flags]) epoll_fd @fs
epoll_ctl(ep epoll_fd, op enum[epoll_op], f fd, event ptr[struct[epoll_event]]) @fs
epoll_wait(ep epoll_fd, events ptr[struct[epoll_event]], maxevents int[1:64], timeout int[0:1000]) @fs

# SCSI / ATA driver subsystem (hosts the Table-4 planted OOB-write bug).
openat$scsi(dirfd fd, file string, flags flags[open_flags], mode int[0:511]) scsi_fd @scsi
ioctl$SCSI_IOCTL_SEND_COMMAND(f scsi_fd, cmd enum[scsi_ioctl_cmd], arg ptr[struct[scsi_cmd_hdr]]) @scsi
ioctl$SCSI_IOCTL_GET_IDLUN(f scsi_fd, cmd enum[scsi_ioctl_cmd], arg ptr[buffer[8]]) @scsi
ioctl$SG_IO(f scsi_fd, cmd int[0x2285:0x2285], hdr ptr[struct[scsi_cmd_hdr]]) @scsi

# Timers.
timer_create(clockid int[0:11], sevp ptr[buffer[32]]) timer_id @time
timer_settime(t timer_id, flags int[0:1], newval ptr[struct[itimerspec]], oldval ptr[struct[itimerspec]]) @time
timer_delete(t timer_id) @time

# io_uring.
io_uring_setup(entries int[1:4096], params ptr[buffer[64]]) io_uring_fd @io_uring
io_uring_enter(f io_uring_fd, to_submit int[0:128], min_complete int[0:128], flags flags[uring_enter_flags], sig ptr[buffer[8]]) @io_uring
io_uring_register(f io_uring_fd, opcode int[0:30], arg ptr[buffer[64]], nr_args int[0:64]) @io_uring

# System V shared memory.
shmget(key proc, size int[4096:1048576], shmflg int[0:4095]) shm_id @ipc
shmat(id shm_id, addr int[0:0xffffffff], flg int[0:0x7000]) @ipc
shmctl(id shm_id, cmd int[0:15], buf ptr[buffer[64]]) @ipc
`

// Base returns the compiled base registry. Each call constructs a fresh
// registry so callers may extend it independently.
func Base() *Registry { return MustParse(BaseSpecText) }
