package kernel

import "fmt"

// PredKind classifies branch predicates.
type PredKind int

// The predicate kinds. Slot predicates inspect the invoking call's flattened
// argument slots; state predicates inspect persistent kernel state.
const (
	PredSlotEQ        PredKind = iota // slot value == Value
	PredSlotNEQ                       // slot value != Value
	PredSlotLT                        // slot value < Value
	PredSlotGT                        // slot value > Value
	PredSlotMaskSet                   // slot value & Mask == Mask
	PredSlotMaskClear                 // slot value & Mask == 0
	PredSlotLenGT                     // slot byte length > Value (buffers/strings)
	PredSlotLenLT                     // slot byte length < Value
	PredSlotNonNull                   // slot pointer is non-null / slot present
	PredResourceValid                 // slot holds a live resource handle
	PredCounterGT                     // Counters[Key] > Value
	PredCounterEQ                     // Counters[Key] == Value
)

// Predicate is a branch condition.
type Predicate struct {
	Kind  PredKind
	Slot  int    // flattened slot index within the handler's syscall
	Value uint64 // comparison operand
	Mask  uint64 // for mask predicates
	Key   string // for counter predicates
}

// SlotView is the executor's view of one argument slot at call time.
type SlotView struct {
	// Present is false when the slot sits behind a null pointer.
	Present bool
	// Val is the scalar value: the constant for scalar slots, the resolved
	// handle for resources, 1/0 for pointers (non-null/null).
	Val uint64
	// Len is the byte length for buffers and strings (0 otherwise).
	Len int
	// IsResource marks resource slots; Val then holds the handle.
	IsResource bool
}

// Eval evaluates the predicate against the call's slot views and kernel
// state. Predicates over absent slots (behind null pointers) are false,
// matching a kernel that bails out on EFAULT before deeper checks.
func (p *Predicate) Eval(slots []SlotView, st *State) bool {
	slot := func() (SlotView, bool) {
		if p.Slot < 0 || p.Slot >= len(slots) {
			return SlotView{}, false
		}
		v := slots[p.Slot]
		return v, v.Present
	}
	switch p.Kind {
	case PredSlotEQ:
		v, ok := slot()
		return ok && v.Val == p.Value
	case PredSlotNEQ:
		v, ok := slot()
		return ok && v.Val != p.Value
	case PredSlotLT:
		v, ok := slot()
		return ok && v.Val < p.Value
	case PredSlotGT:
		v, ok := slot()
		return ok && v.Val > p.Value
	case PredSlotMaskSet:
		v, ok := slot()
		return ok && v.Val&p.Mask == p.Mask
	case PredSlotMaskClear:
		v, ok := slot()
		return ok && v.Val&p.Mask == 0
	case PredSlotLenGT:
		v, ok := slot()
		return ok && uint64(v.Len) > p.Value
	case PredSlotLenLT:
		v, ok := slot()
		return ok && uint64(v.Len) < p.Value
	case PredSlotNonNull:
		v, ok := slot()
		return ok && v.Val != 0
	case PredResourceValid:
		v, ok := slot()
		return ok && v.IsResource && st.ValidHandle(v.Val, "")
	case PredCounterGT:
		return st.Counters[p.Key] > p.Value
	case PredCounterEQ:
		return st.Counters[p.Key] == p.Value
	default:
		panic(fmt.Sprintf("kernel: unknown predicate kind %d", p.Kind))
	}
}

// String renders the predicate for debugging.
func (p *Predicate) String() string {
	switch p.Kind {
	case PredSlotEQ:
		return fmt.Sprintf("slot%d == %#x", p.Slot, p.Value)
	case PredSlotNEQ:
		return fmt.Sprintf("slot%d != %#x", p.Slot, p.Value)
	case PredSlotLT:
		return fmt.Sprintf("slot%d < %#x", p.Slot, p.Value)
	case PredSlotGT:
		return fmt.Sprintf("slot%d > %#x", p.Slot, p.Value)
	case PredSlotMaskSet:
		return fmt.Sprintf("slot%d & %#x set", p.Slot, p.Mask)
	case PredSlotMaskClear:
		return fmt.Sprintf("slot%d & %#x clear", p.Slot, p.Mask)
	case PredSlotLenGT:
		return fmt.Sprintf("len(slot%d) > %d", p.Slot, p.Value)
	case PredSlotLenLT:
		return fmt.Sprintf("len(slot%d) < %d", p.Slot, p.Value)
	case PredSlotNonNull:
		return fmt.Sprintf("slot%d != NULL", p.Slot)
	case PredResourceValid:
		return fmt.Sprintf("valid(slot%d)", p.Slot)
	case PredCounterGT:
		return fmt.Sprintf("counter[%s] > %d", p.Key, p.Value)
	case PredCounterEQ:
		return fmt.Sprintf("counter[%s] == %d", p.Key, p.Value)
	default:
		return fmt.Sprintf("pred(%d)", int(p.Kind))
	}
}

// DependsOnSlot reports whether the predicate inspects argument slot i.
func (p *Predicate) DependsOnSlot(i int) bool {
	switch p.Kind {
	case PredCounterGT, PredCounterEQ:
		return false
	default:
		return p.Slot == i
	}
}
