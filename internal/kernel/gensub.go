package kernel

import (
	"fmt"
	"strings"

	"github.com/repro/snowplow/internal/rng"
)

// genSubsystemSpec appends a generated subsystem's syzlang declarations to
// sb. The subsystem gets its own resource kind, a flag set, an enum set, two
// (possibly nested) request structs, an open call producing the resource,
// and a family of ctl/transfer calls consuming it. Everything derives
// deterministically from the subsystem seed, so kernels sharing a subsysDef
// share its specification exactly.
func genSubsystemSpec(sb *strings.Builder, sub subsysDef) {
	r := rng.New(sub.Seed)
	n := sub.Name
	fmt.Fprintf(sb, "\n# Generated subsystem %s (seed %#x).\n", n, sub.Seed)
	fmt.Fprintf(sb, "resource %s_handle\n", n)

	// Flag set: 6-9 single-bit flags.
	nflags := 6 + r.Intn(4)
	fmt.Fprintf(sb, "flags %s_flags = ", n)
	for i := 0; i < nflags; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s_F%d:0x%x", strings.ToUpper(n), i, 1<<uint(i))
	}
	sb.WriteByte('\n')

	// Enum set: 6-12 command values (real ioctl command spaces are wide).
	ncmds := 6 + r.Intn(7)
	fmt.Fprintf(sb, "enum %s_cmd = ", n)
	for i := 0; i < ncmds; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s_CMD%d:0x%x", strings.ToUpper(n), i, 0x10+i*4)
	}
	sb.WriteByte('\n')

	// Config struct, then a request struct that may nest it.
	fmt.Fprintf(sb, "struct %s_conf = mode int[0:15], mask flags[%s_flags], val int[0:65535]\n", n, n)
	fmt.Fprintf(sb, "struct %s_req = cmd enum[%s_cmd], flags flags[%s_flags], size int[0:4096], payload ptr[buffer[128]], plen len[payload]", n, n, n)
	if r.Chance(0.7) {
		fmt.Fprintf(sb, ", conf ptr[struct[%s_conf]]", n)
	}
	if r.Chance(0.5) {
		sb.WriteString(", id proc")
	}
	sb.WriteByte('\n')

	// Producer.
	fmt.Fprintf(sb, "open$%s(path string, flags flags[%s_flags]) %s_handle @%s\n", n, n, n, n)

	// Consumer family.
	ncalls := 5 + r.Intn(5)
	for i := 0; i < ncalls; i++ {
		fmt.Fprintf(sb, "ctl$%s_%d(h %s_handle", n, i, n)
		nargs := 2 + r.Intn(3)
		for j := 0; j < nargs; j++ {
			switch r.Intn(7) {
			case 0:
				fmt.Fprintf(sb, ", cmd%d enum[%s_cmd]", j, n)
			case 1:
				fmt.Fprintf(sb, ", flags%d flags[%s_flags]", j, n)
			case 2:
				fmt.Fprintf(sb, ", size%d int[0:4096]", j)
			case 3:
				fmt.Fprintf(sb, ", addr%d int[0:0xffffffff]", j)
			case 4:
				fmt.Fprintf(sb, ", req%d ptr[struct[%s_req]]", j, n)
			case 5:
				fmt.Fprintf(sb, ", buf%d ptr[buffer[256]], blen%d len[buf%d]", j, j, j)
			case 6:
				fmt.Fprintf(sb, ", mode%d int[0:7]", j)
			}
		}
		fmt.Fprintf(sb, ") @%s\n", n)
	}
	// A transfer-style call with a data buffer.
	fmt.Fprintf(sb, "xfer$%s(h %s_handle, dir int[0:1], buf ptr[buffer[512]], count len[buf], flags flags[%s_flags]) @%s\n", n, n, n, n)
}
