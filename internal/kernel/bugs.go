package kernel

import (
	"fmt"
	"strings"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// predSpec declares one predicate of a hand-planted bug chain by slot name.
type predSpec struct {
	slot  string // slot name from spec.Syscall.Slots, "" for counter preds
	kind  PredKind
	value uint64
	mask  uint64
	key   string
}

// plantedBug describes one hand-crafted bug (Table 4 of the paper).
type plantedBug struct {
	variant string
	fn      string
	preds   []predSpec
	crash   CrashSpec
}

// baseBugs are the seven diagnosed bugs of Table 4, planted in base-spec
// handlers with the argument-constraint chains the paper describes, plus a
// handful of shallow bugs already on the simulated Syzbot known list.
var baseBugs = []plantedBug{
	{
		// Bug #1: the two-decade-old ATA driver out-of-bounds write. The
		// chain mirrors the paper: SCSI_IOCTL_SEND_COMMAND request, ATA_16
		// pass-through opcode, ATA_NOP command, ATA_PROT_PIO protocol, and
		// an oversized data length slipping past the boundary check.
		variant: "ioctl$SCSI_IOCTL_SEND_COMMAND",
		fn:      "ata_pio_sector",
		preds: []predSpec{
			{slot: "cmd", kind: PredSlotEQ, value: 0x1},                // SCSI_IOCTL_SEND_COMMAND
			{slot: "arg.*.opcode", kind: PredSlotEQ, value: 0x85},      // ATA_16
			{slot: "arg.*.tf.*.command", kind: PredSlotEQ, value: 0x0}, // ATA_NOP
			{slot: "arg.*.tf.*.proto", kind: PredSlotEQ, value: 0x1},   // ATA_PROT_PIO
			{slot: "arg.*.inlen", kind: PredSlotGT, value: 512},
		},
		crash: CrashSpec{
			Title:    "KASAN: out-of-bounds Write in ata_pio_sector",
			Category: "Out of bounds access",
			Detector: "KASAN",
		},
	},
	{
		// Bug #2: GPF via io_uring.
		variant: "io_uring_enter",
		fn:      "native_tss_update_io_bitmap",
		preds: []predSpec{
			{slot: "flags", kind: PredSlotMaskSet, mask: 0x2}, // IORING_ENTER_SQ_WAKEUP
			{slot: "to_submit", kind: PredSlotGT, value: 64},
			{slot: "min_complete", kind: PredSlotEQ, value: 0},
		},
		crash: CrashSpec{
			Title:    "general protection fault in native_tss_update_io_bitmap",
			Category: "General protection fault",
			Detector: "",
		},
	},
	{
		// Bug #3: RCU stall via timer interrupt pressure.
		variant: "timer_settime",
		fn:      "__sanitizer_cov_trace_pc",
		preds: []predSpec{
			{slot: "newval.*.value_sec", kind: PredSlotGT, value: 3590},
			{slot: "newval.*.interval_nsec", kind: PredSlotLT, value: 10},
		},
		crash: CrashSpec{
			Title:    "RCU stall in __sanitizer_cov_trace_pc",
			Category: "Other",
			Detector: "RCU stall detector",
		},
	},
	{
		// Bug #4: GUP no longer grows the stack.
		variant: "mmap",
		fn:      "expand_stack",
		preds: []predSpec{
			{slot: "flags", kind: PredSlotMaskSet, mask: 0x100}, // MAP_GROWSDOWN
			{slot: "prot", kind: PredSlotMaskSet, mask: 0x2},    // PROT_WRITE
			{slot: "addr", kind: PredSlotGT, value: 0xf0000000},
		},
		crash: CrashSpec{
			Title:    "GUP (Get User Pages) no longer grows the stack",
			Category: "Warning",
			Detector: "Built-in checker",
		},
	},
	{
		// Bug #5: WARNING in ext4_iomap_begin via pwrite64.
		variant: "pwrite64",
		fn:      "ext4_iomap_begin",
		preds: []predSpec{
			{slot: "off", kind: PredSlotGT, value: 1000000},
			{slot: "buf.*", kind: PredSlotLenGT, value: 2048},
		},
		crash: CrashSpec{
			Title:    "WARNING in ext4_iomap_begin",
			Category: "Warning",
			Detector: "WARN_ON()",
		},
	},
	{
		// Bug #6: kernel BUG in ext4_do_writepages, reached via background
		// writeback pressure (accumulated fs operations) plus fsync.
		variant: "fsync",
		fn:      "ext4_do_writepages",
		preds: []predSpec{
			{kind: PredCounterGT, key: "ops_fs", value: 12},
		},
		crash: CrashSpec{
			Title:    "kernel BUG in ext4_do_writepages",
			Category: "Explicit assertion violation",
			Detector: "BUG()",
		},
	},
	{
		// Bug #7: slab-use-after-free in ext4_search_dir via open.
		variant: "open",
		fn:      "ext4_search_dir",
		preds: []predSpec{
			{slot: "flags", kind: PredSlotMaskSet, mask: 0x40},   // O_CREAT
			{slot: "flags", kind: PredSlotMaskSet, mask: 0x4000}, // O_DIRECT
			{slot: "mode", kind: PredSlotGT, value: 0x100},
		},
		crash: CrashSpec{
			Title:    "KASAN: slab-use-after-free Read in ext4_search_dir",
			Category: "Out of bounds access",
			Detector: "KASAN",
		},
	},

	// Shallow bugs already on the simulated Syzbot known list: both fuzzers
	// rediscover these (Table 2's "Known Crashes" rows).
	{
		variant: "read",
		fn:      "generic_file_read_iter",
		preds:   []predSpec{{slot: "buf.*", kind: PredSlotLenGT, value: 4000}},
		crash: CrashSpec{
			Title: "WARNING in generic_file_read_iter", Category: "Warning",
			Detector: "WARN_ON()", KnownSince: "2019-03",
		},
	},
	{
		variant: "connect",
		fn:      "inet_stream_connect",
		preds:   []predSpec{{slot: "addr.*.family", kind: PredSlotEQ, value: 0x10}},
		crash: CrashSpec{
			Title: "general protection fault in inet_stream_connect", Category: "General protection fault",
			Detector: "", KnownSince: "2020-11",
		},
	},
	{
		variant: "setsockopt",
		fn:      "sock_setsockopt",
		preds:   []predSpec{{slot: "level", kind: PredSlotGT, value: 39}},
		crash: CrashSpec{
			Title: "KASAN: null-ptr-deref in sock_setsockopt", Category: "Null pointer dereference",
			Detector: "KASAN", KnownSince: "2018-07",
		},
	},
	{
		variant: "shmat",
		fn:      "do_shmat",
		preds:   []predSpec{{slot: "flg", kind: PredSlotGT, value: 0x6000}},
		crash: CrashSpec{
			Title: "BUG: unable to handle page fault in do_shmat", Category: "Paging fault",
			Detector: "", KnownSince: "2021-05",
		},
	},
	{
		variant: "epoll_ctl",
		fn:      "ep_insert",
		preds:   []predSpec{{slot: "op", kind: PredSlotEQ, value: 0x3}, {slot: "event", kind: PredSlotNonNull}},
		crash: CrashSpec{
			Title: "WARNING in ep_insert", Category: "Warning",
			Detector: "WARN_ON()", KnownSince: "2022-01",
		},
	},
	{
		variant: "mremap",
		fn:      "move_vma",
		preds:   []predSpec{{slot: "newlen", kind: PredSlotGT, value: 1000000}},
		crash: CrashSpec{
			Title: "KASAN: slab-out-of-bounds Read in move_vma", Category: "Out of bounds access",
			Detector: "KASAN", KnownSince: "2019-09",
		},
	},
}

// plantBaseBugs installs the hand-crafted bugs into their handlers.
func plantBaseBugs(b *builder) {
	for _, bug := range baseBugs {
		h := b.k.Handlers[bug.variant]
		if h == nil {
			panic(fmt.Sprintf("kernel: planted bug references missing handler %q", bug.variant))
		}
		preds := make([]*Predicate, len(bug.preds))
		for i, ps := range bug.preds {
			preds[i] = resolvePred(h.Call, ps)
		}
		cs := bug.crash
		b.plantChain(h, preds, &cs, bug.fn)
	}
}

// resolvePred converts a named predSpec into a concrete Predicate.
func resolvePred(call *spec.Syscall, ps predSpec) *Predicate {
	p := &Predicate{Kind: ps.kind, Value: ps.value, Mask: ps.mask, Key: ps.key}
	if ps.slot != "" {
		idx := -1
		for _, s := range call.Slots() {
			if s.Name == ps.slot {
				idx = s.Index
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("kernel: bug chain references unknown slot %q of %s (have %v)",
				ps.slot, call.Name, slotNames(call)))
		}
		p.Slot = idx
	}
	return p
}

func slotNames(call *spec.Syscall) []string {
	var names []string
	for _, s := range call.Slots() {
		names = append(names, s.Name)
	}
	return names
}

// plantChain inserts a predicate chain into the handler immediately after
// its entry block: each satisfied predicate descends one level deeper, each
// unsatisfied one falls back to the handler's original code, and the last
// level executes the crash block. The crash block's function name carries
// the bug's symbolization target.
func (b *builder) plantChain(h *Handler, preds []*Predicate, cs *CrashSpec, fn string) {
	entry := &b.k.Blocks[h.Entry]
	if entry.Kind != BlockBody {
		panic("kernel: handler entry is not a body block")
	}
	orig := entry.Next
	sub := entry.Subsystem

	crash := b.newBlock(sub, fn, BlockCrash)
	b.k.Blocks[crash].Tokens = crashTokens(cs.Detector)
	b.k.Blocks[crash].Crash = cs
	b.k.bugs = append(b.k.bugs, cs)
	h.Blocks = append(h.Blocks, crash)

	next := crash
	for i := len(preds) - 1; i >= 0; i-- {
		blk := b.newBlock(sub, fn, BlockBranch)
		b.k.Blocks[blk].Pred = preds[i]
		b.k.Blocks[blk].Tokens = predTokens(h.Call, preds[i])
		b.k.Blocks[blk].Taken = next
		b.k.Blocks[blk].NotTaken = orig
		h.Blocks = append(h.Blocks, blk)
		next = blk
	}
	b.k.Blocks[h.Entry].Next = next
}

// crashTemplates drive generated-bug titles, roughly matching the Table-3
// category mix.
var crashTemplates = []struct {
	titleFmt string
	category string
	detector string
	weight   float64
}{
	{"general protection fault in %s", "General protection fault", "", 0.40},
	{"BUG: unable to handle page fault for address in %s", "Paging fault", "", 0.23},
	{"KASAN: null-ptr-deref Read in %s", "Null pointer dereference", "KASAN", 0.11},
	{"WARNING in %s", "Warning", "WARN_ON()", 0.10},
	{"kernel BUG in %s", "Explicit assertion violation", "BUG()", 0.05},
	{"KASAN: slab-out-of-bounds Write in %s", "Out of bounds access", "KASAN", 0.06},
	{"unregister_netdevice: waiting for DEV to become free in %s", "Other", "", 0.05},
}

// plantGeneratedBugs scatters bugs across generated-subsystem handlers:
// deep chains (2-4 argument predicates) for previously-unknown bugs, and
// single-predicate shallow bugs for the Syzbot-known list. A third of the
// new bugs are flaky, modeling the concurrency-dependent crashes that
// syz-repro fails to reproduce (§5.3.2). Bug placement derives from each
// subsystem's seed, so kernel versions sharing a subsystem share its bugs —
// exactly as an unfixed bug persists across releases.
func plantGeneratedBugs(b *builder, cfg Config) {
	nsubs := len(cfg.Subsystems)
	if nsubs == 0 {
		return
	}
	newPer := (cfg.GeneratedNewBugs + nsubs - 1) / nsubs
	knownPer := (cfg.GeneratedKnownBugs + nsubs - 1) / nsubs
	for _, sub := range cfg.Subsystems {
		var handlers []*Handler
		for _, call := range b.k.Target.Calls {
			if call.Subsystem == sub.Name {
				handlers = append(handlers, b.k.Handlers[call.Name])
			}
		}
		if len(handlers) == 0 {
			continue
		}
		r := rng.New(hashSeed("bugs", fmt.Sprint(sub.Seed)))
		for i := 0; i < newPer; i++ {
			h := handlers[r.Intn(len(handlers))]
			depth := 2 + r.Intn(3)
			preds := make([]*Predicate, depth)
			for j := range preds {
				preds[j] = b.genPred(h.Call, r, h.Call.Subsystem)
			}
			tmpl := crashTemplates[r.Choose(templateWeights())]
			fn := fmt.Sprintf("%s_%s_%x", h.Call.Subsystem, shortOp(h.Call.Name), i)
			cs := &CrashSpec{
				Title:    fmt.Sprintf(tmpl.titleFmt, fn),
				Category: tmpl.category,
				Detector: tmpl.detector,
				Flaky:    r.Chance(0.33),
			}
			b.plantChain(h, preds, cs, fn)
		}
		for i := 0; i < knownPer; i++ {
			h := handlers[r.Intn(len(handlers))]
			preds := []*Predicate{b.genPred(h.Call, r, h.Call.Subsystem)}
			tmpl := crashTemplates[r.Choose(templateWeights())]
			fn := fmt.Sprintf("%s_%s_known_%x", h.Call.Subsystem, shortOp(h.Call.Name), i)
			cs := &CrashSpec{
				Title:      fmt.Sprintf(tmpl.titleFmt, fn),
				Category:   tmpl.category,
				Detector:   tmpl.detector,
				KnownSince: fmt.Sprintf("20%02d-%02d", 18+r.Intn(6), 1+r.Intn(12)),
				Flaky:      r.Chance(0.2),
			}
			b.plantChain(h, preds, cs, fn)
		}
	}
}

func templateWeights() []float64 {
	ws := make([]float64, len(crashTemplates))
	for i, t := range crashTemplates {
		ws[i] = t.weight
	}
	return ws
}

func shortOp(name string) string {
	name = strings.ReplaceAll(name, "$", "_")
	if len(name) > 12 {
		name = name[:12]
	}
	return name
}
