package kernel

import (
	"fmt"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// argRegs are the x86-64 system-call argument registers, in ABI order. Slots
// nested deeper than six top-level arguments spill to stack tokens.
var argRegs = []string{"rdi", "rsi", "rdx", "r10", "r8", "r9"}

// regForArg returns the register (or stack-slot) token carrying top-level
// argument i.
func regForArg(i int) string {
	if i < len(argRegs) {
		return argRegs[i]
	}
	return fmt.Sprintf("stk%d", i-len(argRegs))
}

// fillerOps is the pool of opcodes used for straight-line filler code.
var fillerOps = []string{"mov", "add", "sub", "and", "or", "xor", "shl", "shr", "lea", "inc", "dec", "push", "pop"}

// fillerRegs is the pool of scratch registers for filler code.
var fillerRegs = []string{"rax", "rbx", "rcx", "rbp", "r11", "r12", "r13", "r14", "r15"}

// predTokens renders an assembly-like token sequence for a branch block
// testing the given predicate over the given slot of the syscall. The
// sequence walks the slot's access path — argument register, then one memory
// load per nesting level with the real struct offset — and ends with the
// compare/jump pair matching the predicate kind. This mirrors how a real
// handler's disassembly reveals which argument a branch inspects, which is
// exactly the signal the paper's assembly encoder learns.
func predTokens(call *spec.Syscall, p *Predicate) []string {
	var toks []string
	switch p.Kind {
	case PredCounterGT, PredCounterEQ:
		toks = append(toks, "mov", "rax", "gs", "sym_"+p.Key)
		toks = append(toks, "cmp", "rax", immToken(p.Value))
		if p.Kind == PredCounterGT {
			toks = append(toks, "ja")
		} else {
			toks = append(toks, "je")
		}
		return toks
	}
	slots := call.Slots()
	var path []int
	if p.Slot >= 0 && p.Slot < len(slots) {
		path = slots[p.Slot].Path
	}
	if len(path) == 0 {
		path = []int{0}
	}
	toks = append(toks, "mov", "rax", regForArg(path[0]))
	for _, idx := range path[1:] {
		toks = append(toks, "mov", "rax", "qword", fmt.Sprintf("off_0x%x", idx*8))
	}
	switch p.Kind {
	case PredSlotEQ:
		toks = append(toks, "cmp", "rax", immToken(p.Value), "je")
	case PredSlotNEQ:
		toks = append(toks, "cmp", "rax", immToken(p.Value), "jne")
	case PredSlotLT:
		toks = append(toks, "cmp", "rax", immToken(p.Value), "jb")
	case PredSlotGT:
		toks = append(toks, "cmp", "rax", immToken(p.Value), "ja")
	case PredSlotMaskSet:
		toks = append(toks, "test", "rax", immToken(p.Mask), "jnz")
	case PredSlotMaskClear:
		toks = append(toks, "test", "rax", immToken(p.Mask), "jz")
	case PredSlotLenGT:
		toks = append(toks, "mov", "rcx", "qword", "off_len", "cmp", "rcx", immToken(p.Value), "ja")
	case PredSlotLenLT:
		toks = append(toks, "mov", "rcx", "qword", "off_len", "cmp", "rcx", immToken(p.Value), "jb")
	case PredSlotNonNull:
		toks = append(toks, "test", "rax", "rax", "jnz")
	case PredResourceValid:
		toks = append(toks, "call", "sym_fget", "test", "rax", "rax", "jnz")
	}
	return toks
}

// immToken buckets an immediate operand into a bounded vocabulary: exact
// tokens for small values, coarse magnitude buckets for large ones. Real
// immediates are unbounded; bucketing keeps the encoder vocabulary closed.
func immToken(v uint64) string {
	switch {
	case v < 64:
		return fmt.Sprintf("imm_%d", v)
	case v < 256:
		return "imm_u8"
	case v < 1<<16:
		return "imm_u16"
	case v < 1<<32:
		return "imm_u32"
	default:
		return "imm_u64"
	}
}

// SlotAccessTokens returns the salient access-path tokens of a syscall
// argument slot: the ABI register carrying its top-level argument and the
// struct offsets of each nesting level. These are exactly the tokens a
// branch block inspecting the slot contains, so a model embedding both
// shares vocabulary between user-space arguments and kernel disassembly.
func SlotAccessTokens(call *spec.Syscall, slotIdx int) []string {
	slots := call.Slots()
	if slotIdx < 0 || slotIdx >= len(slots) {
		return nil
	}
	path := slots[slotIdx].Path
	toks := []string{regForArg(path[0])}
	for _, idx := range path[1:] {
		toks = append(toks, fmt.Sprintf("off_0x%x", idx*8))
	}
	return toks
}

// bodyTokens renders deterministic filler code for a straight-line block.
func bodyTokens(r *rng.Rand, subsystem string) []string {
	n := 2 + r.Intn(5)
	toks := make([]string, 0, n*3+1)
	toks = append(toks, "sub_"+subsystem)
	for i := 0; i < n; i++ {
		toks = append(toks,
			fillerOps[r.Intn(len(fillerOps))],
			fillerRegs[r.Intn(len(fillerRegs))],
			fillerRegs[r.Intn(len(fillerRegs))])
	}
	return toks
}

// returnTokens renders a function epilogue.
func returnTokens() []string { return []string{"mov", "rax", "imm_0", "pop", "rbp", "ret"} }

// crashTokens renders the faulting sequence of a crash block.
func crashTokens(detector string) []string {
	switch detector {
	case "KASAN":
		return []string{"mov", "qword", "off_0x0", "rax", "call", "sym_kasan_report", "ud2"}
	case "BUG()":
		return []string{"call", "sym___bug", "ud2"}
	case "WARN_ON()":
		return []string{"call", "sym___warn", "ret"}
	default:
		return []string{"mov", "rax", "qword", "off_0x0", "ud2"}
	}
}
