package kernel

import (
	"fmt"
	"strings"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// subsysDef names one generated subsystem and the seed its specification and
// handler CFGs derive from. Two kernel versions that share a subsysDef have
// structurally identical code for that subsystem.
type subsysDef struct {
	Name string
	Seed uint64
}

// Config controls kernel generation. Most callers use Build with a version
// string; Config is exposed for tests and ablations.
type Config struct {
	Version    string
	Subsystems []subsysDef
	// HandlerBudget is the approximate number of blocks per generated
	// handler (base-spec handlers use the same budget).
	HandlerBudget int
	// GeneratedNewBugs is the number of previously-unknown deep bugs to
	// plant across generated handlers.
	GeneratedNewBugs int
	// GeneratedKnownBugs is the number of shallow, Syzbot-known bugs.
	GeneratedKnownBugs int
	// BugSeed decorrelates bug placement from CFG structure.
	BugSeed uint64
}

// sharedSubsystems is the generated-subsystem pool for kernel 6.8. Later
// versions inherit it (with perturbations) and append new subsystems.
func sharedSubsystems() []subsysDef {
	names := []string{
		"kvm", "btrfs", "xfs", "nl80211", "tipc", "sctp",
		"rds", "vsock", "snd", "drm", "vhost", "fuse",
	}
	defs := make([]subsysDef, len(names))
	for i, n := range names {
		defs[i] = subsysDef{Name: n, Seed: hashSeed("gen", n)}
	}
	return defs
}

// VersionConfig returns the canonical Config for a supported kernel version.
func VersionConfig(version string) (Config, error) {
	cfg := Config{
		Version:            version,
		HandlerBudget:      64,
		GeneratedNewBugs:   150,
		GeneratedKnownBugs: 40,
		BugSeed:            hashSeed("bugs", version),
	}
	subs := sharedSubsystems()
	switch version {
	case "6.8":
	case "6.9":
		reseed(subs, "tipc", hashSeed("gen69", "tipc"))
		subs = append(subs,
			subsysDef{Name: "landlock", Seed: hashSeed("gen69", "landlock")},
			subsysDef{Name: "bcachefs", Seed: hashSeed("gen69", "bcachefs")})
	case "6.10":
		reseed(subs, "tipc", hashSeed("gen69", "tipc"))
		reseed(subs, "rds", hashSeed("gen610", "rds"))
		subs = append(subs,
			subsysDef{Name: "landlock", Seed: hashSeed("gen69", "landlock")},
			subsysDef{Name: "bcachefs", Seed: hashSeed("gen69", "bcachefs")},
			subsysDef{Name: "ntsync", Seed: hashSeed("gen610", "ntsync")},
			subsysDef{Name: "panthor", Seed: hashSeed("gen610", "panthor")})
	default:
		return Config{}, fmt.Errorf("kernel: unsupported version %q (want 6.8, 6.9 or 6.10)", version)
	}
	cfg.Subsystems = subs
	return cfg, nil
}

func reseed(subs []subsysDef, name string, seed uint64) {
	for i := range subs {
		if subs[i].Name == name {
			subs[i].Seed = seed
		}
	}
}

// hashSeed derives a stable 64-bit seed from strings (FNV-1a).
func hashSeed(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return h
}

// Build constructs the canonical kernel for a version ("6.8", "6.9", "6.10").
func Build(version string) (*Kernel, error) {
	cfg, err := VersionConfig(version)
	if err != nil {
		return nil, err
	}
	return BuildConfig(cfg)
}

// MustBuild is Build that panics on error.
func MustBuild(version string) *Kernel {
	k, err := Build(version)
	if err != nil {
		panic(err)
	}
	return k
}

// BuildConfig constructs a kernel from an explicit configuration.
func BuildConfig(cfg Config) (*Kernel, error) {
	var sb strings.Builder
	sb.WriteString(spec.BaseSpecText)
	for _, sub := range cfg.Subsystems {
		genSubsystemSpec(&sb, sub)
	}
	target, err := spec.Parse(sb.String())
	if err != nil {
		return nil, fmt.Errorf("kernel: generated spec invalid: %w", err)
	}
	k := &Kernel{Version: cfg.Version, Target: target, Handlers: map[string]*Handler{}}
	b := &builder{k: k, budget: cfg.HandlerBudget}
	for _, call := range target.Calls {
		seed := hashSeed("handler", call.Subsystem, call.Name)
		// Generated subsystems key their structure on the subsystem seed so
		// reseeding a subsystem regenerates all its handlers.
		if def := findSub(cfg.Subsystems, call.Subsystem); def != nil {
			seed = hashSeed("handler", fmt.Sprint(def.Seed), call.Name)
		}
		b.buildHandler(call, rng.New(seed))
	}
	plantBaseBugs(b)
	plantGeneratedBugs(b, cfg)
	return k, nil
}

func findSub(subs []subsysDef, name string) *subsysDef {
	for i := range subs {
		if subs[i].Name == name {
			return &subs[i]
		}
	}
	return nil
}

// builder accumulates blocks into a kernel under construction.
type builder struct {
	k      *Kernel
	budget int
}

// newBlock appends a block and returns a pointer into the kernel's slice.
// The pointer is only valid until the next newBlock call; use IDs for links.
func (b *builder) newBlock(sub, fn string, kind BlockKind) BlockID {
	id := BlockID(len(b.k.Blocks))
	b.k.Blocks = append(b.k.Blocks, Block{
		ID:        id,
		Addr:      0xffffffff81000000 + uint64(id)*0x40,
		Subsystem: sub,
		Fn:        fn,
		Kind:      kind,
		Taken:     NoBlock,
		NotTaken:  NoBlock,
		Next:      NoBlock,
	})
	return id
}

// buildHandler compiles one syscall variant into a CFG.
func (b *builder) buildHandler(call *spec.Syscall, r *rng.Rand) {
	sub := call.Subsystem
	if sub == "" {
		sub = "core"
	}
	fn := "sys_" + strings.ReplaceAll(call.Name, "$", "_")
	h := &Handler{Call: call}

	exit := b.newBlock(sub, fn, BlockReturn)
	b.k.Blocks[exit].Tokens = returnTokens()
	// Error-path return: a distinct block so failed validity checks cover
	// different code than success paths.
	errExit := b.newBlock(sub, fn, BlockReturn)
	b.k.Blocks[errExit].Tokens = []string{"mov", "rax", "imm_u64", "pop", "rbp", "ret"}

	// Close-like calls release their resource on the success path.
	if isCloseLike(call) {
		b.k.Blocks[exit].Effect = &Effect{Kind: EffectCloseResource, Slot: 0}
	}

	// Prologue: entry body block counting invocations, plus filler.
	entry := b.newBlock(sub, fn, BlockBody)
	b.k.Blocks[entry].Tokens = append([]string{"push", "rbp", "mov", "rbp", "rsp"}, bodyTokens(r, sub)...)
	b.k.Blocks[entry].Effect = &Effect{Kind: EffectIncCounter, Key: "ops_" + sub}

	cursor := entry
	for i := 0; i < 1+r.Intn(2); i++ {
		nb := b.newBlock(sub, fn, BlockBody)
		b.k.Blocks[nb].Tokens = bodyTokens(r, sub)
		b.k.Blocks[cursor].Next = nb
		cursor = nb
	}

	// Resource-validity gate: if the first slot is a resource, an invalid
	// handle takes the error return before any deeper logic.
	slots := call.Slots()
	bodyBudget := b.budget
	body := func() BlockID { return b.genBody(call, r, &bodyBudget, exit, errExit, sub, fn) }
	if len(slots) > 0 && slots[0].Type.Kind == spec.KindResource {
		gate := b.newBlock(sub, fn, BlockBranch)
		pred := &Predicate{Kind: PredResourceValid, Slot: 0}
		b.k.Blocks[gate].Pred = pred
		b.k.Blocks[gate].Tokens = predTokens(call, pred)
		b.k.Blocks[gate].NotTaken = errExit
		b.k.Blocks[cursor].Next = gate
		b.k.Blocks[gate].Taken = body()
	} else {
		b.k.Blocks[cursor].Next = body()
	}

	h.Entry = entry
	h.Exit = exit
	for id := exit; id < BlockID(len(b.k.Blocks)); id++ {
		h.Blocks = append(h.Blocks, id)
	}
	b.k.Handlers[call.Name] = h
}

// genBody emits a handler's main logic. Handlers whose call carries an enum
// slot get a command-dispatch switch — the ioctl/sendmsg pattern that makes
// kernel coverage argument-gated: merely invoking the call covers one case,
// and reaching the others requires mutating the command argument. Handlers
// without enums fall back to a plain conditional region.
func (b *builder) genBody(call *spec.Syscall, r *rng.Rand, budget *int, exit, errExit BlockID, sub, fn string) BlockID {
	var enumSlot *spec.Slot
	slots := call.Slots()
	for i := range slots {
		if slots[i].Type.Kind == spec.KindEnum {
			enumSlot = &slots[i]
			break
		}
	}
	if enumSlot == nil || len(enumSlot.Type.Values) < 2 {
		return b.genRegion(call, r, budget, exit, errExit, sub, fn, 0)
	}
	// Switch over the enum's values: case blocks chain through SlotEQ
	// branches; each case body is its own conditional region; an unmatched
	// command takes the error return.
	values := enumSlot.Type.Values
	perCase := *budget / len(values)
	if perCase < 4 {
		perCase = 4
	}
	next := errExit
	for i := len(values) - 1; i >= 0; i-- {
		pred := &Predicate{Kind: PredSlotEQ, Slot: enumSlot.Index, Value: values[i]}
		blk := b.newBlock(sub, fn, BlockBranch)
		b.k.Blocks[blk].Pred = pred
		b.k.Blocks[blk].Tokens = predTokens(call, pred)
		caseBudget := perCase
		b.k.Blocks[blk].Taken = b.genRegion(call, r, &caseBudget, exit, errExit, sub, fn, 0)
		b.k.Blocks[blk].NotTaken = next
		next = blk
	}
	return next
}

// genRegion emits a region of the handler CFG and returns its entry block.
// All paths eventually reach exit (or errExit for failed checks).
func (b *builder) genRegion(call *spec.Syscall, r *rng.Rand, budget *int, exit, errExit BlockID, sub, fn string, depth int) BlockID {
	if *budget <= 0 || depth > 8 {
		return exit
	}
	*budget--
	// Conjunction ladders: a run of branches over distinct slots that must
	// all hold to enter a sub-region — the multi-constraint pattern (cf.
	// the ATA bug) where localizing the right argument at each rung matters
	// most.
	if depth <= 2 && r.Chance(0.18) && len(call.Slots()) >= 2 {
		rungs := 2 + r.Intn(2)
		inner := b.genRegion(call, r, budget, exit, errExit, sub, fn, depth+rungs)
		next := inner
		for i := 0; i < rungs; i++ {
			pred := b.genPred(call, r, sub)
			blk := b.newBlock(sub, fn, BlockBranch)
			b.k.Blocks[blk].Pred = pred
			b.k.Blocks[blk].Tokens = predTokens(call, pred)
			b.k.Blocks[blk].Taken = next
			b.k.Blocks[blk].NotTaken = exit
			next = blk
		}
		return next
	}
	if r.Chance(0.55) && len(call.Slots()) > 0 {
		// Conditional region.
		pred := b.genPred(call, r, sub)
		blk := b.newBlock(sub, fn, BlockBranch)
		b.k.Blocks[blk].Pred = pred
		b.k.Blocks[blk].Tokens = predTokens(call, pred)
		taken := b.genRegion(call, r, budget, exit, errExit, sub, fn, depth+1)
		var notTaken BlockID
		switch {
		case r.Chance(0.15):
			// Failed check aborts the call.
			notTaken = errExit
		case r.Chance(0.5):
			notTaken = b.genRegion(call, r, budget, exit, errExit, sub, fn, depth+1)
		default:
			// Reconverge: skip straight to the taken region's continuation.
			notTaken = exit
		}
		b.k.Blocks[blk].Taken = taken
		b.k.Blocks[blk].NotTaken = notTaken
		return blk
	}
	// Straight-line region.
	blk := b.newBlock(sub, fn, BlockBody)
	b.k.Blocks[blk].Tokens = bodyTokens(r, sub)
	b.k.Blocks[blk].Next = b.genRegion(call, r, budget, exit, errExit, sub, fn, depth+1)
	return blk
}

// genPred synthesizes a satisfiable predicate over a random slot of the
// call, with operand choice matched to the slot's type so that random
// instantiation has a plausible (but not certain) chance of flipping it.
func (b *builder) genPred(call *spec.Syscall, r *rng.Rand, sub string) *Predicate {
	// Occasionally branch on subsystem state rather than arguments.
	if r.Chance(0.07) {
		return &Predicate{Kind: PredCounterGT, Key: "ops_" + sub, Value: uint64(1 + r.Intn(6))}
	}
	slots := call.Slots()
	for tries := 0; tries < 16; tries++ {
		s := slots[r.Intn(len(slots))]
		t := s.Type
		switch t.Kind {
		case spec.KindFlags:
			mask := t.Values[r.Intn(len(t.Values))]
			if mask == 0 {
				continue
			}
			kind := PredSlotMaskSet
			if r.Chance(0.3) {
				kind = PredSlotMaskClear
			}
			return &Predicate{Kind: kind, Slot: s.Index, Mask: mask}
		case spec.KindEnum:
			return &Predicate{Kind: PredSlotEQ, Slot: s.Index, Value: t.Values[r.Intn(len(t.Values))]}
		case spec.KindInt:
			span := t.Max - t.Min
			if span == 0 {
				return &Predicate{Kind: PredSlotEQ, Slot: s.Index, Value: t.Min}
			}
			if span <= 16 && r.Chance(0.5) {
				return &Predicate{Kind: PredSlotEQ, Slot: s.Index, Value: t.Min + r.Uint64()%(span+1)}
			}
			v := t.Min + r.Uint64()%span
			kind := PredSlotGT
			if r.Chance(0.5) {
				kind = PredSlotLT
			}
			return &Predicate{Kind: kind, Slot: s.Index, Value: v}
		case spec.KindLen:
			return &Predicate{Kind: PredSlotGT, Slot: s.Index, Value: uint64(r.Intn(64))}
		case spec.KindBuffer:
			kind := PredSlotLenGT
			if r.Chance(0.4) {
				kind = PredSlotLenLT
			}
			limit := 64
			if t.MaxSize < limit {
				limit = t.MaxSize
			}
			if limit == 0 {
				continue
			}
			return &Predicate{Kind: kind, Slot: s.Index, Value: uint64(1 + r.Intn(limit))}
		case spec.KindString:
			return &Predicate{Kind: PredSlotLenGT, Slot: s.Index, Value: uint64(1 + r.Intn(8))}
		case spec.KindPtr:
			return &Predicate{Kind: PredSlotNonNull, Slot: s.Index}
		case spec.KindResource:
			return &Predicate{Kind: PredResourceValid, Slot: s.Index}
		case spec.KindProc:
			return &Predicate{Kind: PredSlotLT, Slot: s.Index, Value: uint64(1 + r.Intn(31))}
		}
	}
	// Fallback: branch on state.
	return &Predicate{Kind: PredCounterGT, Key: "ops_" + sub, Value: 1}
}

func isCloseLike(call *spec.Syscall) bool {
	switch call.CallName {
	case "close", "timer_delete", "munmap":
		return true
	}
	return false
}
