// Package kernel implements a deterministic synthetic kernel used as the
// fuzzing substrate.
//
// The kernel is a collection of system-call handlers compiled to
// control-flow graphs of basic blocks. Branch predicates test the flattened
// argument slots of the invoking call (flag bits, enum values, ranges,
// buffer lengths, pointer nullness) and persistent kernel state (resource
// validity, subsystem counters), so that which kernel code executes depends
// on the test program's arguments exactly as in a real kernel. Each basic
// block carries a token sequence modeled on x86 assembly, in which the
// argument registers and struct offsets that a branch inspects are visible —
// this is the signal PMM learns from, mirroring how the paper's Transformer
// encoder reads real disassembly.
//
// Kernels are generated deterministically from a version string ("6.8",
// "6.9", "6.10"): later versions share most subsystems with earlier ones and
// add or perturb a few, reproducing the release drift across which the paper
// evaluates model generalization.
package kernel

import (
	"fmt"

	"github.com/repro/snowplow/internal/spec"
)

// BlockID indexes a basic block within a Kernel. The zero value is reserved
// as "no block" (NoBlock).
type BlockID int

// NoBlock marks the absence of a successor.
const NoBlock BlockID = -1

// BlockKind classifies basic blocks.
type BlockKind int

// The block kinds.
const (
	BlockBody   BlockKind = iota // straight-line code, one successor
	BlockBranch                  // two-way conditional on a Predicate
	BlockReturn                  // handler exit
	BlockCrash                   // reaching this block crashes the kernel
)

// Block is one kernel basic block.
type Block struct {
	ID        BlockID
	Addr      uint64   // synthetic address (stable across runs)
	Subsystem string   // e.g. "fs", "scsi"
	Fn        string   // containing function name, e.g. "ata_pio_sector"
	Tokens    []string // assembly-like token sequence

	Kind     BlockKind
	Pred     *Predicate // for BlockBranch
	Taken    BlockID    // successor when Pred holds (BlockBranch)
	NotTaken BlockID    // successor when Pred fails (BlockBranch)
	Next     BlockID    // successor for BlockBody

	Effect *Effect    // optional state mutation applied on execution
	Crash  *CrashSpec // for BlockCrash
}

// CrashSpec describes the failure a crash block manifests.
type CrashSpec struct {
	// Title is the crash description line, e.g.
	// "KASAN: out-of-bounds Write in ata_pio_sector".
	Title string
	// Category is the Table-3 manifestation class, e.g. "general protection fault".
	Category string
	// Detector names the mechanism that reports it (KASAN, BUG(), ...).
	Detector string
	// KnownSince marks crashes present in the simulated Syzbot known list
	// ("" means previously unknown — a new crash when found).
	KnownSince string
	// Flaky marks crashes that manifest nondeterministically (e.g. races):
	// reaching the crash block triggers the crash only sometimes, so
	// reproducer extraction often fails, as §5.3.2 observes.
	Flaky bool
}

// EffectKind classifies state mutations.
type EffectKind int

// The effect kinds.
const (
	EffectNone          EffectKind = iota
	EffectIncCounter               // Counters[Key]++
	EffectSetCounter               // Counters[Key] = Value
	EffectCloseResource            // invalidate the handle in slot Slot
)

// Effect is a kernel-state mutation attached to a block.
type Effect struct {
	Kind  EffectKind
	Key   string
	Value uint64
	Slot  int
}

// Handler is the compiled CFG of one syscall variant.
type Handler struct {
	Call  *spec.Syscall
	Entry BlockID
	Exit  BlockID // canonical return block
	// Blocks lists every block belonging to this handler, in creation order
	// (Entry first).
	Blocks []BlockID
}

// Kernel is a full synthetic kernel build.
type Kernel struct {
	Version  string
	Target   *spec.Registry
	Blocks   []Block
	Handlers map[string]*Handler // syscall variant name -> handler

	// SyscallEntry/SyscallExit give, per variant, the blocks that the
	// kernel-user context-switch edges attach to.
	bugs []*CrashSpec
}

// Block returns the block with the given id.
func (k *Kernel) Block(id BlockID) *Block { return &k.Blocks[id] }

// NumBlocks returns the total number of basic blocks.
func (k *Kernel) NumBlocks() int { return len(k.Blocks) }

// Handler returns the handler for a syscall variant, or nil.
func (k *Kernel) Handler(variant string) *Handler { return k.Handlers[variant] }

// Bugs returns the planted crash specifications (for triage fixtures).
func (k *Kernel) Bugs() []*CrashSpec { return k.bugs }

// State is the mutable kernel state a test executes against.
type State struct {
	// Handles maps live resource handle values to their kind.
	Handles map[uint64]string
	// NextHandle is the next handle value to allocate.
	NextHandle uint64
	// Counters holds named subsystem counters.
	Counters map[string]uint64
}

// NewState returns a pristine boot state.
func NewState() *State {
	return &State{Handles: map[uint64]string{}, NextHandle: 3, Counters: map[string]uint64{}}
}

// Snapshot returns a deep copy (the simulated VM snapshot of §3.1).
func (s *State) Snapshot() *State {
	c := &State{
		Handles:    make(map[uint64]string, len(s.Handles)),
		NextHandle: s.NextHandle,
		Counters:   make(map[string]uint64, len(s.Counters)),
	}
	for k, v := range s.Handles {
		c.Handles[k] = v
	}
	for k, v := range s.Counters {
		c.Counters[k] = v
	}
	return c
}

// AllocHandle allocates a live resource handle of the given kind.
func (s *State) AllocHandle(kind string) uint64 {
	h := s.NextHandle
	s.NextHandle++
	s.Handles[h] = kind
	return h
}

// CloseHandle invalidates a handle; it is a no-op for unknown handles.
func (s *State) CloseHandle(h uint64) { delete(s.Handles, h) }

// ValidHandle reports whether h is a live handle of the given kind
// (any kind if kind is empty).
func (s *State) ValidHandle(h uint64, kind string) bool {
	k, ok := s.Handles[h]
	return ok && (kind == "" || k == kind)
}

// String summarizes the kernel for logs.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel %s: %d handlers, %d blocks, %d planted bugs",
		k.Version, len(k.Handlers), len(k.Blocks), len(k.bugs))
}
