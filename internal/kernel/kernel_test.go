package kernel

import (
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/spec"
)

func build(t testing.TB, version string) *Kernel {
	t.Helper()
	k, err := Build(version)
	if err != nil {
		t.Fatalf("Build(%s): %v", version, err)
	}
	return k
}

func TestBuildVersions(t *testing.T) {
	for _, v := range []string{"6.8", "6.9", "6.10"} {
		k := build(t, v)
		if k.NumBlocks() < 1000 {
			t.Fatalf("%s: only %d blocks", v, k.NumBlocks())
		}
		if len(k.Handlers) != len(k.Target.Calls) {
			t.Fatalf("%s: %d handlers for %d calls", v, len(k.Handlers), len(k.Target.Calls))
		}
		if len(k.Bugs()) < 100 {
			t.Fatalf("%s: only %d planted bugs", v, len(k.Bugs()))
		}
	}
}

func TestBuildRejectsUnknownVersion(t *testing.T) {
	if _, err := Build("5.15"); err == nil {
		t.Fatal("expected error for unsupported version")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := build(t, "6.8")
	b := build(t, "6.8")
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", a.NumBlocks(), b.NumBlocks())
	}
	for i := range a.Blocks {
		ba, bb := a.Blocks[i], b.Blocks[i]
		if ba.Kind != bb.Kind || ba.Taken != bb.Taken || ba.NotTaken != bb.NotTaken || ba.Next != bb.Next {
			t.Fatalf("block %d structure differs between builds", i)
		}
		if strings.Join(ba.Tokens, " ") != strings.Join(bb.Tokens, " ") {
			t.Fatalf("block %d tokens differ", i)
		}
	}
}

func TestVersionsGrow(t *testing.T) {
	k68, k69, k610 := build(t, "6.8"), build(t, "6.9"), build(t, "6.10")
	if len(k69.Target.Calls) <= len(k68.Target.Calls) {
		t.Fatal("6.9 does not add syscalls over 6.8")
	}
	if len(k610.Target.Calls) <= len(k69.Target.Calls) {
		t.Fatal("6.10 does not add syscalls over 6.9")
	}
	// New subsystems appear only in later versions.
	if k68.Target.Lookup("open$landlock") != nil {
		t.Fatal("6.8 has landlock")
	}
	if k69.Target.Lookup("open$landlock") == nil {
		t.Fatal("6.9 missing landlock")
	}
	if k610.Target.Lookup("open$ntsync") == nil {
		t.Fatal("6.10 missing ntsync")
	}
}

func TestVersionsShareStructure(t *testing.T) {
	// A subsystem shared between versions must have structurally identical
	// handlers (same shape, same predicates), modulo global block numbering.
	k68, k69 := build(t, "6.8"), build(t, "6.9")
	h68 := k68.Handlers["ctl$kvm_0"]
	h69 := k69.Handlers["ctl$kvm_0"]
	if h68 == nil || h69 == nil {
		t.Fatal("kvm handler missing")
	}
	if len(h68.Blocks) != len(h69.Blocks) {
		t.Fatalf("kvm handler sizes differ: %d vs %d", len(h68.Blocks), len(h69.Blocks))
	}
	for i := range h68.Blocks {
		a, b := k68.Block(h68.Blocks[i]), k69.Block(h69.Blocks[i])
		if a.Kind != b.Kind {
			t.Fatalf("kvm handler block %d kind differs", i)
		}
		if a.Pred != nil && b.Pred != nil && a.Pred.String() != b.Pred.String() {
			t.Fatalf("kvm handler block %d predicate differs: %v vs %v", i, a.Pred, b.Pred)
		}
	}
	// A reseeded subsystem (tipc) must differ.
	t68 := k68.Handlers["ctl$tipc_0"]
	t69 := k69.Handlers["ctl$tipc_0"]
	if t68 == nil || t69 == nil {
		t.Fatal("tipc handler missing")
	}
	same := len(t68.Blocks) == len(t69.Blocks)
	if same {
		for i := range t68.Blocks {
			a, b := k68.Block(t68.Blocks[i]), k69.Block(t69.Blocks[i])
			if a.Kind != b.Kind {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("tipc handlers have identical shapes; reseed may still differ in predicates")
	}
}

func TestCFGWellFormed(t *testing.T) {
	k := build(t, "6.8")
	n := BlockID(k.NumBlocks())
	for i := range k.Blocks {
		b := &k.Blocks[i]
		check := func(id BlockID, what string) {
			if id < 0 || id >= n {
				t.Fatalf("block %d (%s %s): %s successor %d out of range", i, b.Subsystem, b.Fn, what, id)
			}
		}
		switch b.Kind {
		case BlockBody:
			check(b.Next, "next")
		case BlockBranch:
			check(b.Taken, "taken")
			check(b.NotTaken, "not-taken")
			if b.Pred == nil {
				t.Fatalf("branch block %d has no predicate", i)
			}
		case BlockReturn, BlockCrash:
			// terminals
		}
		if len(b.Tokens) == 0 {
			t.Fatalf("block %d has no tokens", i)
		}
	}
}

func TestHandlersTerminate(t *testing.T) {
	// Every path through every handler must reach a terminal block without
	// cycles (the builder generates DAGs).
	k := build(t, "6.8")
	for name, h := range k.Handlers {
		seen := map[BlockID]int{} // 0 unvisited, 1 in-stack, 2 done
		var visit func(id BlockID) bool
		visit = func(id BlockID) bool {
			switch seen[id] {
			case 1:
				return false // cycle
			case 2:
				return true
			}
			seen[id] = 1
			b := k.Block(id)
			ok := true
			switch b.Kind {
			case BlockBody:
				ok = visit(b.Next)
			case BlockBranch:
				ok = visit(b.Taken) && visit(b.NotTaken)
			}
			seen[id] = 2
			return ok
		}
		if !visit(h.Entry) {
			t.Fatalf("handler %s contains a cycle", name)
		}
	}
}

func TestPredicateBranchesReferenceValidSlots(t *testing.T) {
	k := build(t, "6.8")
	for name, h := range k.Handlers {
		nslots := len(h.Call.Slots())
		for _, id := range h.Blocks {
			b := k.Block(id)
			if b.Kind != BlockBranch {
				continue
			}
			switch b.Pred.Kind {
			case PredCounterGT, PredCounterEQ:
				if b.Pred.Key == "" {
					t.Fatalf("%s: counter predicate without key", name)
				}
			default:
				if b.Pred.Slot < 0 || b.Pred.Slot >= nslots {
					t.Fatalf("%s: predicate references slot %d of %d", name, b.Pred.Slot, nslots)
				}
			}
		}
	}
}

func TestPlantedBugsPresent(t *testing.T) {
	k := build(t, "6.8")
	titles := map[string]bool{}
	for _, bug := range k.Bugs() {
		if titles[bug.Title] {
			t.Fatalf("duplicate bug title %q", bug.Title)
		}
		titles[bug.Title] = true
	}
	for _, want := range []string{
		"KASAN: out-of-bounds Write in ata_pio_sector",
		"general protection fault in native_tss_update_io_bitmap",
		"RCU stall in __sanitizer_cov_trace_pc",
		"GUP (Get User Pages) no longer grows the stack",
		"WARNING in ext4_iomap_begin",
		"kernel BUG in ext4_do_writepages",
		"KASAN: slab-use-after-free Read in ext4_search_dir",
	} {
		if !titles[want] {
			t.Fatalf("Table-4 bug missing: %q", want)
		}
	}
	var known, fresh int
	for _, bug := range k.Bugs() {
		if bug.KnownSince != "" {
			known++
		} else {
			fresh++
		}
	}
	if known < 30 || fresh < 100 {
		t.Fatalf("bug mix known=%d new=%d, want >=30 known and >=100 new", known, fresh)
	}
}

func TestATABugChainTokens(t *testing.T) {
	// The crash chain blocks for the ATA bug must expose the argument
	// registers/offsets of the constrained slots in their tokens — the
	// white-box signal PMM learns.
	k := build(t, "6.8")
	h := k.Handlers["ioctl$SCSI_IOCTL_SEND_COMMAND"]
	var chainToks []string
	for _, id := range h.Blocks {
		b := k.Block(id)
		if b.Fn == "ata_pio_sector" && b.Kind == BlockBranch {
			chainToks = append(chainToks, b.Tokens...)
		}
	}
	joined := strings.Join(chainToks, " ")
	// cmd is arg 1 → rsi; arg (the hdr pointer) is arg 2 → rdx.
	if !strings.Contains(joined, "rsi") || !strings.Contains(joined, "rdx") {
		t.Fatalf("ATA chain tokens missing argument registers: %s", joined)
	}
	if !strings.Contains(joined, "off_") {
		t.Fatalf("ATA chain tokens missing struct offsets: %s", joined)
	}
}

func TestStateSnapshotIsolation(t *testing.T) {
	s := NewState()
	h := s.AllocHandle("fd")
	s.Counters["ops_fs"] = 7
	snap := s.Snapshot()
	s.CloseHandle(h)
	s.Counters["ops_fs"] = 99
	s.AllocHandle("sock")
	if !snap.ValidHandle(h, "fd") {
		t.Fatal("snapshot lost handle")
	}
	if snap.Counters["ops_fs"] != 7 {
		t.Fatal("snapshot shares counters")
	}
	if len(snap.Handles) != 1 {
		t.Fatalf("snapshot has %d handles", len(snap.Handles))
	}
}

func TestStateHandleLifecycle(t *testing.T) {
	s := NewState()
	h := s.AllocHandle("sock")
	if !s.ValidHandle(h, "sock") || !s.ValidHandle(h, "") {
		t.Fatal("fresh handle invalid")
	}
	if s.ValidHandle(h, "fd") {
		t.Fatal("handle valid under wrong kind")
	}
	s.CloseHandle(h)
	if s.ValidHandle(h, "") {
		t.Fatal("closed handle still valid")
	}
	s.CloseHandle(h) // double close is a no-op
	if s.ValidHandle(12345, "") {
		t.Fatal("unknown handle valid")
	}
}

func TestPredicateEval(t *testing.T) {
	st := NewState()
	st.Counters["c"] = 5
	slots := []SlotView{
		{Present: true, Val: 0x42},
		{Present: true, Val: 0b1010},
		{Present: true, Len: 10},
		{Present: false, Val: 0x42},
		{Present: true, Val: 7, IsResource: true},
	}
	h := st.AllocHandle("fd")
	slots = append(slots, SlotView{Present: true, Val: h, IsResource: true})
	cases := []struct {
		pred Predicate
		want bool
	}{
		{Predicate{Kind: PredSlotEQ, Slot: 0, Value: 0x42}, true},
		{Predicate{Kind: PredSlotEQ, Slot: 0, Value: 0x43}, false},
		{Predicate{Kind: PredSlotNEQ, Slot: 0, Value: 0x43}, true},
		{Predicate{Kind: PredSlotLT, Slot: 0, Value: 0x43}, true},
		{Predicate{Kind: PredSlotGT, Slot: 0, Value: 0x41}, true},
		{Predicate{Kind: PredSlotMaskSet, Slot: 1, Mask: 0b1000}, true},
		{Predicate{Kind: PredSlotMaskSet, Slot: 1, Mask: 0b0100}, false},
		{Predicate{Kind: PredSlotMaskClear, Slot: 1, Mask: 0b0101}, true},
		{Predicate{Kind: PredSlotLenGT, Slot: 2, Value: 9}, true},
		{Predicate{Kind: PredSlotLenLT, Slot: 2, Value: 9}, false},
		{Predicate{Kind: PredSlotNonNull, Slot: 0}, true},
		// Absent slot (behind null pointer): all predicates false.
		{Predicate{Kind: PredSlotEQ, Slot: 3, Value: 0x42}, false},
		{Predicate{Kind: PredSlotNonNull, Slot: 3}, false},
		// Resource validity.
		{Predicate{Kind: PredResourceValid, Slot: 4}, false},
		{Predicate{Kind: PredResourceValid, Slot: 5}, true},
		// Counters.
		{Predicate{Kind: PredCounterGT, Key: "c", Value: 4}, true},
		{Predicate{Kind: PredCounterGT, Key: "c", Value: 5}, false},
		{Predicate{Kind: PredCounterEQ, Key: "c", Value: 5}, true},
		// Out-of-range slot index.
		{Predicate{Kind: PredSlotEQ, Slot: 99, Value: 0}, false},
	}
	for i, tc := range cases {
		if got := tc.pred.Eval(slots, st); got != tc.want {
			t.Fatalf("case %d (%v): got %v, want %v", i, tc.pred.String(), got, tc.want)
		}
	}
}

func TestPredTokensEncodeArgPath(t *testing.T) {
	reg := spec.Base()
	call := reg.Lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
	// Find the deep slot arg.*.tf.*.command.
	var slot spec.Slot
	found := false
	for _, s := range call.Slots() {
		if s.Name == "arg.*.tf.*.command" {
			slot, found = s, true
		}
	}
	if !found {
		t.Fatalf("slot not found; have %v", slotNames(call))
	}
	p := &Predicate{Kind: PredSlotEQ, Slot: slot.Index, Value: 0}
	toks := strings.Join(predTokens(call, p), " ")
	if !strings.Contains(toks, "rdx") {
		t.Fatalf("deep slot tokens missing top-level register rdx: %s", toks)
	}
	if !strings.Contains(toks, "off_") || !strings.Contains(toks, "je") {
		t.Fatalf("deep slot tokens missing offsets/jump: %s", toks)
	}
}

func TestImmTokenBuckets(t *testing.T) {
	cases := map[uint64]string{
		0: "imm_0", 63: "imm_63", 64: "imm_u8", 255: "imm_u8",
		256: "imm_u16", 1 << 16: "imm_u32", 1 << 32: "imm_u64",
	}
	for v, want := range cases {
		if got := immToken(v); got != want {
			t.Fatalf("immToken(%d) = %s, want %s", v, got, want)
		}
	}
}

func TestKernelStringSummary(t *testing.T) {
	k := build(t, "6.8")
	s := k.String()
	if !strings.Contains(s, "6.8") || !strings.Contains(s, "blocks") {
		t.Fatalf("summary %q", s)
	}
}
