// Package prog implements kernel test programs: sequences of system-call
// invocations with typed, nested argument trees, in the style of Syzkaller's
// prog package.
//
// A program references a spec.Registry for call metadata. Arguments mirror
// the call's type tree: scalar constants, byte buffers, strings, pointers,
// structs, and resource references that wire one call's result into a later
// call's input. Programs serialize to and parse from a stable "syz"-like
// text format, and expose their flattened mutation surface as (slot, arg)
// pairs aligned with spec.Syscall.Slots.
package prog

import (
	"fmt"

	"github.com/repro/snowplow/internal/spec"
)

// Arg is one node of a call's argument tree.
type Arg interface {
	// Type returns the specification type this argument instantiates.
	Type() *spec.Type
	// clone returns a deep copy.
	clone() Arg
}

// ConstArg holds a scalar value (int, flags, enum, len, proc).
type ConstArg struct {
	T   *spec.Type
	Val uint64
}

// Type implements Arg.
func (a *ConstArg) Type() *spec.Type { return a.T }
func (a *ConstArg) clone() Arg       { c := *a; return &c }

// DataArg holds buffer contents.
type DataArg struct {
	T    *spec.Type
	Data []byte
}

// Type implements Arg.
func (a *DataArg) Type() *spec.Type { return a.T }
func (a *DataArg) clone() Arg {
	return &DataArg{T: a.T, Data: append([]byte(nil), a.Data...)}
}

// StringArg holds a string value (e.g. a path).
type StringArg struct {
	T   *spec.Type
	Val string
}

// Type implements Arg.
func (a *StringArg) Type() *spec.Type { return a.T }
func (a *StringArg) clone() Arg       { c := *a; return &c }

// PointerArg holds a pointer. A null pointer has no inner value.
type PointerArg struct {
	T     *spec.Type
	Null  bool
	Inner Arg // nil iff Null
}

// Type implements Arg.
func (a *PointerArg) Type() *spec.Type { return a.T }
func (a *PointerArg) clone() Arg {
	c := &PointerArg{T: a.T, Null: a.Null}
	if a.Inner != nil {
		c.Inner = a.Inner.clone()
	}
	return c
}

// GroupArg holds a struct's field values.
type GroupArg struct {
	T     *spec.Type
	Inner []Arg
}

// Type implements Arg.
func (a *GroupArg) Type() *spec.Type { return a.T }
func (a *GroupArg) clone() Arg {
	c := &GroupArg{T: a.T, Inner: make([]Arg, len(a.Inner))}
	for i, in := range a.Inner {
		c.Inner[i] = in.clone()
	}
	return c
}

// ResultArg consumes a resource. Ref is the index of the producing call
// within the program, or -1 when the argument holds an invalid placeholder
// value (Val) instead of a live resource.
type ResultArg struct {
	T   *spec.Type
	Ref int
	Val uint64 // used when Ref < 0
}

// Type implements Arg.
func (a *ResultArg) Type() *spec.Type { return a.T }
func (a *ResultArg) clone() Arg       { c := *a; return &c }

// Size returns the byte footprint of the argument as seen by length fields:
// scalars and pointers are 8 bytes, buffers their content length, strings
// their length plus the NUL, structs the sum of their fields, and a length
// taken "through" a pointer counts the pointee (see PointeeSize).
func Size(a Arg) int {
	switch v := a.(type) {
	case *ConstArg, *ResultArg:
		return 8
	case *StringArg:
		return len(v.Val) + 1
	case *DataArg:
		return len(v.Data)
	case *PointerArg:
		return 8
	case *GroupArg:
		n := 0
		for _, in := range v.Inner {
			n += Size(in)
		}
		return n
	default:
		panic(fmt.Sprintf("prog: Size of unknown arg %T", a))
	}
}

// PointeeSize returns the byte size a len[] field should report for target:
// for pointers, the size of the pointee (0 if null); otherwise Size.
func PointeeSize(a Arg) int {
	if p, ok := a.(*PointerArg); ok {
		if p.Null || p.Inner == nil {
			return 0
		}
		return Size(p.Inner)
	}
	return Size(a)
}
