package prog

import (
	"fmt"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// Generator produces random, resource-consistent programs from a registry,
// following Syzkaller's strategy: when a call consumes a resource, prefer to
// reuse a resource produced earlier in the program, otherwise insert a
// producing call first, occasionally leaving an invalid placeholder to
// exercise error paths.
type Generator struct {
	Target *spec.Registry
	// InvalidResourceProb is the chance of deliberately passing an invalid
	// resource instead of wiring a producer (default 0.05).
	InvalidResourceProb float64
	// MaxDepth bounds producer-chain recursion.
	MaxDepth int
}

// NewGenerator returns a Generator over the registry with defaults.
func NewGenerator(target *spec.Registry) *Generator {
	return &Generator{Target: target, InvalidResourceProb: 0.05, MaxDepth: 4}
}

// Generate creates a program with roughly ncalls calls (producer insertion
// may add a few more).
func (g *Generator) Generate(r *rng.Rand, ncalls int) *Prog {
	p := &Prog{Target: g.Target}
	for len(p.Calls) < ncalls {
		meta := g.Target.Calls[r.Intn(len(g.Target.Calls))]
		g.appendCall(r, p, meta, 0)
	}
	return p
}

// GenerateWithCalls creates a program invoking exactly the given syscalls in
// order (plus any producer calls needed for their resources).
func (g *Generator) GenerateWithCalls(r *rng.Rand, metas ...*spec.Syscall) *Prog {
	p := &Prog{Target: g.Target}
	for _, m := range metas {
		g.appendCall(r, p, m, 0)
	}
	return p
}

// appendCall generates arguments for meta and appends the call to p,
// inserting resource producers as needed.
func (g *Generator) appendCall(r *rng.Rand, p *Prog, meta *spec.Syscall, depth int) int {
	args := make([]Arg, len(meta.Args))
	for i, f := range meta.Args {
		args[i] = g.genArg(r, p, f.Type, depth)
	}
	c := &Call{Meta: meta, Args: args}
	c.FixupLens()
	p.Calls = append(p.Calls, c)
	return len(p.Calls) - 1
}

// GenerateCallAt builds a call suitable for insertion at position pos in p:
// its resource inputs reference only calls before pos (or hold invalid
// placeholders); no producer calls are created. The caller inserts it with
// InsertCall.
func (g *Generator) GenerateCallAt(r *rng.Rand, p *Prog, meta *spec.Syscall, pos int) *Call {
	args := make([]Arg, len(meta.Args))
	for i, f := range meta.Args {
		args[i] = g.genArgLimited(r, p, f.Type, pos)
	}
	c := &Call{Meta: meta, Args: args}
	c.FixupLens()
	return c
}

// genArgLimited is genArg with resource wiring restricted to calls before
// limit and producer creation disabled.
func (g *Generator) genArgLimited(r *rng.Rand, p *Prog, t *spec.Type, limit int) Arg {
	switch t.Kind {
	case spec.KindResource:
		var candidates []int
		for i := 0; i < limit && i < len(p.Calls); i++ {
			if p.Calls[i].Meta.Ret == t.Resource {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) > 0 && r.Chance(0.9) {
			return &ResultArg{T: t, Ref: candidates[r.Intn(len(candidates))]}
		}
		return &ResultArg{T: t, Ref: -1, Val: ^uint64(0)}
	case spec.KindPtr:
		if r.Chance(0.02) {
			return &PointerArg{T: t, Null: true}
		}
		return &PointerArg{T: t, Inner: g.genArgLimited(r, p, t.Elem, limit)}
	case spec.KindStruct:
		ga := &GroupArg{T: t, Inner: make([]Arg, len(t.Fields))}
		for i, f := range t.Fields {
			ga.Inner[i] = g.genArgLimited(r, p, f.Type, limit)
		}
		return ga
	default:
		return g.genArg(r, nil, t, g.MaxDepth) // scalar kinds never touch p
	}
}

func (g *Generator) genArg(r *rng.Rand, p *Prog, t *spec.Type, depth int) Arg {
	switch t.Kind {
	case spec.KindInt:
		return &ConstArg{T: t, Val: g.genInt(r, t)}
	case spec.KindFlags:
		return &ConstArg{T: t, Val: g.genFlags(r, t)}
	case spec.KindEnum:
		return &ConstArg{T: t, Val: t.Values[r.Intn(len(t.Values))]}
	case spec.KindLen:
		return &ConstArg{T: t} // fixed up by FixupLens
	case spec.KindProc:
		return &ConstArg{T: t, Val: uint64(r.Intn(32))}
	case spec.KindString:
		return &StringArg{T: t, Val: fmt.Sprintf("./file%d", r.Intn(4))}
	case spec.KindBuffer:
		n := 0
		if t.MaxSize > 0 {
			n = r.Intn(t.MaxSize + 1)
			// Bias toward small buffers, as Syzkaller does.
			if r.Chance(0.7) {
				n = r.Intn(minInt(t.MaxSize, 16) + 1)
			}
		}
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		return &DataArg{T: t, Data: data}
	case spec.KindPtr:
		if r.Chance(0.02) {
			return &PointerArg{T: t, Null: true}
		}
		return &PointerArg{T: t, Inner: g.genArg(r, p, t.Elem, depth)}
	case spec.KindStruct:
		ga := &GroupArg{T: t, Inner: make([]Arg, len(t.Fields))}
		for i, f := range t.Fields {
			ga.Inner[i] = g.genArg(r, p, f.Type, depth)
		}
		return ga
	case spec.KindResource:
		return g.genResource(r, p, t, depth)
	default:
		panic(fmt.Sprintf("prog: generate for unknown kind %v", t.Kind))
	}
}

func (g *Generator) genInt(r *rng.Rand, t *spec.Type) uint64 {
	if t.Max <= t.Min {
		return t.Min
	}
	span := t.Max - t.Min
	// Favor boundary and small values: kernels branch on them.
	switch {
	case r.Chance(0.15):
		return t.Min
	case r.Chance(0.15):
		return t.Max
	case r.Chance(0.3) && span > 16:
		return t.Min + r.Uint64()%16
	default:
		if span == ^uint64(0) {
			return r.Uint64()
		}
		return t.Min + r.Uint64()%(span+1)
	}
}

func (g *Generator) genFlags(r *rng.Rand, t *spec.Type) uint64 {
	var v uint64
	// OR together a random subset, usually small.
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		v |= t.Values[r.Intn(len(t.Values))]
	}
	if r.Chance(0.05) {
		v = 0
	}
	return v
}

func (g *Generator) genResource(r *rng.Rand, p *Prog, t *spec.Type, depth int) Arg {
	// Reuse an existing producer when available.
	var candidates []int
	for i, c := range p.Calls {
		if c.Meta.Ret == t.Resource {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) > 0 && r.Chance(0.8) {
		return &ResultArg{T: t, Ref: candidates[r.Intn(len(candidates))]}
	}
	if r.Chance(g.InvalidResourceProb) || depth >= g.MaxDepth {
		return &ResultArg{T: t, Ref: -1, Val: ^uint64(0)}
	}
	producers := g.Target.Producers(t.Resource)
	if len(producers) == 0 {
		return &ResultArg{T: t, Ref: -1, Val: ^uint64(0)}
	}
	ref := g.appendCall(r, p, producers[r.Intn(len(producers))], depth+1)
	return &ResultArg{T: t, Ref: ref}
}

// DefaultArg returns a minimal deterministic instantiation of t: zero-ish
// scalars, empty buffers, non-null pointers, invalid resources.
func DefaultArg(t *spec.Type) Arg {
	switch t.Kind {
	case spec.KindInt:
		return &ConstArg{T: t, Val: t.Min}
	case spec.KindFlags:
		return &ConstArg{T: t, Val: 0}
	case spec.KindEnum:
		return &ConstArg{T: t, Val: t.Values[0]}
	case spec.KindLen, spec.KindProc:
		return &ConstArg{T: t}
	case spec.KindString:
		return &StringArg{T: t, Val: "./file0"}
	case spec.KindBuffer:
		return &DataArg{T: t}
	case spec.KindPtr:
		return &PointerArg{T: t, Inner: DefaultArg(t.Elem)}
	case spec.KindStruct:
		ga := &GroupArg{T: t, Inner: make([]Arg, len(t.Fields))}
		for i, f := range t.Fields {
			ga.Inner[i] = DefaultArg(f.Type)
		}
		return ga
	case spec.KindResource:
		return &ResultArg{T: t, Ref: -1, Val: ^uint64(0)}
	default:
		panic(fmt.Sprintf("prog: default for unknown kind %v", t.Kind))
	}
}

// DefaultCall builds a call with default arguments.
func DefaultCall(meta *spec.Syscall) *Call {
	args := make([]Arg, len(meta.Args))
	for i, f := range meta.Args {
		args[i] = DefaultArg(f.Type)
	}
	c := &Call{Meta: meta, Args: args}
	c.FixupLens()
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
