package prog

import (
	"testing"
	"testing/quick"

	"github.com/repro/snowplow/internal/rng"
)

// TestQuickRoundTrip property: for any generator seed and program size,
// serialize∘parse is the identity on the serialized form.
func TestQuickRoundTrip(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 1
		p := g.Generate(rng.New(seed), n)
		text := p.Serialize()
		q, err := Parse(target, text)
		if err != nil {
			t.Logf("parse failed for seed %d: %v\n%s", seed, err, text)
			return false
		}
		return q.Serialize() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGeneratedProgramsValid property: every generated program
// validates, and its slot count equals the sum of its calls' static slots.
func TestQuickGeneratedProgramsValid(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	f := func(seed uint64) bool {
		p := g.Generate(rng.New(seed), 4)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d invalid: %v", seed, err)
			return false
		}
		want := 0
		for _, c := range p.Calls {
			want += len(c.Meta.Slots())
		}
		return p.NumSlots() == want && len(p.AllSlots()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneEquality property: clones serialize identically and remain
// valid.
func TestQuickCloneEquality(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	f := func(seed uint64) bool {
		p := g.Generate(rng.New(seed), 3)
		c := p.Clone()
		return c.Serialize() == p.Serialize() && c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemoveCallKeepsValidity property: removing any call from a valid
// program leaves a valid program.
func TestQuickRemoveCallKeepsValidity(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	f := func(seed uint64, idxRaw uint8) bool {
		p := g.Generate(rng.New(seed), 4)
		if len(p.Calls) < 2 {
			return true
		}
		p.RemoveCall(int(idxRaw) % len(p.Calls))
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
