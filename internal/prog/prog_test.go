package prog

import (
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

func testTarget(t testing.TB) *spec.Registry {
	t.Helper()
	return spec.Base()
}

func TestGenerateValidates(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		p := g.Generate(r, 1+r.Intn(6))
		if err := p.Validate(); err != nil {
			t.Fatalf("generated program %d invalid: %v\n%s", i, err, p.Serialize())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	p1 := g.Generate(rng.New(42), 5)
	p2 := g.Generate(rng.New(42), 5)
	if p1.Serialize() != p2.Serialize() {
		t.Fatal("same seed produced different programs")
	}
}

func TestGenerateWiresResources(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	g.InvalidResourceProb = 0 // force wiring
	r := rng.New(3)
	read := target.Lookup("read")
	for i := 0; i < 50; i++ {
		p := g.GenerateWithCalls(r, read)
		// read consumes an fd; a producer must precede it.
		last := p.Calls[len(p.Calls)-1]
		if last.Meta != read {
			t.Fatal("last call is not read")
		}
		ra := last.Args[0].(*ResultArg)
		if ra.Ref < 0 {
			t.Fatalf("iteration %d: read got invalid fd despite InvalidResourceProb=0\n%s", i, p.Serialize())
		}
		if p.Calls[ra.Ref].Meta.Ret != "fd" {
			t.Fatalf("ref call produces %q", p.Calls[ra.Ref].Meta.Ret)
		}
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		p := g.Generate(r, 1+r.Intn(5))
		text := p.Serialize()
		q, err := Parse(target, text)
		if err != nil {
			t.Fatalf("parse of serialized program failed: %v\n%s", err, text)
		}
		if got := q.Serialize(); got != text {
			t.Fatalf("round trip changed program:\n--- original\n%s--- reparsed\n%s", text, got)
		}
	}
}

func TestParseFixedProgram(t *testing.T) {
	target := testTarget(t)
	text := "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n"
	p, err := Parse(target, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Calls) != 2 {
		t.Fatalf("parsed %d calls", len(p.Calls))
	}
	open := p.Calls[0]
	if open.Meta.Name != "open" {
		t.Fatalf("call 0 is %s", open.Meta.Name)
	}
	if open.Args[1].(*ConstArg).Val != 0x42 {
		t.Fatalf("open flags = %#x", open.Args[1].(*ConstArg).Val)
	}
	read := p.Calls[1]
	if read.Args[0].(*ResultArg).Ref != 0 {
		t.Fatal("read fd not wired to call 0")
	}
	buf := read.Args[1].(*PointerArg).Inner.(*DataArg)
	if len(buf.Data) != 2 || buf.Data[0] != 0 || buf.Data[1] != 0xff {
		t.Fatalf("buffer = %x", buf.Data)
	}
}

func TestParseErrors(t *testing.T) {
	target := testTarget(t)
	cases := []struct {
		name, text string
	}{
		{"unknown call", "nosuchcall(0x0)"},
		{"arity", "open(\"./f\")"},
		{"bad ref order", "read(r5, &b\"\", 0x0)"},
		{"wrong resource kind", "r0 = socket(0x2, 0x1, 0x0)\nread(r0, &b\"\", 0x0)"},
		{"bad const", "open(\"./f\", zz, 0x0)"},
		{"bad prefix", "r3 = open(\"./f\", 0x0, 0x0)"},
		{"missing paren", "open(\"./f\", 0x0, 0x0"},
	}
	for _, tc := range cases {
		if _, err := Parse(target, tc.text); err == nil {
			t.Fatalf("%s: expected parse error for %q", tc.name, tc.text)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"aabb\", 0x2)\n")
	q := p.Clone()
	// Mutate clone deeply; original must not change.
	q.Calls[0].Args[1].(*ConstArg).Val = 0
	q.Calls[1].Args[1].(*PointerArg).Inner.(*DataArg).Data[0] = 0x99
	if p.Calls[0].Args[1].(*ConstArg).Val != 0x42 {
		t.Fatal("clone shares const arg")
	}
	if p.Calls[1].Args[1].(*PointerArg).Inner.(*DataArg).Data[0] != 0xaa {
		t.Fatal("clone shares buffer data")
	}
}

func TestArgAtPathAndSlots(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"aabb\", 0x2)\n")
	read := p.Calls[1]
	slots := read.Meta.Slots()
	args := read.SlotArgs()
	if len(args) != len(slots) {
		t.Fatalf("%d slot args for %d slots", len(args), len(slots))
	}
	// Slot for buffer content should resolve to the DataArg.
	found := false
	for i, s := range slots {
		if s.Type.Kind == spec.KindBuffer {
			if _, ok := args[i].(*DataArg); !ok {
				t.Fatalf("buffer slot resolved to %T", args[i])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no buffer slot on read")
	}
}

func TestArgAtPathNullPointer(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, nil, 0x0)\n")
	read := p.Calls[1]
	for i, s := range read.Meta.Slots() {
		if s.Type.Kind == spec.KindBuffer {
			if a := read.SlotArgs()[i]; a != nil {
				t.Fatalf("slot behind null pointer resolved to %T", a)
			}
		}
	}
}

func TestRemoveCallRemapsRefs(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"r1 = open(\"./file1\", 0x0, 0x0)\n"+
			"read(r1, &b\"\", 0x0)\n")
	p.RemoveCall(0)
	if len(p.Calls) != 2 {
		t.Fatalf("%d calls after removal", len(p.Calls))
	}
	ra := p.Calls[1].Args[0].(*ResultArg)
	if ra.Ref != 0 {
		t.Fatalf("ref after removal = %d, want 0", ra.Ref)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Removing the producer invalidates the reference.
	p.RemoveCall(0)
	ra = p.Calls[0].Args[0].(*ResultArg)
	if ra.Ref != -1 || ra.Val != ^uint64(0) {
		t.Fatalf("dangling ref not invalidated: %+v", ra)
	}
}

func TestInsertCallShiftsRefs(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"read(r0, &b\"\", 0x0)\n")
	newCall := DefaultCall(target.Lookup("fsync"))
	newCall.Args[0] = &ResultArg{T: newCall.Meta.Args[0].Type, Ref: 0}
	p.InsertCall(1, newCall)
	if err := p.Validate(); err != nil {
		t.Fatalf("after insert: %v\n%s", err, p.Serialize())
	}
	if p.Calls[2].Args[0].(*ResultArg).Ref != 0 {
		t.Fatal("read's ref should still be 0 (producer before insertion point)")
	}
	// Insert before the producer: read's ref must shift to 1.
	p2 := MustParse(target,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"read(r0, &b\"\", 0x0)\n")
	p2.InsertCall(0, DefaultCall(target.Lookup("fsync")))
	if got := p2.Calls[2].Args[0].(*ResultArg).Ref; got != 1 {
		t.Fatalf("read's ref after head insert = %d, want 1", got)
	}
}

func TestFixupLens(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"aabbcc\", 0x63)\n")
	read := p.Calls[1]
	read.FixupLens()
	if got := read.Args[2].(*ConstArg).Val; got != 3 {
		t.Fatalf("len after fixup = %d, want 3 (buffer bytes)", got)
	}
	// Nested: sendmsg msghdr iov_len must track its buffer.
	g := NewGenerator(target)
	sm := g.GenerateWithCalls(rng.New(5), target.Lookup("sendmsg$inet"))
	call := sm.Calls[len(sm.Calls)-1]
	call.FixupLens()
	hdr := call.Args[1].(*PointerArg)
	if hdr.Null {
		t.Skip("generated null msghdr")
	}
	group := hdr.Inner.(*GroupArg)
	iovPtr := group.Inner[2].(*PointerArg)
	if iovPtr.Null {
		t.Skip("generated null iov")
	}
	iov := iovPtr.Inner.(*GroupArg)
	base := iov.Inner[0].(*PointerArg)
	wantLen := 0
	if !base.Null {
		wantLen = len(base.Inner.(*DataArg).Data)
	}
	if got := iov.Inner[1].(*ConstArg).Val; got != uint64(wantLen) {
		t.Fatalf("iov_len = %d, want %d", got, wantLen)
	}
}

func TestNumSlotsAverage(t *testing.T) {
	// §5.1/§2: a syz test has dozens of argument slots; with 5 calls our
	// spec should average well above 15 (deep structs push it higher).
	target := testTarget(t)
	g := NewGenerator(target)
	r := rng.New(11)
	total := 0
	const n = 200
	for i := 0; i < n; i++ {
		total += g.Generate(r, 5).NumSlots()
	}
	avg := float64(total) / n
	if avg < 15 {
		t.Fatalf("average slots per 5-call program = %v, want >= 15", avg)
	}
}

func TestAllSlotsAlignment(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	p := g.Generate(rng.New(13), 4)
	gs := p.AllSlots()
	if len(gs) != p.NumSlots() {
		t.Fatalf("AllSlots %d vs NumSlots %d", len(gs), p.NumSlots())
	}
	for _, s := range gs {
		if s.Call >= len(p.Calls) || s.Slot >= len(p.Calls[s.Call].Meta.Slots()) {
			t.Fatalf("slot %+v out of range", s)
		}
	}
}

func TestSizeAndPointeeSize(t *testing.T) {
	target := testTarget(t)
	p := MustParse(target, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"aabbcc\", 0x3)\n")
	read := p.Calls[1]
	ptr := read.Args[1]
	if Size(ptr) != 8 {
		t.Fatalf("pointer Size = %d, want 8", Size(ptr))
	}
	if PointeeSize(ptr) != 3 {
		t.Fatalf("PointeeSize = %d, want 3", PointeeSize(ptr))
	}
	if Size(read.Args[0]) != 8 {
		t.Fatal("resource Size != 8")
	}
	str := p.Calls[0].Args[0]
	if Size(str) != len("./file0")+1 {
		t.Fatalf("string Size = %d", Size(str))
	}
	null := &PointerArg{T: ptr.Type(), Null: true}
	if PointeeSize(null) != 0 {
		t.Fatal("null PointeeSize != 0")
	}
}

func TestSerializeStableUnderClone(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	r := rng.New(17)
	for i := 0; i < 50; i++ {
		p := g.Generate(r, 3)
		if p.Serialize() != p.Clone().Serialize() {
			t.Fatal("clone serializes differently")
		}
	}
}

func TestDefaultCallValid(t *testing.T) {
	target := testTarget(t)
	for _, meta := range target.Calls {
		p := &Prog{Target: target, Calls: []*Call{DefaultCall(meta)}}
		if err := p.Validate(); err != nil {
			t.Fatalf("default call for %s invalid: %v", meta.Name, err)
		}
	}
}

func TestSerializeContainsVariantNames(t *testing.T) {
	target := testTarget(t)
	g := NewGenerator(target)
	p := g.GenerateWithCalls(rng.New(19), target.Lookup("sendmsg$inet"))
	if !strings.Contains(p.Serialize(), "sendmsg$inet(") {
		t.Fatalf("variant name lost:\n%s", p.Serialize())
	}
}
