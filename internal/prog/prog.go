package prog

import (
	"fmt"

	"github.com/repro/snowplow/internal/spec"
)

// Call is one system-call invocation within a program.
type Call struct {
	Meta *spec.Syscall
	Args []Arg
}

// Prog is a kernel test: an ordered sequence of calls sharing a resource
// namespace (call i may consume resources produced by calls j < i).
type Prog struct {
	Target *spec.Registry
	Calls  []*Call
}

// Clone returns a deep copy of the program.
func (p *Prog) Clone() *Prog {
	c := &Prog{Target: p.Target, Calls: make([]*Call, len(p.Calls))}
	for i, call := range p.Calls {
		nc := &Call{Meta: call.Meta, Args: make([]Arg, len(call.Args))}
		for j, a := range call.Args {
			nc.Args[j] = a.clone()
		}
		c.Calls[i] = nc
	}
	return c
}

// ArgAtPath resolves a spec slot path within a call: path[0] indexes the
// top-level argument, subsequent elements descend through pointers (index 0)
// and struct fields. It returns nil if the path runs through a null pointer.
func (c *Call) ArgAtPath(path []int) Arg {
	if len(path) == 0 || path[0] >= len(c.Args) {
		return nil
	}
	a := c.Args[path[0]]
	for _, idx := range path[1:] {
		switch v := a.(type) {
		case *PointerArg:
			if v.Null || v.Inner == nil {
				return nil
			}
			a = v.Inner
		case *GroupArg:
			if idx >= len(v.Inner) {
				return nil
			}
			a = v.Inner[idx]
		default:
			return nil
		}
	}
	return a
}

// SlotArgs returns, for each flattened slot of the call's syscall, the
// argument instantiating it (nil where a null pointer cuts the subtree off).
// The returned slice is index-aligned with Meta.Slots().
func (c *Call) SlotArgs() []Arg {
	slots := c.Meta.Slots()
	args := make([]Arg, len(slots))
	for i, s := range slots {
		args[i] = c.ArgAtPath(s.Path)
	}
	return args
}

// NumSlots returns the total mutation surface of the program: the sum of
// slot counts over all calls (§5.1 reports >60 on average for syz tests).
func (p *Prog) NumSlots() int {
	n := 0
	for _, c := range p.Calls {
		n += len(c.Meta.Slots())
	}
	return n
}

// GlobalSlot identifies a slot within a whole program.
type GlobalSlot struct {
	Call int // call index
	Slot int // slot index within the call
}

// AllSlots enumerates every (call, slot) pair of the program.
func (p *Prog) AllSlots() []GlobalSlot {
	var out []GlobalSlot
	for ci, c := range p.Calls {
		for si := range c.Meta.Slots() {
			out = append(out, GlobalSlot{Call: ci, Slot: si})
		}
	}
	return out
}

// Validate checks structural invariants: argument trees match the spec
// types, resource references point to earlier calls producing the right
// kind. It returns the first violation found.
func (p *Prog) Validate() error {
	for ci, c := range p.Calls {
		if len(c.Args) != len(c.Meta.Args) {
			return fmt.Errorf("call %d (%s): %d args, spec wants %d", ci, c.Meta.Name, len(c.Args), len(c.Meta.Args))
		}
		for ai, a := range c.Args {
			if err := p.validateArg(ci, a, c.Meta.Args[ai].Type); err != nil {
				return fmt.Errorf("call %d (%s) arg %d: %w", ci, c.Meta.Name, ai, err)
			}
		}
	}
	return nil
}

func (p *Prog) validateArg(callIdx int, a Arg, t *spec.Type) error {
	if a == nil {
		return fmt.Errorf("nil arg for type %v", t.Kind)
	}
	switch v := a.(type) {
	case *ConstArg:
		switch t.Kind {
		case spec.KindInt, spec.KindFlags, spec.KindEnum, spec.KindLen, spec.KindProc:
			return nil
		}
		return fmt.Errorf("const arg for %v", t.Kind)
	case *StringArg:
		if t.Kind != spec.KindString {
			return fmt.Errorf("string arg for %v", t.Kind)
		}
	case *DataArg:
		if t.Kind != spec.KindBuffer {
			return fmt.Errorf("data arg for %v", t.Kind)
		}
	case *PointerArg:
		if t.Kind != spec.KindPtr {
			return fmt.Errorf("pointer arg for %v", t.Kind)
		}
		if !v.Null {
			return p.validateArg(callIdx, v.Inner, t.Elem)
		}
	case *GroupArg:
		if t.Kind != spec.KindStruct {
			return fmt.Errorf("group arg for %v", t.Kind)
		}
		if len(v.Inner) != len(t.Fields) {
			return fmt.Errorf("struct %s: %d fields, spec wants %d", t.Name, len(v.Inner), len(t.Fields))
		}
		for i, in := range v.Inner {
			if err := p.validateArg(callIdx, in, t.Fields[i].Type); err != nil {
				return fmt.Errorf("field %s: %w", t.Fields[i].Name, err)
			}
		}
	case *ResultArg:
		if t.Kind != spec.KindResource {
			return fmt.Errorf("result arg for %v", t.Kind)
		}
		if v.Ref >= 0 {
			if v.Ref >= callIdx {
				return fmt.Errorf("resource ref r%d does not precede call %d", v.Ref, callIdx)
			}
			prod := p.Calls[v.Ref].Meta
			if prod.Ret != t.Resource {
				return fmt.Errorf("resource ref r%d produces %q, want %q", v.Ref, prod.Ret, t.Resource)
			}
		}
	default:
		return fmt.Errorf("unknown arg type %T", a)
	}
	return nil
}

// RemoveCall deletes call i and repairs resource references: references to
// the removed call become invalid placeholders; references to later calls
// shift down by one.
func (p *Prog) RemoveCall(i int) {
	if i < 0 || i >= len(p.Calls) {
		panic("prog: RemoveCall index out of range")
	}
	p.Calls = append(p.Calls[:i], p.Calls[i+1:]...)
	p.remapResults(func(ref int) int {
		switch {
		case ref == i:
			return -1
		case ref > i:
			return ref - 1
		default:
			return ref
		}
	})
}

// InsertCall inserts c at position i, shifting later resource references up.
func (p *Prog) InsertCall(i int, c *Call) {
	if i < 0 || i > len(p.Calls) {
		panic("prog: InsertCall index out of range")
	}
	p.Calls = append(p.Calls, nil)
	copy(p.Calls[i+1:], p.Calls[i:])
	p.Calls[i] = c
	// References in calls after the insertion point to calls at or after i
	// must shift. References inside c itself are the caller's concern.
	for ci := i + 1; ci < len(p.Calls); ci++ {
		if p.Calls[ci] == c {
			continue
		}
		forEachResult(p.Calls[ci], func(ra *ResultArg) {
			if ra.Ref >= i {
				ra.Ref++
			}
		})
	}
}

func (p *Prog) remapResults(f func(int) int) {
	for _, c := range p.Calls {
		forEachResult(c, func(ra *ResultArg) {
			if ra.Ref >= 0 {
				if nr := f(ra.Ref); nr != ra.Ref {
					ra.Ref = nr
					if nr < 0 {
						ra.Val = ^uint64(0)
					}
				}
			}
		})
	}
}

func forEachResult(c *Call, f func(*ResultArg)) {
	var walk func(Arg)
	walk = func(a Arg) {
		switch v := a.(type) {
		case *ResultArg:
			f(v)
		case *PointerArg:
			if v.Inner != nil {
				walk(v.Inner)
			}
		case *GroupArg:
			for _, in := range v.Inner {
				walk(in)
			}
		}
	}
	for _, a := range c.Args {
		walk(a)
	}
}

// ForEachArg visits every argument node of the call in depth-first order,
// reporting its type path name.
func (c *Call) ForEachArg(f func(a Arg)) {
	var walk func(Arg)
	walk = func(a Arg) {
		f(a)
		switch v := a.(type) {
		case *PointerArg:
			if v.Inner != nil {
				walk(v.Inner)
			}
		case *GroupArg:
			for _, in := range v.Inner {
				walk(in)
			}
		}
	}
	for _, a := range c.Args {
		walk(a)
	}
}

// FixupLens recomputes every len[] field of the call from its target
// sibling's current size, restoring spec-consistent lengths after mutation
// or generation.
func (c *Call) FixupLens() {
	fixupLensIn(c.Args, c.Meta.Args)
}

func fixupLensIn(args []Arg, fields []spec.Field) {
	for i, a := range args {
		switch v := a.(type) {
		case *ConstArg:
			if fields[i].Type.Kind == spec.KindLen {
				if target := findSibling(args, fields, fields[i].Type.LenTarget); target != nil {
					v.Val = uint64(PointeeSize(target))
				}
			}
		case *PointerArg:
			if !v.Null && v.Inner != nil {
				if g, ok := v.Inner.(*GroupArg); ok {
					fixupLensIn(g.Inner, g.T.Fields)
				}
			}
		case *GroupArg:
			fixupLensIn(v.Inner, v.T.Fields)
		}
	}
}

func findSibling(args []Arg, fields []spec.Field, name string) Arg {
	for i, f := range fields {
		if f.Name == name {
			return args[i]
		}
	}
	return nil
}
