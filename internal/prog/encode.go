package prog

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/repro/snowplow/internal/spec"
)

// Serialize renders the program in the textual "syz"-like format:
//
//	r0 = open("./file0", 0x42, 0x1ff)
//	read(r0, &b"00ff", 0x2)
//
// Calls producing a resource are prefixed with "rN = " where N is the call's
// index. Pointers render as &inner or nil; structs as {f1, f2, ...}; buffers
// as b"hex"; invalid resources as their placeholder hex value.
func (p *Prog) Serialize() string {
	var b strings.Builder
	for i, c := range p.Calls {
		if c.Meta.Ret != "" {
			fmt.Fprintf(&b, "r%d = ", i)
		}
		b.WriteString(c.Meta.Name)
		b.WriteByte('(')
		for j, a := range c.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			serializeArg(&b, a)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

func serializeArg(b *strings.Builder, a Arg) {
	switch v := a.(type) {
	case *ConstArg:
		fmt.Fprintf(b, "0x%x", v.Val)
	case *StringArg:
		fmt.Fprintf(b, "%q", v.Val)
	case *DataArg:
		fmt.Fprintf(b, "b\"%s\"", hex.EncodeToString(v.Data))
	case *PointerArg:
		if v.Null {
			b.WriteString("nil")
			return
		}
		b.WriteByte('&')
		serializeArg(b, v.Inner)
	case *GroupArg:
		b.WriteByte('{')
		for i, in := range v.Inner {
			if i > 0 {
				b.WriteString(", ")
			}
			serializeArg(b, in)
		}
		b.WriteByte('}')
	case *ResultArg:
		if v.Ref >= 0 {
			fmt.Fprintf(b, "r%d", v.Ref)
		} else {
			fmt.Fprintf(b, "0x%x", v.Val)
		}
	default:
		panic(fmt.Sprintf("prog: serialize unknown arg %T", a))
	}
}

// Parse reconstructs a program from its serialized form, resolving call
// names and argument shapes against target.
func Parse(target *spec.Registry, text string) (*Prog, error) {
	p := &Prog{Target: target}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		call, err := parseCallLine(target, line, len(p.Calls))
		if err != nil {
			return nil, fmt.Errorf("prog: line %d: %w", lineNo+1, err)
		}
		p.Calls = append(p.Calls, call)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("prog: %w", err)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(target *spec.Registry, text string) *Prog {
	p, err := Parse(target, text)
	if err != nil {
		panic(err)
	}
	return p
}

func parseCallLine(target *spec.Registry, line string, callIdx int) (*Call, error) {
	// Optional "rN = " prefix.
	if eq := strings.Index(line, "="); eq > 0 && strings.HasPrefix(strings.TrimSpace(line[:eq]), "r") {
		prefix := strings.TrimSpace(line[:eq])
		n, err := strconv.Atoi(prefix[1:])
		if err != nil {
			return nil, fmt.Errorf("bad result prefix %q", prefix)
		}
		if n != callIdx {
			return nil, fmt.Errorf("result prefix r%d does not match call index %d", n, callIdx)
		}
		line = strings.TrimSpace(line[eq+1:])
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("malformed call %q", line)
	}
	name := strings.TrimSpace(line[:open])
	meta := target.Lookup(name)
	if meta == nil {
		return nil, fmt.Errorf("unknown syscall %q", name)
	}
	body := line[open+1 : len(line)-1]
	parts := splitArgs(body)
	if len(parts) != len(meta.Args) {
		return nil, fmt.Errorf("%s: %d args, want %d", name, len(parts), len(meta.Args))
	}
	c := &Call{Meta: meta, Args: make([]Arg, len(parts))}
	for i, part := range parts {
		a, err := parseArg(strings.TrimSpace(part), meta.Args[i].Type)
		if err != nil {
			return nil, fmt.Errorf("%s arg %d: %w", name, i, err)
		}
		c.Args[i] = a
	}
	return c, nil
}

// splitArgs splits at top-level commas, respecting braces and quotes.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inStr {
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inStr = false
			}
			continue
		}
		switch ch {
		case '"':
			inStr = true
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

func parseArg(tok string, t *spec.Type) (Arg, error) {
	switch t.Kind {
	case spec.KindInt, spec.KindFlags, spec.KindEnum, spec.KindLen, spec.KindProc:
		v, err := parseHex(tok)
		if err != nil {
			return nil, err
		}
		return &ConstArg{T: t, Val: v}, nil
	case spec.KindString:
		s, err := strconv.Unquote(tok)
		if err != nil {
			return nil, fmt.Errorf("bad string %q: %w", tok, err)
		}
		return &StringArg{T: t, Val: s}, nil
	case spec.KindBuffer:
		if !strings.HasPrefix(tok, "b\"") || !strings.HasSuffix(tok, "\"") {
			return nil, fmt.Errorf("bad buffer literal %q", tok)
		}
		data, err := hex.DecodeString(tok[2 : len(tok)-1])
		if err != nil {
			return nil, fmt.Errorf("bad buffer hex %q: %w", tok, err)
		}
		return &DataArg{T: t, Data: data}, nil
	case spec.KindPtr:
		if tok == "nil" {
			return &PointerArg{T: t, Null: true}, nil
		}
		if !strings.HasPrefix(tok, "&") {
			return nil, fmt.Errorf("bad pointer literal %q", tok)
		}
		inner, err := parseArg(strings.TrimSpace(tok[1:]), t.Elem)
		if err != nil {
			return nil, err
		}
		return &PointerArg{T: t, Inner: inner}, nil
	case spec.KindStruct:
		if !strings.HasPrefix(tok, "{") || !strings.HasSuffix(tok, "}") {
			return nil, fmt.Errorf("bad struct literal %q", tok)
		}
		parts := splitArgs(tok[1 : len(tok)-1])
		if len(parts) != len(t.Fields) {
			return nil, fmt.Errorf("struct %s: %d fields, want %d", t.Name, len(parts), len(t.Fields))
		}
		ga := &GroupArg{T: t, Inner: make([]Arg, len(parts))}
		for i, part := range parts {
			in, err := parseArg(strings.TrimSpace(part), t.Fields[i].Type)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", t.Fields[i].Name, err)
			}
			ga.Inner[i] = in
		}
		return ga, nil
	case spec.KindResource:
		if strings.HasPrefix(tok, "r") {
			n, err := strconv.Atoi(tok[1:])
			if err != nil {
				return nil, fmt.Errorf("bad resource ref %q", tok)
			}
			return &ResultArg{T: t, Ref: n}, nil
		}
		v, err := parseHex(tok)
		if err != nil {
			return nil, fmt.Errorf("bad resource literal %q: %w", tok, err)
		}
		return &ResultArg{T: t, Ref: -1, Val: v}, nil
	default:
		return nil, fmt.Errorf("cannot parse kind %v", t.Kind)
	}
}

func parseHex(tok string) (uint64, error) {
	if strings.HasPrefix(tok, "0x") {
		return strconv.ParseUint(tok[2:], 16, 64)
	}
	return strconv.ParseUint(tok, 10, 64)
}
