package prog

import (
	"testing"

	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// FuzzProgSerialize checks the serializer/parser round trip against
// arbitrary inputs: Parse must never panic on malformed text, and any text
// it does accept must survive Serialize -> Parse -> Serialize byte-for-byte
// (programs cross the dataset and network boundaries in this format).
func FuzzProgSerialize(f *testing.F) {
	target := spec.Base()

	// Seed corpus: generated programs (well-formed) ...
	g := NewGenerator(target)
	r := rng.New(1)
	for i := 0; i < 8; i++ {
		f.Add(g.Generate(r, 1+r.Intn(5)).Serialize())
	}
	// ... plus hand-written edge cases and near-misses.
	for _, s := range []string{
		"",
		"# just a comment\n",
		"r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n",
		"open(\"./file0\", 0x42)\n",              // wrong arity
		"r1 = open(\"./f\", 0x0, 0x0)\n",        // result index mismatch
		"read(r9, nil, 0x0)\n",                  // dangling resource ref
		"unknown_call(0x1)\n",                   // unknown syscall
		"open(\"./f\", 0x0, 0x0",                // unterminated call
		"read(r0, &b\"zz\", 0x2)\n",             // bad hex buffer
		"open(\"\\x\", 0x0, 0x0)\n",             // bad string escape
		"read(0xffffffffffffffff, nil, 0x0)\n",  // placeholder resource
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(target, text)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		s1 := p.Serialize()
		p2, err := Parse(target, s1)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\n%s", err, s1)
		}
		if s2 := p2.Serialize(); s2 != s1 {
			t.Fatalf("round trip not stable:\n-- first --\n%s\n-- second --\n%s", s1, s2)
		}
		if err := p2.Validate(); err != nil {
			t.Fatalf("reparsed program invalid: %v", err)
		}
	})
}
