package nn

import (
	"math"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// frozenLinear builds a Linear with frozen random weights for fused tests.
func frozenLinear(r *rng.Rand, in, out int) *Linear {
	l := NewLinear(r, in, out)
	for i := range l.B.Data {
		l.B.Data[i] = r.NormFloat64()
	}
	l.W.UnrequireGrad()
	l.B.UnrequireGrad()
	return l
}

// TestFusedLinearBiasBitExact checks the fused linear(+bias+ReLU) kernel —
// with and without the pre-transposed weight cache — against the unfused
// MatMul→AddRowVector(→ReLU) chain, bit for bit, across shapes on both
// sides of the parallel threshold.
func TestFusedLinearBiasBitExact(t *testing.T) {
	defer SetWorkers(1)
	r := rng.New(41)
	shapes := [][2]int{{3, 7}, {24, 24}, {64, 64}, {33, 65}, {128, 48}}
	for _, s := range shapes {
		in, out := s[0], s[1]
		l := frozenLinear(r, in, out)
		for _, m := range []int{1, 5, 64, 129} {
			x := benchTensor(r, m, in)
			for _, relu := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					SetWorkers(workers)
					pool := NewPool()
					un := NewInfer(pool)
					want := un.LinearBias(x, l.W, nil, l.B, relu) // unfused mirror path

					fu := NewInferFused(pool)
					got := fu.LinearBias(x, l.W, nil, l.B, relu)
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("shape (%d,%d,%d) relu=%t workers=%d: fused differs at %d: %b vs %b",
								m, in, out, relu, workers, i, got.Data[i], want.Data[i])
						}
					}

					l.FreezeFused()
					gotWT := fu.LinearBias(x, l.W, l.wt, l.B, relu)
					for i := range want.Data {
						if gotWT.Data[i] != want.Data[i] {
							t.Fatalf("shape (%d,%d,%d) relu=%t workers=%d: pre-transposed fused differs at %d",
								m, in, out, relu, workers, i)
						}
					}
					un.Close()
					fu.Close()
				}
			}
		}
	}
}

// TestFusedReLUEdgeCases pins the epilogue's handling of the values where a
// naive `< 0` clamp would diverge from reluForward: -0.0 must clamp to +0,
// NaN must clamp to 0, and +0 must stay 0.
func TestFusedReLUEdgeCases(t *testing.T) {
	// One input row against an identity-ish weight that reproduces tricky
	// values in the pre-activation: bias drives outputs to -0.0 and 0.
	w := New(2, 2)
	w.Data = []float64{1, 0, 0, 1}
	b := New(1, 2)
	b.Data = []float64{0, -0.0}
	x := New(1, 2)
	x.Data = []float64{-0.0, 0}

	pool := NewPool()
	un := NewInfer(pool)
	fu := NewInferFused(pool)
	want := un.LinearBias(x, w, nil, b, true)
	got := fu.LinearBias(x, w, nil, b, true)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("relu edge case differs at %d: %b vs %b", i, got.Data[i], want.Data[i])
		}
	}
}

// TestFusedAttentionBitExact checks the fused attention kernel against the
// unfused Transpose→MatMul→Scale→Softmax→MatMul chain through the full
// SelfAttention layer, across sequence lengths on both sides of the
// parallel threshold and across worker counts.
func TestFusedAttentionBitExact(t *testing.T) {
	defer SetWorkers(1)
	r := rng.New(43)
	for _, dim := range []int{8, 24} {
		sa := NewSelfAttention(r, dim)
		for _, p := range sa.Params() {
			p.UnrequireGrad()
		}
		for _, m := range []int{1, 3, 16, 80, 160} {
			x := benchTensor(r, m, dim)
			pool := NewPool()
			un := NewInfer(pool)
			want := sa.ForwardOps(un, x)
			for _, workers := range []int{1, 2, 4} {
				SetWorkers(workers)
				fu := NewInferFused(pool)
				got := sa.ForwardOps(fu, x)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("dim=%d m=%d workers=%d: fused attention differs at %d: %b vs %b",
							dim, m, workers, i, got.Data[i], want.Data[i])
					}
				}
				fu.Close()
			}
			un.Close()
		}
	}
}

// TestFusedAddLayerNormBitExact checks the fused residual-add+norm kernel
// against the unfused Add→LayerNorm chain.
func TestFusedAddLayerNormBitExact(t *testing.T) {
	r := rng.New(47)
	for _, s := range [][2]int{{1, 8}, {17, 24}, {64, 32}} {
		m, n := s[0], s[1]
		ln := NewLayerNorm(n)
		for i := range ln.Gamma.Data {
			ln.Gamma.Data[i] = 1 + r.NormFloat64()*0.1
			ln.Beta.Data[i] = r.NormFloat64() * 0.1
		}
		ln.Gamma.UnrequireGrad()
		ln.Beta.UnrequireGrad()
		x := benchTensor(r, m, n)
		y := benchTensor(r, m, n)
		pool := NewPool()
		un := NewInfer(pool)
		fu := NewInferFused(pool)
		want := ln.ForwardAddOps(un, x, y)
		got := ln.ForwardAddOps(fu, x, y)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("(%d,%d): fused add+norm differs at %d: %b vs %b", m, n, i, got.Data[i], want.Data[i])
			}
		}
		un.Close()
		fu.Close()
	}
}

// TestFusedMLPBitExact checks the fused linear+ReLU stack against the
// unfused chain and the training path.
func TestFusedMLPBitExact(t *testing.T) {
	r := rng.New(53)
	mlp := NewMLP(r, 16, 48, 48, 3)
	for _, p := range mlp.Params() {
		p.UnrequireGrad()
	}
	x := benchTensor(r, 20, 16)
	want := mlp.Forward(x)

	pool := NewPool()
	for pass := 0; pass < 3; pass++ {
		fu := NewInferFused(pool)
		got := mlp.ForwardOps(fu, x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("pass %d: fused MLP differs at %d: %b vs %b", pass, i, got.Data[i], want.Data[i])
			}
		}
		fu.Close()
	}
}

// TestFusedSteadyStateZeroAlloc is the arena-leak test: once the pool and
// the tensor-header free list are warm, a fused forward pass through
// attention + MLP must perform zero heap allocations.
func TestFusedSteadyStateZeroAlloc(t *testing.T) {
	SetWorkers(1)
	r := rng.New(59)
	sa := NewSelfAttention(r, 16)
	mlp := NewMLP(r, 16, 32, 1)
	for _, p := range append(sa.Params(), mlp.Params()...) {
		p.UnrequireGrad()
	}
	for _, l := range []*Linear{sa.Q, sa.K, sa.V, sa.Out} {
		l.FreezeFused()
	}
	for _, l := range mlp.Layers {
		l.FreezeFused()
	}
	x := benchTensor(r, 12, 16)
	pool := NewPool()
	in := NewInferFused(pool)
	pass := func() {
		h := sa.ForwardOps(in, x)
		out := mlp.ForwardOps(in, h)
		in.Recycle(h, out)
		in.Close()
	}
	// Warm the slab classes and header free list.
	for i := 0; i < 5; i++ {
		pass()
	}
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Fatalf("steady-state fused forward allocates %.1f objects per pass, want 0", allocs)
	}
}

// rowSlice copies rows [lo, hi) of a 2D tensor into a fresh tensor.
func rowSlice(x *Tensor, lo, hi int) *Tensor {
	n := x.Shape[1]
	out := New(hi-lo, n)
	copy(out.Data, x.Data[lo*n:hi*n])
	return out
}

// TestFusedRaggedBitIdentity checks the batched ragged kernels against the
// per-segment unfused chain: ForwardRaggedOps must equal running ForwardOps
// on every segment separately, and RaggedMeanRows must equal per-segment
// MeanRows. The segment lengths cover the zero-padded small-k matmul path
// (odd lengths), the AVX pair loop (even), and a length-1 segment.
func TestFusedRaggedBitIdentity(t *testing.T) {
	defer SetWorkers(1)
	r := rng.New(71)
	const dim = 16
	sa := NewSelfAttention(r, dim)
	for _, p := range sa.Params() {
		p.UnrequireGrad()
	}
	for _, l := range []*Linear{sa.Q, sa.K, sa.V, sa.Out} {
		l.FreezeFused()
	}
	segs := []int{5, 1, 8, 7, 12, 3}
	bounds := []int{0}
	total := 0
	for _, s := range segs {
		total += s
		bounds = append(bounds, total)
	}
	x := benchTensor(r, total, dim)

	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		pool := NewPool()
		fu := NewInferFused(pool)
		got := sa.ForwardRaggedOps(fu, x, bounds)
		gotMeans := fu.RaggedMeanRows(x, bounds)
		for s := 0; s < len(segs); s++ {
			lo, hi := bounds[s], bounds[s+1]
			seg := rowSlice(x, lo, hi)
			un := NewInfer(pool)
			want := sa.ForwardOps(un, seg) // unfused per-segment reference
			for i := range want.Data {
				if got.Data[lo*dim+i] != want.Data[i] {
					t.Fatalf("workers=%d segment %d (rows %d..%d): ragged attention differs at %d: %b vs %b",
						workers, s, lo, hi, i, got.Data[lo*dim+i], want.Data[i])
				}
			}
			wantMean := un.MeanRows(seg)
			for j := 0; j < dim; j++ {
				if gotMeans.Data[s*dim+j] != wantMean.Data[j] {
					t.Fatalf("workers=%d segment %d: ragged mean differs at %d: %b vs %b",
						workers, s, j, gotMeans.Data[s*dim+j], wantMean.Data[j])
				}
			}
			un.Close()
		}
		fu.Close()
	}
}

// TestGatherAddIntoBitExact checks the one-pass embedding-sum kernel against
// its unfused mirror (Gather then Add), including repeated indices.
func TestGatherAddIntoBitExact(t *testing.T) {
	r := rng.New(73)
	table := benchTensor(r, 9, 12)
	table.UnrequireGrad()
	idx := []int{0, 8, 3, 3, 5, 0, 7}
	pool := NewPool()
	in := NewInfer(pool)
	dst := benchTensor(r, len(idx), 12)
	want := in.Add(dst, in.Gather(table, idx))

	got := benchTensor(r, len(idx), 12)
	copy(got.Data, dst.Data)
	in.GatherAddInto(got, table, idx)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("GatherAddInto differs at %d: %b vs %b", i, got.Data[i], want.Data[i])
		}
	}
	in.Close()
}

// TestScatterMeanIntoBitExact checks the in-place scatter-mean aggregation
// against the unfused ScatterMean→Add chain, including empty buckets (their
// +0 add must flush -0 in dst exactly like the unfused add of a zero row).
func TestScatterMeanIntoBitExact(t *testing.T) {
	r := rng.New(79)
	const cols, buckets = 8, 6
	src := benchTensor(r, 11, cols)
	dstIdx := []int{0, 4, 4, 2, 0, 5, 5, 5, 2, 0, 4} // bucket 1 and 3 empty
	pool := NewPool()
	in := NewInfer(pool)
	dst := benchTensor(r, buckets, cols)
	dst.Data[3*cols+2] = negZero() // empty bucket must still flush -0 to +0
	want := in.Add(dst, in.ScatterMean(src, dstIdx, buckets))

	got := New(buckets, cols)
	copy(got.Data, dst.Data)
	in.ScatterMeanInto(got, src, dstIdx)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("ScatterMeanInto differs at %d: %b vs %b", i, got.Data[i], want.Data[i])
		}
	}
	in.Close()
}

func negZero() float64 { return math.Copysign(0, -1) }

// TestFusedProfileCounters checks that fused kernel invocations are counted
// and flushed to the pool at Close, and that kernel timing activates with
// SetKernelProfiling.
func TestFusedProfileCounters(t *testing.T) {
	r := rng.New(61)
	sa := NewSelfAttention(r, 8)
	for _, p := range sa.Params() {
		p.UnrequireGrad()
	}
	x := benchTensor(r, 6, 8)
	pool := NewPool()

	SetKernelProfiling(true)
	defer SetKernelProfiling(false)
	in := NewInferFused(pool)
	out := sa.ForwardOps(in, x)
	_ = out
	if p := pool.Profile(); p.FusedLinear != 0 {
		t.Fatalf("profile visible before Close: %+v", p)
	}
	in.Close()
	p := pool.Profile()
	// Q, K, V, Out projections = 4 fused linears; 1 attention; 1 add+norm.
	if p.FusedLinear != 4 || p.FusedAttention != 1 || p.FusedAddNorm != 1 {
		t.Fatalf("fused kernel counts = %+v, want 4/1/1", p)
	}
	if p.KernelNs() <= 0 {
		t.Fatalf("kernel timing inactive under SetKernelProfiling: %+v", p)
	}
}

// TestTrainPathUnaffectedByFusion confirms the training ops never take the
// fused path (TrainOps does not implement FusedOps) and autodiff still
// works through the refactored MLP forward.
func TestTrainPathUnaffectedByFusion(t *testing.T) {
	r := rng.New(67)
	mlp := NewMLP(r, 4, 8, 1)
	x := benchTensor(r, 3, 4)
	out := mlp.Forward(x)
	loss := MeanRows(out)
	loss.Backward()
	var nonZero bool
	for _, p := range mlp.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Fatal("no gradient flowed through the training path")
	}
}
