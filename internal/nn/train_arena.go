package nn

// TrainArena is a pooled Ops implementation for training: every op output —
// data and gradient storage alike — is borrowed from a Pool and tracked, and
// one Close call after the backward pass returns the whole tape's memory for
// the next example to reuse. It is the training-side counterpart of Infer:
// both run the same forward kernels, and TrainArena additionally attaches
// the exact backward closures of the package-level autodiff ops (ops.go), so
// losses and gradients are bit-identical to the heap path.
//
// Unlike Infer, Recycle is a no-op — the tape may need any intermediate
// during Backward — and Close must not be called until the caller is done
// with every tensor of the pass, including the loss. A TrainArena is owned
// by one goroutine; distinct arenas may share a Pool, though per-worker
// pools avoid lock traffic.
type TrainArena struct {
	pool    *Pool
	tensors []*Tensor
	scratch [][]float64
}

// trainArenaPoolCap sizes per-class slab retention for arenas created with
// NewTrainArena: a forward/backward tape keeps hundreds of same-class
// tensors live at once, so the inference default of 64 would thrash.
const trainArenaPoolCap = 8192

// NewTrainArena creates a training arena over its own adequately-capped
// pool. Use NewTrainArenaPool to share or size the pool explicitly.
func NewTrainArena() *TrainArena {
	return NewTrainArenaPool(NewPoolCap(trainArenaPoolCap))
}

// NewTrainArenaPool creates a training arena over the given pool.
func NewTrainArenaPool(p *Pool) *TrainArena {
	return &TrainArena{pool: p}
}

// PoolStats snapshots the arena pool's traffic counters.
func (ta *TrainArena) PoolStats() PoolStats { return ta.pool.Stats() }

// newResult implements resultAllocator: output data and (when some input
// differentiates) gradient storage come from the pool, zeroed — matching
// the heap allocator bit-for-bit.
func (ta *TrainArena) newResult(shape []int, inputs ...*Tensor) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	out := &Tensor{Shape: append([]int(nil), shape...), Data: ta.pool.GetSlice(n)}
	for _, in := range inputs {
		if in != nil && in.requiresGrad {
			out.requiresGrad = true
			out.Grad = ta.pool.GetSlice(n)
			out.parents = inputs
			break
		}
	}
	ta.tensors = append(ta.tensors, out)
	return out
}

// scratchFloats implements resultAllocator with pool-backed memory held
// until Close (backward closures capture these slices).
func (ta *TrainArena) scratchFloats(n int) []float64 {
	s := ta.pool.GetSlice(n)
	ta.scratch = append(ta.scratch, s)
	return s
}

// Close releases every tensor and scratch slice of the pass back to the
// pool and severs their tape links. The arena is ready for another pass.
// No tensor produced during the pass may be used afterwards.
func (ta *TrainArena) Close() {
	for _, t := range ta.tensors {
		ta.pool.PutSlice(t.Data)
		if t.Grad != nil {
			ta.pool.PutSlice(t.Grad)
		}
		t.Data, t.Grad = nil, nil
		t.parents, t.backward = nil, nil
	}
	ta.tensors = ta.tensors[:0]
	for _, s := range ta.scratch {
		ta.pool.PutSlice(s)
	}
	ta.scratch = ta.scratch[:0]
}

// MatMul implements Ops.
func (ta *TrainArena) MatMul(a, b *Tensor) *Tensor { return matMulVia(ta, a, b) }

// Add implements Ops.
func (ta *TrainArena) Add(a, b *Tensor) *Tensor { return addVia(ta, a, b) }

// AddRowVector implements Ops.
func (ta *TrainArena) AddRowVector(a, v *Tensor) *Tensor { return addRowVectorVia(ta, a, v) }

// Mul implements Ops.
func (ta *TrainArena) Mul(a, b *Tensor) *Tensor { return mulVia(ta, a, b) }

// Scale implements Ops.
func (ta *TrainArena) Scale(a *Tensor, c float64) *Tensor { return scaleVia(ta, a, c) }

// ReLU implements Ops.
func (ta *TrainArena) ReLU(a *Tensor) *Tensor { return reluVia(ta, a) }

// SoftmaxRows implements Ops.
func (ta *TrainArena) SoftmaxRows(a *Tensor) *Tensor { return softmaxRowsVia(ta, a) }

// Transpose implements Ops.
func (ta *TrainArena) Transpose(a *Tensor) *Tensor { return transposeVia(ta, a) }

// MeanRows implements Ops.
func (ta *TrainArena) MeanRows(a *Tensor) *Tensor { return meanRowsVia(ta, a) }

// Gather implements Ops.
func (ta *TrainArena) Gather(table *Tensor, indices []int) *Tensor {
	return gatherVia(ta, table, indices)
}

// ScatterMean implements Ops.
func (ta *TrainArena) ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	return scatterMeanVia(ta, src, dst, dstRows)
}

// Concat implements Ops.
func (ta *TrainArena) Concat(ts ...*Tensor) *Tensor { return concatVia(ta, ts...) }

// ConcatRows implements Ops.
func (ta *TrainArena) ConcatRows(ts []*Tensor) *Tensor { return concatRowsVia(ta, ts) }

// RepeatEachRow implements Ops.
func (ta *TrainArena) RepeatEachRow(v *Tensor, times int) *Tensor {
	return repeatEachRowVia(ta, v, times)
}

// TileRows implements Ops.
func (ta *TrainArena) TileRows(v *Tensor, times int) *Tensor { return tileRowsVia(ta, v, times) }

// MaxPerGroup implements Ops.
func (ta *TrainArena) MaxPerGroup(a *Tensor, groups, per int) *Tensor {
	return maxPerGroupVia(ta, a, groups, per)
}

// LayerNorm implements Ops.
func (ta *TrainArena) LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	return layerNormVia(ta, x, gamma, beta, eps)
}

// Zeros implements Ops.
func (ta *TrainArena) Zeros(shape ...int) *Tensor { return ta.newResult(shape) }

// Recycle implements Ops as a no-op: the tape may still reference the data;
// Close reclaims everything at once.
func (ta *TrainArena) Recycle(ts ...*Tensor) {}

// BCEWithLogits is the arena form of the package-level loss (not part of
// Ops — only training passes need it).
func (ta *TrainArena) BCEWithLogits(logits *Tensor, targets, weights []float64) *Tensor {
	return bceWithLogitsVia(ta, logits, targets, weights)
}
