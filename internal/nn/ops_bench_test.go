package nn

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/rng"
)

func benchTensor(r *rng.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

// BenchmarkMatMul64 measures the d=64 square multiply; the workers
// sub-benchmarks exercise the persistent pool (on a single-core host the
// speedup over the pre-optimization baseline comes from the blocked AVX
// kernel, and extra workers only add dispatch overhead).
func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(7)
	x := benchTensor(r, 64, 64)
	y := benchTensor(r, 64, 64)
	nsPerOp := map[string]float64{}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := Workers()
			SetWorkers(workers)
			defer SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				_ = MatMul(x, y)
			}
			nsPerOp[fmt.Sprintf("workers=%d", workers)] =
				float64(time.Since(start).Nanoseconds()) / float64(b.N)
		})
	}
	if dir := os.Getenv("BENCH_JSON"); dir != "" {
		data, err := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkMatMul64", "ns_per_op": nsPerOp,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_matmul64.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkMatMul256 is the larger regime batched serving reaches when it
// packs many query graphs into one forward pass.
func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(7)
	x := benchTensor(r, 256, 256)
	y := benchTensor(r, 256, 256)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := Workers()
			SetWorkers(workers)
			defer SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = MatMul(x, y)
			}
		})
	}
}

// BenchmarkInferMLP contrasts the pooled inference path against the
// allocating training-ops path on a frozen MLP.
func BenchmarkInferMLP(b *testing.B) {
	r := rng.New(9)
	mlp := NewMLP(r, 64, 64, 64, 1)
	for _, p := range mlp.Params() {
		p.UnrequireGrad()
	}
	x := benchTensor(r, 32, 64)
	b.Run("trainops", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mlp.Forward(x)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := NewPool()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in := NewInfer(pool)
			_ = mlp.ForwardOps(in, x)
			in.Close()
		}
	})
}
