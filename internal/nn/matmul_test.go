package nn

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// naiveMatMul is the reference triple loop (the pre-optimization kernel).
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

// TestMatMulMatchesNaive checks the blocked kernel against the reference
// triple loop to float tolerance (the summation orders differ, so exact
// equality is not expected) across square and ragged shapes.
func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(11)
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}, {17, 9, 23},
		{24, 24, 24}, {64, 64, 64}, {63, 65, 61}, {1, 100, 1}, {100, 1, 100},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := benchTensor(r, m, k)
		b := benchTensor(r, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range want.Data {
			diff := math.Abs(got.Data[i] - want.Data[i])
			scale := math.Abs(want.Data[i]) + 1
			if diff/scale > 1e-12 {
				t.Fatalf("(%d,%d)x(%d,%d): element %d = %g, reference %g", m, k, k, n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulScalarMirrorBitExact verifies the determinism contract between
// the AVX kernel and its scalar mirror: both paths must produce
// bit-identical outputs element for element. On non-AVX hosts the test
// degenerates to self-comparison and trivially passes.
func TestMatMulScalarMirrorBitExact(t *testing.T) {
	r := rng.New(13)
	shapes := [][3]int{{4, 4, 4}, {8, 12, 16}, {7, 5, 9}, {64, 64, 64}, {33, 65, 17}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := benchTensor(r, m, k)
		b := benchTensor(r, k, n)
		got := MatMul(a, b) // AVX path where supported
		// The small-k shapes take the zero-padded path: the mirror is
		// dotScalar over the operands zero-padded to a multiple of four,
		// exactly as matmulPadK lays them out.
		kd := k
		if padKEligible(k, n) {
			kd = (k + 3) &^ 3
		}
		bt := make([]float64, kd*n)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bt[j*kd+p] = b.Data[p*n+j]
			}
		}
		ap := make([]float64, m*kd)
		for i := 0; i < m; i++ {
			copy(ap[i*kd:i*kd+k], a.Data[i*k:(i+1)*k])
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := dotScalar(ap[i*kd:(i+1)*kd], bt[j*kd:(j+1)*kd], kd)
				if got.Data[i*n+j] != want {
					t.Fatalf("(%d,%d,%d): element (%d,%d) = %b, scalar mirror %b", m, k, n, i, j, got.Data[i*n+j], want)
				}
			}
		}
	}
}

// TestMatMulWorkerCountInvariant is the golden determinism test: the same
// multiply must be bit-identical for every worker count, including ragged
// shapes whose row count does not divide evenly across workers.
func TestMatMulWorkerCountInvariant(t *testing.T) {
	defer SetWorkers(1)
	r := rng.New(17)
	shapes := [][3]int{{64, 64, 64}, {65, 33, 29}, {128, 24, 24}, {7, 80, 11}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := benchTensor(r, m, k)
		b := benchTensor(r, k, n)
		SetWorkers(1)
		want := MatMul(a, b)
		for _, workers := range []int{2, 3, 4, 8} {
			SetWorkers(workers)
			got := MatMul(a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %v workers=%d: element %d = %b, serial %b", s, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestMatMulConcurrentCallers hammers MatMul from many goroutines sharing
// the worker pool and the scratch pool; run with -race. Every caller must
// get the bit-exact serial answer.
func TestMatMulConcurrentCallers(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(1)
	r := rng.New(19)
	a := benchTensor(r, 48, 32)
	b := benchTensor(r, 32, 40)
	SetWorkers(1)
	want := MatMul(a, b)
	SetWorkers(4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := MatMul(a, b)
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						errs <- fmt.Errorf("concurrent result diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestSetWorkersWhileRunning races pool resizes against running multiplies;
// run with -race. This guards the RWMutex handoff in parallelRows.
func TestSetWorkersWhileRunning(t *testing.T) {
	defer SetWorkers(1)
	r := rng.New(23)
	a := benchTensor(r, 64, 64)
	b := benchTensor(r, 64, 64)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 4, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetWorkers(sizes[i%len(sizes)])
			}
		}
	}()
	for i := 0; i < 200; i++ {
		got := MatMul(a, b)
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				close(stop)
				wg.Wait()
				t.Fatalf("result diverged during pool resize at %d", j)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestMatMulDegenerateShapes(t *testing.T) {
	a := New(0, 5)
	b := New(5, 3)
	if got := MatMul(a, b); got.Shape[0] != 0 || got.Shape[1] != 3 {
		t.Fatalf("0-row result shape %v", got.Shape)
	}
	c := New(3, 0)
	d := New(0, 4)
	got := MatMul(c, d)
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("k=0 product element %d = %g, want 0", i, v)
		}
	}
}
