package nn

// Elementwise kernel wrappers. Each applies exactly one scalar operation
// sequence per element; the AVX fast path (matmul_amd64.s) packs four
// elements per instruction with the same operand order and the same number
// of roundings, so results are bit-identical to the scalar loops at any
// vector width — unlike dot products, there is no accumulation order to
// preserve. Tails (len % 4) always run the scalar loop.

// addInto adds a into dst: dst[i] += a[i].
func addInto(dst, a []float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewAddAvx(&dst[0], &a[0], n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		dst[i] += a[i]
	}
}

// add2Into writes the elementwise sum: dst[i] = x[i] + y[i].
func add2Into(dst, x, y []float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewAdd2Avx(&dst[0], &x[0], &y[0], n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] + y[i]
	}
}

// mulAddInto accumulates a scaled row: dst[i] += a[i]*c, with the multiply
// rounded before the add (two roundings, never FMA).
func mulAddInto(dst, a []float64, c float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewMulAddAvx(&dst[0], &a[0], c, n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		dst[i] += a[i] * c
	}
}

// scaleInPlace multiplies dst by c: dst[i] *= c.
func scaleInPlace(dst []float64, c float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewScaleAvx(&dst[0], c, n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		dst[i] *= c
	}
}

// reluInPlace clamps dst to [0, ∞): !(v > 0) → +0, so NaN and -0 both
// become +0 (the VMAXPD second-operand-wins semantics).
func reluInPlace(dst []float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewReluAvx(&dst[0], n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		if !(dst[i] > 0) {
			dst[i] = 0
		}
	}
}

// normAffineInPlace applies the LayerNorm affine to one row in place:
// dst[i] = (dst[i]-mean)*invStd*gamma[i] + beta[i], left-associated, one
// rounding per step.
func normAffineInPlace(dst, gamma, beta []float64, mean, invStd float64) {
	i := 0
	if useAVX {
		if n4 := len(dst) &^ 3; n4 > 0 {
			ewNormAvx(&dst[0], &gamma[0], &beta[0], mean, invStd, n4)
			i = n4
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = (dst[i]-mean)*invStd*gamma[i] + beta[i]
	}
}
