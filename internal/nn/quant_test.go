package nn

import (
	"bytes"
	"math"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// TestQuantizeRoundTripBound is the quantization error property test: every
// finite weight must dequantize within Scale/2 of its original value, and
// MaxAbsError must agree with a direct scan.
func TestQuantizeRoundTripBound(t *testing.T) {
	r := rng.New(71)
	cases := []*Tensor{
		benchTensor(r, 24, 24),
		benchTensor(r, 1, 64),
		benchTensor(r, 100, 7),
	}
	// Adversarial ranges: huge spread, tiny spread, asymmetric.
	wide := New(8, 8)
	for i := range wide.Data {
		wide.Data[i] = (r.Float64() - 0.5) * 1e6
	}
	tiny := New(8, 8)
	for i := range tiny.Data {
		tiny.Data[i] = 1 + r.Float64()*1e-9
	}
	skew := New(8, 8)
	for i := range skew.Data {
		skew.Data[i] = r.Float64()*10 - 9.99
	}
	cases = append(cases, wide, tiny, skew)

	for ci, x := range cases {
		q := QuantizeTensor(x)
		bound := q.Scale/2 + q.Scale*1e-9
		deq := make([]float64, x.Size())
		q.Dequantize(deq)
		var worst float64
		for i, v := range x.Data {
			d := math.Abs(v - deq[i])
			if d > bound {
				t.Fatalf("case %d: element %d error %g exceeds Scale/2 = %g (scale %g)", ci, i, d, q.Scale/2, q.Scale)
			}
			if d > worst {
				worst = d
			}
		}
		if got := q.MaxAbsError(x); got != worst {
			t.Fatalf("case %d: MaxAbsError = %g, scan found %g", ci, got, worst)
		}
	}
}

// TestQuantizeConstantAndEmpty pins the degenerate encodings: constant
// tensors are exact, all-zero tensors are exact, NaN-only tensors encode
// zeros with a sane scale.
func TestQuantizeConstantAndEmpty(t *testing.T) {
	c := New(4, 4)
	for i := range c.Data {
		c.Data[i] = -3.75
	}
	q := QuantizeTensor(c)
	deq := make([]float64, c.Size())
	q.Dequantize(deq)
	for i, v := range deq {
		if v != -3.75 {
			t.Fatalf("constant tensor not exact at %d: %g", i, v)
		}
	}

	z := New(4, 4)
	qz := QuantizeTensor(z)
	qz.Dequantize(deq)
	for i, v := range deq {
		if v != 0 {
			t.Fatalf("zero tensor not exact at %d: %g", i, v)
		}
	}

	nan := New(2, 2)
	for i := range nan.Data {
		nan.Data[i] = math.NaN()
	}
	qn := QuantizeTensor(nan)
	if qn.Scale <= 0 || math.IsNaN(qn.Scale) {
		t.Fatalf("NaN tensor produced scale %g", qn.Scale)
	}
}

// quantTestModel builds a frozen attention+MLP stack with a named parameter
// map, the shape the quantization registry operates on.
func quantTestModel(r *rng.Rand) (*SelfAttention, *MLP, map[string]*Tensor) {
	sa := NewSelfAttention(r, 16)
	mlp := NewMLP(r, 16, 48, 1)
	params := map[string]*Tensor{
		"sa.q.w": sa.Q.W, "sa.q.b": sa.Q.B,
		"sa.k.w": sa.K.W, "sa.k.b": sa.K.B,
		"sa.v.w": sa.V.W, "sa.v.b": sa.V.B,
		"sa.out.w": sa.Out.W, "sa.out.b": sa.Out.B,
		"sa.norm.gamma": sa.Norm.Gamma, "sa.norm.beta": sa.Norm.Beta,
		"mlp.0.w": mlp.Layers[0].W, "mlp.0.b": mlp.Layers[0].B,
		"mlp.1.w": mlp.Layers[1].W, "mlp.1.b": mlp.Layers[1].B,
	}
	for _, p := range params {
		p.UnrequireGrad()
	}
	return sa, mlp, params
}

func refreshFusedCaches(sa *SelfAttention, mlp *MLP) {
	for _, l := range []*Linear{sa.Q, sa.K, sa.V, sa.Out} {
		l.FreezeFused()
	}
	for _, l := range mlp.Layers {
		l.FreezeFused()
	}
}

// TestQuantReplayBitIdentity is the determinism cornerstone: after
// ApplyDequantized, the unfused float64 path, the fused float64 path and
// the live int8 kernels must all produce bit-identical outputs.
func TestQuantReplayBitIdentity(t *testing.T) {
	r := rng.New(73)
	sa, mlp, params := quantTestModel(r)
	qz := QuantizeParams(params, QuantMinSize)
	if qz.Len() == 0 {
		t.Fatal("nothing quantized")
	}
	if qz.Of(sa.Q.B) != nil || qz.Of(sa.Norm.Gamma) != nil {
		t.Fatal("small tensors must not be quantized")
	}
	if qz.Of(sa.Q.W) == nil || qz.Of(mlp.Layers[0].W) == nil {
		t.Fatal("weight matrices must be quantized")
	}
	if err := qz.ApplyDequantized(params); err != nil {
		t.Fatal(err)
	}
	refreshFusedCaches(sa, mlp)

	x := benchTensor(r, 10, 16)
	pool := NewPool()

	forward := func(ops Ops) []float64 {
		h := sa.ForwardOps(ops, x)
		out := mlp.ForwardOps(ops, h)
		res := append([]float64(nil), out.Data...)
		ops.Recycle(h, out)
		return res
	}

	un := NewInfer(pool)
	want := forward(un)
	un.Close()

	fu := NewInferFused(pool)
	fused := forward(fu)
	fu.Close()

	qi := NewQuantInfer(pool, qz)
	quant := forward(qi)
	qi.Close()
	if pool.Profile().QuantKernels == 0 {
		t.Fatal("quantized forward never hit an int8 kernel")
	}

	for i := range want {
		if fused[i] != want[i] {
			t.Fatalf("fused f64 differs from unfused at %d: %b vs %b", i, fused[i], want[i])
		}
		if quant[i] != want[i] {
			t.Fatalf("int8 kernel differs from replay at %d: %b vs %b", i, quant[i], want[i])
		}
	}
}

// TestQuantGatherBitIdentity checks the int8 embedding gather against the
// float64 gather under the replay invariant.
func TestQuantGatherBitIdentity(t *testing.T) {
	r := rng.New(79)
	table := benchTensor(r, 32, 24)
	table.UnrequireGrad()
	params := map[string]*Tensor{"emb": table}
	qz := QuantizeParams(params, QuantMinSize)
	if err := qz.ApplyDequantized(params); err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 31, 7, 7, 16}
	pool := NewPool()
	un := NewInfer(pool)
	want := un.Gather(table, idx)
	qi := NewQuantInfer(pool, qz)
	got := qi.Gather(table, idx)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("quant gather differs at %d: %b vs %b", i, got.Data[i], want.Data[i])
		}
	}
	un.Close()
	qi.Close()
}

// TestQuantSerializeRoundTrip checks the SNPQ0001 checkpoint: byte-stable
// encode, and a load into a fresh model that reproduces both the registry
// and the dequantized float64 weights bit for bit.
func TestQuantSerializeRoundTrip(t *testing.T) {
	r := rng.New(83)
	sa, mlp, params := quantTestModel(r)
	qz := QuantizeParams(params, QuantMinSize)
	if err := qz.ApplyDequantized(params); err != nil {
		t.Fatal(err)
	}
	_ = sa
	_ = mlp

	var buf1, buf2 bytes.Buffer
	if err := SaveQuantParams(&buf1, params, qz); err != nil {
		t.Fatal(err)
	}
	if err := SaveQuantParams(&buf2, params, qz); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("quant checkpoint encoding is not byte-stable")
	}

	_, _, params2 := quantTestModel(rng.New(9999))
	qz2, err := LoadParamsAuto(bytes.NewReader(buf1.Bytes()), params2)
	if err != nil {
		t.Fatal(err)
	}
	if qz2 == nil || qz2.Len() != qz.Len() {
		t.Fatalf("loaded registry has %d tensors, want %d", qz2.Len(), qz.Len())
	}
	for name, t1 := range params {
		t2 := params2[name]
		for i := range t1.Data {
			if t1.Data[i] != t2.Data[i] {
				t.Fatalf("parameter %q differs after round trip at %d", name, i)
			}
		}
		q1, q2 := qz.Named(name), qz2.Named(name)
		if (q1 == nil) != (q2 == nil) {
			t.Fatalf("parameter %q quantization presence differs", name)
		}
		if q1 != nil {
			if q1.Scale != q2.Scale || q1.Zero != q2.Zero || !bytes.Equal(int8Bytes(q1.Data), int8Bytes(q2.Data)) {
				t.Fatalf("parameter %q quantized record differs", name)
			}
		}
	}

	// A float64 checkpoint through LoadParamsAuto behaves like LoadParams.
	var fbuf bytes.Buffer
	if err := SaveParams(&fbuf, params); err != nil {
		t.Fatal(err)
	}
	_, _, params3 := quantTestModel(rng.New(777))
	qz3, err := LoadParamsAuto(bytes.NewReader(fbuf.Bytes()), params3)
	if err != nil {
		t.Fatal(err)
	}
	if qz3 != nil {
		t.Fatal("float64 checkpoint produced a quantization registry")
	}
	for name, t1 := range params {
		for i := range t1.Data {
			if params3[name].Data[i] != t1.Data[i] {
				t.Fatalf("parameter %q differs after f64 auto-load at %d", name, i)
			}
		}
	}
}

func int8Bytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}

// FuzzQuantSerialize hammers the mixed-precision decoder with corrupt
// checkpoints; it must error or succeed, never panic or over-allocate.
func FuzzQuantSerialize(f *testing.F) {
	r := rng.New(89)
	_, _, params := quantTestModel(r)
	qz := QuantizeParams(params, QuantMinSize)
	var seed bytes.Buffer
	if err := SaveQuantParams(&seed, params, qz); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var fseed bytes.Buffer
	if err := SaveParams(&fseed, params); err != nil {
		f.Fatal(err)
	}
	f.Add(fseed.Bytes())
	f.Add([]byte("SNPQ0001"))
	f.Add([]byte{})

	_, _, target := quantTestModel(rng.New(91))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = LoadParamsAuto(bytes.NewReader(data), target)
	})
}
