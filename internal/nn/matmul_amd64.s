#include "textflag.h"

// func cpuHasAVX() bool
//
// Reports whether the CPU supports AVX and the OS has enabled YMM state
// (OSXSAVE + XCR0 bits 1..2). Checked once at package init.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// ECX bit 27 = OSXSAVE, bit 28 = AVX.
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	// XCR0 bits 1..2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func dot24avx(a0, a1, b0, b1, b2, b3 *float64, k4 int, out *float64)
//
// Computes the eight dot products of rows {a0, a1} against columns
// {b0..b3} over k4 elements (k4 must be a multiple of 4) and stores them
// to out[0..7]: out[c] = a0·bc, out[4+c] = a1·bc.
//
// The kernel deliberately uses VMULPD+VADDPD instead of FMA: every partial
// product is rounded to float64 before accumulation, exactly like the
// scalar mirror dotScalar in matmul.go. Each accumulator holds four lanes
// (lane l sums the products at positions p ≡ l mod 4); the reduction is
// (l0+l1)+(l2+l3). dotScalar reproduces this order, so results are
// bit-identical across the assembly and fallback paths — that equivalence
// is what makes MatMul deterministic regardless of worker count or CPU.
TEXT ·dot24avx(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ b0+16(FP), R10
	MOVQ b1+24(FP), R11
	MOVQ b2+32(FP), R12
	MOVQ b3+40(FP), R13
	MOVQ k4+48(FP), CX
	MOVQ out+56(FP), DI

	VXORPD Y0, Y0, Y0 // a0·b0
	VXORPD Y1, Y1, Y1 // a0·b1
	VXORPD Y2, Y2, Y2 // a0·b2
	VXORPD Y3, Y3, Y3 // a0·b3
	VXORPD Y4, Y4, Y4 // a1·b0
	VXORPD Y5, Y5, Y5 // a1·b1
	VXORPD Y6, Y6, Y6 // a1·b2
	VXORPD Y7, Y7, Y7 // a1·b3

	XORQ BX, BX  // byte offset into all seven arrays
	SHLQ $3, CX  // k4 elements -> bytes

dotloop:
	CMPQ BX, CX
	JGE  reduce
	VMOVUPD (R8)(BX*1), Y8  // a0[p : p+4]
	VMOVUPD (R9)(BX*1), Y9  // a1[p : p+4]

	VMOVUPD (R10)(BX*1), Y10
	VMULPD  Y10, Y8, Y11
	VADDPD  Y11, Y0, Y0
	VMULPD  Y10, Y9, Y11
	VADDPD  Y11, Y4, Y4

	VMOVUPD (R11)(BX*1), Y10
	VMULPD  Y10, Y8, Y11
	VADDPD  Y11, Y1, Y1
	VMULPD  Y10, Y9, Y11
	VADDPD  Y11, Y5, Y5

	VMOVUPD (R12)(BX*1), Y10
	VMULPD  Y10, Y8, Y11
	VADDPD  Y11, Y2, Y2
	VMULPD  Y10, Y9, Y11
	VADDPD  Y11, Y6, Y6

	VMOVUPD (R13)(BX*1), Y10
	VMULPD  Y10, Y8, Y11
	VADDPD  Y11, Y3, Y3
	VMULPD  Y10, Y9, Y11
	VADDPD  Y11, Y7, Y7

	ADDQ $32, BX
	JMP  dotloop

reduce:
	// Per accumulator [l0 l1 l2 l3]: VHADDPD gives [l0+l1, ·, l2+l3, ·];
	// adding the high 128 to the low yields (l0+l1)+(l2+l3).
	VHADDPD      Y0, Y0, Y0
	VEXTRACTF128 $1, Y0, X12
	VADDSD       X12, X0, X0
	VMOVSD       X0, (DI)

	VHADDPD      Y1, Y1, Y1
	VEXTRACTF128 $1, Y1, X12
	VADDSD       X12, X1, X1
	VMOVSD       X1, 8(DI)

	VHADDPD      Y2, Y2, Y2
	VEXTRACTF128 $1, Y2, X12
	VADDSD       X12, X2, X2
	VMOVSD       X2, 16(DI)

	VHADDPD      Y3, Y3, Y3
	VEXTRACTF128 $1, Y3, X12
	VADDSD       X12, X3, X3
	VMOVSD       X3, 24(DI)

	VHADDPD      Y4, Y4, Y4
	VEXTRACTF128 $1, Y4, X12
	VADDSD       X12, X4, X4
	VMOVSD       X4, 32(DI)

	VHADDPD      Y5, Y5, Y5
	VEXTRACTF128 $1, Y5, X12
	VADDSD       X12, X5, X5
	VMOVSD       X5, 40(DI)

	VHADDPD      Y6, Y6, Y6
	VEXTRACTF128 $1, Y6, X12
	VADDSD       X12, X6, X6
	VMOVSD       X6, 48(DI)

	VHADDPD      Y7, Y7, Y7
	VEXTRACTF128 $1, Y7, X12
	VADDSD       X12, X7, X7
	VMOVSD       X7, 56(DI)

	VZEROUPPER
	RET
