#include "textflag.h"

// func cpuHasAVXFMA() bool
//
// Reports whether the CPU supports AVX and FMA3 and the OS has enabled YMM
// state (OSXSAVE + XCR0 bits 1..2). Checked once at package init.
TEXT ·cpuHasAVXFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// ECX bit 27 = OSXSAVE, bit 28 = AVX, bit 12 = FMA3.
	ANDL $0x18001000, CX
	CMPL CX, $0x18001000
	JNE  noavx
	// XCR0 bits 1..2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func dotRows24avx(a0, a1, bt *float64, k, k4, nb int, o0, o1, bias *float64, relu int)
//
// Computes two full output rows against nb blocks of four consecutive
// bt columns (column stride k elements): for block b and lane c,
// o0[4b+c] = a0·bt[(4b+c)k : +k4] and o1[4b+c] likewise for a1. Each dot
// runs four interleaved VFMADD231PD lanes — one rounding per step, the
// same IEEE fusedMultiplyAdd math.FMA performs in the scalar mirror
// dotScalar — reduced (l0+l1)+(l2+l3), so results are bit-identical to
// the fallback path.
//
// The epilogue rides along when the caller asks for it: a non-nil bias is
// added packed (VADDPD, the dot sum as first operand — exactly the
// orow[j] += bias[j] of biasReluRows), and relu != 0 clamps with
// VMAXPD(sum, 0), whose NaN and ±0 semantics (second operand wins) match
// the scalar !(v > 0) → 0 clamp bit for bit. Callers with a k%4 tail must
// pass bias=nil, relu=0 and finish in Go, since the tail sum has to land
// before the epilogue. The n%4 edge columns are always the caller's job.
// o1 may alias o0 when a1 aliases a0: the duplicate stores then write
// identical values.
TEXT ·dotRows24avx(SB), NOSPLIT, $0-80
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ bt+16(FP), AX
	MOVQ k+24(FP), R14
	SHLQ $3, R14        // column stride in bytes
	MOVQ k4+32(FP), CX
	SHLQ $3, CX         // k4 elements -> bytes
	MOVQ nb+40(FP), DX
	MOVQ o0+48(FP), DI
	MOVQ o1+56(FP), SI
	MOVQ bias+64(FP), R15
	VXORPD Y11, Y11, Y11 // packed +0 for the ReLU clamp

blockloop:
	TESTQ DX, DX
	JZ    rowsdone
	MOVQ  AX, R10            // column 4b
	LEAQ  (AX)(R14*1), R11   // column 4b+1
	LEAQ  (AX)(R14*2), R12   // column 4b+2
	LEAQ  (R11)(R14*2), R13  // column 4b+3

	VXORPD Y0, Y0, Y0 // a0·b0
	VXORPD Y1, Y1, Y1 // a0·b1
	VXORPD Y2, Y2, Y2 // a0·b2
	VXORPD Y3, Y3, Y3 // a0·b3
	VXORPD Y4, Y4, Y4 // a1·b0
	VXORPD Y5, Y5, Y5 // a1·b1
	VXORPD Y6, Y6, Y6 // a1·b2
	VXORPD Y7, Y7, Y7 // a1·b3

	XORQ BX, BX // byte offset into the rows and the four columns

	// Two 4-element steps per iteration; each lane sees the same FMA
	// sequence (p, then p+4) the single-step loop would issue, so the
	// unroll cannot change a single bit of the result.
rowsdotloop2:
	ADDQ $64, BX // speculative double step; backed out below on overshoot
	CMPQ BX, CX
	JG   rowsdot2done
	VMOVUPD -64(R8)(BX*1), Y8 // a0[p : p+4]
	VMOVUPD -64(R9)(BX*1), Y9 // a1[p : p+4]

	VMOVUPD     -64(R10)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4

	VMOVUPD     -64(R11)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y1
	VFMADD231PD Y10, Y9, Y5

	VMOVUPD     -64(R12)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y2
	VFMADD231PD Y10, Y9, Y6

	VMOVUPD     -64(R13)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y3
	VFMADD231PD Y10, Y9, Y7

	VMOVUPD -32(R8)(BX*1), Y8 // a0[p+4 : p+8]
	VMOVUPD -32(R9)(BX*1), Y9 // a1[p+4 : p+8]

	VMOVUPD     -32(R10)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4

	VMOVUPD     -32(R11)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y1
	VFMADD231PD Y10, Y9, Y5

	VMOVUPD     -32(R12)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y2
	VFMADD231PD Y10, Y9, Y6

	VMOVUPD     -32(R13)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y3
	VFMADD231PD Y10, Y9, Y7

	JMP  rowsdotloop2

rowsdot2done:
	SUBQ $64, BX

rowsdotloop1:
	CMPQ BX, CX
	JGE  rowsreduce
	VMOVUPD (R8)(BX*1), Y8 // a0[p : p+4]
	VMOVUPD (R9)(BX*1), Y9 // a1[p : p+4]

	VMOVUPD     (R10)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4

	VMOVUPD     (R11)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y1
	VFMADD231PD Y10, Y9, Y5

	VMOVUPD     (R12)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y2
	VFMADD231PD Y10, Y9, Y6

	VMOVUPD     (R13)(BX*1), Y10
	VFMADD231PD Y10, Y8, Y3
	VFMADD231PD Y10, Y9, Y7

	ADDQ $32, BX
	JMP  rowsdotloop1

rowsreduce:
	// Packed 4×4 reduction, two instructions of shuffle per packed store.
	// VHADDPD pairs adjacent lanes of one accumulator (lane0+lane1 and
	// lane2+lane3), and the final VADDPD adds (l0+l1) first-operand to
	// (l2+l3) — the exact dotScalar order, so results stay bit-identical.
	VHADDPD    Y1, Y0, Y12          // [A01 B01 A23 B23]
	VHADDPD    Y3, Y2, Y13          // [C01 D01 C23 D23]
	VPERM2F128 $0x21, Y13, Y12, Y14 // [A23 B23 C01 D01]
	VBLENDPD   $12, Y14, Y12, Y15   // [A01 B01 C01 D01]
	VBLENDPD   $12, Y13, Y14, Y14   // [A23 B23 C23 D23]
	VADDPD     Y14, Y15, Y15        // (l0+l1)+(l2+l3) per output
	VHADDPD    Y5, Y4, Y12
	VHADDPD    Y7, Y6, Y13
	VPERM2F128 $0x21, Y13, Y12, Y14
	VBLENDPD   $12, Y14, Y12, Y10
	VBLENDPD   $12, Y13, Y14, Y14
	VADDPD     Y14, Y10, Y10

	TESTQ  R15, R15
	JZ     nobias
	VMOVUPD (R15), Y12 // bias[j : j+4]
	VADDPD Y12, Y15, Y15
	VADDPD Y12, Y10, Y10
	ADDQ   $32, R15

nobias:
	CMPQ   relu+72(FP), $0
	JE     norelu
	VMAXPD Y11, Y15, Y15 // second operand +0 wins on NaN and -0
	VMAXPD Y11, Y10, Y10

norelu:
	VMOVUPD Y15, (DI)
	VMOVUPD Y10, (SI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	LEAQ (AX)(R14*4), AX // next block of four columns
	DECQ DX
	JMP  blockloop

rowsdone:
	VZEROUPPER
	RET

// func ewAddAvx(dst, a *float64, n int)
//
// dst[i] += a[i] for i in [0, n), n % 4 == 0. One VADDPD per four
// elements with dst as the first operand — per element exactly the
// scalar dst[i] += a[i], so vector width cannot change a bit.
TEXT ·ewAddAvx(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	SHLQ $3, CX
	XORQ BX, BX

ewaddloop:
	CMPQ BX, CX
	JGE  ewadddone
	VMOVUPD (DI)(BX*1), Y0
	VMOVUPD (SI)(BX*1), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewaddloop

ewadddone:
	VZEROUPPER
	RET

// func ewAdd2Avx(dst, x, y *float64, n int)
//
// dst[i] = x[i] + y[i] for i in [0, n), n % 4 == 0; x first operand,
// matching the scalar xr[j] + yr[j].
TEXT ·ewAdd2Avx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DX
	MOVQ n+24(FP), CX
	SHLQ $3, CX
	XORQ BX, BX

ewadd2loop:
	CMPQ BX, CX
	JGE  ewadd2done
	VMOVUPD (SI)(BX*1), Y0
	VMOVUPD (DX)(BX*1), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewadd2loop

ewadd2done:
	VZEROUPPER
	RET

// func ewMulAddAvx(dst, a *float64, c float64, n int)
//
// dst[i] += a[i]*c for i in [0, n), n % 4 == 0. Deliberately VMULPD
// then VADDPD — two roundings, exactly the scalar dst[i] += a[i]*c —
// never a fused multiply-add, which would round once and change bits.
TEXT ·ewMulAddAvx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	VBROADCASTSD c+16(FP), Y2
	MOVQ n+24(FP), CX
	SHLQ $3, CX
	XORQ BX, BX

ewmuladdloop:
	CMPQ BX, CX
	JGE  ewmuladddone
	VMOVUPD (SI)(BX*1), Y1
	VMULPD  Y2, Y1, Y1
	VMOVUPD (DI)(BX*1), Y0
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewmuladdloop

ewmuladddone:
	VZEROUPPER
	RET

// func ewScaleAvx(dst *float64, c float64, n int)
//
// dst[i] *= c for i in [0, n), n % 4 == 0.
TEXT ·ewScaleAvx(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	VBROADCASTSD c+8(FP), Y2
	MOVQ n+16(FP), CX
	SHLQ $3, CX
	XORQ BX, BX

ewscaleloop:
	CMPQ BX, CX
	JGE  ewscaledone
	VMOVUPD (DI)(BX*1), Y0
	VMULPD  Y2, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewscaleloop

ewscaledone:
	VZEROUPPER
	RET

// func ewReluAvx(dst *float64, n int)
//
// dst[i] = max(dst[i], +0) for i in [0, n), n % 4 == 0, via VMAXPD with
// +0 as the second operand (second wins on NaN and -0) — bit for bit the
// scalar !(v > 0) → 0 clamp, as in dotRows24avx's epilogue.
TEXT ·ewReluAvx(SB), NOSPLIT, $0-16
	MOVQ   dst+0(FP), DI
	MOVQ   n+8(FP), CX
	SHLQ   $3, CX
	VXORPD Y2, Y2, Y2
	XORQ   BX, BX

ewreluloop:
	CMPQ BX, CX
	JGE  ewreludone
	VMOVUPD (DI)(BX*1), Y0
	VMAXPD  Y2, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewreluloop

ewreludone:
	VZEROUPPER
	RET

// func ewNormAvx(dst, gamma, beta *float64, mean, invStd float64, n int)
//
// dst[i] = (dst[i]-mean)*invStd*gamma[i] + beta[i] for i in [0, n),
// n % 4 == 0 — VSUBPD, VMULPD, VMULPD, VADDPD in the scalar expression's
// left-associated order, one rounding per step, no FMA contraction.
TEXT ·ewNormAvx(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ gamma+8(FP), SI
	MOVQ beta+16(FP), DX
	VBROADCASTSD mean+24(FP), Y3
	VBROADCASTSD invStd+32(FP), Y4
	MOVQ n+40(FP), CX
	SHLQ $3, CX
	XORQ BX, BX

ewnormloop:
	CMPQ BX, CX
	JGE  ewnormdone
	VMOVUPD (DI)(BX*1), Y0
	VSUBPD  Y3, Y0, Y0       // v - mean
	VMULPD  Y4, Y0, Y0       // * invStd
	VMOVUPD (SI)(BX*1), Y1
	VMULPD  Y1, Y0, Y0       // * gamma[j]
	VMOVUPD (DX)(BX*1), Y1
	VADDPD  Y1, Y0, Y0       // + beta[j]
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	JMP     ewnormloop

ewnormdone:
	VZEROUPPER
	RET
