package nn

import "math"

// resultAllocator abstracts where an autodiff op's output tensor — and any
// scratch memory its backward closure captures — lives. The heap allocator
// backs the package-level ops; TrainArena (train_arena.go) allocates from a
// Pool so whole training passes recycle their memory. Both run the exact
// same forward kernels and backward closures, so gradients are bit-identical
// through either allocator.
type resultAllocator interface {
	// newResult constructs an op output over the given inputs, tracking
	// gradients when some input does (see the package-level newResult).
	newResult(shape []int, inputs ...*Tensor) *Tensor
	// scratchFloats returns a zeroed float slice whose lifetime must cover
	// the backward pass (heap-allocated, or arena-held until Close).
	scratchFloats(n int) []float64
}

// heapAlloc is the resultAllocator of the package-level autodiff ops.
type heapAlloc struct{}

func (heapAlloc) newResult(shape []int, inputs ...*Tensor) *Tensor {
	return newResult(shape, inputs...)
}

func (heapAlloc) scratchFloats(n int) []float64 { return make([]float64, n) }

// MatMul returns a × b for 2D tensors of shapes (m,k) and (k,n). The
// forward pass runs the blocked, vectorized, worker-pool-parallel kernel in
// matmul.go; results are bit-identical for any worker count.
func MatMul(a, b *Tensor) *Tensor { return matMulVia(heapAlloc{}, a, b) }

func matMulVia(al resultAllocator, a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := al.newResult([]int{m, n}, a, b)
	matmulForward(out.Data, a.Data, b.Data, m, k, n)
	if out.requiresGrad {
		out.backward = func() {
			// dA = dOut × Bᵀ ; dB = Aᵀ × dOut
			if a.requiresGrad {
				for i := 0; i < m; i++ {
					grow := out.Grad[i*n : (i+1)*n]
					agrow := a.Grad[i*k : (i+1)*k]
					for p := 0; p < k; p++ {
						brow := b.Data[p*n : (p+1)*n]
						var s float64
						for j := 0; j < n; j++ {
							s += grow[j] * brow[j]
						}
						agrow[p] += s
					}
				}
			}
			if b.requiresGrad {
				for i := 0; i < m; i++ {
					arow := a.Data[i*k : (i+1)*k]
					grow := out.Grad[i*n : (i+1)*n]
					for p := 0; p < k; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						bgrow := b.Grad[p*n : (p+1)*n]
						for j := 0; j < n; j++ {
							bgrow[j] += av * grow[j]
						}
					}
				}
			}
		}
	}
	return out
}

// Add returns a + b elementwise. Shapes must match exactly.
func Add(a, b *Tensor) *Tensor { return addVia(heapAlloc{}, a, b) }

func addVia(al resultAllocator, a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := al.newResult(a.Shape, a, b)
	addForward(out.Data, a.Data, b.Data)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// AddRowVector adds a length-n vector v (shape (n) or (1,n)) to every row of
// a 2D tensor a of shape (m,n). This is the standard bias broadcast.
func AddRowVector(a, v *Tensor) *Tensor { return addRowVectorVia(heapAlloc{}, a, v) }

func addRowVectorVia(al resultAllocator, a, v *Tensor) *Tensor {
	m, n := checkRowVector(a, v)
	out := al.newResult(a.Shape, a, v)
	addRowVectorForward(out.Data, a.Data, v.Data, m, n)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if v.requiresGrad {
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						v.Grad[j] += out.Grad[i*n+j]
					}
				}
			}
		}
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return Add(a, Scale(b, -1))
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return mulVia(heapAlloc{}, a, b) }

func mulVia(al resultAllocator, a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := al.newResult(a.Shape, a, b)
	mulForward(out.Data, a.Data, b.Data)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns a * c for scalar c.
func Scale(a *Tensor, c float64) *Tensor { return scaleVia(heapAlloc{}, a, c) }

func scaleVia(al resultAllocator, a *Tensor, c float64) *Tensor {
	out := al.newResult(a.Shape, a)
	scaleForward(out.Data, a.Data, c)
	if out.requiresGrad {
		out.backward = func() {
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * c
			}
		}
	}
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Tensor) *Tensor { return reluVia(heapAlloc{}, a) }

func reluVia(al resultAllocator, a *Tensor) *Tensor {
	out := al.newResult(a.Shape, a)
	reluForward(out.Data, a.Data)
	if out.requiresGrad {
		out.backward = func() {
			for i := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-x) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := newResult(a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := range out.Grad {
				s := out.Data[i]
				a.Grad[i] += out.Grad[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Tensor) *Tensor {
	out := newResult(a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += out.Grad[i] * (1 - y*y)
			}
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to each row of a 2D tensor.
func SoftmaxRows(a *Tensor) *Tensor { return softmaxRowsVia(heapAlloc{}, a) }

func softmaxRowsVia(al resultAllocator, a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: SoftmaxRows requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := al.newResult(a.Shape, a)
	softmaxRowsForward(out.Data, a.Data, m, n)
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				orow := out.Data[i*n : (i+1)*n]
				grow := out.Grad[i*n : (i+1)*n]
				var dot float64
				for j := 0; j < n; j++ {
					dot += orow[j] * grow[j]
				}
				for j := 0; j < n; j++ {
					a.Grad[i*n+j] += orow[j] * (grow[j] - dot)
				}
			}
		}
	}
	return out
}

// Concat concatenates 2D tensors along dimension 1 (columns). All inputs
// must have the same number of rows.
func Concat(ts ...*Tensor) *Tensor { return concatVia(heapAlloc{}, ts...) }

func concatVia(al resultAllocator, ts ...*Tensor) *Tensor {
	rows, cols := checkConcat(ts)
	out := al.newResult([]int{rows, cols}, ts...)
	concatForward(out.Data, ts, rows, cols)
	if out.requiresGrad {
		out.backward = func() {
			off := 0
			for _, t := range ts {
				c := t.Shape[1]
				if t.requiresGrad {
					for i := 0; i < rows; i++ {
						src := out.Grad[i*cols+off : i*cols+off+c]
						dst := t.Grad[i*c : (i+1)*c]
						for j := range src {
							dst[j] += src[j]
						}
					}
				}
				off += c
			}
		}
	}
	return out
}

// ConcatRows stacks 2D tensors along dimension 0 (rows). All inputs must
// have the same number of columns.
func ConcatRows(ts []*Tensor) *Tensor { return concatRowsVia(heapAlloc{}, ts) }

func concatRowsVia(al resultAllocator, ts []*Tensor) *Tensor {
	rows, cols := checkConcatRows(ts)
	out := al.newResult([]int{rows, cols}, ts...)
	concatRowsForward(out.Data, ts)
	if out.requiresGrad {
		out.backward = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					src := out.Grad[off : off+len(t.Data)]
					for j := range src {
						t.Grad[j] += src[j]
					}
				}
				off += len(t.Data)
			}
		}
	}
	return out
}

// RepeatRow tiles a (1, n) tensor into (rows, n); gradients sum over the
// copies.
func RepeatRow(v *Tensor, rows int) *Tensor {
	if len(v.Shape) != 2 || v.Shape[0] != 1 {
		panic("nn: RepeatRow requires a (1, n) tensor")
	}
	n := v.Shape[1]
	out := newResult([]int{rows, n}, v)
	for i := 0; i < rows; i++ {
		copy(out.Data[i*n:(i+1)*n], v.Data)
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < rows; i++ {
				row := out.Grad[i*n : (i+1)*n]
				for j := range row {
					v.Grad[j] += row[j]
				}
			}
		}
	}
	return out
}

// RepeatEachRow repeats every row of a 2D tensor `times` consecutive times:
// rows (a,b) with times=2 become (a,a,b,b).
func RepeatEachRow(v *Tensor, times int) *Tensor { return repeatEachRowVia(heapAlloc{}, v, times) }

func repeatEachRowVia(al resultAllocator, v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: RepeatEachRow requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := al.newResult([]int{m * times, n}, v)
	repeatEachRowForward(out.Data, v.Data, m, n, times)
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				dst := v.Grad[i*n : (i+1)*n]
				for r := 0; r < times; r++ {
					row := out.Grad[(i*times+r)*n : (i*times+r+1)*n]
					for j := range row {
						dst[j] += row[j]
					}
				}
			}
		}
	}
	return out
}

// TileRows repeats the whole 2D tensor `times` times along dimension 0:
// rows (a,b) with times=2 become (a,b,a,b).
func TileRows(v *Tensor, times int) *Tensor { return tileRowsVia(heapAlloc{}, v, times) }

func tileRowsVia(al resultAllocator, v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: TileRows requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := al.newResult([]int{m * times, n}, v)
	tileRowsForward(out.Data, v.Data, m, n, times)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < times; r++ {
				blk := out.Grad[r*m*n : (r+1)*m*n]
				for j := range blk {
					v.Grad[j] += blk[j]
				}
			}
		}
	}
	return out
}

// MaxPerGroup reduces a (groups*per, 1) tensor to (groups, 1) by taking the
// maximum within each consecutive group of `per` rows. Gradient flows to the
// argmax row of each group.
func MaxPerGroup(a *Tensor, groups, per int) *Tensor {
	return maxPerGroupVia(heapAlloc{}, a, groups, per)
}

func maxPerGroupVia(al resultAllocator, a *Tensor, groups, per int) *Tensor {
	checkMaxPerGroup(a, groups, per)
	out := al.newResult([]int{groups, 1}, a)
	argmax := make([]int, groups)
	maxPerGroupForward(out.Data, argmax, a.Data, groups, per)
	if out.requiresGrad {
		out.backward = func() {
			for g := 0; g < groups; g++ {
				a.Grad[argmax[g]] += out.Grad[g]
			}
		}
	}
	return out
}

// Gather selects rows of a 2D table by index, producing one output row per
// index. It is the embedding-lookup primitive.
func Gather(table *Tensor, indices []int) *Tensor { return gatherVia(heapAlloc{}, table, indices) }

func gatherVia(al resultAllocator, table *Tensor, indices []int) *Tensor {
	if len(table.Shape) != 2 {
		panic("nn: Gather requires a 2D table")
	}
	rows, cols := len(indices), table.Shape[1]
	out := al.newResult([]int{rows, cols}, table)
	gatherForward(out.Data, table.Data, indices, table.Shape[0], cols)
	if out.requiresGrad {
		idxCopy := append([]int(nil), indices...)
		out.backward = func() {
			for i, idx := range idxCopy {
				src := out.Grad[i*cols : (i+1)*cols]
				dst := table.Grad[idx*cols : (idx+1)*cols]
				for j := range src {
					dst[j] += src[j]
				}
			}
		}
	}
	return out
}

// ScatterMean aggregates src rows into dstRows buckets: output row d is the
// mean of all src rows i with dst[i] == d. Buckets that receive no rows stay
// zero. This is the message-aggregation primitive of the GNN.
func ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	return scatterMeanVia(heapAlloc{}, src, dst, dstRows)
}

func scatterMeanVia(al resultAllocator, src *Tensor, dst []int, dstRows int) *Tensor {
	if len(src.Shape) != 2 || len(dst) != src.Shape[0] {
		panic("nn: ScatterMean shape mismatch")
	}
	cols := src.Shape[1]
	out := al.newResult([]int{dstRows, cols}, src)
	counts := al.scratchFloats(dstRows)
	scatterMeanForward(out.Data, counts, src.Data, dst, cols)
	if out.requiresGrad {
		dstCopy := append([]int(nil), dst...)
		out.backward = func() {
			for i, d := range dstCopy {
				inv := 1.0
				if counts[d] > 1 {
					inv = 1 / counts[d]
				}
				grow := out.Grad[d*cols : (d+1)*cols]
				sgrow := src.Grad[i*cols : (i+1)*cols]
				for j := range grow {
					sgrow[j] += grow[j] * inv
				}
			}
		}
	}
	return out
}

// SelectRows picks the given rows of a 2D tensor into a new tensor, with
// gradient routed back to the selected rows.
func SelectRows(a *Tensor, indices []int) *Tensor {
	return Gather(a, indices)
}

// MeanRows returns a (1,n) tensor holding the column means of a 2D tensor.
func MeanRows(a *Tensor) *Tensor { return meanRowsVia(heapAlloc{}, a) }

func meanRowsVia(al resultAllocator, a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: MeanRows requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := al.newResult([]int{1, n}, a)
	if m == 0 {
		return out
	}
	meanRowsForward(out.Data, a.Data, m, n)
	inv := 1 / float64(m)
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a.Grad[i*n+j] += out.Grad[j] * inv
				}
			}
		}
	}
	return out
}

// Sum returns the scalar sum of all elements as a (1) tensor.
func Sum(a *Tensor) *Tensor {
	out := newResult([]int{1}, a)
	for _, v := range a.Data {
		out.Data[0] += v
	}
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean returns the scalar mean of all elements as a (1) tensor.
func Mean(a *Tensor) *Tensor {
	n := a.Size()
	if n == 0 {
		return newResult([]int{1}, a)
	}
	return Scale(Sum(a), 1/float64(n))
}

// CrossEntropyRows computes mean softmax cross-entropy: row i of logits is
// scored against integer class labels[i].
func CrossEntropyRows(logits *Tensor, labels []int) *Tensor {
	if len(logits.Shape) != 2 || len(labels) != logits.Shape[0] {
		panic("nn: CrossEntropyRows shape mismatch")
	}
	m, n := logits.Shape[0], logits.Shape[1]
	out := newResult([]int{1}, logits)
	probs := make([]float64, m*n)
	for i := 0; i < m; i++ {
		row := logits.Data[i*n : (i+1)*n]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			probs[i*n+j] = e
			sum += e
		}
		for j := range row {
			probs[i*n+j] /= sum
		}
		l := labels[i]
		if l < 0 || l >= n {
			panic("nn: CrossEntropyRows label out of range")
		}
		out.Data[0] -= math.Log(probs[i*n+l] + 1e-12)
	}
	out.Data[0] /= float64(m)
	if out.requiresGrad {
		labelCopy := append([]int(nil), labels...)
		out.backward = func() {
			g := out.Grad[0] / float64(m)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					delta := probs[i*n+j]
					if j == labelCopy[i] {
						delta -= 1
					}
					logits.Grad[i*n+j] += g * delta
				}
			}
		}
	}
	return out
}

// BCEWithLogits computes the mean binary cross-entropy between logits and
// 0/1 targets, with optional per-element weights (nil for uniform). The
// formulation max(x,0) - x*y + log(1+exp(-|x|)) is numerically stable.
func BCEWithLogits(logits *Tensor, targets []float64, weights []float64) *Tensor {
	return bceWithLogitsVia(heapAlloc{}, logits, targets, weights)
}

func bceWithLogitsVia(al resultAllocator, logits *Tensor, targets, weights []float64) *Tensor {
	if len(targets) != logits.Size() {
		panic("nn: BCEWithLogits target length mismatch")
	}
	if weights != nil && len(weights) != len(targets) {
		panic("nn: BCEWithLogits weight length mismatch")
	}
	out := al.newResult([]int{1}, logits)
	var totalW float64
	for i, x := range logits.Data {
		y := targets[i]
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		loss := math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
		out.Data[0] += w * loss
		totalW += w
	}
	if totalW > 0 {
		out.Data[0] /= totalW
	}
	if out.requiresGrad {
		out.backward = func() {
			if totalW == 0 {
				return
			}
			g := out.Grad[0] / totalW
			for i, x := range logits.Data {
				y := targets[i]
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				s := 1 / (1 + math.Exp(-x))
				logits.Grad[i] += g * w * (s - y)
			}
		}
	}
	return out
}
