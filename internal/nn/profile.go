package nn

import "sync/atomic"

// Kernel profiling for the inference hot path. Counts of fused/quantized
// kernel invocations are always collected (plain integer bumps on an
// Infer-local struct, flushed to the pool on Close); per-op kernel *time* is
// gated behind SetKernelProfiling because it costs two time.Now calls per
// op. serve.Server enables it whenever a metrics registry is attached and
// exposes the numbers as nn_infer_* pull gauges and in its end-of-run Stats.

// kernelProfiling gates the time.Now calls around inference kernels.
var kernelProfiling atomic.Bool

// SetKernelProfiling toggles per-op kernel timing for every Infer in the
// process. Off (the default), timing fields of InferProfile stay zero and
// the only cost is one atomic load per op.
func SetKernelProfiling(on bool) { kernelProfiling.Store(on) }

// KernelProfiling reports whether per-op kernel timing is enabled.
func KernelProfiling() bool { return kernelProfiling.Load() }

// InferProfile is a snapshot of a pool's accumulated inference-kernel
// activity: how many fused/quantized kernels ran, and — when kernel
// profiling is enabled — how long each kernel class spent, in nanoseconds.
type InferProfile struct {
	// FusedLinear counts fused linear(+bias+ReLU) kernel invocations,
	// including the int8-weight variant; QuantKernels counts how many of
	// all kernels read int8 weights (fused linears and embedding gathers).
	FusedLinear    int64
	FusedAttention int64
	FusedAddNorm   int64
	QuantKernels   int64

	// Per-class kernel time; zero unless SetKernelProfiling(true).
	MatMulNs      int64
	FusedLinearNs int64
	AttentionNs   int64
	NormNs        int64
	SoftmaxNs     int64
}

// KernelNs sums the per-class kernel time.
func (p InferProfile) KernelNs() int64 {
	return p.MatMulNs + p.FusedLinearNs + p.AttentionNs + p.NormNs + p.SoftmaxNs
}

// inferCounters is the Infer-local (single-goroutine, unsynchronized)
// accumulator behind InferProfile.
type inferCounters struct {
	fusedLinear, fusedAttention, fusedAddNorm, quantKernels int64
	matmulNs, fusedLinearNs, attentionNs, normNs, softmaxNs int64
}

// profileAtomics is the pool-side aggregate, written at Infer.Close.
type profileAtomics struct {
	fusedLinear, fusedAttention, fusedAddNorm, quantKernels atomic.Int64
	matmulNs, fusedLinearNs, attentionNs, normNs, softmaxNs atomic.Int64
}

// addProfile folds an Infer's local counters into the pool aggregate.
func (p *Pool) addProfile(c *inferCounters) {
	if *c == (inferCounters{}) {
		return
	}
	p.prof.fusedLinear.Add(c.fusedLinear)
	p.prof.fusedAttention.Add(c.fusedAttention)
	p.prof.fusedAddNorm.Add(c.fusedAddNorm)
	p.prof.quantKernels.Add(c.quantKernels)
	p.prof.matmulNs.Add(c.matmulNs)
	p.prof.fusedLinearNs.Add(c.fusedLinearNs)
	p.prof.attentionNs.Add(c.attentionNs)
	p.prof.normNs.Add(c.normNs)
	p.prof.softmaxNs.Add(c.softmaxNs)
	*c = inferCounters{}
}

// Profile snapshots the pool's accumulated inference-kernel activity.
func (p *Pool) Profile() InferProfile {
	return InferProfile{
		FusedLinear:    p.prof.fusedLinear.Load(),
		FusedAttention: p.prof.fusedAttention.Load(),
		FusedAddNorm:   p.prof.fusedAddNorm.Load(),
		QuantKernels:   p.prof.quantKernels.Load(),
		MatMulNs:       p.prof.matmulNs.Load(),
		FusedLinearNs:  p.prof.fusedLinearNs.Load(),
		AttentionNs:    p.prof.attentionNs.Load(),
		NormNs:         p.prof.normNs.Load(),
		SoftmaxNs:      p.prof.softmaxNs.Load(),
	}
}
