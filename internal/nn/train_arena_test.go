package nn

import (
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// arenaTestNet is a small network touching every op the PMM forward pass
// uses: attention (MatMul/Transpose/SoftmaxRows/Scale/Add/AddRowVector/
// LayerNorm), gather/scatter message passing, pairwise readout
// (RepeatEachRow/TileRows/Mul/Concat/MaxPerGroup) and an MLP head.
type arenaTestNet struct {
	attn *SelfAttention
	mlp  *MLP
	head *MLP
}

func newArenaTestNet(seed uint64) *arenaTestNet {
	r := rng.New(seed)
	return &arenaTestNet{
		attn: NewSelfAttention(r, 8),
		mlp:  NewMLP(r, 8, 8),
		head: NewMLP(r, 24, 8, 1),
	}
}

func (n *arenaTestNet) params() []*Tensor {
	var ps []*Tensor
	for _, l := range []Layer{n.attn, n.mlp, n.head} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// forward runs the pass through ops and returns the scalar loss.
func (n *arenaTestNet) forward(ops Ops, x *Tensor, targets, weights []float64) *Tensor {
	att := n.attn.ForwardOps(ops, x)
	enc := n.mlp.ForwardOps(ops, att)
	ops.Recycle(att)
	gathered := ops.Gather(enc, []int{0, 1, 2, 3, 2, 1})
	agg := ops.ScatterMean(gathered, []int{0, 0, 1, 1, 2, 2}, 3)
	ops.Recycle(gathered)
	mean := ops.MeanRows(enc)
	ops.Recycle(enc)
	big := ops.RepeatEachRow(agg, 2)
	ctx := ops.TileRows(ops.ConcatRows([]*Tensor{mean, mean}), 3)
	prod := ops.Mul(big, ctx)
	cat := ops.Concat(big, ctx, prod)
	ops.Recycle(agg, mean, big, ctx, prod)
	scores := n.head.ForwardOps(ops, cat)
	ops.Recycle(cat)
	out := ops.MaxPerGroup(scores, 3, 2)
	ops.Recycle(scores)
	switch o := ops.(type) {
	case *TrainArena:
		return o.BCEWithLogits(out, targets, weights)
	default:
		return BCEWithLogits(out, targets, weights)
	}
}

// TestTrainArenaMatchesHeapOps verifies the pooled training path end to
// end: loss and every parameter gradient must be bit-identical to the
// heap autodiff ops, across repeated passes over warm pool memory.
func TestTrainArenaMatchesHeapOps(t *testing.T) {
	net := newArenaTestNet(11)
	r := rng.New(22)
	x := New(6, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	targets := []float64{1, 0, 1}
	weights := []float64{2, 1, 1}

	// Reference pass on the heap.
	heapLoss := net.forward(TrainOps{}, x, targets, weights)
	heapLoss.Backward()
	want := make([][]float64, 0, len(net.params()))
	for _, p := range net.params() {
		want = append(want, append([]float64(nil), p.Grad...))
		p.ZeroGrad()
	}

	arena := NewTrainArena()
	for pass := 0; pass < 3; pass++ {
		loss := net.forward(arena, x, targets, weights)
		loss.Backward()
		if loss.Item() != heapLoss.Item() {
			t.Fatalf("pass %d: arena loss %v != heap loss %v", pass, loss.Item(), heapLoss.Item())
		}
		arena.Close()
		for pi, p := range net.params() {
			for j, g := range p.Grad {
				if g != want[pi][j] {
					t.Fatalf("pass %d: param %d grad[%d] = %v, heap %v (not bit-identical)", pass, pi, j, g, want[pi][j])
				}
			}
			p.ZeroGrad()
		}
	}
	if st := arena.PoolStats(); st.Reuses == 0 {
		t.Fatalf("warm arena passes reused no pooled slabs: %+v", st)
	}
}

// benchPass times one full forward+backward through the given ops.
func benchPass(b *testing.B, mk func() Ops, close func(Ops)) {
	net := newArenaTestNet(11)
	r := rng.New(22)
	x := New(6, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	targets := []float64{1, 0, 1}
	weights := []float64{2, 1, 1}
	ops := mk()
	// Warm the pool before measuring.
	loss := net.forward(ops, x, targets, weights)
	loss.Backward()
	close(ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := net.forward(ops, x, targets, weights)
		loss.Backward()
		close(ops)
		for _, p := range net.params() {
			p.ZeroGrad()
		}
	}
}

// BenchmarkTrainStepHeap is the baseline: every tape tensor heap-allocated.
func BenchmarkTrainStepHeap(b *testing.B) {
	benchPass(b, func() Ops { return TrainOps{} }, func(Ops) {})
}

// BenchmarkTrainStepArena is the pooled path; -benchmem shows the drop in
// per-step allocations (slab traffic moves to the arena pool).
func BenchmarkTrainStepArena(b *testing.B) {
	arena := NewTrainArena()
	benchPass(b, func() Ops { return arena }, func(o Ops) { o.(*TrainArena).Close() })
}
