package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// magic identifies the snowplow model checkpoint format.
const magic = "SNPW0001"

// quantMagic identifies the mixed-precision checkpoint format: the same
// record layout as SNPW0001 plus a per-record dtype byte, so quantized
// tensors ship as int8 codes with their (scale, zero-point) pair.
const quantMagic = "SNPQ0001"

// Per-record dtype tags in a quantMagic checkpoint.
const (
	dtypeF64  = 0
	dtypeInt8 = 1
)

// SaveParams writes a named set of tensors to w in a simple self-describing
// binary format (magic, count, then name/shape/data records). Names are
// written in sorted order so checkpoints are byte-stable.
func SaveParams(w io.Writer, params map[string]*Tensor) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := params[name]
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8*len(t.Data))
		for i, v := range t.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// SaveQuantParams writes a mixed-precision checkpoint: parameters present
// in qz ship as int8 codes with their (scale, zero-point) pair, the rest as
// float64. Names are written in sorted order so checkpoints are byte-stable
// — the cluster's model SHA therefore covers the quantized form directly.
func SaveQuantParams(w io.Writer, params map[string]*Tensor, qz *Quantized) error {
	if _, err := io.WriteString(w, quantMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := params[name]
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if q := qz.Named(name); q != nil {
			if q.Size() != t.Size() {
				return fmt.Errorf("nn: quantized parameter %q size mismatch: %d vs %d", name, q.Size(), t.Size())
			}
			if _, err := w.Write([]byte{dtypeInt8}); err != nil {
				return err
			}
			var head [12]byte
			binary.LittleEndian.PutUint64(head[:8], math.Float64bits(q.Scale))
			binary.LittleEndian.PutUint32(head[8:], uint32(int32(q.Zero)))
			if _, err := w.Write(head[:]); err != nil {
				return err
			}
			buf := make([]byte, len(q.Data))
			for i, c := range q.Data {
				buf[i] = byte(c)
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
			continue
		}
		if _, err := w.Write([]byte{dtypeF64}); err != nil {
			return err
		}
		buf := make([]byte, 8*len(t.Data))
		for i, v := range t.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into the provided
// tensors. Every checkpoint record must match a tensor of identical shape in
// params, and every tensor in params must be present in the checkpoint.
func LoadParams(r io.Reader, params map[string]*Tensor) error {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if string(head) != magic {
		return errors.New("nn: not a snowplow checkpoint")
	}
	return loadRecords(r, params, false, nil)
}

// LoadParamsAuto reads either checkpoint format, dispatching on the magic.
// For a float64 (SNPW0001) checkpoint it behaves exactly like LoadParams and
// returns a nil registry. For a mixed (SNPQ0001) checkpoint it loads the
// float64 records, decodes the int8 records into a Quantized registry bound
// to params, and writes the *dequantized* values into the float64 tensors —
// the replay invariant, so callers that ignore the registry still compute
// exactly what the int8 kernels would.
func LoadParamsAuto(r io.Reader, params map[string]*Tensor) (*Quantized, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	switch string(head) {
	case magic:
		return nil, loadRecords(r, params, false, nil)
	case quantMagic:
		qz := &Quantized{byName: map[string]*QuantTensor{}, byTensor: map[*Tensor]*QuantTensor{}}
		if err := loadRecords(r, params, true, qz); err != nil {
			return nil, err
		}
		if qz.Len() == 0 {
			return nil, nil
		}
		return qz, nil
	}
	return nil, errors.New("nn: not a snowplow checkpoint")
}

// loadRecords reads the record stream after the magic. With quant set, each
// record carries a dtype byte and int8 records are decoded into qz and
// dequantized into the target tensor.
func loadRecords(r io.Reader, params map[string]*Tensor, quant bool, qz *Quantized) error {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	loaded := map[string]bool{}
	for i := uint32(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return err
		}
		var ndim uint32
		if err := binary.Read(r, binary.LittleEndian, &ndim); err != nil {
			return err
		}
		if ndim > 8 {
			return fmt.Errorf("nn: parameter %q has unreasonable rank %d", name, ndim)
		}
		shape := make([]int, ndim)
		size := 1
		for j := range shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[j] = int(d)
			size *= int(d)
		}
		t, ok := params[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint has unknown parameter %q", name)
		}
		if t.Size() != size {
			return fmt.Errorf("nn: parameter %q shape mismatch: checkpoint %v vs model %v", name, shape, t.Shape)
		}
		if loaded[name] {
			return fmt.Errorf("nn: checkpoint repeats parameter %q", name)
		}
		dtype := byte(dtypeF64)
		if quant {
			var db [1]byte
			if _, err := io.ReadFull(r, db[:]); err != nil {
				return err
			}
			dtype = db[0]
		}
		switch dtype {
		case dtypeF64:
			buf := make([]byte, 8*size)
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			for j := 0; j < size; j++ {
				t.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
			}
		case dtypeInt8:
			var head [12]byte
			if _, err := io.ReadFull(r, head[:]); err != nil {
				return err
			}
			scale := math.Float64frombits(binary.LittleEndian.Uint64(head[:8]))
			zero := int(int32(binary.LittleEndian.Uint32(head[8:])))
			if math.IsNaN(scale) || math.IsInf(scale, 0) {
				return fmt.Errorf("nn: parameter %q has non-finite quantization scale", name)
			}
			buf := make([]byte, size)
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			q := &QuantTensor{
				Shape: append([]int(nil), t.Shape...),
				Scale: scale,
				Zero:  zero,
				Data:  make([]int8, size),
			}
			for j, b := range buf {
				q.Data[j] = int8(b)
			}
			q.finish()
			q.Dequantize(t.Data)
			qz.byName[name] = q
			qz.byTensor[t] = q
		default:
			return fmt.Errorf("nn: parameter %q has unknown dtype %d", name, dtype)
		}
		loaded[name] = true
	}
	for name := range params {
		if !loaded[name] {
			return fmt.Errorf("nn: checkpoint missing parameter %q", name)
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("nn: unreasonable string length in checkpoint")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
