package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// magic identifies the snowplow model checkpoint format.
const magic = "SNPW0001"

// SaveParams writes a named set of tensors to w in a simple self-describing
// binary format (magic, count, then name/shape/data records). Names are
// written in sorted order so checkpoints are byte-stable.
func SaveParams(w io.Writer, params map[string]*Tensor) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := params[name]
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8*len(t.Data))
		for i, v := range t.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into the provided
// tensors. Every checkpoint record must match a tensor of identical shape in
// params, and every tensor in params must be present in the checkpoint.
func LoadParams(r io.Reader, params map[string]*Tensor) error {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if string(head) != magic {
		return errors.New("nn: not a snowplow checkpoint")
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	loaded := map[string]bool{}
	for i := uint32(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return err
		}
		var ndim uint32
		if err := binary.Read(r, binary.LittleEndian, &ndim); err != nil {
			return err
		}
		shape := make([]int, ndim)
		size := 1
		for j := range shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[j] = int(d)
			size *= int(d)
		}
		t, ok := params[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint has unknown parameter %q", name)
		}
		if t.Size() != size {
			return fmt.Errorf("nn: parameter %q shape mismatch: checkpoint %v vs model %v", name, shape, t.Shape)
		}
		buf := make([]byte, 8*size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for j := 0; j < size; j++ {
			t.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		loaded[name] = true
	}
	for name := range params {
		if !loaded[name] {
			return fmt.Errorf("nn: checkpoint missing parameter %q", name)
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("nn: unreasonable string length in checkpoint")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
