package nn

import "sync"

// Pool is a thread-safe, size-classed free list of float64 slabs. It backs
// the allocation-free inference path: tensors borrowed from a pool and
// released after a forward pass are recycled instead of garbage-collected,
// so steady-state serving allocates (almost) nothing per query.
//
// A released slab's contents are undefined until it is borrowed again;
// Borrow and GetSlice return zeroed memory, so pooled forwards are
// bit-identical to fresh-allocation forwards.
type Pool struct {
	mu       sync.Mutex
	classes  map[int][][]float64
	perClass int
	borrows  int64
	reuses   int64
}

// maxSlabsPerClass bounds the idle slabs retained per size class for pools
// created with NewPool. Inference passes keep only a handful of live slabs
// per class, so a small cap suffices; training tapes keep hundreds live at
// once and use NewPoolCap with a larger bound.
const maxSlabsPerClass = 64

// minSlabClass is the smallest slab capacity; tiny requests share it.
const minSlabClass = 32

// NewPool creates an empty pool with the default per-class retention cap.
func NewPool() *Pool {
	return NewPoolCap(maxSlabsPerClass)
}

// NewPoolCap creates an empty pool retaining up to perClass idle slabs per
// size class. Training arenas, whose tapes hold every intermediate of a
// forward/backward pass live simultaneously, need a cap at least as large
// as the pass's tensor count or the pool thrashes back to the heap.
func NewPoolCap(perClass int) *Pool {
	if perClass < 1 {
		perClass = 1
	}
	return &Pool{classes: map[int][][]float64{}, perClass: perClass}
}

// PoolStats reports pool traffic.
type PoolStats struct {
	// Borrows counts GetSlice/Borrow calls; Reuses counts how many were
	// satisfied from the free list instead of the heap.
	Borrows, Reuses int64
	// Idle is the number of slabs currently parked in the free lists.
	Idle int
}

// Stats returns a snapshot of pool traffic.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, slabs := range p.classes {
		idle += len(slabs)
	}
	return PoolStats{Borrows: p.borrows, Reuses: p.reuses, Idle: idle}
}

// slabClass is the smallest power-of-two capacity holding n elements.
func slabClass(n int) int {
	c := minSlabClass
	for c < n {
		c <<= 1
	}
	return c
}

// GetSlice returns a zeroed slice of length n backed by a pooled slab.
func (p *Pool) GetSlice(n int) []float64 {
	s := p.GetSliceRaw(n)
	clear(s)
	return s
}

// GetSliceRaw is GetSlice without the zeroing, for callers that overwrite
// every element (e.g. the MatMul transpose scratch).
func (p *Pool) GetSliceRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := slabClass(n)
	p.mu.Lock()
	p.borrows++
	if slabs := p.classes[c]; len(slabs) > 0 {
		s := slabs[len(slabs)-1]
		p.classes[c] = slabs[:len(slabs)-1]
		p.reuses++
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, c)
}

// PutSlice parks a slab for reuse. Only slabs with power-of-two capacity
// (i.e. ones GetSlice handed out) re-enter the pool; anything else is left
// to the garbage collector. The caller must not use s afterwards.
func (p *Pool) PutSlice(s []float64) {
	c := cap(s)
	if c < minSlabClass || c&(c-1) != 0 {
		return
	}
	s = s[:0]
	p.mu.Lock()
	if len(p.classes[c]) < p.perClass {
		p.classes[c] = append(p.classes[c], s)
	}
	p.mu.Unlock()
}

// Borrow returns a zeroed tensor of the given shape backed by pooled
// memory. It does not participate in differentiation.
func (p *Pool) Borrow(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: p.GetSlice(n)}
}

// Release returns tensors' backing slabs to the pool. The caller must not
// use a tensor after releasing it. Nil entries are skipped.
func (p *Pool) Release(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		p.PutSlice(t.Data)
		t.Data = nil
	}
}

// scratch backs package-internal kernel temporaries (the MatMul transposed
// copy of B). It is shared by all goroutines; Pool is thread-safe.
var scratch = NewPool()
