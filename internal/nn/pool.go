package nn

import "sync"

// Pool is a thread-safe, size-classed free list of float64 slabs. It backs
// the allocation-free inference path: tensors borrowed from a pool and
// released after a forward pass are recycled instead of garbage-collected,
// so steady-state serving allocates (almost) nothing per query.
//
// Tensor structs released through Release are recycled too (data slab and
// header alike), so a steady-state fused forward pass performs zero heap
// allocations — see the arena-leak test in fused_test.go.
//
// A released slab's contents are undefined until it is borrowed again;
// Borrow and GetSlice return zeroed memory, so pooled forwards are
// bit-identical to fresh-allocation forwards.
type Pool struct {
	mu       sync.Mutex
	classes  map[int][][]float64
	tfree    []*Tensor
	perClass int
	borrows  int64
	reuses   int64

	// prof accumulates the fused/quant kernel counters and (when kernel
	// profiling is on) per-op kernel time flushed by Infer.Close.
	prof profileAtomics
}

// maxSlabsPerClass bounds the idle slabs retained per size class for pools
// created with NewPool. Inference passes keep only a handful of live slabs
// per class, so a small cap suffices; training tapes keep hundreds live at
// once and use NewPoolCap with a larger bound.
const maxSlabsPerClass = 64

// minSlabClass is the smallest slab capacity; tiny requests share it.
const minSlabClass = 32

// maxFreeTensors bounds the recycled Tensor headers a pool retains.
const maxFreeTensors = 512

// NewPool creates an empty pool with the default per-class retention cap.
func NewPool() *Pool {
	return NewPoolCap(maxSlabsPerClass)
}

// NewPoolCap creates an empty pool retaining up to perClass idle slabs per
// size class. Training arenas, whose tapes hold every intermediate of a
// forward/backward pass live simultaneously, need a cap at least as large
// as the pass's tensor count or the pool thrashes back to the heap.
func NewPoolCap(perClass int) *Pool {
	if perClass < 1 {
		perClass = 1
	}
	return &Pool{classes: map[int][][]float64{}, perClass: perClass}
}

// PoolStats reports pool traffic.
type PoolStats struct {
	// Borrows counts GetSlice/Borrow calls; Reuses counts how many were
	// satisfied from the free list instead of the heap.
	Borrows, Reuses int64
	// Idle is the number of slabs currently parked in the free lists.
	Idle int
}

// Stats returns a snapshot of pool traffic.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, slabs := range p.classes {
		idle += len(slabs)
	}
	return PoolStats{Borrows: p.borrows, Reuses: p.reuses, Idle: idle}
}

// slabClass is the smallest power-of-two capacity holding n elements.
func slabClass(n int) int {
	c := minSlabClass
	for c < n {
		c <<= 1
	}
	return c
}

// GetSlice returns a zeroed slice of length n backed by a pooled slab.
func (p *Pool) GetSlice(n int) []float64 {
	s := p.GetSliceRaw(n)
	clear(s)
	return s
}

// GetSliceRaw is GetSlice without the zeroing, for callers that overwrite
// every element (e.g. the MatMul transpose scratch).
func (p *Pool) GetSliceRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := slabClass(n)
	p.mu.Lock()
	p.borrows++
	if slabs := p.classes[c]; len(slabs) > 0 {
		s := slabs[len(slabs)-1]
		p.classes[c] = slabs[:len(slabs)-1]
		p.reuses++
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, c)
}

// PutSlice parks a slab for reuse. Only slabs with power-of-two capacity
// (i.e. ones GetSlice handed out) re-enter the pool; anything else is left
// to the garbage collector. The caller must not use s afterwards.
func (p *Pool) PutSlice(s []float64) {
	c := cap(s)
	if c < minSlabClass || c&(c-1) != 0 {
		return
	}
	s = s[:0]
	p.mu.Lock()
	if len(p.classes[c]) < p.perClass {
		p.classes[c] = append(p.classes[c], s)
	}
	p.mu.Unlock()
}

// Borrow returns a zeroed tensor of the given shape backed by pooled
// memory. It does not participate in differentiation.
func (p *Pool) Borrow(shape ...int) *Tensor {
	return p.borrow(shape, true)
}

// BorrowRaw is Borrow without the zeroing, for callers that overwrite every
// element (the fused kernels and most elementwise inference ops).
func (p *Pool) BorrowRaw(shape ...int) *Tensor {
	return p.borrow(shape, false)
}

// borrow takes the tensor header and the data slab from the free lists in
// one critical section. A slab freshly allocated from the heap is already
// zero, so the clear only runs for reused slabs on the zeroing path.
func (p *Pool) borrow(shape []int, zero bool) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var (
		t     *Tensor
		s     []float64
		fresh bool
	)
	p.mu.Lock()
	if l := len(p.tfree); l > 0 {
		t = p.tfree[l-1]
		p.tfree[l-1] = nil
		p.tfree = p.tfree[:l-1]
	}
	p.borrows++
	if n > 0 {
		c := slabClass(n)
		if slabs := p.classes[c]; len(slabs) > 0 {
			s = slabs[len(slabs)-1][:n]
			p.classes[c] = slabs[:len(slabs)-1]
			p.reuses++
		}
	}
	p.mu.Unlock()
	if s == nil && n > 0 {
		s = make([]float64, n, slabClass(n))
		fresh = true
	}
	if zero && !fresh {
		clear(s)
	}
	if t == nil {
		t = &Tensor{}
	}
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = s
	t.arenaIdx = 0
	return t
}

// Release returns tensors' backing slabs — and their headers — to the pool.
// The caller must not use a tensor after releasing it (the header may be
// handed out again by the next Borrow). Nil entries and already-released
// tensors are skipped.
func (p *Pool) Release(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil || t.arenaIdx == releasedIdx {
			continue
		}
		p.PutSlice(t.Data)
		t.Data = nil
		t.arenaIdx = releasedIdx
		t.Grad, t.parents, t.backward = nil, nil, nil
		p.mu.Lock()
		if len(p.tfree) < maxFreeTensors {
			p.tfree = append(p.tfree, t)
		}
		p.mu.Unlock()
	}
}

// releasedIdx marks a tensor header as parked in (or dropped by) the header
// free list, guarding against double release.
const releasedIdx = -1

// scratch backs package-internal kernel temporaries (the MatMul transposed
// copy of B). It is shared by all goroutines; Pool is thread-safe.
var scratch = NewPool()
