//go:build amd64

package nn

import (
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// TestFusedScalarFallbackBitExact re-runs the fused/unfused/quantized
// equality with the AVX kernel disabled, pinning the scalar fallback (the
// matmul_other.go build-tag path on non-amd64 hosts) to the same bits.
func TestFusedScalarFallbackBitExact(t *testing.T) {
	if !useAVX {
		t.Skip("host has no AVX; the main tests already run the scalar path")
	}
	r := rng.New(97)
	sa, mlp, params := quantTestModel(r)
	qz := QuantizeParams(params, QuantMinSize)
	if err := qz.ApplyDequantized(params); err != nil {
		t.Fatal(err)
	}
	refreshFusedCaches(sa, mlp)
	x := benchTensor(r, 10, 16)
	pool := NewPool()

	forward := func(ops Ops) []float64 {
		h := sa.ForwardOps(ops, x)
		out := mlp.ForwardOps(ops, h)
		res := append([]float64(nil), out.Data...)
		return res
	}

	un := NewInfer(pool)
	avx := forward(un)
	un.Close()

	useAVX = false
	defer func() { useAVX = true }()

	un2 := NewInfer(pool)
	scalarUnfused := forward(un2)
	un2.Close()
	fu := NewInferFused(pool)
	scalarFused := forward(fu)
	fu.Close()
	qi := NewQuantInfer(pool, qz)
	scalarQuant := forward(qi)
	qi.Close()

	for i := range avx {
		if scalarUnfused[i] != avx[i] {
			t.Fatalf("scalar unfused differs from AVX at %d: %b vs %b", i, scalarUnfused[i], avx[i])
		}
		if scalarFused[i] != avx[i] {
			t.Fatalf("scalar fused differs from AVX at %d: %b vs %b", i, scalarFused[i], avx[i])
		}
		if scalarQuant[i] != avx[i] {
			t.Fatalf("scalar int8 differs from AVX at %d: %b vs %b", i, scalarQuant[i], avx[i])
		}
	}
}
