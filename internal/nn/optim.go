package nn

import "math"

// Adam implements the Adam optimizer with optional decoupled weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*Tensor
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam creates an Adam optimizer over params with the given learning
// rate and default moment coefficients (0.9, 0.999).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Size())
		a.v[i] = make([]float64, p.Size())
	}
	return a
}

// Step applies one update using the gradients currently stored on the
// parameters, then leaves the gradients untouched (call ZeroGrad separately).
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			if a.WeightDecay != 0 {
				g += a.WeightDecay * p.Data[j]
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ZeroGrad clears the gradients of all managed parameters.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm scales gradients so their global L2 norm does not exceed max.
// It returns the pre-clipping norm.
func ClipGradNorm(params []*Tensor, max float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > max && norm > 0 {
		scale := max / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}
