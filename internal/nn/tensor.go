// Package nn is a small, dependency-free neural-network library with
// reverse-mode automatic differentiation.
//
// It provides the pieces PMM needs — dense layers, embeddings, layer
// normalization, single-head self-attention, relational graph aggregation —
// on top of a float64 Tensor type. Gradients are recorded lazily: an
// operation attaches a backward closure to its output only when at least one
// input participates in differentiation, so inference on a frozen model
// allocates no tape and is safe to run from many goroutines concurrently.
package nn

import "fmt"

// Tensor is a dense row-major array of float64 with optional gradient
// storage. Tensors returned by operations carry the backward tape needed to
// propagate gradients to their inputs.
type Tensor struct {
	Shape []int
	Data  []float64
	Grad  []float64

	requiresGrad bool
	parents      []*Tensor
	backward     func()

	// arenaIdx is the tensor's slot in the Infer arena that allocated it
	// (infer.go); zero and unused for ordinary tensors.
	arenaIdx int
}

// New creates a tensor with the given shape and zero-initialized data.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("nn: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice creates a tensor with the given shape that adopts data. The
// length of data must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// At returns the element at the given row-major indices (2D only).
func (t *Tensor) At(i, j int) float64 {
	if len(t.Shape) != 2 {
		panic("nn: At requires a 2D tensor")
	}
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns the element at the given row-major indices (2D only).
func (t *Tensor) Set(i, j int, v float64) {
	if len(t.Shape) != 2 {
		panic("nn: Set requires a 2D tensor")
	}
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a view of row i of a 2D tensor. Mutating the returned slice
// mutates the tensor.
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic("nn: Row requires a 2D tensor")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Item returns the single value of a one-element tensor.
func (t *Tensor) Item() float64 {
	if t.Size() != 1 {
		panic("nn: Item requires a one-element tensor")
	}
	return t.Data[0]
}

// RequireGrad marks the tensor as a differentiation leaf (a parameter) and
// allocates its gradient buffer. It returns the tensor for chaining.
func (t *Tensor) RequireGrad() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, t.Size())
	}
	return t
}

// RequiresGrad reports whether the tensor participates in differentiation,
// either as a leaf or as the output of an operation over such leaves.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// UnrequireGrad removes the tensor from differentiation (inference mode):
// subsequent operations over it record no tape, making concurrent forward
// passes safe. The gradient buffer is released.
func (t *Tensor) UnrequireGrad() {
	t.requiresGrad = false
	t.Grad = nil
	t.parents = nil
	t.backward = nil
}

// ZeroGrad clears the gradient buffer if present.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Detach returns a copy of the tensor's values that does not participate in
// differentiation.
func (t *Tensor) Detach() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Clone returns a deep copy of shape and data. Gradient state is not copied.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// newResult constructs an op output over the given inputs. The result tracks
// gradients only when some input does; in that case grad storage is
// allocated and the backward closure will be invoked during Backward.
func newResult(shape []int, inputs ...*Tensor) *Tensor {
	out := New(shape...)
	for _, in := range inputs {
		if in != nil && in.requiresGrad {
			out.requiresGrad = true
			out.Grad = make([]float64, out.Size())
			out.parents = inputs
			break
		}
	}
	return out
}

// Backward propagates gradients from t (typically a scalar loss) to all
// parameter leaves reachable through the tape. The tensor's own gradient is
// seeded with ones.
func (t *Tensor) Backward() {
	if !t.requiresGrad {
		panic("nn: Backward on a tensor that does not require grad")
	}
	for i := range t.Grad {
		t.Grad[i] = 1
	}
	// Topological order via iterative DFS over parents.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t, 0}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.parents) {
			p := f.t.parents[f.next]
			f.next++
			if p != nil && p.requiresGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.t)
		stack = stack[:len(stack)-1]
	}
	// order is post-order (children before parents in the DFS tree), so
	// reverse iteration visits each tensor before its inputs.
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

func sameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}
