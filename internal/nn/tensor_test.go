package nn

import (
	"math"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// numericalGrad estimates d(loss)/d(p[idx]) by central differences.
func numericalGrad(p *Tensor, idx int, loss func() float64) float64 {
	const h = 1e-5
	orig := p.Data[idx]
	p.Data[idx] = orig + h
	up := loss()
	p.Data[idx] = orig - h
	down := loss()
	p.Data[idx] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies analytic gradients of loss() (which must rebuild the
// graph, call Backward, and return the loss value) against numeric ones for
// every element of every parameter.
func checkGrads(t *testing.T, params []*Tensor, loss func() float64, tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	loss()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}
	lossOnly := func() float64 {
		for _, p := range params {
			p.ZeroGrad()
		}
		return loss()
	}
	for i, p := range params {
		for j := range p.Data {
			num := numericalGrad(p, j, lossOnly)
			got := analytic[i][j]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", i, j, got, num)
			}
		}
	}
}

func randomTensor(r *rng.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

func TestMatMulForward(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	r := rng.New(1)
	a := randomTensor(r, 3, 4).RequireGrad()
	b := randomTensor(r, 4, 2).RequireGrad()
	checkGrads(t, []*Tensor{a, b}, func() float64 {
		l := Sum(MatMul(a, b))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestAddSubMulGrad(t *testing.T) {
	r := rng.New(2)
	a := randomTensor(r, 2, 3).RequireGrad()
	b := randomTensor(r, 2, 3).RequireGrad()
	checkGrads(t, []*Tensor{a, b}, func() float64 {
		l := Sum(Mul(Add(a, b), Sub(a, b)))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestAddRowVectorGrad(t *testing.T) {
	r := rng.New(3)
	a := randomTensor(r, 4, 3).RequireGrad()
	v := randomTensor(r, 1, 3).RequireGrad()
	checkGrads(t, []*Tensor{a, v}, func() float64 {
		l := Sum(Sigmoid(AddRowVector(a, v)))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestActivationGrads(t *testing.T) {
	r := rng.New(4)
	for name, act := range map[string]func(*Tensor) *Tensor{
		"relu":    ReLU,
		"sigmoid": Sigmoid,
		"tanh":    Tanh,
	} {
		a := randomTensor(r, 3, 3).RequireGrad()
		// Shift away from 0 so ReLU's kink does not break the numeric check.
		for i := range a.Data {
			if math.Abs(a.Data[i]) < 0.1 {
				a.Data[i] += 0.5
			}
		}
		checkGrads(t, []*Tensor{a}, func() float64 {
			l := Sum(Mul(act(a), act(a)))
			l.Backward()
			return l.Item()
		}, 1e-5)
		_ = name
	}
}

func TestSoftmaxRowsForward(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax[%d][%d] = %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxGrad(t *testing.T) {
	r := rng.New(5)
	a := randomTensor(r, 2, 4).RequireGrad()
	w := randomTensor(r, 2, 4)
	checkGrads(t, []*Tensor{a}, func() float64 {
		l := Sum(Mul(SoftmaxRows(a), w))
		l.Backward()
		return l.Item()
	}, 1e-5)
}

func TestConcatGrad(t *testing.T) {
	r := rng.New(6)
	a := randomTensor(r, 2, 3).RequireGrad()
	b := randomTensor(r, 2, 2).RequireGrad()
	c := Concat(a, b)
	if c.Shape[0] != 2 || c.Shape[1] != 5 {
		t.Fatalf("Concat shape %v", c.Shape)
	}
	checkGrads(t, []*Tensor{a, b}, func() float64 {
		l := Sum(Mul(Concat(a, b), Concat(a, b)))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestGatherGrad(t *testing.T) {
	r := rng.New(7)
	table := randomTensor(r, 5, 3).RequireGrad()
	idx := []int{0, 2, 2, 4}
	checkGrads(t, []*Tensor{table}, func() float64 {
		g := Gather(table, idx)
		l := Sum(Mul(g, g))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestScatterMeanForward(t *testing.T) {
	src := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	out := ScatterMean(src, []int{0, 0, 2}, 3)
	want := []float64{2, 3, 0, 0, 5, 6} // mean of rows 0,1 into bucket 0; row 2 into bucket 2
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("ScatterMean[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestScatterMeanGrad(t *testing.T) {
	r := rng.New(8)
	src := randomTensor(r, 4, 3).RequireGrad()
	dst := []int{1, 1, 0, 1}
	checkGrads(t, []*Tensor{src}, func() float64 {
		s := ScatterMean(src, dst, 2)
		l := Sum(Mul(s, s))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestMeanRowsGrad(t *testing.T) {
	r := rng.New(9)
	a := randomTensor(r, 5, 3).RequireGrad()
	checkGrads(t, []*Tensor{a}, func() float64 {
		m := MeanRows(a)
		l := Sum(Mul(m, m))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestTransposeGrad(t *testing.T) {
	r := rng.New(10)
	a := randomTensor(r, 3, 2).RequireGrad()
	checkGrads(t, []*Tensor{a}, func() float64 {
		tr := Transpose(a)
		l := Sum(Mul(tr, tr))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestRepeatEachRowGrad(t *testing.T) {
	r := rng.New(31)
	v := randomTensor(r, 3, 2).RequireGrad()
	out := RepeatEachRow(v.Detach(), 2)
	if out.Shape[0] != 6 {
		t.Fatalf("shape %v", out.Shape)
	}
	// Row pattern: a,a,b,b,c,c.
	if out.At(0, 0) != out.At(1, 0) || out.At(0, 0) == out.At(2, 0) && out.At(0, 1) == out.At(2, 1) {
		t.Fatalf("RepeatEachRow wrong layout: %v", out.Data)
	}
	checkGrads(t, []*Tensor{v}, func() float64 {
		o := RepeatEachRow(v, 3)
		l := Sum(Mul(o, o))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestTileRowsGrad(t *testing.T) {
	r := rng.New(32)
	v := randomTensor(r, 2, 3).RequireGrad()
	out := TileRows(v.Detach(), 2)
	if out.Shape[0] != 4 {
		t.Fatalf("shape %v", out.Shape)
	}
	// Row pattern: a,b,a,b.
	for j := 0; j < 3; j++ {
		if out.At(0, j) != out.At(2, j) || out.At(1, j) != out.At(3, j) {
			t.Fatal("TileRows wrong layout")
		}
	}
	checkGrads(t, []*Tensor{v}, func() float64 {
		o := TileRows(v, 3)
		l := Sum(Mul(o, o))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestMaxPerGroupForwardBackward(t *testing.T) {
	a := FromSlice([]float64{1, 5, 3, 2, 9, 4}, 6, 1).RequireGrad()
	out := MaxPerGroup(a, 2, 3)
	if out.Data[0] != 5 || out.Data[1] != 9 {
		t.Fatalf("MaxPerGroup = %v", out.Data)
	}
	Sum(out).Backward()
	want := []float64{0, 1, 0, 0, 1, 0}
	for i, w := range want {
		if a.Grad[i] != w {
			t.Fatalf("grad[%d] = %v, want %v", i, a.Grad[i], w)
		}
	}
}

func TestRepeatRowGrad(t *testing.T) {
	r := rng.New(33)
	v := randomTensor(r, 1, 4).RequireGrad()
	checkGrads(t, []*Tensor{v}, func() float64 {
		o := RepeatRow(v, 5)
		l := Sum(Mul(o, o))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestConcatRowsGrad(t *testing.T) {
	r := rng.New(34)
	a := randomTensor(r, 2, 3).RequireGrad()
	b := randomTensor(r, 1, 3).RequireGrad()
	out := ConcatRows([]*Tensor{a.Detach(), b.Detach()})
	if out.Shape[0] != 3 || out.Shape[1] != 3 {
		t.Fatalf("shape %v", out.Shape)
	}
	checkGrads(t, []*Tensor{a, b}, func() float64 {
		o := ConcatRows([]*Tensor{a, b})
		l := Sum(Mul(o, o))
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestBCEWithLogitsGrad(t *testing.T) {
	r := rng.New(11)
	logits := randomTensor(r, 6).RequireGrad()
	targets := []float64{1, 0, 1, 1, 0, 0}
	weights := []float64{1, 2, 1, 0.5, 1, 3}
	checkGrads(t, []*Tensor{logits}, func() float64 {
		l := BCEWithLogits(logits, targets, weights)
		l.Backward()
		return l.Item()
	}, 1e-6)
}

func TestBCEWithLogitsValue(t *testing.T) {
	// logit 0 → p = 0.5 → loss = ln 2 regardless of target.
	logits := New(2)
	l := BCEWithLogits(logits, []float64{0, 1}, nil)
	if math.Abs(l.Item()-math.Log(2)) > 1e-12 {
		t.Fatalf("BCE at logit 0 = %v, want ln2", l.Item())
	}
}

func TestLayerNormGrad(t *testing.T) {
	r := rng.New(12)
	x := randomTensor(r, 3, 4).RequireGrad()
	ln := NewLayerNorm(4)
	params := append([]*Tensor{x}, ln.Params()...)
	checkGrads(t, params, func() float64 {
		y := ln.Forward(x)
		l := Sum(Mul(y, y))
		l.Backward()
		return l.Item()
	}, 1e-4)
}

func TestLayerNormNormalizes(t *testing.T) {
	r := rng.New(13)
	x := randomTensor(r, 4, 8)
	// Scale rows wildly to confirm normalization.
	for i := range x.Data {
		x.Data[i] = x.Data[i]*100 + 7
	}
	ln := NewLayerNorm(8)
	y := ln.Forward(x)
	for i := 0; i < 4; i++ {
		row := y.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= 8
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v after LayerNorm", i, mean)
		}
	}
}

func TestSelfAttentionGrad(t *testing.T) {
	r := rng.New(14)
	sa := NewSelfAttention(r, 4)
	x := randomTensor(r, 3, 4).RequireGrad()
	params := append([]*Tensor{x}, sa.Params()...)
	checkGrads(t, params, func() float64 {
		y := sa.Forward(x)
		l := Sum(Mul(y, y))
		l.Backward()
		return l.Item()
	}, 1e-3)
}

func TestBackwardSharedSubgraph(t *testing.T) {
	// A tensor consumed by two ops must accumulate both gradient paths.
	a := FromSlice([]float64{2}, 1).RequireGrad()
	b := Mul(a, a)           // a^2
	c := Add(b, Scale(a, 3)) // a^2 + 3a
	c.Backward()
	// d/da (a^2+3a) = 2a+3 = 7
	if math.Abs(a.Grad[0]-7) > 1e-12 {
		t.Fatalf("shared-subgraph grad %v, want 7", a.Grad[0])
	}
}

func TestNoGradRecordingWithoutRequireGrad(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	c := Mul(a, b)
	if c.RequiresGrad() || c.backward != nil || c.parents != nil {
		t.Fatal("op over frozen tensors recorded a tape")
	}
}

func TestBackwardPanicsWithoutGrad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Backward()
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { Add(New(2, 3), New(3, 2)) },
		func() { Mul(New(2), New(3)) },
		func() { AddRowVector(New(2, 3), New(1, 2)) },
		func() { Gather(New(2, 3), []int{5}) },
		func() { ScatterMean(New(2, 3), []int{0, 5}, 2) },
		func() { FromSlice([]float64{1}, 2, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDetachStopsGradient(t *testing.T) {
	a := FromSlice([]float64{3}, 1).RequireGrad()
	d := a.Detach()
	if d.RequiresGrad() {
		t.Fatal("Detach result requires grad")
	}
	l := Mul(Add(a, d), Add(a, d)) // (a + const)^2
	Sum(l).Backward()
	// d/da (a+3)^2 = 2(a+3) = 12
	if math.Abs(a.Grad[0]-12) > 1e-12 {
		t.Fatalf("grad through Detach %v, want 12", a.Grad[0])
	}
}

func TestCrossEntropyRowsGrad(t *testing.T) {
	r := rng.New(35)
	logits := randomTensor(r, 4, 5).RequireGrad()
	labels := []int{0, 3, 2, 4}
	checkGrads(t, []*Tensor{logits}, func() float64 {
		l := CrossEntropyRows(logits, labels)
		l.Backward()
		return l.Item()
	}, 1e-5)
}

func TestCrossEntropyRowsValue(t *testing.T) {
	// Uniform logits: loss = ln(n).
	logits := New(2, 4)
	l := CrossEntropyRows(logits, []int{1, 2})
	if math.Abs(l.Item()-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform CE = %v, want ln4", l.Item())
	}
	// Confident correct prediction: loss near 0.
	strong := FromSlice([]float64{100, 0, 0, 0}, 1, 4)
	l2 := CrossEntropyRows(strong, []int{0})
	if l2.Item() > 1e-6 {
		t.Fatalf("confident CE = %v", l2.Item())
	}
}
