package nn

import (
	"fmt"
	"math"
	"time"
)

// Fused inference kernels for the frozen-model hot path. Each fused kernel
// collapses a chain of Ops-interface calls — and their intermediate arena
// tensors, shape checks and memory passes — into one cache-hot pass that
// computes every element with exactly the summation order of the unfused
// chain, so fused and unfused forwards are bit-identical (fused_test.go
// proves it against both the AVX and scalar MatMul mirrors):
//
//   - LinearBias: MatMul → AddRowVector (→ ReLU) in one kernel, with the
//     bias/ReLU epilogue applied per output-row block while it is still in
//     cache, and an optional pre-transposed weight (Linear.FreezeFused)
//     that skips the per-call transpose + scratch-pool round trip.
//   - ScaledDotAttention: Transpose → MatMul → Scale → SoftmaxRows →
//     MatMul in one kernel. The unfused chain transposes k and then
//     matmulForward transposes it *back* internally, so the fused kernel
//     uses k's rows directly as the pre-transposed operand and softens each
//     score row in place (softmaxRow is alias-safe) — two transposes, one
//     m×m intermediate and three arena tensors gone.
//   - AddLayerNorm: residual Add → LayerNorm in one kernel with the row
//     sum, mean and inverse-stddev inlined (no separate sum tensor).
//
// TrainOps and TrainArena do not implement FusedOps, so training and tape
// replay always take the unfused chain; layers gate on FusionEnabled so a
// plain Infer (fusion off) also keeps the op-by-op path for golden replay.

// FusedOps is implemented by op sets that provide fused inference kernels.
// Layers consult FusionEnabled before taking the fused path; an
// implementation with fusion disabled must still compute correctly when
// called directly (Infer falls back to the unfused chain).
type FusedOps interface {
	Ops
	// FusionEnabled reports whether layers should route through the fused
	// kernels.
	FusionEnabled() bool
	// LinearBias computes x×w + b, clamping with ReLU when relu is set.
	// wt, when non-nil, is w pre-transposed ((out,in) row-major — see
	// Linear.FreezeFused); nil transposes into pool scratch per call.
	LinearBias(x, w *Tensor, wt []float64, b *Tensor, relu bool) *Tensor
	// ScaledDotAttention computes SoftmaxRows(scale·(q×kᵀ))×v for q, k, v
	// of equal shape (m, d).
	ScaledDotAttention(q, k, v *Tensor, scale float64) *Tensor
	// RaggedScaledDotAttention runs ScaledDotAttention independently over
	// row segments of q, k, v: bounds[s]..bounds[s+1] delimit segment s.
	// Bit-identical to per-segment calls; the point is that the caller can
	// batch the q/k/v projections of many variable-length sequences into
	// single large matmuls, which the plain Ops interface cannot express.
	RaggedScaledDotAttention(q, k, v *Tensor, bounds []int, scale float64) *Tensor
	// RaggedMeanRows computes the per-segment row mean: output row s is
	// MeanRows over x's rows bounds[s]..bounds[s+1] (segments must be
	// non-empty).
	RaggedMeanRows(x *Tensor, bounds []int) *Tensor
	// AddLayerNorm computes LayerNorm(x+y) with the learned affine.
	AddLayerNorm(x, y, gamma, beta *Tensor, eps float64) *Tensor
	// AddInto accumulates x into dst in place: dst[i] = dst[i] + x[i], the
	// exact per-element sum (dst as left operand) Add computes — so a
	// left-associative accumulation chain can reuse one tensor instead of
	// allocating a fresh output per step.
	AddInto(dst, x *Tensor)
	// ReLUInPlace clamps x in place with the same !(v > 0) → 0 test as
	// ReLU (NaN and -0 clamp to +0).
	ReLUInPlace(x *Tensor)
	// GatherAddInto accumulates table rows into dst in place:
	// dst[i,:] += table[indices[i],:] — element for element the
	// Gather → AddInto pair, without materializing the gathered rows.
	GatherAddInto(dst, table *Tensor, indices []int)
	// ScatterMeanInto accumulates per-bucket means of src into dst in
	// place: dst[d,:] += mean(src rows with dstIdx d), rounding exactly
	// like the ScatterMean → AddInto pair (empty buckets still add +0
	// rows), without materializing the bucket tensor.
	ScatterMeanInto(dst, src *Tensor, dstIdx []int)
	// Arena returns the underlying inference arena. Layers recycle through
	// it directly — a variadic call on the concrete *Infer keeps its
	// argument slice on the stack, where the same call through the Ops
	// interface would heap-allocate it every pass.
	Arena() *Infer
}

// AddInto implements FusedOps: dst[i] += x[i], bitwise the sum addForward
// writes with dst as the left operand.
func (in *Infer) AddInto(dst, x *Tensor) {
	checkSameShape("AddInto", dst, x)
	d := dst.Data
	for i, v := range x.Data {
		d[i] += v
	}
}

// ReLUInPlace implements FusedOps: the reluForward clamp, in place.
func (in *Infer) ReLUInPlace(x *Tensor) {
	reluInPlace(x.Data)
}

// GatherAddInto implements FusedOps: dst[i,:] += table[indices[i],:],
// bitwise the gatherForward copy followed by the AddInto sum.
func (in *Infer) GatherAddInto(dst, table *Tensor, indices []int) {
	cols := checkGatherAdd(dst, table, indices)
	gatherAddForward(dst.Data, table.Data, indices, table.Shape[0], cols)
}

// ScatterMeanInto implements FusedOps: dst[d,:] += mean of src rows with
// dstIdx d, with the sums, the 1/count multiply and the adds rounding
// exactly as scatterMeanForward followed by the AddInto sum.
func (in *Infer) ScatterMeanInto(dst, src *Tensor, dstIdx []int) {
	if len(src.Shape) != 2 || len(dstIdx) != src.Shape[0] {
		panic("nn: ScatterMeanInto shape mismatch")
	}
	cols := src.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[1] != cols {
		panic("nn: ScatterMeanInto shape mismatch")
	}
	rows := dst.Shape[0]
	sums := in.pool.GetSlice(rows * cols)
	counts := in.pool.GetSlice(rows)
	scatterMeanAddForward(dst.Data, sums, counts, src.Data, dstIdx, cols)
	in.pool.PutSlice(counts)
	in.pool.PutSlice(sums)
}

// scatterMeanAddForward is ScatterMeanInto's kernel: bucket sums land in
// the zeroed caller scratch (sums, counts), then each bucket row folds into
// agg with the same two roundings per element as the unfused pair —
// orow[j]*inv first, then the add. Empty buckets still add their +0 row:
// a -0 in agg must flush to +0 exactly as it does on the unfused chain.
func scatterMeanAddForward(agg, sums, counts, src []float64, dstIdx []int, cols int) {
	dstRows := len(counts)
	for i, d := range dstIdx {
		if d < 0 || d >= dstRows {
			panic(fmt.Sprintf("nn: ScatterMeanInto destination %d out of range [0,%d)", d, dstRows))
		}
		counts[d]++
		addInto(sums[d*cols:(d+1)*cols], src[i*cols:(i+1)*cols])
	}
	for d := 0; d < dstRows; d++ {
		orow := sums[d*cols : (d+1)*cols]
		arow := agg[d*cols : (d+1)*cols]
		if counts[d] > 1 {
			mulAddInto(arow, orow, 1/counts[d])
		} else {
			addInto(arow, orow)
		}
	}
}

func checkGatherAdd(dst, table *Tensor, indices []int) int {
	if len(table.Shape) != 2 {
		panic("nn: GatherAddInto requires a 2D table")
	}
	cols := table.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[0] != len(indices) || dst.Shape[1] != cols {
		panic(fmt.Sprintf("nn: GatherAddInto shape mismatch %v += table%v[%d ids]", dst.Shape, table.Shape, len(indices)))
	}
	return cols
}

// EnableFusion turns the fused kernels on for this Infer. Outputs remain
// bit-identical to the unfused chain; only the number of kernel launches
// and arena tensors changes.
func (in *Infer) EnableFusion() { in.fused = true }

// SetFused toggles the fused kernels (see EnableFusion).
func (in *Infer) SetFused(on bool) { in.fused = on }

// FusionEnabled implements FusedOps.
func (in *Infer) FusionEnabled() bool { return in.fused }

// Arena implements FusedOps.
func (in *Infer) Arena() *Infer { return in }

// LinearBias implements FusedOps.
func (in *Infer) LinearBias(x, w *Tensor, wt []float64, b *Tensor, relu bool) *Tensor {
	if !in.fused {
		// Unfused mirror, for callers that bypass the layer gating.
		xw := in.MatMul(x, w)
		out := in.AddRowVector(xw, b)
		in.Recycle(xw)
		if relu {
			act := in.ReLU(out)
			in.Recycle(out)
			out = act
		}
		return out
	}
	m, k, n := checkMatMul(x, w)
	if b.Size() != n {
		panic("nn: LinearBias bias size mismatch")
	}
	out := in.allocRaw(m, n)
	if kernelProfiling.Load() {
		t0 := time.Now()
		linearBiasForward(out.Data, x.Data, w.Data, wt, b.Data, m, k, n, relu)
		in.prof.fusedLinearNs += time.Since(t0).Nanoseconds()
	} else {
		linearBiasForward(out.Data, x.Data, w.Data, wt, b.Data, m, k, n, relu)
	}
	in.prof.fusedLinear++
	return out
}

// ScaledDotAttention implements FusedOps.
func (in *Infer) ScaledDotAttention(q, k, v *Tensor, scale float64) *Tensor {
	checkSameShape("ScaledDotAttention", q, k)
	checkSameShape("ScaledDotAttention", q, v)
	if len(q.Shape) != 2 {
		panic("nn: ScaledDotAttention requires 2D tensors")
	}
	m, d := q.Shape[0], q.Shape[1]
	out := in.allocRaw(m, d)
	if kernelProfiling.Load() {
		t0 := time.Now()
		scaledDotAttentionForward(out.Data, q.Data, k.Data, v.Data, m, d, scale)
		in.prof.attentionNs += time.Since(t0).Nanoseconds()
	} else {
		scaledDotAttentionForward(out.Data, q.Data, k.Data, v.Data, m, d, scale)
	}
	in.prof.fusedAttention++
	return out
}

// RaggedScaledDotAttention implements FusedOps. Segments are fully
// independent — attention never crosses a bounds entry — so the kernel
// parallelizes across segments with each output row written by exactly one
// worker, preserving the determinism contract.
func (in *Infer) RaggedScaledDotAttention(q, k, v *Tensor, bounds []int, scale float64) *Tensor {
	checkSameShape("RaggedScaledDotAttention", q, k)
	checkSameShape("RaggedScaledDotAttention", q, v)
	if len(q.Shape) != 2 {
		panic("nn: RaggedScaledDotAttention requires 2D tensors")
	}
	checkBounds("RaggedScaledDotAttention", bounds, q.Shape[0])
	out := in.allocRaw(q.Shape...)
	if kernelProfiling.Load() {
		t0 := time.Now()
		raggedAttentionForward(out.Data, q.Data, k.Data, v.Data, bounds, q.Shape[1], scale)
		in.prof.attentionNs += time.Since(t0).Nanoseconds()
	} else {
		raggedAttentionForward(out.Data, q.Data, k.Data, v.Data, bounds, q.Shape[1], scale)
	}
	in.prof.fusedAttention++
	return out
}

// RaggedMeanRows implements FusedOps.
func (in *Infer) RaggedMeanRows(x *Tensor, bounds []int) *Tensor {
	if len(x.Shape) != 2 {
		panic("nn: RaggedMeanRows requires a 2D tensor")
	}
	checkBounds("RaggedMeanRows", bounds, x.Shape[0])
	d := x.Shape[1]
	// meanRowsForward accumulates into its destination, so borrow zeroed.
	out := in.alloc(len(bounds)-1, d)
	for s := 0; s+1 < len(bounds); s++ {
		b0, b1 := bounds[s], bounds[s+1]
		if b1 == b0 {
			panic("nn: RaggedMeanRows empty segment")
		}
		meanRowsForward(out.Data[s*d:(s+1)*d], x.Data[b0*d:b1*d], b1-b0, d)
	}
	return out
}

// checkBounds validates a segment-bounds slice over `rows` rows: it must
// start at 0, end at rows and be non-decreasing.
func checkBounds(op string, bounds []int, rows int) {
	if len(bounds) < 1 || bounds[0] != 0 || bounds[len(bounds)-1] != rows {
		panic("nn: " + op + " bounds must span [0, rows]")
	}
	for s := 0; s+1 < len(bounds); s++ {
		if bounds[s] > bounds[s+1] {
			panic("nn: " + op + " bounds must be non-decreasing")
		}
	}
}

// AddLayerNorm implements FusedOps.
func (in *Infer) AddLayerNorm(x, y, gamma, beta *Tensor, eps float64) *Tensor {
	checkSameShape("AddLayerNorm", x, y)
	if len(x.Shape) != 2 || x.Shape[1] != gamma.Shape[1] {
		panic("nn: AddLayerNorm dim mismatch")
	}
	out := in.allocRaw(x.Shape...)
	if kernelProfiling.Load() {
		t0 := time.Now()
		addLayerNormForward(out.Data, x.Data, y.Data, gamma.Data, beta.Data, x.Shape[0], x.Shape[1], eps)
		in.prof.normNs += time.Since(t0).Nanoseconds()
	} else {
		addLayerNormForward(out.Data, x.Data, y.Data, gamma.Data, beta.Data, x.Shape[0], x.Shape[1], eps)
	}
	in.prof.fusedAddNorm++
	return out
}

// linearBiasForward is the fused linear kernel: out = x×w + bias (+ReLU).
// wt, when non-nil, is w already transposed ((n,k) row-major); otherwise w
// is transposed into pool scratch exactly like matmulForward. Shapes on
// matmulForward's zero-padded small-k path take the same padded multiply
// (the cached transpose cannot serve it), then the scalar epilogue — so the
// fused output stays bit-identical to the unfused chain for every shape.
func linearBiasForward(out, x, w, wt, bias []float64, m, k, n int, relu bool) {
	if m == 0 || n == 0 {
		return
	}
	if k > 0 && padKEligible(k, n) {
		matmulPadK(out, x, w, m, k, n)
		biasReluRows(out, bias, 0, m, n, relu)
		return
	}
	if wt != nil {
		matmulEpilogue(out, x, wt, m, k, n, bias, relu)
		return
	}
	if k == 0 {
		clear(out[:m*n])
		biasReluRows(out, bias, 0, m, n, relu)
		return
	}
	bt := scratch.GetSliceRaw(k * n)
	transposeForward(bt, w, k, n)
	matmulEpilogue(out, x, bt, m, k, n, bias, relu)
	scratch.PutSlice(bt)
}

// scaledDotAttentionForward computes ctx = SoftmaxRows(scale·(q×kᵀ))×v for
// row-major q, k, v of shape (m, d) into ctx (m, d). k's rows serve
// directly as the pre-transposed right operand (matmulForward would have
// reconstructed exactly this layout from kᵀ), the scale folds into the
// score rows while hot, and the softmax runs in place. Each score row is
// produced, scaled and softened by exactly one worker, preserving the
// MatMul determinism contract.
func scaledDotAttentionForward(ctx, q, k, v []float64, m, d int, scale float64) {
	if m == 0 {
		return
	}
	scores := scratch.GetSliceRaw(m * m)
	if m*d*m >= matmulParallelMin {
		parallelRows(m, 2, func(lo, hi int) {
			attentionScoreRows(scores, q, k, lo, hi, m, d, scale)
		})
	} else {
		attentionScoreRows(scores, q, k, 0, m, m, d, scale)
	}
	matmulForward(ctx, scores, v, m, m, d)
	scratch.PutSlice(scores)
}

// raggedAttentionForward runs the attention kernel independently per row
// segment. The per-segment body is fully serial (parallel jobs are leaves),
// so the kernel fans the *segments* out across the worker pool instead —
// each segment's outputs are written by exactly one worker with arithmetic
// identical to scaledDotAttentionForward's serial path.
func raggedAttentionForward(ctx, q, k, v []float64, bounds []int, d int, scale float64) {
	segs := len(bounds) - 1
	parallelRows(segs, 1, func(lo, hi int) {
		// One scratch pair per chunk, sized for its largest segment, so the
		// per-segment cost is pure kernel work with no pool round trips.
		maxM := 0
		for s := lo; s < hi; s++ {
			if m := bounds[s+1] - bounds[s]; m > maxM {
				maxM = m
			}
		}
		if maxM == 0 {
			return
		}
		maxMp := (maxM + 3) &^ 3
		scores := scratch.GetSliceRaw(maxM * maxMp)
		kp := scratch.GetSliceRaw(maxMp * d)
		vt := scratch.GetSliceRaw(d * maxMp)
		for s := lo; s < hi; s++ {
			b0, b1 := bounds[s], bounds[s+1]
			m := b1 - b0
			if m == 0 {
				continue
			}
			off, end := b0*d, b1*d
			attentionSegment(ctx[off:end], q[off:end], k[off:end], v[off:end], scores, kp, vt, m, d, scale)
		}
		scratch.PutSlice(vt)
		scratch.PutSlice(kp)
		scratch.PutSlice(scores)
	})
}

// attentionSegment is the serial one-segment attention body: score rows
// (scaled, softmaxed in place) then the weighted sum against v, mirroring
// matmulForward's dispatch and arithmetic on the same shapes exactly —
// including the zero-padded small-k path (see matmulPadK) — so its outputs
// are bit-identical to the unfused MatMul(probs, v) on the same rows.
// scores, kp and vt are caller scratch with capacity for at least m·mp,
// mp·d and d·mp elements, mp = (m+3)&^3.
func attentionSegment(ctx, q, k, v, scores, kp, vt []float64, m, d int, scale float64) {
	if padKEligible(m, d) {
		// Pad k with zero rows so the score matmul runs every column —
		// including the m%4 edge — through the packed four-column blocks.
		// Each real column's dot is the same d-element FMA sequence the
		// unpadded kernel issues (packed and scalar blocking agree bit for
		// bit), and the padded columns come out exactly +0, never meet the
		// softmax, and leave the score rows — stride mp, zero tail — as
		// precisely the left operand matmulPadK would have copied for the
		// weighted sum against v.
		mp := (m + 3) &^ 3
		copy(kp[:m*d], k)
		for p := m * d; p < mp*d; p++ {
			kp[p] = 0
		}
		matmulRows(scores, q, kp, 0, m, d, mp, nil, false)
		for i := 0; i < m; i++ {
			row := scores[i*mp : i*mp+m]
			scaleInPlace(row, scale)
			softmaxRow(row, row)
		}
		for j := 0; j < d; j++ {
			col := vt[j*mp : (j+1)*mp]
			for p := 0; p < m; p++ {
				col[p] = v[p*d+j]
			}
			for p := m; p < mp; p++ {
				col[p] = 0
			}
		}
		matmulRows(ctx, scores, vt, 0, m, mp, d, nil, false)
		return
	}
	attentionScoreRows(scores, q, k, 0, m, m, d, scale)
	transposeForward(vt, v, m, d)
	matmulRows(ctx, scores, vt, 0, m, m, d, nil, false)
}

// attentionScoreRows fills score rows [lo, hi): q×kᵀ, scaled in place, then
// softmaxed in place. A named function so the serial path allocates no
// closure.
func attentionScoreRows(scores, q, k []float64, lo, hi, m, d int, scale float64) {
	matmulRows(scores, q, k, lo, hi, d, m, nil, false)
	for i := lo; i < hi; i++ {
		row := scores[i*m : (i+1)*m]
		scaleInPlace(row, scale)
		softmaxRow(row, row)
	}
}

// addLayerNormForward computes dst = LayerNorm(x+y) row-wise with the
// learned affine, summing into dst and normalizing in place (each output
// element is read once, as v, before it is written). The statistics run
// through the same rowMean/rowVariance kernels as layerNormForward, so the
// fused output is bitwise the unfused Add → LayerNorm chain's.
func addLayerNormForward(dst, x, y, gamma, beta []float64, m, n int, eps float64) {
	for i := 0; i < m; i++ {
		dr := dst[i*n : (i+1)*n]
		add2Into(dr, x[i*n:(i+1)*n], y[i*n:(i+1)*n])
		mean := rowMean(dr)
		invStd := 1 / math.Sqrt(rowVariance(dr, mean)+eps)
		normAffineInPlace(dr, gamma, beta, mean, invStd)
	}
}
