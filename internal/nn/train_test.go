package nn

import (
	"bytes"
	"math"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

// TestAdamConvergesQuadratic checks that Adam minimizes a simple quadratic.
func TestAdamConvergesQuadratic(t *testing.T) {
	p := FromSlice([]float64{5, -3, 8}, 3).RequireGrad()
	opt := NewAdam([]*Tensor{p}, 0.1)
	for step := 0; step < 500; step++ {
		opt.ZeroGrad()
		loss := Sum(Mul(p, p))
		loss.Backward()
		opt.Step()
	}
	for i, v := range p.Data {
		if math.Abs(v) > 0.01 {
			t.Fatalf("param %d = %v after optimization, want ~0", i, v)
		}
	}
}

// TestMLPLearnsXOR verifies that the full stack (layers, autodiff, Adam)
// can fit a nonlinear function.
func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(99)
	mlp := NewMLP(r, 2, 8, 1)
	opt := NewAdam(mlp.Params(), 0.05)
	inputs := FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	targets := []float64{0, 1, 1, 0}
	var loss float64
	for step := 0; step < 2000; step++ {
		opt.ZeroGrad()
		logits := mlp.Forward(inputs)
		l := BCEWithLogits(logits, targets, nil)
		l.Backward()
		opt.Step()
		loss = l.Item()
	}
	if loss > 0.05 {
		t.Fatalf("XOR loss %v after training, want < 0.05", loss)
	}
	probs := Sigmoid(mlp.Forward(inputs))
	for i, want := range targets {
		got := probs.Data[i]
		if (want == 1 && got < 0.8) || (want == 0 && got > 0.2) {
			t.Fatalf("XOR input %d predicted %v, want %v", i, got, want)
		}
	}
}

// TestEmbeddingLearnsSeparation checks embedding gradients flow: two token
// classes must become linearly separable.
func TestEmbeddingLearnsSeparation(t *testing.T) {
	r := rng.New(7)
	emb := NewEmbedding(r, 10, 4)
	head := NewLinear(r, 4, 1)
	params := append(emb.Params(), head.Params()...)
	opt := NewAdam(params, 0.05)
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	targets := make([]float64, 10)
	for i := range targets {
		if i%2 == 0 {
			targets[i] = 1
		}
	}
	for step := 0; step < 500; step++ {
		opt.ZeroGrad()
		l := BCEWithLogits(head.Forward(emb.Forward(ids)), targets, nil)
		l.Backward()
		opt.Step()
	}
	probs := Sigmoid(head.Forward(emb.Forward(ids)))
	for i, want := range targets {
		got := probs.Data[i]
		if (want == 1) != (got > 0.5) {
			t.Fatalf("token %d: prob %v, want class %v", i, got, want)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := FromSlice([]float64{0, 0}, 2).RequireGrad()
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Tensor{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("reported norm %v, want 5", norm)
	}
	got := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("clipped norm %v, want 1", got)
	}
	// Below-threshold gradients untouched.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*Tensor{p}, 1)
	if p.Grad[0] != 0.3 || p.Grad[1] != 0.4 {
		t.Fatal("below-threshold gradients were modified")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(21)
	a := randomTensor(r, 3, 4)
	b := randomTensor(r, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, map[string]*Tensor{"a": a, "b": b}); err != nil {
		t.Fatal(err)
	}
	a2, b2 := New(3, 4), New(2)
	if err := LoadParams(&buf, map[string]*Tensor{"a": a2, "b": b2}); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatalf("a[%d] mismatch after round trip", i)
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatalf("b[%d] mismatch after round trip", i)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	r := rng.New(22)
	params := map[string]*Tensor{"w1": randomTensor(r, 2, 2), "w2": randomTensor(r, 3)}
	var b1, b2 bytes.Buffer
	if err := SaveParams(&b1, params); err != nil {
		t.Fatal(err)
	}
	if err := SaveParams(&b2, params); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two saves of the same params differ")
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	r := rng.New(23)
	var buf bytes.Buffer
	if err := SaveParams(&buf, map[string]*Tensor{"w": randomTensor(r, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	if err := LoadParams(bytes.NewReader(buf.Bytes()), map[string]*Tensor{"w": New(3, 3)}); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	// Missing parameter in checkpoint.
	if err := LoadParams(bytes.NewReader(buf.Bytes()), map[string]*Tensor{"w": New(2, 2), "extra": New(1)}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
	// Garbage header.
	if err := LoadParams(bytes.NewReader([]byte("NOTAMODEL....")), map[string]*Tensor{"w": New(2, 2)}); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	r := rng.New(2)
	mlp := NewMLP(r, 32, 64, 32, 1)
	x := randomTensor(r, 16, 32)
	targets := make([]float64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range mlp.Params() {
			p.ZeroGrad()
		}
		l := BCEWithLogits(mlp.Forward(x), targets, nil)
		l.Backward()
	}
}
