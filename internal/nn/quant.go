package nn

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Per-tensor affine int8 weight quantization for frozen checkpoints.
//
// A quantized tensor stores int8 codes plus a float64 (scale, zero-point)
// pair; the real value of code q is scale·(q−zero). Activations stay
// float64 throughout — only the big parameter tensors (linear weights,
// embedding tables) are quantized, which is where the memory and bandwidth
// live; tiny per-feature vectors (biases, layer-norm affines) are not worth
// the rounding error and stay exact.
//
// Determinism story (the part the campaign goldens care about):
//
//   - Quantization is a *pure function of the weights*: scale and zero-point
//     derive from each tensor's min/max, with round-to-nearest-even codes.
//     The same checkpoint quantizes to the same bytes on every machine.
//   - After quantizing, the float64 weight data is rewritten with the
//     dequantized values ("dequantized replay"). The unfused float64 path,
//     the fused float64 path and the live int8 kernels then all compute from
//     exactly the same weight values — scale·(q−zero) evaluated with the
//     same expression everywhere — so all three are bit-identical to each
//     other, and model outputs are reproducible per seed at any worker
//     count. Quantization changes outputs only relative to the *unquantized*
//     model, by at most Scale/2 per weight element.
type QuantTensor struct {
	Shape []int
	// Scale and Zero define the affine code map: value = Scale·(q−Zero).
	Scale float64
	Zero  int
	Data  []int8
	// dataT caches the transposed codes for 2D tensors ((cols, rows)
	// row-major), the layout the fused linear kernel consumes.
	dataT []int8
	// lut maps code+128 to its dequantized value Scale·(code−Zero), so the
	// hot kernels dequantize with one table load instead of an int→float
	// conversion and a multiply per element.
	lut [256]float64
	// deqT caches the dequantized transposed weights for 2D tensors. It is
	// elementwise identical to the float64 data ApplyDequantized writes, so
	// the fused AVX kernel can serve int8-stored linears at full float64
	// speed while staying bit-identical to the replay path. int8 remains the
	// storage, checkpoint and transport format; deqT is a serving-time cache.
	deqT []float64
	// deq caches the dequantized values in the original row-major layout,
	// so Gather serves embedding rows with a plain copy instead of a
	// per-element LUT conversion. Same serving-time tradeoff as deqT.
	deq []float64
}

// finish builds the derived caches (transposed codes, dequant LUT and the
// dequantized transpose) after Shape/Scale/Zero/Data are set. Both
// QuantizeTensor and the checkpoint decoder funnel through it.
func (q *QuantTensor) finish() {
	for c := 0; c < 256; c++ {
		q.lut[c] = q.Scale * float64(c-128-q.Zero)
	}
	if len(q.Shape) == 2 {
		rows, cols := q.Shape[0], q.Shape[1]
		q.dataT = make([]int8, rows*cols)
		q.deqT = make([]float64, rows*cols)
		q.deq = make([]float64, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				c := q.Data[i*cols+j]
				q.dataT[j*rows+i] = c
				v := q.lut[int(c)+128]
				q.deqT[j*rows+i] = v
				q.deq[i*cols+j] = v
			}
		}
	}
}

// Size returns the number of elements.
func (q *QuantTensor) Size() int { return len(q.Data) }

// Dequantize writes the real values of the codes into dst (len Size).
func (q *QuantTensor) Dequantize(dst []float64) {
	for i, c := range q.Data {
		dst[i] = q.Scale * float64(int(c)-q.Zero)
	}
}

// QuantMinSize is the minimum element count before a tensor is quantized;
// smaller tensors (biases, layer-norm affines) stay float64.
const QuantMinSize = 64

// QuantizeTensor builds the per-tensor affine int8 encoding of t. The code
// map is chosen so every finite weight round-trips within Scale/2:
// scale = (max−min)/255 with the zero-point anchored at min ↦ −128.
func QuantizeTensor(t *Tensor) *QuantTensor {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t.Data {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	q := &QuantTensor{
		Shape: append([]int(nil), t.Shape...),
		Data:  make([]int8, len(t.Data)),
	}
	switch {
	case !(lo <= hi):
		// No finite values at all; encode zeros exactly.
		q.Scale, q.Zero = 1, 0
	case lo == hi:
		// Constant tensor, represented exactly: Scale·(1−0) = lo for every
		// element (or code 0 with Scale 1 when the constant is zero).
		if lo == 0 {
			q.Scale, q.Zero = 1, 0
		} else {
			q.Scale, q.Zero = lo, 0
			for i := range q.Data {
				q.Data[i] = 1
			}
		}
	default:
		q.Scale = (hi - lo) / 255
		q.Zero = -128 - int(math.RoundToEven(lo/q.Scale))
		for i, v := range t.Data {
			c := math.RoundToEven(v/q.Scale) + float64(q.Zero)
			if c < -128 {
				c = -128
			} else if c > 127 {
				c = 127
			}
			q.Data[i] = int8(c)
		}
	}
	q.finish()
	return q
}

// MaxAbsError returns the worst |original − dequantized| over t, the
// realized quantization error (≤ Scale/2 for in-range finite weights).
func (q *QuantTensor) MaxAbsError(t *Tensor) float64 {
	var worst float64
	for i, v := range t.Data {
		if math.IsNaN(v) {
			continue
		}
		d := math.Abs(v - q.Scale*float64(int(q.Data[i])-q.Zero))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Quantized is a registry of quantized parameter tensors, keyed both by
// parameter name (for serialization) and by the live *Tensor identity (for
// kernel dispatch).
type Quantized struct {
	byName   map[string]*QuantTensor
	byTensor map[*Tensor]*QuantTensor
}

// QuantizeParams quantizes every parameter with at least minSize elements
// (pass QuantMinSize for the standard policy) and returns the registry.
func QuantizeParams(params map[string]*Tensor, minSize int) *Quantized {
	qz := &Quantized{
		byName:   map[string]*QuantTensor{},
		byTensor: map[*Tensor]*QuantTensor{},
	}
	for name, t := range params {
		if t.Size() < minSize {
			continue
		}
		q := QuantizeTensor(t)
		qz.byName[name] = q
		qz.byTensor[t] = q
	}
	return qz
}

// Of returns the quantized form of t, or nil if t is not quantized.
func (qz *Quantized) Of(t *Tensor) *QuantTensor {
	if qz == nil {
		return nil
	}
	return qz.byTensor[t]
}

// Named returns the quantized form of the named parameter, or nil.
func (qz *Quantized) Named(name string) *QuantTensor {
	if qz == nil {
		return nil
	}
	return qz.byName[name]
}

// Len reports how many tensors are quantized.
func (qz *Quantized) Len() int {
	if qz == nil {
		return 0
	}
	return len(qz.byName)
}

// Rebind re-keys the identity index onto the given parameter set. Needed
// after a load or clone replaces the live tensors the registry was built on.
func (qz *Quantized) Rebind(params map[string]*Tensor) error {
	byTensor := map[*Tensor]*QuantTensor{}
	for name, q := range qz.byName {
		t, ok := params[name]
		if !ok {
			return fmt.Errorf("nn: quantized parameter %q not in model", name)
		}
		if t.Size() != q.Size() {
			return fmt.Errorf("nn: quantized parameter %q size mismatch: %d vs %d", name, q.Size(), t.Size())
		}
		byTensor[t] = q
	}
	qz.byTensor = byTensor
	return nil
}

// ApplyDequantized rewrites every quantized parameter's float64 data with
// its dequantized values, establishing the replay invariant: float64 and
// int8 kernels compute from identical weight values.
func (qz *Quantized) ApplyDequantized(params map[string]*Tensor) error {
	if err := qz.Rebind(params); err != nil {
		return err
	}
	for name, q := range qz.byName {
		q.Dequantize(params[name].Data)
	}
	return nil
}

// QuantStats summarizes a registry for reports and logs.
type QuantStats struct {
	Tensors   int     // quantized tensor count
	Int8Bytes int     // total int8 payload
	F64Bytes  int     // float64 bytes those tensors occupied
	MaxScale  float64 // largest per-tensor scale (bounds worst-case error at Scale/2)
}

// Stats summarizes the registry.
func (qz *Quantized) Stats() QuantStats {
	var s QuantStats
	if qz == nil {
		return s
	}
	names := make([]string, 0, len(qz.byName))
	for name := range qz.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q := qz.byName[name]
		s.Tensors++
		s.Int8Bytes += q.Size()
		s.F64Bytes += 8 * q.Size()
		if q.Scale > s.MaxScale {
			s.MaxScale = q.Scale
		}
	}
	return s
}

// QuantInfer is an Infer whose fused linear and embedding-gather kernels
// read int8 weights, dequantizing inline. Under the dequantized-replay
// invariant (ApplyDequantized) its outputs are bit-identical to the float64
// paths: the inline scale·(q−zero) is the same expression, evaluated in the
// same dot-product summation order, as the rewritten float64 weights.
type QuantInfer struct {
	*Infer
	Quant *Quantized
}

// NewQuantInfer creates a fused inference context dispatching through the
// quantized registry.
func NewQuantInfer(p *Pool, qz *Quantized) *QuantInfer {
	return &QuantInfer{Infer: NewInferFused(p), Quant: qz}
}

// LinearBias implements FusedOps, routing weight matmuls with a quantized w
// through the int8 kernel.
func (qi *QuantInfer) LinearBias(x, w *Tensor, wt []float64, b *Tensor, relu bool) *Tensor {
	q := qi.Quant.Of(w)
	if q == nil || !qi.fused {
		return qi.Infer.LinearBias(x, w, wt, b, relu)
	}
	m, k, n := checkMatMul(x, w)
	if b.Size() != n {
		panic("nn: LinearBias bias size mismatch")
	}
	out := qi.allocRaw(m, n)
	if kernelProfiling.Load() {
		t0 := time.Now()
		linearBiasQForward(out.Data, x.Data, q, b.Data, m, k, n, relu)
		qi.prof.fusedLinearNs += time.Since(t0).Nanoseconds()
	} else {
		linearBiasQForward(out.Data, x.Data, q, b.Data, m, k, n, relu)
	}
	qi.prof.fusedLinear++
	qi.prof.quantKernels++
	return out
}

// Gather implements Ops, reading quantized embedding tables directly.
func (qi *QuantInfer) Gather(table *Tensor, indices []int) *Tensor {
	q := qi.Quant.Of(table)
	if q == nil {
		return qi.Infer.Gather(table, indices)
	}
	if len(table.Shape) != 2 {
		panic("nn: Gather requires a 2D table")
	}
	cols := table.Shape[1]
	out := qi.allocRaw(len(indices), cols)
	gatherQForward(out.Data, q, indices, table.Shape[0], cols)
	qi.prof.quantKernels++
	return out
}

// GatherAddInto implements FusedOps against quantized embedding tables:
// dst[i,:] += the dequantized table row — elementwise the gatherQForward
// values, summed in AddInto order.
func (qi *QuantInfer) GatherAddInto(dst, table *Tensor, indices []int) {
	q := qi.Quant.Of(table)
	if q == nil {
		qi.Infer.GatherAddInto(dst, table, indices)
		return
	}
	cols := checkGatherAdd(dst, table, indices)
	rows := table.Shape[0]
	if q.deq != nil {
		gatherAddForward(dst.Data, q.deq, indices, rows, cols)
	} else {
		for i, idx := range indices {
			if idx < 0 || idx >= rows {
				panic(fmt.Sprintf("nn: GatherAddInto index %d out of range [0,%d)", idx, rows))
			}
			row := q.Data[idx*cols : (idx+1)*cols]
			orow := dst.Data[i*cols : (i+1)*cols]
			for j, c := range row {
				orow[j] += q.lut[int(c)+128]
			}
		}
	}
	qi.prof.quantKernels++
}

// linearBiasQForward is the int8-stored fused linear kernel: out = x×W + b
// (+ReLU) with W held as codes. When the dequantized-transpose cache is
// present (always, for tensors built by QuantizeTensor or the checkpoint
// decoder) it runs the full fused AVX kernel over deqT — elementwise
// identical weights, identical summation order, so bit-identical output at
// float64 speed. Without the cache it falls back to the reference kernel
// that dequantizes inline per element.
func linearBiasQForward(out, x []float64, q *QuantTensor, bias []float64, m, k, n int, relu bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(out[:m*n])
		biasReluRows(out, bias, 0, m, n, relu)
		return
	}
	if q.deq != nil && padKEligible(k, n) {
		// Same zero-padded small-k path as the float64 kernels, over the
		// row-major dequant cache — identical weights, identical order.
		matmulPadK(out, x, q.deq, m, k, n)
		biasReluRows(out, bias, 0, m, n, relu)
		return
	}
	if q.deqT != nil {
		matmulEpilogue(out, x, q.deqT, m, k, n, bias, relu)
		return
	}
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := x[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] = dotScalarQ(arow, q.dataT[j*k:(j+1)*k], q.Scale, q.Zero, k)
			}
		}
		biasReluRows(out, bias, lo, hi, n, relu)
	}
	if m*k*n >= matmulParallelMin {
		parallelRows(m, 2, rows)
	} else {
		rows(0, m)
	}
}

// dotScalarQ mirrors dotScalar — four FMA lanes reduced (s0+s1)+(s2+s3),
// then an ascending FMA tail — with the weight dequantized inline.
// scale·(q−zero) is the exact expression ApplyDequantized wrote into the
// float64 weights, so every FMA step is bitwise the same as the float64
// kernel's.
func dotScalarQ(a []float64, b []int8, scale float64, zero, k int) float64 {
	var s0, s1, s2, s3 float64
	k4 := k &^ 3
	for p := 0; p < k4; p += 4 {
		s0 = math.FMA(a[p], scale*float64(int(b[p])-zero), s0)
		s1 = math.FMA(a[p+1], scale*float64(int(b[p+1])-zero), s1)
		s2 = math.FMA(a[p+2], scale*float64(int(b[p+2])-zero), s2)
		s3 = math.FMA(a[p+3], scale*float64(int(b[p+3])-zero), s3)
	}
	s := (s0 + s1) + (s2 + s3)
	for p := k4; p < k; p++ {
		s = math.FMA(a[p], scale*float64(int(b[p])-zero), s)
	}
	return s
}

// gatherQForward copies embedding rows out of the int8 table. With the
// row-major dequantized cache present it is a plain row copy — the cached
// values are the LUT's, so bitwise the replay weights; without it, it
// dequantizes inline with the same expression as dotScalarQ.
func gatherQForward(dst []float64, q *QuantTensor, indices []int, tableRows, cols int) {
	for i, idx := range indices {
		if idx < 0 || idx >= tableRows {
			panic(fmt.Sprintf("nn: Gather index %d out of range [0,%d)", idx, tableRows))
		}
		orow := dst[i*cols : (i+1)*cols]
		if q.deq != nil {
			copy(orow, q.deq[idx*cols:(idx+1)*cols])
			continue
		}
		row := q.Data[idx*cols : (idx+1)*cols]
		for j, c := range row {
			orow[j] = q.lut[int(c)+128]
		}
	}
}
