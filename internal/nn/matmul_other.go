//go:build !amd64

package nn

const useAVX = false

// dot24avx is never called when useAVX is false.
func dot24avx(a0, a1, b0, b1, b2, b3 *float64, k4 int, out *float64) {
	panic("nn: dot24avx without AVX support")
}
