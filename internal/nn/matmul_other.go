//go:build !amd64

package nn

const useAVX = false

// dotRows24avx is never called when useAVX is false.
func dotRows24avx(a0, a1, bt *float64, k, k4, nb int, o0, o1, bias *float64, relu int) {
	panic("nn: dotRows24avx without AVX support")
}

// The elementwise kernels are never called when useAVX is false.

func ewAddAvx(dst, a *float64, n int) { panic("nn: ewAddAvx without AVX support") }

func ewAdd2Avx(dst, x, y *float64, n int) { panic("nn: ewAdd2Avx without AVX support") }

func ewMulAddAvx(dst, a *float64, c float64, n int) { panic("nn: ewMulAddAvx without AVX support") }

func ewScaleAvx(dst *float64, c float64, n int) { panic("nn: ewScaleAvx without AVX support") }

func ewReluAvx(dst *float64, n int) { panic("nn: ewReluAvx without AVX support") }

func ewNormAvx(dst, gamma, beta *float64, mean, invStd float64, n int) {
	panic("nn: ewNormAvx without AVX support")
}
