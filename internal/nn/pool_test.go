package nn

import (
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

func TestPoolReuseAndZeroing(t *testing.T) {
	p := NewPool()
	s := p.GetSlice(100)
	if len(s) != 100 {
		t.Fatalf("GetSlice(100) len = %d", len(s))
	}
	for i := range s {
		s[i] = float64(i) + 1
	}
	p.PutSlice(s)
	s2 := p.GetSlice(100)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slice not zeroed at %d: %g", i, v)
		}
	}
	st := p.Stats()
	if st.Borrows != 2 || st.Reuses != 1 {
		t.Fatalf("stats = %+v, want 2 borrows / 1 reuse", st)
	}
}

func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	s := p.GetSlice(33) // class 64
	if cap(s) != 64 {
		t.Fatalf("cap = %d, want size class 64", cap(s))
	}
	p.PutSlice(s)
	// A smaller request in the same class must reuse the slab.
	s2 := p.GetSlice(40)
	if cap(s2) != 64 || p.Stats().Reuses != 1 {
		t.Fatalf("cross-length reuse within class failed: cap=%d stats=%+v", cap(s2), p.Stats())
	}
}

func TestPoolBoundedIdle(t *testing.T) {
	p := NewPool()
	slabs := make([][]float64, 0, maxSlabsPerClass+10)
	for i := 0; i < maxSlabsPerClass+10; i++ {
		slabs = append(slabs, p.GetSliceRaw(64))
	}
	for _, s := range slabs {
		p.PutSlice(s)
	}
	if idle := p.Stats().Idle; idle > maxSlabsPerClass {
		t.Fatalf("idle slabs %d exceed cap %d", idle, maxSlabsPerClass)
	}
}

func TestPoolRejectsForeignSlices(t *testing.T) {
	p := NewPool()
	p.PutSlice(make([]float64, 33)) // cap 33: not a power-of-two class
	p.PutSlice(make([]float64, 8))  // below minSlabClass
	if idle := p.Stats().Idle; idle != 0 {
		t.Fatalf("foreign slices entered the pool: idle=%d", idle)
	}
}

func TestBorrowRelease(t *testing.T) {
	p := NewPool()
	a := p.Borrow(4, 8)
	if a.Shape[0] != 4 || a.Shape[1] != 8 || len(a.Data) != 32 {
		t.Fatalf("borrowed tensor shape %v len %d", a.Shape, len(a.Data))
	}
	a.Data[0] = 99
	p.Release(a)
	b := p.Borrow(2, 16)
	if b.Data[0] != 0 {
		t.Fatal("borrowed tensor carries stale data")
	}
	if p.Stats().Reuses != 1 {
		t.Fatalf("stats = %+v, want one reuse", p.Stats())
	}
}

// TestInferGoldenVsTrain is the golden determinism test for the pooled
// inference path: a frozen model forwarded through Infer must be
// bit-identical to the TrainOps path, on the first pass and on later
// passes that hit warm pool memory (catching stale-slab bugs).
func TestInferGoldenVsTrain(t *testing.T) {
	r := rng.New(31)
	mlp := NewMLP(r, 16, 32, 32, 4)
	sa := NewSelfAttention(r, 16)
	for _, p := range append(mlp.Params(), sa.Params()...) {
		p.UnrequireGrad()
	}
	x := benchTensor(r, 12, 16)
	wantSA := sa.Forward(x)
	wantMLP := mlp.Forward(wantSA)

	pool := NewPool()
	for pass := 0; pass < 3; pass++ {
		in := NewInfer(pool)
		gotSA := sa.ForwardOps(in, x)
		gotMLP := mlp.ForwardOps(in, gotSA)
		for i := range wantSA.Data {
			if gotSA.Data[i] != wantSA.Data[i] {
				t.Fatalf("pass %d: attention output differs at %d", pass, i)
			}
		}
		for i := range wantMLP.Data {
			if gotMLP.Data[i] != wantMLP.Data[i] {
				t.Fatalf("pass %d: mlp output differs at %d", pass, i)
			}
		}
		in.Close()
	}
}

// TestInferKeepDetachesFromArena checks that a kept tensor survives Close
// and its memory is not handed back to the pool.
func TestInferKeepDetachesFromArena(t *testing.T) {
	pool := NewPool()
	in := NewInfer(pool)
	a := in.Zeros(4, 4)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	in.Keep(a)
	in.Close()
	b := NewInfer(pool).Zeros(4, 4)
	for i := range a.Data {
		if a.Data[i] != float64(i) {
			t.Fatalf("kept tensor clobbered at %d", i)
		}
		_ = b
	}
}

// TestInferRecycleReuse verifies that Recycle returns memory mid-forward so
// a chain of same-shaped ops runs in O(1) slabs: the per-Infer cache absorbs
// the churn without shared-pool round trips, and Close hands the slabs back
// so the next pass reuses them.
func TestInferRecycleReuse(t *testing.T) {
	pool := NewPool()
	in := NewInfer(pool)
	a := in.Zeros(8, 8)
	for i := 0; i < 10; i++ {
		b := in.ReLU(a)
		in.Recycle(a)
		a = b
	}
	in.Close()
	st := pool.Stats()
	if st.Borrows > 3 {
		t.Fatalf("chain of 11 same-shaped tensors took %d pool borrows, want ≤3 (the local cache should absorb the churn)", st.Borrows)
	}
	in2 := NewInfer(pool)
	in2.Recycle(in2.Zeros(8, 8))
	in2.Close()
	if st2 := pool.Stats(); st2.Reuses == 0 {
		t.Fatalf("second pass did not reuse the drained slabs: %+v", st2)
	}
}
