package nn

import "sync"

// The package worker pool: a fixed set of persistent goroutines that
// execute row-range jobs for data-parallel kernels (currently MatMul).
// Parallelism never changes results — a job computes a disjoint row range
// and every output element has exactly one writer whose arithmetic does not
// depend on the partition — so SetWorkers is purely a throughput knob.

// rowJob is one contiguous row range of a parallel kernel invocation.
type rowJob struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

var workerPool struct {
	// mu is read-locked for the whole of a parallelRows dispatch so
	// SetWorkers cannot close the job channel mid-send.
	mu   sync.RWMutex
	n    int
	jobs chan rowJob
}

func init() { workerPool.n = 1 }

// SetWorkers resizes the worker pool to n goroutines (the caller of a
// parallel kernel counts as one, so n-1 are spawned). n < 1 is treated as
// 1, which disables the pool and runs every kernel on the calling
// goroutine. Safe to call concurrently with running kernels; results are
// identical for every n.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	if n == workerPool.n {
		return
	}
	if workerPool.jobs != nil {
		close(workerPool.jobs)
		workerPool.jobs = nil
	}
	workerPool.n = n
	if n > 1 {
		jobs := make(chan rowJob, 4*n)
		workerPool.jobs = jobs
		for i := 0; i < n-1; i++ {
			go func() {
				for j := range jobs {
					j.fn(j.lo, j.hi)
					j.wg.Done()
				}
			}()
		}
	}
}

// Workers returns the configured worker count.
func Workers() int {
	workerPool.mu.RLock()
	defer workerPool.mu.RUnlock()
	return workerPool.n
}

// parallelRows partitions [0, rows) into contiguous chunks aligned to
// `align` rows (so register-blocked kernels keep their blocking at chunk
// boundaries) and runs fn over each chunk — on the pool when it has more
// than one worker, otherwise inline. fn must write only rows in its range;
// it must not invoke parallel kernels itself (jobs are leaves).
func parallelRows(rows, align int, fn func(lo, hi int)) {
	if align < 1 {
		align = 1
	}
	workerPool.mu.RLock()
	defer workerPool.mu.RUnlock()
	n, jobs := workerPool.n, workerPool.jobs
	if n <= 1 || jobs == nil || rows <= align {
		fn(0, rows)
		return
	}
	chunks := n
	if max := (rows + align - 1) / align; chunks > max {
		chunks = max
	}
	per := (rows + chunks - 1) / chunks
	per = (per + align - 1) / align * align
	var wg sync.WaitGroup
	// Hand all but the first chunk to the pool, run the first here: the
	// caller is one of the n workers.
	for lo := per; lo < rows; lo += per {
		hi := lo + per
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		jobs <- rowJob{lo: lo, hi: hi, fn: fn, wg: &wg}
	}
	first := per
	if first > rows {
		first = rows
	}
	fn(0, first)
	wg.Wait()
}
