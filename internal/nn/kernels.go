package nn

import (
	"fmt"
	"math"
)

// Forward kernels over raw slices, shared verbatim by the training ops
// (ops.go, layers.go) and the pooled inference ops (infer.go). One
// implementation per operation is what keeps the two paths bit-identical:
// the only difference between training and inference is where the output
// memory comes from and whether a backward closure is attached.

func addForward(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func mulForward(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

func scaleForward(dst, a []float64, c float64) {
	for i := range dst {
		dst[i] = a[i] * c
	}
}

func reluForward(dst, a []float64) {
	for i, v := range a {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func addRowVectorForward(dst, a, v []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = row[j] + v[j]
		}
	}
}

func softmaxRowsForward(dst, a []float64, m, n int) {
	for i := 0; i < m; i++ {
		softmaxRow(dst[i*n:(i+1)*n], a[i*n:(i+1)*n])
	}
}

// expApprox constants: k = round(x·log2e) via the 1.5·2^52 shift trick,
// r = x - k·ln2 in two exactly-representable pieces, then a degree-10
// Taylor polynomial on |r| ≤ ln2/2 (next term ≈ 2e-13 relative — far below
// the int8 quantization error budget) and an exact 2^k exponent-bit scale.
const (
	expLog2E = 1.44269504088896338700e+00
	expLn2Hi = 6.93147180369123816490e-01
	expLn2Lo = 1.90821492927058770002e-10
	expShift = 6755399441055744.0 // 1.5 * 2^52
)

// expApprox computes exp(x) for the softmax kernel: x = v - max(row) is
// finite and ≤ 0. Every step is an exactly-rounded IEEE operation (mul,
// add, math.FMA) or pure bit manipulation, so unlike math.Exp — which has
// per-architecture assembly — the result is bit-identical on every
// platform and every Go release.
func expApprox(x float64) float64 {
	if x < -708 {
		// Clamp at the subnormal cliff so the exponent-bit scale below
		// stays in normal range; exp(-708) ≈ 3e-308 is zero for softmax
		// purposes either way.
		x = -708
	}
	kf := math.FMA(x, expLog2E, expShift) - expShift
	r := math.FMA(kf, -expLn2Hi, x)
	r = math.FMA(kf, -expLn2Lo, r)
	p := 1.0 / 3628800
	p = math.FMA(p, r, 1.0/362880)
	p = math.FMA(p, r, 1.0/40320)
	p = math.FMA(p, r, 1.0/5040)
	p = math.FMA(p, r, 1.0/720)
	p = math.FMA(p, r, 1.0/120)
	p = math.FMA(p, r, 1.0/24)
	p = math.FMA(p, r, 1.0/6)
	p = math.FMA(p, r, 0.5)
	p = math.FMA(p, r, 1)
	p = math.FMA(p, r, 1)
	// x ≥ -708 keeps k ≥ -1022, so the biased exponent stays positive and
	// 2^k is a normal float; the final multiply handles gradual underflow.
	return p * math.Float64frombits(uint64(int64(1023)+int64(kf))<<52)
}

// exp4 evaluates expApprox on four independent inputs with the four Horner
// chains interleaved. Each lane performs exactly expApprox's operation
// sequence — same clamp, same reduction, same polynomial — so
// exp4(a,b,c,d) ≡ (expApprox(a), …, expApprox(d)) bit for bit; the
// interleave only lets the four serial FMA chains overlap in the pipeline.
func exp4(x0, x1, x2, x3 float64) (float64, float64, float64, float64) {
	if x0 < -708 {
		x0 = -708
	}
	if x1 < -708 {
		x1 = -708
	}
	if x2 < -708 {
		x2 = -708
	}
	if x3 < -708 {
		x3 = -708
	}
	k0 := math.FMA(x0, expLog2E, expShift) - expShift
	k1 := math.FMA(x1, expLog2E, expShift) - expShift
	k2 := math.FMA(x2, expLog2E, expShift) - expShift
	k3 := math.FMA(x3, expLog2E, expShift) - expShift
	r0 := math.FMA(k0, -expLn2Hi, x0)
	r1 := math.FMA(k1, -expLn2Hi, x1)
	r2 := math.FMA(k2, -expLn2Hi, x2)
	r3 := math.FMA(k3, -expLn2Hi, x3)
	r0 = math.FMA(k0, -expLn2Lo, r0)
	r1 = math.FMA(k1, -expLn2Lo, r1)
	r2 = math.FMA(k2, -expLn2Lo, r2)
	r3 = math.FMA(k3, -expLn2Lo, r3)
	const c10 = 1.0 / 3628800
	p0, p1, p2, p3 := c10, c10, c10, c10
	p0 = math.FMA(p0, r0, 1.0/362880)
	p1 = math.FMA(p1, r1, 1.0/362880)
	p2 = math.FMA(p2, r2, 1.0/362880)
	p3 = math.FMA(p3, r3, 1.0/362880)
	p0 = math.FMA(p0, r0, 1.0/40320)
	p1 = math.FMA(p1, r1, 1.0/40320)
	p2 = math.FMA(p2, r2, 1.0/40320)
	p3 = math.FMA(p3, r3, 1.0/40320)
	p0 = math.FMA(p0, r0, 1.0/5040)
	p1 = math.FMA(p1, r1, 1.0/5040)
	p2 = math.FMA(p2, r2, 1.0/5040)
	p3 = math.FMA(p3, r3, 1.0/5040)
	p0 = math.FMA(p0, r0, 1.0/720)
	p1 = math.FMA(p1, r1, 1.0/720)
	p2 = math.FMA(p2, r2, 1.0/720)
	p3 = math.FMA(p3, r3, 1.0/720)
	p0 = math.FMA(p0, r0, 1.0/120)
	p1 = math.FMA(p1, r1, 1.0/120)
	p2 = math.FMA(p2, r2, 1.0/120)
	p3 = math.FMA(p3, r3, 1.0/120)
	p0 = math.FMA(p0, r0, 1.0/24)
	p1 = math.FMA(p1, r1, 1.0/24)
	p2 = math.FMA(p2, r2, 1.0/24)
	p3 = math.FMA(p3, r3, 1.0/24)
	p0 = math.FMA(p0, r0, 1.0/6)
	p1 = math.FMA(p1, r1, 1.0/6)
	p2 = math.FMA(p2, r2, 1.0/6)
	p3 = math.FMA(p3, r3, 1.0/6)
	p0 = math.FMA(p0, r0, 0.5)
	p1 = math.FMA(p1, r1, 0.5)
	p2 = math.FMA(p2, r2, 0.5)
	p3 = math.FMA(p3, r3, 0.5)
	p0 = math.FMA(p0, r0, 1)
	p1 = math.FMA(p1, r1, 1)
	p2 = math.FMA(p2, r2, 1)
	p3 = math.FMA(p3, r3, 1)
	p0 = math.FMA(p0, r0, 1)
	p1 = math.FMA(p1, r1, 1)
	p2 = math.FMA(p2, r2, 1)
	p3 = math.FMA(p3, r3, 1)
	p0 *= math.Float64frombits(uint64(int64(1023)+int64(k0)) << 52)
	p1 *= math.Float64frombits(uint64(int64(1023)+int64(k1)) << 52)
	p2 *= math.Float64frombits(uint64(int64(1023)+int64(k2)) << 52)
	p3 *= math.Float64frombits(uint64(int64(1023)+int64(k3)) << 52)
	return p0, p1, p2, p3
}

// softmaxRow is the per-row softmax kernel. It is alias-safe (orow may be
// row), which is what lets the fused attention kernel soften its score
// matrix in place.
func softmaxRow(orow, row []float64) {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	// Four elements at a time through exp4 (lane results are bitwise
	// expApprox's), summed one by one in ascending order — the exact
	// accumulation sequence of the plain per-element loop.
	var sum float64
	j := 0
	for ; j+4 <= len(row); j += 4 {
		e0, e1, e2, e3 := exp4(row[j]-maxv, row[j+1]-maxv, row[j+2]-maxv, row[j+3]-maxv)
		orow[j], orow[j+1], orow[j+2], orow[j+3] = e0, e1, e2, e3
		sum += e0
		sum += e1
		sum += e2
		sum += e3
	}
	for ; j < len(row); j++ {
		e := expApprox(row[j] - maxv)
		orow[j] = e
		sum += e
	}
	// One division, then a multiply per element. Every consumer of softmax
	// (training, unfused and fused inference) funnels through this kernel,
	// so the normalization is bitwise consistent across all paths.
	scaleInPlace(orow, 1/sum)
}

// transposeForward writes the transpose of the m×n src into the n×m dst.
func transposeForward(dst, src []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := src[i*n : (i+1)*n]
		for j, v := range row {
			dst[j*m+i] = v
		}
	}
}

func meanRowsForward(dst, a []float64, m, n int) {
	if m == 0 {
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
	inv := 1 / float64(m)
	for j := range dst {
		dst[j] *= inv
	}
}

// gatherAddForward accumulates table rows into dst: dst[i,:] += table[idx,:],
// the gatherForward copy and the AddInto sum in one pass.
func gatherAddForward(dst, table []float64, indices []int, tableRows, cols int) {
	for i, idx := range indices {
		if idx < 0 || idx >= tableRows {
			panic(fmt.Sprintf("nn: GatherAddInto index %d out of range [0,%d)", idx, tableRows))
		}
		addInto(dst[i*cols:(i+1)*cols], table[idx*cols:(idx+1)*cols])
	}
}

func gatherForward(dst, table []float64, indices []int, tableRows, cols int) {
	for i, idx := range indices {
		if idx < 0 || idx >= tableRows {
			panic(fmt.Sprintf("nn: Gather index %d out of range [0,%d)", idx, tableRows))
		}
		copy(dst[i*cols:(i+1)*cols], table[idx*cols:(idx+1)*cols])
	}
}

// scatterMeanForward aggregates src rows into dst buckets and records the
// per-bucket counts (len(counts) buckets; counts must be zeroed — training
// keeps it for the backward pass).
func scatterMeanForward(dst, counts, src []float64, dstIdx []int, cols int) {
	dstRows := len(counts)
	for i, d := range dstIdx {
		if d < 0 || d >= dstRows {
			panic(fmt.Sprintf("nn: ScatterMean destination %d out of range [0,%d)", d, dstRows))
		}
		counts[d]++
		srow := src[i*cols : (i+1)*cols]
		orow := dst[d*cols : (d+1)*cols]
		for j := range srow {
			orow[j] += srow[j]
		}
	}
	for d := 0; d < dstRows; d++ {
		if counts[d] > 1 {
			orow := dst[d*cols : (d+1)*cols]
			inv := 1 / counts[d]
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
}

func concatForward(dst []float64, ts []*Tensor, rows, cols int) {
	off := 0
	for _, t := range ts {
		c := t.Shape[1]
		for i := 0; i < rows; i++ {
			copy(dst[i*cols+off:i*cols+off+c], t.Data[i*c:(i+1)*c])
		}
		off += c
	}
}

func concatRowsForward(dst []float64, ts []*Tensor) {
	off := 0
	for _, t := range ts {
		copy(dst[off:off+len(t.Data)], t.Data)
		off += len(t.Data)
	}
}

func repeatEachRowForward(dst, src []float64, m, n, times int) {
	for i := 0; i < m; i++ {
		row := src[i*n : (i+1)*n]
		for r := 0; r < times; r++ {
			copy(dst[(i*times+r)*n:(i*times+r+1)*n], row)
		}
	}
}

func tileRowsForward(dst, src []float64, m, n, times int) {
	for r := 0; r < times; r++ {
		copy(dst[r*m*n:(r+1)*m*n], src)
	}
}

// maxPerGroupForward reduces groups of `per` consecutive values to their
// maximum; argmax (len groups) records the winning indices when non-nil.
func maxPerGroupForward(dst []float64, argmax []int, a []float64, groups, per int) {
	for g := 0; g < groups; g++ {
		best := g * per
		for i := g*per + 1; i < (g+1)*per; i++ {
			if a[i] > a[best] {
				best = i
			}
		}
		if argmax != nil {
			argmax[g] = best
		}
		dst[g] = a[best]
	}
}

// rowMean and rowVariance are the per-row statistics kernels shared by
// layerNormForward and the fused addLayerNormForward — one implementation
// is what keeps the two bit-identical. Both use the matmul lane discipline:
// four interleaved accumulators over the len&^3 prefix, reduced
// (l0+l1)+(l2+l3), then an ascending tail (with math.FMA for the squared
// deviations, one rounding per step, matching dotScalar's arithmetic).

func rowMean(row []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(row) &^ 3
	for p := 0; p < n4; p += 4 {
		s0 += row[p]
		s1 += row[p+1]
		s2 += row[p+2]
		s3 += row[p+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for p := n4; p < len(row); p++ {
		s += row[p]
	}
	return s / float64(len(row))
}

func rowVariance(row []float64, mean float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(row) &^ 3
	for p := 0; p < n4; p += 4 {
		d0 := row[p] - mean
		d1 := row[p+1] - mean
		d2 := row[p+2] - mean
		d3 := row[p+3] - mean
		s0 = math.FMA(d0, d0, s0)
		s1 = math.FMA(d1, d1, s1)
		s2 = math.FMA(d2, d2, s2)
		s3 = math.FMA(d3, d3, s3)
	}
	s := (s0 + s1) + (s2 + s3)
	for p := n4; p < len(row); p++ {
		d := row[p] - mean
		s = math.FMA(d, d, s)
	}
	return s / float64(len(row))
}

// layerNormForward normalizes each row of the m×n x and applies the learned
// affine (gamma, beta). means and invStds (len m) record the per-row
// statistics when non-nil — training keeps them for the backward pass.
func layerNormForward(dst, x, gamma, beta []float64, m, n int, eps float64, means, invStds []float64) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		mean := rowMean(row)
		invStd := 1 / math.Sqrt(rowVariance(row, mean)+eps)
		if means != nil {
			means[i], invStds[i] = mean, invStd
		}
		for j, v := range row {
			dst[i*n+j] = (v-mean)*invStd*gamma[j] + beta[j]
		}
	}
}

// Shape checks shared by the training and inference front ends.

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

func checkSameShape(op string, a, b *Tensor) {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("nn: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

func checkRowVector(a, v *Tensor) (m, n int) {
	n = a.Shape[len(a.Shape)-1]
	if len(a.Shape) != 2 || v.Size() != n {
		panic(fmt.Sprintf("nn: AddRowVector shape mismatch %v + %v", a.Shape, v.Shape))
	}
	return a.Shape[0], n
}

func checkConcat(ts []*Tensor) (rows, cols int) {
	if len(ts) == 0 {
		panic("nn: Concat of nothing")
	}
	rows = ts[0].Shape[0]
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[0] != rows {
			panic("nn: Concat requires 2D tensors with equal row counts")
		}
		cols += t.Shape[1]
	}
	return rows, cols
}

func checkConcatRows(ts []*Tensor) (rows, cols int) {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	cols = ts[0].Shape[1]
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[1] != cols {
			panic("nn: ConcatRows requires 2D tensors with equal column counts")
		}
		rows += t.Shape[0]
	}
	return rows, cols
}

func checkMaxPerGroup(a *Tensor, groups, per int) {
	if len(a.Shape) != 2 || a.Shape[1] != 1 || a.Shape[0] != groups*per {
		panic(fmt.Sprintf("nn: MaxPerGroup shape %v incompatible with %d groups of %d", a.Shape, groups, per))
	}
}
