package nn

import (
	"fmt"
	"math"
)

// Forward kernels over raw slices, shared verbatim by the training ops
// (ops.go, layers.go) and the pooled inference ops (infer.go). One
// implementation per operation is what keeps the two paths bit-identical:
// the only difference between training and inference is where the output
// memory comes from and whether a backward closure is attached.

func addForward(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func mulForward(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

func scaleForward(dst, a []float64, c float64) {
	for i := range dst {
		dst[i] = a[i] * c
	}
}

func reluForward(dst, a []float64) {
	for i, v := range a {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func addRowVectorForward(dst, a, v []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = row[j] + v[j]
		}
	}
}

func softmaxRowsForward(dst, a []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		orow := dst[i*n : (i+1)*n]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
}

// transposeForward writes the transpose of the m×n src into the n×m dst.
func transposeForward(dst, src []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := src[i*n : (i+1)*n]
		for j, v := range row {
			dst[j*m+i] = v
		}
	}
}

func meanRowsForward(dst, a []float64, m, n int) {
	if m == 0 {
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
	inv := 1 / float64(m)
	for j := range dst {
		dst[j] *= inv
	}
}

func gatherForward(dst, table []float64, indices []int, tableRows, cols int) {
	for i, idx := range indices {
		if idx < 0 || idx >= tableRows {
			panic(fmt.Sprintf("nn: Gather index %d out of range [0,%d)", idx, tableRows))
		}
		copy(dst[i*cols:(i+1)*cols], table[idx*cols:(idx+1)*cols])
	}
}

// scatterMeanForward aggregates src rows into dst buckets and records the
// per-bucket counts (len(counts) buckets; counts must be zeroed — training
// keeps it for the backward pass).
func scatterMeanForward(dst, counts, src []float64, dstIdx []int, cols int) {
	dstRows := len(counts)
	for i, d := range dstIdx {
		if d < 0 || d >= dstRows {
			panic(fmt.Sprintf("nn: ScatterMean destination %d out of range [0,%d)", d, dstRows))
		}
		counts[d]++
		srow := src[i*cols : (i+1)*cols]
		orow := dst[d*cols : (d+1)*cols]
		for j := range srow {
			orow[j] += srow[j]
		}
	}
	for d := 0; d < dstRows; d++ {
		if counts[d] > 1 {
			orow := dst[d*cols : (d+1)*cols]
			inv := 1 / counts[d]
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
}

func concatForward(dst []float64, ts []*Tensor, rows, cols int) {
	off := 0
	for _, t := range ts {
		c := t.Shape[1]
		for i := 0; i < rows; i++ {
			copy(dst[i*cols+off:i*cols+off+c], t.Data[i*c:(i+1)*c])
		}
		off += c
	}
}

func concatRowsForward(dst []float64, ts []*Tensor) {
	off := 0
	for _, t := range ts {
		copy(dst[off:off+len(t.Data)], t.Data)
		off += len(t.Data)
	}
}

func repeatEachRowForward(dst, src []float64, m, n, times int) {
	for i := 0; i < m; i++ {
		row := src[i*n : (i+1)*n]
		for r := 0; r < times; r++ {
			copy(dst[(i*times+r)*n:(i*times+r+1)*n], row)
		}
	}
}

func tileRowsForward(dst, src []float64, m, n, times int) {
	for r := 0; r < times; r++ {
		copy(dst[r*m*n:(r+1)*m*n], src)
	}
}

// maxPerGroupForward reduces groups of `per` consecutive values to their
// maximum; argmax (len groups) records the winning indices when non-nil.
func maxPerGroupForward(dst []float64, argmax []int, a []float64, groups, per int) {
	for g := 0; g < groups; g++ {
		best := g * per
		for i := g*per + 1; i < (g+1)*per; i++ {
			if a[i] > a[best] {
				best = i
			}
		}
		if argmax != nil {
			argmax[g] = best
		}
		dst[g] = a[best]
	}
}

// layerNormForward normalizes each row of the m×n x and applies the learned
// affine (gamma, beta). means and invStds (len m) record the per-row
// statistics when non-nil — training keeps them for the backward pass.
func layerNormForward(dst, x, gamma, beta []float64, m, n int, eps float64, means, invStds []float64) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		var variance float64
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(n)
		invStd := 1 / math.Sqrt(variance+eps)
		if means != nil {
			means[i], invStds[i] = mean, invStd
		}
		for j, v := range row {
			dst[i*n+j] = (v-mean)*invStd*gamma[j] + beta[j]
		}
	}
}

// Shape checks shared by the training and inference front ends.

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

func checkSameShape(op string, a, b *Tensor) {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("nn: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

func checkRowVector(a, v *Tensor) (m, n int) {
	n = a.Shape[len(a.Shape)-1]
	if len(a.Shape) != 2 || v.Size() != n {
		panic(fmt.Sprintf("nn: AddRowVector shape mismatch %v + %v", a.Shape, v.Shape))
	}
	return a.Shape[0], n
}

func checkConcat(ts []*Tensor) (rows, cols int) {
	if len(ts) == 0 {
		panic("nn: Concat of nothing")
	}
	rows = ts[0].Shape[0]
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[0] != rows {
			panic("nn: Concat requires 2D tensors with equal row counts")
		}
		cols += t.Shape[1]
	}
	return rows, cols
}

func checkConcatRows(ts []*Tensor) (rows, cols int) {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	cols = ts[0].Shape[1]
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[1] != cols {
			panic("nn: ConcatRows requires 2D tensors with equal column counts")
		}
		rows += t.Shape[0]
	}
	return rows, cols
}

func checkMaxPerGroup(a *Tensor, groups, per int) {
	if len(a.Shape) != 2 || a.Shape[1] != 1 || a.Shape[0] != groups*per {
		panic(fmt.Sprintf("nn: MaxPerGroup shape %v incompatible with %d groups of %d", a.Shape, groups, per))
	}
}
