package nn

// This file is the MatMul forward kernel shared by the training and
// inference paths: a cache-aware blocked multiply over a transposed copy of
// B, vectorized with AVX where available and parallelized across output-row
// blocks by the package worker pool (parallel.go).
//
// Determinism contract: every output element out[i,j] is the dot product
// a[i,:]·b[:,j] evaluated with a fixed summation order — four interleaved
// lanes reduced as (l0+l1)+(l2+l3), then an ascending scalar tail for the
// k%4 remainder. The assembly kernel (dot24avx) and the scalar mirror
// (dotScalar) implement exactly this order, and each element is written by
// exactly one worker, so results are bit-identical regardless of CPU
// features, worker count, or how rows are partitioned.

// matmulParallelMin is the minimum multiply-add count before matmulForward
// fans out to the worker pool; below it the dispatch overhead dominates.
const matmulParallelMin = 16 * 1024

// matmulForward computes out = a×b for row-major a (m×k), b (k×n) into the
// zeroed out (m×n). It is the only MatMul forward implementation; MatMul,
// Infer.MatMul and the benchmarks all funnel through it.
func matmulForward(out, a, b []float64, m, k, n int) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(out[:m*n])
		return
	}
	// Transposed copy of B: the inner loops then run down contiguous
	// columns, which is what both the AVX kernel and the cache want.
	bt := scratch.GetSliceRaw(k * n)
	transposeForward(bt, b, k, n)
	if m*k*n >= matmulParallelMin {
		parallelRows(m, 2, func(lo, hi int) {
			matmulRows(out, a, bt, lo, hi, k, n)
		})
	} else {
		matmulRows(out, a, bt, 0, m, k, n)
	}
	scratch.PutSlice(bt)
}

// matmulRows computes output rows [lo, hi) against the transposed bt
// (n×k). Rows are processed in pairs of 2 and columns in blocks of 4 (the
// register blocking of dot24avx); edge rows and columns fall back to
// dotScalar, which produces bit-identical values.
func matmulRows(out, a, bt []float64, lo, hi, k, n int) {
	k4 := k &^ 3
	i := lo
	if useAVX && k4 > 0 {
		var res [8]float64
		for ; i+1 < hi; i += 2 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			o0 := out[i*n : (i+1)*n]
			o1 := out[(i+1)*n : (i+2)*n]
			j := 0
			for ; j+3 < n; j += 4 {
				dot24avx(&a0[0], &a1[0],
					&bt[j*k], &bt[(j+1)*k], &bt[(j+2)*k], &bt[(j+3)*k],
					k4, &res[0])
				if k4 < k {
					// Ascending scalar tail, after the lane reduce —
					// the same order dotScalar uses.
					for c := 0; c < 4; c++ {
						col := bt[(j+c)*k : (j+c+1)*k]
						s0, s1 := res[c], res[4+c]
						for p := k4; p < k; p++ {
							s0 += a0[p] * col[p]
							s1 += a1[p] * col[p]
						}
						res[c], res[4+c] = s0, s1
					}
				}
				o0[j], o0[j+1], o0[j+2], o0[j+3] = res[0], res[1], res[2], res[3]
				o1[j], o1[j+1], o1[j+2], o1[j+3] = res[4], res[5], res[6], res[7]
			}
			for ; j < n; j++ {
				col := bt[j*k : (j+1)*k]
				o0[j] = dotScalar(a0, col, k)
				o1[j] = dotScalar(a1, col, k)
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dotScalar(arow, bt[j*k:(j+1)*k], k)
		}
	}
}

// dotScalar mirrors dot24avx element for element: four independent lanes
// over the k&^3 prefix, reduced as (s0+s1)+(s2+s3), then an ascending tail.
func dotScalar(a, b []float64, k int) float64 {
	var s0, s1, s2, s3 float64
	k4 := k &^ 3
	for p := 0; p < k4; p += 4 {
		s0 += a[p] * b[p]
		s1 += a[p+1] * b[p+1]
		s2 += a[p+2] * b[p+2]
		s3 += a[p+3] * b[p+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for p := k4; p < k; p++ {
		s += a[p] * b[p]
	}
	return s
}
