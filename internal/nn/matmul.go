package nn

import "math"

// This file is the MatMul forward kernel shared by the training and
// inference paths: a cache-aware blocked multiply over a transposed copy of
// B, vectorized with AVX+FMA where available and parallelized across
// output-row blocks by the package worker pool (parallel.go).
//
// Determinism contract: every output element out[i,j] is the dot product
// a[i,:]·b[:,j] evaluated with a fixed order — four interleaved lanes, each
// accumulated with fused multiply-add (one rounding per step, the IEEE 754
// fusedMultiplyAdd that math.FMA guarantees on every platform), reduced as
// (l0+l1)+(l2+l3), then an ascending FMA tail for the k%4 remainder. The
// assembly kernel (dotRows24avx, VFMADD231PD) and the scalar mirror
// (dotScalar, math.FMA) implement exactly this order, and each element is
// written by exactly one worker, so results are bit-identical regardless of
// CPU features, worker count, or how rows are partitioned.

// matmulParallelMin is the minimum multiply-add count before matmulForward
// fans out to the worker pool; below it the dispatch overhead dominates.
const matmulParallelMin = 16 * 1024

// padMatmulMaxK bounds the inner dimension below which matmulForward takes
// the zero-padded AVX path instead of the scalar-tail path. Small odd k —
// the attention weighted sums, whose k is a ragged segment length —
// otherwise spend most of their time in the scalar tail loops.
const padMatmulMaxK = 32

// matmulForward computes out = a×b for row-major a (m×k), b (k×n) into the
// zeroed out (m×n). It is the only MatMul forward implementation; MatMul,
// Infer.MatMul and the benchmarks all funnel through it.
func matmulForward(out, a, b []float64, m, k, n int) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(out[:m*n])
		return
	}
	if padKEligible(k, n) {
		matmulPadK(out, a, b, m, k, n)
		return
	}
	// Transposed copy of B: the inner loops then run down contiguous
	// columns, which is what both the AVX kernel and the cache want.
	bt := scratch.GetSliceRaw(k * n)
	transposeForward(bt, b, k, n)
	matmulEpilogue(out, a, bt, m, k, n, nil, false)
	scratch.PutSlice(bt)
}

// padKEligible reports whether a multiply with the given inner and output
// dimensions takes the zero-padded path. Deliberately independent of CPU
// features: the scalar fallback pads identically (dotScalar over padded
// operands computes exactly the AVX lanes over padded operands), keeping
// outputs bit-identical across architectures.
func padKEligible(k, n int) bool {
	return k&3 != 0 && k <= padMatmulMaxK && n >= 4
}

// matmulPadK copies both operands into scratch with the inner dimension
// zero-padded to a multiple of four and runs the matmul kernel with no
// scalar tail. The padded steps compute FMA(0, 0, lane) = lane bit-exactly:
// a lane accumulator can never be -0 (it starts at +0, and a
// round-to-nearest sum is -0 only when both operands are -0), so zero
// products change nothing. The former k%4 tail elements join the four FMA
// lanes instead of the ascending scalar tail — a different (but fixed)
// summation order, chosen deterministically from the shapes alone, and
// mirrored exactly by the fused kernels (linearBiasForward,
// attentionSegment), so every path through a given matmul shape produces
// identical bits on every machine.
func matmulPadK(out, a, b []float64, m, k, n int) {
	kp := (k + 3) &^ 3
	ap := scratch.GetSliceRaw(m * kp)
	for i := 0; i < m; i++ {
		copy(ap[i*kp:i*kp+k], a[i*k:(i+1)*k])
		for p := i*kp + k; p < (i+1)*kp; p++ {
			ap[p] = 0
		}
	}
	bt := scratch.GetSliceRaw(n * kp)
	for j := 0; j < n; j++ {
		col := bt[j*kp : (j+1)*kp]
		for p := 0; p < k; p++ {
			col[p] = b[p*n+j]
		}
		for p := k; p < kp; p++ {
			col[p] = 0
		}
	}
	matmulRows(out, ap, bt, 0, m, kp, n, nil, false)
	scratch.PutSlice(bt)
	scratch.PutSlice(ap)
}

// matmulEpilogue computes out = a×B against the pre-transposed bt (n×k),
// with an optional fused epilogue: bias (len n) added to every output row
// and/or ReLU clamping, applied per row block by the worker that wrote it.
// The epilogue mirrors addRowVectorForward and reluForward element for
// element, so a fused linear+bias+ReLU is bit-identical to the unfused
// MatMul→AddRowVector→ReLU chain.
func matmulEpilogue(out, a, bt []float64, m, k, n int, bias []float64, relu bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(out[:m*n])
		biasReluRows(out, bias, 0, m, n, relu)
		return
	}
	if m*k*n >= matmulParallelMin {
		parallelRows(m, 2, func(lo, hi int) {
			matmulRows(out, a, bt, lo, hi, k, n, bias, relu)
		})
	} else {
		matmulRows(out, a, bt, 0, m, k, n, bias, relu)
	}
}

// biasReluRows applies the fused epilogue to output rows [lo, hi): bias add
// (exactly addRowVectorForward's a[j]+v[j]) then ReLU (exactly reluForward's
// v>0 test — NaN and -0 clamp to +0 on both paths).
func biasReluRows(out, bias []float64, lo, hi, n int, relu bool) {
	if bias == nil && !relu {
		return
	}
	for i := lo; i < hi; i++ {
		orow := out[i*n : (i+1)*n]
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		if relu {
			for j, v := range orow {
				if !(v > 0) {
					orow[j] = 0
				}
			}
		}
	}
}

// matmulRows computes output rows [lo, hi) against the transposed bt
// (n×k). Rows are processed in pairs and columns in blocks of 4 — the
// register blocking of dotRows24avx, which keeps the whole column loop in
// assembly; edge rows and columns fall back to dotScalar, which produces
// bit-identical values. The bias/ReLU epilogue is applied per row after the
// raw dots land — the same add and clamp biasReluRows performs, element for
// element.
func matmulRows(out, a, bt []float64, lo, hi, k, n int, bias []float64, relu bool) {
	k4 := k &^ 3
	n4 := n &^ 3
	i := lo
	if useAVX && k4 > 0 && n4 > 0 {
		nb := n4 >> 2
		// With no k%4 tail the bias/ReLU epilogue runs packed inside the
		// kernel; otherwise the tail sums must land first, so the epilogue
		// stays in finishRow.
		var biasPtr *float64
		reluFlag := 0
		epInAsm := k4 == k
		if epInAsm {
			if bias != nil {
				biasPtr = &bias[0]
			}
			if relu {
				reluFlag = 1
			}
		}
		for ; i+1 < hi; i += 2 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			o0 := out[i*n : (i+1)*n]
			o1 := out[(i+1)*n : (i+2)*n]
			dotRows24avx(&a0[0], &a1[0], &bt[0], k, k4, nb, &o0[0], &o1[0], biasPtr, reluFlag)
			if !epInAsm {
				finishRow(o0, a0, bt, k, k4, n4, n, bias, relu)
				finishRow(o1, a1, bt, k, k4, n4, n, bias, relu)
			} else {
				edgeCols(o0, a0, bt, k, n4, n, bias, relu)
				edgeCols(o1, a1, bt, k, n4, n, bias, relu)
			}
		}
		if i < hi {
			// Trailing odd row through the same kernel with both row
			// operands aliased to it: the o1 stores then rewrite o0's
			// values in place, and each lane carries the dot products in
			// dotScalar order, so the row is bit-identical.
			a0 := a[i*k : (i+1)*k]
			o0 := out[i*n : (i+1)*n]
			dotRows24avx(&a0[0], &a0[0], &bt[0], k, k4, nb, &o0[0], &o0[0], biasPtr, reluFlag)
			if !epInAsm {
				finishRow(o0, a0, bt, k, k4, n4, n, bias, relu)
			} else {
				edgeCols(o0, a0, bt, k, n4, n, bias, relu)
			}
			i = hi
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = epilogue(dotScalar(arow, bt[j*k:(j+1)*k], k), bias, j, relu)
		}
	}
}

// edgeCols computes the n%4 edge columns of one output row via dotScalar
// plus the scalar epilogue, for the path where dotRows24avx already applied
// the epilogue to the first n4 columns in assembly.
func edgeCols(orow, arow, bt []float64, k, n4, n int, bias []float64, relu bool) {
	for j := n4; j < n; j++ {
		orow[j] = epilogue(dotScalar(arow, bt[j*k:(j+1)*k], k), bias, j, relu)
	}
}

// finishRow completes one output row after dotRows24avx has written the
// lane-reduced dots for the first n4 columns: the ascending k%4 scalar tail
// (the same order dotScalar uses, applied after the lane reduce), the n%4
// edge columns via dotScalar, and then the bias/ReLU epilogue across the
// row — exactly biasReluRows' add and clamp, element for element.
func finishRow(orow, arow, bt []float64, k, k4, n4, n int, bias []float64, relu bool) {
	if k4 < k {
		for j := 0; j < n4; j++ {
			col := bt[j*k : (j+1)*k]
			s := orow[j]
			for p := k4; p < k; p++ {
				s = math.FMA(arow[p], col[p], s)
			}
			orow[j] = s
		}
	}
	for j := n4; j < n; j++ {
		orow[j] = dotScalar(arow, bt[j*k:(j+1)*k], k)
	}
	if bias != nil {
		for j, bv := range bias {
			orow[j] += bv
		}
	}
	if relu {
		for j, v := range orow[:n] {
			if !(v > 0) {
				orow[j] = 0
			}
		}
	}
}

// epilogue applies the fused bias/ReLU to one freshly computed element:
// exactly addRowVectorForward's add and reluForward's clamp (NaN and -0
// clamp to +0).
func epilogue(v float64, bias []float64, j int, relu bool) float64 {
	if bias != nil {
		v += bias[j]
	}
	if relu && !(v > 0) {
		return 0
	}
	return v
}

// dotScalar mirrors dotRows24avx element for element: four independent FMA
// lanes over the k&^3 prefix (math.FMA is the single-rounding IEEE
// fusedMultiplyAdd, bit-identical to VFMADD231PD lane arithmetic), reduced
// as (s0+s1)+(s2+s3), then an ascending FMA tail.
func dotScalar(a, b []float64, k int) float64 {
	var s0, s1, s2, s3 float64
	k4 := k &^ 3
	for p := 0; p < k4; p += 4 {
		s0 = math.FMA(a[p], b[p], s0)
		s1 = math.FMA(a[p+1], b[p+1], s1)
		s2 = math.FMA(a[p+2], b[p+2], s2)
		s3 = math.FMA(a[p+3], b[p+3], s3)
	}
	s := (s0 + s1) + (s2 + s3)
	for p := k4; p < k; p++ {
		s = math.FMA(a[p], b[p], s)
	}
	return s
}
