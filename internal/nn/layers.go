package nn

import (
	"fmt"
	"math"

	"github.com/repro/snowplow/internal/rng"
)

// Layer is any component exposing its trainable parameters.
type Layer interface {
	// Params returns the trainable tensors, in a stable order.
	Params() []*Tensor
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	W *Tensor // (in, out)
	B *Tensor // (1, out)

	// wt caches W transposed ((out, in) row-major) for the fused inference
	// kernel; built by FreezeFused on frozen models, nil during training.
	wt []float64
}

// NewLinear creates a Linear layer with Kaiming-uniform initialized weights.
func NewLinear(r *rng.Rand, in, out int) *Linear {
	l := &Linear{W: New(in, out).RequireGrad(), B: New(1, out).RequireGrad()}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = (2*r.Float64() - 1) * bound
	}
	return l
}

// Forward applies the layer to x of shape (m, in).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return l.ForwardOps(TrainOps{}, x)
}

// ForwardOps applies the layer through the given op set.
func (l *Linear) ForwardOps(ops Ops, x *Tensor) *Tensor {
	if f, ok := ops.(FusedOps); ok && f.FusionEnabled() {
		return f.LinearBias(x, l.W, l.wt, l.B, false)
	}
	xw := ops.MatMul(x, l.W)
	out := ops.AddRowVector(xw, l.B)
	ops.Recycle(xw)
	return out
}

// FreezeFused precomputes the transposed weight used by the fused inference
// kernel, sparing every LinearBias call its transpose + scratch round trip.
// Call on frozen models only (and again after any weight rewrite, e.g.
// quantized replay): the cache is a copy, not a view.
func (l *Linear) FreezeFused() {
	in, out := l.W.Shape[0], l.W.Shape[1]
	if len(l.wt) != in*out {
		l.wt = make([]float64, in*out)
	}
	transposeForward(l.wt, l.W.Data, in, out)
}

// Params implements Layer.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Embedding maps integer ids to learned dense vectors.
type Embedding struct {
	Table *Tensor // (vocab, dim)
}

// NewEmbedding creates an embedding table with N(0, 0.1) initialization.
func NewEmbedding(r *rng.Rand, vocab, dim int) *Embedding {
	e := &Embedding{Table: New(vocab, dim).RequireGrad()}
	for i := range e.Table.Data {
		e.Table.Data[i] = r.NormFloat64() * 0.1
	}
	return e
}

// Forward looks up one row per id.
func (e *Embedding) Forward(ids []int) *Tensor { return Gather(e.Table, ids) }

// ForwardOps looks up one row per id through the given op set.
func (e *Embedding) ForwardOps(ops Ops, ids []int) *Tensor { return ops.Gather(e.Table, ids) }

// ForwardAddOps accumulates the looked-up rows into dst in place through
// the fused op set: dst[i,:] += Table[ids[i],:], bitwise the
// ForwardOps → AddInto pair without the intermediate tensor.
func (e *Embedding) ForwardAddOps(f FusedOps, dst *Tensor, ids []int) {
	f.GatherAddInto(dst, e.Table, ids)
}

// Params implements Layer.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.Table} }

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform.
type LayerNorm struct {
	Gamma *Tensor // (1, dim)
	Beta  *Tensor // (1, dim)
	eps   float64
}

// NewLayerNorm creates a LayerNorm over the given feature dimension.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Gamma: New(1, dim).RequireGrad(), Beta: New(1, dim).RequireGrad(), eps: 1e-5}
	for i := range ln.Gamma.Data {
		ln.Gamma.Data[i] = 1
	}
	return ln
}

// Forward normalizes x of shape (m, dim) row-wise.
func (ln *LayerNorm) Forward(x *Tensor) *Tensor {
	return ln.ForwardOps(TrainOps{}, x)
}

// ForwardOps normalizes x through the given op set.
func (ln *LayerNorm) ForwardOps(ops Ops, x *Tensor) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != ln.Gamma.Shape[1] {
		panic(fmt.Sprintf("nn: LayerNorm dim mismatch %v vs %v", x.Shape, ln.Gamma.Shape))
	}
	return ops.LayerNorm(x, ln.Gamma, ln.Beta, ln.eps)
}

// ForwardAddOps normalizes x+y (the residual-add-then-norm pattern) through
// the given op set, fusing the add into the norm kernel when available.
func (ln *LayerNorm) ForwardAddOps(ops Ops, x, y *Tensor) *Tensor {
	if f, ok := ops.(FusedOps); ok && f.FusionEnabled() {
		return f.AddLayerNorm(x, y, ln.Gamma, ln.Beta, ln.eps)
	}
	sum := ops.Add(x, y)
	out := ln.ForwardOps(ops, sum)
	ops.Recycle(sum)
	return out
}

// layerNormTrain is the autodiff layer-norm op behind TrainOps.LayerNorm.
func layerNormTrain(x, gamma, beta *Tensor, eps float64) *Tensor {
	return layerNormVia(heapAlloc{}, x, gamma, beta, eps)
}

func layerNormVia(al resultAllocator, x, gamma, beta *Tensor, eps float64) *Tensor {
	m, n := x.Shape[0], x.Shape[1]
	out := al.newResult(x.Shape, x, gamma, beta)
	means := al.scratchFloats(m)
	invStds := al.scratchFloats(m)
	layerNormForward(out.Data, x.Data, gamma.Data, beta.Data, m, n, eps, means, invStds)
	if out.requiresGrad {
		gh := al.scratchFloats(n)
		out.backward = func() {
			for i := 0; i < m; i++ {
				row := x.Data[i*n : (i+1)*n]
				grow := out.Grad[i*n : (i+1)*n]
				mean, invStd := means[i], invStds[i]
				if gamma.requiresGrad {
					for j := 0; j < n; j++ {
						xhat := (row[j] - mean) * invStd
						gamma.Grad[j] += grow[j] * xhat
						beta.Grad[j] += grow[j]
					}
				}
				if x.requiresGrad {
					// d xhat_j = g_j * gamma_j ; standard layernorm backward.
					var sumG, sumGX float64
					for j := 0; j < n; j++ {
						gh[j] = grow[j] * gamma.Data[j]
						xhat := (row[j] - mean) * invStd
						sumG += gh[j]
						sumGX += gh[j] * xhat
					}
					for j := 0; j < n; j++ {
						xhat := (row[j] - mean) * invStd
						x.Grad[i*n+j] += invStd * (gh[j] - sumG/float64(n) - xhat*sumGX/float64(n))
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Tensor { return []*Tensor{ln.Gamma, ln.Beta} }

// SelfAttention is a single-head scaled dot-product self-attention block
// with a residual connection and layer normalization. It is the core of the
// token encoder that embeds kernel basic-block instruction sequences.
type SelfAttention struct {
	Q, K, V *Linear
	Out     *Linear
	Norm    *LayerNorm
	dim     int
}

// NewSelfAttention creates a self-attention block over dim features.
func NewSelfAttention(r *rng.Rand, dim int) *SelfAttention {
	return &SelfAttention{
		Q:    NewLinear(r, dim, dim),
		K:    NewLinear(r, dim, dim),
		V:    NewLinear(r, dim, dim),
		Out:  NewLinear(r, dim, dim),
		Norm: NewLayerNorm(dim),
		dim:  dim,
	}
}

// Forward applies attention across the rows of x (sequence length m,
// features dim) and returns a tensor of the same shape.
func (sa *SelfAttention) Forward(x *Tensor) *Tensor {
	return sa.ForwardOps(TrainOps{}, x)
}

// ForwardOps applies attention through the given op set. Under an Infer op
// set the q/k/kᵀ/score intermediates — fresh allocations per call on the
// old training-only path — are recycled into the pool as soon as they are
// dead, so repeated attention passes reuse the same scratch memory.
func (sa *SelfAttention) ForwardOps(ops Ops, x *Tensor) *Tensor {
	if f, ok := ops.(FusedOps); ok && f.FusionEnabled() {
		q := f.LinearBias(x, sa.Q.W, sa.Q.wt, sa.Q.B, false)
		k := f.LinearBias(x, sa.K.W, sa.K.wt, sa.K.B, false)
		v := f.LinearBias(x, sa.V.W, sa.V.wt, sa.V.B, false)
		ctx := f.ScaledDotAttention(q, k, v, 1/math.Sqrt(float64(sa.dim)))
		proj := f.LinearBias(ctx, sa.Out.W, sa.Out.wt, sa.Out.B, false)
		out := f.AddLayerNorm(x, proj, sa.Norm.Gamma, sa.Norm.Beta, sa.Norm.eps)
		f.Arena().Recycle(q, k, v, ctx, proj)
		return out
	}
	q := sa.Q.ForwardOps(ops, x)
	k := sa.K.ForwardOps(ops, x)
	v := sa.V.ForwardOps(ops, x)
	kt := ops.Transpose(k)
	qk := ops.MatMul(q, kt)
	scores := ops.Scale(qk, 1/math.Sqrt(float64(sa.dim)))
	attn := ops.SoftmaxRows(scores)
	ctx := ops.MatMul(attn, v)
	proj := sa.Out.ForwardOps(ops, ctx)
	sum := ops.Add(x, proj)
	out := sa.Norm.ForwardOps(ops, sum)
	ops.Recycle(q, k, v, kt, qk, scores, attn, ctx, proj, sum)
	return out
}

// ForwardRaggedOps applies the attention block independently over row
// segments of x (bounds[s]..bounds[s+1] delimit segment s) through the fused
// kernels. The Q/K/V/Out projections and the residual layer norm batch
// across all segments in single kernels — each of their output rows depends
// only on its own input row, so batching cannot change a bit — while the
// score/softmax/weighted-sum step runs per segment. Bit-identical to calling
// ForwardOps on each segment separately, at a fraction of the kernel
// launches for many short sequences.
func (sa *SelfAttention) ForwardRaggedOps(f FusedOps, x *Tensor, bounds []int) *Tensor {
	q := f.LinearBias(x, sa.Q.W, sa.Q.wt, sa.Q.B, false)
	k := f.LinearBias(x, sa.K.W, sa.K.wt, sa.K.B, false)
	v := f.LinearBias(x, sa.V.W, sa.V.wt, sa.V.B, false)
	ctx := f.RaggedScaledDotAttention(q, k, v, bounds, 1/math.Sqrt(float64(sa.dim)))
	proj := f.LinearBias(ctx, sa.Out.W, sa.Out.wt, sa.Out.B, false)
	out := f.AddLayerNorm(x, proj, sa.Norm.Gamma, sa.Norm.Beta, sa.Norm.eps)
	f.Arena().Recycle(q, k, v, ctx, proj)
	return out
}

// Params implements Layer.
func (sa *SelfAttention) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range []Layer{sa.Q, sa.K, sa.V, sa.Out, sa.Norm} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Transpose returns the transpose of a 2D tensor.
func Transpose(a *Tensor) *Tensor { return transposeVia(heapAlloc{}, a) }

func transposeVia(al resultAllocator, a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Transpose requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := al.newResult([]int{n, m}, a)
	transposeForward(out.Data, a.Data, m, n)
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a.Grad[i*n+j] += out.Grad[j*m+i]
				}
			}
		}
	}
	return out
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// last layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP creates an MLP with the given layer widths, e.g. (r, 64, 32, 1).
func NewMLP(r *rng.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(r, widths[i], widths[i+1]))
	}
	return m
}

// Forward applies the stack to x.
func (m *MLP) Forward(x *Tensor) *Tensor {
	return m.ForwardOps(TrainOps{}, x)
}

// ForwardOps applies the stack through the given op set. The input x is
// never recycled; every intermediate is. Under a fused op set each hidden
// layer runs as a single linear+bias+ReLU kernel.
func (m *MLP) ForwardOps(ops Ops, x *Tensor) *Tensor {
	if f, ok := ops.(FusedOps); ok && f.FusionEnabled() {
		ar := f.Arena()
		cur := x
		for i, l := range m.Layers {
			next := f.LinearBias(cur, l.W, l.wt, l.B, i+1 < len(m.Layers))
			if cur != x {
				ar.Recycle(cur)
			}
			cur = next
		}
		return cur
	}
	cur := x
	for i, l := range m.Layers {
		next := l.ForwardOps(ops, cur)
		if cur != x {
			ops.Recycle(cur)
		}
		cur = next
		if i+1 < len(m.Layers) {
			next = ops.ReLU(cur)
			ops.Recycle(cur)
			cur = next
		}
	}
	return cur
}

// Params implements Layer.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
