package nn

import (
	"fmt"
	"math"

	"github.com/repro/snowplow/internal/rng"
)

// Layer is any component exposing its trainable parameters.
type Layer interface {
	// Params returns the trainable tensors, in a stable order.
	Params() []*Tensor
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	W *Tensor // (in, out)
	B *Tensor // (1, out)
}

// NewLinear creates a Linear layer with Kaiming-uniform initialized weights.
func NewLinear(r *rng.Rand, in, out int) *Linear {
	l := &Linear{W: New(in, out).RequireGrad(), B: New(1, out).RequireGrad()}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = (2*r.Float64() - 1) * bound
	}
	return l
}

// Forward applies the layer to x of shape (m, in).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return AddRowVector(MatMul(x, l.W), l.B)
}

// Params implements Layer.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Embedding maps integer ids to learned dense vectors.
type Embedding struct {
	Table *Tensor // (vocab, dim)
}

// NewEmbedding creates an embedding table with N(0, 0.1) initialization.
func NewEmbedding(r *rng.Rand, vocab, dim int) *Embedding {
	e := &Embedding{Table: New(vocab, dim).RequireGrad()}
	for i := range e.Table.Data {
		e.Table.Data[i] = r.NormFloat64() * 0.1
	}
	return e
}

// Forward looks up one row per id.
func (e *Embedding) Forward(ids []int) *Tensor { return Gather(e.Table, ids) }

// Params implements Layer.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.Table} }

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform.
type LayerNorm struct {
	Gamma *Tensor // (1, dim)
	Beta  *Tensor // (1, dim)
	eps   float64
}

// NewLayerNorm creates a LayerNorm over the given feature dimension.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Gamma: New(1, dim).RequireGrad(), Beta: New(1, dim).RequireGrad(), eps: 1e-5}
	for i := range ln.Gamma.Data {
		ln.Gamma.Data[i] = 1
	}
	return ln
}

// Forward normalizes x of shape (m, dim) row-wise.
func (ln *LayerNorm) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != ln.Gamma.Shape[1] {
		panic(fmt.Sprintf("nn: LayerNorm dim mismatch %v vs %v", x.Shape, ln.Gamma.Shape))
	}
	m, n := x.Shape[0], x.Shape[1]
	out := newResult(x.Shape, x, ln.Gamma, ln.Beta)
	means := make([]float64, m)
	invStds := make([]float64, m)
	for i := 0; i < m; i++ {
		row := x.Data[i*n : (i+1)*n]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		var variance float64
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(n)
		invStd := 1 / math.Sqrt(variance+ln.eps)
		means[i], invStds[i] = mean, invStd
		for j, v := range row {
			out.Data[i*n+j] = (v-mean)*invStd*ln.Gamma.Data[j] + ln.Beta.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				row := x.Data[i*n : (i+1)*n]
				grow := out.Grad[i*n : (i+1)*n]
				mean, invStd := means[i], invStds[i]
				if ln.Gamma.requiresGrad {
					for j := 0; j < n; j++ {
						xhat := (row[j] - mean) * invStd
						ln.Gamma.Grad[j] += grow[j] * xhat
						ln.Beta.Grad[j] += grow[j]
					}
				}
				if x.requiresGrad {
					// d xhat_j = g_j * gamma_j ; standard layernorm backward.
					var sumG, sumGX float64
					gh := make([]float64, n)
					for j := 0; j < n; j++ {
						gh[j] = grow[j] * ln.Gamma.Data[j]
						xhat := (row[j] - mean) * invStd
						sumG += gh[j]
						sumGX += gh[j] * xhat
					}
					for j := 0; j < n; j++ {
						xhat := (row[j] - mean) * invStd
						x.Grad[i*n+j] += invStd * (gh[j] - sumG/float64(n) - xhat*sumGX/float64(n))
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Tensor { return []*Tensor{ln.Gamma, ln.Beta} }

// SelfAttention is a single-head scaled dot-product self-attention block
// with a residual connection and layer normalization. It is the core of the
// token encoder that embeds kernel basic-block instruction sequences.
type SelfAttention struct {
	Q, K, V *Linear
	Out     *Linear
	Norm    *LayerNorm
	dim     int
}

// NewSelfAttention creates a self-attention block over dim features.
func NewSelfAttention(r *rng.Rand, dim int) *SelfAttention {
	return &SelfAttention{
		Q:    NewLinear(r, dim, dim),
		K:    NewLinear(r, dim, dim),
		V:    NewLinear(r, dim, dim),
		Out:  NewLinear(r, dim, dim),
		Norm: NewLayerNorm(dim),
		dim:  dim,
	}
}

// Forward applies attention across the rows of x (sequence length m,
// features dim) and returns a tensor of the same shape.
func (sa *SelfAttention) Forward(x *Tensor) *Tensor {
	q := sa.Q.Forward(x)
	k := sa.K.Forward(x)
	v := sa.V.Forward(x)
	scores := Scale(MatMul(q, Transpose(k)), 1/math.Sqrt(float64(sa.dim)))
	attn := SoftmaxRows(scores)
	ctx := MatMul(attn, v)
	return sa.Norm.Forward(Add(x, sa.Out.Forward(ctx)))
}

// Params implements Layer.
func (sa *SelfAttention) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range []Layer{sa.Q, sa.K, sa.V, sa.Out, sa.Norm} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Transpose returns the transpose of a 2D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Transpose requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := newResult([]int{n, m}, a)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a.Grad[i*n+j] += out.Grad[j*m+i]
				}
			}
		}
	}
	return out
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// last layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP creates an MLP with the given layer widths, e.g. (r, 64, 32, 1).
func NewMLP(r *rng.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(r, widths[i], widths[i+1]))
	}
	return m
}

// Forward applies the stack to x.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params implements Layer.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
