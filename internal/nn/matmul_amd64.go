package nn

// cpuHasAVXFMA reports AVX + FMA3 + OS YMM-state support (implemented in
// assembly).
func cpuHasAVXFMA() bool

// dotRows24avx computes two full output rows against nb four-column blocks
// of the transposed bt (column stride k), writing the lane-reduced FMA dot
// products to o0/o1 with an optional packed bias/ReLU epilogue —
// bit-identical to dotScalar plus the scalar epilogue per element; see
// matmul_amd64.s. bias/relu may only be passed when k%4 == 0.
//
//go:noescape
func dotRows24avx(a0, a1, bt *float64, k, k4, nb int, o0, o1, bias *float64, relu int)

// The elementwise kernels below each apply one packed step per element with
// the exact operand order and rounding count of their scalar mirrors in
// elemwise.go (never an FMA contraction), so the vector width cannot change
// a bit. All require n % 4 == 0; the Go wrappers handle tails.

//go:noescape
func ewAddAvx(dst, a *float64, n int)

//go:noescape
func ewAdd2Avx(dst, x, y *float64, n int)

//go:noescape
func ewMulAddAvx(dst, a *float64, c float64, n int)

//go:noescape
func ewScaleAvx(dst *float64, c float64, n int)

//go:noescape
func ewReluAvx(dst *float64, n int)

//go:noescape
func ewNormAvx(dst, gamma, beta *float64, mean, invStd float64, n int)

var useAVX = cpuHasAVXFMA()
