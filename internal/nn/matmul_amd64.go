package nn

// cpuHasAVX reports AVX + OS YMM-state support (implemented in assembly).
func cpuHasAVX() bool

// dot24avx computes the eight dot products of rows {a0, a1} against columns
// {b0..b3} over k4 elements (a multiple of 4), storing them to out[0..7].
// See matmul_amd64.s for the determinism contract with dotScalar.
//
//go:noescape
func dot24avx(a0, a1, b0, b1, b2, b3 *float64, k4 int, out *float64)

var useAVX = cpuHasAVX()
