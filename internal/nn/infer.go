package nn

// Ops abstracts the forward-only tensor operations a model needs, with two
// implementations:
//
//   - TrainOps delegates to the package-level autodiff ops: outputs are
//     heap-allocated and carry the backward tape when inputs require grad.
//   - Infer allocates outputs from a Pool and tracks them in an arena, so a
//     whole forward pass is recycled with one Close call and steady-state
//     inference is allocation-free.
//
// Both run the same forward kernels (kernels.go), so a frozen model
// produces bit-identical outputs through either implementation — the
// golden-determinism guarantee the serving and replay layers rely on.
type Ops interface {
	MatMul(a, b *Tensor) *Tensor
	Add(a, b *Tensor) *Tensor
	AddRowVector(a, v *Tensor) *Tensor
	Mul(a, b *Tensor) *Tensor
	Scale(a *Tensor, c float64) *Tensor
	ReLU(a *Tensor) *Tensor
	SoftmaxRows(a *Tensor) *Tensor
	Transpose(a *Tensor) *Tensor
	MeanRows(a *Tensor) *Tensor
	Gather(table *Tensor, indices []int) *Tensor
	ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor
	Concat(ts ...*Tensor) *Tensor
	ConcatRows(ts []*Tensor) *Tensor
	RepeatEachRow(v *Tensor, times int) *Tensor
	TileRows(v *Tensor, times int) *Tensor
	MaxPerGroup(a *Tensor, groups, per int) *Tensor
	LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor
	// Zeros returns a zero tensor outside differentiation.
	Zeros(shape ...int) *Tensor
	// Recycle declares tensors dead mid-pass so Infer can reuse their
	// memory before Close; a no-op for TrainOps (the tape may need them).
	Recycle(ts ...*Tensor)
}

// TrainOps implements Ops with the package-level autodiff operations.
type TrainOps struct{}

// MatMul implements Ops.
func (TrainOps) MatMul(a, b *Tensor) *Tensor { return MatMul(a, b) }

// Add implements Ops.
func (TrainOps) Add(a, b *Tensor) *Tensor { return Add(a, b) }

// AddRowVector implements Ops.
func (TrainOps) AddRowVector(a, v *Tensor) *Tensor { return AddRowVector(a, v) }

// Mul implements Ops.
func (TrainOps) Mul(a, b *Tensor) *Tensor { return Mul(a, b) }

// Scale implements Ops.
func (TrainOps) Scale(a *Tensor, c float64) *Tensor { return Scale(a, c) }

// ReLU implements Ops.
func (TrainOps) ReLU(a *Tensor) *Tensor { return ReLU(a) }

// SoftmaxRows implements Ops.
func (TrainOps) SoftmaxRows(a *Tensor) *Tensor { return SoftmaxRows(a) }

// Transpose implements Ops.
func (TrainOps) Transpose(a *Tensor) *Tensor { return Transpose(a) }

// MeanRows implements Ops.
func (TrainOps) MeanRows(a *Tensor) *Tensor { return MeanRows(a) }

// Gather implements Ops.
func (TrainOps) Gather(table *Tensor, indices []int) *Tensor { return Gather(table, indices) }

// ScatterMean implements Ops.
func (TrainOps) ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	return ScatterMean(src, dst, dstRows)
}

// Concat implements Ops.
func (TrainOps) Concat(ts ...*Tensor) *Tensor { return Concat(ts...) }

// ConcatRows implements Ops.
func (TrainOps) ConcatRows(ts []*Tensor) *Tensor { return ConcatRows(ts) }

// RepeatEachRow implements Ops.
func (TrainOps) RepeatEachRow(v *Tensor, times int) *Tensor { return RepeatEachRow(v, times) }

// TileRows implements Ops.
func (TrainOps) TileRows(v *Tensor, times int) *Tensor { return TileRows(v, times) }

// MaxPerGroup implements Ops.
func (TrainOps) MaxPerGroup(a *Tensor, groups, per int) *Tensor { return MaxPerGroup(a, groups, per) }

// LayerNorm implements Ops via the autodiff layer-norm (layers.go).
func (TrainOps) LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	return layerNormTrain(x, gamma, beta, eps)
}

// Zeros implements Ops.
func (TrainOps) Zeros(shape ...int) *Tensor { return New(shape...) }

// Recycle implements Ops as a no-op: the tape may still reference the data.
func (TrainOps) Recycle(ts ...*Tensor) {}

// Infer is a pooled, arena-tracked Ops implementation for inference on
// frozen models. Every output tensor is borrowed from the pool and
// registered in the arena; Close releases everything still registered.
// An Infer is owned by one goroutine; distinct Infers may share a Pool.
type Infer struct {
	pool     *Pool
	borrowed []*Tensor
}

// NewInfer creates an inference context over the pool.
func NewInfer(p *Pool) *Infer {
	return &Infer{pool: p}
}

// alloc borrows a zeroed tensor and registers it in the arena.
func (in *Infer) alloc(shape ...int) *Tensor {
	t := in.pool.Borrow(shape...)
	t.arenaIdx = len(in.borrowed)
	in.borrowed = append(in.borrowed, t)
	return t
}

// Recycle implements Ops: it releases arena tensors back to the pool
// immediately, letting long forward passes reuse memory before Close.
// Tensors not allocated by this Infer (parameters, inputs) are ignored.
func (in *Infer) Recycle(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		if i := t.arenaIdx; i < len(in.borrowed) && in.borrowed[i] == t {
			in.borrowed[i] = nil
			in.pool.Release(t)
		}
	}
}

// Keep detaches t from the arena so it survives Close. Its memory is ceded
// to the caller and never returns to the pool.
func (in *Infer) Keep(t *Tensor) *Tensor {
	if i := t.arenaIdx; i < len(in.borrowed) && in.borrowed[i] == t {
		in.borrowed[i] = nil
	}
	return t
}

// Close releases every tensor still registered in the arena. The Infer can
// be reused for another pass afterwards.
func (in *Infer) Close() {
	for _, t := range in.borrowed {
		if t != nil {
			in.pool.Release(t)
		}
	}
	in.borrowed = in.borrowed[:0]
}

// MatMul implements Ops.
func (in *Infer) MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := in.alloc(m, n)
	matmulForward(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// Add implements Ops.
func (in *Infer) Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := in.alloc(a.Shape...)
	addForward(out.Data, a.Data, b.Data)
	return out
}

// AddRowVector implements Ops.
func (in *Infer) AddRowVector(a, v *Tensor) *Tensor {
	m, n := checkRowVector(a, v)
	out := in.alloc(a.Shape...)
	addRowVectorForward(out.Data, a.Data, v.Data, m, n)
	return out
}

// Mul implements Ops.
func (in *Infer) Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := in.alloc(a.Shape...)
	mulForward(out.Data, a.Data, b.Data)
	return out
}

// Scale implements Ops.
func (in *Infer) Scale(a *Tensor, c float64) *Tensor {
	out := in.alloc(a.Shape...)
	scaleForward(out.Data, a.Data, c)
	return out
}

// ReLU implements Ops.
func (in *Infer) ReLU(a *Tensor) *Tensor {
	out := in.alloc(a.Shape...)
	reluForward(out.Data, a.Data)
	return out
}

// SoftmaxRows implements Ops.
func (in *Infer) SoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: SoftmaxRows requires a 2D tensor")
	}
	out := in.alloc(a.Shape...)
	softmaxRowsForward(out.Data, a.Data, a.Shape[0], a.Shape[1])
	return out
}

// Transpose implements Ops.
func (in *Infer) Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Transpose requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := in.alloc(n, m)
	transposeForward(out.Data, a.Data, m, n)
	return out
}

// MeanRows implements Ops.
func (in *Infer) MeanRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: MeanRows requires a 2D tensor")
	}
	out := in.alloc(1, a.Shape[1])
	meanRowsForward(out.Data, a.Data, a.Shape[0], a.Shape[1])
	return out
}

// Gather implements Ops.
func (in *Infer) Gather(table *Tensor, indices []int) *Tensor {
	if len(table.Shape) != 2 {
		panic("nn: Gather requires a 2D table")
	}
	cols := table.Shape[1]
	out := in.alloc(len(indices), cols)
	gatherForward(out.Data, table.Data, indices, table.Shape[0], cols)
	return out
}

// ScatterMean implements Ops.
func (in *Infer) ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	if len(src.Shape) != 2 || len(dst) != src.Shape[0] {
		panic("nn: ScatterMean shape mismatch")
	}
	cols := src.Shape[1]
	out := in.alloc(dstRows, cols)
	counts := in.pool.GetSlice(dstRows)
	scatterMeanForward(out.Data, counts, src.Data, dst, cols)
	in.pool.PutSlice(counts)
	return out
}

// Concat implements Ops.
func (in *Infer) Concat(ts ...*Tensor) *Tensor {
	rows, cols := checkConcat(ts)
	out := in.alloc(rows, cols)
	concatForward(out.Data, ts, rows, cols)
	return out
}

// ConcatRows implements Ops.
func (in *Infer) ConcatRows(ts []*Tensor) *Tensor {
	rows, cols := checkConcatRows(ts)
	out := in.alloc(rows, cols)
	concatRowsForward(out.Data, ts)
	return out
}

// RepeatEachRow implements Ops.
func (in *Infer) RepeatEachRow(v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: RepeatEachRow requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := in.alloc(m*times, n)
	repeatEachRowForward(out.Data, v.Data, m, n, times)
	return out
}

// TileRows implements Ops.
func (in *Infer) TileRows(v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: TileRows requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := in.alloc(m*times, n)
	tileRowsForward(out.Data, v.Data, m, n, times)
	return out
}

// MaxPerGroup implements Ops.
func (in *Infer) MaxPerGroup(a *Tensor, groups, per int) *Tensor {
	checkMaxPerGroup(a, groups, per)
	out := in.alloc(groups, 1)
	maxPerGroupForward(out.Data, nil, a.Data, groups, per)
	return out
}

// LayerNorm implements Ops.
func (in *Infer) LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != gamma.Shape[1] {
		panic("nn: LayerNorm dim mismatch")
	}
	out := in.alloc(x.Shape...)
	layerNormForward(out.Data, x.Data, gamma.Data, beta.Data, x.Shape[0], x.Shape[1], eps, nil, nil)
	return out
}

// Zeros implements Ops.
func (in *Infer) Zeros(shape ...int) *Tensor { return in.alloc(shape...) }
