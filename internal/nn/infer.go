package nn

import "time"

// Ops abstracts the forward-only tensor operations a model needs, with two
// implementations:
//
//   - TrainOps delegates to the package-level autodiff ops: outputs are
//     heap-allocated and carry the backward tape when inputs require grad.
//   - Infer allocates outputs from a Pool and tracks them in an arena, so a
//     whole forward pass is recycled with one Close call and steady-state
//     inference is allocation-free.
//
// Both run the same forward kernels (kernels.go), so a frozen model
// produces bit-identical outputs through either implementation — the
// golden-determinism guarantee the serving and replay layers rely on.
type Ops interface {
	MatMul(a, b *Tensor) *Tensor
	Add(a, b *Tensor) *Tensor
	AddRowVector(a, v *Tensor) *Tensor
	Mul(a, b *Tensor) *Tensor
	Scale(a *Tensor, c float64) *Tensor
	ReLU(a *Tensor) *Tensor
	SoftmaxRows(a *Tensor) *Tensor
	Transpose(a *Tensor) *Tensor
	MeanRows(a *Tensor) *Tensor
	Gather(table *Tensor, indices []int) *Tensor
	ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor
	Concat(ts ...*Tensor) *Tensor
	ConcatRows(ts []*Tensor) *Tensor
	RepeatEachRow(v *Tensor, times int) *Tensor
	TileRows(v *Tensor, times int) *Tensor
	MaxPerGroup(a *Tensor, groups, per int) *Tensor
	LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor
	// Zeros returns a zero tensor outside differentiation.
	Zeros(shape ...int) *Tensor
	// Recycle declares tensors dead mid-pass so Infer can reuse their
	// memory before Close; a no-op for TrainOps (the tape may need them).
	Recycle(ts ...*Tensor)
}

// TrainOps implements Ops with the package-level autodiff operations.
type TrainOps struct{}

// MatMul implements Ops.
func (TrainOps) MatMul(a, b *Tensor) *Tensor { return MatMul(a, b) }

// Add implements Ops.
func (TrainOps) Add(a, b *Tensor) *Tensor { return Add(a, b) }

// AddRowVector implements Ops.
func (TrainOps) AddRowVector(a, v *Tensor) *Tensor { return AddRowVector(a, v) }

// Mul implements Ops.
func (TrainOps) Mul(a, b *Tensor) *Tensor { return Mul(a, b) }

// Scale implements Ops.
func (TrainOps) Scale(a *Tensor, c float64) *Tensor { return Scale(a, c) }

// ReLU implements Ops.
func (TrainOps) ReLU(a *Tensor) *Tensor { return ReLU(a) }

// SoftmaxRows implements Ops.
func (TrainOps) SoftmaxRows(a *Tensor) *Tensor { return SoftmaxRows(a) }

// Transpose implements Ops.
func (TrainOps) Transpose(a *Tensor) *Tensor { return Transpose(a) }

// MeanRows implements Ops.
func (TrainOps) MeanRows(a *Tensor) *Tensor { return MeanRows(a) }

// Gather implements Ops.
func (TrainOps) Gather(table *Tensor, indices []int) *Tensor { return Gather(table, indices) }

// ScatterMean implements Ops.
func (TrainOps) ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	return ScatterMean(src, dst, dstRows)
}

// Concat implements Ops.
func (TrainOps) Concat(ts ...*Tensor) *Tensor { return Concat(ts...) }

// ConcatRows implements Ops.
func (TrainOps) ConcatRows(ts []*Tensor) *Tensor { return ConcatRows(ts) }

// RepeatEachRow implements Ops.
func (TrainOps) RepeatEachRow(v *Tensor, times int) *Tensor { return RepeatEachRow(v, times) }

// TileRows implements Ops.
func (TrainOps) TileRows(v *Tensor, times int) *Tensor { return TileRows(v, times) }

// MaxPerGroup implements Ops.
func (TrainOps) MaxPerGroup(a *Tensor, groups, per int) *Tensor { return MaxPerGroup(a, groups, per) }

// LayerNorm implements Ops via the autodiff layer-norm (layers.go).
func (TrainOps) LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	return layerNormTrain(x, gamma, beta, eps)
}

// Zeros implements Ops.
func (TrainOps) Zeros(shape ...int) *Tensor { return New(shape...) }

// Recycle implements Ops as a no-op: the tape may still reference the data.
func (TrainOps) Recycle(ts ...*Tensor) {}

// Infer is a pooled, arena-tracked Ops implementation for inference on
// frozen models. Every output tensor is borrowed from the pool and
// registered in the arena; Close releases everything still registered.
// An Infer is owned by one goroutine; distinct Infers may share a Pool.
//
// Infer also implements FusedOps (fused.go); EnableFusion routes layer
// forwards through the fused kernels, with bit-identical outputs.
type Infer struct {
	pool     *Pool
	borrowed []*Tensor
	// cache is a per-Infer free list indexed by slab class exponent
	// (capacity 32<<e). Recycle parks dead tensors here and alloc pops them
	// without touching the shared pool's mutex; Close drains the cache back
	// to the pool. Since an Infer is single-goroutine, no locking is needed,
	// which removes the pool lock from the per-op hot path.
	cache [inferCacheClasses][]*Tensor
	fused bool
	prof  inferCounters
}

// inferCacheClasses bounds the local size classes an Infer caches; class
// index e covers slab capacity 32<<e, so the largest cached slab is 4M
// elements. Bigger tensors go straight back to the shared pool.
const inferCacheClasses = 18

// cacheClass returns the local-cache index whose slab capacity (32<<e)
// holds n elements, or -1 if n is too large to cache locally.
func cacheClass(n int) int {
	c, e := minSlabClass, 0
	for c < n {
		c <<= 1
		e++
	}
	if e >= inferCacheClasses {
		return -1
	}
	return e
}

// NewInfer creates an inference context over the pool.
func NewInfer(p *Pool) *Infer {
	return &Infer{pool: p}
}

// NewInferFused creates an inference context with the fused kernels enabled.
func NewInferFused(p *Pool) *Infer {
	return &Infer{pool: p, fused: true}
}

// alloc borrows a zeroed tensor and registers it in the arena.
func (in *Infer) alloc(shape ...int) *Tensor {
	return in.borrowLocal(shape, true)
}

// allocRaw borrows an unzeroed tensor (the caller overwrites every element)
// and registers it in the arena.
func (in *Infer) allocRaw(shape ...int) *Tensor {
	return in.borrowLocal(shape, false)
}

// borrowLocal satisfies an allocation from the per-Infer cache when a parked
// tensor of the right class exists, falling back to the shared pool.
func (in *Infer) borrowLocal(shape []int, zero bool) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n > 0 {
		if e := cacheClass(n); e >= 0 {
			if l := len(in.cache[e]); l > 0 {
				t := in.cache[e][l-1]
				in.cache[e][l-1] = nil
				in.cache[e] = in.cache[e][:l-1]
				t.Shape = append(t.Shape[:0], shape...)
				t.Data = t.Data[:n]
				if zero {
					clear(t.Data)
				}
				return in.register(t)
			}
		}
	}
	if zero {
		return in.register(in.pool.Borrow(shape...))
	}
	return in.register(in.pool.BorrowRaw(shape...))
}

// park moves a dead arena tensor into the local cache; slabs too large (or
// not pool-classed) go back to the shared pool instead.
func (in *Infer) park(t *Tensor) {
	if c := cap(t.Data); c >= minSlabClass && c&(c-1) == 0 {
		if e := cacheClass(c); e >= 0 {
			t.arenaIdx = releasedIdx
			t.Grad, t.parents, t.backward = nil, nil, nil
			in.cache[e] = append(in.cache[e], t)
			return
		}
	}
	in.pool.Release(t)
}

func (in *Infer) register(t *Tensor) *Tensor {
	t.arenaIdx = len(in.borrowed)
	in.borrowed = append(in.borrowed, t)
	return t
}

// Recycle implements Ops: it releases arena tensors back to the pool
// immediately, letting long forward passes reuse memory before Close.
// Tensors not allocated by this Infer (parameters, inputs) are ignored.
func (in *Infer) Recycle(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		if i := t.arenaIdx; i >= 0 && i < len(in.borrowed) && in.borrowed[i] == t {
			in.borrowed[i] = nil
			in.park(t)
		}
	}
}

// Keep detaches t from the arena so it survives Close. Its memory is ceded
// to the caller and never returns to the pool.
func (in *Infer) Keep(t *Tensor) *Tensor {
	if i := t.arenaIdx; i >= 0 && i < len(in.borrowed) && in.borrowed[i] == t {
		in.borrowed[i] = nil
	}
	return t
}

// Close releases every tensor still registered in the arena, drains the
// local cache back to the shared pool and flushes the kernel counters. The
// Infer can be reused for another pass.
func (in *Infer) Close() {
	for _, t := range in.borrowed {
		if t != nil {
			in.pool.Release(t)
		}
	}
	in.borrowed = in.borrowed[:0]
	for e := range in.cache {
		for i, t := range in.cache[e] {
			in.cache[e][i] = nil
			t.arenaIdx = 0
			in.pool.Release(t)
		}
		in.cache[e] = in.cache[e][:0]
	}
	in.pool.addProfile(&in.prof)
}

// MatMul implements Ops.
func (in *Infer) MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := in.allocRaw(m, n)
	if kernelProfiling.Load() {
		t0 := time.Now()
		matmulForward(out.Data, a.Data, b.Data, m, k, n)
		in.prof.matmulNs += time.Since(t0).Nanoseconds()
	} else {
		matmulForward(out.Data, a.Data, b.Data, m, k, n)
	}
	return out
}

// Add implements Ops.
func (in *Infer) Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := in.allocRaw(a.Shape...)
	addForward(out.Data, a.Data, b.Data)
	return out
}

// AddRowVector implements Ops.
func (in *Infer) AddRowVector(a, v *Tensor) *Tensor {
	m, n := checkRowVector(a, v)
	out := in.allocRaw(a.Shape...)
	addRowVectorForward(out.Data, a.Data, v.Data, m, n)
	return out
}

// Mul implements Ops.
func (in *Infer) Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := in.allocRaw(a.Shape...)
	mulForward(out.Data, a.Data, b.Data)
	return out
}

// Scale implements Ops.
func (in *Infer) Scale(a *Tensor, c float64) *Tensor {
	out := in.allocRaw(a.Shape...)
	scaleForward(out.Data, a.Data, c)
	return out
}

// ReLU implements Ops.
func (in *Infer) ReLU(a *Tensor) *Tensor {
	out := in.allocRaw(a.Shape...)
	reluForward(out.Data, a.Data)
	return out
}

// SoftmaxRows implements Ops.
func (in *Infer) SoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: SoftmaxRows requires a 2D tensor")
	}
	out := in.allocRaw(a.Shape...)
	if kernelProfiling.Load() {
		t0 := time.Now()
		softmaxRowsForward(out.Data, a.Data, a.Shape[0], a.Shape[1])
		in.prof.softmaxNs += time.Since(t0).Nanoseconds()
	} else {
		softmaxRowsForward(out.Data, a.Data, a.Shape[0], a.Shape[1])
	}
	return out
}

// Transpose implements Ops.
func (in *Infer) Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Transpose requires a 2D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := in.allocRaw(n, m)
	transposeForward(out.Data, a.Data, m, n)
	return out
}

// MeanRows implements Ops.
func (in *Infer) MeanRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: MeanRows requires a 2D tensor")
	}
	out := in.alloc(1, a.Shape[1])
	meanRowsForward(out.Data, a.Data, a.Shape[0], a.Shape[1])
	return out
}

// Gather implements Ops.
func (in *Infer) Gather(table *Tensor, indices []int) *Tensor {
	if len(table.Shape) != 2 {
		panic("nn: Gather requires a 2D table")
	}
	cols := table.Shape[1]
	out := in.allocRaw(len(indices), cols)
	gatherForward(out.Data, table.Data, indices, table.Shape[0], cols)
	return out
}

// ScatterMean implements Ops.
func (in *Infer) ScatterMean(src *Tensor, dst []int, dstRows int) *Tensor {
	if len(src.Shape) != 2 || len(dst) != src.Shape[0] {
		panic("nn: ScatterMean shape mismatch")
	}
	cols := src.Shape[1]
	out := in.alloc(dstRows, cols)
	counts := in.pool.GetSlice(dstRows)
	scatterMeanForward(out.Data, counts, src.Data, dst, cols)
	in.pool.PutSlice(counts)
	return out
}

// Concat implements Ops.
func (in *Infer) Concat(ts ...*Tensor) *Tensor {
	rows, cols := checkConcat(ts)
	out := in.allocRaw(rows, cols)
	concatForward(out.Data, ts, rows, cols)
	return out
}

// ConcatRows implements Ops.
func (in *Infer) ConcatRows(ts []*Tensor) *Tensor {
	rows, cols := checkConcatRows(ts)
	out := in.allocRaw(rows, cols)
	concatRowsForward(out.Data, ts)
	return out
}

// RepeatEachRow implements Ops.
func (in *Infer) RepeatEachRow(v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: RepeatEachRow requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := in.allocRaw(m*times, n)
	repeatEachRowForward(out.Data, v.Data, m, n, times)
	return out
}

// TileRows implements Ops.
func (in *Infer) TileRows(v *Tensor, times int) *Tensor {
	if len(v.Shape) != 2 {
		panic("nn: TileRows requires a 2D tensor")
	}
	m, n := v.Shape[0], v.Shape[1]
	out := in.allocRaw(m*times, n)
	tileRowsForward(out.Data, v.Data, m, n, times)
	return out
}

// MaxPerGroup implements Ops.
func (in *Infer) MaxPerGroup(a *Tensor, groups, per int) *Tensor {
	checkMaxPerGroup(a, groups, per)
	out := in.allocRaw(groups, 1)
	maxPerGroupForward(out.Data, nil, a.Data, groups, per)
	return out
}

// LayerNorm implements Ops.
func (in *Infer) LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != gamma.Shape[1] {
		panic("nn: LayerNorm dim mismatch")
	}
	out := in.allocRaw(x.Shape...)
	if kernelProfiling.Load() {
		t0 := time.Now()
		layerNormForward(out.Data, x.Data, gamma.Data, beta.Data, x.Shape[0], x.Shape[1], eps, nil, nil)
		in.prof.normNs += time.Since(t0).Nanoseconds()
	} else {
		layerNormForward(out.Data, x.Data, gamma.Data, beta.Data, x.Shape[0], x.Shape[1], eps, nil, nil)
	}
	return out
}

// Zeros implements Ops.
func (in *Infer) Zeros(shape ...int) *Tensor { return in.alloc(shape...) }
