package faultinject

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrSevered is returned by a Link whose fault budget is exhausted; the
// underlying connection is closed, so the peer observes a reset.
var ErrSevered = errors.New("faultinject: link severed")

// LinkOptions configure a Link.
type LinkOptions struct {
	// SeverAfterWrites kills the connection on the Nth write (0 disables).
	// The cluster protocol writes one frame per Write call, so this counts
	// outbound protocol messages.
	SeverAfterWrites int
	// SeverAfterReads kills the connection on the Nth successful read (0
	// disables).
	SeverAfterReads int
	// WriteDelay stalls every write, simulating a slow or congested link.
	WriteDelay time.Duration
	// Bandwidth, when positive, shapes outbound throughput to the given
	// bytes per second: each write stalls for len(b)·second/Bandwidth
	// before hitting the wire. The stall is a pure function of the byte
	// count, so a shaped campaign is exactly as reproducible as an
	// unshaped one — the bytes (and hence the delays) are deterministic,
	// only wall-clock moves. Composes with Latency and WriteDelay.
	Bandwidth int64
	// Latency adds a fixed per-write stall, simulating propagation delay
	// on a WAN path. The cluster protocol writes one frame per Write call,
	// so this charges every protocol message one round of latency.
	Latency time.Duration
}

// Link wraps a network connection with deterministic transport faults for
// cluster partition tests: sever the link after a fixed number of frames in
// either direction, or delay traffic. Faults are positional (message
// counts), not timed, so a partitioned campaign is as reproducible as a
// healthy one.
type Link struct {
	net.Conn
	opts LinkOptions

	mu      sync.Mutex
	writes  int
	reads   int
	severed bool
}

// NewLink wraps conn.
func NewLink(conn net.Conn, opts LinkOptions) *Link {
	return &Link{Conn: conn, opts: opts}
}

// sever closes the underlying connection once.
func (l *Link) sever() {
	if !l.severed {
		l.severed = true
		l.Conn.Close()
	}
}

// shapeDelay is the deterministic stall charged to an n-byte write: fixed
// WriteDelay and Latency plus the Bandwidth serialization time.
func (l *Link) shapeDelay(n int) time.Duration {
	d := l.opts.WriteDelay + l.opts.Latency
	if l.opts.Bandwidth > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / l.opts.Bandwidth)
	}
	return d
}

// Write counts one outbound message, severing when the write budget is
// exhausted (the message is lost, as a mid-flight partition would lose it).
func (l *Link) Write(b []byte) (int, error) {
	if d := l.shapeDelay(len(b)); d > 0 {
		time.Sleep(d)
	}
	l.mu.Lock()
	if l.severed {
		l.mu.Unlock()
		return 0, ErrSevered
	}
	l.writes++
	if l.opts.SeverAfterWrites > 0 && l.writes >= l.opts.SeverAfterWrites {
		l.sever()
		l.mu.Unlock()
		return 0, ErrSevered
	}
	l.mu.Unlock()
	return l.Conn.Write(b)
}

// Read counts inbound data, severing after the configured number of
// successful reads.
func (l *Link) Read(b []byte) (int, error) {
	l.mu.Lock()
	if l.severed {
		l.mu.Unlock()
		return 0, ErrSevered
	}
	l.mu.Unlock()
	n, err := l.Conn.Read(b)
	if err == nil {
		l.mu.Lock()
		l.reads++
		if l.opts.SeverAfterReads > 0 && l.reads >= l.opts.SeverAfterReads {
			l.sever()
			l.mu.Unlock()
			return n, ErrSevered
		}
		l.mu.Unlock()
	}
	return n, err
}
