package faultinject

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestShapeDelayDeterministic pins the shaped stall as a pure function of
// the byte count: bandwidth serialization plus fixed latency, no jitter.
func TestShapeDelayDeterministic(t *testing.T) {
	l := &Link{opts: LinkOptions{Bandwidth: 1 << 20, Latency: 3 * time.Millisecond}}
	for _, tc := range []struct {
		n    int
		want time.Duration
	}{
		{0, 3 * time.Millisecond},
		{1 << 20, time.Second + 3*time.Millisecond},
		{1 << 10, time.Second/1024 + 3*time.Millisecond},
	} {
		if got := l.shapeDelay(tc.n); got != tc.want {
			t.Errorf("shapeDelay(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	unshaped := &Link{}
	if got := unshaped.shapeDelay(1 << 20); got != 0 {
		t.Errorf("unshaped link delays %v", got)
	}
}

// TestLinkBandwidthStallsWrites checks the shaped link actually slows the
// wire: pushing 50 KiB through a 100 KiB/s link must take at least ~500ms.
func TestLinkBandwidthStallsWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("timed test")
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	l := NewLink(a, LinkOptions{Bandwidth: 100 << 10})
	start := time.Now()
	buf := make([]byte, 10<<10)
	for i := 0; i < 5; i++ {
		if _, err := l.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 450*time.Millisecond {
		t.Fatalf("50 KiB crossed a 100 KiB/s link in %v", elapsed)
	}
}
