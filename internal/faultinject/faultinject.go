// Package faultinject provides deterministic, seeded fault models for the
// PMM inference path. The paper's deployment (§3.4) keeps fuzzing throughput
// intact when inference is slow or unavailable by falling back to random
// argument localization; this package supplies the adversary for exercising
// that story: dropped replies, transient errors, latency spikes, and corrupt
// predictions, all planned as a pure function of (seed, query, attempt) so
// that a faulty campaign is exactly as reproducible as a healthy one.
//
// Fault decisions deliberately do not depend on wall clock or on worker
// scheduling: the serve package assigns every accepted query a sequence
// number at submission time, and the model plans the fate of each attempt of
// that query from the sequence number alone. Two campaigns with the same
// fuzzer seed and the same fault model therefore see the same fault stream
// regardless of how goroutines interleave.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/repro/snowplow/internal/rng"
)

// Fault classifies one injected failure.
type Fault int

// The fault kinds. Drop, Transient and Corrupt are mutually exclusive per
// attempt (partitioned over one uniform draw); Latency is drawn
// independently for attempts that would otherwise succeed.
const (
	// FaultNone leaves the attempt untouched.
	FaultNone Fault = iota
	// FaultDrop loses the reply: the caller observes its per-query
	// deadline expiring with no answer.
	FaultDrop
	// FaultTransient fails the attempt immediately with a retryable error
	// (the serving analogue of a connection reset or 503).
	FaultTransient
	// FaultLatency delays the reply by the model's latency spike.
	FaultLatency
	// FaultCorrupt lets the attempt succeed but replaces the prediction
	// with deterministic garbage (out-of-range slots, bogus
	// probabilities). Consumers must validate predictions.
	FaultCorrupt
)

// String names the fault kind.
func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultTransient:
		return "transient"
	case FaultLatency:
		return "latency"
	case FaultCorrupt:
		return "corrupt"
	}
	return "none"
}

// Decision is the planned fate of one (query, attempt) pair.
type Decision struct {
	Fault Fault
	// Latency is the injected delay (FaultLatency only).
	Latency time.Duration
}

// Injector plans faults for inference attempts. The serve package consults
// the injector once per attempt; implementations must be safe for concurrent
// use and, for reproducible campaigns, should depend only on their own
// configuration and the (query, attempt) pair.
type Injector interface {
	Plan(query uint64, attempt int) Decision
}

// Model is the standard seeded fault model. The zero value injects nothing.
type Model struct {
	// Seed makes the fault stream reproducible. Models with different
	// seeds produce independent streams.
	Seed uint64
	// DropProb is the per-attempt probability of a lost reply.
	DropProb float64
	// TransientProb is the per-attempt probability of a retryable error.
	TransientProb float64
	// CorruptProb is the per-attempt probability of a corrupted
	// prediction.
	CorruptProb float64
	// LatencyProb is the probability that an otherwise-successful attempt
	// is delayed by LatencySpike.
	LatencyProb float64
	// LatencySpike is the injected delay magnitude; the planned delay is
	// uniform in [0.5, 1.5) times this value.
	LatencySpike time.Duration
}

// DefaultLatencySpike is used when LatencyProb is set but LatencySpike is not.
const DefaultLatencySpike = 20 * time.Millisecond

// Enabled reports whether the model can inject any fault at all.
func (m *Model) Enabled() bool {
	return m != nil && (m.DropProb > 0 || m.TransientProb > 0 || m.CorruptProb > 0 || m.LatencyProb > 0)
}

// FailureProb is the total probability that an attempt does not deliver a
// usable prediction (drop + transient; corruption delivers, just wrongly).
func (m *Model) FailureProb() float64 {
	if m == nil {
		return 0
	}
	return clamp01(m.DropProb) + clamp01(m.TransientProb)
}

// Plan returns the deterministic fault decision for the attempt-th try of
// the query-th accepted query. It is a pure function of the model and its
// arguments, so it is safe for concurrent use.
func (m *Model) Plan(query uint64, attempt int) Decision {
	if !m.Enabled() {
		return Decision{}
	}
	r := rng.New(m.Seed ^ (query+1)*0x9e3779b97f4a7c15 ^ (uint64(attempt)+1)*0xbf58476d1ce4e5b9)
	x := r.Float64()
	drop := clamp01(m.DropProb)
	trans := clamp01(m.TransientProb)
	corr := clamp01(m.CorruptProb)
	switch {
	case x < drop:
		return Decision{Fault: FaultDrop}
	case x < drop+trans:
		return Decision{Fault: FaultTransient}
	case x < drop+trans+corr:
		return Decision{Fault: FaultCorrupt}
	}
	if m.LatencyProb > 0 && r.Float64() < m.LatencyProb {
		spike := m.LatencySpike
		if spike <= 0 {
			spike = DefaultLatencySpike
		}
		return Decision{
			Fault:   FaultLatency,
			Latency: time.Duration((0.5 + r.Float64()) * float64(spike)),
		}
	}
	return Decision{}
}

// Scale returns a copy of the model with every probability multiplied by f
// (clamped to [0, 1]); the seed and spike magnitude are preserved. Used by
// the degraded-serving ablation to sweep one fault shape across rates.
func (m *Model) Scale(f float64) *Model {
	out := *m
	out.DropProb = clamp01(m.DropProb * f)
	out.TransientProb = clamp01(m.TransientProb * f)
	out.CorruptProb = clamp01(m.CorruptProb * f)
	out.LatencyProb = clamp01(m.LatencyProb * f)
	return &out
}

// String renders the model in the ParseSpec format.
func (m *Model) String() string {
	if !m.Enabled() {
		return "off"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", m.DropProb)
	add("transient", m.TransientProb)
	add("corrupt", m.CorruptProb)
	if m.LatencyProb > 0 {
		spike := m.LatencySpike
		if spike <= 0 {
			spike = DefaultLatencySpike
		}
		parts = append(parts, fmt.Sprintf("latency=%g:%s", m.LatencyProb, spike))
	}
	if m.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", m.Seed))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a command-line fault specification of the form
//
//	drop=0.1,transient=0.2,corrupt=0.05,latency=0.1:50ms,seed=7
//
// Every field is optional; "off", "none" and "" yield a disabled model.
func ParseSpec(s string) (*Model, error) {
	m := &Model{}
	s = strings.TrimSpace(s)
	if s == "" || s == "off" || s == "none" {
		return m, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		switch key {
		case "drop", "transient", "corrupt":
			p, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			switch key {
			case "drop":
				m.DropProb = p
			case "transient":
				m.TransientProb = p
			case "corrupt":
				m.CorruptProb = p
			}
		case "latency":
			prob, spike, _ := strings.Cut(val, ":")
			p, err := parseProb(prob)
			if err != nil {
				return nil, fmt.Errorf("faultinject: latency: %w", err)
			}
			m.LatencyProb = p
			if spike != "" {
				d, err := time.ParseDuration(spike)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultinject: latency spike %q: want a duration", spike)
				}
				m.LatencySpike = d
			}
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %w", val, err)
			}
			m.Seed = seed
		default:
			return nil, fmt.Errorf("faultinject: unknown field %q", key)
		}
	}
	if m.FailureProb()+clamp01(m.CorruptProb) > 1 {
		return nil, fmt.Errorf("faultinject: drop+transient+corrupt exceed 1")
	}
	return m, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
