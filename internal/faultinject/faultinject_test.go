package faultinject

import (
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	m := &Model{Seed: 7, DropProb: 0.2, TransientProb: 0.2, CorruptProb: 0.1, LatencyProb: 0.3, LatencySpike: 10 * time.Millisecond}
	for q := uint64(0); q < 200; q++ {
		for att := 0; att < 4; att++ {
			a := m.Plan(q, att)
			b := m.Plan(q, att)
			if a != b {
				t.Fatalf("plan(%d,%d) nondeterministic: %+v vs %+v", q, att, a, b)
			}
		}
	}
}

func TestPlanIndependentOfCallOrder(t *testing.T) {
	m := &Model{Seed: 3, DropProb: 0.5}
	forward := make([]Decision, 100)
	for q := range forward {
		forward[q] = m.Plan(uint64(q), 0)
	}
	for q := len(forward) - 1; q >= 0; q-- {
		if got := m.Plan(uint64(q), 0); got != forward[q] {
			t.Fatalf("plan for query %d depends on call order", q)
		}
	}
}

func TestPlanRates(t *testing.T) {
	m := &Model{Seed: 11, DropProb: 0.2, TransientProb: 0.3, CorruptProb: 0.1}
	const n = 20000
	counts := map[Fault]int{}
	for q := uint64(0); q < n; q++ {
		counts[m.Plan(q, 0).Fault]++
	}
	check := func(f Fault, want float64) {
		got := float64(counts[f]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v rate %.3f, want ~%.2f", f, got, want)
		}
	}
	check(FaultDrop, 0.2)
	check(FaultTransient, 0.3)
	check(FaultCorrupt, 0.1)
	check(FaultNone, 0.4)
}

func TestSeedsIndependent(t *testing.T) {
	a := &Model{Seed: 1, DropProb: 0.5}
	b := &Model{Seed: 2, DropProb: 0.5}
	same := 0
	const n = 1000
	for q := uint64(0); q < n; q++ {
		if a.Plan(q, 0) == b.Plan(q, 0) {
			same++
		}
	}
	// Two independent 50/50 streams agree about half the time.
	if same < n/3 || same > 2*n/3 {
		t.Fatalf("streams for different seeds suspiciously correlated: %d/%d equal", same, n)
	}
}

func TestLatencyDecision(t *testing.T) {
	m := &Model{Seed: 5, LatencyProb: 1, LatencySpike: 10 * time.Millisecond}
	d := m.Plan(0, 0)
	if d.Fault != FaultLatency {
		t.Fatalf("fault = %v, want latency", d.Fault)
	}
	if d.Latency < 5*time.Millisecond || d.Latency >= 15*time.Millisecond {
		t.Fatalf("latency %v outside [0.5, 1.5) x spike", d.Latency)
	}
}

func TestDisabledModel(t *testing.T) {
	var m *Model
	if m.Enabled() {
		t.Fatal("nil model enabled")
	}
	zero := &Model{}
	if zero.Enabled() {
		t.Fatal("zero model enabled")
	}
	if d := zero.Plan(1, 0); d.Fault != FaultNone {
		t.Fatalf("zero model injected %v", d.Fault)
	}
}

func TestScale(t *testing.T) {
	m := &Model{Seed: 9, DropProb: 0.4, TransientProb: 0.3, CorruptProb: 0.2, LatencyProb: 0.1, LatencySpike: time.Second}
	half := m.Scale(0.5)
	if half.DropProb != 0.2 || half.TransientProb != 0.15 || half.CorruptProb != 0.1 || half.LatencyProb != 0.05 {
		t.Fatalf("scale 0.5 wrong: %+v", half)
	}
	if half.Seed != 9 || half.LatencySpike != time.Second {
		t.Fatal("scale must preserve seed and spike")
	}
	over := m.Scale(10)
	if over.DropProb != 1 {
		t.Fatalf("scale must clamp to 1, got %v", over.DropProb)
	}
	if zero := m.Scale(0); zero.Enabled() {
		t.Fatal("scale 0 must disable the model")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	m, err := ParseSpec("drop=0.1,transient=0.2,corrupt=0.05,latency=0.1:50ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if m.DropProb != 0.1 || m.TransientProb != 0.2 || m.CorruptProb != 0.05 ||
		m.LatencyProb != 0.1 || m.LatencySpike != 50*time.Millisecond || m.Seed != 7 {
		t.Fatalf("parsed %+v", m)
	}
	back, err := ParseSpec(m.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", m.String(), err)
	}
	if *back != *m {
		t.Fatalf("round trip: %+v vs %+v", back, m)
	}
}

func TestParseSpecDisabled(t *testing.T) {
	for _, s := range []string{"", "off", "none"} {
		m, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if m.Enabled() {
			t.Fatalf("%q parsed as enabled", s)
		}
	}
	if got := (&Model{}).String(); got != "off" {
		t.Fatalf("disabled model renders %q", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"drop",            // no value
		"drop=x",          // bad probability
		"drop=1.5",        // out of range
		"latency=0.1:abc", // bad duration
		"seed=-1",         // bad seed
		"bogus=1",         // unknown key
		"drop=0.6,transient=0.6", // over-full partition
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", s)
		}
	}
}
