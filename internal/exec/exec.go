// Package exec executes test programs against a synthetic kernel and
// collects KCOV-style execution traces.
//
// The executor reproduces the determinism engineering of §3.1: by default
// every program runs from a pristine kernel-state snapshot, system calls
// execute strictly sequentially, and no background activity perturbs the
// trace. An optional NoiseModel reintroduces the nondeterminism of a
// conventional fuzzing setup (shared VM state, background interrupts) for
// ablation experiments.
package exec

import (
	"fmt"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

// maxSteps bounds a single call's block walk as a safety net; handler CFGs
// are DAGs, so hitting it indicates a kernel-build bug.
const maxSteps = 100000

// Result is the outcome of executing one program.
type Result struct {
	// CallTraces holds, per executed call, the ordered basic-block trace.
	// When the program crashes, the crashing call's trace is the last entry.
	CallTraces [][]kernel.BlockID
	// Succeeded reports, per executed call, whether it exited through the
	// success return block.
	Succeeded []bool
	// Crash is non-nil if the kernel crashed; CrashCall is the call index.
	Crash     *kernel.CrashSpec
	CrashCall int
	// Cost is the simulated execution cost (total blocks executed); the
	// experiment harness uses it as the time axis.
	Cost int
}

// Blocks returns the set of all blocks covered by the result.
func (r *Result) Blocks() map[kernel.BlockID]struct{} {
	set := make(map[kernel.BlockID]struct{})
	for _, tr := range r.CallTraces {
		for _, b := range tr {
			set[b] = struct{}{}
		}
	}
	return set
}

// Machine is one simulated fuzzing VM's execution engine: an Executor plus
// per-machine counters. The parallel campaign engine gives each VM worker
// its own Machine so execution state (boot snapshot, flaky-crash RNG,
// noise) never crosses VM boundaries, and the counters feed the per-VM
// stats line.
type Machine struct {
	*Executor
	// ID is the VM index within its fleet.
	ID int
	// Execs counts programs run on this machine.
	Execs int64
	// BlocksRun is the total simulated cost (blocks executed) consumed.
	BlocksRun int64
}

// NewMachine creates a per-VM execution machine over a fresh executor.
func NewMachine(k *kernel.Kernel, id int) *Machine {
	return &Machine{Executor: New(k), ID: id}
}

// Run executes the program on this machine, updating its counters.
func (m *Machine) Run(p *prog.Prog) (*Result, error) {
	res, err := m.Executor.Run(p)
	if err == nil {
		m.Execs++
		m.BlocksRun += int64(res.Cost)
	}
	return res, err
}

// NoiseModel reintroduces the nondeterminism the paper's data-collection
// pipeline eliminates: spurious background coverage (network interrupts,
// RCU callbacks) and shared state across executions.
type NoiseModel struct {
	// Rand drives the noise; required.
	Rand *rng.Rand
	// InterruptProb is the chance, per call, of interleaving a background
	// handler's trace into the coverage.
	InterruptProb float64
	// SharedState, when true, carries kernel state across Run calls instead
	// of restoring the boot snapshot (the "no VM snapshot" configuration).
	SharedState bool
}

// Executor runs programs on one kernel instance.
type Executor struct {
	K *kernel.Kernel

	boot    *kernel.State
	state   *kernel.State // live state when noise.SharedState carries over
	noise   *NoiseModel
	flakyR  *rng.Rand
	baddies []kernel.BlockID // entry blocks usable as background noise
}

// flakySeed seeds every fresh executor's flaky-crash RNG.
const flakySeed = 0x5eed

// New creates an executor with a pristine boot snapshot and deterministic
// execution (no noise).
func New(k *kernel.Kernel) *Executor {
	return &Executor{K: k, boot: kernel.NewState(), flakyR: rng.New(flakySeed)}
}

// InitialFlakyState is the flaky-crash RNG state of a freshly created
// executor, for building the checkpoint state of a VM that has not executed
// anything yet.
func InitialFlakyState() [4]uint64 {
	return rng.New(flakySeed).State()
}

// FlakyState exports the flaky-crash RNG's current state. Flaky crash
// blocks consume this stream once per hit, so an executor's future results
// depend on how much of the stream past runs consumed; checkpointing a
// fuzzing VM therefore must capture it alongside the mutation RNG.
func (e *Executor) FlakyState() [4]uint64 {
	return e.flakyR.State()
}

// RestoreFlaky resumes the flaky-crash RNG from a FlakyState export, so a
// restored VM's flaky-crash outcomes continue exactly where the
// checkpointed VM left off.
func (e *Executor) RestoreFlaky(s [4]uint64) {
	e.flakyR = rng.FromState(s)
}

// SeedFlaky rewinds the flaky-crash RNG to a fresh stream derived from
// seed. Flaky crash blocks consume this stream once per hit, so an
// executor's results depend on its whole run history; work-sharded callers
// (dataset.Collect) reseed per work unit to make each unit's outcome a pure
// function of (kernel, program, seed) — independent of which worker ran it
// or what ran before.
func (e *Executor) SeedFlaky(seed uint64) {
	e.flakyR = rng.New(seed)
}

// WithNoise enables the noise model; it returns the executor.
func (e *Executor) WithNoise(n *NoiseModel) *Executor {
	e.noise = n
	if n != nil {
		for _, h := range e.K.Handlers {
			e.baddies = append(e.baddies, h.Entry)
		}
	}
	return e
}

// Run executes the program from a fresh snapshot (or the carried-over state
// under a SharedState noise model) and returns its trace.
func (e *Executor) Run(p *prog.Prog) (*Result, error) {
	st := e.boot.Snapshot()
	if e.noise != nil && e.noise.SharedState {
		if e.state == nil {
			e.state = e.boot.Snapshot()
		}
		st = e.state
	}
	res := &Result{}
	results := make([]uint64, len(p.Calls)) // runtime value of each call's resource
	for i := range results {
		results[i] = ^uint64(0)
	}
	for ci, call := range p.Calls {
		h := e.K.Handler(call.Meta.Name)
		if h == nil {
			return nil, fmt.Errorf("exec: no handler for syscall %q", call.Meta.Name)
		}
		views := slotViews(call, results)
		tr, success, crash, err := e.runCall(h, views, st)
		if err != nil {
			return nil, err
		}
		if e.noise != nil && e.noise.Rand.Chance(e.noise.InterruptProb) {
			tr = append(tr, e.backgroundTrace(st)...)
		}
		res.CallTraces = append(res.CallTraces, tr)
		res.Succeeded = append(res.Succeeded, success)
		res.Cost += len(tr)
		if crash != nil {
			res.Crash = crash
			res.CrashCall = ci
			break
		}
		if call.Meta.Ret != "" && success {
			results[ci] = st.AllocHandle(call.Meta.Ret)
		}
	}
	return res, nil
}

// runCall walks one handler CFG.
func (e *Executor) runCall(h *kernel.Handler, views []kernel.SlotView, st *kernel.State) ([]kernel.BlockID, bool, *kernel.CrashSpec, error) {
	var tr []kernel.BlockID
	id := h.Entry
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return nil, false, nil, fmt.Errorf("exec: handler %s exceeded %d steps (cycle?)", h.Call.Name, maxSteps)
		}
		b := e.K.Block(id)
		tr = append(tr, id)
		if eff := b.Effect; eff != nil {
			applyEffect(eff, views, st)
		}
		switch b.Kind {
		case kernel.BlockBody:
			id = b.Next
		case kernel.BlockBranch:
			if b.Pred.Eval(views, st) {
				id = b.Taken
			} else {
				id = b.NotTaken
			}
		case kernel.BlockReturn:
			return tr, id == h.Exit, nil, nil
		case kernel.BlockCrash:
			if b.Crash.Flaky && !e.flakyR.Chance(0.3) {
				// The race window did not hit this time; the call survives.
				return tr, false, nil, nil
			}
			return tr, false, b.Crash, nil
		default:
			return nil, false, nil, fmt.Errorf("exec: unknown block kind %d", b.Kind)
		}
	}
}

func applyEffect(eff *kernel.Effect, views []kernel.SlotView, st *kernel.State) {
	switch eff.Kind {
	case kernel.EffectIncCounter:
		st.Counters[eff.Key]++
	case kernel.EffectSetCounter:
		st.Counters[eff.Key] = eff.Value
	case kernel.EffectCloseResource:
		if eff.Slot < len(views) && views[eff.Slot].Present {
			st.CloseHandle(views[eff.Slot].Val)
		}
	}
}

// backgroundTrace simulates an interrupting background handler running with
// default (zero) argument views, as network or timer activity would.
func (e *Executor) backgroundTrace(st *kernel.State) []kernel.BlockID {
	entry := e.baddies[e.noise.Rand.Intn(len(e.baddies))]
	var tr []kernel.BlockID
	id := entry
	for steps := 0; steps < 64; steps++ {
		b := e.K.Block(id)
		tr = append(tr, id)
		switch b.Kind {
		case kernel.BlockBody:
			id = b.Next
		case kernel.BlockBranch:
			if b.Pred.Eval(nil, st) {
				id = b.Taken
			} else {
				id = b.NotTaken
			}
		default:
			return tr
		}
	}
	return tr
}

// slotViews resolves the call's flattened argument slots to the executor's
// scalar view, resolving resource references through results.
func slotViews(call *prog.Call, results []uint64) []kernel.SlotView {
	slots := call.Meta.Slots()
	views := make([]kernel.SlotView, len(slots))
	for i, s := range slots {
		a := call.ArgAtPath(s.Path)
		if a == nil {
			continue // behind a null pointer: absent
		}
		v := kernel.SlotView{Present: true}
		switch arg := a.(type) {
		case *prog.ConstArg:
			v.Val = arg.Val
		case *prog.StringArg:
			v.Len = len(arg.Val)
		case *prog.DataArg:
			v.Len = len(arg.Data)
		case *prog.PointerArg:
			if !arg.Null {
				v.Val = 1
			}
		case *prog.ResultArg:
			v.IsResource = true
			if arg.Ref >= 0 && arg.Ref < len(results) {
				v.Val = results[arg.Ref]
			} else {
				v.Val = arg.Val
			}
		case *prog.GroupArg:
			// Structs are not slots; flattening never yields them.
		}
		views[i] = v
	}
	return views
}
