package exec

import (
	"testing"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

var testKernel = kernel.MustBuild("6.8")

func run(t *testing.T, e *Executor, text string) *Result {
	t.Helper()
	p := prog.MustParse(testKernel.Target, text)
	res, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSimpleProgram(t *testing.T) {
	e := New(testKernel)
	res := run(t, e, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n")
	if len(res.CallTraces) != 2 {
		t.Fatalf("%d call traces", len(res.CallTraces))
	}
	for i, tr := range res.CallTraces {
		if len(tr) < 3 {
			t.Fatalf("call %d trace too short: %v", i, tr)
		}
	}
	if res.Crash != nil {
		t.Fatalf("unexpected crash: %v", res.Crash.Title)
	}
	if res.Cost != len(res.CallTraces[0])+len(res.CallTraces[1]) {
		t.Fatal("cost does not equal total trace length")
	}
}

func TestDeterministicExecution(t *testing.T) {
	e := New(testKernel)
	text := "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\nwrite(r0, &b\"aa\", 0x1)\n"
	a := run(t, e, text)
	b := run(t, e, text)
	if len(a.CallTraces) != len(b.CallTraces) {
		t.Fatal("trace counts differ")
	}
	for i := range a.CallTraces {
		if len(a.CallTraces[i]) != len(b.CallTraces[i]) {
			t.Fatalf("call %d trace lengths differ", i)
		}
		for j := range a.CallTraces[i] {
			if a.CallTraces[i][j] != b.CallTraces[i][j] {
				t.Fatalf("call %d diverges at step %d", i, j)
			}
		}
	}
}

func TestSnapshotIsolationAcrossRuns(t *testing.T) {
	// Kernel state must reset between runs: counters accumulated by one
	// program must not leak into the next (the §3.1 VM-snapshot property).
	e := New(testKernel)
	text := "r0 = open(\"./file0\", 0x0, 0x0)\n"
	first := run(t, e, text)
	for i := 0; i < 5; i++ {
		if got := run(t, e, text); len(got.CallTraces[0]) != len(first.CallTraces[0]) {
			t.Fatalf("run %d trace differs from first run", i)
		}
	}
}

func TestResourceWiringAffectsPath(t *testing.T) {
	// A valid fd must pass the validity gate; an invalid one must take the
	// error return, producing a different trace.
	e := New(testKernel)
	valid := run(t, e, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"00\", 0x1)\n")
	invalid := run(t, e, "read(0xffffffffffffffff, &b\"00\", 0x1)\n")
	vTrace := valid.CallTraces[1]
	iTrace := invalid.CallTraces[0]
	if len(iTrace) >= len(vTrace) {
		t.Fatalf("invalid-fd path (%d blocks) not shorter than valid path (%d)", len(iTrace), len(vTrace))
	}
	if !valid.Succeeded[1] {
		t.Fatal("read with valid fd did not succeed")
	}
	if invalid.Succeeded[0] {
		t.Fatal("read with invalid fd succeeded")
	}
}

func TestCloseInvalidatesHandle(t *testing.T) {
	e := New(testKernel)
	res := run(t, e,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"close(r0)\n"+
			"read(r0, &b\"00\", 0x1)\n")
	if res.Succeeded[2] {
		t.Fatal("read after close succeeded")
	}
}

func TestArgumentsChangeCoverage(t *testing.T) {
	// Different flag values must steer different kernel paths for at least
	// some argument choices (the premise of argument mutation).
	e := New(testKernel)
	base := run(t, e, "r0 = open(\"./file0\", 0x0, 0x0)\n")
	diff := false
	for _, flags := range []string{"0x1", "0x2", "0x40", "0x42", "0x200", "0x4042"} {
		res := run(t, e, "r0 = open(\"./file0\", "+flags+", 0x0)\n")
		if len(res.CallTraces[0]) != len(base.CallTraces[0]) {
			diff = true
			break
		}
		for j := range res.CallTraces[0] {
			if res.CallTraces[0][j] != base.CallTraces[0][j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("no flag value changed open's kernel path")
	}
}

func TestATABugTriggers(t *testing.T) {
	// The Table-4 ATA bug: the exact chain from the paper must crash.
	e := New(testKernel)
	res := run(t, e,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"r1 = openat$scsi(r0, \"./sg0\", 0x2, 0x0)\n"+
			// cmd=SCSI_IOCTL_SEND_COMMAND(0x1); hdr: opcode=ATA_16(0x85),
			// tf{proto=PIO(1), command=NOP(0), nsect,lbal,lbam,lbah,device},
			// inlen=0x400 (>512), outlen, data.
			"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n")
	if res.Crash == nil {
		t.Fatal("ATA bug chain did not crash")
	}
	if res.Crash.Title != "KASAN: out-of-bounds Write in ata_pio_sector" {
		t.Fatalf("wrong crash: %s", res.Crash.Title)
	}
	if res.CrashCall != 2 {
		t.Fatalf("crash attributed to call %d", res.CrashCall)
	}
}

func TestATABugNeedsFullChain(t *testing.T) {
	// Breaking any single constraint must avoid the crash.
	e := New(testKernel)
	variants := []string{
		// wrong cmd
		"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x5382, &{0x85, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n",
		// wrong opcode
		"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x12, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n",
		// wrong protocol (DMA)
		"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x2, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n",
		// wrong ATA command (IDENTIFY)
		"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x1, 0xec, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n",
		// inlen within bounds
		"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x100, 0x0, &b\"00\"})\n",
	}
	prefix := "r0 = open(\"./file0\", 0x0, 0x0)\nr1 = openat$scsi(r0, \"./sg0\", 0x2, 0x0)\n"
	for i, v := range variants {
		res := run(t, e, prefix+v)
		if res.Crash != nil {
			t.Fatalf("variant %d crashed (%s) despite broken constraint", i, res.Crash.Title)
		}
	}
}

func TestCounterBugNeedsAccumulatedState(t *testing.T) {
	// Table-4 bug #6 requires ops_fs > 12 before fsync.
	e := New(testKernel)
	var text string
	text = "r0 = open(\"./file0\", 0x0, 0x0)\nfsync(r0)\n"
	if res := run(t, e, text); res.Crash != nil {
		t.Fatalf("fsync crashed without pressure: %s", res.Crash.Title)
	}
	text = "r0 = open(\"./file0\", 0x0, 0x0)\n"
	for i := 0; i < 14; i++ {
		text += "fsync(r0)\n"
	}
	res := run(t, e, text)
	if res.Crash == nil {
		t.Fatal("fsync under pressure did not crash")
	}
	if res.Crash.Title != "kernel BUG in ext4_do_writepages" {
		t.Fatalf("wrong crash: %s", res.Crash.Title)
	}
}

func TestNullPointerTakesShallowPath(t *testing.T) {
	e := New(testKernel)
	withPtr := run(t, e, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"0000\", 0x2)\n")
	nullPtr := run(t, e, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, nil, 0x2)\n")
	// Programs must both run; traces may differ but must be well-formed.
	if len(withPtr.CallTraces[1]) == 0 || len(nullPtr.CallTraces[1]) == 0 {
		t.Fatal("empty traces")
	}
}

func TestNoiseModelPerturbsTraces(t *testing.T) {
	text := "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"00\", 0x1)\n"
	noisy := New(testKernel).WithNoise(&NoiseModel{Rand: rng.New(1), InterruptProb: 1.0})
	clean := New(testKernel)
	p := prog.MustParse(testKernel.Target, text)
	nres, err := noisy.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := clean.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Cost <= cres.Cost {
		t.Fatalf("noise did not add background coverage: %d vs %d", nres.Cost, cres.Cost)
	}
}

func TestSharedStateCarriesOver(t *testing.T) {
	e := New(testKernel).WithNoise(&NoiseModel{Rand: rng.New(2), SharedState: true})
	text := "r0 = open(\"./file0\", 0x0, 0x0)\nfsync(r0)\n"
	// With shared state, fs op counters accumulate across runs; eventually
	// the counter-gated writepages bug fires even though a single run never
	// reaches 12 fs ops.
	crashed := false
	for i := 0; i < 30; i++ {
		p := prog.MustParse(testKernel.Target, text)
		res, err := e.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crash != nil {
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("shared state never accumulated to the counter bug")
	}
}

func TestGeneratedProgramsExecute(t *testing.T) {
	e := New(testKernel)
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(77)
	for i := 0; i < 300; i++ {
		p := g.Generate(r, 1+r.Intn(6))
		if _, err := e.Run(p); err != nil {
			t.Fatalf("generated program failed to execute: %v\n%s", err, p.Serialize())
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	e := New(testKernel)
	g := prog.NewGenerator(testKernel.Target)
	p := g.Generate(rng.New(1), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
