package qgraph

import (
	"container/list"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
)

// QueryKey is the exported form of the cache's 128-bit query fingerprint,
// so campaign-side accounting (fuzzer cache simulation) can key the same
// space the serving cache does without rebuilding graphs.
type QueryKey struct {
	lo, hi uint64
}

// HashQuery fingerprints a (program, traces, targets) query exactly as the
// serving cache does: equal inputs produce equal keys on both sides.
func HashQuery(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) QueryKey {
	k := hashQuery(p, traces, targets)
	return QueryKey{lo: k.lo, hi: k.hi}
}

// CacheSim replays the serving Cache's LRU policy over a deterministic key
// stream. The real cache counts hits and misses in wall-clock arrival order,
// which makes the split schedule-dependent under concurrent serving workers;
// the simulator is fed the same keys in the campaign's reconcile order
// (submission order per VM, VM order at each epoch barrier), so the split is
// a pure function of the seed. It models exactly the Cache policy — hit
// promotes to most-recently-used, miss inserts at the front and evicts past
// capacity — and is not safe for concurrent use: the single reconciler owns
// it.
type CacheSim struct {
	cap    int
	ll     *list.List
	m      map[QueryKey]*list.Element
	hits   int64
	misses int64
}

// NewCacheSim creates a simulator mirroring a Cache of the given capacity.
func NewCacheSim(capacity int) *CacheSim {
	if capacity <= 0 {
		capacity = 1
	}
	return &CacheSim{cap: capacity, ll: list.New(), m: make(map[QueryKey]*list.Element, capacity)}
}

// Touch folds one query into the simulated LRU and reports whether it was a
// hit.
func (s *CacheSim) Touch(k QueryKey) bool {
	if el, ok := s.m[k]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return true
	}
	s.misses++
	s.m[k] = s.ll.PushFront(k)
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.m, last.Value.(QueryKey))
	}
	return false
}

// Stats returns the accumulated hit/miss counts.
func (s *CacheSim) Stats() (hits, misses int64) { return s.hits, s.misses }
