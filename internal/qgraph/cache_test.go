package qgraph

import (
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

func cacheFixture(t testing.TB) (*Builder, []*prog.Prog, [][][]kernel.BlockID, [][]kernel.BlockID) {
	t.Helper()
	k := kernel.MustBuild("6.8")
	b := NewBuilder(k, cfa.New(k)).WithCache(4)
	g := prog.NewGenerator(k.Target)
	r := rng.New(77)
	var progs []*prog.Prog
	var traces [][][]kernel.BlockID
	var targets [][]kernel.BlockID
	for i := 0; i < 8; i++ {
		p := g.Generate(r, 2+r.Intn(3))
		progs = append(progs, p)
		tr := make([][]kernel.BlockID, len(p.Calls))
		for ci := range tr {
			tr[ci] = []kernel.BlockID{kernel.BlockID(i), kernel.BlockID(i + 1)}
		}
		traces = append(traces, tr)
		targets = append(targets, []kernel.BlockID{kernel.BlockID(i * 3)})
	}
	return b, progs, traces, targets
}

func TestCacheHitReturnsSameGraph(t *testing.T) {
	b, progs, traces, targets := cacheFixture(t)
	g1 := b.Build(progs[0], traces[0], targets[0])
	g2 := b.Build(progs[0], traces[0], targets[0])
	if g1 != g2 {
		t.Fatal("repeat query did not return the cached graph pointer")
	}
	st := b.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	b, progs, traces, targets := cacheFixture(t)
	g1 := b.Build(progs[0], traces[0], targets[0])
	// Different targets: must miss and rebuild.
	g2 := b.Build(progs[0], traces[0], []kernel.BlockID{999})
	if g1 == g2 {
		t.Fatal("different targets served from cache")
	}
	// Different traces: must miss.
	other := make([][]kernel.BlockID, len(traces[0]))
	copy(other, traces[0])
	if len(other) > 0 {
		other[0] = []kernel.BlockID{1234}
	}
	g3 := b.Build(progs[0], other, targets[0])
	if g3 == g1 {
		t.Fatal("different traces served from cache")
	}
	// Different program: must miss.
	g4 := b.Build(progs[1], traces[0], targets[0])
	if g4 == g1 {
		t.Fatal("different program served from cache")
	}
	if hits := b.Cache.Stats().Hits; hits != 0 {
		t.Fatalf("unexpected hits: %d", hits)
	}
}

func TestCacheEviction(t *testing.T) {
	b, progs, traces, targets := cacheFixture(t)
	g0 := b.Build(progs[0], traces[0], targets[0])
	// Fill past capacity 4; progs[0] becomes least recently used.
	for i := 1; i < 6; i++ {
		b.Build(progs[i], traces[i], targets[i])
	}
	if n := b.Cache.Stats().Len; n != 4 {
		t.Fatalf("cache len %d, want capacity 4", n)
	}
	if g := b.Build(progs[0], traces[0], targets[0]); g == g0 {
		t.Fatal("evicted entry still served from cache")
	}
	// progs[5] was just inserted and must still be cached.
	before := b.Cache.Stats().Hits
	b.Build(progs[5], traces[5], targets[5])
	if b.Cache.Stats().Hits != before+1 {
		t.Fatal("recent entry was evicted")
	}
}

func TestCacheLRUPromotion(t *testing.T) {
	b, progs, traces, targets := cacheFixture(t)
	for i := 0; i < 4; i++ {
		b.Build(progs[i], traces[i], targets[i])
	}
	// Touch progs[0] so progs[1] is now the LRU entry...
	b.Build(progs[0], traces[0], targets[0])
	// ...then insert a 5th graph, evicting progs[1].
	b.Build(progs[4], traces[4], targets[4])
	before := b.Cache.Stats().Hits
	b.Build(progs[0], traces[0], targets[0])
	if b.Cache.Stats().Hits != before+1 {
		t.Fatal("promoted entry was evicted instead of the LRU one")
	}
	b.Build(progs[1], traces[1], targets[1])
	if b.Cache.Stats().Hits != before+1 {
		t.Fatal("LRU entry survived past capacity")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	b, progs, traces, targets := cacheFixture(t)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				idx := (w + i) % len(progs)
				g := b.Build(progs[idx], traces[idx], targets[idx])
				if g == nil || len(g.Vertices) == 0 {
					t.Error("bad graph from concurrent Build")
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
