package qgraph

import (
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func buildGraph(t testing.TB, text string, targets []kernel.BlockID) (*Graph, *prog.Prog, *exec.Result) {
	t.Helper()
	p := prog.MustParse(testKernel.Target, text)
	res, err := exec.New(testKernel).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	g := NewBuilder(testKernel, testAn).Build(p, res.CallTraces, targets)
	return g, p, res
}

const simpleProg = "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n"

func TestGraphShape(t *testing.T) {
	g, p, _ := buildGraph(t, simpleProg, nil)
	st := g.Stats()
	if st.Syscalls != 2 {
		t.Fatalf("syscall vertices = %d", st.Syscalls)
	}
	if st.Args != p.NumSlots() {
		t.Fatalf("arg vertices = %d, want %d", st.Args, p.NumSlots())
	}
	if st.Covered == 0 || st.Alternatives == 0 {
		t.Fatalf("coverage part empty: %+v", st)
	}
	if st.CallOrder != 1 {
		t.Fatalf("call-order edges = %d", st.CallOrder)
	}
	if st.CtxSwitch != 4 { // entry+exit per call
		t.Fatalf("ctx-switch edges = %d", st.CtxSwitch)
	}
	if st.CoveredFlow == 0 || st.UncoveredFlow == 0 {
		t.Fatalf("flow edges missing: %+v", st)
	}
}

func TestArgVerticesAlignWithSlots(t *testing.T) {
	g, p, _ := buildGraph(t, simpleProg, nil)
	all := p.AllSlots()
	if len(g.ArgVertices) != len(all) {
		t.Fatalf("%d arg vertices for %d slots", len(g.ArgVertices), len(all))
	}
	for i, vi := range g.ArgVertices {
		v := g.Vertices[vi]
		if v.Kind != VArg {
			t.Fatalf("arg vertex %d has kind %v", i, v.Kind)
		}
		if v.Slot != all[i] || g.Slots[i] != all[i] {
			t.Fatalf("arg vertex %d slot %+v, want %+v", i, v.Slot, all[i])
		}
		slot := p.Calls[v.Slot.Call].Meta.Slots()[v.Slot.Slot]
		if v.TopArg != slot.Path[0] || v.Depth != len(slot.Path)-1 || v.TypeKind != slot.Type.Kind {
			t.Fatalf("arg vertex %d features mismatch: %+v vs slot %+v", i, v, slot)
		}
	}
}

func TestEdgesWellFormed(t *testing.T) {
	g, _, _ := buildGraph(t, simpleProg, nil)
	n := len(g.Vertices)
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			t.Fatalf("edge %+v out of range (%d vertices)", e, n)
		}
	}
}

func TestTargetMarking(t *testing.T) {
	g0, p, res := buildGraph(t, simpleProg, nil)
	// Pick a frontier block as target.
	var frontier kernel.BlockID = -1
	for _, v := range g0.Vertices {
		if v.Kind == VAlternative {
			frontier = v.Block
			break
		}
	}
	if frontier < 0 {
		t.Fatal("no alternatives")
	}
	g := NewBuilder(testKernel, testAn).Build(p, res.CallTraces, []kernel.BlockID{frontier})
	st := g.Stats()
	if st.Targets != 1 {
		t.Fatalf("targets = %d, want 1", st.Targets)
	}
	found := false
	for _, v := range g.Vertices {
		if v.Kind == VTarget && v.Block == frontier {
			found = true
			if len(v.Tokens) == 0 {
				t.Fatal("target vertex has no tokens")
			}
		}
	}
	if !found {
		t.Fatal("target vertex missing")
	}
}

func TestOffFrontierTargetIsolated(t *testing.T) {
	// Use a block from an entirely different handler as target: it must
	// appear as an isolated target vertex.
	far := testKernel.Handler("shmget").Entry
	g, _, _ := buildGraph(t, simpleProg, []kernel.BlockID{far})
	found := false
	for vi, v := range g.Vertices {
		if v.Kind == VTarget && v.Block == far {
			found = true
			for _, e := range g.Edges {
				if e.From == vi || e.To == vi {
					t.Fatal("off-frontier target has edges")
				}
			}
		}
	}
	if !found {
		t.Fatal("off-frontier target vertex missing")
	}
}

func TestResourceFlowEdges(t *testing.T) {
	g, p, _ := buildGraph(t, simpleProg, nil)
	// read's fd slot consumes open's result: there must be an EArgInOut
	// edge from open's syscall vertex (vertex of call 0) to that arg vertex.
	var openVertex int = -1
	for vi, v := range g.Vertices {
		if v.Kind == VSyscall && v.CallIdx == 0 {
			openVertex = vi
		}
	}
	var fdArgVertex int = -1
	for i, vi := range g.ArgVertices {
		v := g.Vertices[vi]
		if v.Slot.Call == 1 && v.TypeKind == spec.KindResource {
			fdArgVertex = vi
		}
		_ = i
	}
	if openVertex < 0 || fdArgVertex < 0 {
		t.Fatal("vertices not found")
	}
	found := false
	for _, e := range g.Edges {
		if e.Kind == EArgInOut && e.From == openVertex && e.To == fdArgVertex {
			found = true
		}
	}
	if !found {
		t.Fatal("resource data-flow edge missing")
	}
	_ = p
}

func TestAbsentSlotFlagged(t *testing.T) {
	g, _, _ := buildGraph(t, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, nil, 0x0)\n", nil)
	absent := 0
	for _, vi := range g.ArgVertices {
		if g.Vertices[vi].Absent {
			absent++
		}
	}
	if absent == 0 {
		t.Fatal("no absent slots behind null pointer")
	}
}

func TestDropCtxSwitchAblation(t *testing.T) {
	p := prog.MustParse(testKernel.Target, simpleProg)
	res, err := exec.New(testKernel).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(testKernel, testAn)
	b.DropCtxSwitch = true
	g := b.Build(p, res.CallTraces, nil)
	if g.Stats().CtxSwitch != 0 {
		t.Fatal("ablation did not drop context-switch edges")
	}
}

func TestCoveredVerticesDeduplicated(t *testing.T) {
	// Two reads cover overlapping handler blocks; they must share vertices.
	g, _, res := buildGraph(t,
		"r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"00\", 0x1)\nread(r0, &b\"00\", 0x1)\n", nil)
	unique := map[kernel.BlockID]bool{}
	for _, tr := range res.CallTraces {
		for _, b := range tr {
			unique[b] = true
		}
	}
	if got := g.Stats().Covered; got != len(unique) {
		t.Fatalf("covered vertices = %d, want %d unique blocks", got, len(unique))
	}
}

func TestGraphSizeScales(t *testing.T) {
	// §5.1 reports thousands of vertices for 5-call tests; we just assert
	// that graphs are substantial and grow with program size.
	gen := prog.NewGenerator(testKernel.Target)
	e := exec.New(testKernel)
	b := NewBuilder(testKernel, testAn)
	r := rng.New(3)
	small, large := 0, 0
	for i := 0; i < 5; i++ {
		p1 := gen.Generate(r, 1)
		res1, err := e.Run(p1)
		if err != nil {
			t.Fatal(err)
		}
		small += len(b.Build(p1, res1.CallTraces, nil).Vertices)
		p5 := gen.Generate(r, 5)
		res5, err := e.Run(p5)
		if err != nil {
			t.Fatal(err)
		}
		large += len(b.Build(p5, res5.CallTraces, nil).Vertices)
	}
	if large <= small {
		t.Fatalf("graph size does not scale: 1-call total %d, 5-call total %d", small, large)
	}
	if large/5 < 50 {
		t.Fatalf("5-call graphs average only %d vertices", large/5)
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	p := prog.MustParse(testKernel.Target, simpleProg)
	res, err := exec.New(testKernel).Run(p)
	if err != nil {
		b.Fatal(err)
	}
	builder := NewBuilder(testKernel, testAn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = builder.Build(p, res.CallTraces, nil)
	}
}
