// Package qgraph builds the argument-mutation query graph of §3.2: a single
// graph joining the test program's syntax tree with the kernel coverage it
// triggered, connected by explicit kernel-user context-switch edges.
//
// Vertices are system calls, argument slots, covered kernel blocks,
// uncovered "alternative path entry" blocks one branch away, and the subset
// of alternatives marked as the desired targets. Edges capture call
// ordering, argument ordering, argument data flow, covered and uncovered
// kernel control flow, and the context switches between user and kernel
// space. PMM consumes this graph directly.
package qgraph

import (
	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/spec"
	"github.com/repro/snowplow/internal/trace"
)

// VertexKind classifies graph vertices.
type VertexKind int

// The vertex kinds of Figure 5.
const (
	VSyscall     VertexKind = iota // a system-call invocation of the test
	VArg                           // one flattened argument slot
	VCovered                       // a kernel block the test covered
	VAlternative                   // an uncovered block one branch away
	VTarget                        // an alternative marked as desired target
)

// String names the kind.
func (k VertexKind) String() string {
	switch k {
	case VSyscall:
		return "syscall"
	case VArg:
		return "argument"
	case VCovered:
		return "covered"
	case VAlternative:
		return "alternative"
	case VTarget:
		return "target"
	default:
		return "vertex"
	}
}

// EdgeKind classifies graph edges.
type EdgeKind int

// The edge kinds of Figure 5.
const (
	ECallOrder     EdgeKind = iota // syscall i -> syscall i+1
	EArgOrder                      // argument slot j -> slot j+1 within a call
	EArgInOut                      // data flow between calls and arguments
	ECoveredFlow                   // executed kernel control-flow edge
	EUncoveredFlow                 // branch-not-taken edge to an alternative
	ECtxSwitch                     // kernel-user context switch
)

// NumEdgeKinds is the size of the edge-kind vocabulary.
const NumEdgeKinds = 6

// String names the kind.
func (k EdgeKind) String() string {
	switch k {
	case ECallOrder:
		return "call-order"
	case EArgOrder:
		return "arg-order"
	case EArgInOut:
		return "arg-in/out"
	case ECoveredFlow:
		return "covered-flow"
	case EUncoveredFlow:
		return "uncovered-flow"
	case ECtxSwitch:
		return "ctx-switch"
	default:
		return "edge"
	}
}

// Vertex is one graph node.
type Vertex struct {
	Kind VertexKind

	// VSyscall: the call's index in the program and its variant name.
	CallIdx int
	Name    string

	// VArg: the slot it represents and its static features.
	Slot     prog.GlobalSlot
	TypeKind spec.TypeKind
	TopArg   int  // top-level argument index (maps to the ABI register)
	Depth    int  // nesting depth of the slot path
	Absent   bool // slot currently hidden behind a null pointer

	// VCovered / VAlternative / VTarget: the kernel block and its tokens.
	Block  kernel.BlockID
	Tokens []string
}

// Edge is one directed graph edge.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is a complete mutation query.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge
	// ArgVertices holds the vertex indices of the argument slots, aligned
	// with prog.Prog.AllSlots() order — the prediction surface.
	ArgVertices []int
	// Slots mirrors ArgVertices with the identified slots.
	Slots []prog.GlobalSlot
}

// Stats summarizes a graph for §5.1-style reporting.
type Stats struct {
	Syscalls, Args, Covered, Alternatives, Targets int
	CallOrder, ArgOrder, ArgInOut                  int
	CoveredFlow, UncoveredFlow, CtxSwitch          int
}

// Stats computes vertex/edge kind counts.
func (g *Graph) Stats() Stats {
	var s Stats
	for _, v := range g.Vertices {
		switch v.Kind {
		case VSyscall:
			s.Syscalls++
		case VArg:
			s.Args++
		case VCovered:
			s.Covered++
		case VAlternative:
			s.Alternatives++
		case VTarget:
			s.Targets++
		}
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case ECallOrder:
			s.CallOrder++
		case EArgOrder:
			s.ArgOrder++
		case EArgInOut:
			s.ArgInOut++
		case ECoveredFlow:
			s.CoveredFlow++
		case EUncoveredFlow:
			s.UncoveredFlow++
		case ECtxSwitch:
			s.CtxSwitch++
		}
	}
	return s
}

// Builder constructs query graphs against one kernel.
type Builder struct {
	K  *kernel.Kernel
	An *cfa.Analysis
	// DropCtxSwitch severs the kernel-user context-switch edges; used only
	// by the representation ablation.
	DropCtxSwitch bool
	// MaxAlternatives caps the alternative vertices per graph to bound
	// model input size (0 = unlimited).
	MaxAlternatives int
	// Cache, when non-nil, memoizes built graphs by the fingerprint of the
	// (program, traces, targets) triple (see WithCache). Cached graphs are
	// shared between callers and must be treated as immutable.
	Cache *Cache
}

// NewBuilder returns a Builder over the kernel.
func NewBuilder(k *kernel.Kernel, an *cfa.Analysis) *Builder {
	return &Builder{K: k, An: an, MaxAlternatives: 2048}
}

// WithCache attaches an LRU graph-encoding cache of the given capacity and
// returns the builder for chaining.
func (b *Builder) WithCache(capacity int) *Builder {
	b.Cache = NewCache(capacity)
	return b
}

// Build assembles the query graph for a program, its per-call execution
// traces, and the desired target blocks. Targets should be alternative path
// entries of the coverage; target blocks not on the frontier are added as
// isolated target vertices (the model sees them but without local context).
// With a Cache attached, a structurally identical repeat query returns the
// cached graph without rebuilding.
func (b *Builder) Build(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) *Graph {
	g, _ := b.BuildCached(p, traces, targets)
	return g
}

// BuildCached is Build plus a report of whether the graph was served from
// the attached cache (always false without one), so multi-tenant serving
// can attribute the shared cache's hit/miss traffic to the querying tenant.
func (b *Builder) BuildCached(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) (*Graph, bool) {
	if b.Cache == nil {
		return b.build(p, traces, targets), false
	}
	key := hashQuery(p, traces, targets)
	if g, ok := b.Cache.get(key); ok {
		return g, true
	}
	g := b.build(p, traces, targets)
	b.Cache.put(key, g)
	return g, false
}

// build is the uncached graph construction.
func (b *Builder) build(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) *Graph {
	g := &Graph{}
	targetSet := map[kernel.BlockID]bool{}
	for _, t := range targets {
		targetSet[t] = true
	}

	// Program tree: syscall vertices and argument vertices.
	callVertex := make([]int, len(p.Calls))
	for ci, call := range p.Calls {
		callVertex[ci] = len(g.Vertices)
		g.Vertices = append(g.Vertices, Vertex{Kind: VSyscall, CallIdx: ci, Name: call.Meta.Name})
		if ci > 0 {
			g.Edges = append(g.Edges, Edge{From: callVertex[ci-1], To: callVertex[ci], Kind: ECallOrder})
		}
		slotArgs := call.SlotArgs()
		prevArg := -1
		for si, slot := range call.Meta.Slots() {
			av := len(g.Vertices)
			v := Vertex{
				Kind:     VArg,
				Slot:     prog.GlobalSlot{Call: ci, Slot: si},
				TypeKind: slot.Type.Kind,
				TopArg:   slot.Path[0],
				Depth:    len(slot.Path) - 1,
				Absent:   slotArgs[si] == nil,
				// Access-path tokens (ABI register, struct offsets) share
				// the kernel-disassembly vocabulary, letting the model
				// align arguments with the blocks that inspect them.
				Tokens: kernel.SlotAccessTokens(call.Meta, si),
			}
			g.Vertices = append(g.Vertices, v)
			g.ArgVertices = append(g.ArgVertices, av)
			g.Slots = append(g.Slots, v.Slot)
			// Data flow: argument feeds its call.
			g.Edges = append(g.Edges, Edge{From: av, To: callVertex[ci], Kind: EArgInOut})
			// Resource flow: producing call feeds the argument.
			if ra, ok := slotArgs[si].(*prog.ResultArg); ok && ra.Ref >= 0 && ra.Ref < ci {
				g.Edges = append(g.Edges, Edge{From: callVertex[ra.Ref], To: av, Kind: EArgInOut})
			}
			// Argument ordering chain.
			if prevArg >= 0 {
				g.Edges = append(g.Edges, Edge{From: prevArg, To: av, Kind: EArgOrder})
			}
			prevArg = av
		}
	}

	// Coverage graph: one vertex per unique covered block, edges for unique
	// consecutive pairs, per call.
	covVertex := map[kernel.BlockID]int{}
	covered := trace.BlockSet{}
	addCov := func(id kernel.BlockID) int {
		if vi, ok := covVertex[id]; ok {
			return vi
		}
		vi := len(g.Vertices)
		blk := b.K.Block(id)
		g.Vertices = append(g.Vertices, Vertex{Kind: VCovered, Block: id, Tokens: blk.Tokens})
		covVertex[id] = vi
		covered.Add(id)
		return vi
	}
	seenEdge := map[trace.Edge]bool{}
	for ci, tr := range traces {
		if ci >= len(p.Calls) {
			break
		}
		var first, last int
		for i, id := range tr {
			vi := addCov(id)
			if i == 0 {
				first = vi
			}
			last = vi
			if i > 0 {
				e := trace.MakeEdge(tr[i-1], id)
				if !seenEdge[e] {
					seenEdge[e] = true
					g.Edges = append(g.Edges, Edge{From: covVertex[tr[i-1]], To: vi, Kind: ECoveredFlow})
				}
			}
		}
		if len(tr) > 0 && !b.DropCtxSwitch {
			g.Edges = append(g.Edges,
				Edge{From: callVertex[ci], To: first, Kind: ECtxSwitch},
				Edge{From: last, To: callVertex[ci], Kind: ECtxSwitch})
		}
	}

	// Alternative path entries: uncovered blocks one branch away.
	alts := b.An.Frontier(covered)
	if b.MaxAlternatives > 0 && len(alts) > b.MaxAlternatives {
		alts = alts[:b.MaxAlternatives]
	}
	altVertex := map[kernel.BlockID]int{}
	for _, alt := range alts {
		vi, ok := altVertex[alt.Entry]
		if !ok {
			vi = len(g.Vertices)
			kind := VAlternative
			if targetSet[alt.Entry] {
				kind = VTarget
			}
			blk := b.K.Block(alt.Entry)
			g.Vertices = append(g.Vertices, Vertex{Kind: kind, Block: alt.Entry, Tokens: blk.Tokens})
			altVertex[alt.Entry] = vi
		}
		g.Edges = append(g.Edges, Edge{From: covVertex[alt.From], To: vi, Kind: EUncoveredFlow})
	}

	// Targets that are not on the visible frontier still appear, isolated.
	for _, t := range targets {
		if _, ok := altVertex[t]; ok {
			continue
		}
		if _, ok := covVertex[t]; ok {
			continue
		}
		vi := len(g.Vertices)
		blk := b.K.Block(t)
		g.Vertices = append(g.Vertices, Vertex{Kind: VTarget, Block: t, Tokens: blk.Tokens})
		altVertex[t] = vi
	}

	return g
}
