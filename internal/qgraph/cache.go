package qgraph

import (
	"container/list"
	"encoding/binary"
	"sync"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
)

// cacheKey is a 128-bit fingerprint of a (program, traces, targets) query.
// Two independent FNV-1a streams over the same byte sequence make an
// accidental collision across a campaign's few million distinct queries
// vanishingly unlikely.
type cacheKey struct {
	lo, hi uint64
}

const (
	fnvOffset  = 0xcbf29ce484222325
	fnvOffset2 = 0x84222325cbf29ce4
	fnvPrime   = 0x100000001b3
)

// hasher accumulates the dual FNV-1a streams.
type hasher struct {
	lo, hi uint64
}

func newHasher() hasher { return hasher{lo: fnvOffset, hi: fnvOffset2} }

func (h *hasher) writeByte(b byte) {
	h.lo = (h.lo ^ uint64(b)) * fnvPrime
	h.hi = (h.hi ^ uint64(b)) * fnvPrime
}

func (h *hasher) writeString(s string) {
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

func (h *hasher) writeUint64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for _, b := range buf {
		h.writeByte(b)
	}
}

// hashQuery fingerprints the full Build input: the serialized program, the
// per-call coverage traces, and the desired target blocks. Any difference
// in any of the three produces a different key, so a hit is only ever
// served for a structurally identical query.
func hashQuery(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) cacheKey {
	h := newHasher()
	h.writeString(p.Serialize())
	h.writeUint64(uint64(len(traces)))
	for _, tr := range traces {
		h.writeUint64(uint64(len(tr)))
		for _, b := range tr {
			h.writeUint64(uint64(b))
		}
	}
	h.writeUint64(uint64(len(targets)))
	for _, b := range targets {
		h.writeUint64(uint64(b))
	}
	return cacheKey{lo: h.lo, hi: h.hi}
}

// Cache is a thread-safe LRU over built query graphs, keyed by the
// fingerprint of the (program, traces, targets) triple. The fuzzer
// re-queries the same program against the same coverage signature whenever
// a mutation fails to change behavior or a seed is revisited, and graph
// construction (disassembly token walks, frontier analysis) dominates those
// queries; the cache converts them into a map lookup.
//
// Cached graphs are shared: Build callers must treat the returned *Graph as
// immutable. The model's forward pass only reads it.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	m      map[cacheKey]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key cacheKey
	g   *Graph
}

// NewCache creates an LRU cache holding up to capacity graphs.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element, capacity)}
}

// get returns the cached graph for key, if any, promoting it to
// most-recently-used.
func (c *Cache) get(key cacheKey) (*Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).g, true
	}
	c.misses++
	return nil, false
}

// put inserts a graph, evicting the least-recently-used entry when full.
func (c *Cache) put(key cacheKey, g *Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).g = g
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, g: g})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// Capacity returns the cache's configured entry bound.
func (c *Cache) Capacity() int { return c.cap }

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits, Misses int64
	// Len is the current number of cached graphs.
	Len int
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Len: c.ll.Len()}
}
