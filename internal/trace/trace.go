// Package trace post-processes execution traces into coverage, following
// §5.3.1: raw traces are ordered basic-block sequences; edge coverage is the
// set of unique directional basic-block pairs appearing consecutively.
//
// Coverage sets are paged bitmaps rather than hash sets: every execution of
// the campaign loop merges its edge set into corpus totals, so membership,
// merge and new-edge counting are the hottest operations in the fuzzer.
// Word-wise OR plus popcount makes Merge/NewEdges run 64 edges per
// instruction, and the page layout keeps the sparse 64-bit edge space
// compact. Reusable scratch buffers (EdgesOfInto, BlockSetOfInto) let the
// per-execution triage path run without allocating fresh sets.
package trace

import (
	"math/bits"
	"sort"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
)

// Edge is a directional pair of consecutively executed basic blocks.
type Edge uint64

// MakeEdge packs two block IDs into an Edge.
func MakeEdge(from, to kernel.BlockID) Edge {
	return Edge(uint64(uint32(from))<<32 | uint64(uint32(to)))
}

// From returns the edge's source block.
func (e Edge) From() kernel.BlockID { return kernel.BlockID(e >> 32) }

// To returns the edge's destination block.
func (e Edge) To() kernel.BlockID { return kernel.BlockID(uint32(e)) }

// pageBits sizes a bitmap page at 1<<pageBits bits (8 words of 64).
const pageBits = 9

const (
	pageWords = 1 << (pageBits - 6) // uint64 words per page
	pageMask  = 1<<pageBits - 1
)

// coverPage is one 512-bit page of the edge bitmap.
type coverPage [pageWords]uint64

// Cover is a set of covered edges, stored as a paged bitmap keyed by the
// high bits of the edge value. The zero value is an empty cover ready to
// use.
type Cover struct {
	pages map[uint64]*coverPage
	n     int
	free  []*coverPage // recycled pages retained across Reset
}

// NewCover returns an empty cover.
func NewCover() *Cover { return &Cover{} }

// Len returns the number of covered edges (maintained incrementally; no
// popcount scan is needed on read).
func (c *Cover) Len() int { return c.n }

// Has reports whether the edge is covered.
func (c *Cover) Has(e Edge) bool {
	pg := c.pages[uint64(e)>>pageBits]
	if pg == nil {
		return false
	}
	off := uint64(e) & pageMask
	return pg[off>>6]&(1<<(off&63)) != 0
}

// page returns the page holding e, allocating (or recycling) it if needed.
func (c *Cover) page(key uint64) *coverPage {
	if c.pages == nil {
		c.pages = make(map[uint64]*coverPage)
	}
	pg := c.pages[key]
	if pg == nil {
		if n := len(c.free); n > 0 {
			pg = c.free[n-1]
			c.free = c.free[:n-1]
			*pg = coverPage{}
		} else {
			pg = new(coverPage)
		}
		c.pages[key] = pg
	}
	return pg
}

// Add inserts an edge, reporting whether it was new.
func (c *Cover) Add(e Edge) bool {
	pg := c.page(uint64(e) >> pageBits)
	off := uint64(e) & pageMask
	w, bit := off>>6, uint64(1)<<(off&63)
	if pg[w]&bit != 0 {
		return false
	}
	pg[w] |= bit
	c.n++
	return true
}

// Merge adds all of other's edges word-wise, returning how many were new.
func (c *Cover) Merge(other *Cover) int {
	n := 0
	for key, opg := range other.pages {
		pg := c.page(key)
		for w, ow := range opg {
			if nw := ow &^ pg[w]; nw != 0 {
				n += bits.OnesCount64(nw)
				pg[w] |= nw
			}
		}
	}
	c.n += n
	return n
}

// NewEdges counts other's edges that are not in c, without modifying
// either cover.
func (c *Cover) NewEdges(other *Cover) int {
	n := 0
	for key, opg := range other.pages {
		pg := c.pages[key]
		if pg == nil {
			for _, ow := range opg {
				n += bits.OnesCount64(ow)
			}
			continue
		}
		for w, ow := range opg {
			n += bits.OnesCount64(ow &^ pg[w])
		}
	}
	return n
}

// Diff returns the edges in c that are not in other, sorted.
func (c *Cover) Diff(other *Cover) []Edge {
	var out []Edge
	c.forEachPageSorted(func(key uint64, pg *coverPage) {
		opg := other.pages[key]
		for w, cw := range pg {
			if opg != nil {
				cw &^= opg[w]
			}
			appendBits(&out, key, w, cw)
		}
	})
	return out
}

// Edges returns the covered edges in sorted order.
func (c *Cover) Edges() []Edge {
	out := make([]Edge, 0, c.n)
	c.forEachPageSorted(func(key uint64, pg *coverPage) {
		for w, cw := range pg {
			appendBits(&out, key, w, cw)
		}
	})
	return out
}

// forEachPageSorted visits pages in ascending key order, so bit iteration
// yields edges sorted ascending.
func (c *Cover) forEachPageSorted(fn func(key uint64, pg *coverPage)) {
	keys := make([]uint64, 0, len(c.pages))
	for key := range c.pages {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		fn(key, c.pages[key])
	}
}

// appendBits appends every set bit of word w of the keyed page as an Edge.
func appendBits(out *[]Edge, key uint64, w int, word uint64) {
	base := key<<pageBits | uint64(w)<<6
	for word != 0 {
		*out = append(*out, Edge(base|uint64(bits.TrailingZeros64(word))))
		word &= word - 1
	}
}

// Clone returns a copy.
func (c *Cover) Clone() *Cover {
	out := &Cover{n: c.n}
	if len(c.pages) > 0 {
		out.pages = make(map[uint64]*coverPage, len(c.pages))
		for key, pg := range c.pages {
			cp := *pg
			out.pages[key] = &cp
		}
	}
	return out
}

// Reset empties the cover while retaining its pages as scratch capacity for
// reuse, so a hot loop can recompute per-execution coverage without
// allocating.
func (c *Cover) Reset() {
	for key, pg := range c.pages {
		c.free = append(c.free, pg)
		delete(c.pages, key)
	}
	c.n = 0
}

// EdgesOf extracts the edge coverage of an execution result: unique
// directional pairs of consecutive blocks within each call's trace.
func EdgesOf(res *exec.Result) *Cover {
	return EdgesOfInto(NewCover(), res)
}

// EdgesOfInto recomputes the edge coverage of res into c (after resetting
// it), reusing c's pages as scratch. It returns c.
func EdgesOfInto(c *Cover, res *exec.Result) *Cover {
	c.Reset()
	for _, tr := range res.CallTraces {
		for i := 1; i < len(tr); i++ {
			c.Add(MakeEdge(tr[i-1], tr[i]))
		}
	}
	return c
}

// CoverOfTraces recomputes edge coverage from bare per-call block traces,
// applying the same consecutive-pair rule as EdgesOf. Cluster workers ship
// corpus entries over the wire as (program text, traces); the receiver
// rebuilds cover and blocks from the traces so the derived sets can never
// disagree with the trace payload.
func CoverOfTraces(traces [][]kernel.BlockID) *Cover {
	c := NewCover()
	for _, tr := range traces {
		for i := 1; i < len(tr); i++ {
			c.Add(MakeEdge(tr[i-1], tr[i]))
		}
	}
	return c
}

// BlockSetOfTraces recomputes block coverage from bare per-call block
// traces (the wire-entry counterpart of BlockSetOfInto).
func BlockSetOfTraces(traces [][]kernel.BlockID) BlockSet {
	var s BlockSet
	for _, tr := range traces {
		for _, b := range tr {
			s.Add(b)
		}
	}
	return s
}

// BlocksOf extracts the block coverage of an execution result, as an
// ordered deduplicated slice.
func BlocksOf(res *exec.Result) []kernel.BlockID {
	var s BlockSet
	BlockSetOfInto(&s, res)
	out := make([]kernel.BlockID, 0, s.Len())
	s.ForEach(func(b kernel.BlockID) { out = append(out, b) })
	return out
}

// blockPageBits caps the dense bitmap at this many bits; block IDs are
// small dense kernel indices, so the overflow map stays empty in practice.
const maxDenseBlock = 1 << 22

// BlockSet is a set of covered blocks, stored as a growable dense bitmap
// (block IDs are small dense kernel indices) with an overflow map for
// out-of-range IDs. The zero value is an empty set ready to use.
type BlockSet struct {
	words []uint64
	extra map[kernel.BlockID]struct{} // negative or very large IDs
	n     int
}

// NewBlockSet builds a set from a slice.
func NewBlockSet(blocks []kernel.BlockID) BlockSet {
	var s BlockSet
	for _, b := range blocks {
		s.Add(b)
	}
	return s
}

// BlockSetOfInto recomputes the block coverage of res into s (after
// resetting it), reusing s's bitmap as scratch. It returns s.
func BlockSetOfInto(s *BlockSet, res *exec.Result) *BlockSet {
	s.Reset()
	for _, tr := range res.CallTraces {
		for _, b := range tr {
			s.Add(b)
		}
	}
	return s
}

// Len returns the number of blocks in the set.
func (s BlockSet) Len() int { return s.n }

// Has reports membership.
func (s BlockSet) Has(b kernel.BlockID) bool {
	if b >= 0 && b < maxDenseBlock {
		w := int(b) >> 6
		return w < len(s.words) && s.words[w]&(1<<(uint(b)&63)) != 0
	}
	_, ok := s.extra[b]
	return ok
}

// Add inserts a block, reporting whether it was new.
func (s *BlockSet) Add(b kernel.BlockID) bool {
	if b >= 0 && b < maxDenseBlock {
		w := int(b) >> 6
		if w >= len(s.words) {
			grown := make([]uint64, w+1)
			copy(grown, s.words)
			s.words = grown
		}
		bit := uint64(1) << (uint(b) & 63)
		if s.words[w]&bit != 0 {
			return false
		}
		s.words[w] |= bit
		s.n++
		return true
	}
	if _, ok := s.extra[b]; ok {
		return false
	}
	if s.extra == nil {
		s.extra = map[kernel.BlockID]struct{}{}
	}
	s.extra[b] = struct{}{}
	s.n++
	return true
}

// Merge adds all of other's blocks word-wise, returning how many were new.
func (s *BlockSet) Merge(other BlockSet) int {
	n := 0
	if len(other.words) > len(s.words) {
		grown := make([]uint64, len(other.words))
		copy(grown, s.words)
		s.words = grown
	}
	for w, ow := range other.words {
		if nw := ow &^ s.words[w]; nw != 0 {
			n += bits.OnesCount64(nw)
			s.words[w] |= nw
		}
	}
	s.n += n
	for b := range other.extra {
		if s.Add(b) {
			n++
		}
	}
	return n
}

// ForEach visits every block in ascending order (overflow IDs last).
func (s BlockSet) ForEach(fn func(kernel.BlockID)) {
	for w, word := range s.words {
		base := kernel.BlockID(w << 6)
		for word != 0 {
			fn(base + kernel.BlockID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	if len(s.extra) > 0 {
		ex := make([]kernel.BlockID, 0, len(s.extra))
		for b := range s.extra {
			ex = append(ex, b)
		}
		sort.Slice(ex, func(i, j int) bool { return ex[i] < ex[j] })
		for _, b := range ex {
			fn(b)
		}
	}
}

// Slice returns the blocks in ascending order.
func (s BlockSet) Slice() []kernel.BlockID {
	out := make([]kernel.BlockID, 0, s.n)
	s.ForEach(func(b kernel.BlockID) { out = append(out, b) })
	return out
}

// Diff returns blocks in s not in other, sorted.
func (s BlockSet) Diff(other BlockSet) []kernel.BlockID {
	var out []kernel.BlockID
	s.ForEach(func(b kernel.BlockID) {
		if !other.Has(b) {
			out = append(out, b)
		}
	})
	return out
}

// Clone returns an independent copy.
func (s BlockSet) Clone() BlockSet {
	out := BlockSet{n: s.n}
	if len(s.words) > 0 {
		out.words = append([]uint64(nil), s.words...)
	}
	if len(s.extra) > 0 {
		out.extra = make(map[kernel.BlockID]struct{}, len(s.extra))
		for b := range s.extra {
			out.extra[b] = struct{}{}
		}
	}
	return out
}

// Reset empties the set while keeping the bitmap allocated for reuse.
func (s *BlockSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	for b := range s.extra {
		delete(s.extra, b)
	}
	s.n = 0
}
