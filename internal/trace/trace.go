// Package trace post-processes execution traces into coverage, following
// §5.3.1: raw traces are ordered basic-block sequences; edge coverage is the
// set of unique directional basic-block pairs appearing consecutively.
package trace

import (
	"sort"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
)

// Edge is a directional pair of consecutively executed basic blocks.
type Edge uint64

// MakeEdge packs two block IDs into an Edge.
func MakeEdge(from, to kernel.BlockID) Edge {
	return Edge(uint64(uint32(from))<<32 | uint64(uint32(to)))
}

// From returns the edge's source block.
func (e Edge) From() kernel.BlockID { return kernel.BlockID(e >> 32) }

// To returns the edge's destination block.
func (e Edge) To() kernel.BlockID { return kernel.BlockID(uint32(e)) }

// Cover is a set of covered edges (or blocks, via BlockCover). The zero
// value is an empty cover ready to use.
type Cover struct {
	m map[Edge]struct{}
}

// NewCover returns an empty cover.
func NewCover() *Cover { return &Cover{m: map[Edge]struct{}{}} }

// Len returns the number of covered edges.
func (c *Cover) Len() int { return len(c.m) }

// Has reports whether the edge is covered.
func (c *Cover) Has(e Edge) bool {
	_, ok := c.m[e]
	return ok
}

// Add inserts an edge, reporting whether it was new.
func (c *Cover) Add(e Edge) bool {
	if c.m == nil {
		c.m = map[Edge]struct{}{}
	}
	if _, ok := c.m[e]; ok {
		return false
	}
	c.m[e] = struct{}{}
	return true
}

// Merge adds all of other's edges, returning how many were new.
func (c *Cover) Merge(other *Cover) int {
	n := 0
	for e := range other.m {
		if c.Add(e) {
			n++
		}
	}
	return n
}

// Diff returns the edges in c that are not in other.
func (c *Cover) Diff(other *Cover) []Edge {
	var out []Edge
	for e := range c.m {
		if !other.Has(e) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns the covered edges in sorted order.
func (c *Cover) Edges() []Edge {
	out := make([]Edge, 0, len(c.m))
	for e := range c.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a copy.
func (c *Cover) Clone() *Cover {
	out := NewCover()
	for e := range c.m {
		out.m[e] = struct{}{}
	}
	return out
}

// EdgesOf extracts the edge coverage of an execution result: unique
// directional pairs of consecutive blocks within each call's trace.
func EdgesOf(res *exec.Result) *Cover {
	c := NewCover()
	for _, tr := range res.CallTraces {
		for i := 1; i < len(tr); i++ {
			c.Add(MakeEdge(tr[i-1], tr[i]))
		}
	}
	return c
}

// BlocksOf extracts the block coverage of an execution result, as an
// ordered deduplicated slice.
func BlocksOf(res *exec.Result) []kernel.BlockID {
	set := res.Blocks()
	out := make([]kernel.BlockID, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlockSet is a set of covered blocks.
type BlockSet map[kernel.BlockID]struct{}

// NewBlockSet builds a set from a slice.
func NewBlockSet(blocks []kernel.BlockID) BlockSet {
	s := make(BlockSet, len(blocks))
	for _, b := range blocks {
		s[b] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s BlockSet) Has(b kernel.BlockID) bool {
	_, ok := s[b]
	return ok
}

// Add inserts a block, reporting whether it was new.
func (s BlockSet) Add(b kernel.BlockID) bool {
	if _, ok := s[b]; ok {
		return false
	}
	s[b] = struct{}{}
	return true
}

// Diff returns blocks in s not in other, sorted.
func (s BlockSet) Diff(other BlockSet) []kernel.BlockID {
	var out []kernel.BlockID
	for b := range s {
		if !other.Has(b) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
