// Sparse serialization of Cover bitmaps for the cluster wire and
// checkpoints: page keys are visited in ascending order and written as
// canonical varint deltas, each page carries one occupancy byte (which of
// its 8 words are non-zero) and one saturation byte (which words are
// all-ones, run-length encoding fully covered words down to a single bit),
// and only the remaining partial words are written as 8 raw bytes. The
// encoding is canonical — one byte form per edge set — so byte equality of
// two encodings implies set equality, which checkpoint resume relies on.

package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadSparse is returned (wrapped) by CoverFromSparse for any truncated,
// corrupt, or non-canonical sparse cover encoding.
var ErrBadSparse = errors.New("trace: malformed sparse cover")

// ForEachWordSorted visits every non-zero 64-bit word of the cover bitmap
// in ascending edge order. base is the edge value of the word's bit 0, so
// edge (base | i) is covered iff bit i of word is set.
func (c *Cover) ForEachWordSorted(fn func(base uint64, word uint64)) {
	c.forEachPageSorted(func(key uint64, pg *coverPage) {
		for w, word := range pg {
			if word != 0 {
				fn(key<<pageBits|uint64(w)<<6, word)
			}
		}
	})
}

// AppendSparse appends the canonical sparse encoding of c to dst and
// returns the extended slice: a uvarint page count, then per page in
// ascending key order a uvarint key delta (absolute key for the first
// page), an occupancy byte, a saturation byte, and the partial words.
func (c *Cover) AppendSparse(dst []byte) []byte {
	npages := 0
	for _, pg := range c.pages {
		for _, w := range pg {
			if w != 0 {
				npages++
				break
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(npages))
	prev := uint64(0)
	first := true
	c.forEachPageSorted(func(key uint64, pg *coverPage) {
		var occ, full byte
		for w, word := range pg {
			if word != 0 {
				occ |= 1 << w
			}
			if word == ^uint64(0) {
				full |= 1 << w
			}
		}
		if occ == 0 {
			return // page exists but holds no edges (recycled); not encoded
		}
		if first {
			dst = binary.AppendUvarint(dst, key)
			first = false
		} else {
			dst = binary.AppendUvarint(dst, key-prev)
		}
		prev = key
		dst = append(dst, occ, full)
		for _, word := range pg {
			if word != 0 && word != ^uint64(0) {
				dst = binary.LittleEndian.AppendUint64(dst, word)
			}
		}
	})
	return dst
}

// sparseUvarint reads one canonical (minimal-length) uvarint from b,
// returning the value and the number of bytes consumed, or an error for
// truncated, overlong, or non-minimal encodings.
func sparseUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: truncated varint", ErrBadSparse)
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("%w: varint overflow", ErrBadSparse)
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal varint", ErrBadSparse)
	}
	return v, n, nil
}

// CoverFromSparse rebuilds a Cover from its AppendSparse encoding. Any
// deviation from the canonical form — truncation, trailing bytes,
// non-minimal varints, unsorted or duplicate page keys, empty pages, or a
// partial word that should have been run-length encoded — is rejected with
// an error wrapping ErrBadSparse, so decode∘encode reproduces the input
// bytes exactly.
func CoverFromSparse(b []byte) (*Cover, error) {
	npages, off, err := sparseUvarint(b)
	if err != nil {
		return nil, err
	}
	// Each page needs at least 3 more bytes (key delta, occupancy,
	// saturation), so a count beyond that is corrupt, not just large.
	if npages > uint64(len(b)-off)/3 {
		return nil, fmt.Errorf("%w: implausible page count %d", ErrBadSparse, npages)
	}
	c := NewCover()
	var key uint64
	for i := uint64(0); i < npages; i++ {
		delta, n, err := sparseUvarint(b[off:])
		if err != nil {
			return nil, err
		}
		off += n
		if i == 0 {
			key = delta
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("%w: unsorted page keys", ErrBadSparse)
			}
			next := key + delta
			if next < key {
				return nil, fmt.Errorf("%w: page key overflow", ErrBadSparse)
			}
			key = next
		}
		if len(b)-off < 2 {
			return nil, fmt.Errorf("%w: truncated page header", ErrBadSparse)
		}
		occ, full := b[off], b[off+1]
		off += 2
		if occ == 0 {
			return nil, fmt.Errorf("%w: empty page", ErrBadSparse)
		}
		if full&^occ != 0 {
			return nil, fmt.Errorf("%w: saturated bit on empty word", ErrBadSparse)
		}
		pg := c.page(key)
		for w := 0; w < pageWords; w++ {
			bit := byte(1) << w
			switch {
			case full&bit != 0:
				pg[w] = ^uint64(0)
			case occ&bit != 0:
				if len(b)-off < 8 {
					return nil, fmt.Errorf("%w: truncated word", ErrBadSparse)
				}
				word := binary.LittleEndian.Uint64(b[off:])
				off += 8
				if word == 0 || word == ^uint64(0) {
					return nil, fmt.Errorf("%w: non-canonical word", ErrBadSparse)
				}
				pg[w] = word
			}
			c.n += bits.OnesCount64(pg[w])
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSparse, len(b)-off)
	}
	return c, nil
}
