package trace

import (
	"testing"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/rng"
)

// benchTraces synthesizes call traces with the locality real handler walks
// have (runs of nearby block IDs), so the paged bitmap sees realistic page
// occupancy rather than a uniform-random spray.
func benchTraces(r *rng.Rand, calls, length int) [][]kernel.BlockID {
	out := make([][]kernel.BlockID, calls)
	for c := range out {
		base := kernel.BlockID(r.Intn(4000))
		tr := make([]kernel.BlockID, length)
		cur := base
		for i := range tr {
			tr[i] = cur
			cur += kernel.BlockID(1 + r.Intn(3))
			if r.Chance(0.05) {
				cur = base + kernel.BlockID(r.Intn(64))
			}
		}
		out[c] = tr
	}
	return out
}

func benchCovers(n int) []*Cover {
	r := rng.New(42)
	covers := make([]*Cover, n)
	for i := range covers {
		covers[i] = EdgesOf(&exec.Result{CallTraces: benchTraces(r, 4, 120)})
	}
	return covers
}

// mapCover is the pre-bitmap reference implementation (map[Edge]struct{}),
// kept here only so the benchmarks quantify the representation change.
type mapCover map[Edge]struct{}

func (m mapCover) merge(o *Cover) int {
	n := 0
	for _, e := range o.Edges() {
		if _, ok := m[e]; !ok {
			m[e] = struct{}{}
			n++
		}
	}
	return n
}

func (m mapCover) newEdges(o *Cover) int {
	n := 0
	for _, e := range o.Edges() {
		if _, ok := m[e]; !ok {
			n++
		}
	}
	return n
}

func BenchmarkCoverMergeBitmap(b *testing.B) {
	covers := benchCovers(256)
	b.ResetTimer()
	total := NewCover()
	for i := 0; i < b.N; i++ {
		total.Merge(covers[i%len(covers)])
	}
}

func BenchmarkCoverMergeMapBaseline(b *testing.B) {
	covers := benchCovers(256)
	b.ResetTimer()
	total := mapCover{}
	for i := 0; i < b.N; i++ {
		total.merge(covers[i%len(covers)])
	}
}

func BenchmarkCoverNewEdgesBitmap(b *testing.B) {
	covers := benchCovers(256)
	total := NewCover()
	for _, c := range covers[:128] {
		total.Merge(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total.NewEdges(covers[i%len(covers)])
	}
}

func BenchmarkCoverNewEdgesMapBaseline(b *testing.B) {
	covers := benchCovers(256)
	total := mapCover{}
	for _, c := range covers[:128] {
		total.merge(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total.newEdges(covers[i%len(covers)])
	}
}

// BenchmarkEdgesOfInto measures the allocation-free per-execution triage
// path (scratch cover reuse).
func BenchmarkEdgesOfInto(b *testing.B) {
	r := rng.New(7)
	res := &exec.Result{CallTraces: benchTraces(r, 4, 120)}
	scratch := NewCover()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgesOfInto(scratch, res)
	}
}

func BenchmarkBlockSetMerge(b *testing.B) {
	r := rng.New(9)
	sets := make([]BlockSet, 64)
	for i := range sets {
		BlockSetOfInto(&sets[i], &exec.Result{CallTraces: benchTraces(r, 4, 120)})
	}
	b.ResetTimer()
	var total BlockSet
	for i := 0; i < b.N; i++ {
		total.Merge(sets[i%len(sets)])
	}
}
