package trace

import (
	"testing"
	"testing/quick"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
)

func TestEdgePackUnpack(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		e := MakeEdge(kernel.BlockID(a), kernel.BlockID(b))
		return e.From() == kernel.BlockID(a) && e.To() == kernel.BlockID(b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoverAddMergeDiff(t *testing.T) {
	a, b := NewCover(), NewCover()
	e1 := MakeEdge(1, 2)
	e2 := MakeEdge(2, 3)
	e3 := MakeEdge(3, 4)
	if !a.Add(e1) || !a.Add(e2) {
		t.Fatal("fresh adds reported not-new")
	}
	if a.Add(e1) {
		t.Fatal("duplicate add reported new")
	}
	b.Add(e2)
	b.Add(e3)
	if n := a.Merge(b); n != 1 {
		t.Fatalf("Merge added %d, want 1", n)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	d := b.Diff(a)
	if len(d) != 0 {
		t.Fatalf("b \\ a = %v, want empty", d)
	}
	onlyA := a.Diff(b)
	if len(onlyA) != 1 || onlyA[0] != e1 {
		t.Fatalf("a \\ b = %v, want [e1]", onlyA)
	}
}

func TestCoverZeroValueUsable(t *testing.T) {
	var c Cover
	if c.Has(MakeEdge(1, 2)) {
		t.Fatal("empty cover has edge")
	}
	if !c.Add(MakeEdge(1, 2)) {
		t.Fatal("add on zero-value cover failed")
	}
	if c.Len() != 1 {
		t.Fatal("len after add")
	}
}

func TestCoverCloneIndependent(t *testing.T) {
	a := NewCover()
	a.Add(MakeEdge(1, 2))
	b := a.Clone()
	b.Add(MakeEdge(3, 4))
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", a.Len(), b.Len())
	}
}

func TestEdgesSorted(t *testing.T) {
	c := NewCover()
	c.Add(MakeEdge(9, 1))
	c.Add(MakeEdge(1, 9))
	c.Add(MakeEdge(5, 5))
	es := c.Edges()
	for i := 1; i < len(es); i++ {
		if es[i-1] >= es[i] {
			t.Fatalf("edges not sorted: %v", es)
		}
	}
}

func TestEdgesOfResult(t *testing.T) {
	res := &exec.Result{CallTraces: [][]kernel.BlockID{
		{1, 2, 3},
		{3, 2},
	}}
	c := EdgesOf(res)
	want := []Edge{MakeEdge(1, 2), MakeEdge(2, 3), MakeEdge(3, 2)}
	if c.Len() != len(want) {
		t.Fatalf("%d edges, want %d", c.Len(), len(want))
	}
	for _, e := range want {
		if !c.Has(e) {
			t.Fatalf("missing edge %d->%d", e.From(), e.To())
		}
	}
	// No cross-call edge: 3 (end of call 0) -> 3 (start of call 1).
	if c.Has(MakeEdge(3, 3)) {
		t.Fatal("cross-call edge recorded")
	}
}

func TestBlocksOfDeduplicated(t *testing.T) {
	res := &exec.Result{CallTraces: [][]kernel.BlockID{{5, 1, 5}, {1, 2}}}
	blocks := BlocksOf(res)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1] >= blocks[i] {
			t.Fatalf("blocks not sorted: %v", blocks)
		}
	}
}

func TestBlockSetOps(t *testing.T) {
	s := NewBlockSet([]kernel.BlockID{1, 2, 3})
	o := NewBlockSet([]kernel.BlockID{2})
	if !s.Has(1) || s.Has(9) {
		t.Fatal("Has wrong")
	}
	if s.Add(1) {
		t.Fatal("re-add reported new")
	}
	if !s.Add(9) {
		t.Fatal("new add reported old")
	}
	d := s.Diff(o)
	if len(d) != 3 { // 1, 3, 9
		t.Fatalf("diff = %v", d)
	}
}
