package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

func sparseFixture() *Cover {
	c := NewCover()
	r := rng.New(99)
	// A clustered distribution like real edge coverage: a few dense runs
	// (producing saturated words) plus scattered singletons.
	for base := uint64(0); base < 3; base++ {
		start := base * 100_000
		for e := start; e < start+192; e++ { // 3 fully saturated words
			c.Add(Edge(e))
		}
	}
	for i := 0; i < 500; i++ {
		c.Add(Edge(r.Uint64() % (1 << 24)))
	}
	return c
}

func TestSparseRoundTrip(t *testing.T) {
	for name, c := range map[string]*Cover{
		"empty":  NewCover(),
		"single": func() *Cover { c := NewCover(); c.Add(Edge(12345)); return c }(),
		"fullpage": func() *Cover {
			c := NewCover()
			for e := uint64(512); e < 1024; e++ {
				c.Add(Edge(e))
			}
			return c
		}(),
		"fixture": sparseFixture(),
	} {
		b := c.AppendSparse(nil)
		got, err := CoverFromSparse(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Len() != c.Len() {
			t.Fatalf("%s: len %d != %d", name, got.Len(), c.Len())
		}
		// Canonical: re-encode must reproduce the input bytes.
		if again := got.AppendSparse(nil); !bytes.Equal(again, b) {
			t.Fatalf("%s: re-encode differs", name)
		}
		for _, e := range c.Edges() {
			if !got.Has(e) {
				t.Fatalf("%s: edge %d lost", name, e)
			}
		}
	}
}

func TestSparseResetPagesNotEncoded(t *testing.T) {
	// A cover holding recycled-but-empty pages must encode identically to a
	// fresh cover with the same edges (canonical form is state-independent).
	c := NewCover()
	for e := uint64(0); e < 4096; e += 7 {
		c.Add(Edge(e))
	}
	c.Reset()
	c.Add(Edge(1 << 20))
	want := NewCover()
	want.Add(Edge(1 << 20))
	if !bytes.Equal(c.AppendSparse(nil), want.AppendSparse(nil)) {
		t.Fatal("recycled pages leaked into the sparse encoding")
	}
}

func TestSparseRejectsCorrupt(t *testing.T) {
	valid := sparseFixture().AppendSparse(nil)
	// Truncation at every prefix length must error, never panic.
	for i := 0; i < len(valid); i++ {
		if _, err := CoverFromSparse(valid[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		} else if !errors.Is(err, ErrBadSparse) {
			t.Fatalf("truncation at %d: wrong error %v", i, err)
		}
	}
	if _, err := CoverFromSparse(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Implausible page count must be rejected before allocation.
	bomb := binary.AppendUvarint(nil, 1<<40)
	if _, err := CoverFromSparse(bomb); !errors.Is(err, ErrBadSparse) {
		t.Fatalf("page-count bomb: %v", err)
	}
	// Non-minimal varint page count.
	if _, err := CoverFromSparse([]byte{0x80, 0x00}); !errors.Is(err, ErrBadSparse) {
		t.Fatal("non-minimal varint accepted")
	}
	// Unsorted pages: second key delta of zero.
	dup := binary.AppendUvarint(nil, 2)
	dup = binary.AppendUvarint(dup, 5)
	dup = append(dup, 0x01, 0x00)
	dup = binary.LittleEndian.AppendUint64(dup, 3)
	dup = binary.AppendUvarint(dup, 0) // same key again
	dup = append(dup, 0x01, 0x00)
	dup = binary.LittleEndian.AppendUint64(dup, 3)
	if _, err := CoverFromSparse(dup); !errors.Is(err, ErrBadSparse) {
		t.Fatalf("duplicate page key: %v", err)
	}
	// A full word spelled out as raw bytes (should be saturation-encoded).
	raw := binary.AppendUvarint(nil, 1)
	raw = binary.AppendUvarint(raw, 0)
	raw = append(raw, 0x01, 0x00)
	raw = binary.LittleEndian.AppendUint64(raw, ^uint64(0))
	if _, err := CoverFromSparse(raw); !errors.Is(err, ErrBadSparse) {
		t.Fatalf("non-canonical full word: %v", err)
	}
	// Saturation bit without the occupancy bit.
	sat := binary.AppendUvarint(nil, 1)
	sat = binary.AppendUvarint(sat, 0)
	sat = append(sat, 0x01, 0x02)
	sat = binary.LittleEndian.AppendUint64(sat, 3)
	if _, err := CoverFromSparse(sat); !errors.Is(err, ErrBadSparse) {
		t.Fatalf("saturation outside occupancy: %v", err)
	}
}

func TestForEachWordSorted(t *testing.T) {
	c := sparseFixture()
	var prev uint64
	first := true
	n := 0
	c.ForEachWordSorted(func(base, word uint64) {
		if word == 0 {
			t.Fatal("zero word visited")
		}
		if base&63 != 0 {
			t.Fatalf("unaligned base %d", base)
		}
		if !first && base <= prev {
			t.Fatalf("bases not ascending: %d after %d", base, prev)
		}
		first = false
		prev = base
		for i := uint64(0); i < 64; i++ {
			if word&(1<<i) != 0 {
				if !c.Has(Edge(base | i)) {
					t.Fatalf("word bit %d at base %d not in cover", i, base)
				}
				n++
			}
		}
	})
	if n != c.Len() {
		t.Fatalf("visited %d edges, cover has %d", n, c.Len())
	}
}
