// Partition and fault tests: sever or delay a worker's connection
// mid-campaign and assert the coordinator reassigns the lost shard, the
// campaign completes, and the output still matches the fault-free run —
// worker churn must be invisible in every determinism-guaranteed
// observable.

package cluster

import (
	"net"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
)

// faultyDial wraps the first dialed connection in a fault link; subsequent
// dials (other workers) are untouched. The worker goroutines of RunLocal
// share one WorkerOptions, so the dialer decides per call which worker gets
// the bad link.
func faultyDial(opts faultinject.LinkOptions, victims int) func(string) (net.Conn, error) {
	ch := make(chan bool, 16)
	for i := 0; i < victims; i++ {
		ch <- true
	}
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		select {
		case <-ch:
			return faultinject.NewLink(conn, opts), nil
		default:
			return conn, nil
		}
	}
}

// TestClusterSurvivesSeveredWorker cuts one worker's link after a fixed
// number of outbound frames — mid-epoch, after the campaign is underway —
// and asserts the coordinator reassigns its VMs and finishes with the exact
// fault-free digests.
func TestClusterSurvivesSeveredWorker(t *testing.T) {
	cfg := baseConfig(45, 120_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	want, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Frame budget anatomy: hello(1) + ack(1) + one delta per epoch. A
	// budget of 10 kills the victim around epoch 8 of a ~25-epoch campaign.
	got, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{
		Dial: faultyDial(faultinject.LinkOptions{SeverAfterWrites: 10}, 1),
	})
	if err != nil {
		t.Fatalf("campaign did not survive severed worker: %v", err)
	}
	requireSameResult(t, "severed-worker", want, got)
}

// TestClusterSurvivesEarlySever severs a worker on its very first delta, so
// reassignment happens while the corpus is still mostly seeds.
func TestClusterSurvivesEarlySever(t *testing.T) {
	cfg := baseConfig(46, 120_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	want, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{
		Dial: faultyDial(faultinject.LinkOptions{SeverAfterWrites: 3}, 1),
	})
	if err != nil {
		t.Fatalf("campaign did not survive early sever: %v", err)
	}
	requireSameResult(t, "early-sever", want, got)
}

// TestClusterSurvivesAllButOneSevered severs every worker but the last in a
// 3-worker cluster; the survivor must absorb both lost shards.
func TestClusterSurvivesAllButOneSevered(t *testing.T) {
	cfg := baseConfig(47, 120_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	want, err := RunLocal(Config{Spec: spec}, 3, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(Config{Spec: spec}, 3, WorkerOptions{
		Dial: faultyDial(faultinject.LinkOptions{SeverAfterWrites: 7}, 2),
	})
	if err != nil {
		t.Fatalf("campaign did not survive double sever: %v", err)
	}
	requireSameResult(t, "double-sever", want, got)
}

// TestClusterToleratesSlowLink delays every frame on one worker's link; a
// slow worker must change nothing but wall-clock time.
func TestClusterToleratesSlowLink(t *testing.T) {
	cfg := baseConfig(48, 80_000, 2)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	want, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{
		Dial: faultyDial(faultinject.LinkOptions{WriteDelay: 2 * time.Millisecond}, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "slow-link", want, got)
}

// TestClusterAllWorkersLost pins the failure mode when nobody survives:
// the coordinator reports a campaign error instead of hanging.
func TestClusterAllWorkersLost(t *testing.T) {
	cfg := baseConfig(49, 120_000, 2)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	_, err := RunLocal(Config{Spec: spec, IOTimeout: 5 * time.Second}, 2, WorkerOptions{
		Dial: faultyDial(faultinject.LinkOptions{SeverAfterWrites: 5}, 2),
	})
	if err == nil {
		t.Fatal("campaign with every worker severed reported success")
	}
}
