// Digests condense the determinism-guaranteed campaign observables into
// comparable strings: the test suites assert that W-worker clusters,
// single-host runs and checkpoint-resumed runs produce byte-identical
// digests per seed.

package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/obs"
)

// CorpusDigest hashes the corpus contents in publish order: entry text plus
// per-call traces. Publish order is part of the determinism guarantee (it
// drives mutation scheduling), so it is hashed, not sorted away.
func CorpusDigest(c *corpus.Corpus) string {
	h := sha256.New()
	var buf [8]byte
	for _, e := range c.Entries() {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(e.Text)))
		h.Write(buf[:])
		h.Write([]byte(e.Text))
		for _, tr := range e.Traces {
			for _, b := range tr {
				binary.LittleEndian.PutUint64(buf[:], uint64(b))
				h.Write(buf[:])
			}
			binary.LittleEndian.PutUint64(buf[:], ^uint64(0)) // trace terminator
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CoverDigest hashes the corpus's accumulated edge coverage (sorted edges).
func CoverDigest(c *corpus.Corpus) string {
	h := sha256.New()
	var buf [8]byte
	for _, e := range c.TotalCover().Edges() {
		binary.LittleEndian.PutUint64(buf[:], uint64(e))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JournalDigest hashes the deterministic journal stream: every event's
// (Kind, VM, Epoch, Cost, Value, Detail) tuple in order. Seq is excluded —
// it is positional and its stability follows from the stream's — and so are
// degraded/recovered events, which depend on wall-clock serving outcomes
// and sit outside the journal determinism guarantee.
func JournalDigest(events []obs.Event) string {
	h := sha256.New()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	s := func(v string) {
		u(uint64(len(v)))
		h.Write([]byte(v))
	}
	for _, e := range events {
		if e.Kind == obs.EventDegraded || e.Kind == obs.EventRecovered {
			continue
		}
		s(e.Kind)
		u(uint64(int64(e.VM)))
		u(uint64(e.Epoch))
		u(uint64(e.Cost))
		u(uint64(e.Value))
		s(e.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))
}
