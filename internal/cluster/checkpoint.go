// Checkpoint format: the coordinator's complete barrier state in a
// versioned binary file, written atomically every CheckpointEvery epochs. A
// checkpoint taken after the merge of epoch E contains everything the next
// barrier depends on — spec, corpus in publish order, canonical VM states,
// journal ring, sampling cursor — so a resumed campaign, resharded onto any
// worker count, continues bit-identically from epoch E+1. The format reuses
// the wire codec and inherits its decode hardening (FuzzCheckpointDecode
// exercises it on corrupt input). Since version 3 the body after the magic
// and version is flate-compressed (with the declared size bomb-guarded
// before inflating) and carries the corpus cover in the sparse bitmap
// encoding; version-2 files still decode, so a coordinator upgrade can
// resume a campaign checkpointed by the previous format.

package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/trace"
)

// checkpointMagic opens every checkpoint file, followed by a version u32.
const checkpointMagic = "SPCK"

// checkpointVersion is the current checkpoint format version. Version 3
// flate-compressed the body, switched the embedded messages to the v2 wire
// codec, and added the sparse corpus cover; version-2 files (uncompressed,
// v1 codec, no cover) are still accepted. Version 2 added the online
// continual-learning spec fields and state; version-1 files are rejected
// with ErrBadVersion, as the embedded spec encoding also changed.
const checkpointVersion = 3

// legacyCheckpointVersion is the oldest format DecodeCheckpoint accepts.
const legacyCheckpointVersion = 2

// maxCheckpointBody caps the declared decompressed size of a v3 checkpoint
// body, rejected before inflating (the decompression-bomb guard for the
// persistence format, the counterpart of the frame payload cap).
const maxCheckpointBody = 1 << 28

// Checkpoint is the coordinator's full barrier state.
type Checkpoint struct {
	Spec  CampaignSpec
	Epoch int64  // last merged epoch
	Seq   uint64 // reconciler merge sequence cursor
	// NextSample is the cost of the next coverage-series sample.
	NextSample int64
	Series     []fuzzer.Point
	// Entries is the authoritative corpus in publish order (VM -1: snapshot
	// entries belong to no shard).
	Entries []fuzzer.Accepted
	// TotalEdges is the corpus's edge count at capture, verified against
	// the rebuilt corpus on resume (an integrity check on Entries).
	TotalEdges int64
	// Cover is the corpus's total edge cover at capture in the canonical
	// sparse bitmap encoding (trace.AppendSparse) — a stronger integrity
	// check than the bare count: resume re-derives the cover from Entries
	// and requires byte equality. Nil in legacy (v2) checkpoints.
	Cover []byte
	// States are the canonical VM states for every VM, ascending.
	States []fuzzer.VMState
	// PendingSeed holds seed-pass journal events not yet flushed into the
	// journal (see coordinator.pendingSeed); SeedFlushed records whether
	// the flush already happened.
	PendingSeed []obs.Event
	SeedFlushed bool
	// Journal is the ring's retained event window with assigned Seqs, plus
	// the ring cursor state to continue numbering exactly.
	JournalCap     int
	Journal        []obs.Event
	JournalNext    uint64
	JournalDropped uint64
	// Online continual-learning state (all zero for frozen-model
	// campaigns). OnlineApplied is the last barrier-resolved checkpoint
	// generation (applied or skipped) — the next kickoff hands out
	// OnlineApplied+1 unless a retrain is pending. OnlineModelVersion is
	// the serving generation (the last accepted swap; Spec.Model holds its
	// canonical bytes). OnlineRetrains/Swaps/Skips are the lifetime
	// counters. OnlinePending* describe a retrain in flight at capture —
	// the version being trained, its kickoff epoch, and the corpus
	// publish-order prefix length its harvest snapshot saw (the corpus only
	// grows, so the prefix reconstructs the identical snapshot);
	// OnlinePendingVersion 0 means none.
	OnlineApplied        int64
	OnlineModelVersion   int64
	OnlineRetrains       int64
	OnlineSwaps          int64
	OnlineSkips          int64
	OnlinePendingVersion int64
	OnlinePendingEpoch   int64
	OnlinePendingBase    int
	// ModelDigest is sha256(Spec.Model), recomputed and compared on decode
	// so a corrupted model checkpoint fails loudly instead of silently
	// changing predictions.
	ModelDigest [32]byte

	// legacy records that this checkpoint was decoded from a pre-v3 file;
	// Encode always writes the current format, so byte-identity checks do
	// not apply to a legacy round trip.
	legacy bool
}

// appendBody appends the checkpoint's field sequence (everything after the
// magic, version, and size header) using e's codec version.
func (c *Checkpoint) appendBody(e *enc) {
	e.spec(c.Spec)
	e.i64(c.Epoch)
	e.u64(c.Seq)
	e.i64(c.NextSample)
	e.int(len(c.Series))
	for _, p := range c.Series {
		e.i64(p.Cost)
		e.int(p.Edges)
	}
	e.acceptedList(c.Entries)
	e.i64(c.TotalEdges)
	if e.v2 {
		e.blob(c.Cover)
	}
	e.vmStates(c.States)
	e.events(c.PendingSeed)
	e.flag(c.SeedFlushed)
	e.int(c.JournalCap)
	e.events(c.Journal)
	e.u64(c.JournalNext)
	e.u64(c.JournalDropped)
	e.i64(c.OnlineApplied)
	e.i64(c.OnlineModelVersion)
	e.i64(c.OnlineRetrains)
	e.i64(c.OnlineSwaps)
	e.i64(c.OnlineSkips)
	e.i64(c.OnlinePendingVersion)
	e.i64(c.OnlinePendingEpoch)
	e.int(c.OnlinePendingBase)
	digest := sha256.Sum256(c.Spec.Model)
	e.b = append(e.b, digest[:]...)
}

// decodeBody parses the checkpoint field sequence using d's codec version.
func (c *Checkpoint) decodeBody(d *dec) {
	c.Spec = d.spec()
	c.Epoch = d.i64()
	c.Seq = d.u64()
	c.NextSample = d.i64()
	n := d.listLen()
	for i := 0; i < n && d.err == nil; i++ {
		c.Series = append(c.Series, fuzzer.Point{Cost: d.i64(), Edges: d.int()})
	}
	c.Entries = d.acceptedList()
	c.TotalEdges = d.i64()
	if d.v2 {
		c.Cover = d.blob()
	}
	c.States = d.vmStates()
	c.PendingSeed = d.events()
	c.SeedFlushed = d.flag()
	c.JournalCap = d.int()
	c.Journal = d.events()
	c.JournalNext = d.u64()
	c.JournalDropped = d.u64()
	c.OnlineApplied = d.i64()
	c.OnlineModelVersion = d.i64()
	c.OnlineRetrains = d.i64()
	c.OnlineSwaps = d.i64()
	c.OnlineSkips = d.i64()
	c.OnlinePendingVersion = d.i64()
	c.OnlinePendingEpoch = d.i64()
	c.OnlinePendingBase = d.int()
	copy(c.ModelDigest[:], d.take(sha256.Size))
}

// Encode serializes the checkpoint in the current (v3) format: magic,
// version, uvarint declared body size, then the flate-compressed v2-codec
// body. The flate level is fixed (blobFlateLevel), so encoding is a pure
// function of the struct and the file stays canonical.
func (c *Checkpoint) Encode() []byte {
	body := enc{v2: true}
	c.appendBody(&body)
	out := enc{b: append([]byte(nil), checkpointMagic...)}
	out.u64(checkpointVersion)
	out.b = binary.AppendUvarint(out.b, uint64(len(body.b)))
	out.b = appendFlate(out.b, body.b, blobFlateLevel)
	return out.b
}

// DecodeCheckpoint parses and validates a checkpoint. It returns
// ErrBadVersion for an unknown magic or version, ErrTruncated/ErrBadMessage
// for corrupt payloads — including a declared decompressed size over the
// cap (rejected before inflating), a corrupt flate stream, a model whose
// digest does not match, a cover that contradicts the edge count, or a v3
// file whose bytes differ from the canonical re-encoding of its contents.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("%w: checkpoint header", ErrTruncated)
	}
	if string(b[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: not a checkpoint file", ErrBadVersion)
	}
	c := &Checkpoint{}
	switch v := binary.LittleEndian.Uint64(b[len(checkpointMagic):]); v {
	case legacyCheckpointVersion:
		c.legacy = true
		d := dec{b: b, off: len(checkpointMagic) + 8}
		c.decodeBody(&d)
		if err := d.finish(); err != nil {
			return nil, err
		}
	case checkpointVersion:
		hdr := b[len(checkpointMagic)+8:]
		rawLen, n := binary.Uvarint(hdr)
		if n <= 0 {
			return nil, fmt.Errorf("%w: checkpoint size header", ErrBadMessage)
		}
		if rawLen > maxCheckpointBody {
			return nil, fmt.Errorf("%w: declared checkpoint body %d exceeds cap %d",
				ErrBadMessage, rawLen, maxCheckpointBody)
		}
		bodyBytes, err := inflateExact(hdr[n:], int(rawLen))
		if err != nil {
			return nil, err
		}
		d := dec{b: bodyBytes, v2: true}
		c.decodeBody(&d)
		if err := d.finish(); err != nil {
			return nil, err
		}
		// Canonical-bytes check: exactly one valid file per barrier state,
		// the same property the wire codec's fuzz targets enforce.
		if !bytes.Equal(c.Encode(), b) {
			return nil, fmt.Errorf("%w: non-canonical checkpoint encoding", ErrBadMessage)
		}
	default:
		return nil, fmt.Errorf("%w: checkpoint version %d (want %d)", ErrBadVersion, v, checkpointVersion)
	}
	if got := sha256.Sum256(c.Spec.Model); got != c.ModelDigest {
		return nil, fmt.Errorf("%w: model digest mismatch", ErrBadMessage)
	}
	if c.JournalCap < 0 || c.JournalCap > maxWireList {
		return nil, fmt.Errorf("%w: implausible journal capacity %d", ErrBadMessage, c.JournalCap)
	}
	if c.OnlinePendingBase < 0 || c.OnlinePendingBase > len(c.Entries) {
		return nil, fmt.Errorf("%w: pending retrain snapshot %d beyond %d corpus entries",
			ErrBadMessage, c.OnlinePendingBase, len(c.Entries))
	}
	if c.OnlinePendingVersion != 0 && c.OnlinePendingVersion != c.OnlineApplied+1 {
		return nil, fmt.Errorf("%w: pending retrain version %d after resolved version %d",
			ErrBadMessage, c.OnlinePendingVersion, c.OnlineApplied)
	}
	if !c.legacy {
		cov, err := trace.CoverFromSparse(c.Cover)
		if err != nil {
			return nil, fmt.Errorf("%w: checkpoint cover: %v", ErrBadMessage, err)
		}
		if int64(cov.Len()) != c.TotalEdges {
			return nil, fmt.Errorf("%w: cover holds %d edges, checkpoint claims %d",
				ErrBadMessage, cov.Len(), c.TotalEdges)
		}
	}
	return c, nil
}

// WriteCheckpointFile writes data to path atomically (temp file + rename in
// the same directory), so a crash mid-write never leaves a truncated
// checkpoint where a resumable one used to be.
func WriteCheckpointFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
