// Loopback helpers: run a whole cluster (coordinator + N workers) inside
// one process over 127.0.0.1 sockets. The determinism and fault suites, the
// bench harness and the CI smoke all drive campaigns through these.

package cluster

import (
	"fmt"
	"sync"
)

// RunLocal runs a fresh cluster campaign with workers in-process workers.
// Worker errors are ignored when the coordinator completes (a worker lost
// late in the campaign is part of normal churn); the coordinator's error is
// authoritative.
func RunLocal(cfg Config, workers int, wopts WorkerOptions) (*Result, error) {
	cfg.Workers = workers
	co, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	return driveLocal(co, workers, wopts)
}

// ResumeLocal resumes a checkpointed campaign onto a fresh local cluster;
// the worker count may differ from the checkpointed run's.
func ResumeLocal(cfg Config, checkpoint []byte, workers int, wopts WorkerOptions) (*Result, error) {
	cfg.Workers = workers
	co, err := ResumeCoordinator(cfg, checkpoint)
	if err != nil {
		return nil, err
	}
	return driveLocal(co, workers, wopts)
}

func driveLocal(co *Coordinator, workers int, wopts WorkerOptions) (*Result, error) {
	addr := co.Addr()
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(addr, wopts)
		}(i)
	}
	res, err := co.Run()
	wg.Wait()
	if err != nil {
		for i, werr := range workerErrs {
			if werr != nil {
				return nil, fmt.Errorf("%w (worker %d: %v)", err, i, werr)
			}
		}
		return nil, err
	}
	return res, nil
}
