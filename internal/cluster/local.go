// Loopback helpers: run a whole cluster (coordinator + N workers) inside
// one process over 127.0.0.1 sockets. The determinism and fault suites, the
// bench harness and the CI smoke all drive campaigns through these.
//
// In Snowplow mode the loopback cluster is also where serving multiplexing
// lives: instead of N private model replicas, driveLocal loads the spec's
// model once into one multi-tenant serve.Server and hands each in-process
// worker its own tenant. Predictions depend only on the model bytes and the
// query, so shared serving is bit-identical to private serving — the
// determinism digests don't move — while the model's weights, graph cache
// and tensor arenas are paid for once. TCP workers (RunWorker from another
// process) still materialize a private server from the spec; a handle can't
// cross the wire. WorkerOptions.PrivateServing opts local workers back into
// that behavior for A/B comparisons.

package cluster

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/serve"
)

// RunLocal runs a fresh cluster campaign with workers in-process workers.
// Worker errors are ignored when the coordinator completes (a worker lost
// late in the campaign is part of normal churn); the coordinator's error is
// authoritative.
func RunLocal(cfg Config, workers int, wopts WorkerOptions) (*Result, error) {
	return RunLocalOpts(cfg, uniformOpts(workers, wopts))
}

// RunLocalOpts is RunLocal with per-worker options: worker i runs with
// wopts[i], so a single fleet can mix configurations — legacy-wire workers
// beside current ones, fused beside unfused, private serving beside shared.
// The worker count is len(wopts).
func RunLocalOpts(cfg Config, wopts []WorkerOptions) (*Result, error) {
	cfg.Workers = len(wopts)
	co, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	return driveLocal(co, cfg.Spec, wopts)
}

// ResumeLocal resumes a checkpointed campaign onto a fresh local cluster;
// the worker count may differ from the checkpointed run's.
func ResumeLocal(cfg Config, checkpoint []byte, workers int, wopts WorkerOptions) (*Result, error) {
	return ResumeLocalOpts(cfg, checkpoint, uniformOpts(workers, wopts))
}

// ResumeLocalOpts is ResumeLocal with per-worker options (see RunLocalOpts).
func ResumeLocalOpts(cfg Config, checkpoint []byte, wopts []WorkerOptions) (*Result, error) {
	cfg.Workers = len(wopts)
	co, err := ResumeCoordinator(cfg, checkpoint)
	if err != nil {
		return nil, err
	}
	return driveLocal(co, co.Spec(), wopts)
}

func uniformOpts(workers int, wopts WorkerOptions) []WorkerOptions {
	per := make([]WorkerOptions, workers)
	for i := range per {
		per[i] = wopts
	}
	return per
}

// kernelPair bundles the built kernel with its control-flow analysis, the
// two inputs the shared server's graph builder needs.
type kernelPair struct {
	k  *kernel.Kernel
	an *cfa.Analysis
}

func kernelFor(version string) (kernelPair, error) {
	k, err := kernel.Build(version)
	if err != nil {
		return kernelPair{}, fmt.Errorf("cluster: building kernel: %w", err)
	}
	return kernelPair{k: k, an: cfa.New(k)}, nil
}

// sharedServer builds the multi-tenant model server for an in-process
// Snowplow cluster: one server, one tenant per worker. Sizing mirrors
// Materialize — the whole fleet's prediction window fits every tenant's
// queue, so a fault-free campaign never degrades; the tenant quota default
// (2× queue) is likewise never reached by a well-behaved shard.
func sharedServer(sp CampaignSpec, workers int, wopts WorkerOptions) (*serve.Server, []*serve.Tenant, error) {
	m, err := pmm.Load(bytes.NewReader(sp.Model))
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: loading shared model: %w", err)
	}
	k, err := kernelFor(sp.KernelVersion)
	if err != nil {
		return nil, nil, err
	}
	serveWorkers := wopts.ServeWorkers
	if serveWorkers <= 0 {
		serveWorkers = 2
	}
	vms := sp.TotalVMs
	if vms <= 0 {
		vms = 1
	}
	pending := sp.MaxPending
	if pending <= 0 {
		pending = 8
	}
	queue := vms*pending*2 + serveWorkers*8
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(k.k, k.an), serve.Options{
		Workers:   serveWorkers,
		QueueSize: queue,
		Deadline:  30 * time.Second,
		Fused:     wopts.Fused,
	})
	tenants := make([]*serve.Tenant, workers)
	for i := range tenants {
		t, err := srv.Tenant(serve.TenantConfig{Name: "worker" + strconv.Itoa(i)})
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		tenants[i] = t
	}
	return srv, tenants, nil
}

func driveLocal(co *Coordinator, sp CampaignSpec, wopts []WorkerOptions) (*Result, error) {
	addr := co.Addr()
	workers := len(wopts)
	perWorker := append([]WorkerOptions(nil), wopts...) // callers keep their slice
	// Workers that neither bring their own inference surface nor insist on a
	// private server share one multi-tenant server, one tenant each.
	var shared []int
	for i, w := range perWorker {
		if w.Inference == nil && !w.PrivateServing {
			shared = append(shared, i)
		}
	}
	if sp.Mode == 1 && len(shared) > 0 {
		srv, tenants, err := sharedServer(sp, len(shared), perWorker[shared[0]])
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		for j, i := range shared {
			perWorker[i].Inference = tenants[j]
		}
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(addr, perWorker[i])
		}(i)
	}
	res, err := co.Run()
	wg.Wait()
	if err != nil {
		for i, werr := range workerErrs {
			if werr != nil {
				return nil, fmt.Errorf("%w (worker %d: %v)", err, i, werr)
			}
		}
		return nil, err
	}
	return res, nil
}
