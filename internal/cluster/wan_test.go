// WAN-wire determinism suite: the v2 wire protocol — sparse varint message
// encoding plus negotiated per-frame flate — must not move a single merged
// bit. Compressed clusters, mixed v1/v2 fleets, campaigns resumed from
// compressed checkpoints and campaigns run over a bandwidth-shaped link all
// have to land on exactly the single-host digests; the only thing the wire
// stage may change is the byte count, which Result.Wire makes observable.

package cluster

import (
	"net"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
)

// TestClusterCompressedMatchesSingleHost reruns the core determinism
// guarantee with frame compression negotiated on: identical digests at 1, 2
// and 4 workers, and the wire accounting must show compression engaged and
// winning.
func TestClusterCompressedMatchesSingleHost(t *testing.T) {
	cfg := baseConfig(41, 200_000, 4)
	want := runSingleHost(t, cfg)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	for _, workers := range []int{1, 2, 4} {
		got, err := RunLocal(Config{Spec: spec, Compress: 6}, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameResult(t, "compressed-"+labelWorkers(workers), want, got)
		if got.Wire.CompressedWorkers != workers {
			t.Errorf("workers=%d: %d negotiated compression", workers, got.Wire.CompressedWorkers)
		}
		if got.Wire.TxWireBytes >= got.Wire.TxRawBytes {
			t.Errorf("workers=%d: compression never won on tx: %d wire vs %d raw",
				workers, got.Wire.TxWireBytes, got.Wire.TxRawBytes)
		}
		if got.Wire.RxWireBytes >= got.Wire.RxRawBytes {
			t.Errorf("workers=%d: compression never won on rx: %d wire vs %d raw",
				workers, got.Wire.RxWireBytes, got.Wire.RxRawBytes)
		}
	}
}

// TestClusterMixedWireVersions runs a fleet with one legacy-wire worker
// (v1 codec, no compression — a binary from before this protocol shipped)
// beside a current one, compression on: the coordinator speaks each
// worker's dialect and the merge is still bit-identical to single-host.
func TestClusterMixedWireVersions(t *testing.T) {
	cfg := baseConfig(41, 200_000, 4)
	want := runSingleHost(t, cfg)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	got, err := RunLocalOpts(Config{Spec: spec, Compress: 6}, []WorkerOptions{
		{LegacyWire: true},
		{},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "mixed-wire", want, got)
	if got.Wire.CompressedWorkers != 1 {
		t.Errorf("mixed fleet negotiated compression on %d workers, want 1", got.Wire.CompressedWorkers)
	}
}

// TestClusterResumeFromCompressedCheckpoint checkpoints a compressed-wire
// campaign (v3 flate-compressed checkpoint files) and resumes mid-campaign
// onto both a compressed and an uncompressed fleet of a different size;
// both must finish with the uninterrupted run's digests.
func TestClusterResumeFromCompressedCheckpoint(t *testing.T) {
	cfg := baseConfig(43, 200_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)

	var checkpoints [][]byte
	full, err := RunLocal(Config{
		Spec:            spec,
		Compress:        6,
		CheckpointEvery: 8,
		OnCheckpoint:    func(epoch int64, data []byte) { checkpoints = append(checkpoints, data) },
	}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) < 2 {
		t.Fatalf("campaign produced %d checkpoints, want at least 2", len(checkpoints))
	}
	mid := checkpoints[len(checkpoints)/2]
	for _, compress := range []int{6, 0} {
		got, err := ResumeLocal(Config{Spec: spec, Compress: compress}, mid, 4, WorkerOptions{})
		if err != nil {
			t.Fatalf("resume compress=%d: %v", compress, err)
		}
		requireSameResult(t, "resume-compressed", full, got)
	}
}

// shapedDial wraps every worker connection in a bandwidth/latency-shaped
// link, the loopback stand-in for a WAN path.
func shapedDial(opts faultinject.LinkOptions) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultinject.NewLink(conn, opts), nil
	}
}

// TestClusterShapedLinkDeterminism runs a compressed campaign over links
// shaped to 4 MiB/s with 200µs of per-frame latency: slower wall-clock,
// same digests — the shaping stage must be invisible to the merge.
func TestClusterShapedLinkDeterminism(t *testing.T) {
	cfg := baseConfig(47, 120_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	want, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(Config{Spec: spec, Compress: 6}, 2, WorkerOptions{
		Dial: shapedDial(faultinject.LinkOptions{Bandwidth: 4 << 20, Latency: 200 * time.Microsecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "shaped-link", want, got)
}
