// Cluster online continual learning: a campaign that retrains and
// hot-swaps its model mid-flight must stay bit-identical to the single-host
// engine at any worker count — the coordinator trains and gates, workers
// drain and swap on push, and the SPMV journal records match event for
// event. Checkpoints taken before, during and after swaps must resume to
// the identical final output, including restarting an in-flight retrain.

package cluster

import (
	"bytes"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/serve"
)

// onlineTestConfig builds a Snowplow campaign with an aggressive retrain
// schedule over a private server loaded from the same bytes the cluster
// spec ships, so the single-host gate incumbent and every worker's serving
// model are byte-identical.
func onlineTestConfig(t *testing.T, seed uint64, budget int64) (fuzzer.Config, []byte, *serve.Server) {
	t.Helper()
	model := testModelBytes(t)
	m, err := pmm.Load(bytes.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), serve.Options{
		Workers:   2,
		QueueSize: 1024,
		Deadline:  30 * time.Second,
	})
	cfg := baseConfig(seed, budget, 4)
	cfg.Mode = fuzzer.ModeSnowplow
	cfg.Server = srv
	cfg.Online = &online.Config{
		Every:            3,
		Lag:              2,
		MinCorpus:        2,
		MutationsPerBase: 4,
		TrainEpochs:      1,
		TrainBatch:       8,
	}
	return cfg, model, srv
}

func requireSwapActivity(t *testing.T, label string, res *Result) {
	t.Helper()
	if res.Stats.ModelRetrains == 0 {
		t.Fatalf("%s: campaign never kicked off a retrain", label)
	}
	if res.Stats.ModelSwaps == 0 {
		t.Fatalf("%s: no swap was applied mid-campaign (skipped=%d); the determinism claim is untested",
			label, res.Stats.ModelSwapsSkipped)
	}
	var swaps int
	for _, e := range res.Events {
		if e.Kind == obs.EventModelSwap {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatalf("%s: journal has no model_swap record", label)
	}
}

// TestClusterOnlineMatchesSingleHost extends the cluster guarantee to
// online learning: a campaign with mid-flight hot swaps splits across 1 or
// 2 workers (shared multi-tenant serving) with byte-identical corpus,
// coverage, journal — SPMV records included — and stats.
func TestClusterOnlineMatchesSingleHost(t *testing.T) {
	cfg, model, srv := onlineTestConfig(t, 45, 150_000)
	defer srv.Close()
	want := runSingleHost(t, cfg)
	requireSwapActivity(t, "single-host", want)

	spec := SpecFromConfig(withJournalFlag(cfg), model)
	for _, workers := range []int{1, 2} {
		got, err := RunLocal(Config{Spec: spec}, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameResult(t, "online-"+labelWorkers(workers), want, got)
	}
	// Private per-worker serving takes the two-phase push down the other
	// worker path (each worker swaps its own server instead of racing
	// tenants of a shared one); the digests must not move.
	got, err := RunLocal(Config{Spec: spec}, 2, WorkerOptions{PrivateServing: true})
	if err != nil {
		t.Fatalf("private serving: %v", err)
	}
	requireSameResult(t, "online-private", want, got)
}

// TestClusterOnlineResumeThroughSwap checkpoints an online campaign every
// barrier window and resumes from checkpoints on both sides of (and
// inside) retrain windows: a checkpoint carrying a pending retrain must
// restart it from the same corpus snapshot and land the same swap at the
// same barrier, so every resumed run finishes byte-identical to the
// uninterrupted one.
func TestClusterOnlineResumeThroughSwap(t *testing.T) {
	cfg, model, srv := onlineTestConfig(t, 46, 150_000)
	defer srv.Close()
	spec := SpecFromConfig(withJournalFlag(cfg), model)

	var checkpoints [][]byte
	full, err := RunLocal(Config{
		Spec:            spec,
		CheckpointEvery: 2,
		OnCheckpoint:    func(_ int64, data []byte) { checkpoints = append(checkpoints, data) },
	}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSwapActivity(t, "full", full)
	if len(checkpoints) < 3 {
		t.Fatalf("only %d checkpoints captured", len(checkpoints))
	}

	// Pick checkpoints spread across the campaign — with Every=3, Lag=2 and
	// CheckpointEvery=2, some carry a pending retrain (kickoff journaled,
	// swap not yet applied) and some a freshly swapped model.
	var pending int
	step := len(checkpoints)/4 + 1
	for i := 0; i < len(checkpoints); i += step {
		ck, err := DecodeCheckpoint(checkpoints[i])
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if ck.OnlinePendingVersion > 0 {
			pending++
		}
		for _, workers := range []int{1, 2} {
			got, err := ResumeLocal(Config{Spec: spec}, checkpoints[i], workers, WorkerOptions{})
			if err != nil {
				t.Fatalf("resume checkpoint %d on %d workers: %v", i, workers, err)
			}
			requireSameResult(t, "resume-ck"+labelWorkers(i)+"-"+labelWorkers(workers), full, got)
		}
	}
	// The schedule guarantees in-flight retrains exist at some barriers; if
	// none of the sampled checkpoints carried one, the resume-through-swap
	// path was not exercised.
	if pending == 0 {
		for i, data := range checkpoints {
			ck, err := DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			if ck.OnlinePendingVersion == 0 {
				continue
			}
			pending++
			got, err := ResumeLocal(Config{Spec: spec}, data, 2, WorkerOptions{})
			if err != nil {
				t.Fatalf("resume pending checkpoint %d: %v", i, err)
			}
			requireSameResult(t, "resume-pending", full, got)
			break
		}
	}
	if pending == 0 {
		t.Fatal("no checkpoint carried an in-flight retrain; tighten the schedule")
	}
}
