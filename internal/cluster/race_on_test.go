//go:build race

package cluster

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-budget assertions are meaningless under it.
const raceEnabled = true
