// The worker side of the cluster protocol: dial the coordinator, receive a
// campaign spec and VM shard, then run barrier steps until told to drain.
// All campaign logic lives in fuzzer.Shard; this file is the transport
// loop.

package cluster

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/serve"
)

// WorkerOptions tune a cluster worker.
type WorkerOptions struct {
	// Dial overrides the TCP dialer (fault-injection tests wrap the
	// connection here).
	Dial func(addr string) (net.Conn, error)
	// Inference, when non-nil, serves the worker's PMM queries instead of
	// a private model server — typically one tenant of a shared
	// multi-tenant server (see RunLocal, which multiplexes every
	// in-process worker campaign onto one model this way). Predictions
	// depend only on the model and the query, so shared and private
	// serving are bit-identical. Ignored outside Snowplow mode.
	Inference serve.Inferrer
	// PrivateServing forces a per-worker model server even where a shared
	// one would be provided (determinism comparisons, A/B benchmarks).
	PrivateServing bool
	// ServeWorkers sizes the worker's local inference server pool
	// (Snowplow mode; default 2).
	ServeWorkers int
	// Fused serves through the fused inference kernels (bit-identical to
	// the unfused path, so workers may mix freely).
	Fused bool
	// LegacyWire makes the worker speak the v1 wire protocol only: it
	// sends the legacy fixed-size Hello and never negotiates compression,
	// exactly like a worker built before the v2 wire shipped. Mixed fleets
	// (legacy and current workers on one coordinator) merge identically,
	// which this option exists to test.
	LegacyWire bool
	// IOTimeout bounds every network operation (default 60s).
	IOTimeout time.Duration
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
}

// RunWorker joins the cluster at addr and serves barrier steps until the
// campaign completes (nil) or the connection/protocol fails. A worker is
// stateless across calls: everything it needs arrives in the Assign
// message.
func RunWorker(addr string, opts WorkerOptions) error {
	dial := opts.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	timeout := opts.IOTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	conn, err := dial(addr)
	if err != nil {
		return fmt.Errorf("cluster: dialing coordinator: %w", err)
	}
	defer conn.Close()
	// fr holds the connection's negotiated wire settings and pooled frame
	// buffers; its zero value is the v1 uncompressed protocol, upgraded
	// below once the coordinator answers the extended Hello. encBuf is the
	// worker's reusable payload scratch, so the per-epoch delta encode
	// allocates nothing in steady state.
	var fr framer
	var encBuf []byte
	send := func(typ byte, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		_, err := fr.writeFrame(conn, typ, payload)
		return err
	}
	recv := func() (byte, []byte, error) {
		conn.SetReadDeadline(time.Now().Add(timeout))
		typ, payload, _, err := fr.readFrame(conn)
		return typ, payload, err
	}
	// sendErr reports a local failure to the coordinator before bailing, so
	// it reads a reason instead of a bare connection reset.
	sendErr := func(err error) error {
		send(frameErr, EncodeErr(ErrMsg{Msg: err.Error()}))
		return err
	}

	hello := Hello{Proto: protoVersion}
	if !opts.LegacyWire {
		hello.Wire = uint32(wireMax)
		hello.MaxLevel = maxFlateLevel
	}
	if err := send(frameHello, EncodeHello(hello)); err != nil {
		return err
	}
	typ, payload, err := recv()
	if err != nil {
		return err
	}
	if typ == frameWire {
		// The coordinator answered the extended Hello: adopt the settings
		// before the next frame. A v1 coordinator never sends this and
		// proceeds straight to Assign below.
		wm, err := DecodeWireMsg(payload)
		if err != nil {
			return err
		}
		if opts.LegacyWire || Wire(wm.Wire) > wireMax {
			return fmt.Errorf("%w: unnegotiated wire v%d", ErrBadMessage, wm.Wire)
		}
		fr.wire, fr.level = Wire(wm.Wire), int(wm.Level)
		logf("negotiated wire v%d, flate level %d", wm.Wire, wm.Level)
		if typ, payload, err = recv(); err != nil {
			return err
		}
	}
	wire := fr.msgWire()
	if typ == frameErr {
		em, _ := DecodeErr(payload)
		return fmt.Errorf("cluster: coordinator rejected worker: %s", em.Msg)
	}
	if typ != frameAssign {
		return fmt.Errorf("%w: frame 0x%02x, want assign", ErrBadMessage, typ)
	}
	a, err := wire.DecodeAssign(payload)
	if err != nil {
		return err
	}

	needServer := a.Spec.Mode == 1 && (opts.Inference == nil || opts.PrivateServing)
	rt, err := a.Spec.Materialize(needServer, opts.ServeWorkers, opts.Fused)
	if err != nil {
		return sendErr(err)
	}
	defer rt.Close()
	if a.Spec.Mode == 1 && !needServer {
		rt.Cfg.Server = opts.Inference
	}
	shard, err := fuzzer.NewShard(rt.Cfg)
	if err != nil {
		return sendErr(err)
	}
	for _, e := range a.Snapshot {
		if err := validateTraces(rt.Kernel, e.Traces); err != nil {
			return sendErr(err)
		}
	}
	if len(a.Snapshot) > 0 {
		if err := shard.ApplySnapshot(a.Snapshot); err != nil {
			return sendErr(err)
		}
	}
	if err := shard.Restore(a.States); err != nil {
		return sendErr(err)
	}
	if err := send(frameAck, nil); err != nil {
		return err
	}
	logf("assigned VMs %v from epoch %d", a.VMs, a.StartEpoch)

	// crashKnown tracks, per VM, how many crash-table entries the
	// coordinator already holds (every state it sent us, every delta we
	// sent it). The table is append-only, so on v2 connections each
	// outgoing delta elides that prefix and sends only its length
	// (VMDelta.CrashBase); the coordinator re-prepends its stored copy.
	crashKnown := map[int]int{}
	for _, st := range a.States {
		crashKnown[st.VM] = len(st.Crashes)
	}
	elideCrashes := func(deltas []fuzzer.VMDelta) {
		for i := range deltas {
			d := &deltas[i]
			total := len(d.State.Crashes)
			if wire.v2() {
				base := crashKnown[d.VM]
				if base > total {
					base = total // unreachable while the table is append-only
				}
				d.CrashBase = base
				d.State.Crashes = d.State.Crashes[base:]
			}
			crashKnown[d.VM] = total
		}
	}

	if a.SeedPass {
		delta, err := shard.SeedPass()
		if err != nil {
			return sendErr(err)
		}
		deltas := []fuzzer.VMDelta{*delta}
		elideCrashes(deltas)
		encBuf = wire.AppendDelta(encBuf[:0], DeltaMsg{Epoch: 0, Deltas: deltas})
		if err := send(frameDelta, encBuf); err != nil {
			return err
		}
	}

	// stagedModel holds a pushed-but-uncommitted swap between the two phases
	// of a fleet-wide model push (see frameModelPrep).
	var stagedModel *pmm.Model
	var stagedVersion int64

	for {
		typ, payload, err := recv()
		if err != nil {
			return err
		}
		switch typ {
		case frameEpoch:
			m, err := wire.DecodeEpoch(payload)
			if err != nil {
				return sendErr(err)
			}
			for _, e := range m.Accepted {
				if err := validateTraces(rt.Kernel, e.Traces); err != nil {
					return sendErr(err)
				}
			}
			if err := shard.ApplyAccepted(m.Accepted); err != nil {
				return sendErr(err)
			}
			deltas, err := shard.RunEpoch(m.Epoch, nil)
			if err != nil {
				return sendErr(err)
			}
			elideCrashes(deltas)
			encBuf = wire.AppendDelta(encBuf[:0], DeltaMsg{Epoch: m.Epoch, Deltas: deltas})
			if err := send(frameDelta, encBuf); err != nil {
				return err
			}
		case frameRestore:
			m, err := wire.DecodeRestore(payload)
			if err != nil {
				return sendErr(err)
			}
			if err := shard.Restore(m.States); err != nil {
				return sendErr(err)
			}
			vms := make([]int, 0, len(m.States))
			for _, st := range m.States {
				vms = append(vms, st.VM)
				crashKnown[st.VM] = len(st.Crashes)
			}
			logf("adopting VMs %v for epoch %d", vms, m.Epoch)
			deltas, err := shard.RunEpoch(m.Epoch, vms)
			if err != nil {
				return sendErr(err)
			}
			elideCrashes(deltas)
			encBuf = wire.AppendDelta(encBuf[:0], DeltaMsg{Epoch: m.Epoch, Deltas: deltas})
			if err := send(frameDelta, encBuf); err != nil {
				return err
			}
		case frameModelPrep:
			m, err := wire.DecodeModelMsg(payload)
			if err != nil {
				return sendErr(err)
			}
			if _, ok := rt.Cfg.Server.(serve.ModelSwapper); !ok {
				return sendErr(fmt.Errorf("cluster: serving surface cannot hot-swap models"))
			}
			// Drain before acking: once every worker acks, the coordinator
			// commits, and no in-flight query may straddle the generation
			// change (the drain is the single-host swap barrier's).
			shard.DrainPredictions()
			staged, err := pmm.Load(bytes.NewReader(m.Model))
			if err != nil {
				return sendErr(fmt.Errorf("cluster: staging model v%d: %w", m.Version, err))
			}
			stagedModel, stagedVersion = staged, m.Version
			logf("model v%d staged", m.Version)
			if err := send(frameAck, nil); err != nil {
				return err
			}
		case frameModelCommit:
			m, err := wire.DecodeModelMsg(payload)
			if err != nil {
				return sendErr(err)
			}
			if stagedModel == nil || stagedVersion != m.Version {
				return sendErr(fmt.Errorf("cluster: commit for model v%d but v%d staged", m.Version, stagedVersion))
			}
			sw := rt.Cfg.Server.(serve.ModelSwapper) // checked at prep
			// Swapped=false means a co-tenant of a shared server won the
			// race to this version — identical bytes, so it is equivalent.
			if _, err := sw.SwapModel(stagedModel, stagedVersion); err != nil {
				return sendErr(fmt.Errorf("cluster: hot-swap model v%d: %w", stagedVersion, err))
			}
			logf("model v%d live", stagedVersion)
			stagedModel, stagedVersion = nil, 0
			if err := send(frameAck, nil); err != nil {
				return err
			}
		case frameDone:
			states := shard.FinalDrain()
			return send(frameFinal, wire.AppendFinal(nil, FinalMsg{States: states}))
		case frameErr:
			em, _ := DecodeErr(payload)
			return fmt.Errorf("cluster: coordinator failed: %s", em.Msg)
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x", ErrBadMessage, typ)
		}
	}
}
