// Per-connection framing with an optional flate entropy stage. The framer
// sits where the cluster protocol used serve.WriteFrame/ReadFrame directly:
// it emits the same [4-byte big-endian length | type | payload] layout, but
// a negotiated flate level lets it replace the payload with a compressed
// form (type byte ORed with frameCompressed, payload = uvarint declared raw
// length + one flushed chunk of the connection's deflate stream).
//
// Compression is streaming: each direction keeps ONE deflate stream alive
// for the connection's lifetime and emits a sync-flushed chunk per frame,
// so the compressor's 32 KiB window carries across frames. That is where
// most of the win comes from — consecutive epochs repeat program text,
// trace shapes and state layouts almost verbatim, and the window turns
// those repeats into back-references a per-frame compressor could never
// see. The chunking rule is a pure function of the payload length (frames
// under compressMinBytes bypass the stream entirely), so sender and
// receiver window states stay in lockstep by construction.
//
// All scratch — the assembled outbound frame, the compressor, the inbound
// payload and inflate buffers — is pooled per connection, so the per-epoch
// hot path (encode delta, compress, write; read, inflate, decode) is
// allocation-free in steady state. The declared raw length is checked
// against the frame payload cap before touching the stream, so a corrupt
// or hostile frame cannot balloon memory (the decompression-bomb guard).

package cluster

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/serve"
)

// frameCompressed marks a frame whose payload is flate-compressed; the low
// bits carry the ordinary frame type.
const frameCompressed byte = 0x80

// wireFrameHeader is the byte cost of the shared frame header (4-byte
// length + 1 type byte), mirrored from internal/serve's framing.
const wireFrameHeader = 5

// compressMinBytes is the smallest payload worth attempting to compress;
// below this the flate header overhead dominates.
const compressMinBytes = 64

// blobFlateLevel is the fixed flate level for message-embedded blobs
// (ModelMsg model bytes, checkpoint bodies). It is a constant — not the
// negotiated frame level — so those encodings stay canonical: decode
// re-compresses at this level and requires an exact byte match.
const blobFlateLevel = flate.BestCompression

// byteSink is an io.Writer appending into a reusable slice, the target the
// pooled flate.Writer compresses into.
type byteSink struct{ b []byte }

func (s *byteSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// appendFlate appends a deflate compression of src at the given level to
// dst and returns the extended slice.
func appendFlate(dst, src []byte, level int) []byte {
	sink := &byteSink{b: dst}
	fw, err := flate.NewWriter(sink, level)
	if err != nil {
		panic(err) // static level out of range: a programming error
	}
	fw.Write(src)
	fw.Close()
	return sink.b
}

// inflateExact decompresses a deflate stream that must yield exactly
// rawLen bytes — no fewer, no more. Callers bound rawLen before calling,
// so this never allocates beyond the declared size.
func inflateExact(comp []byte, rawLen int) ([]byte, error) {
	out := make([]byte, rawLen)
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, fmt.Errorf("%w: corrupt flate stream: %v", ErrBadMessage, err)
	}
	var extra [1]byte
	if _, err := io.ReadFull(fr, extra[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: flate stream longer than declared", ErrBadMessage)
	}
	return out, nil
}

// framer carries one connection's negotiated wire settings, its two
// deflate stream states and pooled buffers, and keeps raw-vs-wire byte
// accounting for the compression metrics. The zero value speaks wire v1
// uncompressed — exactly the pre-negotiation framing — so both ends start
// from it and upgrade after the Hello/WireMsg exchange. Not safe for
// concurrent use; the cluster protocol is strictly lock-step per
// connection.
type framer struct {
	wire  Wire // negotiated codec version for message payloads
	level int  // negotiated flate level; 0 = no compression on send

	fw   *flate.Writer // outbound stream compressor, lives for the connection
	sink byteSink      // compressor target, backing array reused
	wbuf []byte        // assembled outbound frame
	rbuf []byte        // inbound frame payload
	dbuf []byte        // inflated inbound payload
	fr   io.ReadCloser // inbound stream decompressor, lives for the connection
	cbuf bytes.Buffer  // decompressor source: compressed chunks in arrival order

	txRaw, txWire int64 // payload bytes before/after compression, sent
	rxRaw, rxWire int64 // payload bytes after/before inflation, received
}

func (f *framer) msgWire() Wire {
	if f.wire == 0 {
		return WireV1
	}
	return f.wire
}

// writeFrame frames and sends one message payload in a single Write,
// routing it through the connection's deflate stream when a level was
// negotiated and the payload clears the size floor. It returns the
// on-the-wire byte count (header included). The route is decided by
// payload length alone — never by whether compression won — because the
// receiver's decompressor window must see exactly the chunks the sender's
// compressor window saw.
func (f *framer) writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload) > serve.MaxFramePayload {
		return 0, fmt.Errorf("cluster: frame payload %d exceeds limit", len(payload))
	}
	f.txRaw += int64(len(payload)) + wireFrameHeader
	out, outTyp := payload, typ
	if f.level > 0 && len(payload) >= compressMinBytes {
		f.sink.b = binary.AppendUvarint(f.sink.b[:0], uint64(len(payload)))
		if f.fw == nil {
			fw, err := flate.NewWriter(&f.sink, f.level)
			if err != nil {
				return 0, err
			}
			f.fw = fw
		}
		f.fw.Write(payload)
		if err := f.fw.Flush(); err != nil {
			return 0, err
		}
		out, outTyp = f.sink.b, typ|frameCompressed
	}
	f.wbuf = append(f.wbuf[:0], 0, 0, 0, 0, outTyp)
	binary.BigEndian.PutUint32(f.wbuf[:4], uint32(len(out)))
	f.wbuf = append(f.wbuf, out...)
	n := len(f.wbuf)
	f.txWire += int64(n)
	if _, err := w.Write(f.wbuf); err != nil {
		return 0, err
	}
	return n, nil
}

// readFrame reads one frame into pooled buffers, inflating a compressed
// payload after validating its declared raw length against the frame
// payload cap (so a hostile length cannot force a huge allocation, and a
// corrupt stream is rejected with ErrBadMessage). The returned payload
// aliases the framer's buffers and is valid until the next readFrame.
func (f *framer) readFrame(r io.Reader) (byte, []byte, int, error) {
	var hdr [wireFrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > serve.MaxFramePayload {
		return 0, nil, 0, fmt.Errorf("%w: frame payload %d exceeds limit", ErrBadMessage, n)
	}
	if cap(f.rbuf) < int(n) {
		f.rbuf = make([]byte, int(n))
	}
	payload := f.rbuf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	wireBytes := int(n) + wireFrameHeader
	f.rxWire += int64(wireBytes)
	typ := hdr[4]
	if typ&frameCompressed != 0 {
		raw, err := f.inflateFrame(payload)
		if err != nil {
			return 0, nil, 0, err
		}
		payload = raw
		typ &^= frameCompressed
	}
	f.rxRaw += int64(len(payload)) + wireFrameHeader
	return typ, payload, wireBytes, nil
}

// inflateFrame appends a compressed frame's chunk to the connection's
// deflate stream and reads the declared number of raw bytes out of it,
// into the pooled inflate buffer. The declared size is bomb-guarded before
// the chunk touches the stream; a chunk that cannot yield that many bytes
// (truncated, corrupt, or out of sequence) fails with ErrBadMessage, which
// is fatal for the connection — the stream has no resync point, exactly
// like the rest of the protocol state.
func (f *framer) inflateFrame(payload []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: compressed frame header", ErrBadMessage)
	}
	if rawLen > serve.MaxFramePayload {
		return nil, fmt.Errorf("%w: declared decompressed size %d exceeds cap %d",
			ErrBadMessage, rawLen, serve.MaxFramePayload)
	}
	f.cbuf.Write(payload[n:])
	if f.fr == nil {
		f.fr = flate.NewReader(&f.cbuf)
	}
	if cap(f.dbuf) < int(rawLen) {
		f.dbuf = make([]byte, int(rawLen))
	}
	out := f.dbuf[:rawLen]
	if _, err := io.ReadFull(f.fr, out); err != nil {
		return nil, fmt.Errorf("%w: corrupt flate stream: %v", ErrBadMessage, err)
	}
	return out, nil
}
