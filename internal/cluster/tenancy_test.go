package cluster

import (
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
)

// TestClusterSharedServingMatchesPrivate is the serving-multiplexing A/B:
// the same Snowplow campaign run once on the default loopback path (every
// in-process worker a tenant of one shared multi-tenant model server) and
// once with WorkerOptions.PrivateServing (a private model replica per
// worker, the pre-PR-8 behavior) must produce byte-identical corpus,
// coverage and journal digests. Sharing the model changes the memory
// footprint, never a prediction.
func TestClusterSharedServingMatchesPrivate(t *testing.T) {
	model := testModelBytes(t)
	cfg := baseConfig(46, 200_000, 4)
	cfg.Mode = fuzzer.ModeSnowplow
	spec := SpecFromConfig(withJournalFlag(cfg), model)
	for _, workers := range []int{1, 2} {
		shared, err := RunLocal(Config{Spec: spec}, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("shared serving, workers=%d: %v", workers, err)
		}
		if shared.Stats.PMMQueries == 0 {
			t.Fatalf("workers=%d: shared-serving campaign issued no PMM queries", workers)
		}
		private, err := RunLocal(Config{Spec: spec}, workers, WorkerOptions{PrivateServing: true})
		if err != nil {
			t.Fatalf("private serving, workers=%d: %v", workers, err)
		}
		requireSameResult(t, labelWorkers(workers)+"/shared-vs-private", private, shared)
	}
}
