// Benchmarks for the per-epoch wire hot path: delta encode/decode at both
// wire versions (fixed-width v1 vs sparse varint v2) and the full framed
// path with the flate stage, plus the allocation-budget guard pinning the
// pooled framing layer to zero steady-state allocations. The bench delta is
// sized like a real barrier's: several VMs, dozens of accepted locals,
// traces over nearby basic blocks (which is exactly the shape the varint
// delta encoding and flate both exploit).

package cluster

import (
	"bytes"
	"io"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
)

// benchDeltaMsg builds a deterministic, realistically shaped epoch delta:
// 4 VMs, 8 locals each, 3 traces of 48 nearby blocks per local.
func benchDeltaMsg() DeltaMsg {
	state := uint64(12345)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % mod
	}
	var deltas []fuzzer.VMDelta
	for vm := 0; vm < 4; vm++ {
		d := fuzzer.VMDelta{VM: vm, State: fixtureVMState()}
		d.State.VM = vm
		for l := 0; l < 8; l++ {
			loc := fuzzer.Local{Text: "r0 = open(&(0x7f0000000000), 0x0, 0x0)"}
			for tr := 0; tr < 3; tr++ {
				blocks := make([]kernel.BlockID, 48)
				base := next(4000)
				for i := range blocks {
					base += next(7) // traces walk nearby blocks
					blocks[i] = kernel.BlockID(base)
				}
				loc.Traces = append(loc.Traces, blocks)
			}
			d.Locals = append(d.Locals, loc)
		}
		deltas = append(deltas, d)
	}
	return DeltaMsg{Epoch: 9, Deltas: deltas}
}

func BenchmarkEncodeDelta(b *testing.B) {
	msg := benchDeltaMsg()
	b.Run("raw-v1", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = WireV1.AppendDelta(buf[:0], msg)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("sparse-v2", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = WireV2.AppendDelta(buf[:0], msg)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("sparse-v2-flate", func(b *testing.B) {
		var fr framer
		fr.wire, fr.level = WireV2, 6
		var buf []byte
		var n int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = WireV2.AppendDelta(buf[:0], msg)
			var err error
			if n, err = fr.writeFrame(io.Discard, frameDelta, buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(n))
	})
}

func BenchmarkDecodeDelta(b *testing.B) {
	msg := benchDeltaMsg()
	b.Run("raw-v1", func(b *testing.B) {
		payload := WireV1.AppendDelta(nil, msg)
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := WireV1.DecodeDelta(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-v2", func(b *testing.B) {
		payload := WireV2.AppendDelta(nil, msg)
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := WireV2.DecodeDelta(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-v2-flate", func(b *testing.B) {
		// Compression is a per-connection stream, so the decode side cannot
		// replay one recorded frame: each iteration runs the sender too, in
		// lockstep, exactly like a live connection.
		var tx, rx framer
		tx.level = 6
		raw := WireV2.AppendDelta(nil, msg)
		var frame bytes.Buffer
		var r bytes.Reader
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame.Reset()
			if _, err := tx.writeFrame(&frame, frameDelta, raw); err != nil {
				b.Fatal(err)
			}
			r.Reset(frame.Bytes())
			_, payload, _, err := rx.readFrame(&r)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := WireV2.DecodeDelta(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// maxFramingBytesPerOp is the steady-state allocation budget for the framing
// layer — encode into a reused buffer, compress, frame, read back, inflate.
// Every buffer this package owns is pooled, and because both deflate streams
// live for the connection (one Flush per frame, no per-frame Reset), the
// stdlib compressor and decompressor state is built once and reused too. The
// measured cost is single-digit bytes per frame (an occasional Huffman-block
// boundary inside the stream); the budget leaves headroom for stdlib noise
// while still failing on any real pooling regression.
const maxFramingBytesPerOp = 512

func benchWireFramingSteadyState(b *testing.B) {
	msg := benchDeltaMsg()
	var tx, rx framer
	tx.wire, tx.level = WireV2, 6
	rx.wire, rx.level = WireV2, 6
	var buf []byte
	var frame bytes.Buffer
	var r bytes.Reader
	// One warm round sizes every pooled buffer before measurement. Sender
	// and receiver run in lockstep throughout — streaming compression means
	// a frame only decodes against the window its predecessors built.
	buf = WireV2.AppendDelta(buf[:0], msg)
	if _, err := tx.writeFrame(&frame, frameDelta, buf); err != nil {
		b.Fatal(err)
	}
	r.Reset(frame.Bytes())
	if _, _, _, err := rx.readFrame(&r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = WireV2.AppendDelta(buf[:0], msg)
		frame.Reset()
		if _, err := tx.writeFrame(&frame, frameDelta, buf); err != nil {
			b.Fatal(err)
		}
		r.Reset(frame.Bytes())
		if _, _, _, err := rx.readFrame(&r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireFramingSteadyState(b *testing.B) { benchWireFramingSteadyState(b) }

// TestWireFramingAllocBudget pins the framing hot path to its allocation
// budget, mirroring the serving-path guard: the per-epoch encode/compress/
// frame/read/inflate cycle must not allocate in steady state.
func TestWireFramingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget measurement in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the allocation footprint")
	}
	res := testing.Benchmark(benchWireFramingSteadyState)
	if got := res.AllocedBytesPerOp(); got > maxFramingBytesPerOp {
		t.Fatalf("wire framing allocates %d B/op, budget %d (result %s, %s)",
			got, maxFramingBytesPerOp, res.String(), res.MemString())
	}
	t.Logf("wire framing: %s %s (budget %d B/op)", res.String(), res.MemString(), maxFramingBytesPerOp)
}
