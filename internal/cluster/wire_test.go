// Wire and checkpoint format tests: golden round trips for every message
// kind, typed-error coverage for version/truncation/corruption failures,
// and byte-stability of the encoding (the codec is a persistence format —
// checkpoints outlive processes — so its bytes must not drift silently).

package cluster

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/trace"
)

// fixtureCover builds the sparse encoding of a cover holding exactly n
// edges, for checkpoint fixtures whose TotalEdges must match their Cover.
func fixtureCover(n int) []byte {
	cov := trace.NewCover()
	for i := 0; i < n; i++ {
		cov.Add(trace.MakeEdge(kernel.BlockID(i/7), kernel.BlockID(100+i)))
	}
	return cov.AppendSparse(nil)
}

// fixtureSpec is a fully populated spec exercising every field.
func fixtureSpec() CampaignSpec {
	return CampaignSpec{
		Mode:                   1,
		KernelVersion:          "6.8",
		Seed:                   0xdeadbeef,
		Budget:                 1_000_000,
		TotalVMs:               4,
		SyncEvery:              512,
		SampleEvery:            10_000,
		FallbackProb:           0.125,
		DegradedFallbackProb:   0.875,
		GenerateProb:           0.0625,
		MutationsPerPrediction: 4,
		MaxQueryTargets:        16,
		MaxPending:             8,
		MinimizeCorpus:         true,
		Journal:                true,
		SeedProgs:              []string{"prog-a", "prog-b"},
		Model:                  []byte{1, 2, 3, 4, 5},
	}
}

func fixtureVMState() fuzzer.VMState {
	return fuzzer.VMState{
		VM:          2,
		RNG:         [4]uint64{1, 2, 3, 4},
		Flaky:       [4]uint64{5, 6, 7, 8},
		Execs:       100,
		BlocksRun:   2000,
		Cost:        2000,
		Budget:      250_000,
		Epochs:      7,
		Reconciled:  42,
		Phantom:     1,
		QueueWaitNs: 12345,
		Counters: fuzzer.VMCounters{
			Executions:     100,
			PMMQueries:     10,
			PMMPredictions: 9,
			PMMFailed:      1,
			Yield:          fuzzer.YieldStats{GuidedExecs: 5, GuidedEdges: 3, RandArgExecs: 50, RandArgEdges: 11},
		},
		Crashes: []fuzzer.CrashState{{
			Title: "KASAN: use-after-free in f", Category: "memory", Detector: "kasan",
			KnownSince: "v6.1", Flaky: true, ProgText: "close(r0)", Cost: 777,
		}},
		Preds: []fuzzer.PredState{
			{Text: "prog-a", Pending: true, Targets: []kernel.BlockID{3, 9}},
			{Text: "prog-b", Local: true, Slots: []prog.GlobalSlot{{Call: 0, Slot: 1}, {Call: 2, Slot: 0}}},
		},
	}
}

func fixtureDelta() fuzzer.VMDelta {
	return fuzzer.VMDelta{
		VM: 2,
		Locals: []fuzzer.Local{
			{Text: "prog-a", Traces: [][]kernel.BlockID{{1, 2, 3}, {4}}},
			{Text: "prog-b", Traces: [][]kernel.BlockID{{5, 6}}, Seeded: true},
		},
		Events: []obs.Event{
			{Kind: obs.EventNewEdges, VM: 2, Epoch: 3, Cost: 1500, Value: 7, Detail: "x"},
			{Kind: obs.EventCrash, VM: 2, Epoch: 3, Cost: 1600, Detail: "KASAN: slab-out-of-bounds"},
		},
		State: fixtureVMState(),
	}
}

// TestWireRoundTrips pins decode(encode(m)) == m for every message kind.
func TestWireRoundTrips(t *testing.T) {
	hello := Hello{Proto: protoVersion, Wire: uint32(wireMax), MaxLevel: maxFlateLevel}
	if got, err := DecodeHello(EncodeHello(hello)); err != nil || got != hello {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	// A legacy hello normalizes to wire v1, no compression.
	legacy := Hello{Proto: protoVersion}
	if got, err := DecodeHello(EncodeHello(legacy)); err != nil ||
		got != (Hello{Proto: protoVersion, Wire: 1}) {
		t.Fatalf("legacy hello round trip: %+v, %v", got, err)
	}

	wm := WireMsg{Wire: uint32(WireV2), Level: 6}
	if got, err := DecodeWireMsg(EncodeWireMsg(wm)); err != nil || got != wm {
		t.Fatalf("wire msg round trip: %+v, %v", got, err)
	}

	assign := Assign{
		Spec:       fixtureSpec(),
		VMs:        []int{2, 3},
		Snapshot:   []fuzzer.Accepted{{VM: -1, Seeded: true, Text: "prog-a", Traces: [][]kernel.BlockID{{1, 2}}}},
		States:     []fuzzer.VMState{fixtureVMState()},
		StartEpoch: 9,
		SeedPass:   true,
	}
	if got, err := DecodeAssign(EncodeAssign(assign)); err != nil || !reflect.DeepEqual(got, assign) {
		t.Fatalf("assign round trip: %+v, %v", got, err)
	}

	epoch := EpochMsg{Epoch: 4, Accepted: []fuzzer.Accepted{{VM: 1, Text: "p", Traces: [][]kernel.BlockID{{7}}}}}
	if got, err := DecodeEpoch(EncodeEpoch(epoch)); err != nil || !reflect.DeepEqual(got, epoch) {
		t.Fatalf("epoch round trip: %+v, %v", got, err)
	}

	delta := DeltaMsg{Epoch: 4, Deltas: []fuzzer.VMDelta{fixtureDelta()}}
	if got, err := DecodeDelta(EncodeDelta(delta)); err != nil || !reflect.DeepEqual(got, delta) {
		t.Fatalf("delta round trip: %+v, %v", got, err)
	}

	restore := RestoreMsg{Epoch: 5, States: []fuzzer.VMState{fixtureVMState()}}
	if got, err := DecodeRestore(EncodeRestore(restore)); err != nil || !reflect.DeepEqual(got, restore) {
		t.Fatalf("restore round trip: %+v, %v", got, err)
	}

	final := FinalMsg{States: []fuzzer.VMState{fixtureVMState()}}
	if got, err := DecodeFinal(EncodeFinal(final)); err != nil || !reflect.DeepEqual(got, final) {
		t.Fatalf("final round trip: %+v, %v", got, err)
	}

	em := ErrMsg{Msg: "boom"}
	if got, err := DecodeErr(EncodeErr(em)); err != nil || got != em {
		t.Fatalf("err round trip: %+v, %v", got, err)
	}
}

// TestWireEmptyRoundTrips pins the zero values: empty messages must encode
// and decode cleanly (empty shards and empty epochs are legal).
func TestWireEmptyRoundTrips(t *testing.T) {
	if got, err := DecodeAssign(EncodeAssign(Assign{})); err != nil || !reflect.DeepEqual(got, Assign{}) {
		t.Fatalf("empty assign: %+v, %v", got, err)
	}
	if got, err := DecodeEpoch(EncodeEpoch(EpochMsg{})); err != nil || !reflect.DeepEqual(got, EpochMsg{}) {
		t.Fatalf("empty epoch: %+v, %v", got, err)
	}
	if got, err := DecodeDelta(EncodeDelta(DeltaMsg{})); err != nil || !reflect.DeepEqual(got, DeltaMsg{}) {
		t.Fatalf("empty delta: %+v, %v", got, err)
	}
	if got, err := DecodeFinal(EncodeFinal(FinalMsg{})); err != nil || !reflect.DeepEqual(got, FinalMsg{}) {
		t.Fatalf("empty final: %+v, %v", got, err)
	}
}

// TestWireTypedErrors pins the error taxonomy: truncation at every byte
// boundary yields ErrTruncated or ErrBadMessage (never a panic or silent
// success), and trailing garbage is rejected.
func TestWireTypedErrors(t *testing.T) {
	full := EncodeDelta(DeltaMsg{Epoch: 4, Deltas: []fuzzer.VMDelta{fixtureDelta()}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeDelta(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(full))
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMessage) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
	if _, err := DecodeDelta(append(append([]byte(nil), full...), 0x00)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing garbage: %v", err)
	}
	// A length prefix claiming more items than bytes remain must be
	// rejected before allocation.
	huge := EncodeEpoch(EpochMsg{})
	huge[8] = 0xff // accepted-list length -> bogus
	if _, err := DecodeEpoch(huge); err == nil {
		t.Fatal("bogus list length decoded successfully")
	}
}

// TestCheckpointRoundTrip pins the checkpoint container: golden round trip,
// version gating, digest verification and truncation behavior.
func TestCheckpointRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Spec:        fixtureSpec(),
		Epoch:       16,
		Seq:         321,
		NextSample:  50_000,
		Series:      []fuzzer.Point{{Cost: 10_000, Edges: 120}, {Cost: 20_000, Edges: 150}},
		Entries:     []fuzzer.Accepted{{VM: -1, Seeded: true, Text: "prog-a", Traces: [][]kernel.BlockID{{1, 2}}}},
		TotalEdges:  150,
		Cover:       fixtureCover(150),
		States:      []fuzzer.VMState{fixtureVMState()},
		PendingSeed: []obs.Event{{Kind: obs.EventSeed, Value: 10}},
		JournalCap:  8192,
		Journal:     []obs.Event{{Seq: 0, Kind: obs.EventCampaignStart, VM: -1, Detail: "syzkaller seed=1 vms=4 budget=100"}},
		JournalNext: 1,
	}
	data := ck.Encode()
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	ck.ModelDigest = got.ModelDigest // Encode computes it; compare the rest
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("checkpoint round trip diverged:\n%+v\nvs\n%+v", got, ck)
	}

	if !bytes.Equal(data, got.Encode()) {
		t.Fatal("checkpoint re-encode is not byte-identical")
	}

	if _, err := DecodeCheckpoint([]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00")); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad magic: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version field
	if _, err := DecodeCheckpoint(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	for _, cut := range []int{0, 3, 11, len(data) / 2, len(data) - 1} {
		if _, err := DecodeCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncated checkpoint (%d bytes) decoded", cut)
		}
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff // model digest byte
	if _, err := DecodeCheckpoint(corrupt); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("corrupt model digest: %v", err)
	}
}

// TestWireEncodingStable pins exact bytes for a small message: the codec is
// a persistence format, so accidental layout changes must fail a test, not
// silently orphan old checkpoints.
func TestWireEncodingStable(t *testing.T) {
	got := EncodeEpoch(EpochMsg{Epoch: 1, Accepted: []fuzzer.Accepted{{VM: 1, Text: "ab", Traces: [][]kernel.BlockID{{2}}}}})
	want := []byte{
		1, 0, 0, 0, 0, 0, 0, 0, // epoch
		1, 0, 0, 0, 0, 0, 0, 0, // accepted count
		1, 0, 0, 0, 0, 0, 0, 0, // VM
		0,                      // seeded=false
		2, 0, 0, 0, 0, 0, 0, 0, // len("ab")
		'a', 'b',
		1, 0, 0, 0, 0, 0, 0, 0, // trace count
		1, 0, 0, 0, 0, 0, 0, 0, // block count
		2, 0, 0, 0, 0, 0, 0, 0, // block id
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire layout changed:\ngot  %v\nwant %v", got, want)
	}
}

// TestWriteCheckpointFileAtomic exercises the temp+rename path.
func TestWriteCheckpointFileAtomic(t *testing.T) {
	path := t.TempDir() + "/camp.ckpt"
	ck := &Checkpoint{Spec: fixtureSpec(), Epoch: 1, JournalCap: 1, Cover: fixtureCover(0)}
	if err := WriteCheckpointFile(path, ck.Encode()); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second checkpoint; the rename must replace.
	ck.Epoch = 2
	if err := WriteCheckpointFile(path, ck.Encode()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 {
		t.Fatalf("checkpoint file holds epoch %d, want 2", got.Epoch)
	}
}
