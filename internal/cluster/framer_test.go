// Frame-compression and v2-codec tests: golden bytes for the sparse varint
// encoding and the negotiation messages, structural checks on compressed
// frames (the flate bytes themselves vary across Go releases, so goldens
// stop at the layout), and regressions for every decompression-bomb guard.

package cluster

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
)

// TestWireV2EncodingStable pins exact bytes for the v2 form of the same
// message TestWireEncodingStable pins for v1: scalars and list headers keep
// the fixed-width layout, only trace block lists switch to varint deltas.
func TestWireV2EncodingStable(t *testing.T) {
	got := WireV2.AppendEpoch(nil, EpochMsg{Epoch: 1, Accepted: []fuzzer.Accepted{{VM: 1, Text: "ab", Traces: [][]kernel.BlockID{{2, 3, 7}}}}})
	want := []byte{
		1, 0, 0, 0, 0, 0, 0, 0, // epoch
		1, 0, 0, 0, 0, 0, 0, 0, // accepted count
		1, 0, 0, 0, 0, 0, 0, 0, // VM
		0,                      // seeded=false
		2, 0, 0, 0, 0, 0, 0, 0, // len("ab")
		'a', 'b',
		1,       // trace count (uvarint)
		3,       // block count (uvarint)
		4, 2, 8, // zigzag deltas: +2, +1, +4
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v2 wire layout changed:\ngot  %v\nwant %v", got, want)
	}
	back, err := WireV2.DecodeEpoch(got)
	if err != nil || len(back.Accepted) != 1 || len(back.Accepted[0].Traces[0]) != 3 {
		t.Fatalf("v2 golden did not decode: %+v, %v", back, err)
	}
}

// TestDeltaCrashBase pins the v2 crash-table elision field: it round-trips
// at v2, stays off the v1 wire entirely (a v1 encode is identical with or
// without it), and implausible decoded values are rejected.
func TestDeltaCrashBase(t *testing.T) {
	d := fixtureDelta()
	d.CrashBase = 3
	msg := DeltaMsg{Epoch: 4, Deltas: []fuzzer.VMDelta{d}}
	got, err := WireV2.DecodeDelta(WireV2.AppendDelta(nil, msg))
	if err != nil || got.Deltas[0].CrashBase != 3 {
		t.Fatalf("v2 crash base round trip: %+v, %v", got, err)
	}

	plain := d
	plain.CrashBase = 0
	v1With := WireV1.AppendDelta(nil, msg)
	v1Without := WireV1.AppendDelta(nil, DeltaMsg{Epoch: 4, Deltas: []fuzzer.VMDelta{plain}})
	if !bytes.Equal(v1With, v1Without) {
		t.Fatal("crash base leaked into the v1 encoding")
	}

	var bad enc
	bad.i64(1)       // epoch
	bad.int(1)       // delta count
	bad.int(2)       // VM
	bad.u64(1 << 40) // crash base: implausible
	if _, err := WireV2.DecodeDelta(bad.b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("implausible crash base: %v", err)
	}
}

// TestRestoreCrashes pins the coordinator half of crash-table elision: the
// stored prefix is re-prepended, a base beyond the known table is a typed
// protocol error, and a base for an unknown VM is rejected.
func TestRestoreCrashes(t *testing.T) {
	full := fixtureVMState()
	full.Crashes = []fuzzer.CrashState{
		{Title: "KASAN: a", ProgText: "p1"},
		{Title: "KASAN: b", ProgText: "p2"},
		{Title: "KASAN: c", ProgText: "p3"},
	}
	c := &Coordinator{states: []fuzzer.VMState{{}, {}, full}}

	trimmed := full
	trimmed.Crashes = []fuzzer.CrashState{{Title: "KASAN: d", ProgText: "p4"}}
	m := DeltaMsg{Deltas: []fuzzer.VMDelta{{VM: 2, CrashBase: 3, State: trimmed}}}
	if err := c.restoreCrashes(&m); err != nil {
		t.Fatal(err)
	}
	got := m.Deltas[0].State.Crashes
	if len(got) != 4 || got[0].Title != "KASAN: a" || got[3].Title != "KASAN: d" {
		t.Fatalf("rebuilt table: %+v", got)
	}
	if m.Deltas[0].CrashBase != 0 {
		t.Fatal("crash base not cleared after reconstruction")
	}

	over := DeltaMsg{Deltas: []fuzzer.VMDelta{{VM: 2, CrashBase: 4}}}
	if err := c.restoreCrashes(&over); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("base beyond known table: %v", err)
	}
	badVM := DeltaMsg{Deltas: []fuzzer.VMDelta{{VM: 9, CrashBase: 1}}}
	if err := c.restoreCrashes(&badVM); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("base for unknown VM: %v", err)
	}
}

// TestHelloEncodingStable pins both Hello forms and the WireMsg reply: the
// negotiation handshake is the one part of the protocol two releases must
// always agree on byte-for-byte.
func TestHelloEncodingStable(t *testing.T) {
	legacy := EncodeHello(Hello{Proto: 2})
	if want := []byte{2, 0, 0, 0, 0, 0, 0, 0}; !bytes.Equal(legacy, want) {
		t.Fatalf("legacy hello: got %v want %v", legacy, want)
	}
	ext := EncodeHello(Hello{Proto: 2, Wire: 2, MaxLevel: 9})
	if want := []byte{
		2, 0, 0, 0, 0, 0, 0, 0,
		2, 0, 0, 0, 0, 0, 0, 0,
		9, 0, 0, 0, 0, 0, 0, 0,
	}; !bytes.Equal(ext, want) {
		t.Fatalf("extended hello: got %v want %v", ext, want)
	}
	wm := EncodeWireMsg(WireMsg{Wire: 2, Level: 6})
	if want := []byte{
		2, 0, 0, 0, 0, 0, 0, 0,
		6, 0, 0, 0, 0, 0, 0, 0,
	}; !bytes.Equal(wm, want) {
		t.Fatalf("wire msg: got %v want %v", wm, want)
	}
	// An extended hello claiming wire v1 would re-encode to the legacy form;
	// exactly one encoding per message, so it is rejected.
	if _, err := DecodeHello([]byte{
		2, 0, 0, 0, 0, 0, 0, 0,
		1, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
	}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("extended hello with wire v1: %v", err)
	}
	if _, err := DecodeWireMsg(EncodeWireMsg(WireMsg{Wire: uint32(wireMax) + 1, Level: 0})); !errors.Is(err, ErrBadVersion) {
		t.Fatal("future wire version accepted")
	}
	if _, err := DecodeWireMsg(EncodeWireMsg(WireMsg{Wire: 2, Level: maxFlateLevel + 1})); !errors.Is(err, ErrBadMessage) {
		t.Fatal("out-of-range flate level accepted")
	}
}

// TestFramerCompressedRoundTrip pins the compressed frame structure: the
// type byte carries frameCompressed, the wire frame is strictly smaller
// than the raw one, the payload survives the round trip, and both ends'
// byte accounting agrees.
func TestFramerCompressedRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("snowplow wire"), 512)
	var tx, rx framer
	tx.level = 6
	var buf bytes.Buffer
	n, err := tx.writeFrame(&buf, frameDelta, payload)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4] != frameDelta|frameCompressed {
		t.Fatalf("frame type 0x%02x, want compressed delta", raw[4])
	}
	if n != len(raw) || n >= len(payload)+wireFrameHeader {
		t.Fatalf("compressed frame is %d bytes for a %d-byte payload", n, len(payload))
	}
	typ, got, wireN, err := rx.readFrame(&buf)
	if err != nil || typ != frameDelta || wireN != n {
		t.Fatalf("readFrame: typ=0x%02x n=%d err=%v", typ, wireN, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload did not survive the compressed round trip")
	}
	if tx.txRaw != int64(len(payload)+wireFrameHeader) || tx.txWire != int64(n) {
		t.Fatalf("tx accounting: raw=%d wire=%d", tx.txRaw, tx.txWire)
	}
	if rx.rxRaw != tx.txRaw || rx.rxWire != tx.txWire {
		t.Fatalf("rx accounting diverged from tx: raw %d vs %d, wire %d vs %d",
			rx.rxRaw, tx.txRaw, rx.rxWire, tx.txWire)
	}
}

// TestFramerKeepsSmallFramesRaw pins the raw-passthrough case: payloads
// under the compression floor bypass the deflate stream entirely (on both
// ends — the routing rule is a pure function of the length), staying
// byte-compatible with an uncompressed peer.
func TestFramerKeepsSmallFramesRaw(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte("tiny"), // under compressMinBytes
		nil,            // empty
	} {
		var tx framer
		tx.level = 6
		var buf bytes.Buffer
		if _, err := tx.writeFrame(&buf, frameDelta, payload); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if raw[4] != frameDelta {
			t.Fatalf("%d-byte payload was compressed (type 0x%02x)", len(payload), raw[4])
		}
		if !bytes.Equal(raw[wireFrameHeader:], payload) {
			t.Fatal("raw frame payload altered")
		}
	}
}

// TestFramerBombGuard crafts a compressed frame declaring a decompressed
// size over the payload cap: it must be rejected before any inflation.
func TestFramerBombGuard(t *testing.T) {
	comp := binary.AppendUvarint(nil, 1<<40)
	comp = appendFlate(comp, []byte("x"), 6)
	frame := make([]byte, 4, 5+len(comp))
	binary.BigEndian.PutUint32(frame, uint32(len(comp)))
	frame = append(frame, frameDelta|frameCompressed)
	frame = append(frame, comp...)
	var rx framer
	if _, _, _, err := rx.readFrame(bytes.NewReader(frame)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("decompression bomb: %v", err)
	}
	if cap(rx.dbuf) != 0 {
		t.Fatalf("bomb guard ran after allocating %d bytes", cap(rx.dbuf))
	}
}

// TestFramerCorruptFlateRejected corrupts a compressed frame's chunk and
// truncates one: a receiver must fail typed, never panic or hand back
// wrong bytes silently accepted as a frame.
func TestFramerCorruptFlateRejected(t *testing.T) {
	payload := bytes.Repeat([]byte("snowplow wire"), 512)
	var tx framer
	tx.level = 6
	var buf bytes.Buffer
	if _, err := tx.writeFrame(&buf, frameDelta, payload); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)

	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0xff
	var rx framer
	if _, _, _, err := rx.readFrame(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt flate stream decoded")
	}

	// A chunk truncated mid-stream cannot yield the declared bytes.
	var rx2 framer
	short := append([]byte(nil), pristine[:len(pristine)-8]...)
	binary.BigEndian.PutUint32(short, uint32(len(short)-wireFrameHeader))
	if _, _, _, err := rx2.readFrame(bytes.NewReader(short)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated flate chunk: %v", err)
	}
}

// TestFramerStreamingWindow pins the streaming property the bandwidth win
// rests on: sending the same payload twice on one connection makes the
// second frame dramatically smaller than the first, because the second
// compresses against the window the first left behind. A fresh connection
// must also reject a frame that only makes sense mid-stream.
func TestFramerStreamingWindow(t *testing.T) {
	// Pseudorandom bytes: incompressible within one frame, so any shrink on
	// the repeat frame can only come from window back-references.
	payload := make([]byte, 8<<10)
	state := uint64(99)
	for i := range payload {
		state = state*6364136223846793005 + 1442695040888963407
		payload[i] = byte(state >> 56)
	}
	var tx, rx framer
	tx.level = 6
	var buf bytes.Buffer
	n1, err := tx.writeFrame(&buf, frameDelta, payload)
	if err != nil {
		t.Fatal(err)
	}
	first := buf.Len()
	n2, err := tx.writeFrame(&buf, frameDelta, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n2*4 > n1 {
		t.Fatalf("second identical frame is %dB vs %dB first: window not carrying", n2, n1)
	}
	wireAll := append([]byte(nil), buf.Bytes()...)
	r := bytes.NewReader(wireAll)
	for i := 0; i < 2; i++ {
		typ, got, _, err := rx.readFrame(r)
		if err != nil || typ != frameDelta || !bytes.Equal(got, payload) {
			t.Fatalf("frame %d: typ=0x%02x err=%v", i, typ, err)
		}
	}
	// Replaying only the second frame on a fresh receiver must fail: its
	// back-references point into a window the receiver never built.
	var fresh framer
	if _, _, _, err := fresh.readFrame(bytes.NewReader(wireAll[first:])); err == nil {
		t.Fatal("mid-stream frame decoded on a fresh connection")
	}
}

// TestModelMsgV2Guards covers the v2 ModelMsg decode hardening: declared
// size over the cap, truncated compressed bytes, and a valid-but-
// non-canonical flate stream (stored blocks instead of blobFlateLevel).
func TestModelMsgV2Guards(t *testing.T) {
	model := bytes.Repeat([]byte{1, 2, 3, 4}, 256)
	good := WireV2.AppendModelMsg(nil, ModelMsg{Version: 1, Model: model})
	if m, err := WireV2.DecodeModelMsg(good); err != nil || !bytes.Equal(m.Model, model) {
		t.Fatalf("v2 model round trip: %v", err)
	}

	huge := enc{v2: true}
	huge.i64(1)
	huge.uv(maxWireList + 1)
	if _, err := WireV2.DecodeModelMsg(huge.b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("model bomb: %v", err)
	}

	if _, err := WireV2.DecodeModelMsg(good[:len(good)-4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated model: %v", err)
	}

	stored := enc{v2: true}
	stored.i64(1)
	stored.uv(uint64(len(model)))
	comp := appendFlate(nil, model, flate.NoCompression)
	stored.uv(uint64(len(comp)))
	stored.b = append(stored.b, comp...)
	if _, err := WireV2.DecodeModelMsg(stored.b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("non-canonical model compression: %v", err)
	}
}

// TestCheckpointBombGuard crafts a v3 checkpoint declaring a body size over
// the cap, and one with a corrupt flate body: typed rejections, no huge
// allocation, no panic.
func TestCheckpointBombGuard(t *testing.T) {
	bomb := append([]byte(checkpointMagic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(bomb[4:], checkpointVersion)
	bomb = binary.AppendUvarint(bomb, maxCheckpointBody+1)
	bomb = appendFlate(bomb, []byte("x"), 6)
	if _, err := DecodeCheckpoint(bomb); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("checkpoint bomb: %v", err)
	}

	valid := (&Checkpoint{Spec: fixtureSpec(), Epoch: 1, JournalCap: 1, Cover: fixtureCover(0)}).Encode()
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0x55 // inside the flate body
	if _, err := DecodeCheckpoint(corrupt); err == nil {
		t.Fatal("corrupt checkpoint body decoded")
	}
}
