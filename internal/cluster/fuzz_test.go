// Fuzz targets for the cluster codec and the checkpoint container: both
// decode bytes that cross trust boundaries (network frames, files that
// survived arbitrary crashes), so malformed input must produce a typed
// error — never a panic, out-of-memory allocation or silent acceptance of
// a non-canonical encoding.

package cluster

import (
	"bytes"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
)

// FuzzClusterCodec drives every message decoder over arbitrary bytes. The
// first seed byte selects the message kind; accepted messages must
// re-encode byte-identically (the codec admits exactly one encoding per
// message).
func FuzzClusterCodec(f *testing.F) {
	f.Add(byte(0), EncodeHello(Hello{Proto: protoVersion}))
	f.Add(byte(1), EncodeAssign(Assign{Spec: fixtureSpec(), VMs: []int{0, 1}, States: []fuzzer.VMState{fixtureVMState()}}))
	f.Add(byte(2), EncodeEpoch(EpochMsg{Epoch: 3, Accepted: []fuzzer.Accepted{{VM: 1, Text: "p", Traces: [][]kernel.BlockID{{1}}}}}))
	f.Add(byte(3), EncodeDelta(DeltaMsg{Epoch: 3, Deltas: []fuzzer.VMDelta{fixtureDelta()}}))
	f.Add(byte(4), EncodeRestore(RestoreMsg{Epoch: 4, States: []fuzzer.VMState{fixtureVMState()}}))
	f.Add(byte(5), EncodeFinal(FinalMsg{States: []fuzzer.VMState{fixtureVMState()}}))
	f.Add(byte(6), EncodeErr(ErrMsg{Msg: "x"}))
	f.Add(byte(3), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(byte(1), bytes.Repeat([]byte{0x01}, 64))

	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		switch kind % 7 {
		case 0:
			if m, err := DecodeHello(data); err == nil {
				requireSameBytes(t, data, EncodeHello(m))
			}
		case 1:
			if m, err := DecodeAssign(data); err == nil {
				requireSameBytes(t, data, EncodeAssign(m))
			}
		case 2:
			if m, err := DecodeEpoch(data); err == nil {
				requireSameBytes(t, data, EncodeEpoch(m))
			}
		case 3:
			if m, err := DecodeDelta(data); err == nil {
				requireSameBytes(t, data, EncodeDelta(m))
			}
		case 4:
			if m, err := DecodeRestore(data); err == nil {
				requireSameBytes(t, data, EncodeRestore(m))
			}
		case 5:
			if m, err := DecodeFinal(data); err == nil {
				requireSameBytes(t, data, EncodeFinal(m))
			}
		case 6:
			if m, err := DecodeErr(data); err == nil {
				requireSameBytes(t, data, EncodeErr(m))
			}
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint loader:
// corrupt checkpoints must be rejected with a typed error, and anything
// accepted must re-encode byte-identically.
func FuzzCheckpointDecode(f *testing.F) {
	valid := (&Checkpoint{
		Spec:       fixtureSpec(),
		Epoch:      2,
		Seq:        5,
		NextSample: 100,
		Entries:    []fuzzer.Accepted{{VM: -1, Seeded: true, Text: "p", Traces: [][]kernel.BlockID{{1, 2}}}},
		TotalEdges: 1,
		States:     []fuzzer.VMState{fixtureVMState()},
		JournalCap: 64,
	}).Encode()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("SPCK"))
	f.Add([]byte("SPCK\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-3] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		requireSameBytes(t, data, ck.Encode())
	})
}

func requireSameBytes(t *testing.T, in, out []byte) {
	t.Helper()
	if !bytes.Equal(in, out) {
		t.Fatalf("accepted message is not canonical: decode/encode changed %d bytes to %d", len(in), len(out))
	}
}
