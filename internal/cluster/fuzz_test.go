// Fuzz targets for the cluster codec and the checkpoint container: both
// decode bytes that cross trust boundaries (network frames, files that
// survived arbitrary crashes), so malformed input must produce a typed
// error — never a panic, out-of-memory allocation or silent acceptance of
// a non-canonical encoding. Both wire versions are driven: a selector byte
// picks v1 or v2, and the frame layer gets its own case exercising the
// flate stage (compress∘decompress identity on the send path, bomb-guarded
// rejection of arbitrary bytes on the receive path).

package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/serve"
)

// FuzzClusterCodec drives every message decoder over arbitrary bytes. The
// first seed byte selects the message kind, the second the wire version;
// accepted messages must re-encode byte-identically (the codec admits
// exactly one encoding per message, per version).
func FuzzClusterCodec(f *testing.F) {
	for _, w := range []byte{1, 2} {
		wire := WireV1
		if w == 2 {
			wire = WireV2
		}
		f.Add(byte(1), w, wire.AppendAssign(nil, Assign{Spec: fixtureSpec(), VMs: []int{0, 1}, States: []fuzzer.VMState{fixtureVMState()}}))
		f.Add(byte(2), w, wire.AppendEpoch(nil, EpochMsg{Epoch: 3, Accepted: []fuzzer.Accepted{{VM: 1, Text: "p", Traces: [][]kernel.BlockID{{1}}}}}))
		f.Add(byte(3), w, wire.AppendDelta(nil, DeltaMsg{Epoch: 3, Deltas: []fuzzer.VMDelta{fixtureDelta()}}))
		f.Add(byte(4), w, wire.AppendRestore(nil, RestoreMsg{Epoch: 4, States: []fuzzer.VMState{fixtureVMState()}}))
		f.Add(byte(5), w, wire.AppendFinal(nil, FinalMsg{States: []fuzzer.VMState{fixtureVMState()}}))
		f.Add(byte(7), w, wire.AppendModelMsg(nil, ModelMsg{Version: 2, Model: bytes.Repeat([]byte{9, 8}, 300)}))
	}
	f.Add(byte(0), byte(1), EncodeHello(Hello{Proto: protoVersion}))
	f.Add(byte(0), byte(2), EncodeHello(Hello{Proto: protoVersion, Wire: 2, MaxLevel: 9}))
	f.Add(byte(6), byte(1), EncodeErr(ErrMsg{Msg: "x"}))
	f.Add(byte(8), byte(2), EncodeWireMsg(WireMsg{Wire: 2, Level: 6}))
	f.Add(byte(3), byte(2), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(byte(1), byte(2), bytes.Repeat([]byte{0x01}, 64))
	f.Add(byte(9), byte(2), bytes.Repeat([]byte("frame payload"), 64))
	bomb := binary.AppendUvarint(nil, 1<<40)
	f.Add(byte(9), byte(2), appendFlate(bomb, bytes.Repeat([]byte{0}, 1024), 9))

	f.Fuzz(func(t *testing.T, kind, wireSel byte, data []byte) {
		wire := WireV1
		if wireSel%2 == 0 {
			wire = WireV2
		}
		switch kind % 10 {
		case 0:
			if m, err := DecodeHello(data); err == nil {
				requireSameBytes(t, data, EncodeHello(m))
			}
		case 1:
			if m, err := wire.DecodeAssign(data); err == nil {
				requireSameBytes(t, data, wire.AppendAssign(nil, m))
			}
		case 2:
			if m, err := wire.DecodeEpoch(data); err == nil {
				requireSameBytes(t, data, wire.AppendEpoch(nil, m))
			}
		case 3:
			if m, err := wire.DecodeDelta(data); err == nil {
				requireSameBytes(t, data, wire.AppendDelta(nil, m))
			}
		case 4:
			if m, err := wire.DecodeRestore(data); err == nil {
				requireSameBytes(t, data, wire.AppendRestore(nil, m))
			}
		case 5:
			if m, err := wire.DecodeFinal(data); err == nil {
				requireSameBytes(t, data, wire.AppendFinal(nil, m))
			}
		case 6:
			if m, err := DecodeErr(data); err == nil {
				requireSameBytes(t, data, EncodeErr(m))
			}
		case 7:
			if m, err := wire.DecodeModelMsg(data); err == nil {
				requireSameBytes(t, data, wire.AppendModelMsg(nil, m))
			}
		case 8:
			if m, err := DecodeWireMsg(data); err == nil {
				requireSameBytes(t, data, EncodeWireMsg(m))
			}
		case 9:
			// Frame layer. Send path: any payload must survive a
			// compressing framer round trip intact. Receive path: the same
			// bytes presented as a hostile compressed frame must inflate
			// cleanly or fail typed — never panic or over-allocate (the
			// declared-size cap bounds the inflate buffer).
			var tx, rx framer
			tx.level = 6
			var buf bytes.Buffer
			if _, err := tx.writeFrame(&buf, frameDelta, data); err != nil {
				t.Fatalf("writeFrame: %v", err)
			}
			typ, got, _, err := rx.readFrame(&buf)
			if err != nil || typ != frameDelta || !bytes.Equal(got, data) {
				t.Fatalf("frame round trip: typ=0x%02x err=%v", typ, err)
			}
			if _, err := rx.inflateFrame(data); err == nil {
				if cap(rx.dbuf) > serve.MaxFramePayload {
					t.Fatalf("inflate buffer grew to %d", cap(rx.dbuf))
				}
			}
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint loader:
// corrupt checkpoints must be rejected with a typed error, and anything
// accepted must re-encode byte-identically — except files in the legacy v2
// format, which Encode deliberately rewrites into v3.
func FuzzCheckpointDecode(f *testing.F) {
	ck := &Checkpoint{
		Spec:       fixtureSpec(),
		Epoch:      2,
		Seq:        5,
		NextSample: 100,
		Entries:    []fuzzer.Accepted{{VM: -1, Seeded: true, Text: "p", Traces: [][]kernel.BlockID{{1, 2}}}},
		TotalEdges: 1,
		Cover:      fixtureCover(1),
		States:     []fuzzer.VMState{fixtureVMState()},
		JournalCap: 64,
	}
	valid := ck.Encode()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("SPCK"))
	f.Add([]byte("SPCK\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-3] ^= 0x40
	f.Add(corrupted)
	// A legacy v2 file: uncompressed v1-codec body, no cover.
	legacyCk := *ck
	legacyCk.Cover = nil
	legacy := enc{b: append([]byte(nil), checkpointMagic...)}
	legacy.u64(legacyCheckpointVersion)
	legacyCk.appendBody(&legacy)
	f.Add(legacy.b)
	// A v3 header declaring a body over the cap.
	bomb := append([]byte(checkpointMagic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(bomb[4:], checkpointVersion)
	bomb = binary.AppendUvarint(bomb, maxCheckpointBody+1)
	f.Add(appendFlate(bomb, []byte("x"), 9))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if ck.legacy {
			// Legacy v2 files carry no cover, so they cannot round-trip
			// through the v3 encoder (which the resume path never asks
			// for — it re-derives the cover from the corpus). Decoding
			// without panicking is the whole contract here.
			return
		}
		requireSameBytes(t, data, ck.Encode())
	})
}

func requireSameBytes(t *testing.T, in, out []byte) {
	t.Helper()
	if !bytes.Equal(in, out) {
		t.Fatalf("accepted message is not canonical: decode/encode changed %d bytes to %d", len(in), len(out))
	}
}
