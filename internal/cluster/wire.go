// Cluster wire protocol: hand-rolled little-endian messages carried in the
// framing of internal/serve (one frame per message, a frame type byte per
// message kind). The codec is deliberately boring — fixed-width integers,
// length-prefixed strings and slices, every length bounds-checked against
// the remaining payload before allocation — so decoding untrusted bytes can
// reject with a typed error but never panic or balloon memory
// (FuzzClusterCodec enforces this).

package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
)

// protoVersion is the cluster protocol version, checked at Hello. Version 2
// added the online-learning spec fields and the two-phase model hot-swap
// push (frameModelPrep/frameModelCommit).
const protoVersion = 2

// The cluster protocol's frame types (disjoint from the inference
// protocol's 0x0x range, so a cross-wired connection fails fast).
const (
	frameHello       byte = 0x10 // worker -> coordinator: version handshake
	frameAssign      byte = 0x11 // coordinator -> worker: spec + VM shard
	frameAck         byte = 0x12 // worker -> coordinator: assignment applied
	frameEpoch       byte = 0x13 // coordinator -> worker: barrier + accepted entries
	frameDelta       byte = 0x14 // worker -> coordinator: epoch deltas
	frameRestore     byte = 0x15 // coordinator -> worker: adopt VMs mid-campaign
	frameDone        byte = 0x16 // coordinator -> worker: campaign over, drain
	frameFinal       byte = 0x17 // worker -> coordinator: drained VM states
	frameErr         byte = 0x18 // either direction: fatal error
	frameModelPrep   byte = 0x19 // coordinator -> worker: drain + stage pushed model
	frameModelCommit byte = 0x1a // coordinator -> worker: swap the staged model in
)

// Decode errors. All decoders return one of these (wrapped with context);
// they never panic on corrupt input.
var (
	ErrTruncated  = errors.New("cluster: truncated message")
	ErrBadMessage = errors.New("cluster: malformed message")
	ErrBadVersion = errors.New("cluster: protocol version mismatch")
)

// maxWireList bounds every decoded slice and string length, independent of
// the frame size limit, so a single corrupt length cannot demand a huge
// allocation.
const maxWireList = 1 << 20

// Hello is the worker's opening handshake.
type Hello struct {
	Proto uint32
}

// Assign hands a worker its campaign spec and VM shard. For a resumed
// campaign Snapshot carries the checkpoint's corpus (in publish order) to
// rebuild the replica; States are the canonical VM states to restore.
// SeedPass marks the worker owning VM 0 of a fresh campaign: it must run
// the seed-corpus pass and send its delta before the first epoch.
type Assign struct {
	Spec       CampaignSpec
	VMs        []int
	Snapshot   []fuzzer.Accepted
	States     []fuzzer.VMState
	StartEpoch int64
	SeedPass   bool
}

// EpochMsg opens one barrier-to-barrier slice: workers apply the previous
// merge's accepted entries, then fuzz epoch Epoch.
type EpochMsg struct {
	Epoch    int64
	Accepted []fuzzer.Accepted
}

// DeltaMsg returns a worker's epoch deltas (ascending VM order).
type DeltaMsg struct {
	Epoch  int64
	Deltas []fuzzer.VMDelta
}

// RestoreMsg reassigns VMs from a lost worker: the receiver restores the
// canonical states and re-runs epoch Epoch for exactly those VMs.
type RestoreMsg struct {
	Epoch  int64
	States []fuzzer.VMState
}

// FinalMsg carries a worker's end-of-campaign drained VM states.
type FinalMsg struct {
	States []fuzzer.VMState
}

// ModelMsg carries one phase of the two-phase model hot-swap push. The prep
// phase ships the versioned canonical checkpoint bytes (the worker drains
// its shard's in-flight predictions and stages the loaded model); the commit
// phase re-sends only the version (the worker swaps the staged model into
// its serving surface). The barrier between the phases — every worker acks
// prep before any receives commit — guarantees no query is ever answered by
// a newer generation than its submission epoch's, even when several
// in-process workers share one multi-tenant server.
type ModelMsg struct {
	Version int64
	Model   []byte // nil in the commit phase
}

// ErrMsg reports a fatal error to the peer.
type ErrMsg struct {
	Msg string
}

// --- encoder ---

type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) flag(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) int(v int)     { e.u64(uint64(int64(v))) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string)  { e.int(len(s)); e.b = append(e.b, s...) }
func (e *enc) blob(b []byte) { e.int(len(b)); e.b = append(e.b, b...) }
func (e *enc) state4(s [4]uint64) {
	for _, v := range s {
		e.u64(v)
	}
}
func (e *enc) blocks(tr []kernel.BlockID) {
	e.int(len(tr))
	for _, b := range tr {
		e.i64(int64(b))
	}
}
func (e *enc) traces(tr [][]kernel.BlockID) {
	e.int(len(tr))
	for _, t := range tr {
		e.blocks(t)
	}
}
func (e *enc) event(ev obs.Event) {
	e.u64(ev.Seq)
	e.str(ev.Kind)
	e.int(ev.VM)
	e.i64(ev.Epoch)
	e.i64(ev.Cost)
	e.i64(ev.Value)
	e.str(ev.Detail)
}
func (e *enc) events(evs []obs.Event) {
	e.int(len(evs))
	for _, ev := range evs {
		e.event(ev)
	}
}
func (e *enc) accepted(a fuzzer.Accepted) {
	e.int(a.VM)
	e.flag(a.Seeded)
	e.str(a.Text)
	e.traces(a.Traces)
}
func (e *enc) acceptedList(as []fuzzer.Accepted) {
	e.int(len(as))
	for _, a := range as {
		e.accepted(a)
	}
}
func (e *enc) vmState(st fuzzer.VMState) {
	e.int(st.VM)
	e.state4(st.RNG)
	e.state4(st.Flaky)
	e.i64(st.Execs)
	e.i64(st.BlocksRun)
	e.i64(st.Cost)
	e.i64(st.Budget)
	e.i64(st.Epochs)
	e.i64(st.Reconciled)
	e.int(st.Phantom)
	e.i64(st.QueueWaitNs)
	c := st.Counters
	e.i64(c.Executions)
	e.i64(c.PMMQueries)
	e.i64(c.PMMPredictions)
	e.i64(c.PMMFailed)
	e.i64(c.PMMShed)
	e.i64(c.PMMInvalidSlots)
	e.i64(c.DegradedSteps)
	y := c.Yield
	e.i64(y.GuidedExecs)
	e.i64(y.GuidedEdges)
	e.i64(y.RandArgExecs)
	e.i64(y.RandArgEdges)
	e.i64(y.OtherMutExecs)
	e.i64(y.OtherMutEdges)
	e.i64(y.GenerateExecs)
	e.i64(y.GenerateEdges)
	e.int(len(st.Crashes))
	for _, cr := range st.Crashes {
		e.str(cr.Title)
		e.str(cr.Category)
		e.str(cr.Detector)
		e.str(cr.KnownSince)
		e.flag(cr.Flaky)
		e.str(cr.ProgText)
		e.i64(cr.Cost)
	}
	e.int(len(st.Preds))
	for _, ps := range st.Preds {
		e.str(ps.Text)
		e.flag(ps.Local)
		e.flag(ps.Pending)
		e.blocks(ps.Targets)
		e.int(len(ps.Slots))
		for _, gs := range ps.Slots {
			e.int(gs.Call)
			e.int(gs.Slot)
		}
	}
}
func (e *enc) vmStates(sts []fuzzer.VMState) {
	e.int(len(sts))
	for _, st := range sts {
		e.vmState(st)
	}
}
func (e *enc) delta(d fuzzer.VMDelta) {
	e.int(d.VM)
	e.int(len(d.Locals))
	for _, l := range d.Locals {
		e.str(l.Text)
		e.traces(l.Traces)
		e.flag(l.Seeded)
	}
	e.events(d.Events)
	e.vmState(d.State)
}
func (e *enc) spec(sp CampaignSpec) {
	e.u8(sp.Mode)
	e.str(sp.KernelVersion)
	e.u64(sp.Seed)
	e.i64(sp.Budget)
	e.int(sp.TotalVMs)
	e.i64(sp.SyncEvery)
	e.i64(sp.SampleEvery)
	e.f64(sp.FallbackProb)
	e.f64(sp.DegradedFallbackProb)
	e.f64(sp.GenerateProb)
	e.int(sp.MutationsPerPrediction)
	e.int(sp.MaxQueryTargets)
	e.int(sp.MaxPending)
	e.flag(sp.MinimizeCorpus)
	e.flag(sp.Journal)
	e.flag(sp.OnlineEnabled)
	e.i64(sp.OnlineEvery)
	e.i64(sp.OnlineLag)
	e.int(sp.OnlineMinCorpus)
	e.int(sp.OnlineMutationsPerBase)
	e.int(sp.OnlineTrainEpochs)
	e.int(sp.OnlineTrainBatch)
	e.int(len(sp.SeedProgs))
	for _, s := range sp.SeedProgs {
		e.str(s)
	}
	e.blob(sp.Model)
}

// --- decoder ---

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}
func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *dec) flag() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bad bool tag", ErrBadMessage))
		return false
	}
}
func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) int() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail(fmt.Errorf("%w: integer out of range", ErrBadMessage))
		return 0
	}
	return int(v)
}

// listLen reads a slice/string length, rejecting negative values and
// anything beyond both the wire bound and the remaining payload (lengths
// are counts of at-least-one-byte items, so a valid length never exceeds
// what is left to read).
func (d *dec) listLen() int {
	n := d.int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxWireList || n > len(d.b)-d.off {
		d.fail(fmt.Errorf("%w: implausible length %d", ErrBadMessage, n))
		return 0
	}
	return n
}
func (d *dec) str() string { return string(d.take(d.listLen())) }
func (d *dec) blob() []byte {
	b := d.take(d.listLen())
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
func (d *dec) state4() [4]uint64 {
	var s [4]uint64
	for i := range s {
		s[i] = d.u64()
	}
	return s
}
func (d *dec) blocks() []kernel.BlockID {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	// Each block id is 8 wire bytes; re-check against remaining payload.
	if n > (len(d.b)-d.off)/8 {
		d.fail(ErrTruncated)
		return nil
	}
	out := make([]kernel.BlockID, n)
	for i := range out {
		out[i] = kernel.BlockID(d.i64())
	}
	return out
}
func (d *dec) traces() [][]kernel.BlockID {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]kernel.BlockID, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.blocks())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) event() obs.Event {
	return obs.Event{
		Seq:    d.u64(),
		Kind:   d.str(),
		VM:     d.int(),
		Epoch:  d.i64(),
		Cost:   d.i64(),
		Value:  d.i64(),
		Detail: d.str(),
	}
}
func (d *dec) events() []obs.Event {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]obs.Event, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.event())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) accepted() fuzzer.Accepted {
	return fuzzer.Accepted{
		VM:     d.int(),
		Seeded: d.flag(),
		Text:   d.str(),
		Traces: d.traces(),
	}
}
func (d *dec) acceptedList() []fuzzer.Accepted {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]fuzzer.Accepted, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.accepted())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) vmState() fuzzer.VMState {
	st := fuzzer.VMState{
		VM:          d.int(),
		RNG:         d.state4(),
		Flaky:       d.state4(),
		Execs:       d.i64(),
		BlocksRun:   d.i64(),
		Cost:        d.i64(),
		Budget:      d.i64(),
		Epochs:      d.i64(),
		Reconciled:  d.i64(),
		Phantom:     d.int(),
		QueueWaitNs: d.i64(),
	}
	c := &st.Counters
	c.Executions = d.i64()
	c.PMMQueries = d.i64()
	c.PMMPredictions = d.i64()
	c.PMMFailed = d.i64()
	c.PMMShed = d.i64()
	c.PMMInvalidSlots = d.i64()
	c.DegradedSteps = d.i64()
	y := &c.Yield
	y.GuidedExecs = d.i64()
	y.GuidedEdges = d.i64()
	y.RandArgExecs = d.i64()
	y.RandArgEdges = d.i64()
	y.OtherMutExecs = d.i64()
	y.OtherMutEdges = d.i64()
	y.GenerateExecs = d.i64()
	y.GenerateEdges = d.i64()
	ncr := d.listLen()
	for i := 0; i < ncr && d.err == nil; i++ {
		st.Crashes = append(st.Crashes, fuzzer.CrashState{
			Title:      d.str(),
			Category:   d.str(),
			Detector:   d.str(),
			KnownSince: d.str(),
			Flaky:      d.flag(),
			ProgText:   d.str(),
			Cost:       d.i64(),
		})
	}
	nps := d.listLen()
	for i := 0; i < nps && d.err == nil; i++ {
		ps := fuzzer.PredState{
			Text:    d.str(),
			Local:   d.flag(),
			Pending: d.flag(),
			Targets: d.blocks(),
		}
		nsl := d.listLen()
		for j := 0; j < nsl && d.err == nil; j++ {
			ps.Slots = append(ps.Slots, prog.GlobalSlot{Call: d.int(), Slot: d.int()})
		}
		st.Preds = append(st.Preds, ps)
	}
	return st
}
func (d *dec) vmStates() []fuzzer.VMState {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]fuzzer.VMState, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.vmState())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) delta() fuzzer.VMDelta {
	dl := fuzzer.VMDelta{VM: d.int()}
	nl := d.listLen()
	for i := 0; i < nl && d.err == nil; i++ {
		dl.Locals = append(dl.Locals, fuzzer.Local{
			Text:   d.str(),
			Traces: d.traces(),
			Seeded: d.flag(),
		})
	}
	dl.Events = d.events()
	dl.State = d.vmState()
	return dl
}
func (d *dec) spec() CampaignSpec {
	sp := CampaignSpec{
		Mode:                   d.u8(),
		KernelVersion:          d.str(),
		Seed:                   d.u64(),
		Budget:                 d.i64(),
		TotalVMs:               d.int(),
		SyncEvery:              d.i64(),
		SampleEvery:            d.i64(),
		FallbackProb:           d.f64(),
		DegradedFallbackProb:   d.f64(),
		GenerateProb:           d.f64(),
		MutationsPerPrediction: d.int(),
		MaxQueryTargets:        d.int(),
		MaxPending:             d.int(),
		MinimizeCorpus:         d.flag(),
		Journal:                d.flag(),
		OnlineEnabled:          d.flag(),
		OnlineEvery:            d.i64(),
		OnlineLag:              d.i64(),
		OnlineMinCorpus:        d.int(),
		OnlineMutationsPerBase: d.int(),
		OnlineTrainEpochs:      d.int(),
		OnlineTrainBatch:       d.int(),
	}
	if sp.Mode > 1 {
		d.fail(fmt.Errorf("%w: unknown mode %d", ErrBadMessage, sp.Mode))
	}
	if sp.TotalVMs < 0 || sp.TotalVMs > 1<<16 {
		d.fail(fmt.Errorf("%w: implausible VM count %d", ErrBadMessage, sp.TotalVMs))
	}
	nsp := d.listLen()
	for i := 0; i < nsp && d.err == nil; i++ {
		sp.SeedProgs = append(sp.SeedProgs, d.str())
	}
	sp.Model = d.blob()
	return sp
}

// finish fails if the message has trailing garbage, so every encoded form
// has exactly one valid byte representation.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b)-d.off)
	}
	return nil
}

// --- message encode/decode ---

// EncodeHello serializes a Hello message.
func EncodeHello(h Hello) []byte {
	var e enc
	e.u64(uint64(h.Proto))
	return e.b
}

// DecodeHello parses a Hello message.
func DecodeHello(b []byte) (Hello, error) {
	d := dec{b: b}
	v := d.u64()
	if v > math.MaxUint32 {
		d.fail(fmt.Errorf("%w: implausible protocol version", ErrBadMessage))
	}
	h := Hello{Proto: uint32(v)}
	return h, d.finish()
}

// EncodeAssign serializes an Assign message.
func EncodeAssign(a Assign) []byte {
	var e enc
	e.spec(a.Spec)
	e.int(len(a.VMs))
	for _, vm := range a.VMs {
		e.int(vm)
	}
	e.acceptedList(a.Snapshot)
	e.vmStates(a.States)
	e.i64(a.StartEpoch)
	e.flag(a.SeedPass)
	return e.b
}

// DecodeAssign parses an Assign message.
func DecodeAssign(b []byte) (Assign, error) {
	d := dec{b: b}
	a := Assign{Spec: d.spec()}
	n := d.listLen()
	for i := 0; i < n && d.err == nil; i++ {
		a.VMs = append(a.VMs, d.int())
	}
	a.Snapshot = d.acceptedList()
	a.States = d.vmStates()
	a.StartEpoch = d.i64()
	a.SeedPass = d.flag()
	return a, d.finish()
}

// EncodeEpoch serializes an EpochMsg.
func EncodeEpoch(m EpochMsg) []byte {
	var e enc
	e.i64(m.Epoch)
	e.acceptedList(m.Accepted)
	return e.b
}

// DecodeEpoch parses an EpochMsg.
func DecodeEpoch(b []byte) (EpochMsg, error) {
	d := dec{b: b}
	m := EpochMsg{Epoch: d.i64(), Accepted: d.acceptedList()}
	return m, d.finish()
}

// EncodeDelta serializes a DeltaMsg.
func EncodeDelta(m DeltaMsg) []byte {
	var e enc
	e.i64(m.Epoch)
	e.int(len(m.Deltas))
	for _, dl := range m.Deltas {
		e.delta(dl)
	}
	return e.b
}

// DecodeDelta parses a DeltaMsg.
func DecodeDelta(b []byte) (DeltaMsg, error) {
	d := dec{b: b}
	m := DeltaMsg{Epoch: d.i64()}
	n := d.listLen()
	for i := 0; i < n && d.err == nil; i++ {
		m.Deltas = append(m.Deltas, d.delta())
	}
	return m, d.finish()
}

// EncodeRestore serializes a RestoreMsg.
func EncodeRestore(m RestoreMsg) []byte {
	var e enc
	e.i64(m.Epoch)
	e.vmStates(m.States)
	return e.b
}

// DecodeRestore parses a RestoreMsg.
func DecodeRestore(b []byte) (RestoreMsg, error) {
	d := dec{b: b}
	m := RestoreMsg{Epoch: d.i64(), States: d.vmStates()}
	return m, d.finish()
}

// EncodeFinal serializes a FinalMsg.
func EncodeFinal(m FinalMsg) []byte {
	var e enc
	e.vmStates(m.States)
	return e.b
}

// DecodeFinal parses a FinalMsg.
func DecodeFinal(b []byte) (FinalMsg, error) {
	d := dec{b: b}
	m := FinalMsg{States: d.vmStates()}
	return m, d.finish()
}

// EncodeModelMsg serializes a ModelMsg.
func EncodeModelMsg(m ModelMsg) []byte {
	var e enc
	e.i64(m.Version)
	e.blob(m.Model)
	return e.b
}

// DecodeModelMsg parses a ModelMsg.
func DecodeModelMsg(b []byte) (ModelMsg, error) {
	d := dec{b: b}
	m := ModelMsg{Version: d.i64(), Model: d.blob()}
	if m.Version <= 0 && d.err == nil {
		d.fail(fmt.Errorf("%w: model push version %d", ErrBadMessage, m.Version))
	}
	return m, d.finish()
}

// EncodeErr serializes an ErrMsg.
func EncodeErr(m ErrMsg) []byte {
	var e enc
	e.str(m.Msg)
	return e.b
}

// DecodeErr parses an ErrMsg.
func DecodeErr(b []byte) (ErrMsg, error) {
	d := dec{b: b}
	m := ErrMsg{Msg: d.str()}
	return m, d.finish()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
