// Cluster wire protocol: hand-rolled little-endian messages carried in the
// framing of internal/serve (one frame per message, a frame type byte per
// message kind). The codec is deliberately boring — fixed-width integers,
// length-prefixed strings and slices, every length bounds-checked against
// the remaining payload before allocation — so decoding untrusted bytes can
// reject with a typed error but never panic or balloon memory
// (FuzzClusterCodec enforces this).
//
// Two wire codec versions coexist, negotiated per connection at Hello (see
// Wire): v1 is the original all-fixed-width layout; v2 keeps every scalar
// fixed-width but encodes block traces as canonical varint counts and
// zigzag-varint deltas between consecutive block IDs, flate-wraps ModelMsg
// model bytes, and elides the append-only crash-table prefix the receiver
// already holds from epoch deltas (VMDelta.CrashBase). Both versions keep
// the "exactly one byte form per message" property: varints must be
// minimal, and compressed model blobs must match a re-compression of their
// contents.

package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
)

// protoVersion is the cluster protocol version, checked at Hello. Version 2
// added the online-learning spec fields and the two-phase model hot-swap
// push (frameModelPrep/frameModelCommit).
const protoVersion = 2

// The cluster protocol's frame types, spanning 0x10–0x1b (disjoint from
// the inference protocol's 0x0x range, so a cross-wired connection fails
// fast). A frame whose type byte has frameCompressed (0x80) set carries a
// flate-compressed payload; the low bits still name one of these types.
const (
	frameHello       byte = 0x10 // worker -> coordinator: version handshake
	frameAssign      byte = 0x11 // coordinator -> worker: spec + VM shard
	frameAck         byte = 0x12 // worker -> coordinator: assignment applied
	frameEpoch       byte = 0x13 // coordinator -> worker: barrier + accepted entries
	frameDelta       byte = 0x14 // worker -> coordinator: epoch deltas
	frameRestore     byte = 0x15 // coordinator -> worker: adopt VMs mid-campaign
	frameDone        byte = 0x16 // coordinator -> worker: campaign over, drain
	frameFinal       byte = 0x17 // worker -> coordinator: drained VM states
	frameErr         byte = 0x18 // either direction: fatal error
	frameModelPrep   byte = 0x19 // coordinator -> worker: drain + stage pushed model
	frameModelCommit byte = 0x1a // coordinator -> worker: swap the staged model in
	frameWire        byte = 0x1b // coordinator -> worker: negotiated wire settings
)

// Wire selects a wire codec version for the versioned Append*/Decode*
// message methods. The version is negotiated per connection: workers
// advertise the newest version they speak in Hello, the coordinator
// replies with the effective version (and flate level) in a WireMsg, and
// every frame after the handshake uses the negotiated codec. Merged
// campaign state is identical under every version — only the bytes on the
// wire differ.
type Wire int

const (
	// WireV1 is the original all-fixed-width encoding, spoken by pre-v2
	// peers and by workers started with the legacy-wire option.
	WireV1 Wire = 1
	// WireV2 encodes block traces as canonical varint counts plus
	// zigzag-varint deltas between consecutive block IDs, flate-wraps
	// ModelMsg model bytes, and carries VMDelta.CrashBase so epoch deltas
	// elide the crash-table prefix the coordinator already holds.
	WireV2 Wire = 2
	// wireMax is the newest wire version this build speaks.
	wireMax = WireV2
)

func (w Wire) v2() bool { return w >= WireV2 }

// Decode errors. All decoders return one of these (wrapped with context);
// they never panic on corrupt input.
var (
	ErrTruncated  = errors.New("cluster: truncated message")
	ErrBadMessage = errors.New("cluster: malformed message")
	ErrBadVersion = errors.New("cluster: protocol version mismatch")
)

// maxWireList bounds every decoded slice and string length, independent of
// the frame size limit, so a single corrupt length cannot demand a huge
// allocation.
const maxWireList = 1 << 20

// maxFlateLevel is the highest negotiable per-frame flate level.
const maxFlateLevel = 9

// Hello is the worker's opening handshake. Two encodings exist: the legacy
// 8-byte form (proto only, implying Wire 1 and no compression) sent by
// pre-v2 workers, and the 24-byte extended form carrying the newest wire
// version the worker speaks plus the highest flate level it accepts. The
// coordinator answers an extended Hello with a WireMsg; a legacy Hello
// gets the v1 protocol unchanged, so mixed-version fleets keep running.
type Hello struct {
	Proto uint32
	// Wire is the newest wire codec version the worker speaks. Decoding a
	// legacy Hello yields 1; the extended form requires >= 2 (a lower value
	// would re-encode to the legacy form, violating canonicality).
	Wire uint32
	// MaxLevel is the highest per-frame flate level the worker accepts
	// (0 = refuses compression). The coordinator negotiates the effective
	// level as min(Config.Compress, MaxLevel).
	MaxLevel uint32
}

// WireMsg is the coordinator's reply to an extended Hello: the negotiated
// wire codec version and per-frame flate level that both ends apply to
// every subsequent frame on the connection.
type WireMsg struct {
	Wire  uint32
	Level uint32
}

// Assign hands a worker its campaign spec and VM shard. For a resumed
// campaign Snapshot carries the checkpoint's corpus (in publish order) to
// rebuild the replica; States are the canonical VM states to restore.
// SeedPass marks the worker owning VM 0 of a fresh campaign: it must run
// the seed-corpus pass and send its delta before the first epoch.
type Assign struct {
	Spec       CampaignSpec
	VMs        []int
	Snapshot   []fuzzer.Accepted
	States     []fuzzer.VMState
	StartEpoch int64
	SeedPass   bool
}

// EpochMsg opens one barrier-to-barrier slice: workers apply the previous
// merge's accepted entries, then fuzz epoch Epoch.
type EpochMsg struct {
	Epoch    int64
	Accepted []fuzzer.Accepted
}

// DeltaMsg returns a worker's epoch deltas (ascending VM order).
type DeltaMsg struct {
	Epoch  int64
	Deltas []fuzzer.VMDelta
}

// RestoreMsg reassigns VMs from a lost worker: the receiver restores the
// canonical states and re-runs epoch Epoch for exactly those VMs.
type RestoreMsg struct {
	Epoch  int64
	States []fuzzer.VMState
}

// FinalMsg carries a worker's end-of-campaign drained VM states.
type FinalMsg struct {
	States []fuzzer.VMState
}

// ModelMsg carries one phase of the two-phase model hot-swap push. The prep
// phase ships the versioned canonical checkpoint bytes (the worker drains
// its shard's in-flight predictions and stages the loaded model); the commit
// phase re-sends only the version (the worker swaps the staged model into
// its serving surface). The barrier between the phases — every worker acks
// prep before any receives commit — guarantees no query is ever answered by
// a newer generation than its submission epoch's, even when several
// in-process workers share one multi-tenant server.
type ModelMsg struct {
	Version int64
	Model   []byte // nil in the commit phase
}

// ErrMsg reports a fatal error to the peer.
type ErrMsg struct {
	Msg string
}

// --- encoder ---

type enc struct {
	b  []byte
	v2 bool // wire v2: varint/zigzag-delta trace encoding
}

func (e *enc) u8(v byte)   { e.b = append(e.b, v) }
func (e *enc) uv(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) sv(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) flag(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) int(v int)     { e.u64(uint64(int64(v))) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string)  { e.int(len(s)); e.b = append(e.b, s...) }
func (e *enc) blob(b []byte) { e.int(len(b)); e.b = append(e.b, b...) }
func (e *enc) state4(s [4]uint64) {
	for _, v := range s {
		e.u64(v)
	}
}
func (e *enc) blocks(tr []kernel.BlockID) {
	if e.v2 {
		// Varint count, then zigzag-varint deltas between consecutive IDs:
		// traces walk nearby basic blocks, so deltas are small and most
		// blocks cost one byte instead of eight.
		e.uv(uint64(len(tr)))
		prev := int64(0)
		for _, b := range tr {
			e.sv(int64(b) - prev)
			prev = int64(b)
		}
		return
	}
	e.int(len(tr))
	for _, b := range tr {
		e.i64(int64(b))
	}
}
func (e *enc) traces(tr [][]kernel.BlockID) {
	if e.v2 {
		e.uv(uint64(len(tr)))
	} else {
		e.int(len(tr))
	}
	for _, t := range tr {
		e.blocks(t)
	}
}
func (e *enc) event(ev obs.Event) {
	e.u64(ev.Seq)
	e.str(ev.Kind)
	e.int(ev.VM)
	e.i64(ev.Epoch)
	e.i64(ev.Cost)
	e.i64(ev.Value)
	e.str(ev.Detail)
}
func (e *enc) events(evs []obs.Event) {
	e.int(len(evs))
	for _, ev := range evs {
		e.event(ev)
	}
}
func (e *enc) accepted(a fuzzer.Accepted) {
	e.int(a.VM)
	e.flag(a.Seeded)
	e.str(a.Text)
	e.traces(a.Traces)
}
func (e *enc) acceptedList(as []fuzzer.Accepted) {
	e.int(len(as))
	for _, a := range as {
		e.accepted(a)
	}
}
func (e *enc) vmState(st fuzzer.VMState) {
	e.int(st.VM)
	e.state4(st.RNG)
	e.state4(st.Flaky)
	e.i64(st.Execs)
	e.i64(st.BlocksRun)
	e.i64(st.Cost)
	e.i64(st.Budget)
	e.i64(st.Epochs)
	e.i64(st.Reconciled)
	e.int(st.Phantom)
	e.i64(st.QueueWaitNs)
	c := st.Counters
	e.i64(c.Executions)
	e.i64(c.PMMQueries)
	e.i64(c.PMMPredictions)
	e.i64(c.PMMFailed)
	e.i64(c.PMMShed)
	e.i64(c.PMMInvalidSlots)
	e.i64(c.DegradedSteps)
	y := c.Yield
	e.i64(y.GuidedExecs)
	e.i64(y.GuidedEdges)
	e.i64(y.RandArgExecs)
	e.i64(y.RandArgEdges)
	e.i64(y.OtherMutExecs)
	e.i64(y.OtherMutEdges)
	e.i64(y.GenerateExecs)
	e.i64(y.GenerateEdges)
	e.int(len(st.Crashes))
	for _, cr := range st.Crashes {
		e.str(cr.Title)
		e.str(cr.Category)
		e.str(cr.Detector)
		e.str(cr.KnownSince)
		e.flag(cr.Flaky)
		e.str(cr.ProgText)
		e.i64(cr.Cost)
	}
	e.int(len(st.Preds))
	for _, ps := range st.Preds {
		e.str(ps.Text)
		e.flag(ps.Local)
		e.flag(ps.Pending)
		e.blocks(ps.Targets)
		e.int(len(ps.Slots))
		for _, gs := range ps.Slots {
			e.int(gs.Call)
			e.int(gs.Slot)
		}
	}
}
func (e *enc) vmStates(sts []fuzzer.VMState) {
	e.int(len(sts))
	for _, st := range sts {
		e.vmState(st)
	}
}
func (e *enc) delta(d fuzzer.VMDelta) {
	e.int(d.VM)
	if e.v2 {
		// v2 elides the crash-table prefix the coordinator already holds;
		// only the count travels. v1 always carries the full table, so the
		// field (necessarily zero there) is not encoded.
		e.int(d.CrashBase)
	}
	e.int(len(d.Locals))
	for _, l := range d.Locals {
		e.str(l.Text)
		e.traces(l.Traces)
		e.flag(l.Seeded)
	}
	e.events(d.Events)
	e.vmState(d.State)
}
func (e *enc) spec(sp CampaignSpec) {
	e.u8(sp.Mode)
	e.str(sp.KernelVersion)
	e.u64(sp.Seed)
	e.i64(sp.Budget)
	e.int(sp.TotalVMs)
	e.i64(sp.SyncEvery)
	e.i64(sp.SampleEvery)
	e.f64(sp.FallbackProb)
	e.f64(sp.DegradedFallbackProb)
	e.f64(sp.GenerateProb)
	e.int(sp.MutationsPerPrediction)
	e.int(sp.MaxQueryTargets)
	e.int(sp.MaxPending)
	e.flag(sp.MinimizeCorpus)
	e.flag(sp.Journal)
	e.flag(sp.OnlineEnabled)
	e.i64(sp.OnlineEvery)
	e.i64(sp.OnlineLag)
	e.int(sp.OnlineMinCorpus)
	e.int(sp.OnlineMutationsPerBase)
	e.int(sp.OnlineTrainEpochs)
	e.int(sp.OnlineTrainBatch)
	e.int(len(sp.SeedProgs))
	for _, s := range sp.SeedProgs {
		e.str(s)
	}
	e.blob(sp.Model)
}

// --- decoder ---

type dec struct {
	b   []byte
	off int
	err error
	v2  bool // wire v2: varint/zigzag-delta trace encoding
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}
func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *dec) flag() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bad bool tag", ErrBadMessage))
		return false
	}
}
func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) int() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail(fmt.Errorf("%w: integer out of range", ErrBadMessage))
		return 0
	}
	return int(v)
}

// uv reads a canonical uvarint: minimal-length encodings only, so every
// value keeps exactly one wire form.
func (d *dec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n == 0 {
		d.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		d.fail(fmt.Errorf("%w: varint overflow", ErrBadMessage))
		return 0
	}
	if n > 1 && d.b[d.off+n-1] == 0 {
		d.fail(fmt.Errorf("%w: non-minimal varint", ErrBadMessage))
		return 0
	}
	d.off += n
	return v
}

// sv reads a canonical zigzag varint.
func (d *dec) sv() int64 {
	v := d.uv()
	return int64(v>>1) ^ -int64(v&1)
}

// uvLen reads a varint slice length with the same bounds policy as
// listLen: capped by maxWireList and by the remaining payload (items are
// at least one byte each).
func (d *dec) uvLen() int {
	v := d.uv()
	if d.err != nil {
		return 0
	}
	if v > maxWireList || v > uint64(len(d.b)-d.off) {
		d.fail(fmt.Errorf("%w: implausible length %d", ErrBadMessage, v))
		return 0
	}
	return int(v)
}

// listLen reads a slice/string length, rejecting negative values and
// anything beyond both the wire bound and the remaining payload (lengths
// are counts of at-least-one-byte items, so a valid length never exceeds
// what is left to read).
func (d *dec) listLen() int {
	n := d.int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxWireList || n > len(d.b)-d.off {
		d.fail(fmt.Errorf("%w: implausible length %d", ErrBadMessage, n))
		return 0
	}
	return n
}
func (d *dec) str() string { return string(d.take(d.listLen())) }
func (d *dec) blob() []byte {
	b := d.take(d.listLen())
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
func (d *dec) state4() [4]uint64 {
	var s [4]uint64
	for i := range s {
		s[i] = d.u64()
	}
	return s
}
func (d *dec) blocks() []kernel.BlockID {
	if d.v2 {
		n := d.uvLen()
		if d.err != nil || n == 0 {
			return nil
		}
		out := make([]kernel.BlockID, n)
		prev := int64(0)
		for i := range out {
			prev += d.sv()
			out[i] = kernel.BlockID(prev)
		}
		if d.err != nil {
			return nil
		}
		return out
	}
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	// Each block id is 8 wire bytes; re-check against remaining payload.
	if n > (len(d.b)-d.off)/8 {
		d.fail(ErrTruncated)
		return nil
	}
	out := make([]kernel.BlockID, n)
	for i := range out {
		out[i] = kernel.BlockID(d.i64())
	}
	return out
}
func (d *dec) traces() [][]kernel.BlockID {
	var n int
	if d.v2 {
		n = d.uvLen()
	} else {
		n = d.listLen()
	}
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]kernel.BlockID, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.blocks())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) event() obs.Event {
	return obs.Event{
		Seq:    d.u64(),
		Kind:   d.str(),
		VM:     d.int(),
		Epoch:  d.i64(),
		Cost:   d.i64(),
		Value:  d.i64(),
		Detail: d.str(),
	}
}
func (d *dec) events() []obs.Event {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]obs.Event, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.event())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) accepted() fuzzer.Accepted {
	return fuzzer.Accepted{
		VM:     d.int(),
		Seeded: d.flag(),
		Text:   d.str(),
		Traces: d.traces(),
	}
}
func (d *dec) acceptedList() []fuzzer.Accepted {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]fuzzer.Accepted, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.accepted())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) vmState() fuzzer.VMState {
	st := fuzzer.VMState{
		VM:          d.int(),
		RNG:         d.state4(),
		Flaky:       d.state4(),
		Execs:       d.i64(),
		BlocksRun:   d.i64(),
		Cost:        d.i64(),
		Budget:      d.i64(),
		Epochs:      d.i64(),
		Reconciled:  d.i64(),
		Phantom:     d.int(),
		QueueWaitNs: d.i64(),
	}
	c := &st.Counters
	c.Executions = d.i64()
	c.PMMQueries = d.i64()
	c.PMMPredictions = d.i64()
	c.PMMFailed = d.i64()
	c.PMMShed = d.i64()
	c.PMMInvalidSlots = d.i64()
	c.DegradedSteps = d.i64()
	y := &c.Yield
	y.GuidedExecs = d.i64()
	y.GuidedEdges = d.i64()
	y.RandArgExecs = d.i64()
	y.RandArgEdges = d.i64()
	y.OtherMutExecs = d.i64()
	y.OtherMutEdges = d.i64()
	y.GenerateExecs = d.i64()
	y.GenerateEdges = d.i64()
	ncr := d.listLen()
	for i := 0; i < ncr && d.err == nil; i++ {
		st.Crashes = append(st.Crashes, fuzzer.CrashState{
			Title:      d.str(),
			Category:   d.str(),
			Detector:   d.str(),
			KnownSince: d.str(),
			Flaky:      d.flag(),
			ProgText:   d.str(),
			Cost:       d.i64(),
		})
	}
	nps := d.listLen()
	for i := 0; i < nps && d.err == nil; i++ {
		ps := fuzzer.PredState{
			Text:    d.str(),
			Local:   d.flag(),
			Pending: d.flag(),
			Targets: d.blocks(),
		}
		nsl := d.listLen()
		for j := 0; j < nsl && d.err == nil; j++ {
			ps.Slots = append(ps.Slots, prog.GlobalSlot{Call: d.int(), Slot: d.int()})
		}
		st.Preds = append(st.Preds, ps)
	}
	return st
}
func (d *dec) vmStates() []fuzzer.VMState {
	n := d.listLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]fuzzer.VMState, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.vmState())
		if d.err != nil {
			return nil
		}
	}
	return out
}
func (d *dec) delta() fuzzer.VMDelta {
	dl := fuzzer.VMDelta{VM: d.int()}
	if d.v2 {
		dl.CrashBase = d.int()
		if dl.CrashBase < 0 || dl.CrashBase > maxWireList {
			d.fail(fmt.Errorf("%w: implausible crash base %d", ErrBadMessage, dl.CrashBase))
			return dl
		}
	}
	nl := d.listLen()
	for i := 0; i < nl && d.err == nil; i++ {
		dl.Locals = append(dl.Locals, fuzzer.Local{
			Text:   d.str(),
			Traces: d.traces(),
			Seeded: d.flag(),
		})
	}
	dl.Events = d.events()
	dl.State = d.vmState()
	return dl
}
func (d *dec) spec() CampaignSpec {
	sp := CampaignSpec{
		Mode:                   d.u8(),
		KernelVersion:          d.str(),
		Seed:                   d.u64(),
		Budget:                 d.i64(),
		TotalVMs:               d.int(),
		SyncEvery:              d.i64(),
		SampleEvery:            d.i64(),
		FallbackProb:           d.f64(),
		DegradedFallbackProb:   d.f64(),
		GenerateProb:           d.f64(),
		MutationsPerPrediction: d.int(),
		MaxQueryTargets:        d.int(),
		MaxPending:             d.int(),
		MinimizeCorpus:         d.flag(),
		Journal:                d.flag(),
		OnlineEnabled:          d.flag(),
		OnlineEvery:            d.i64(),
		OnlineLag:              d.i64(),
		OnlineMinCorpus:        d.int(),
		OnlineMutationsPerBase: d.int(),
		OnlineTrainEpochs:      d.int(),
		OnlineTrainBatch:       d.int(),
	}
	if sp.Mode > 1 {
		d.fail(fmt.Errorf("%w: unknown mode %d", ErrBadMessage, sp.Mode))
	}
	if sp.TotalVMs < 0 || sp.TotalVMs > 1<<16 {
		d.fail(fmt.Errorf("%w: implausible VM count %d", ErrBadMessage, sp.TotalVMs))
	}
	nsp := d.listLen()
	for i := 0; i < nsp && d.err == nil; i++ {
		sp.SeedProgs = append(sp.SeedProgs, d.str())
	}
	sp.Model = d.blob()
	return sp
}

// finish fails if the message has trailing garbage, so every encoded form
// has exactly one valid byte representation.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b)-d.off)
	}
	return nil
}

// --- message encode/decode ---

// EncodeHello serializes a Hello message: the legacy 8-byte form when the
// worker speaks only wire v1, the 24-byte extended form otherwise.
func EncodeHello(h Hello) []byte {
	var e enc
	e.u64(uint64(h.Proto))
	if h.Wire <= 1 {
		return e.b
	}
	e.u64(uint64(h.Wire))
	e.u64(uint64(h.MaxLevel))
	return e.b
}

// DecodeHello parses a Hello message in either form. A legacy Hello
// normalizes to Wire 1 / MaxLevel 0; the extended form must carry Wire >=
// 2 (anything lower would re-encode to the legacy form).
func DecodeHello(b []byte) (Hello, error) {
	d := dec{b: b}
	v := d.u64()
	if v > math.MaxUint32 {
		d.fail(fmt.Errorf("%w: implausible protocol version", ErrBadMessage))
	}
	h := Hello{Proto: uint32(v), Wire: 1}
	if d.err == nil && d.off < len(d.b) {
		w, lvl := d.u64(), d.u64()
		if d.err == nil && (w < 2 || w > math.MaxUint32) {
			d.fail(fmt.Errorf("%w: extended hello with wire version %d", ErrBadMessage, w))
		}
		if d.err == nil && lvl > maxFlateLevel {
			d.fail(fmt.Errorf("%w: implausible flate level %d", ErrBadMessage, lvl))
		}
		h.Wire, h.MaxLevel = uint32(w), uint32(lvl)
	}
	return h, d.finish()
}

// EncodeWireMsg serializes a WireMsg.
func EncodeWireMsg(m WireMsg) []byte {
	var e enc
	e.u64(uint64(m.Wire))
	e.u64(uint64(m.Level))
	return e.b
}

// DecodeWireMsg parses a WireMsg, rejecting versions this build cannot
// speak and out-of-range flate levels.
func DecodeWireMsg(b []byte) (WireMsg, error) {
	d := dec{b: b}
	w, lvl := d.u64(), d.u64()
	if d.err == nil && (w < 1 || Wire(w) > wireMax) {
		d.fail(fmt.Errorf("%w: negotiated wire version %d", ErrBadVersion, w))
	}
	if d.err == nil && lvl > maxFlateLevel {
		d.fail(fmt.Errorf("%w: implausible flate level %d", ErrBadMessage, lvl))
	}
	return WireMsg{Wire: uint32(w), Level: uint32(lvl)}, d.finish()
}

// AppendAssign appends a's encoding at wire version w to dst.
func (w Wire) AppendAssign(dst []byte, a Assign) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.spec(a.Spec)
	e.int(len(a.VMs))
	for _, vm := range a.VMs {
		e.int(vm)
	}
	e.acceptedList(a.Snapshot)
	e.vmStates(a.States)
	e.i64(a.StartEpoch)
	e.flag(a.SeedPass)
	return e.b
}

// DecodeAssign parses an Assign message at wire version w.
func (w Wire) DecodeAssign(b []byte) (Assign, error) {
	d := dec{b: b, v2: w.v2()}
	a := Assign{Spec: d.spec()}
	n := d.listLen()
	for i := 0; i < n && d.err == nil; i++ {
		a.VMs = append(a.VMs, d.int())
	}
	a.Snapshot = d.acceptedList()
	a.States = d.vmStates()
	a.StartEpoch = d.i64()
	a.SeedPass = d.flag()
	return a, d.finish()
}

// AppendEpoch appends m's encoding at wire version w to dst.
func (w Wire) AppendEpoch(dst []byte, m EpochMsg) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.i64(m.Epoch)
	e.acceptedList(m.Accepted)
	return e.b
}

// DecodeEpoch parses an EpochMsg at wire version w.
func (w Wire) DecodeEpoch(b []byte) (EpochMsg, error) {
	d := dec{b: b, v2: w.v2()}
	m := EpochMsg{Epoch: d.i64(), Accepted: d.acceptedList()}
	return m, d.finish()
}

// AppendDelta appends m's encoding at wire version w to dst. The per-epoch
// hot path passes a reused buffer here so steady-state encoding does not
// allocate.
func (w Wire) AppendDelta(dst []byte, m DeltaMsg) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.i64(m.Epoch)
	e.int(len(m.Deltas))
	for _, dl := range m.Deltas {
		e.delta(dl)
	}
	return e.b
}

// DecodeDelta parses a DeltaMsg at wire version w.
func (w Wire) DecodeDelta(b []byte) (DeltaMsg, error) {
	d := dec{b: b, v2: w.v2()}
	m := DeltaMsg{Epoch: d.i64()}
	n := d.listLen()
	for i := 0; i < n && d.err == nil; i++ {
		m.Deltas = append(m.Deltas, d.delta())
	}
	return m, d.finish()
}

// AppendRestore appends m's encoding at wire version w to dst.
func (w Wire) AppendRestore(dst []byte, m RestoreMsg) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.i64(m.Epoch)
	e.vmStates(m.States)
	return e.b
}

// DecodeRestore parses a RestoreMsg at wire version w.
func (w Wire) DecodeRestore(b []byte) (RestoreMsg, error) {
	d := dec{b: b, v2: w.v2()}
	m := RestoreMsg{Epoch: d.i64(), States: d.vmStates()}
	return m, d.finish()
}

// AppendFinal appends m's encoding at wire version w to dst.
func (w Wire) AppendFinal(dst []byte, m FinalMsg) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.vmStates(m.States)
	return e.b
}

// DecodeFinal parses a FinalMsg at wire version w.
func (w Wire) DecodeFinal(b []byte) (FinalMsg, error) {
	d := dec{b: b, v2: w.v2()}
	m := FinalMsg{States: d.vmStates()}
	return m, d.finish()
}

// AppendModelMsg appends m's encoding at wire version w to dst. Wire v2
// flate-wraps the model bytes (uvarint raw length + uvarint compressed
// length + deflate stream) — model pushes repeat quantized tables that
// compress well, and they fan out to the whole fleet.
func (w Wire) AppendModelMsg(dst []byte, m ModelMsg) []byte {
	e := enc{b: dst, v2: w.v2()}
	e.i64(m.Version)
	if !e.v2 {
		e.blob(m.Model)
		return e.b
	}
	e.uv(uint64(len(m.Model)))
	if len(m.Model) > 0 {
		comp := appendFlate(nil, m.Model, blobFlateLevel)
		e.uv(uint64(len(comp)))
		e.b = append(e.b, comp...)
	}
	return e.b
}

// DecodeModelMsg parses a ModelMsg at wire version w. The v2 form guards
// against decompression bombs (declared raw length capped at maxWireList,
// checked before inflating) and enforces canonical compressed bytes: the
// decoded model must re-compress to exactly the wire bytes, preserving the
// one-encoding-per-message property for fuzzing and digests.
func (w Wire) DecodeModelMsg(b []byte) (ModelMsg, error) {
	d := dec{b: b, v2: w.v2()}
	m := ModelMsg{Version: d.i64()}
	if !d.v2 {
		m.Model = d.blob()
	} else if rawLen := d.uv(); d.err == nil && rawLen > 0 {
		if rawLen > maxWireList {
			d.fail(fmt.Errorf("%w: declared model size %d exceeds cap %d", ErrBadMessage, rawLen, maxWireList))
		} else {
			compLen := d.uv()
			if d.err == nil && compLen > uint64(len(d.b)-d.off) {
				d.fail(ErrTruncated)
			}
			comp := d.take(int(compLen))
			if d.err == nil {
				model, err := inflateExact(comp, int(rawLen))
				if err != nil {
					d.fail(err)
				} else if !bytes.Equal(appendFlate(nil, model, blobFlateLevel), comp) {
					d.fail(fmt.Errorf("%w: non-canonical model compression", ErrBadMessage))
				} else {
					m.Model = model
				}
			}
		}
	}
	if m.Version <= 0 && d.err == nil {
		d.fail(fmt.Errorf("%w: model push version %d", ErrBadMessage, m.Version))
	}
	return m, d.finish()
}

// EncodeAssign serializes an Assign message in the v1 wire format.
func EncodeAssign(a Assign) []byte { return WireV1.AppendAssign(nil, a) }

// DecodeAssign parses a v1 Assign message.
func DecodeAssign(b []byte) (Assign, error) { return WireV1.DecodeAssign(b) }

// EncodeEpoch serializes an EpochMsg in the v1 wire format.
func EncodeEpoch(m EpochMsg) []byte { return WireV1.AppendEpoch(nil, m) }

// DecodeEpoch parses a v1 EpochMsg.
func DecodeEpoch(b []byte) (EpochMsg, error) { return WireV1.DecodeEpoch(b) }

// EncodeDelta serializes a DeltaMsg in the v1 wire format.
func EncodeDelta(m DeltaMsg) []byte { return WireV1.AppendDelta(nil, m) }

// DecodeDelta parses a v1 DeltaMsg.
func DecodeDelta(b []byte) (DeltaMsg, error) { return WireV1.DecodeDelta(b) }

// EncodeRestore serializes a RestoreMsg in the v1 wire format.
func EncodeRestore(m RestoreMsg) []byte { return WireV1.AppendRestore(nil, m) }

// DecodeRestore parses a v1 RestoreMsg.
func DecodeRestore(b []byte) (RestoreMsg, error) { return WireV1.DecodeRestore(b) }

// EncodeFinal serializes a FinalMsg in the v1 wire format.
func EncodeFinal(m FinalMsg) []byte { return WireV1.AppendFinal(nil, m) }

// DecodeFinal parses a v1 FinalMsg.
func DecodeFinal(b []byte) (FinalMsg, error) { return WireV1.DecodeFinal(b) }

// EncodeModelMsg serializes a ModelMsg in the v1 wire format.
func EncodeModelMsg(m ModelMsg) []byte { return WireV1.AppendModelMsg(nil, m) }

// DecodeModelMsg parses a v1 ModelMsg.
func DecodeModelMsg(b []byte) (ModelMsg, error) { return WireV1.DecodeModelMsg(b) }

// EncodeErr serializes an ErrMsg.
func EncodeErr(m ErrMsg) []byte {
	var e enc
	e.str(m.Msg)
	return e.b
}

// DecodeErr parses an ErrMsg.
func DecodeErr(b []byte) (ErrMsg, error) {
	d := dec{b: b}
	m := ErrMsg{Msg: d.str()}
	return m, d.finish()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
