// Cluster-grade determinism suite: a W-worker cluster must be
// bit-identical, per seed, to the single-host campaign with the same VM
// count — corpus, coverage, journal and stats — for W = 1, 2 and 4, and a
// checkpointed campaign must resume (even resharded onto a different worker
// count) with identical final output.

package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func seedProgs(n int, seed uint64) []*prog.Prog {
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(seed)
	out := make([]*prog.Prog, n)
	for i := range out {
		out[i] = g.Generate(r, 2+r.Intn(3))
	}
	return out
}

// testModelBytes serializes a fresh deterministic PMM model; workers load
// it into their own inference servers.
func testModelBytes(t *testing.T) []byte {
	t.Helper()
	m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// baseConfig is the single-host campaign the cluster runs are compared to.
func baseConfig(seed uint64, budget int64, vms int) fuzzer.Config {
	return fuzzer.Config{
		Mode:       fuzzer.ModeSyzkaller,
		Kernel:     testKernel,
		An:         testAn,
		Seed:       seed,
		Budget:     budget,
		VMs:        vms,
		SeedCorpus: seedProgs(10, seed+100),
	}
}

// hostResult mirrors cluster.Result for a single-host campaign.
func runSingleHost(t *testing.T, cfg fuzzer.Config) *Result {
	t.Helper()
	jn := obs.NewJournal(0)
	cfg.Journal = jn
	f := fuzzer.New(cfg)
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return &Result{
		Stats:         stats,
		CorpusDigest:  CorpusDigest(f.Corpus()),
		CoverDigest:   CoverDigest(f.Corpus()),
		JournalDigest: JournalDigest(jn.Events()),
		Events:        jn.Events(),
	}
}

// zeroWallClock clears the wall-clock stat fields excluded from the
// determinism guarantee, so full-struct comparisons work.
func zeroWallClock(s *fuzzer.Stats) *fuzzer.Stats {
	for i := range s.VMs {
		s.VMs[i].QueueWaitNs = 0
	}
	return s
}

func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.CorpusDigest != got.CorpusDigest {
		t.Errorf("%s: corpus digest diverged", label)
	}
	if want.CoverDigest != got.CoverDigest {
		t.Errorf("%s: coverage digest diverged", label)
	}
	if want.JournalDigest != got.JournalDigest {
		t.Errorf("%s: journal digest diverged (%d vs %d events)", label, len(want.Events), len(got.Events))
	}
	if !reflect.DeepEqual(zeroWallClock(want.Stats), zeroWallClock(got.Stats)) {
		t.Errorf("%s: stats diverged:\nwant: edges=%d execs=%d corpus=%d queries=%d preds=%d crashes=%d series=%d\ngot:  edges=%d execs=%d corpus=%d queries=%d preds=%d crashes=%d series=%d",
			label,
			want.Stats.FinalEdges, want.Stats.Executions, want.Stats.CorpusSize, want.Stats.PMMQueries, want.Stats.PMMPredictions, len(want.Stats.Crashes), len(want.Stats.Series),
			got.Stats.FinalEdges, got.Stats.Executions, got.Stats.CorpusSize, got.Stats.PMMQueries, got.Stats.PMMPredictions, len(got.Stats.Crashes), len(got.Stats.Series))
	}
	if t.Failed() {
		t.Fatalf("%s: cluster output is not bit-identical to the single host", label)
	}
}

// TestClusterMatchesSingleHostSyzkaller is the core guarantee: for the same
// seed, a campaign split across 1, 2 or 4 workers produces byte-identical
// corpus, coverage and journal digests — and identical stats — to the
// single-host 4-VM campaign.
func TestClusterMatchesSingleHostSyzkaller(t *testing.T) {
	cfg := baseConfig(41, 200_000, 4)
	want := runSingleHost(t, cfg)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	for _, workers := range []int{1, 2, 4} {
		got, err := RunLocal(Config{Spec: spec}, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameResult(t, labelWorkers(workers), want, got)
	}
}

// TestClusterMatchesSingleHostSnowplow extends the guarantee to the learned
// mutator: every worker runs its own inference server from the shipped
// model bytes, and the query/prediction schedule still matches the
// single-host campaign exactly.
func TestClusterMatchesSingleHostSnowplow(t *testing.T) {
	model := testModelBytes(t)
	m, err := pmm.Load(bytes.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	// Mirror Materialize's generous serving limits so neither side can
	// degrade under load (e.g. the race detector's 10-20x slowdown).
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), serve.Options{
		Workers:   2,
		QueueSize: 1024,
		Deadline:  30 * time.Second,
	})
	defer srv.Close()
	cfg := baseConfig(42, 200_000, 4)
	cfg.Mode = fuzzer.ModeSnowplow
	cfg.Server = srv
	want := runSingleHost(t, cfg)
	if want.Stats.PMMQueries == 0 {
		t.Fatal("single-host snowplow campaign issued no PMM queries")
	}
	spec := SpecFromConfig(withJournalFlag(cfg), model)
	for _, workers := range []int{1, 2} {
		got, err := RunLocal(Config{Spec: spec}, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameResult(t, labelWorkers(workers), want, got)
	}
}

// TestClusterCheckpointResumeReshard kills a 2-worker campaign at a
// checkpoint barrier and resumes it on a 4-worker cluster: the resumed
// campaign must finish with output identical to the uninterrupted run.
func TestClusterCheckpointResumeReshard(t *testing.T) {
	cfg := baseConfig(43, 200_000, 4)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)

	var checkpoints [][]byte
	full, err := RunLocal(Config{
		Spec:            spec,
		CheckpointEvery: 8,
		OnCheckpoint:    func(epoch int64, data []byte) { checkpoints = append(checkpoints, data) },
	}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) < 2 {
		t.Fatalf("campaign produced %d checkpoints, want at least 2", len(checkpoints))
	}

	// Resume from a mid-campaign checkpoint — the state a crash at that
	// barrier would leave behind — on a differently sized fleet.
	mid := checkpoints[len(checkpoints)/2]
	for _, workers := range []int{2, 4} {
		got, err := ResumeLocal(Config{Spec: spec}, mid, workers, WorkerOptions{})
		if err != nil {
			t.Fatalf("resume workers=%d: %v", workers, err)
		}
		requireSameResult(t, "resume-"+labelWorkers(workers), full, got)
	}
}

// TestClusterCheckpointEveryBarrier pins the checkpoint invariant at every
// single barrier: resuming from ANY checkpoint reproduces the final
// digests. This is the strongest form of the crash-consistency claim.
func TestClusterCheckpointEveryBarrier(t *testing.T) {
	cfg := baseConfig(44, 60_000, 2)
	spec := SpecFromConfig(withJournalFlag(cfg), nil)
	var checkpoints [][]byte
	full, err := RunLocal(Config{
		Spec:            spec,
		CheckpointEvery: 1,
		OnCheckpoint:    func(epoch int64, data []byte) { checkpoints = append(checkpoints, data) },
	}, 2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) < 4 {
		t.Fatalf("campaign produced only %d checkpoints", len(checkpoints))
	}
	step := len(checkpoints)/4 + 1
	for i := 0; i < len(checkpoints); i += step {
		got, err := ResumeLocal(Config{Spec: spec}, checkpoints[i], 2, WorkerOptions{})
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		requireSameResult(t, "checkpoint-"+labelWorkers(i), full, got)
	}
}

func withJournalFlag(cfg fuzzer.Config) fuzzer.Config {
	cfg.Journal = obs.NewJournal(1) // sentinel: SpecFromConfig only checks non-nil
	return cfg
}

func labelWorkers(w int) string {
	return "workers=" + string(rune('0'+w))
}
