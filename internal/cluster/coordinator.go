// The coordinator owns a cluster campaign's authoritative state — corpus,
// coverage, canonical VM states, journal, sampling cursor — and drives N
// workers in lockstep epochs over TCP. It is the single-host reconciler
// (fuzzer/parallel.go) with the VM fan-out moved across a network seam:
// every barrier it broadcasts the previous merge's accepted entries, each
// worker fuzzes one slice, and the returned deltas are merged in ascending
// VM order under a global sequence counter. Worker loss is handled at the
// barrier: the lost shard's canonical states are restored onto a surviving
// worker, which re-runs the epoch for exactly those VMs — the re-run is
// bit-identical to what the lost worker would have produced, so the
// campaign's output is independent of churn.

package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
)

// Config parameterizes a coordinator.
type Config struct {
	Spec CampaignSpec
	// Workers is how many worker connections to wait for before starting.
	Workers int
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// CheckpointPath, when set, receives an atomic checkpoint file every
	// CheckpointEvery epochs.
	CheckpointPath  string
	CheckpointEvery int64
	// OnCheckpoint, when set, observes every encoded checkpoint (tests use
	// it to capture mid-campaign state without touching the filesystem).
	OnCheckpoint func(epoch int64, data []byte)
	// Metrics, when set, receives the cluster_* instrument family.
	Metrics *obs.Registry
	// JournalCap bounds the campaign journal (DefaultJournalCap if <= 0).
	JournalCap int
	// IOTimeout bounds every network operation, including waiting for
	// worker connections (default 60s). A worker that misses it is treated
	// as lost.
	IOTimeout time.Duration
	// Compress is the per-frame flate level (1-9) the coordinator offers
	// when negotiating with v2 workers; 0 disables frame compression. The
	// effective level per connection is min(Compress, the worker's
	// advertised maximum). Wire-level only: merged state, digests and
	// checkpoints are bit-identical at every level.
	Compress int
	// TrainWorkers / CollectWorkers bound the online-learning retrain's
	// data-parallel training and harvest pools (0 = library defaults).
	// Wall-clock only: retrains are bit-identical at any width.
	TrainWorkers   int
	CollectWorkers int
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// Result is a finished cluster campaign: the campaign stats (assembled
// exactly as the single-host engine would) plus digests of the
// determinism-guaranteed observables.
type Result struct {
	Stats         *fuzzer.Stats
	CorpusDigest  string
	CoverDigest   string
	JournalDigest string
	// Events is the journal's retained window (nil when not journaling).
	Events []obs.Event
	// Workers is the configured worker count.
	Workers int
	// Wire aggregates the coordinator's frame-level byte accounting across
	// all worker connections (experiments read the compression ratio off
	// it).
	Wire WireStats
}

// WireStats is the coordinator's aggregated frame accounting: payload
// bytes before compression (raw) and bytes actually on the wire, in each
// direction, plus the epoch count the traffic amortizes over.
type WireStats struct {
	TxRawBytes  int64 // sent payload+header bytes before compression
	TxWireBytes int64 // sent bytes on the wire
	RxRawBytes  int64 // received payload+header bytes after inflation
	RxWireBytes int64 // received bytes on the wire
	Epochs      int64 // merged epochs the traffic spans
	// CompressedWorkers counts connections that negotiated a non-zero
	// flate level.
	CompressedWorkers int
}

// Coordinator runs one cluster campaign.
type Coordinator struct {
	cfg   Config
	norm  fuzzer.Config // normalized campaign config (kernel, knob defaults)
	k     *kernel.Kernel
	an    *cfa.Analysis
	ln    net.Listener
	corp  *corpus.Corpus
	jn    *obs.Journal
	jnCap int
	m     *clusterMetrics

	// ctl drives online continual learning (nil for frozen-model
	// campaigns); modelVersion is the serving checkpoint generation (the
	// last accepted swap, 0 = initial model).
	ctl          *online.Controller
	modelVersion int64

	states []fuzzer.VMState // canonical, indexed by VM id
	epoch  int64            // last merged epoch
	seq    int64            // reconciler merge sequence counter
	// pendingAccepted is the last merge's outcome, broadcast at the next
	// barrier.
	pendingAccepted []fuzzer.Accepted
	nextSample      int64
	series          []fuzzer.Point
	// pendingSeed buffers the seed pass's journal events until VM 0's
	// first epoch delta is flushed (the single-host engine flushes VM 0's
	// buffered events — seeds included — at its first active barrier).
	pendingSeed []obs.Event
	seedFlushed bool
	resumed     bool
}

// Spec returns the campaign spec the coordinator is running — for a
// resumed campaign, the spec restored from the checkpoint.
func (c *Coordinator) Spec() CampaignSpec { return c.cfg.Spec }

// NewCoordinator creates a coordinator for a fresh campaign and starts
// listening. Call Run to admit workers and execute the campaign.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	c, err := newCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	for vm := 0; vm < c.norm.VMs; vm++ {
		c.states = append(c.states, fuzzer.InitialVMState(c.norm, vm))
	}
	c.nextSample = c.norm.SampleEvery
	if c.cfg.Spec.Journal {
		c.jn = obs.NewJournal(c.jnCap)
	}
	if err := c.initOnline(); err != nil {
		return nil, err
	}
	return c, nil
}

// ResumeCoordinator creates a coordinator continuing a checkpointed
// campaign. The checkpoint's spec overrides cfg.Spec, and the worker count
// may differ from the checkpointed campaign's — VM shards are recut over
// the new fleet with identical results.
func ResumeCoordinator(cfg Config, checkpoint []byte) (*Coordinator, error) {
	ck, err := DecodeCheckpoint(checkpoint)
	if err != nil {
		return nil, err
	}
	cfg.Spec = ck.Spec
	c, err := newCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range ck.Entries {
		if err := validateTraces(c.k, a.Traces); err != nil {
			return nil, fmt.Errorf("cluster: checkpoint corpus: %w", err)
		}
		p, err := prog.Parse(c.k.Target, a.Text)
		if err != nil {
			return nil, fmt.Errorf("cluster: checkpoint corpus: %w", err)
		}
		c.corp.SeedEntry(corpus.EntryFromTraces(p, a.Traces))
	}
	if got := int64(c.corp.TotalEdges()); got != ck.TotalEdges {
		return nil, fmt.Errorf("%w: checkpoint coverage mismatch: rebuilt %d edges, recorded %d",
			ErrBadMessage, got, ck.TotalEdges)
	}
	if ck.Cover != nil {
		// v3 checkpoints carry the full cover bitmap; the sparse encoding is
		// canonical, so byte equality against the rebuilt corpus cover is an
		// exact set comparison (strictly stronger than the count check).
		if rebuilt := c.corp.TotalCover().AppendSparse(nil); !bytes.Equal(rebuilt, ck.Cover) {
			return nil, fmt.Errorf("%w: checkpoint cover does not match rebuilt corpus cover", ErrBadMessage)
		}
	}
	if len(ck.States) != c.norm.VMs {
		return nil, fmt.Errorf("%w: checkpoint has %d VM states for %d VMs",
			ErrBadMessage, len(ck.States), c.norm.VMs)
	}
	c.states = append([]fuzzer.VMState(nil), ck.States...)
	for vm, st := range c.states {
		if st.VM != vm {
			return nil, fmt.Errorf("%w: checkpoint VM states out of order", ErrBadMessage)
		}
	}
	c.epoch = ck.Epoch
	c.seq = int64(ck.Seq)
	c.nextSample = ck.NextSample
	c.series = append([]fuzzer.Point(nil), ck.Series...)
	c.pendingSeed = append([]obs.Event(nil), ck.PendingSeed...)
	c.seedFlushed = ck.SeedFlushed
	if c.cfg.Spec.Journal {
		if ck.JournalCap > 0 {
			c.jnCap = ck.JournalCap
		}
		c.jn = obs.NewJournalFrom(c.jnCap, ck.Journal, ck.JournalNext, ck.JournalDropped)
	}
	if err := c.initOnline(); err != nil {
		return nil, err
	}
	if c.ctl != nil {
		c.ctl.SetApplied(ck.OnlineApplied)
		c.ctl.RestoreCounts(ck.OnlineRetrains, ck.OnlineSwaps, ck.OnlineSkips)
		c.modelVersion = ck.OnlineModelVersion
		if ck.OnlinePendingVersion > 0 {
			// Restart the in-flight retrain from the corpus publish-order
			// prefix the original kickoff snapshotted; it produces the
			// identical swap at the identical barrier.
			entries := c.corp.Entries()
			bases := make([]*prog.Prog, ck.OnlinePendingBase)
			for i := range bases {
				bases[i] = entries[i].Prog
			}
			c.ctl.ResumePending(ck.OnlinePendingVersion, ck.OnlinePendingEpoch, bases)
		}
	}
	// The snapshot was taken after a merge, so the accepted entries of the
	// checkpointed epoch are already inside it; the first post-resume
	// barrier broadcasts nothing.
	c.resumed = true
	return c, nil
}

func newCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 60 * time.Second
	}
	rt, err := cfg.Spec.Materialize(false, 0, false)
	if err != nil {
		return nil, err
	}
	norm := rt.Cfg.Normalized()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	jnCap := cfg.JournalCap
	if jnCap <= 0 {
		jnCap = obs.DefaultJournalCap
	}
	return &Coordinator{
		cfg:   cfg,
		norm:  norm,
		k:     rt.Kernel,
		an:    rt.An,
		ln:    ln,
		corp:  corpus.New(),
		jnCap: jnCap,
		m:     newClusterMetrics(cfg.Metrics),
	}, nil
}

// initOnline builds the continual-learning controller when the spec enables
// it. The gate incumbent is the spec's model bytes loaded fresh — the same
// canonical serving form every worker materializes — so the coordinator's
// validation decisions match what a single-host engine serving those bytes
// would make.
func (c *Coordinator) initOnline() error {
	oc := c.cfg.Spec.OnlineConfig()
	if oc == nil {
		return nil
	}
	if c.cfg.Spec.Mode != 1 {
		return fmt.Errorf("cluster: online learning requires snowplow mode")
	}
	m, err := pmm.Load(bytes.NewReader(c.cfg.Spec.Model))
	if err != nil {
		return fmt.Errorf("cluster: loading model for online learning: %w", err)
	}
	m.Freeze()
	ctl, err := online.New(online.Params{
		Config:         *oc,
		Kernel:         c.k,
		An:             c.an,
		Seed:           c.cfg.Spec.Seed,
		Current:        m,
		TrainWorkers:   c.cfg.TrainWorkers,
		CollectWorkers: c.cfg.CollectWorkers,
		Metrics:        c.cfg.Metrics,
		Logf:           c.cfg.Logf,
	})
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.ctl = ctl
	return nil
}

// Addr returns the coordinator's listen address, for workers to dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// workerConn is one admitted worker connection. Its framer holds the
// negotiated wire version and flate level plus the pooled frame buffers;
// wire names the codec for message payloads on this connection.
type workerConn struct {
	idx     int
	conn    net.Conn
	vms     []int // VMs currently owned (informational)
	alive   bool
	timeout time.Duration
	m       *clusterMetrics
	fr      framer
	wire    Wire
}

func (wc *workerConn) send(typ byte, payload []byte) error {
	wc.conn.SetWriteDeadline(time.Now().Add(wc.timeout))
	n, err := wc.fr.writeFrame(wc.conn, typ, payload)
	if err != nil {
		return err
	}
	wc.m.txBytes.Add(int64(n))
	wc.m.wireTx.Add(int64(n))
	wc.m.wireRaw.Add(int64(len(payload)) + wireFrameHeader)
	return nil
}

func (wc *workerConn) recv() (byte, []byte, error) {
	wc.conn.SetReadDeadline(time.Now().Add(wc.timeout))
	typ, payload, n, err := wc.fr.readFrame(wc.conn)
	if err != nil {
		return 0, nil, err
	}
	wc.m.rxBytes.Add(int64(n))
	wc.m.wireRx.Add(int64(n))
	wc.m.wireRaw.Add(int64(len(payload)) + wireFrameHeader)
	return typ, payload, nil
}

// recvAck reads one ack frame, surfacing worker-sent errors.
func (wc *workerConn) recvAck() error {
	typ, payload, err := wc.recv()
	if err != nil {
		return err
	}
	switch typ {
	case frameAck:
		return nil
	case frameErr:
		em, _ := DecodeErr(payload)
		return fmt.Errorf("cluster: worker %d failed: %s", wc.idx, em.Msg)
	default:
		return fmt.Errorf("%w: unexpected frame 0x%02x, want ack", ErrBadMessage, typ)
	}
}

// recvDelta reads one DeltaMsg for the given epoch, surfacing worker-sent
// errors.
func (wc *workerConn) recvDelta(epoch int64) (DeltaMsg, error) {
	typ, payload, err := wc.recv()
	if err != nil {
		return DeltaMsg{}, err
	}
	switch typ {
	case frameDelta:
		m, err := wc.wire.DecodeDelta(payload)
		if err != nil {
			return DeltaMsg{}, err
		}
		if m.Epoch != epoch {
			return DeltaMsg{}, fmt.Errorf("%w: delta for epoch %d at barrier %d", ErrBadMessage, m.Epoch, epoch)
		}
		return m, nil
	case frameErr:
		em, _ := DecodeErr(payload)
		return DeltaMsg{}, fmt.Errorf("cluster: worker %d failed: %s", wc.idx, em.Msg)
	default:
		return DeltaMsg{}, fmt.Errorf("%w: unexpected frame 0x%02x, want delta", ErrBadMessage, typ)
	}
}

// restoreCrashes re-prepends the crash-table prefix a v2 worker elided
// from each delta: CrashBase leading entries, which the coordinator holds
// in the VM's canonical state from the previous barrier (the table is
// append-only, so that state's table is an exact prefix of the worker's).
// The claimed base is validated against the stored table, so a confused
// or hostile worker cannot make the coordinator fabricate entries. After
// this call every delta carries its full crash table and CrashBase is
// zero, exactly as if the connection spoke v1.
func (c *Coordinator) restoreCrashes(m *DeltaMsg) error {
	for i := range m.Deltas {
		d := &m.Deltas[i]
		if d.CrashBase == 0 {
			continue
		}
		if d.VM < 0 || d.VM >= len(c.states) {
			return fmt.Errorf("%w: crash base for invalid VM %d", ErrBadMessage, d.VM)
		}
		known := c.states[d.VM].Crashes
		if d.CrashBase > len(known) {
			return fmt.Errorf("%w: crash base %d exceeds the %d known entries for VM %d",
				ErrBadMessage, d.CrashBase, len(known), d.VM)
		}
		d.State.Crashes = append(known[:d.CrashBase:d.CrashBase], d.State.Crashes...)
		d.CrashBase = 0
	}
	return nil
}

// Run admits Workers connections, executes the campaign to budget
// exhaustion and returns the assembled result. The listener is closed on
// return.
func (c *Coordinator) Run() (*Result, error) {
	defer c.ln.Close()
	workers, err := c.admit()
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, wc := range workers {
			wc.conn.Close()
		}
	}()
	c.m.workers.Set(int64(len(workers)))

	if !c.resumed {
		c.jn.Record(obs.Event{
			Kind: obs.EventCampaignStart, VM: -1,
			Detail: fmt.Sprintf("%s seed=%d vms=%d budget=%d", c.norm.Mode, c.norm.Seed, c.norm.VMs, c.norm.Budget),
		})
		if err := c.seedPhase(workers); err != nil {
			return nil, err
		}
	}

	for {
		active := c.activeVMs()
		if len(active) == 0 {
			break
		}
		if err := c.runEpochBarrier(workers, active); err != nil {
			return nil, err
		}
	}
	return c.finish(workers)
}

// admit accepts the configured number of workers, handshakes each, and
// deals out the VM shards: worker i owns the contiguous range
// [i*V/W, (i+1)*V/W) (empty when V < W). Failures here are fatal — churn
// tolerance begins once the campaign is running.
func (c *Coordinator) admit() ([]*workerConn, error) {
	if tcp, ok := c.ln.(*net.TCPListener); ok {
		tcp.SetDeadline(time.Now().Add(c.cfg.IOTimeout))
	}
	workers := make([]*workerConn, c.cfg.Workers)
	for i := range workers {
		conn, err := c.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: waiting for worker %d/%d: %w", i, c.cfg.Workers, err)
		}
		workers[i] = &workerConn{idx: i, conn: conn, alive: true, timeout: c.cfg.IOTimeout, m: c.m, wire: WireV1}
	}
	nvm, nw := c.norm.VMs, len(workers)
	for i, wc := range workers {
		typ, payload, err := wc.recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d handshake: %w", i, err)
		}
		if typ != frameHello {
			return nil, fmt.Errorf("%w: worker %d sent frame 0x%02x, want hello", ErrBadMessage, i, typ)
		}
		h, err := DecodeHello(payload)
		if err != nil {
			return nil, err
		}
		if h.Proto != protoVersion {
			wc.send(frameErr, EncodeErr(ErrMsg{Msg: fmt.Sprintf("protocol version %d, want %d", h.Proto, protoVersion)}))
			return nil, fmt.Errorf("%w: worker %d speaks protocol %d, want %d", ErrBadVersion, i, h.Proto, protoVersion)
		}
		// Negotiate the wire settings: the newest codec both ends speak, at
		// the flate level min(Config.Compress, worker's advertised max). A
		// legacy (8-byte) Hello skips the exchange and stays on v1
		// uncompressed — the pre-negotiation framing — so old workers slot
		// into a compressed fleet unchanged.
		if h.Wire >= 2 {
			wire := wireMax
			if Wire(h.Wire) < wire {
				wire = Wire(h.Wire)
			}
			level := min(c.cfg.Compress, int(h.MaxLevel))
			if level < 0 {
				level = 0
			}
			wm := WireMsg{Wire: uint32(wire), Level: uint32(level)}
			if err := wc.send(frameWire, EncodeWireMsg(wm)); err != nil {
				return nil, fmt.Errorf("cluster: negotiating with worker %d: %w", i, err)
			}
			wc.wire = wire
			wc.fr.wire = wire
			wc.fr.level = level
			c.logf("worker %d: wire v%d, flate level %d", i, wire, level)
		}
		lo, hi := i*nvm/nw, (i+1)*nvm/nw
		for vm := lo; vm < hi; vm++ {
			wc.vms = append(wc.vms, vm)
		}
		a := Assign{
			Spec:       c.cfg.Spec,
			VMs:        wc.vms,
			States:     append([]fuzzer.VMState(nil), c.states[lo:hi]...),
			StartEpoch: c.epoch,
			SeedPass:   !c.resumed && lo <= 0 && 0 < hi,
		}
		if c.resumed {
			for _, e := range c.corp.Entries() {
				a.Snapshot = append(a.Snapshot, fuzzer.Accepted{VM: -1, Seeded: true, Text: e.Text, Traces: e.Traces})
			}
		}
		if err := wc.send(frameAssign, wc.wire.AppendAssign(nil, a)); err != nil {
			return nil, fmt.Errorf("cluster: assigning worker %d: %w", i, err)
		}
	}
	for i, wc := range workers {
		typ, payload, err := wc.recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d ack: %w", i, err)
		}
		if typ == frameErr {
			em, _ := DecodeErr(payload)
			return nil, fmt.Errorf("cluster: worker %d rejected assignment: %s", i, em.Msg)
		}
		if typ != frameAck {
			return nil, fmt.Errorf("%w: worker %d sent frame 0x%02x, want ack", ErrBadMessage, i, typ)
		}
		c.logf("worker %d ready, VMs %v", i, wc.vms)
	}
	return workers, nil
}

// seedPhase runs a fresh campaign's seed pass: the worker owning VM 0
// executes the seed corpus against its replica and ships the seeded entries,
// which become the first barrier's broadcast so every replica starts
// identical. Seed insertions happen outside the reconciler (no sequence
// numbers), as in the single-host engine.
func (c *Coordinator) seedPhase(workers []*workerConn) error {
	var owner *workerConn
	for _, wc := range workers {
		if len(wc.vms) > 0 && wc.vms[0] == 0 {
			owner = wc
		}
	}
	if owner == nil {
		return fmt.Errorf("cluster: no worker owns VM 0")
	}
	m, err := owner.recvDelta(0)
	if err != nil {
		return fmt.Errorf("cluster: seed pass: %w", err)
	}
	if len(m.Deltas) != 1 || m.Deltas[0].VM != 0 {
		return fmt.Errorf("%w: seed delta must carry exactly VM 0", ErrBadMessage)
	}
	if err := c.restoreCrashes(&m); err != nil {
		return err
	}
	d := m.Deltas[0]
	for _, l := range d.Locals {
		if err := c.insertSeed(l); err != nil {
			return err
		}
		c.pendingAccepted = append(c.pendingAccepted, fuzzer.Accepted{VM: 0, Seeded: true, Text: l.Text, Traces: l.Traces})
	}
	c.pendingSeed = d.Events
	c.states[0] = d.State
	c.m.accepted.Add(int64(len(d.Locals)))
	return nil
}

func (c *Coordinator) insertSeed(l fuzzer.Local) error {
	if err := validateTraces(c.k, l.Traces); err != nil {
		return err
	}
	p, err := prog.Parse(c.k.Target, l.Text)
	if err != nil {
		return fmt.Errorf("%w: unparseable program: %v", ErrBadMessage, err)
	}
	c.corp.SeedEntry(corpus.EntryFromTraces(p, l.Traces))
	return nil
}

// activeVMs returns the VMs with remaining budget, ascending.
func (c *Coordinator) activeVMs() []int {
	var out []int
	for vm := range c.states {
		if c.states[vm].Cost < c.states[vm].Budget {
			out = append(out, vm)
		}
	}
	return out
}

// runEpochBarrier executes one epoch: broadcast, collect, reassign lost
// shards, merge, journal, sample, checkpoint.
func (c *Coordinator) runEpochBarrier(workers []*workerConn, active []int) error {
	c.epoch++
	// The broadcast is encoded lazily once per wire version present in the
	// fleet, so a mixed-version fleet pays one encode per codec, not per
	// worker.
	em := EpochMsg{Epoch: c.epoch, Accepted: c.pendingAccepted}
	var perWire [wireMax + 1][]byte
	payloadFor := func(w Wire) []byte {
		if perWire[w] == nil {
			perWire[w] = w.AppendEpoch(nil, em)
		}
		return perWire[w]
	}
	c.pendingAccepted = nil
	for _, wc := range workers {
		if !wc.alive {
			continue
		}
		if err := wc.send(frameEpoch, payloadFor(wc.wire)); err != nil {
			c.loseWorker(wc, err)
		}
	}

	ran := map[int]bool{}
	var deltas []fuzzer.VMDelta
	collect := func(wc *workerConn) error {
		m, err := wc.recvDelta(c.epoch)
		if err != nil {
			c.loseWorker(wc, err)
			return nil // partial work is discarded; reassignment re-runs it
		}
		if err := c.restoreCrashes(&m); err != nil {
			return err
		}
		c.m.deltas.Inc()
		for _, d := range m.Deltas {
			if d.VM < 0 || d.VM >= len(c.states) || ran[d.VM] {
				return fmt.Errorf("%w: delta for invalid or duplicate VM %d", ErrBadMessage, d.VM)
			}
			ran[d.VM] = true
			deltas = append(deltas, d)
		}
		return nil
	}
	for _, wc := range workers {
		if !wc.alive {
			continue
		}
		if err := collect(wc); err != nil {
			return err
		}
	}

	// Reassign: while active VMs are missing a delta (their worker died
	// before delivering), restore their canonical pre-epoch states onto the
	// lowest-indexed surviving worker — its replica matches the state the
	// lost VMs were captured against — and have it re-run this epoch for
	// exactly those VMs.
	for {
		var missing []int
		for _, vm := range active {
			if !ran[vm] {
				missing = append(missing, vm)
			}
		}
		if len(missing) == 0 {
			break
		}
		var target *workerConn
		for _, wc := range workers {
			if wc.alive {
				target = wc
				break
			}
		}
		if target == nil {
			return fmt.Errorf("cluster: all workers lost at epoch %d", c.epoch)
		}
		states := make([]fuzzer.VMState, 0, len(missing))
		for _, vm := range missing {
			states = append(states, c.states[vm])
		}
		c.logf("epoch %d: reassigning VMs %v to worker %d", c.epoch, missing, target.idx)
		c.m.reassignments.Inc()
		if err := target.send(frameRestore, target.wire.AppendRestore(nil, RestoreMsg{Epoch: c.epoch, States: states})); err != nil {
			c.loseWorker(target, err)
			continue
		}
		target.vms = append(target.vms, missing...)
		if err := collect(target); err != nil {
			return err
		}
	}

	sort.Slice(deltas, func(i, j int) bool { return deltas[i].VM < deltas[j].VM })
	if err := c.merge(deltas); err != nil {
		return err
	}
	if c.ctl != nil {
		if err := c.onlineBarrier(workers); err != nil {
			return err
		}
	}
	c.m.epochs.Inc()
	if c.cfg.CheckpointEvery > 0 && c.epoch%c.cfg.CheckpointEvery == 0 {
		if err := c.writeCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// onlineBarrier runs the continual-learning schedule after the merge of
// epoch c.epoch, mirroring the single-host engine's barrier hook event for
// event: first resolve a due swap (pushing an accepted model fleet-wide),
// then kick off a due retrain from the freshly merged corpus — so the
// journal, stats and version numbering are bit-identical across engines. A
// swap that loses the gate is journaled but not pushed; the cluster skips
// the single-host engine's prediction drain in that case, which is
// unobservable because every worker blocking-drains at its next epoch start
// anyway and no model changed underneath the in-flight queries.
func (c *Coordinator) onlineBarrier(workers []*workerConn) error {
	if sw := c.ctl.SwapDue(c.epoch); sw != nil {
		if sw.Accepted {
			if err := c.pushModel(workers, sw); err != nil {
				return err
			}
			// The spec's model bytes track the serving generation, so
			// checkpoints resume onto the swapped model and late-joining
			// state (reassigned shards) materializes it.
			c.cfg.Spec.Model = sw.Bytes
			c.modelVersion = sw.Version
			c.m.modelPushes.Inc()
		}
		c.jn.Record(obs.Event{
			Kind: obs.EventModelSwap, VM: -1, Epoch: c.epoch,
			Value: sw.Version, Detail: sw.Detail(),
		})
	}
	if c.ctl.ShouldKickoff(c.epoch, c.corp.Len()) {
		entries := c.corp.Entries()
		bases := make([]*prog.Prog, len(entries))
		for i, e := range entries {
			bases[i] = e.Prog
		}
		v := c.ctl.Kickoff(c.epoch, bases)
		c.jn.Record(obs.Event{
			Kind: obs.EventModelTrain, VM: -1, Epoch: c.epoch,
			Value: v, Detail: online.KickoffDetail(len(bases)),
		})
	}
	return nil
}

// pushModel distributes an accepted swap fleet-wide in two phases: every
// surviving worker first drains its shard's in-flight predictions and
// stages the new model (prep), and only after the whole fleet has
// acknowledged the prep does the commit go out. The barrier matters when
// several workers share one serving process: no worker may swap the shared
// server while another still has undrained queries against the old
// generation. A worker lost mid-push is ordinary churn — its VMs are
// reassigned at the next barrier onto a survivor holding the committed
// model.
func (c *Coordinator) pushModel(workers []*workerConn, sw *online.Swap) error {
	phase := func(frame byte, m ModelMsg) {
		var perWire [wireMax + 1][]byte
		var sent []*workerConn
		for _, wc := range workers {
			if !wc.alive {
				continue
			}
			if perWire[wc.wire] == nil {
				perWire[wc.wire] = wc.wire.AppendModelMsg(nil, m)
			}
			if err := wc.send(frame, perWire[wc.wire]); err != nil {
				c.loseWorker(wc, err)
				continue
			}
			sent = append(sent, wc)
		}
		for _, wc := range sent {
			if !wc.alive {
				continue
			}
			if err := wc.recvAck(); err != nil {
				c.loseWorker(wc, err)
			}
		}
	}
	phase(frameModelPrep, ModelMsg{Version: sw.Version, Model: sw.Bytes})
	phase(frameModelCommit, ModelMsg{Version: sw.Version})
	for _, wc := range workers {
		if wc.alive {
			c.logf("epoch %d: model v%d (digest %s) committed fleet-wide", c.epoch, sw.Version, sw.Digest)
			return nil
		}
	}
	return fmt.Errorf("cluster: all workers lost during model push at epoch %d", c.epoch)
}

func (c *Coordinator) loseWorker(wc *workerConn, err error) {
	wc.alive = false
	wc.conn.Close()
	c.m.workers.Add(-1)
	c.logf("worker %d lost: %v", wc.idx, err)
}

// merge applies one barrier's deltas (ascending VM order) to the
// authoritative state, replaying the single-host reconciler: every local is
// sequenced, accepted entries are re-gated against the shared cover, and
// each VM's canonical state is the delta state with the coordinator-owned
// fields (Reconciled, prediction-window resolution) overridden — the worker
// cannot know who won the merge.
func (c *Coordinator) merge(deltas []fuzzer.VMDelta) error {
	winners := map[string]int{}
	newEdges := map[int]int64{}
	var accepted []fuzzer.Accepted
	for _, d := range deltas {
		for _, l := range d.Locals {
			c.seq++
			if err := validateTraces(c.k, l.Traces); err != nil {
				return err
			}
			p, err := prog.Parse(c.k.Target, l.Text)
			if err != nil {
				return fmt.Errorf("%w: unparseable program: %v", ErrBadMessage, err)
			}
			e := corpus.EntryFromTraces(p, l.Traces)
			if l.Seeded {
				if c.corp.SeedEntry(e) {
					accepted = append(accepted, fuzzer.Accepted{VM: d.VM, Seeded: true, Text: l.Text, Traces: l.Traces})
					winners[l.Text] = d.VM
				}
				continue
			}
			if n := c.corp.AddEntry(e); n > 0 {
				accepted = append(accepted, fuzzer.Accepted{VM: d.VM, Text: l.Text, Traces: l.Traces})
				winners[l.Text] = d.VM
				newEdges[d.VM] += int64(n)
			}
		}
	}
	c.m.accepted.Add(int64(len(accepted)))

	for _, d := range deltas {
		st := d.State
		st.Reconciled = c.states[st.VM].Reconciled + newEdges[st.VM]
		var preds []fuzzer.PredState
		for _, ps := range st.Preds {
			if !ps.Local {
				preds = append(preds, ps)
				continue
			}
			if w, ok := winners[ps.Text]; ok && w == st.VM {
				// The VM's own entry survived the merge; the prediction
				// window rides along (the owning shard spliced the entry
				// pointer back, so the live cache agrees).
				ps.Local = false
				preds = append(preds, ps)
				continue
			}
			// The base entry lost the merge. A pending query's reply is
			// still owed to the VM (the live worker harvests it next epoch),
			// so a restored VM must account for it: Phantom counts replies
			// to settle without a live channel.
			if ps.Pending {
				st.Phantom++
			}
		}
		st.Preds = preds
		c.states[st.VM] = st
	}

	if c.jn != nil {
		for _, d := range deltas {
			evs := d.Events
			if !c.seedFlushed && d.VM == 0 {
				evs = append(append([]obs.Event(nil), c.pendingSeed...), evs...)
				c.pendingSeed = nil
				c.seedFlushed = true
			}
			for _, e := range evs {
				c.jn.Record(e)
			}
		}
		c.jn.Record(obs.Event{
			Kind: obs.EventEpoch, VM: -1, Epoch: c.epoch,
			Value:  int64(c.corp.Len()),
			Detail: fmt.Sprintf("edges=%d", c.corp.TotalEdges()),
		})
	}

	var fleetCost int64
	for _, st := range c.states {
		fleetCost += st.Cost
	}
	if c.norm.SampleEvery > 0 {
		for c.nextSample <= fleetCost {
			c.series = append(c.series, fuzzer.Point{Cost: c.nextSample, Edges: c.corp.TotalEdges()})
			c.nextSample += c.norm.SampleEvery
		}
	}
	c.pendingAccepted = accepted
	return nil
}

// checkpoint snapshots the coordinator's complete post-merge state.
func (c *Coordinator) checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Spec:        c.cfg.Spec,
		Epoch:       c.epoch,
		Seq:         uint64(c.seq),
		NextSample:  c.nextSample,
		Series:      append([]fuzzer.Point(nil), c.series...),
		TotalEdges:  int64(c.corp.TotalEdges()),
		Cover:       c.corp.TotalCover().AppendSparse(nil),
		States:      append([]fuzzer.VMState(nil), c.states...),
		PendingSeed: append([]obs.Event(nil), c.pendingSeed...),
		SeedFlushed: c.seedFlushed,
		JournalCap:  c.jnCap,
	}
	for _, e := range c.corp.Entries() {
		ck.Entries = append(ck.Entries, fuzzer.Accepted{VM: -1, Seeded: true, Text: e.Text, Traces: e.Traces})
	}
	if c.jn != nil {
		ck.Journal = c.jn.Events()
		ck.JournalNext = c.jn.Next()
		ck.JournalDropped = c.jn.Dropped()
	}
	if c.ctl != nil {
		ck.OnlineApplied = c.ctl.Version()
		ck.OnlineModelVersion = c.modelVersion
		ck.OnlineRetrains, ck.OnlineSwaps, ck.OnlineSkips = c.ctl.Stats()
		if v, kickoff, bases, ok := c.ctl.Pending(); ok {
			ck.OnlinePendingVersion = v
			ck.OnlinePendingEpoch = kickoff
			ck.OnlinePendingBase = bases
		}
	}
	return ck
}

func (c *Coordinator) writeCheckpoint() error {
	data := c.checkpoint().Encode()
	if c.cfg.CheckpointPath != "" {
		if err := WriteCheckpointFile(c.cfg.CheckpointPath, data); err != nil {
			return fmt.Errorf("cluster: writing checkpoint: %w", err)
		}
	}
	if c.cfg.OnCheckpoint != nil {
		c.cfg.OnCheckpoint(c.epoch, data)
	}
	c.m.checkpoints.Inc()
	c.m.checkpointSize.Set(int64(len(data)))
	c.logf("epoch %d: checkpoint (%d bytes)", c.epoch, len(data))
	return nil
}

// finish drains the fleet and assembles the campaign stats exactly as the
// single-host engine's final merge does. Workers lost before the drain get
// their final states synthesized from the canonical barrier states: under
// fault-free serving, the blocking drain only settles owed prediction
// replies, which Phantom and the pending windows record.
func (c *Coordinator) finish(workers []*workerConn) (*Result, error) {
	// An in-flight retrain's swap is never applied — the campaign is over —
	// but the trainer goroutine must not outlive the run.
	if c.ctl != nil {
		c.ctl.Wait()
	}
	finals := make([]fuzzer.VMState, len(c.states))
	got := make([]bool, len(c.states))
	for _, wc := range workers {
		if !wc.alive {
			continue
		}
		if err := wc.send(frameDone, nil); err != nil {
			c.loseWorker(wc, err)
			continue
		}
	}
	for _, wc := range workers {
		if !wc.alive {
			continue
		}
		typ, payload, err := wc.recv()
		if err != nil {
			c.loseWorker(wc, err)
			continue
		}
		if typ != frameFinal {
			return nil, fmt.Errorf("%w: worker %d sent frame 0x%02x, want final", ErrBadMessage, wc.idx, typ)
		}
		m, err := wc.wire.DecodeFinal(payload)
		if err != nil {
			return nil, err
		}
		for _, st := range m.States {
			if st.VM < 0 || st.VM >= len(finals) || got[st.VM] {
				return nil, fmt.Errorf("%w: final state for invalid or duplicate VM %d", ErrBadMessage, st.VM)
			}
			finals[st.VM] = st
			got[st.VM] = true
		}
	}
	for vm := range finals {
		if !got[vm] {
			finals[vm] = synthFinal(c.states[vm])
		}
	}

	// Flush seed events never attached to a VM 0 barrier (a campaign whose
	// budget dies before VM 0's first epoch), as the single-host engine's
	// leftover flush does.
	if c.jn != nil && !c.seedFlushed {
		for _, e := range c.pendingSeed {
			c.jn.Record(e)
		}
		c.pendingSeed = nil
		c.seedFlushed = true
	}

	stats := c.assembleStats(finals)
	if c.ctl != nil {
		stats.ModelRetrains, stats.ModelSwaps, stats.ModelSwapsSkipped = c.ctl.Stats()
		stats.ModelVersion = c.modelVersion
	}
	c.jn.Record(obs.Event{
		Kind: obs.EventCampaignEnd, VM: -1, Value: int64(stats.FinalEdges),
		Detail: fmt.Sprintf("execs=%d corpus=%d", stats.Executions, stats.CorpusSize),
	})
	res := &Result{
		Stats:        stats,
		CorpusDigest: CorpusDigest(c.corp),
		CoverDigest:  CoverDigest(c.corp),
		Workers:      c.cfg.Workers,
	}
	res.Wire.Epochs = c.epoch
	for _, wc := range workers {
		res.Wire.TxRawBytes += wc.fr.txRaw
		res.Wire.TxWireBytes += wc.fr.txWire
		res.Wire.RxRawBytes += wc.fr.rxRaw
		res.Wire.RxWireBytes += wc.fr.rxWire
		if wc.fr.level > 0 {
			res.Wire.CompressedWorkers++
		}
	}
	if c.jn != nil {
		res.Events = c.jn.Events()
		res.JournalDigest = JournalDigest(res.Events)
	}
	return res, nil
}

// synthFinal replays the end-of-campaign blocking drain on a canonical
// state: every owed phantom reply and every in-flight query settles as one
// harvested prediction (the fault-free serving assumption the cluster
// determinism guarantee is scoped to).
func synthFinal(st fuzzer.VMState) fuzzer.VMState {
	st.Counters.PMMPredictions += int64(st.Phantom)
	st.Phantom = 0
	var preds []fuzzer.PredState
	for _, ps := range st.Preds {
		if ps.Pending {
			st.Counters.PMMPredictions++
			continue
		}
		preds = append(preds, ps)
	}
	st.Preds = preds
	return st
}

// assembleStats folds the final per-VM states into a campaign Stats in
// ascending VM order, mirroring the single-host mergeParallelStats. The
// serving-cache counters stay zero: each worker runs its own inference
// server, so there is no fleet-wide cache to report (a documented exclusion
// from the single-host equivalence).
func (c *Coordinator) assembleStats(finals []fuzzer.VMState) *fuzzer.Stats {
	stats := &fuzzer.Stats{Mode: c.norm.Mode}
	var fleet int64
	for vm, st := range finals {
		cnt := st.Counters
		stats.Executions += cnt.Executions
		stats.PMMQueries += cnt.PMMQueries
		stats.PMMPredictions += cnt.PMMPredictions
		stats.PMMFailed += cnt.PMMFailed
		stats.PMMShed += cnt.PMMShed
		stats.PMMInvalidSlots += cnt.PMMInvalidSlots
		stats.DegradedSteps += cnt.DegradedSteps
		y, o := &stats.Yield, cnt.Yield
		y.GuidedExecs += o.GuidedExecs
		y.GuidedEdges += o.GuidedEdges
		y.RandArgExecs += o.RandArgExecs
		y.RandArgEdges += o.RandArgEdges
		y.OtherMutExecs += o.OtherMutExecs
		y.OtherMutEdges += o.OtherMutEdges
		y.GenerateExecs += o.GenerateExecs
		y.GenerateEdges += o.GenerateEdges
		for _, cr := range st.Crashes {
			dup := false
			for _, have := range stats.Crashes {
				if have.Spec.Title == cr.Title {
					dup = true
					break
				}
			}
			if !dup {
				stats.Crashes = append(stats.Crashes, &fuzzer.CrashReport{
					Spec: &kernel.CrashSpec{
						Title:      cr.Title,
						Category:   cr.Category,
						Detector:   cr.Detector,
						KnownSince: cr.KnownSince,
						Flaky:      cr.Flaky,
					},
					ProgText: cr.ProgText,
					Cost:     cr.Cost,
				})
			}
		}
		stats.VMs = append(stats.VMs, fuzzer.VMStat{
			VM:          vm,
			Executions:  cnt.Executions,
			NewEdges:    c.states[vm].Reconciled,
			Queries:     cnt.PMMQueries,
			Epochs:      st.Epochs,
			QueueWaitNs: st.QueueWaitNs,
		})
		fleet += st.Cost
	}
	stats.CorpusSize = c.corp.Len()
	stats.FinalEdges = c.corp.TotalEdges()
	stats.Series = append([]fuzzer.Point(nil), c.series...)
	if len(stats.Series) == 0 || stats.Series[len(stats.Series)-1].Cost < fleet {
		stats.Series = append(stats.Series, fuzzer.Point{Cost: fleet, Edges: stats.FinalEdges})
	}
	return stats
}
