// Package cluster scales a fuzzing campaign across processes: one
// coordinator owns the authoritative corpus, coverage, journal and VM
// states; N workers each host a fuzzer.Shard (a subset of the campaign's
// VMs over a full corpus replica) and exchange epoch deltas over the
// length-prefixed framing shared with the inference protocol
// (internal/serve).
//
// The protocol is the single-host reconciler stretched over TCP. Every
// barrier the coordinator broadcasts the previous merge's accepted entries,
// each worker applies them to its replica and fuzzes one SyncEvery slice,
// and the coordinator merges the returned deltas in ascending VM order — so
// a W-worker cluster is bit-identical per seed to a single host running
// Config.VMs workers, for the same observables the single-host guarantee
// covers (corpus, coverage, journal, counters; wall-clock waits and serving
// cache stats excluded). Checkpoints capture the full barrier state and
// resume onto any worker count with identical subsequent output.
package cluster

import (
	"bytes"
	"fmt"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/serve"
)

// CampaignSpec is the self-contained description of a cluster campaign:
// everything a worker needs to reconstruct its fuzzer.Config locally. The
// model travels as its serialized checkpoint so each worker runs its own
// inference server — predictions depend only on the model and the query, so
// per-worker serving preserves determinism (the existing perf-knob
// invariance guarantees it).
type CampaignSpec struct {
	Mode                   uint8 // 0 = syzkaller, 1 = snowplow
	KernelVersion          string
	Seed                   uint64
	Budget                 int64
	TotalVMs               int // fleet size; equals the single-host Config.VMs
	SyncEvery              int64
	SampleEvery            int64
	FallbackProb           float64
	DegradedFallbackProb   float64
	GenerateProb           float64
	MutationsPerPrediction int
	MaxQueryTargets        int
	MaxPending             int
	MinimizeCorpus         bool
	Journal                bool
	// Online* carry the continual-learning schedule (see online.Config);
	// OnlineEnabled false means a frozen model. Campaign-semantic: the
	// schedule changes what the campaign computes, so it travels in the spec
	// and is pinned by checkpoints. The values are stored normalized.
	OnlineEnabled          bool
	OnlineEvery            int64
	OnlineLag              int64
	OnlineMinCorpus        int
	OnlineMutationsPerBase int
	OnlineTrainEpochs      int
	OnlineTrainBatch       int
	SeedProgs              []string // serialized seed corpus
	Model                  []byte   // pmm checkpoint (Snowplow mode)
}

// OnlineConfig returns the spec's continual-learning schedule, or nil when
// the campaign serves a frozen model.
func (sp CampaignSpec) OnlineConfig() *online.Config {
	if !sp.OnlineEnabled {
		return nil
	}
	return &online.Config{
		Every:            sp.OnlineEvery,
		Lag:              sp.OnlineLag,
		MinCorpus:        sp.OnlineMinCorpus,
		MutationsPerBase: sp.OnlineMutationsPerBase,
		TrainEpochs:      sp.OnlineTrainEpochs,
		TrainBatch:       sp.OnlineTrainBatch,
	}
}

// FuzzerMode converts the wire mode tag.
func (sp CampaignSpec) FuzzerMode() fuzzer.Mode {
	if sp.Mode == 1 {
		return fuzzer.ModeSnowplow
	}
	return fuzzer.ModeSyzkaller
}

// SpecFromConfig builds the wire spec from a single-host campaign config
// plus the serialized model (nil outside Snowplow mode).
func SpecFromConfig(cfg fuzzer.Config, model []byte) CampaignSpec {
	sp := CampaignSpec{
		KernelVersion:          cfg.Kernel.Version,
		Seed:                   cfg.Seed,
		Budget:                 cfg.Budget,
		TotalVMs:               cfg.VMs,
		SyncEvery:              cfg.SyncEvery,
		SampleEvery:            cfg.SampleEvery,
		FallbackProb:           cfg.FallbackProb,
		DegradedFallbackProb:   cfg.DegradedFallbackProb,
		GenerateProb:           cfg.GenerateProb,
		MutationsPerPrediction: cfg.MutationsPerPrediction,
		MaxQueryTargets:        cfg.MaxQueryTargets,
		MaxPending:             cfg.MaxPending,
		MinimizeCorpus:         cfg.MinimizeCorpus,
		Journal:                cfg.Journal != nil,
		Model:                  model,
	}
	if cfg.Mode == fuzzer.ModeSnowplow {
		sp.Mode = 1
	}
	if cfg.Online != nil {
		oc := cfg.Online.Normalized()
		sp.OnlineEnabled = true
		sp.OnlineEvery = oc.Every
		sp.OnlineLag = oc.Lag
		sp.OnlineMinCorpus = oc.MinCorpus
		sp.OnlineMutationsPerBase = oc.MutationsPerBase
		sp.OnlineTrainEpochs = oc.TrainEpochs
		sp.OnlineTrainBatch = oc.TrainBatch
	}
	for _, p := range cfg.SeedCorpus {
		sp.SeedProgs = append(sp.SeedProgs, p.Serialize())
	}
	return sp
}

// Runtime is a spec materialized into live campaign objects.
type Runtime struct {
	Kernel *kernel.Kernel
	An     *cfa.Analysis
	Server *serve.Server // non-nil only when requested in Snowplow mode
	Cfg    fuzzer.Config
}

// Materialize builds the kernel, analysis, seed corpus and — when
// needServer is set in Snowplow mode — a local inference server from the
// spec's model bytes. fused routes that server through the fused inference
// kernels; it is a per-worker serving knob (fused predictions are
// bit-identical), so heterogeneous fleets stay deterministic. Whether the
// model serves from int8 weights is pinned by the model bytes themselves
// (a mixed-precision checkpoint carries its quantization registry), never
// by a worker-local flag. The returned config's Journal is a non-recording
// sentinel when the spec journals (shard workers buffer events for the
// coordinator; they never write a journal of their own).
func (sp CampaignSpec) Materialize(needServer bool, serveWorkers int, fused bool) (*Runtime, error) {
	k, err := kernel.Build(sp.KernelVersion)
	if err != nil {
		return nil, fmt.Errorf("cluster: building kernel: %w", err)
	}
	an := cfa.New(k)
	cfg := fuzzer.Config{
		Mode:                   sp.FuzzerMode(),
		Kernel:                 k,
		An:                     an,
		Seed:                   sp.Seed,
		Budget:                 sp.Budget,
		VMs:                    sp.TotalVMs,
		SyncEvery:              sp.SyncEvery,
		SampleEvery:            sp.SampleEvery,
		FallbackProb:           sp.FallbackProb,
		DegradedFallbackProb:   sp.DegradedFallbackProb,
		GenerateProb:           sp.GenerateProb,
		MutationsPerPrediction: sp.MutationsPerPrediction,
		MaxQueryTargets:        sp.MaxQueryTargets,
		MaxPending:             sp.MaxPending,
		MinimizeCorpus:         sp.MinimizeCorpus,
		Online:                 sp.OnlineConfig(),
	}
	for _, text := range sp.SeedProgs {
		p, err := prog.Parse(k.Target, text)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad seed program: %w", err)
		}
		cfg.SeedCorpus = append(cfg.SeedCorpus, p)
	}
	rt := &Runtime{Kernel: k, An: an}
	if sp.Mode == 1 && needServer {
		m, err := pmm.Load(bytes.NewReader(sp.Model))
		if err != nil {
			return nil, fmt.Errorf("cluster: loading model: %w", err)
		}
		if serveWorkers <= 0 {
			serveWorkers = 2
		}
		// Size serving so a fault-free campaign never degrades: the whole
		// fleet's prediction window must fit the queue (a full queue is a
		// retryable failure and erodes health), and the deadline must
		// absorb slow hosts. Serving perf knobs are prediction-invariant,
		// so this changes robustness only.
		norm := cfg.Normalized()
		queue := norm.VMs*norm.MaxPending*2 + serveWorkers*8
		rt.Server = serve.NewServerOpts(m, qgraph.NewBuilder(k, an), serve.Options{
			Workers:   serveWorkers,
			QueueSize: queue,
			Deadline:  30 * time.Second,
			Fused:     fused,
		})
		cfg.Server = rt.Server
	}
	if sp.Journal {
		cfg.Journal = obs.NewJournal(1) // sentinel: enables event buffering only
	}
	rt.Cfg = cfg
	return rt, nil
}

// Close releases the runtime's server, if any.
func (rt *Runtime) Close() {
	if rt.Server != nil {
		rt.Server.Close()
	}
}

// validateTraces rejects wire traces referencing blocks outside the kernel,
// so a corrupt or hostile delta cannot poison the corpus or crash the
// coverage recomputation.
func validateTraces(k *kernel.Kernel, traces [][]kernel.BlockID) error {
	n := kernel.BlockID(k.NumBlocks())
	for _, tr := range traces {
		for _, b := range tr {
			if b < 0 || b >= n {
				return fmt.Errorf("%w: block id %d out of range [0,%d)", ErrBadMessage, b, n)
			}
		}
	}
	return nil
}
