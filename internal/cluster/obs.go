// Cluster metrics, registered into an obs.Registry when Config.Metrics is
// set. All constructors are nil-safe (a nil registry yields no-op
// instruments), matching the repo-wide observability convention.

package cluster

import "github.com/repro/snowplow/internal/obs"

type clusterMetrics struct {
	workers        *obs.Gauge
	epochs         *obs.Counter
	deltas         *obs.Counter
	accepted       *obs.Counter
	reassignments  *obs.Counter
	checkpoints    *obs.Counter
	txBytes        *obs.Counter
	rxBytes        *obs.Counter
	wireTx         *obs.Counter
	wireRx         *obs.Counter
	wireRaw        *obs.Counter
	checkpointSize *obs.Gauge
	modelPushes    *obs.Counter
}

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		workers:        reg.Gauge("cluster_workers", "workers", "connected cluster workers"),
		epochs:         reg.Counter("cluster_epochs_total", "epochs", "epoch barriers merged by the coordinator"),
		deltas:         reg.Counter("cluster_deltas_total", "messages", "worker epoch deltas received"),
		accepted:       reg.Counter("cluster_accepted_entries_total", "entries", "corpus entries accepted across all merges"),
		reassignments:  reg.Counter("cluster_reassignments_total", "shards", "VM shards reassigned after worker loss"),
		checkpoints:    reg.Counter("cluster_checkpoints_total", "checkpoints", "campaign checkpoints written"),
		txBytes:        reg.Counter("cluster_tx_bytes_total", "bytes", "protocol bytes sent by the coordinator"),
		rxBytes:        reg.Counter("cluster_rx_bytes_total", "bytes", "protocol bytes received by the coordinator"),
		wireTx:         reg.Counter("cluster_wire_tx_bytes", "bytes", "on-the-wire bytes sent (after frame compression)"),
		wireRx:         reg.Counter("cluster_wire_rx_bytes", "bytes", "on-the-wire bytes received (after frame compression)"),
		wireRaw:        reg.Counter("cluster_wire_raw_bytes", "bytes", "frame payload bytes before compression, both directions"),
		checkpointSize: reg.Gauge("cluster_checkpoint_bytes", "bytes", "size of the most recent checkpoint"),
		modelPushes:    reg.Counter("cluster_model_pushes_total", "pushes", "accepted model swaps pushed fleet-wide"),
	}
}
