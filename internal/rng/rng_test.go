package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not equal the parent's continuation.
	diverged := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split stream mirrors parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	r := New(19)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Choose(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestChoosePanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", weights)
				}
			}()
			New(1).Choose(weights)
		}()
	}
}

func TestChanceExtremes(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) returned true")
		}
		if !r.Chance(1.1) {
			t.Fatal("Chance(>1) returned false")
		}
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	r := New(29)
	seen := map[[3]int]bool{}
	for i := 0; i < 1000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d of 6 permutations", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
