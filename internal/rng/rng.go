// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every stochastic component (program generation, mutation, dataset
// sampling, model initialization, fuzzing schedules) draws from an rng.Rand
// seeded explicitly, so that experiments are reproducible bit-for-bit given
// the same seed. The generator is based on SplitMix64 state advancing and a
// xoshiro256** output scrambler, which is fast, has a 2^256-1 period, and
// splits cleanly into independent streams.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; use Split to derive independent generators for goroutines.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// used for seeding so that closely-related seeds produce unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a new generator whose stream is independent of the receiver's
// future output. The receiver's state advances.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// State exports the generator's internal state, so that a paused stream can
// be checkpointed and resumed elsewhere with FromState. Reading the state
// does not advance the stream.
func (r *Rand) State() [4]uint64 {
	return r.s
}

// FromState reconstructs a generator from a State export. The returned
// generator's future output is identical to what the exported generator
// would have produced.
func FromState(s [4]uint64) *Rand {
	return &Rand{s: s}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Chance returns true with probability p (clamped to [0, 1]).
func (r *Rand) Chance(p float64) bool {
	return r.Float64() < p
}

// OneOf returns true with probability 1/n.
func (r *Rand) OneOf(n int) bool {
	return r.Intn(n) == 0
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s in place (Fisher-Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements using the provided swap callback.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choose returns a random index weighted by the non-negative weights. The
// weights need not be normalized. It panics if weights is empty or sums to a
// non-positive value.
func (r *Rand) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
