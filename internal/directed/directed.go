// Package directed implements directed kernel fuzzing in the style of
// SyzDirect (§5.4): instead of maximizing total coverage, the fuzzer tries
// to reach one user-specified target code location, selecting seeds by
// static distance to the target and biasing mutations toward the syscalls
// and resources the target's handler needs. Snowplow-D adds PMM argument
// localization on top, querying the model with frontier blocks nearest the
// target.
package directed

import (
	"fmt"
	"sort"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/spec"
	"github.com/repro/snowplow/internal/trace"
)

// Config parameterizes a directed campaign.
type Config struct {
	Kernel *kernel.Kernel
	An     *cfa.Analysis
	Target kernel.BlockID
	Seed   uint64
	// Budget is the simulated execution cost limit.
	Budget int64
	// Server enables Snowplow-D (PMM argument localization); nil runs the
	// plain SyzDirect-style fuzzer. Any serve.Inferrer works — a dedicated
	// server or a tenant of a shared one; directed queries are tagged
	// serve.PriorityDirected either way, so on a shared server they outrank
	// background snowplow traffic.
	Server serve.Inferrer
	// FallbackProb is the random-localization probability under PMM.
	FallbackProb float64
}

// Result is the outcome of a directed campaign.
type Result struct {
	Reached bool
	// Cost is the simulated time at which the target was first covered
	// (equals the consumed budget when not reached).
	Cost       int64
	Executions int64
}

// Runner drives one directed campaign.
type Runner struct {
	cfg  Config
	r    *rng.Rand
	exe  *exec.Executor
	mut  *mutation.Mutator
	gen  *prog.Generator
	corp *corpus.Corpus
	dist []int // distance of every block to the target

	targetCall *spec.Syscall // syscall whose handler contains the target
	cost       int64
	execs      int64

	// queried tracks corpus entries already sent to PMM: each entry gets
	// one localization burst; afterwards the SyzDirect heuristics take
	// over for it. Fresh entries (usually closer to the target) trigger
	// fresh queries.
	queried map[*corpus.Entry]bool
}

// New creates a directed runner.
func New(cfg Config) *Runner {
	if cfg.FallbackProb == 0 {
		cfg.FallbackProb = 0.1
	}
	r := &Runner{
		cfg:     cfg,
		r:       rng.New(cfg.Seed),
		exe:     exec.New(cfg.Kernel),
		mut:     mutation.NewMutator(cfg.Kernel.Target),
		gen:     prog.NewGenerator(cfg.Kernel.Target),
		corp:    corpus.New(),
		dist:    cfg.An.DistancesTo(cfg.Target),
		queried: map[*corpus.Entry]bool{},
	}
	if name := cfg.An.HandlerOf(cfg.Target); name != "" {
		r.targetCall = cfg.Kernel.Target.Lookup(name)
	}
	return r
}

// Run fuzzes until the target is covered or the budget is exhausted.
func (d *Runner) Run() (*Result, error) {
	// Seed: programs invoking the target's syscall (SyzDirect derives the
	// relevant syscalls from its static analysis; our analysis gives the
	// handler directly).
	for i := 0; i < 8; i++ {
		var p *prog.Prog
		if d.targetCall != nil {
			p = d.gen.GenerateWithCalls(d.r, d.targetCall)
		} else {
			p = d.gen.Generate(d.r, 3)
		}
		reached, err := d.execute(p, true)
		if err != nil {
			return nil, err
		}
		if reached {
			return &Result{Reached: true, Cost: d.cost, Executions: d.execs}, nil
		}
	}
	for d.cost < d.cfg.Budget {
		reached, err := d.step()
		if err != nil {
			return nil, err
		}
		if reached {
			return &Result{Reached: true, Cost: d.cost, Executions: d.execs}, nil
		}
	}
	return &Result{Reached: false, Cost: d.cost, Executions: d.execs}, nil
}

func (d *Runner) step() (bool, error) {
	entry := d.chooseSeed()
	if entry == nil {
		var p *prog.Prog
		if d.targetCall != nil {
			p = d.gen.GenerateWithCalls(d.r, d.targetCall)
		} else {
			p = d.gen.Generate(d.r, 3)
		}
		return d.execute(p, true)
	}
	// Snowplow-D: PMM argument localization toward the target. Each corpus
	// entry gets one localization burst; new entries (typically closer to
	// the target) trigger fresh queries.
	if d.cfg.Server != nil && !d.queried[entry] && !d.r.Chance(d.cfg.FallbackProb) {
		d.queried[entry] = true
		targets := d.queryTargets(entry)
		if len(targets) > 0 {
			pred, err := d.cfg.Server.Infer(serve.Query{
				Prog: entry.Prog, Traces: entry.Traces, Targets: targets,
				Priority: serve.PriorityDirected,
			})
			if err == nil && len(pred.Slots) > 0 {
				slots := pred.Slots
				if len(slots) > 8 {
					slots = slots[:8]
				}
				for _, slot := range slots {
					for j := 0; j < 3; j++ {
						rec := d.mut.MutateArgs(d.r, entry.Prog, []prog.GlobalSlot{slot})
						reached, err := d.execute(rec.Prog, false)
						if reached || err != nil {
							return reached, err
						}
						if d.cost >= d.cfg.Budget {
							return false, nil
						}
					}
				}
				return false, nil
			}
		}
	}
	// SyzDirect-style mutation (also Snowplow-D's fallback).
	rec := d.mutateDirected(entry)
	return d.execute(rec.Prog, false)
}

// chooseSeed selects the corpus entry whose coverage is closest to the
// target (SyzDirect's distance-guided seed selection), with some random
// exploration.
func (d *Runner) chooseSeed() *corpus.Entry {
	entries := d.corp.Entries()
	if len(entries) == 0 {
		return nil
	}
	if d.r.Chance(0.2) {
		return entries[d.r.Intn(len(entries))]
	}
	best := entries[0]
	bestDist := cfa.MinDistance(d.dist, best.Blocks)
	for _, e := range entries[1:] {
		if dd := cfa.MinDistance(d.dist, e.Blocks); dd < bestDist {
			best, bestDist = e, dd
		}
	}
	return best
}

// mutateDirected biases mutation toward the target: argument mutation on
// the call handled by the target's handler, or insertion of calls that
// produce the resources that call consumes (SyzDirect's resource
// heuristics).
func (d *Runner) mutateDirected(entry *corpus.Entry) mutation.Record {
	p := entry.Prog
	// Find the call(s) whose handler contains the target.
	var relevant []int
	if d.targetCall != nil {
		for ci, call := range p.Calls {
			if call.Meta == d.targetCall {
				relevant = append(relevant, ci)
			}
		}
	}
	switch {
	case len(relevant) == 0 && d.targetCall != nil && d.r.Chance(0.6):
		// Insert the target call (with its resources) at the end.
		q := p.Clone()
		c := d.gen.GenerateCallAt(d.r, q, d.targetCall, len(q.Calls))
		q.InsertCall(len(q.Calls), c)
		return mutation.Record{Type: mutation.CallInsertion, Prog: q}
	case len(relevant) > 0 && d.r.Chance(0.8):
		// Argument mutation focused on a relevant call.
		ci := relevant[d.r.Intn(len(relevant))]
		slots := p.Calls[ci].Meta.Slots()
		if len(slots) > 0 {
			gs := prog.GlobalSlot{Call: ci, Slot: d.r.Intn(len(slots))}
			return d.mut.MutateArgs(d.r, p, []prog.GlobalSlot{gs})
		}
	}
	return d.mut.Mutate(d.r, p)
}

// queryTargets picks PMM query targets: the frontier blocks of the base's
// coverage nearest (by static distance) to the campaign target.
func (d *Runner) queryTargets(entry *corpus.Entry) []kernel.BlockID {
	alts := d.cfg.An.Frontier(entry.Blocks)
	type cand struct {
		b    kernel.BlockID
		dist int
	}
	var cands []cand
	seen := map[kernel.BlockID]bool{}
	for _, alt := range alts {
		if seen[alt.Entry] {
			continue
		}
		seen[alt.Entry] = true
		if dd := d.dist[alt.Entry]; dd < cfa.Unreached {
			cands = append(cands, cand{alt.Entry, dd})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].b < cands[j].b
	})
	n := 8
	if len(cands) < n {
		n = len(cands)
	}
	out := make([]kernel.BlockID, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].b
	}
	return out
}

// execute runs a program and reports whether the target was covered.
func (d *Runner) execute(p *prog.Prog, seedEntry bool) (bool, error) {
	res, err := d.exe.Run(p)
	if err != nil {
		return false, fmt.Errorf("directed: %w", err)
	}
	d.execs++
	d.cost += int64(res.Cost)
	blocks := trace.NewBlockSet(trace.BlocksOf(res))
	if blocks.Has(d.cfg.Target) {
		return true, nil
	}
	if res.Crash != nil {
		return false, nil
	}
	cover := trace.EdgesOf(res)
	if seedEntry {
		d.corp.Seed(p, cover, blocks, res.CallTraces)
	} else {
		d.corp.Add(p, cover, blocks, res.CallTraces)
	}
	return false, nil
}
