package directed

import (
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

// shallowTarget returns a block right at a handler entry (reached by merely
// invoking the syscall), like Table 5's easy targets.
func shallowTarget(name string) kernel.BlockID {
	return testKernel.Handler(name).Entry
}

// deepTarget returns a block gated behind the ATA bug's argument chain: the
// branch block one step before the crash, requiring 4 satisfied argument
// constraints to reach. plantChain appends the innermost branch first, so
// the first matching branch in handler order is the deepest.
func deepTarget(t *testing.T) kernel.BlockID {
	t.Helper()
	h := testKernel.Handler("ioctl$SCSI_IOCTL_SEND_COMMAND")
	for _, id := range h.Blocks {
		b := testKernel.Block(id)
		if b.Fn == "ata_pio_sector" && b.Kind == kernel.BlockBranch {
			return id
		}
	}
	t.Fatal("ATA chain not found")
	return 0
}

func TestReachShallowTarget(t *testing.T) {
	res, err := New(Config{
		Kernel: testKernel,
		An:     testAn,
		Target: shallowTarget("open"),
		Seed:   1,
		Budget: 100_000,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("shallow target not reached")
	}
	if res.Cost > 10_000 {
		t.Fatalf("shallow target took %d cost (expected near-immediate)", res.Cost)
	}
}

func TestReachMidTarget(t *testing.T) {
	// The resource-validity gate's success side: requires a wired scsi fd.
	h := testKernel.Handler("ioctl$SG_IO")
	var gateSucc kernel.BlockID = -1
	for _, id := range h.Blocks {
		b := testKernel.Block(id)
		if b.Kind == kernel.BlockBranch && b.Pred.Kind == kernel.PredResourceValid {
			gateSucc = b.Taken
			break
		}
	}
	if gateSucc < 0 {
		t.Skip("no validity gate on this handler")
	}
	res, err := New(Config{
		Kernel: testKernel, An: testAn, Target: gateSucc, Seed: 2, Budget: 500_000,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("gated target not reached: resource wiring heuristic broken")
	}
}

func TestUnreachableTargetExhaustsBudget(t *testing.T) {
	// A crash block of a known shallow bug in another subsystem will
	// usually be reached; instead target a block whose predicate chain is
	// contradictory: use the deep ATA chain but with a tiny budget, so the
	// run must terminate cleanly without reaching it.
	res, err := New(Config{
		Kernel: testKernel, An: testAn, Target: deepTarget(t), Seed: 3, Budget: 3_000,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Skip("deep target reached even with tiny budget (lucky seed)")
	}
	if res.Cost < 3_000 {
		t.Fatalf("budget not consumed: %d", res.Cost)
	}
}

func TestDirectedDeterministic(t *testing.T) {
	cfg := Config{Kernel: testKernel, An: testAn, Target: shallowTarget("socket"), Seed: 4, Budget: 50_000}
	a, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Reached != b.Reached || a.Cost != b.Cost || a.Executions != b.Executions {
		t.Fatalf("directed runs diverge: %+v vs %+v", a, b)
	}
}

func TestSnowplowDMode(t *testing.T) {
	m := pmm.NewModel(rng.New(5), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	srv := serve.NewServer(m, qgraph.NewBuilder(testKernel, testAn), 2)
	defer srv.Close()
	res, err := New(Config{
		Kernel: testKernel, An: testAn,
		Target: shallowTarget("mmap"),
		Seed:   6, Budget: 100_000,
		Server: srv,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("Snowplow-D did not reach shallow target")
	}
}
