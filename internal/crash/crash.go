// Package crash implements the crash-triage pipeline of §5.3.2: filtering
// ambiguous crash descriptions, checking the simulated Syzbot known-crash
// list, reproducing crashes and minimizing reproducers (syz-repro), mapping
// crashes to kernel code locations (syz-symbolize), and categorizing them
// by manifestation for Table 3.
package crash

import (
	"fmt"
	"strings"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
)

// Categories of Table 3, in the paper's row order.
var Categories = []string{
	"Null pointer dereference",
	"Paging fault",
	"Explicit assertion violation",
	"General protection fault",
	"Out of bounds access",
	"Warning",
	"Other",
}

// Categorize maps a crash description to its Table-3 manifestation class.
func Categorize(title string) string {
	switch {
	case strings.Contains(title, "null-ptr-deref"):
		return "Null pointer dereference"
	case strings.Contains(title, "unable to handle page fault"):
		return "Paging fault"
	case strings.Contains(title, "kernel BUG"):
		return "Explicit assertion violation"
	case strings.Contains(title, "general protection fault"):
		return "General protection fault"
	case strings.Contains(title, "out-of-bounds") || strings.Contains(title, "use-after-free"):
		return "Out of bounds access"
	case strings.Contains(title, "WARNING") || strings.Contains(title, "grows the stack"):
		return "Warning"
	default:
		return "Other"
	}
}

// Filtered reports whether a crash description should be excluded from
// bug counting under §5.3.2's rules (ambiguous or low-severity classes).
func Filtered(title string) bool {
	for _, kw := range []string{"INFO:", "SYZFAIL", "lost connection to the VM"} {
		if strings.Contains(title, kw) {
			return true
		}
	}
	return false
}

// Triage triages crashes found on one kernel.
type Triage struct {
	K *kernel.Kernel
	// Known is the simulated Syzbot list: crash titles reported since 2018.
	Known map[string]bool
	// ReproAttempts is how many replays syz-repro performs (flaky crashes
	// may fail to re-manifest).
	ReproAttempts int
}

// NewTriage builds the triage context, deriving the known list from the
// kernel's planted bugs.
func NewTriage(k *kernel.Kernel) *Triage {
	known := map[string]bool{}
	for _, bug := range k.Bugs() {
		if bug.KnownSince != "" {
			known[bug.Title] = true
		}
	}
	return &Triage{K: k, Known: known, ReproAttempts: 3}
}

// IsKnown reports whether the crash title is on the simulated Syzbot list.
func (t *Triage) IsKnown(title string) bool { return t.Known[title] }

// AddKnown extends the known list with crashes found by a prior fuzzing
// campaign — the Syzbot process itself: anything Syzkaller has ever found
// on these kernels is on the public list (§5.3.2 fetches "all kernel
// crashes found by Syzbot since 2018").
func (t *Triage) AddKnown(titles []string) {
	for _, title := range titles {
		if !Filtered(title) {
			t.Known[title] = true
		}
	}
}

// Reproduce implements syz-repro: replay the crashing program, confirm the
// same crash re-manifests, then minimize the reproducer by removing calls
// while the crash persists. It returns the minimized reproducer, or nil if
// the crash did not reproduce.
func (t *Triage) Reproduce(title, progText string) (*prog.Prog, error) {
	p, err := prog.Parse(t.K.Target, progText)
	if err != nil {
		return nil, fmt.Errorf("crash: bad crashing program: %w", err)
	}
	exe := exec.New(t.K)
	if !t.crashes(exe, p, title) {
		return nil, nil
	}
	// Minimize: repeatedly try dropping calls (later calls first so
	// resource producers survive until their consumers go).
	minimized := p.Clone()
	for i := len(minimized.Calls) - 1; i >= 0; i-- {
		if len(minimized.Calls) == 1 {
			break
		}
		candidate := minimized.Clone()
		candidate.RemoveCall(i)
		if t.crashes(exe, candidate, title) {
			minimized = candidate
		}
	}
	return minimized, nil
}

// crashes replays p up to ReproAttempts times looking for the same crash.
func (t *Triage) crashes(exe *exec.Executor, p *prog.Prog, title string) bool {
	for i := 0; i < t.ReproAttempts; i++ {
		res, err := exe.Run(p)
		if err != nil {
			return false
		}
		if res.Crash != nil && res.Crash.Title == title {
			return true
		}
	}
	return false
}

// Location is a symbolized crash site.
type Location struct {
	Fn        string // crashing function, e.g. "ata_pio_sector"
	Subsystem string // kernel subsystem, e.g. "scsi"
	Path      string // source-tree style path, e.g. "drivers/ata/"
}

// Symbolize implements syz-symbolize: map a crash title to the kernel code
// location of its crash block.
func (t *Triage) Symbolize(title string) (Location, bool) {
	for i := range t.K.Blocks {
		b := &t.K.Blocks[i]
		if b.Kind == kernel.BlockCrash && b.Crash != nil && b.Crash.Title == title {
			return Location{Fn: b.Fn, Subsystem: b.Subsystem, Path: subsystemPath(b.Subsystem, b.Fn)}, true
		}
	}
	return Location{}, false
}

// subsystemPath renders a plausible source path for a subsystem.
func subsystemPath(sub, fn string) string {
	switch sub {
	case "fs":
		if strings.HasPrefix(fn, "ext4_") {
			return "fs/ext4/"
		}
		return "fs/"
	case "mm":
		return "mm/"
	case "net":
		return "net/"
	case "scsi":
		if strings.HasPrefix(fn, "ata_") {
			return "drivers/ata/"
		}
		return "drivers/scsi/"
	case "time":
		return "kernel/"
	case "ipc":
		return "ipc/"
	case "io_uring":
		if strings.HasPrefix(fn, "native_") {
			return "arch/x86/kernel/"
		}
		return "io_uring/"
	case "core":
		return "kernel/"
	default:
		return "drivers/" + sub + "/"
	}
}

// Summary classifies a set of crash titles for Table 2.
type Summary struct {
	New      []string
	KnownOld []string
	Filtered []string
}

// Classify partitions crash titles into the Table-2 buckets, deduplicated.
func (t *Triage) Classify(titles []string) Summary {
	var s Summary
	seen := map[string]bool{}
	for _, title := range titles {
		if seen[title] {
			continue
		}
		seen[title] = true
		switch {
		case Filtered(title):
			s.Filtered = append(s.Filtered, title)
		case t.IsKnown(title):
			s.KnownOld = append(s.KnownOld, title)
		default:
			s.New = append(s.New, title)
		}
	}
	return s
}

// CategoryCount is a Table-3 row: a manifestation category with
// reproducible and non-reproducible crash counts.
type CategoryCount struct {
	Category  string
	WithRepro int
	NoRepro   int
}

// Tabulate produces the Table-3 categorization for crashes with their
// reproduction outcome.
func Tabulate(crashTitles map[string]bool /* title -> has reproducer */) []CategoryCount {
	idx := map[string]int{}
	rows := make([]CategoryCount, len(Categories))
	for i, c := range Categories {
		rows[i] = CategoryCount{Category: c}
		idx[c] = i
	}
	for title, hasRepro := range crashTitles {
		i := idx[Categorize(title)]
		if hasRepro {
			rows[i].WithRepro++
		} else {
			rows[i].NoRepro++
		}
	}
	return rows
}
