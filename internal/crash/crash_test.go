package crash

import (
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
)

var testKernel = kernel.MustBuild("6.8")

const ataCrashProg = "r0 = open(\"./file0\", 0x0, 0x0)\n" +
	"r1 = openat$scsi(r0, \"./sg0\", 0x2, 0x0)\n" +
	"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n"

const ataTitle = "KASAN: out-of-bounds Write in ata_pio_sector"

func TestCategorize(t *testing.T) {
	cases := map[string]string{
		"KASAN: null-ptr-deref Read in foo":                  "Null pointer dereference",
		"BUG: unable to handle page fault for address in x":  "Paging fault",
		"kernel BUG in ext4_do_writepages":                   "Explicit assertion violation",
		"general protection fault in bar":                    "General protection fault",
		"KASAN: out-of-bounds Write in ata_pio_sector":       "Out of bounds access",
		"KASAN: slab-use-after-free Read in ext4_search_dir": "Out of bounds access",
		"WARNING in ext4_iomap_begin":                        "Warning",
		"GUP (Get User Pages) no longer grows the stack":     "Warning",
		"RCU stall in __sanitizer_cov_trace_pc":              "Other",
	}
	for title, want := range cases {
		if got := Categorize(title); got != want {
			t.Fatalf("Categorize(%q) = %q, want %q", title, got, want)
		}
	}
}

func TestCategorizeConsistentWithPlantedBugs(t *testing.T) {
	for _, bug := range testKernel.Bugs() {
		if got := Categorize(bug.Title); got != bug.Category {
			t.Fatalf("planted bug %q: Categorize says %q, spec says %q", bug.Title, got, bug.Category)
		}
	}
}

func TestFiltered(t *testing.T) {
	for _, title := range []string{
		"INFO: task hung in foo",
		"SYZFAIL: something",
		"lost connection to the VM",
	} {
		if !Filtered(title) {
			t.Fatalf("%q not filtered", title)
		}
	}
	if Filtered(ataTitle) {
		t.Fatal("real crash filtered")
	}
}

func TestKnownListFromKernel(t *testing.T) {
	tr := NewTriage(testKernel)
	if len(tr.Known) < 30 {
		t.Fatalf("known list has %d entries", len(tr.Known))
	}
	if !tr.IsKnown("WARNING in generic_file_read_iter") {
		t.Fatal("planted known bug not on list")
	}
	if tr.IsKnown(ataTitle) {
		t.Fatal("new bug marked known")
	}
}

func TestReproduceAndMinimize(t *testing.T) {
	tr := NewTriage(testKernel)
	repro, err := tr.Reproduce(ataTitle, ataCrashProg)
	if err != nil {
		t.Fatal(err)
	}
	if repro == nil {
		t.Fatal("deterministic crash did not reproduce")
	}
	// Minimization must keep the crash and not grow the program.
	if len(repro.Calls) > 3 {
		t.Fatalf("minimized reproducer has %d calls", len(repro.Calls))
	}
	res, err := exec.New(testKernel).Run(repro)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crash == nil || res.Crash.Title != ataTitle {
		t.Fatalf("minimized reproducer does not crash: %s", repro.Serialize())
	}
	// The ioctl call must survive minimization.
	if !strings.Contains(repro.Serialize(), "ioctl$SCSI_IOCTL_SEND_COMMAND") {
		t.Fatalf("minimization removed the crashing call:\n%s", repro.Serialize())
	}
}

func TestReproduceFailsForNonCrashing(t *testing.T) {
	tr := NewTriage(testKernel)
	repro, err := tr.Reproduce(ataTitle, "r0 = open(\"./file0\", 0x0, 0x0)\n")
	if err != nil {
		t.Fatal(err)
	}
	if repro != nil {
		t.Fatal("non-crashing program 'reproduced'")
	}
}

func TestReproduceRejectsBadProgram(t *testing.T) {
	tr := NewTriage(testKernel)
	if _, err := tr.Reproduce(ataTitle, "nonsense(\n"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSymbolize(t *testing.T) {
	tr := NewTriage(testKernel)
	loc, ok := tr.Symbolize(ataTitle)
	if !ok {
		t.Fatal("ATA crash not symbolized")
	}
	if loc.Fn != "ata_pio_sector" {
		t.Fatalf("Fn = %q", loc.Fn)
	}
	if loc.Path != "drivers/ata/" {
		t.Fatalf("Path = %q", loc.Path)
	}
	loc, ok = tr.Symbolize("kernel BUG in ext4_do_writepages")
	if !ok || loc.Path != "fs/ext4/" {
		t.Fatalf("ext4 bug symbolized to %+v (ok=%v)", loc, ok)
	}
	if _, ok := tr.Symbolize("no such crash"); ok {
		t.Fatal("unknown crash symbolized")
	}
}

func TestClassify(t *testing.T) {
	tr := NewTriage(testKernel)
	titles := []string{
		ataTitle,
		ataTitle,                            // duplicate — must count once
		"WARNING in generic_file_read_iter", // known
		"INFO: task hung in foo",            // filtered
		"totally novel crash in qux",
	}
	s := tr.Classify(titles)
	if len(s.New) != 2 {
		t.Fatalf("new = %v", s.New)
	}
	if len(s.KnownOld) != 1 {
		t.Fatalf("known = %v", s.KnownOld)
	}
	if len(s.Filtered) != 1 {
		t.Fatalf("filtered = %v", s.Filtered)
	}
}

func TestTabulate(t *testing.T) {
	rows := Tabulate(map[string]bool{
		"general protection fault in a": true,
		"general protection fault in b": false,
		"WARNING in c":                  true,
	})
	byCat := map[string]CategoryCount{}
	total := 0
	for _, r := range rows {
		byCat[r.Category] = r
		total += r.WithRepro + r.NoRepro
	}
	if total != 3 {
		t.Fatalf("tabulated %d crashes", total)
	}
	gpf := byCat["General protection fault"]
	if gpf.WithRepro != 1 || gpf.NoRepro != 1 {
		t.Fatalf("GPF row %+v", gpf)
	}
	if byCat["Warning"].WithRepro != 1 {
		t.Fatalf("Warning row %+v", byCat["Warning"])
	}
}

func TestMinimizePreservesResources(t *testing.T) {
	// The reproducer's resource chain (open -> openat$scsi -> ioctl) cannot
	// shrink below the producing calls: validate the minimized program.
	tr := NewTriage(testKernel)
	repro, err := tr.Reproduce(ataTitle, ataCrashProg)
	if err != nil || repro == nil {
		t.Fatal("no reproducer")
	}
	if err := repro.Validate(); err != nil {
		t.Fatalf("minimized reproducer invalid: %v", err)
	}
}

func TestReproduceCounterBug(t *testing.T) {
	// The counter-gated writepages bug needs its fsync pressure preserved.
	text := "r0 = open(\"./file0\", 0x0, 0x0)\n"
	for i := 0; i < 14; i++ {
		text += "fsync(r0)\n"
	}
	tr := NewTriage(testKernel)
	repro, err := tr.Reproduce("kernel BUG in ext4_do_writepages", text)
	if err != nil {
		t.Fatal(err)
	}
	if repro == nil {
		t.Fatal("counter bug did not reproduce")
	}
	// Minimization may remove some fsyncs but must keep enough pressure.
	res, err := exec.New(testKernel).Run(repro)
	if err != nil || res.Crash == nil {
		t.Fatalf("minimized counter reproducer does not crash:\n%s", repro.Serialize())
	}
}

func TestBuildReport(t *testing.T) {
	tr := NewTriage(testKernel)
	rep, err := tr.BuildReport(ataTitle, ataCrashProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Title != ataTitle || rep.Detector != "KASAN" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.CallTrace) == 0 {
		t.Fatal("empty call trace")
	}
	// Innermost frame is the crashing function.
	if rep.CallTrace[0].Fn != "ata_pio_sector" {
		t.Fatalf("innermost frame %q", rep.CallTrace[0].Fn)
	}
	if rep.Repro == "" {
		t.Fatal("deterministic crash lost its reproducer")
	}
	text := rep.Render()
	for _, want := range []string{"Call Trace:", "ata_pio_sector+0x", "drivers/ata/", "syz reproducer:", "ioctl$SCSI_IOCTL_SEND_COMMAND"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

func TestBuildReportRejectsNonCrashing(t *testing.T) {
	tr := NewTriage(testKernel)
	if _, err := tr.BuildReport(ataTitle, "r0 = open(\"./file0\", 0x0, 0x0)\n"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildReportKnownFlag(t *testing.T) {
	tr := NewTriage(testKernel)
	// Trigger a known shallow bug: read with a big buffer.
	text := "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, &b\"" + strings.Repeat("ab", 4090) + "\", 0x1ffa)\n"
	res, err := exec.New(testKernel).Run(progMust(t, text))
	if err != nil || res.Crash == nil {
		t.Skipf("fixture did not crash (err=%v)", err)
	}
	rep, err := tr.BuildReport(res.Crash.Title, text)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Known {
		t.Fatalf("known bug %q not flagged", res.Crash.Title)
	}
	if !strings.Contains(rep.Render(), "already reported") {
		t.Fatal("render missing known-status line")
	}
}

func progMust(t *testing.T, text string) *prog.Prog {
	t.Helper()
	p, err := prog.Parse(testKernel.Target, text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddKnown(t *testing.T) {
	tr := NewTriage(testKernel)
	if tr.IsKnown("brand new crash in zz") {
		t.Fatal("unknown title already known")
	}
	tr.AddKnown([]string{"brand new crash in zz", "INFO: should be filtered"})
	if !tr.IsKnown("brand new crash in zz") {
		t.Fatal("AddKnown did not register title")
	}
	if tr.IsKnown("INFO: should be filtered") {
		t.Fatal("filtered title added to known list")
	}
}
