package crash

import (
	"fmt"
	"strings"

	"github.com/repro/snowplow/internal/exec"

	"github.com/repro/snowplow/internal/prog"
)

// Report is a rendered, Syzbot-style crash report: description line,
// detector detail, reconstructed call trace, and the reproducer.
type Report struct {
	Title     string
	Detector  string
	Category  string
	CallTrace []Frame
	Repro     string // serialized reproducer ("" if none)
	Known     bool
}

// Frame is one call-trace entry.
type Frame struct {
	Fn   string
	Path string
}

// BuildReport re-executes the crashing program, reconstructs the kernel
// call trace from the executed blocks of the crashing call (innermost
// frame first), and assembles the report. It returns an error if the
// program does not crash with the given title within the triage's
// reproduction attempts.
func (t *Triage) BuildReport(title, progText string) (*Report, error) {
	p, err := prog.Parse(t.K.Target, progText)
	if err != nil {
		return nil, fmt.Errorf("crash: report program: %w", err)
	}
	exe := exec.New(t.K)
	var res *exec.Result
	for i := 0; i < t.ReproAttempts; i++ {
		r, err := exe.Run(p)
		if err != nil {
			return nil, err
		}
		if r.Crash != nil && r.Crash.Title == title {
			res = r
			break
		}
	}
	if res == nil {
		return nil, fmt.Errorf("crash: %q did not re-manifest", title)
	}
	rep := &Report{
		Title:    title,
		Detector: res.Crash.Detector,
		Category: Categorize(title),
		Known:    t.IsKnown(title),
	}
	// The crashing call's trace, innermost function first, consecutive
	// duplicates collapsed — the shape of a real kernel backtrace.
	tr := res.CallTraces[res.CrashCall]
	var frames []Frame
	lastFn := ""
	for i := len(tr) - 1; i >= 0; i-- {
		b := t.K.Block(tr[i])
		if b.Fn == lastFn {
			continue
		}
		lastFn = b.Fn
		frames = append(frames, Frame{Fn: b.Fn, Path: subsystemPath(b.Subsystem, b.Fn)})
		if len(frames) >= 12 {
			break
		}
	}
	rep.CallTrace = frames
	if repro, err := t.Reproduce(title, progText); err == nil && repro != nil {
		rep.Repro = repro.Serialize()
	}
	return rep, nil
}

// Render formats the report in the familiar kernel-oops style.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	if r.Detector != "" {
		fmt.Fprintf(&b, "detected by: %s\n", r.Detector)
	}
	fmt.Fprintf(&b, "category: %s\n", r.Category)
	fmt.Fprintf(&b, "CPU: 0 PID: 4242 Comm: syz-executor Not tainted\n")
	b.WriteString("Call Trace:\n")
	for i, f := range r.CallTrace {
		fmt.Fprintf(&b, " %s+0x%x/0x%x %s\n", f.Fn, 0x40+i*0x1c, 0x200, f.Path)
	}
	b.WriteString(" entry_SYSCALL_64_after_hwframe+0x44/0xae\n")
	if r.Known {
		b.WriteString("status: already reported to syzbot\n")
	}
	if r.Repro != "" {
		b.WriteString("\nsyz reproducer:\n")
		b.WriteString(r.Repro)
	} else {
		b.WriteString("\nno reproducer (crash did not re-manifest reliably)\n")
	}
	return b.String()
}
