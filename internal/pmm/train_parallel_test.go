package pmm

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/obs"
)

// trainAtWorkers trains a fresh model on a small split with the given
// data-parallel width and returns the serialized checkpoint plus report.
func trainAtWorkers(t testing.TB, workers int) ([]byte, TrainReport) {
	t.Helper()
	ds := smallDataset(t, 12, 80, 4242)
	train, val, _ := ds.Split(0.7, 0.2)
	tcfg := DefaultTrainConfig()
	tcfg.Epochs = 2
	tcfg.Batch = 8
	tcfg.Workers = workers
	m, report := Train(testBuilder, DefaultConfig(), tcfg, train, val)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes(), report
}

// TestTrainWorkersBitIdentical is the tentpole guarantee: the data-parallel
// trainer must produce byte-identical checkpoints and identical reports at
// any worker count, because per-example gradients are computed on isolated
// replicas and reduced in example order. Run under -race this also
// exercises the worker pool for data races.
func TestTrainWorkersBitIdentical(t *testing.T) {
	ckpt1, report1 := trainAtWorkers(t, 1)
	ckpt4, report4 := trainAtWorkers(t, 4)
	if !reflect.DeepEqual(report1, report4) {
		t.Fatalf("TrainReport differs between 1 and 4 workers:\n  w1: %+v\n  w4: %+v", report1, report4)
	}
	if !bytes.Equal(ckpt1, ckpt4) {
		t.Fatalf("checkpoints differ between 1 and 4 workers (%d vs %d bytes)", len(ckpt1), len(ckpt4))
	}
}

// TestBatchOneMatchesSeedLoop pins the compatibility contract: Batch and
// Workers unset (the default config) must reproduce the original
// per-example trainer exactly — same checkpoint, same report — as Batch=1,
// Workers=1 spelled explicitly.
func TestBatchOneMatchesSeedLoop(t *testing.T) {
	ds := smallDataset(t, 12, 80, 4242)
	train, val, _ := ds.Split(0.7, 0.2)
	run := func(batch, workers int) ([]byte, TrainReport) {
		tcfg := DefaultTrainConfig()
		tcfg.Epochs = 2
		tcfg.Batch = batch
		tcfg.Workers = workers
		m, report := Train(testBuilder, DefaultConfig(), tcfg, train, val)
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.Bytes(), report
	}
	ckptDefault, reportDefault := run(0, 0)
	ckptExplicit, reportExplicit := run(1, 1)
	if !reflect.DeepEqual(reportDefault, reportExplicit) {
		t.Fatalf("default-config report differs from explicit batch=1/workers=1:\n  default: %+v\n  explicit: %+v", reportDefault, reportExplicit)
	}
	if !bytes.Equal(ckptDefault, ckptExplicit) {
		t.Fatalf("default-config checkpoint differs from explicit batch=1/workers=1")
	}
}

// TestSearchHyperparamsSortedStable checks the search returns results in
// descending validation F1 regardless of concurrency, and that every
// candidate kept its own seed offset.
func TestSearchHyperparamsSortedStable(t *testing.T) {
	ds := smallDataset(t, 8, 60, 777)
	train, val, _ := ds.Split(0.7, 0.2)
	candidates := []Config{DefaultConfig(), DefaultConfig(), DefaultConfig()}
	candidates[1].Dim = 16
	candidates[2].Layers = 1
	tcfg := DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Workers = 3
	results := SearchHyperparams(testBuilder, candidates, tcfg, train, val)
	if len(results) != len(candidates) {
		t.Fatalf("got %d results, want %d", len(results), len(candidates))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].ValF1 < results[i].ValF1 {
			t.Fatalf("results not sorted best-first: F1[%d]=%v < F1[%d]=%v", i-1, results[i-1].ValF1, i, results[i].ValF1)
		}
	}
	seeds := map[uint64]bool{}
	for _, r := range results {
		seeds[r.Train.Seed] = true
	}
	if len(seeds) != len(candidates) {
		t.Fatalf("candidates did not keep distinct seeds: %v", seeds)
	}
}

// TestTrainInstruments checks the train_* metrics fire when a registry is
// attached and stay silent (no panic) when it is nil.
func TestTrainInstruments(t *testing.T) {
	ds := smallDataset(t, 8, 60, 901)
	train, val, _ := ds.Split(0.7, 0.2)
	reg := obs.NewRegistry()
	tcfg := DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Batch = 4
	tcfg.Workers = 2
	tcfg.Metrics = reg
	Train(testBuilder, DefaultConfig(), tcfg, train, val)
	vals := reg.Values()
	if vals["train_epochs_total"] != 1 {
		t.Fatalf("train_epochs_total = %d, want 1", vals["train_epochs_total"])
	}
	if vals["train_examples_total"] == 0 {
		t.Fatalf("train_examples_total not incremented")
	}
	if vals["train_minibatches_total"] == 0 {
		t.Fatalf("train_minibatches_total not incremented")
	}
}

// BenchmarkTrainEpoch measures one supervised epoch over a pre-compiled
// split; -train-workers scaling for BENCH_train.json derives from this
// loop shape (see internal/experiments/train.go).
func BenchmarkTrainEpoch(b *testing.B) {
	ds := smallDataset(b, 12, 120, 6001)
	train, val, _ := ds.Split(0.8, 0.1)
	tcfg := DefaultTrainConfig()
	tcfg.Batch = 8
	tcfg.Workers = 4
	tcfg.Epochs = 1
	ctrain := CompileDataset(testBuilder, train, tcfg.PosWeight)
	cval := CompileDataset(testBuilder, val, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainCompiled(testBuilder, DefaultConfig(), tcfg, ctrain, cval)
	}
}
