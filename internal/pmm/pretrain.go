package pmm

import (
	"io"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/rng"
)

// PretrainConfig controls the masked-token pretraining of the assembly
// encoder, mirroring (at laptop scale) the paper's BERT-recipe pretraining
// of its Transformer on all x86 assembly of a compiled kernel (§3.3).
type PretrainConfig struct {
	Epochs    int
	LR        float64
	MaskProb  float64 // fraction of tokens masked per block (BERT uses 0.15)
	BatchSize int     // blocks per reported step (steps are per-block)
	Seed      uint64
	// MaxBlocks caps the pretraining corpus (0 = all kernel blocks).
	MaxBlocks int
	// Log receives progress lines (nil discards).
	Log io.Writer
}

// DefaultPretrainConfig returns the settings used by the experiments.
func DefaultPretrainConfig() PretrainConfig {
	return PretrainConfig{Epochs: 2, LR: 3e-3, MaskProb: 0.15, Seed: 1, MaxBlocks: 4000}
}

// PretrainReport summarizes a pretraining run.
type PretrainReport struct {
	EpochLoss []float64
	// Accuracy is the final masked-token top-1 reconstruction accuracy.
	Accuracy float64
}

// Pretrain runs masked-token modeling over the kernel's basic blocks,
// updating the model's token embedding and attention encoder in place. The
// classification head used for reconstruction ties its weights to the token
// embedding (standard masked-LM practice), so no extra parameters survive
// pretraining.
func Pretrain(m *Model, k *kernel.Kernel, cfg PretrainConfig) PretrainReport {
	r := rng.New(cfg.Seed + 0x8e47)
	var blocks [][]int
	for _, i := range r.Perm(k.NumBlocks()) {
		if cfg.MaxBlocks > 0 && len(blocks) >= cfg.MaxBlocks {
			break
		}
		toks := k.Blocks[i].Tokens
		if len(toks) < 2 {
			continue
		}
		blocks = append(blocks, m.Vocab.Encode(toks))
	}
	params := append(m.tokEmb.Params(), m.tokAttn.Params()...)
	opt := nn.NewAdam(params, cfg.LR)
	var report PretrainReport
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(len(blocks))
		var total float64
		n := 0
		for _, bi := range perm {
			ids := blocks[bi]
			if len(ids) < 2 {
				continue
			}
			loss := m.maskedStep(r, ids, cfg.MaskProb, opt)
			total += loss
			n++
		}
		if n > 0 {
			report.EpochLoss = append(report.EpochLoss, total/float64(n))
		}
	}
	report.Accuracy = m.maskedAccuracy(rng.New(cfg.Seed+0xacc), blocks, cfg.MaskProb)
	return report
}

// maskedStep runs one masked-prediction step on a single block.
func (m *Model) maskedStep(r *rng.Rand, ids []int, maskProb float64, opt *nn.Adam) float64 {
	masked, positions, labels := maskTokens(r, ids, maskProb, m.Vocab.Size())
	if len(positions) == 0 {
		return 0
	}
	opt.ZeroGrad()
	emb := m.tokEmb.Forward(masked)
	enc := m.tokAttn.Forward(emb)
	// Tied-weight reconstruction: logits = enc[positions] x tokEmbᵀ.
	sel := nn.Gather(enc, positions)
	logits := nn.MatMul(sel, nn.Transpose(m.tokEmb.Table))
	loss := nn.CrossEntropyRows(logits, labels)
	loss.Backward()
	nn.ClipGradNorm(append(m.tokEmb.Params(), m.tokAttn.Params()...), 1)
	opt.Step()
	return loss.Item()
}

// maskedAccuracy measures top-1 reconstruction accuracy without updates.
func (m *Model) maskedAccuracy(r *rng.Rand, blocks [][]int, maskProb float64) float64 {
	correct, total := 0, 0
	for bi, ids := range blocks {
		if bi >= 200 {
			break
		}
		masked, positions, labels := maskTokens(r, ids, maskProb, m.Vocab.Size())
		if len(positions) == 0 {
			continue
		}
		enc := m.tokAttn.Forward(m.tokEmb.Forward(masked))
		sel := nn.Gather(enc, positions)
		logits := nn.MatMul(sel, nn.Transpose(m.tokEmb.Table))
		for i := range positions {
			row := logits.Row(i)
			best := 0
			for j := 1; j < len(row); j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if best == labels[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// maskTokens replaces ~maskProb of the tokens with UnkID (the mask token)
// and returns the masked sequence, masked positions and original labels.
func maskTokens(r *rng.Rand, ids []int, maskProb float64, vocabSize int) (masked []int, positions, labels []int) {
	masked = append([]int(nil), ids...)
	for i, id := range ids {
		if id == UnkID || !r.Chance(maskProb) {
			continue
		}
		positions = append(positions, i)
		labels = append(labels, id)
		switch {
		case r.Chance(0.8):
			masked[i] = UnkID // [MASK]
		case r.Chance(0.5):
			masked[i] = r.Intn(vocabSize) // random token
		default:
			// keep original (BERT's 10% identity case)
		}
	}
	return masked, positions, labels
}
