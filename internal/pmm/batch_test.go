package pmm

import (
	"testing"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// batchGraphs builds a handful of distinct query graphs for batching tests.
func batchGraphs(t testing.TB, n int, seed uint64) []*qgraph.Graph {
	t.Helper()
	ds := smallDataset(t, 4, 60, seed)
	if ds.Len() < n {
		t.Skipf("only %d examples", ds.Len())
	}
	gs := make([]*qgraph.Graph, n)
	for i := 0; i < n; i++ {
		ex := ds.Examples[i]
		gs[i] = testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	}
	return gs
}

// TestPredictBatchMatchesPredict is the union-graph determinism test: a
// batched forward must return, for every member graph, exactly the slots
// and bit-identical probabilities of a standalone Predict call.
func TestPredictBatchMatchesPredict(t *testing.T) {
	gs := batchGraphs(t, 6, 300)
	m := NewModel(rng.New(3), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	batchSlots, batchProbs := m.PredictBatch(gs)
	for i, g := range gs {
		slots, probs := m.Predict(g)
		if len(batchSlots[i]) != len(slots) {
			t.Fatalf("graph %d: batch picked %d slots, single %d", i, len(batchSlots[i]), len(slots))
		}
		for j := range slots {
			if batchSlots[i][j] != slots[j] {
				t.Fatalf("graph %d slot %d: batch %+v vs single %+v", i, j, batchSlots[i][j], slots[j])
			}
		}
		for j := range probs {
			if batchProbs[i][j] != probs[j] {
				t.Fatalf("graph %d prob %d: batch %v vs single %v (not bit-identical)", i, j, batchProbs[i][j], probs[j])
			}
		}
	}
}

// TestPredictFrozenMatchesTrainPath verifies the pooled inference path
// against the autodiff path: freezing the model must not change a single
// bit of any prediction, across repeated passes over warm pool memory.
func TestPredictFrozenMatchesTrainPath(t *testing.T) {
	gs := batchGraphs(t, 3, 400)
	m := NewModel(rng.New(4), DefaultConfig(), BuildVocab(testKernel))
	type result struct {
		probs []float64
	}
	var trained []result
	for _, g := range gs {
		_, probs := m.Predict(g) // params require grad: TrainOps path
		trained = append(trained, result{probs})
	}
	m.Freeze()
	for pass := 0; pass < 2; pass++ {
		for i, g := range gs {
			_, probs := m.Predict(g) // frozen: pooled Infer path
			for j := range probs {
				if probs[j] != trained[i].probs[j] {
					t.Fatalf("pass %d graph %d prob %d: frozen %v vs train %v", pass, i, j, probs[j], trained[i].probs[j])
				}
			}
		}
	}
}

// TestPredictBatchHandlesDegenerateMembers checks nil and argument-less
// graphs inside a batch: they yield nil results without disturbing their
// neighbors.
func TestPredictBatchHandlesDegenerateMembers(t *testing.T) {
	gs := batchGraphs(t, 2, 500)
	m := NewModel(rng.New(5), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	empty := &qgraph.Graph{}
	slots, probs := m.PredictBatch([]*qgraph.Graph{gs[0], nil, empty, gs[1]})
	if slots[1] != nil || slots[2] != nil || probs[1] != nil || probs[2] != nil {
		t.Fatal("degenerate members produced predictions")
	}
	for _, i := range []int{0, 3} {
		g := gs[0]
		if i == 3 {
			g = gs[1]
		}
		wantSlots, wantProbs := m.Predict(g)
		if len(slots[i]) != len(wantSlots) || len(probs[i]) != len(wantProbs) {
			t.Fatalf("member %d disturbed by degenerate neighbors", i)
		}
		for j := range wantProbs {
			if probs[i][j] != wantProbs[j] {
				t.Fatalf("member %d prob %d differs", i, j)
			}
		}
	}
}

// TestPredictBatchWorkerInvariant ties the whole inference stack together:
// batched, pooled, frozen predictions must be bit-identical whatever the
// MatMul worker count.
func TestPredictBatchWorkerInvariant(t *testing.T) {
	defer nn.SetWorkers(1)
	gs := batchGraphs(t, 4, 600)
	m := NewModel(rng.New(6), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	nn.SetWorkers(1)
	_, want := m.PredictBatch(gs)
	nn.SetWorkers(4)
	_, got := m.PredictBatch(gs)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("graph %d prob %d: workers=4 %v vs workers=1 %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
