package pmm

import (
	"testing"

	"github.com/repro/snowplow/internal/rng"
)

func TestMaskTokens(t *testing.T) {
	r := rng.New(1)
	ids := []int{3, 7, 2, 9, 4, 8, 5, 6, 1, 10}
	totalMasked := 0
	for i := 0; i < 200; i++ {
		masked, positions, labels := maskTokens(r, ids, 0.3, 100)
		if len(masked) != len(ids) {
			t.Fatal("masking changed length")
		}
		if len(positions) != len(labels) {
			t.Fatal("positions/labels mismatch")
		}
		for j, pos := range positions {
			if labels[j] != ids[pos] {
				t.Fatalf("label %d != original token", j)
			}
		}
		// Unmasked positions must be untouched.
		maskedSet := map[int]bool{}
		for _, pos := range positions {
			maskedSet[pos] = true
		}
		for j, id := range masked {
			if !maskedSet[j] && id != ids[j] {
				t.Fatalf("unmasked position %d changed", j)
			}
		}
		totalMasked += len(positions)
	}
	avg := float64(totalMasked) / 200
	if avg < 1.5 || avg > 4.5 {
		t.Fatalf("mask rate off: avg %.2f of 10 tokens at p=0.3", avg)
	}
}

func TestMaskTokensSkipsUnk(t *testing.T) {
	r := rng.New(2)
	ids := []int{UnkID, UnkID, UnkID}
	for i := 0; i < 50; i++ {
		_, positions, _ := maskTokens(r, ids, 1.0, 10)
		if len(positions) != 0 {
			t.Fatal("masked an <unk> token")
		}
	}
}

func TestPretrainImprovesReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("pretraining test")
	}
	m := NewModel(rng.New(3), DefaultConfig(), BuildVocab(testKernel))
	cfg := DefaultPretrainConfig()
	cfg.Epochs = 2
	cfg.MaxBlocks = 600
	report := Pretrain(m, testKernel, cfg)
	if len(report.EpochLoss) != 2 {
		t.Fatalf("loss history %v", report.EpochLoss)
	}
	if report.EpochLoss[1] >= report.EpochLoss[0] {
		t.Fatalf("pretraining loss did not decrease: %v", report.EpochLoss)
	}
	// Assembly token statistics are highly regular; even brief pretraining
	// should reconstruct masked tokens far above chance (~1/vocab).
	chance := 1.0 / float64(m.Vocab.Size())
	if report.Accuracy < 10*chance {
		t.Fatalf("masked accuracy %.4f barely above chance %.4f", report.Accuracy, chance)
	}
	t.Logf("masked-token accuracy: %.3f (chance %.4f)", report.Accuracy, chance)
}
