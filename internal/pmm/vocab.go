// Package pmm implements the Program Mutation Model of §3.3: a graph neural
// network over argument-mutation query graphs (internal/qgraph) that labels
// each argument vertex MUTATE or NOT-MUTATE given the desired target
// coverage.
//
// The architecture mirrors the paper's three learnable components: a token
// encoder over kernel basic-block "assembly" (θ_TRANSFORMER — here a small
// self-attention encoder), embedding tables for system-call and argument
// vertices and for edge types (θ_Emb), and a relational message-passing GNN
// (θ_GNN). The paper pre-trains its encoder with a BERT recipe on a compiled
// kernel; Pretrain provides the equivalent masked-token pretraining over the
// synthetic kernel's blocks (optional — at this scale the encoder also
// learns fine jointly with the rest of the model).
package pmm

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/repro/snowplow/internal/kernel"
)

// UnkID is the vocabulary id of the unknown token. Kernel versions after
// the training kernel introduce new subsystem/symbol tokens; they map here,
// which is exactly the out-of-vocabulary situation a generalizing model must
// tolerate.
const UnkID = 0

// Vocab maps block tokens to dense ids.
type Vocab struct {
	ids    map[string]int
	tokens []string
}

// BuildVocab collects every token appearing in the kernel's basic blocks.
func BuildVocab(k *kernel.Kernel) *Vocab {
	set := map[string]bool{}
	for i := range k.Blocks {
		for _, tok := range k.Blocks[i].Tokens {
			set[tok] = true
		}
	}
	tokens := make([]string, 0, len(set))
	for tok := range set {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	v := &Vocab{ids: make(map[string]int, len(tokens)+1), tokens: append([]string{"<unk>"}, tokens...)}
	for i, tok := range v.tokens {
		v.ids[tok] = i
	}
	return v
}

// Size returns the vocabulary size including <unk>.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the token's id, or UnkID for unknown tokens.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return UnkID
}

// Encode maps a token sequence to ids.
func (v *Vocab) Encode(tokens []string) []int {
	out := make([]int, len(tokens))
	for i, tok := range tokens {
		out[i] = v.ID(tok)
	}
	return out
}

// Save writes the vocabulary (one token per line after a header).
func (v *Vocab) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "snowplow-vocab v1 size=%d\n", len(v.tokens))
	for _, tok := range v.tokens {
		bw.WriteString(tok)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// LoadVocab reads a vocabulary written by Save.
func LoadVocab(r io.Reader) (*Vocab, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "snowplow-vocab v1 size=") {
		return nil, fmt.Errorf("pmm: bad vocab header")
	}
	size, err := strconv.Atoi(strings.TrimPrefix(sc.Text(), "snowplow-vocab v1 size="))
	if err != nil {
		return nil, fmt.Errorf("pmm: bad vocab size: %w", err)
	}
	v := &Vocab{ids: make(map[string]int, size)}
	for sc.Scan() {
		v.ids[sc.Text()] = len(v.tokens)
		v.tokens = append(v.tokens, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(v.tokens) != size {
		return nil, fmt.Errorf("pmm: vocab has %d tokens, header says %d", len(v.tokens), size)
	}
	if len(v.tokens) == 0 || v.tokens[0] != "<unk>" {
		return nil, fmt.Errorf("pmm: vocab missing <unk> sentinel")
	}
	return v, nil
}

// hashString buckets an arbitrary string (e.g. a syscall variant name that
// did not exist when the model was trained) into a bounded id space.
func hashString(s string, buckets int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h % uint64(buckets))
}
