package pmm

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// TrainConfig controls training.
type TrainConfig struct {
	LR        float64 // Adam learning rate
	Epochs    int
	PosWeight float64 // loss weight of MUTATE labels (positives are rare)
	ClipNorm  float64 // global gradient-norm clip
	Seed      uint64
	// Batch is the minibatch size: examples whose gradients are averaged
	// into one Adam step. 0 or 1 keeps the original per-example stepping.
	Batch int
	// Workers is the data-parallel width: examples of a minibatch are
	// forward/backward-ed by this many goroutines, each on a model replica
	// sharing the master weights, with per-example gradients reduced in
	// example order before the step. Checkpoints are byte-identical at any
	// worker count for a given seed. 0 or 1 trains single-threaded.
	// Workers also bounds the hyperparameter-search and validation-pass
	// concurrency.
	Workers int
	// Quiet suppresses per-epoch progress output.
	Quiet bool
	// Log receives progress lines when not Quiet (defaults to io.Discard).
	Log io.Writer
	// Pretrain runs masked-token pretraining of the assembly encoder on the
	// kernel's basic blocks before supervised training (the paper's BERT
	// pretraining step).
	Pretrain bool
	// Metrics, when non-nil, receives the train_* instruments (epoch
	// latency, throughput, gradient-reduce wait). Purely observational —
	// never part of training determinism.
	Metrics *obs.Registry
}

// DefaultTrainConfig returns the training settings used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LR: 3e-3, Epochs: 8, PosWeight: 2, ClipNorm: 1, Seed: 1, Quiet: true}
}

func (tcfg TrainConfig) batch() int {
	if tcfg.Batch < 1 {
		return 1
	}
	return tcfg.Batch
}

func (tcfg TrainConfig) workers() int {
	if tcfg.Workers < 1 {
		return 1
	}
	return tcfg.Workers
}

// compiled is one training example compiled to model inputs.
type compiled struct {
	g       *qgraph.Graph
	targets []float64
	weights []float64
}

// compile builds graphs and label vectors for a dataset.
func compile(b *qgraph.Builder, ds *dataset.Dataset, posWeight float64) []compiled {
	out := make([]compiled, 0, ds.Len())
	for _, ex := range ds.Examples {
		g := b.Build(ex.Prog, ex.Traces, ex.Targets)
		label := map[prog.GlobalSlot]bool{}
		for _, s := range ex.Slots {
			label[s] = true
		}
		targets := make([]float64, len(g.Slots))
		weights := make([]float64, len(g.Slots))
		for i, s := range g.Slots {
			weights[i] = 1
			if label[s] {
				targets[i] = 1
				weights[i] = posWeight
			}
		}
		out = append(out, compiled{g: g, targets: targets, weights: weights})
	}
	return out
}

// Compiled is a dataset split compiled once into model inputs: query graphs
// plus per-slot label and weight vectors. Compiling dominates short
// training runs, so callers that train, validate and evaluate should build
// each split exactly once (CompileDataset) and pass the result to
// TrainOnCompiled / EvaluateCompiled / SearchHyperparamsCompiled instead of
// letting every stage recompile. A Compiled split is immutable and may be
// shared by concurrent trainers.
type Compiled struct {
	examples []compiled
}

// Len returns the number of compiled examples.
func (c *Compiled) Len() int { return len(c.examples) }

// CompileDataset compiles a dataset split against the builder once.
// posWeight is baked into the per-slot loss weights (use the training
// config's PosWeight for the train split and 1 for validation/eval splits).
func CompileDataset(b *qgraph.Builder, ds *dataset.Dataset, posWeight float64) *Compiled {
	return &Compiled{examples: compile(b, ds, posWeight)}
}

// TrainReport summarizes a training run.
type TrainReport struct {
	EpochLoss []float64
	ValF1     []float64 // mean F1 on the validation split after each epoch
	Threshold float64   // tuned decision threshold
}

// Train fits a fresh model on the train split, tracks validation F1, and
// tunes the decision threshold on the validation split. The query-graph
// builder must wrap the kernel the dataset was collected on.
func Train(b *qgraph.Builder, cfg Config, tcfg TrainConfig, train, val *dataset.Dataset) (*Model, TrainReport) {
	return TrainCompiled(b, cfg, tcfg, CompileDataset(b, train, tcfg.PosWeight), CompileDataset(b, val, 1))
}

// TrainCompiled is Train over pre-compiled splits.
func TrainCompiled(b *qgraph.Builder, cfg Config, tcfg TrainConfig, train, val *Compiled) (*Model, TrainReport) {
	r := rng.New(tcfg.Seed)
	m := NewModel(r, cfg, BuildVocab(b.K))
	report := TrainOnCompiled(m, b, tcfg, train, val)
	return m, report
}

// TrainOn fits an existing model in place (used by the hyperparameter
// search and by tests that pre-build the model).
func TrainOn(m *Model, b *qgraph.Builder, tcfg TrainConfig, train, val *dataset.Dataset) TrainReport {
	return TrainOnCompiled(m, b, tcfg, CompileDataset(b, train, tcfg.PosWeight), CompileDataset(b, val, 1))
}

// TrainOnCompiled fits an existing model in place over pre-compiled splits.
//
// With Batch=1 and Workers=1 (the defaults) the loop is the classic
// per-example SGD of the original trainer, bit for bit. With Batch=B and
// Workers=W, each minibatch's examples are forward/backward-ed by W workers
// — every worker holds a weight-aliased model replica and a pooled
// training arena (nn.TrainArena), and writes each example's gradient into
// a dedicated pooled slab — then the slabs are reduced into the master
// gradients in example order, averaged, clipped and stepped once. Because
// per-example gradients are computed independently and summed in a fixed
// order, the float arithmetic never depends on W: TrainWorkers=1 and =N
// produce byte-identical checkpoints for a given seed.
func TrainOnCompiled(m *Model, b *qgraph.Builder, tcfg TrainConfig, train, val *Compiled) TrainReport {
	log := tcfg.Log
	if log == nil {
		log = io.Discard
	}
	if tcfg.Pretrain {
		pcfg := DefaultPretrainConfig()
		pcfg.Seed = tcfg.Seed
		report := Pretrain(m, b.K, pcfg)
		if !tcfg.Quiet {
			fmt.Fprintf(log, "pretraining: loss %v, masked accuracy %.3f\n", report.EpochLoss, report.Accuracy)
		}
	}
	ins := newTrainInstruments(tcfg.Metrics)
	r := rng.New(tcfg.Seed + 0x7ead)
	examples := train.examples
	valExamples := val.examples
	opt := nn.NewAdam(m.ParamList(), tcfg.LR)
	t := newMiniTrainer(m, tcfg, ins)
	shadow := newEvalShadow(m)
	batch := tcfg.batch()
	var report TrainReport
	for epoch := 0; epoch < tcfg.Epochs; epoch++ {
		epochStart := time.Now()
		perm := r.Perm(len(examples))
		// Live examples in permutation order; examples without argument
		// vertices have nothing to label and are skipped, as before.
		t.live = t.live[:0]
		for _, i := range perm {
			if len(examples[i].g.ArgVertices) > 0 {
				t.live = append(t.live, examples[i])
			}
		}
		var total float64
		for start := 0; start < len(t.live); start += batch {
			end := start + batch
			if end > len(t.live) {
				end = len(t.live)
			}
			for _, loss := range t.step(opt, tcfg, t.live[start:end]) {
				total += loss
			}
		}
		elapsed := time.Since(epochStart)
		ins.epochs.Inc()
		ins.examples.Add(int64(len(t.live)))
		ins.epochLatency.Observe(elapsed.Nanoseconds())
		if s := elapsed.Seconds(); s > 0 {
			ins.examplesPerSec.Set(int64(float64(len(t.live)) / s))
		}
		avg := 0.0
		if len(examples) > 0 {
			avg = total / float64(len(examples))
		}
		report.EpochLoss = append(report.EpochLoss, avg)
		valF1 := evaluateCompiledWorkers(shadow, valExamples, tcfg.workers()).F1
		report.ValF1 = append(report.ValF1, valF1)
		if !tcfg.Quiet {
			fmt.Fprintf(log, "epoch %d: loss %.4f, val F1 %.3f\n", epoch, avg, valF1)
		}
	}
	report.Threshold = tuneThreshold(shadow, valExamples, tcfg.workers())
	m.Cfg.Threshold = report.Threshold
	return report
}

// trainInstruments bundles the optional train_* metrics. Every field is
// nil (and every update a no-op) when no registry is attached.
type trainInstruments struct {
	epochs         *obs.Counter
	minibatches    *obs.Counter
	examples       *obs.Counter
	epochLatency   *obs.Histogram
	reduceWait     *obs.Histogram
	examplesPerSec *obs.Gauge
}

func newTrainInstruments(reg *obs.Registry) trainInstruments {
	return trainInstruments{
		epochs:         reg.Counter("train_epochs_total", "epochs", "supervised training epochs completed"),
		minibatches:    reg.Counter("train_minibatches_total", "steps", "optimizer steps (one per minibatch)"),
		examples:       reg.Counter("train_examples_total", "examples", "training examples forward/backward processed"),
		epochLatency:   reg.Histogram("train_epoch_latency_ns", "ns", "wall-clock duration of one supervised epoch, excluding validation", obs.LatencyBucketsNs()),
		reduceWait:     reg.Histogram("train_grad_reduce_wait_ns", "ns", "wall-clock wait for the slowest minibatch worker before gradient reduction", obs.LatencyBucketsNs()),
		examplesPerSec: reg.Gauge("train_examples_per_sec", "examples/s", "supervised training throughput of the last epoch"),
	}
}

// trainWorker is one data-parallel lane: a model replica sharing the master
// weights (private gradients), plus a pooled autodiff arena so its
// forward/backward passes stop allocating.
type trainWorker struct {
	rep   *Model
	reps  []*nn.Tensor // replica ParamList, name-order aligned with master
	arena *nn.TrainArena
}

// bind points every replica parameter's gradient at its segment of the
// per-example slab, so one backward pass writes the whole example gradient
// into contiguous pooled memory.
func (tw *trainWorker) bind(slab []float64, sizes []int) {
	off := 0
	for pi, p := range tw.reps {
		n := sizes[pi]
		p.Grad = slab[off : off+n : off+n]
		off += n
	}
}

// miniTrainer runs deterministic data-parallel minibatch steps.
type miniTrainer struct {
	params  []*nn.Tensor // master parameters, sorted-name order
	sizes   []int
	total   int
	workers []*trainWorker
	slabs   *nn.Pool // per-example gradient slabs, recycled across steps
	ins     trainInstruments

	live    []compiled  // scratch: this epoch's live examples in perm order
	slabBuf [][]float64 // scratch: per-example slabs of the current step
	lossBuf []float64   // scratch: per-example losses of the current step
}

func newMiniTrainer(m *Model, tcfg TrainConfig, ins trainInstruments) *miniTrainer {
	t := &miniTrainer{params: m.ParamList(), ins: ins}
	for _, p := range t.params {
		t.sizes = append(t.sizes, p.Size())
		t.total += p.Size()
	}
	t.slabs = nn.NewPoolCap(tcfg.batch() + tcfg.workers())
	for w := 0; w < tcfg.workers(); w++ {
		rep := newAliasedModel(m)
		t.workers = append(t.workers, &trainWorker{rep: rep, reps: rep.ParamList(), arena: nn.NewTrainArena()})
	}
	return t
}

// step runs one minibatch and returns the per-example losses in example
// order. Workers pick examples by stride, compute each gradient into a
// zeroed pooled slab, and the main goroutine reduces the slabs into the
// zeroed master gradients in example order — a worker-count-independent
// summation tree — before one clip + Adam step.
func (t *miniTrainer) step(opt *nn.Adam, tcfg TrainConfig, batch []compiled) []float64 {
	W := len(t.workers)
	if W > len(batch) {
		W = len(batch)
	}
	if cap(t.slabBuf) < len(batch) {
		t.slabBuf = make([][]float64, len(batch))
		t.lossBuf = make([]float64, len(batch))
	}
	slabs, losses := t.slabBuf[:len(batch)], t.lossBuf[:len(batch)]
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(tw *trainWorker, w int) {
			defer wg.Done()
			for i := w; i < len(batch); i += W {
				slab := t.slabs.GetSlice(t.total)
				slabs[i] = slab
				tw.bind(slab, t.sizes)
				ex := batch[i]
				logits := tw.rep.forwardMany(tw.arena, []*qgraph.Graph{ex.g})[0]
				loss := tw.arena.BCEWithLogits(logits, ex.targets, ex.weights)
				loss.Backward()
				losses[i] = loss.Item()
				tw.arena.Close()
			}
		}(t.workers[w], w)
	}
	waitStart := time.Now()
	wg.Wait()
	t.ins.reduceWait.Observe(time.Since(waitStart).Nanoseconds())

	opt.ZeroGrad()
	for i := range batch {
		slab := slabs[i]
		off := 0
		for pi, p := range t.params {
			g := p.Grad
			src := slab[off : off+t.sizes[pi]]
			for j := range g {
				g[j] += src[j]
			}
			off += t.sizes[pi]
		}
		t.slabs.PutSlice(slab)
		slabs[i] = nil
	}
	if len(batch) > 1 {
		inv := 1 / float64(len(batch))
		for _, p := range t.params {
			for j := range p.Grad {
				p.Grad[j] *= inv
			}
		}
	}
	nn.ClipGradNorm(t.params, tcfg.ClipNorm)
	opt.Step()
	t.ins.minibatches.Inc()
	return losses
}

// Metrics are the §5.2 selector-performance measures, averaged per example.
type Metrics struct {
	F1, Precision, Recall, Jaccard float64
	N                              int
}

// String renders the metrics like Table 1.
func (mt Metrics) String() string {
	return fmt.Sprintf("F1 %.1f%%  Precision %.1f%%  Recall %.1f%%  Jaccard %.1f%%",
		mt.F1*100, mt.Precision*100, mt.Recall*100, mt.Jaccard*100)
}

// Evaluate computes the metrics of the model on a dataset. Callers that
// evaluate a split more than once should compile it once with
// CompileDataset and use EvaluateCompiled.
func Evaluate(m *Model, b *qgraph.Builder, ds *dataset.Dataset) Metrics {
	return EvaluateCompiled(m, CompileDataset(b, ds, 1))
}

// EvaluateCompiled computes the metrics of the model on a pre-compiled
// split. Examples are scored by parallel workers through the pooled
// inference path (on a frozen weight-aliased shadow if the model is still
// in training mode) and the per-example measures fold in example order, so
// the result is bit-identical to a sequential evaluation at any
// parallelism.
func EvaluateCompiled(m *Model, c *Compiled) Metrics {
	frozen := m
	if !m.frozen() {
		frozen = newEvalShadow(m)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	return evaluateCompiledWorkers(frozen, c.examples, workers)
}

// evaluateCompiledWorkers scores each example on the frozen model with the
// given parallelism. Per-example measures land in a positional slice and
// fold sequentially, so sums never depend on worker count or scheduling.
func evaluateCompiledWorkers(frozen *Model, examples []compiled, workers int) Metrics {
	if workers > len(examples) {
		workers = len(examples)
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]Metrics, len(examples))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(examples); i += workers {
				ex := examples[i]
				pred, _ := frozen.Predict(ex.g)
				predSet := map[prog.GlobalSlot]bool{}
				for _, s := range pred {
					predSet[s] = true
				}
				parts[i].accumulate(predSet, labelSet(ex))
			}
		}(w)
	}
	wg.Wait()
	var mt Metrics
	for i := range parts {
		mt.Precision += parts[i].Precision
		mt.Recall += parts[i].Recall
		mt.F1 += parts[i].F1
		mt.Jaccard += parts[i].Jaccard
		mt.N += parts[i].N
	}
	mt.finish()
	return mt
}

// EvaluateRandomK computes the metrics of the Rand.K baseline (Table 1):
// select K uniformly random distinct slots per example.
func EvaluateRandomK(r *rng.Rand, b *qgraph.Builder, ds *dataset.Dataset, k int) Metrics {
	var mt Metrics
	for _, ex := range ds.Examples {
		all := ex.Prog.AllSlots()
		predSet := map[prog.GlobalSlot]bool{}
		if len(all) > 0 {
			perm := r.Perm(len(all))
			for i := 0; i < k && i < len(all); i++ {
				predSet[all[perm[i]]] = true
			}
		}
		label := map[prog.GlobalSlot]bool{}
		for _, s := range ex.Slots {
			label[s] = true
		}
		mt.accumulate(predSet, label)
	}
	mt.finish()
	return mt
}

func labelSet(ex compiled) map[prog.GlobalSlot]bool {
	label := map[prog.GlobalSlot]bool{}
	for i, t := range ex.targets {
		if t == 1 {
			label[ex.g.Slots[i]] = true
		}
	}
	return label
}

func (mt *Metrics) accumulate(pred, label map[prog.GlobalSlot]bool) {
	inter := 0
	for s := range pred {
		if label[s] {
			inter++
		}
	}
	union := len(pred) + len(label) - inter
	var p, rc, f1, j float64
	if len(pred) > 0 {
		p = float64(inter) / float64(len(pred))
	}
	if len(label) > 0 {
		rc = float64(inter) / float64(len(label))
	}
	if p+rc > 0 {
		f1 = 2 * p * rc / (p + rc)
	}
	if union > 0 {
		j = float64(inter) / float64(union)
	}
	mt.Precision += p
	mt.Recall += rc
	mt.F1 += f1
	mt.Jaccard += j
	mt.N++
}

func (mt *Metrics) finish() {
	if mt.N == 0 {
		return
	}
	n := float64(mt.N)
	mt.Precision /= n
	mt.Recall /= n
	mt.F1 /= n
	mt.Jaccard /= n
}

// tuneThreshold sweeps decision thresholds on the validation set and
// returns the best mean-F1 threshold. frozen is the evaluation shadow; its
// threshold is restored before returning.
func tuneThreshold(frozen *Model, valExamples []compiled, workers int) float64 {
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	best, bestF1 := frozen.Cfg.Threshold, -1.0
	orig := frozen.Cfg.Threshold
	for _, th := range grid {
		frozen.Cfg.Threshold = th
		f1 := evaluateCompiledWorkers(frozen, valExamples, workers).F1
		if f1 > bestF1 {
			best, bestF1 = th, f1
		}
	}
	frozen.Cfg.Threshold = orig
	return best
}

// HyperparamResult records one point of the §5.1 hyperparameter search.
type HyperparamResult struct {
	Cfg   Config
	Train TrainConfig
	ValF1 float64
}

// SearchHyperparams trains one model per candidate configuration and
// returns the results sorted best-first, mirroring (at laptop scale) the
// paper's 112-configuration sweep.
func SearchHyperparams(b *qgraph.Builder, candidates []Config, tcfg TrainConfig, train, val *dataset.Dataset) []HyperparamResult {
	return SearchHyperparamsCompiled(b, candidates, tcfg, CompileDataset(b, train, tcfg.PosWeight), CompileDataset(b, val, 1))
}

// SearchHyperparamsCompiled is SearchHyperparams over splits compiled once
// and shared by every candidate. Up to tcfg.Workers candidates train
// concurrently (each single-worker — candidates are embarrassingly
// parallel, so cross-candidate parallelism wins). Candidate i always trains
// with seed tcfg.Seed+i, so results are independent of the concurrency.
func SearchHyperparamsCompiled(b *qgraph.Builder, candidates []Config, tcfg TrainConfig, train, val *Compiled) []HyperparamResult {
	results := make([]HyperparamResult, len(candidates))
	sem := make(chan struct{}, tcfg.workers())
	var wg sync.WaitGroup
	for i, cfg := range candidates {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tc := tcfg
			tc.Seed = tcfg.Seed + uint64(i)
			tc.Workers = 1
			m, _ := TrainCompiled(b, cfg, tc, train, val)
			f1 := EvaluateCompiled(m, val).F1
			results[i] = HyperparamResult{Cfg: cfg, Train: tc, ValF1: f1}
		}(i, cfg)
	}
	wg.Wait()
	sort.SliceStable(results, func(i, j int) bool { return results[i].ValF1 > results[j].ValF1 })
	return results
}
