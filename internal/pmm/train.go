package pmm

import (
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// TrainConfig controls training.
type TrainConfig struct {
	LR        float64 // Adam learning rate
	Epochs    int
	PosWeight float64 // loss weight of MUTATE labels (positives are rare)
	ClipNorm  float64 // global gradient-norm clip
	Seed      uint64
	// Quiet suppresses per-epoch progress output.
	Quiet bool
	// Log receives progress lines when not Quiet (defaults to io.Discard).
	Log io.Writer
	// Pretrain runs masked-token pretraining of the assembly encoder on the
	// kernel's basic blocks before supervised training (the paper's BERT
	// pretraining step).
	Pretrain bool
}

// DefaultTrainConfig returns the training settings used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LR: 3e-3, Epochs: 8, PosWeight: 2, ClipNorm: 1, Seed: 1, Quiet: true}
}

// compiled is one training example compiled to model inputs.
type compiled struct {
	g       *qgraph.Graph
	targets []float64
	weights []float64
}

// compile builds graphs and label vectors for a dataset.
func compile(b *qgraph.Builder, ds *dataset.Dataset, posWeight float64) []compiled {
	out := make([]compiled, 0, ds.Len())
	for _, ex := range ds.Examples {
		g := b.Build(ex.Prog, ex.Traces, ex.Targets)
		label := map[prog.GlobalSlot]bool{}
		for _, s := range ex.Slots {
			label[s] = true
		}
		targets := make([]float64, len(g.Slots))
		weights := make([]float64, len(g.Slots))
		for i, s := range g.Slots {
			weights[i] = 1
			if label[s] {
				targets[i] = 1
				weights[i] = posWeight
			}
		}
		out = append(out, compiled{g: g, targets: targets, weights: weights})
	}
	return out
}

// TrainReport summarizes a training run.
type TrainReport struct {
	EpochLoss []float64
	ValF1     []float64 // mean F1 on the validation split after each epoch
	Threshold float64   // tuned decision threshold
}

// Train fits a fresh model on the train split, tracks validation F1, and
// tunes the decision threshold on the validation split. The query-graph
// builder must wrap the kernel the dataset was collected on.
func Train(b *qgraph.Builder, cfg Config, tcfg TrainConfig, train, val *dataset.Dataset) (*Model, TrainReport) {
	r := rng.New(tcfg.Seed)
	m := NewModel(r, cfg, BuildVocab(b.K))
	report := TrainOn(m, b, tcfg, train, val)
	return m, report
}

// TrainOn fits an existing model in place (used by the hyperparameter
// search and by tests that pre-build the model).
func TrainOn(m *Model, b *qgraph.Builder, tcfg TrainConfig, train, val *dataset.Dataset) TrainReport {
	log := tcfg.Log
	if log == nil {
		log = io.Discard
	}
	if tcfg.Pretrain {
		pcfg := DefaultPretrainConfig()
		pcfg.Seed = tcfg.Seed
		report := Pretrain(m, b.K, pcfg)
		if !tcfg.Quiet {
			fmt.Fprintf(log, "pretraining: loss %v, masked accuracy %.3f\n", report.EpochLoss, report.Accuracy)
		}
	}
	r := rng.New(tcfg.Seed + 0x7ead)
	examples := compile(b, train, tcfg.PosWeight)
	valExamples := compile(b, val, 1)
	opt := nn.NewAdam(m.ParamList(), tcfg.LR)
	var report TrainReport
	for epoch := 0; epoch < tcfg.Epochs; epoch++ {
		perm := r.Perm(len(examples))
		var total float64
		for _, i := range perm {
			ex := examples[i]
			if len(ex.g.ArgVertices) == 0 {
				continue
			}
			opt.ZeroGrad()
			logits := m.Forward(ex.g)
			loss := nn.BCEWithLogits(logits, ex.targets, ex.weights)
			loss.Backward()
			nn.ClipGradNorm(m.ParamList(), tcfg.ClipNorm)
			opt.Step()
			total += loss.Item()
		}
		avg := 0.0
		if len(examples) > 0 {
			avg = total / float64(len(examples))
		}
		report.EpochLoss = append(report.EpochLoss, avg)
		valF1 := evaluateCompiled(m, valExamples).F1
		report.ValF1 = append(report.ValF1, valF1)
		if !tcfg.Quiet {
			fmt.Fprintf(log, "epoch %d: loss %.4f, val F1 %.3f\n", epoch, avg, valF1)
		}
	}
	report.Threshold = tuneThreshold(m, valExamples)
	m.Cfg.Threshold = report.Threshold
	return report
}

// Metrics are the §5.2 selector-performance measures, averaged per example.
type Metrics struct {
	F1, Precision, Recall, Jaccard float64
	N                              int
}

// String renders the metrics like Table 1.
func (mt Metrics) String() string {
	return fmt.Sprintf("F1 %.1f%%  Precision %.1f%%  Recall %.1f%%  Jaccard %.1f%%",
		mt.F1*100, mt.Precision*100, mt.Recall*100, mt.Jaccard*100)
}

// Evaluate computes the metrics of the model on a dataset.
func Evaluate(m *Model, b *qgraph.Builder, ds *dataset.Dataset) Metrics {
	return evaluateCompiled(m, compile(b, ds, 1))
}

func evaluateCompiled(m *Model, examples []compiled) Metrics {
	var mt Metrics
	for _, ex := range examples {
		pred, _ := m.Predict(ex.g)
		predSet := map[prog.GlobalSlot]bool{}
		for _, s := range pred {
			predSet[s] = true
		}
		mt.accumulate(predSet, labelSet(ex))
	}
	mt.finish()
	return mt
}

// EvaluateRandomK computes the metrics of the Rand.K baseline (Table 1):
// select K uniformly random distinct slots per example.
func EvaluateRandomK(r *rng.Rand, b *qgraph.Builder, ds *dataset.Dataset, k int) Metrics {
	var mt Metrics
	for _, ex := range ds.Examples {
		all := ex.Prog.AllSlots()
		predSet := map[prog.GlobalSlot]bool{}
		if len(all) > 0 {
			perm := r.Perm(len(all))
			for i := 0; i < k && i < len(all); i++ {
				predSet[all[perm[i]]] = true
			}
		}
		label := map[prog.GlobalSlot]bool{}
		for _, s := range ex.Slots {
			label[s] = true
		}
		mt.accumulate(predSet, label)
	}
	mt.finish()
	return mt
}

func labelSet(ex compiled) map[prog.GlobalSlot]bool {
	label := map[prog.GlobalSlot]bool{}
	for i, t := range ex.targets {
		if t == 1 {
			label[ex.g.Slots[i]] = true
		}
	}
	return label
}

func (mt *Metrics) accumulate(pred, label map[prog.GlobalSlot]bool) {
	inter := 0
	for s := range pred {
		if label[s] {
			inter++
		}
	}
	union := len(pred) + len(label) - inter
	var p, rc, f1, j float64
	if len(pred) > 0 {
		p = float64(inter) / float64(len(pred))
	}
	if len(label) > 0 {
		rc = float64(inter) / float64(len(label))
	}
	if p+rc > 0 {
		f1 = 2 * p * rc / (p + rc)
	}
	if union > 0 {
		j = float64(inter) / float64(union)
	}
	mt.Precision += p
	mt.Recall += rc
	mt.F1 += f1
	mt.Jaccard += j
	mt.N++
}

func (mt *Metrics) finish() {
	if mt.N == 0 {
		return
	}
	n := float64(mt.N)
	mt.Precision /= n
	mt.Recall /= n
	mt.F1 /= n
	mt.Jaccard /= n
}

// tuneThreshold sweeps decision thresholds on the validation set and
// returns the best mean-F1 threshold.
func tuneThreshold(m *Model, valExamples []compiled) float64 {
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	best, bestF1 := m.Cfg.Threshold, -1.0
	orig := m.Cfg.Threshold
	for _, th := range grid {
		m.Cfg.Threshold = th
		f1 := evaluateCompiled(m, valExamples).F1
		if f1 > bestF1 {
			best, bestF1 = th, f1
		}
	}
	m.Cfg.Threshold = orig
	return best
}

// HyperparamResult records one point of the §5.1 hyperparameter search.
type HyperparamResult struct {
	Cfg   Config
	Train TrainConfig
	ValF1 float64
}

// SearchHyperparams trains one model per candidate configuration and
// returns the results sorted best-first, mirroring (at laptop scale) the
// paper's 112-configuration sweep.
func SearchHyperparams(b *qgraph.Builder, candidates []Config, tcfg TrainConfig, train, val *dataset.Dataset) []HyperparamResult {
	results := make([]HyperparamResult, 0, len(candidates))
	for i, cfg := range candidates {
		tc := tcfg
		tc.Seed = tcfg.Seed + uint64(i)
		m, _ := Train(b, cfg, tc, train, val)
		f1 := Evaluate(m, b, val).F1
		results = append(results, HyperparamResult{Cfg: cfg, Train: tc, ValF1: f1})
	}
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			if results[j].ValF1 > results[i].ValF1 {
				results[i], results[j] = results[j], results[i]
			}
		}
	}
	return results
}
