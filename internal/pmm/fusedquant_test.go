package pmm

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/rng"
)

// TestPredictFusedBitIdentity checks the fused-kernel forward against the
// plain pooled path: EnableFused must not change a single probability bit,
// across repeated passes and worker counts.
func TestPredictFusedBitIdentity(t *testing.T) {
	defer nn.SetWorkers(1)
	gs := batchGraphs(t, 5, 700)
	m := NewModel(rng.New(8), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	_, want := m.PredictBatch(gs)
	m.EnableFused()
	for _, workers := range []int{1, 4} {
		nn.SetWorkers(workers)
		for pass := 0; pass < 2; pass++ {
			_, got := m.PredictBatch(gs)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("workers=%d pass %d graph %d prob %d: fused %v vs plain %v",
							workers, pass, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
	if m.InferProfile().FusedLinear == 0 {
		t.Fatal("fused forward never hit a fused kernel")
	}
}

// TestPredictQuantReplayBitIdentity checks the dequantized-replay contract
// at the model level: after Quantize, the plain float64 path, the fused
// float64 path and the live int8 kernels must all agree bit for bit — so a
// campaign's digests are reproducible per seed whichever path serves it.
func TestPredictQuantReplayBitIdentity(t *testing.T) {
	gs := batchGraphs(t, 5, 800)
	m := NewModel(rng.New(9), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	if err := m.Quantize(); err != nil {
		t.Fatal(err)
	}
	if m.Quantized().Len() == 0 {
		t.Fatal("nothing quantized")
	}
	_, replay := m.PredictBatch(gs) // plain path over dequantized weights
	m.EnableFused()
	_, quant := m.PredictBatch(gs) // int8 kernels
	if m.InferProfile().QuantKernels == 0 {
		t.Fatal("quantized forward never hit an int8 kernel")
	}
	for i := range replay {
		for j := range replay[i] {
			if quant[i][j] != replay[i][j] {
				t.Fatalf("graph %d prob %d: int8 %v vs replay %v", i, j, quant[i][j], replay[i][j])
			}
		}
	}
}

// TestQuantizedCheckpointRoundTrip checks the mixed-precision model file:
// byte-stable encoding (the cluster model SHA covers the quantized form)
// and a load that reproduces the quantized model's predictions bit for bit,
// including through the int8 kernels.
func TestQuantizedCheckpointRoundTrip(t *testing.T) {
	gs := batchGraphs(t, 4, 900)
	m := NewModel(rng.New(10), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	if err := m.Quantize(); err != nil {
		t.Fatal(err)
	}
	_, want := m.PredictBatch(gs)

	var buf1, buf2 bytes.Buffer
	if err := m.SaveQuantized(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveQuantized(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("quantized checkpoint is not byte-stable")
	}
	var fbuf bytes.Buffer
	if err := m.Save(&fbuf); err != nil {
		t.Fatal(err)
	}
	if len(buf1.Bytes()) >= len(fbuf.Bytes()) {
		t.Fatalf("quantized checkpoint (%d B) not smaller than float64 (%d B)", buf1.Len(), fbuf.Len())
	}

	m2, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Quantized() == nil || m2.Quantized().Len() != m.Quantized().Len() {
		t.Fatal("loaded model lost the quantization registry")
	}
	m2.Freeze()
	m2.EnableFused()
	_, got := m2.PredictBatch(gs)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("graph %d prob %d: loaded %v vs saved %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// BenchmarkPredictBatch measures the frozen-model serving hot path across
// the inference configurations: the PR-2-era baseline (unfused float64),
// fused float64, and fused int8. The fused+quant speedup over the baseline
// is the headline number recorded in BENCH_quant.json (snowplow-bench
// -experiment quant reproduces it with output digests).
func BenchmarkPredictBatch(b *testing.B) {
	gs := batchGraphs(b, 6, 1000)
	modes := []struct {
		name         string
		fused, quant bool
	}{
		{"unfused_f64", false, false},
		{"fused_f64", true, false},
		{"fused_quant", true, true},
	}
	nsPerOp := map[string]float64{}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			m := NewModel(rng.New(11), DefaultConfig(), BuildVocab(testKernel))
			m.Freeze()
			if mode.quant {
				if err := m.Quantize(); err != nil {
					b.Fatal(err)
				}
			}
			if mode.fused {
				m.EnableFused()
			}
			m.PredictBatch(gs) // warm the pool
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(gs)
			}
			nsPerOp[mode.name] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
		})
	}
	if base, ok := nsPerOp["unfused_f64"]; ok {
		if v := nsPerOp["fused_quant"]; v > 0 {
			b.Logf("fused_quant speedup vs unfused_f64: %.2fx", base/v)
		}
	}
	if dir := os.Getenv("BENCH_JSON"); dir != "" {
		out := map[string]interface{}{
			"benchmark": "BenchmarkPredictBatch", "ns_per_op": nsPerOp,
		}
		if base := nsPerOp["unfused_f64"]; base > 0 {
			speedups := map[string]float64{}
			for name, v := range nsPerOp {
				if v > 0 {
					speedups[name] = base / v
				}
			}
			out["speedup_vs_unfused_f64"] = speedups
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_predictbatch.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}
