package pmm

import (
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/rng"
)

// TestTuningScratch is a manual exploration harness, enabled with
// PMM_SCRATCH=1. It trains on a mid-size dataset and prints metrics so
// hyperparameters can be compared quickly.
func TestTuningScratch(t *testing.T) {
	if os.Getenv("PMM_SCRATCH") == "" {
		t.Skip("set PMM_SCRATCH=1 to run")
	}
	geti := func(name string, def int) int {
		if v := os.Getenv(name); v != "" {
			n, _ := strconv.Atoi(v)
			return n
		}
		return def
	}
	nbases := geti("NBASES", 80)
	mut := geti("MUT", 200)
	epochs := geti("EPOCHS", 10)
	posw := geti("POSW", 4)

	start := time.Now()
	ds := smallDataset(t, nbases, mut, 42)
	t.Logf("dataset: %d examples in %v", ds.Len(), time.Since(start))
	train, val, eval := ds.Split(0.8, 0.1)
	t.Logf("split: train %d, val %d, eval %d", train.Len(), val.Len(), eval.Len())

	tcfg := DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.PosWeight = float64(posw)
	tcfg.Quiet = false
	tcfg.Log = os.Stderr
	start = time.Now()
	m, report := Train(testBuilder, DefaultConfig(), tcfg, train, val)
	t.Logf("training: %v (threshold %.2f)", time.Since(start), report.Threshold)
	t.Logf("PMM eval:    %v", Evaluate(m, testBuilder, eval))
	t.Logf("Rand.8 eval: %v", EvaluateRandomK(rng.New(7), testBuilder, eval, 8))
}
