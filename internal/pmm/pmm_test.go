package pmm

import (
	"bytes"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

var (
	testKernel  = kernel.MustBuild("6.8")
	testAn      = cfa.New(testKernel)
	testBuilder = qgraph.NewBuilder(testKernel, testAn)
)

// smallDataset collects a compact dataset once for the learning tests.
func smallDataset(t testing.TB, nbases, mutPerBase int, seed uint64) *dataset.Dataset {
	t.Helper()
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(seed)
	bases := make([]*prog.Prog, nbases)
	for i := range bases {
		bases[i] = g.Generate(r, 3+r.Intn(3))
	}
	c := dataset.NewCollector(testKernel, testAn)
	c.MutationsPerBase = mutPerBase
	ds, _ := c.Collect(rng.New(seed+1), bases)
	return ds
}

func TestVocabBuildAndLookup(t *testing.T) {
	v := BuildVocab(testKernel)
	if v.Size() < 50 {
		t.Fatalf("vocab size %d too small", v.Size())
	}
	if v.ID("<unk>") != UnkID {
		t.Fatal("<unk> not at UnkID")
	}
	if v.ID("no-such-token-ever") != UnkID {
		t.Fatal("unknown token did not map to <unk>")
	}
	if v.ID("cmp") == UnkID || v.ID("rsi") == UnkID {
		t.Fatal("common assembly tokens missing from vocab")
	}
	ids := v.Encode([]string{"cmp", "bogus", "rsi"})
	if ids[1] != UnkID || ids[0] == UnkID || ids[2] == UnkID {
		t.Fatalf("Encode = %v", ids)
	}
}

func TestVocabSaveLoad(t *testing.T) {
	v := BuildVocab(testKernel)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("size %d vs %d", v2.Size(), v.Size())
	}
	if v2.ID("cmp") != v.ID("cmp") {
		t.Fatal("ids changed across save/load")
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	ds := smallDataset(t, 4, 60, 100)
	if ds.Len() == 0 {
		t.Skip("no examples")
	}
	m := NewModel(rng.New(1), DefaultConfig(), BuildVocab(testKernel))
	ex := ds.Examples[0]
	g := testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	out1 := m.Forward(g)
	out2 := m.Forward(g)
	if out1.Dim(0) != len(g.ArgVertices) || out1.Dim(1) != 1 {
		t.Fatalf("forward shape %v", out1.Shape)
	}
	for i := range out1.Data {
		if out1.Data[i] != out2.Data[i] {
			t.Fatal("forward not deterministic")
		}
	}
}

func TestPredictAlwaysReturnsSomething(t *testing.T) {
	ds := smallDataset(t, 4, 60, 200)
	if ds.Len() == 0 {
		t.Skip("no examples")
	}
	m := NewModel(rng.New(2), DefaultConfig(), BuildVocab(testKernel))
	m.Cfg.Threshold = 0.999999 // nothing crosses; fallback must kick in
	ex := ds.Examples[0]
	g := testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	slots, probs := m.Predict(g)
	if len(slots) != 1 {
		t.Fatalf("fallback returned %d slots", len(slots))
	}
	if len(probs) != len(g.ArgVertices) {
		t.Fatalf("%d probs for %d args", len(probs), len(g.ArgVertices))
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

// TestPMMLearnsAndBeatsRandomBaseline is the core reproduction of Table 1:
// after brief training PMM's selector metrics must far exceed Rand.8.
func TestPMMLearnsAndBeatsRandomBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ds := smallDataset(t, 80, 200, 42)
	if ds.Len() < 50 {
		t.Fatalf("dataset too small: %d examples", ds.Len())
	}
	train, val, eval := ds.Split(0.8, 0.1)
	if eval.Len() == 0 {
		eval = val
	}
	tcfg := DefaultTrainConfig()
	tcfg.Epochs = 8
	m, report := Train(testBuilder, DefaultConfig(), tcfg, train, val)
	if len(report.EpochLoss) != tcfg.Epochs {
		t.Fatalf("loss history %v", report.EpochLoss)
	}
	if report.EpochLoss[len(report.EpochLoss)-1] >= report.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", report.EpochLoss)
	}
	pmmMetrics := Evaluate(m, testBuilder, eval)
	randMetrics := EvaluateRandomK(rng.New(7), testBuilder, eval, 8)
	t.Logf("PMM:    %v", pmmMetrics)
	t.Logf("Rand.8: %v", randMetrics)
	if pmmMetrics.F1 < randMetrics.F1*1.5 {
		t.Fatalf("PMM F1 %.3f does not beat Rand.8 F1 %.3f by 1.5x", pmmMetrics.F1, randMetrics.F1)
	}
	if pmmMetrics.Jaccard <= randMetrics.Jaccard {
		t.Fatalf("PMM Jaccard %.3f <= Rand.8 %.3f", pmmMetrics.Jaccard, randMetrics.Jaccard)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(t, 4, 60, 300)
	if ds.Len() == 0 {
		t.Skip("no examples")
	}
	m := NewModel(rng.New(3), DefaultConfig(), BuildVocab(testKernel))
	m.Cfg.Threshold = 0.42
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg.Threshold != 0.42 || m2.Cfg.Dim != m.Cfg.Dim {
		t.Fatalf("config lost: %+v", m2.Cfg)
	}
	ex := ds.Examples[0]
	g := testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	a, b := m.Forward(g), m2.Forward(g)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output %d differs after round trip: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage\n"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestFreezeAllowsConcurrentInference(t *testing.T) {
	ds := smallDataset(t, 4, 60, 400)
	if ds.Len() == 0 {
		t.Skip("no examples")
	}
	m := NewModel(rng.New(4), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	ex := ds.Examples[0]
	g := testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				m.Predict(g)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestMetricsArithmetic(t *testing.T) {
	var mt Metrics
	pred := map[prog.GlobalSlot]bool{{Call: 0, Slot: 0}: true, {Call: 0, Slot: 1}: true}
	label := map[prog.GlobalSlot]bool{{Call: 0, Slot: 1}: true, {Call: 0, Slot: 2}: true}
	mt.accumulate(pred, label)
	mt.finish()
	if mt.Precision != 0.5 || mt.Recall != 0.5 {
		t.Fatalf("P/R = %v/%v", mt.Precision, mt.Recall)
	}
	if mt.F1 != 0.5 {
		t.Fatalf("F1 = %v", mt.F1)
	}
	if mt.Jaccard != 1.0/3.0 {
		t.Fatalf("Jaccard = %v", mt.Jaccard)
	}
}

func TestMetricsEmptySets(t *testing.T) {
	var mt Metrics
	mt.accumulate(map[prog.GlobalSlot]bool{}, map[prog.GlobalSlot]bool{})
	mt.finish()
	if mt.F1 != 0 || mt.Precision != 0 {
		t.Fatal("empty sets should score zero")
	}
}

func TestHashStringStableAndBounded(t *testing.T) {
	a := hashString("sendmsg$inet", 128)
	b := hashString("sendmsg$inet", 128)
	if a != b {
		t.Fatal("hash unstable")
	}
	for _, s := range []string{"a", "open", "ctl$kvm_3", ""} {
		h := hashString(s, 64)
		if h < 0 || h >= 64 {
			t.Fatalf("hash out of range: %d", h)
		}
	}
}

func BenchmarkForward(b *testing.B) {
	ds := smallDataset(b, 4, 60, 500)
	if ds.Len() == 0 {
		b.Skip("no examples")
	}
	m := NewModel(rng.New(5), DefaultConfig(), BuildVocab(testKernel))
	m.Freeze()
	ex := ds.Examples[0]
	g := testBuilder.Build(ex.Prog, ex.Traces, ex.Targets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(g)
	}
}
