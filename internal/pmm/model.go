package pmm

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// Config holds the model hyperparameters (the subject of §5.1's
// hyperparameter search).
type Config struct {
	// Dim is the hidden width of every component.
	Dim int
	// Layers is the number of message-passing rounds.
	Layers int
	// CallBuckets sizes the hashed syscall-name embedding (open vocabulary
	// across kernel versions).
	CallBuckets int
	// MaxTopArg and MaxDepth cap the argument position/depth embeddings.
	MaxTopArg int
	MaxDepth  int
	// UseAttention selects the self-attention token encoder; false falls
	// back to a mean-pooled token MLP (encoder ablation).
	UseAttention bool
	// Threshold is the MUTATE decision threshold on the sigmoid output;
	// tuned on the validation split.
	Threshold float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Dim:          24,
		Layers:       2,
		CallBuckets:  128,
		MaxTopArg:    8,
		MaxDepth:     6,
		UseAttention: true,
		Threshold:    0.5,
	}
}

// Model is the Program Mutation Model.
type Model struct {
	Cfg   Config
	Vocab *Vocab

	// θ_TRANSFORMER: token encoder.
	tokEmb  *nn.Embedding
	tokAttn *nn.SelfAttention
	tokMLP  *nn.MLP

	// θ_Emb: vertex and edge feature embeddings.
	kindEmb   *nn.Embedding // vertex kind
	callEmb   *nn.Embedding // hashed syscall variant name
	typeEmb   *nn.Embedding // argument type kind
	topEmb    *nn.Embedding // top-level argument position
	depthEmb  *nn.Embedding // nesting depth
	absentEmb *nn.Embedding // 0 = present, 1 = absent

	// θ_GNN: per-layer, per-edge-kind, per-direction message transforms.
	edgeW [][]*nn.Linear // [layer][edgeKind*2]
	selfW []*nn.Linear
	norms []*nn.LayerNorm

	// Head: scores [h_arg ‖ h_targets] -> MUTATE logit.
	head *nn.MLP
}

// NewModel builds a randomly initialized model.
func NewModel(r *rng.Rand, cfg Config, vocab *Vocab) *Model {
	d := cfg.Dim
	m := &Model{
		Cfg:       cfg,
		Vocab:     vocab,
		tokEmb:    nn.NewEmbedding(r, vocab.Size(), d),
		tokAttn:   nn.NewSelfAttention(r, d),
		tokMLP:    nn.NewMLP(r, d, d),
		kindEmb:   nn.NewEmbedding(r, 5, d),
		callEmb:   nn.NewEmbedding(r, cfg.CallBuckets, d),
		typeEmb:   nn.NewEmbedding(r, 10, d),
		topEmb:    nn.NewEmbedding(r, cfg.MaxTopArg+1, d),
		depthEmb:  nn.NewEmbedding(r, cfg.MaxDepth+1, d),
		absentEmb: nn.NewEmbedding(r, 2, d),
		head:      nn.NewMLP(r, 3*d, d, 1),
	}
	for l := 0; l < cfg.Layers; l++ {
		var kinds []*nn.Linear
		for k := 0; k < qgraph.NumEdgeKinds*2; k++ {
			kinds = append(kinds, nn.NewLinear(r, d, d))
		}
		m.edgeW = append(m.edgeW, kinds)
		m.selfW = append(m.selfW, nn.NewLinear(r, d, d))
		m.norms = append(m.norms, nn.NewLayerNorm(d))
	}
	return m
}

// Params returns the named parameter map (for optimizers and checkpoints).
func (m *Model) Params() map[string]*nn.Tensor {
	params := map[string]*nn.Tensor{}
	add := func(prefix string, l nn.Layer) {
		for i, p := range l.Params() {
			params[fmt.Sprintf("%s.%d", prefix, i)] = p
		}
	}
	add("tok_emb", m.tokEmb)
	add("tok_attn", m.tokAttn)
	add("tok_mlp", m.tokMLP)
	add("kind_emb", m.kindEmb)
	add("call_emb", m.callEmb)
	add("type_emb", m.typeEmb)
	add("top_emb", m.topEmb)
	add("depth_emb", m.depthEmb)
	add("absent_emb", m.absentEmb)
	for l := range m.edgeW {
		for k, lin := range m.edgeW[l] {
			add(fmt.Sprintf("edge.%d.%d", l, k), lin)
		}
		add(fmt.Sprintf("self.%d", l), m.selfW[l])
		add(fmt.Sprintf("norm.%d", l), m.norms[l])
	}
	add("head", m.head)
	return params
}

// ParamList returns the parameters in stable order for the optimizer.
func (m *Model) ParamList() []*nn.Tensor {
	params := m.Params()
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*nn.Tensor, len(names))
	for i, n := range names {
		out[i] = params[n]
	}
	return out
}

// Freeze disables gradient tracking on all parameters (inference mode);
// forward passes then record no tape and are safe for concurrent use.
func (m *Model) Freeze() {
	for _, p := range m.Params() {
		p.UnrequireGrad()
	}
}

// encodeBlock embeds a block's token sequence into a (1, Dim) tensor.
func (m *Model) encodeBlock(tokens []string) *nn.Tensor {
	ids := m.Vocab.Encode(tokens)
	if len(ids) == 0 {
		ids = []int{UnkID}
	}
	emb := m.tokEmb.Forward(ids)
	if m.Cfg.UseAttention {
		emb = m.tokAttn.Forward(emb)
	}
	return m.tokMLP.Forward(nn.MeanRows(emb))
}

// Forward computes MUTATE logits for every argument vertex of the graph.
// The returned tensor has shape (len(g.ArgVertices), 1).
func (m *Model) Forward(g *qgraph.Graph) *nn.Tensor {
	n := len(g.Vertices)
	// Initial vertex states.
	rows := make([]*nn.Tensor, n)
	var targetIdx []int
	for vi := range g.Vertices {
		v := &g.Vertices[vi]
		kind := m.kindEmb.Forward([]int{int(v.Kind)})
		var h *nn.Tensor
		switch v.Kind {
		case qgraph.VSyscall:
			h = nn.Add(kind, m.callEmb.Forward([]int{hashString(v.Name, m.Cfg.CallBuckets)}))
		case qgraph.VArg:
			top := v.TopArg
			if top > m.Cfg.MaxTopArg {
				top = m.Cfg.MaxTopArg
			}
			depth := v.Depth
			if depth > m.Cfg.MaxDepth {
				depth = m.Cfg.MaxDepth
			}
			absent := 0
			if v.Absent {
				absent = 1
			}
			h = nn.Add(kind, m.typeEmb.Forward([]int{int(v.TypeKind)}))
			h = nn.Add(h, m.topEmb.Forward([]int{top}))
			h = nn.Add(h, m.depthEmb.Forward([]int{depth}))
			h = nn.Add(h, m.absentEmb.Forward([]int{absent}))
			if len(v.Tokens) > 0 {
				// Access-path tokens share the kernel token embedding.
				h = nn.Add(h, m.encodeBlock(v.Tokens))
			}
		default:
			h = nn.Add(kind, m.encodeBlock(v.Tokens))
			if v.Kind == qgraph.VTarget {
				targetIdx = append(targetIdx, vi)
			}
		}
		rows[vi] = h
	}
	state := nn.ConcatRows(rows)

	// Pre-index edges by kind+direction once.
	type edgeList struct{ src, dst []int }
	buckets := make([]edgeList, qgraph.NumEdgeKinds*2)
	for _, e := range g.Edges {
		k := int(e.Kind)
		buckets[k].src = append(buckets[k].src, e.From)
		buckets[k].dst = append(buckets[k].dst, e.To)
		rk := k + qgraph.NumEdgeKinds
		buckets[rk].src = append(buckets[rk].src, e.To)
		buckets[rk].dst = append(buckets[rk].dst, e.From)
	}

	// Message passing.
	for l := 0; l < m.Cfg.Layers; l++ {
		agg := m.selfW[l].Forward(state)
		for k := range buckets {
			if len(buckets[k].src) == 0 {
				continue
			}
			msgs := m.edgeW[l][k].Forward(nn.Gather(state, buckets[k].src))
			agg = nn.Add(agg, nn.ScatterMean(msgs, buckets[k].dst, n))
		}
		state = m.norms[l].Forward(nn.Add(state, nn.ReLU(agg)))
	}

	// Pairwise readout: score every (argument, target) pair and keep each
	// argument's best match. This lets the head align an argument's
	// position features directly against the register/offset tokens of the
	// specific target block that mentions them, instead of a diluted mean
	// over all targets.
	args := nn.Gather(state, g.ArgVertices)
	nArgs := len(g.ArgVertices)
	if len(targetIdx) == 0 {
		// No desired target: score arguments against a zero context.
		zero := nn.New(nArgs, 2*m.Cfg.Dim)
		return m.head.Forward(nn.Concat(args, zero))
	}
	tgts := nn.Gather(state, targetIdx)
	bigArg := nn.RepeatEachRow(args, len(targetIdx))
	bigTgt := nn.TileRows(tgts, nArgs)
	// The elementwise product gives the head a direct similarity channel
	// between an argument's access-path embedding and the target context.
	prod := nn.Mul(bigArg, bigTgt)
	pairScores := m.head.Forward(nn.Concat(bigArg, bigTgt, prod))
	return nn.MaxPerGroup(pairScores, nArgs, len(targetIdx))
}

// Predict returns the slots whose MUTATE probability exceeds the decision
// threshold, sorted by decreasing probability, along with all per-slot
// probabilities. If nothing crosses the threshold, the single
// highest-probability slot is returned (the fuzzer always needs a
// localization).
func (m *Model) Predict(g *qgraph.Graph) ([]prog.GlobalSlot, []float64) {
	if len(g.ArgVertices) == 0 {
		return nil, nil
	}
	logits := m.Forward(g)
	probs := make([]float64, len(g.ArgVertices))
	var pickedIdx []int
	best, bestP := 0, -1.0
	for i := range probs {
		probs[i] = sigmoid(logits.Data[i])
		if probs[i] > bestP {
			best, bestP = i, probs[i]
		}
		if probs[i] >= m.Cfg.Threshold {
			pickedIdx = append(pickedIdx, i)
		}
	}
	if len(pickedIdx) == 0 {
		pickedIdx = append(pickedIdx, best)
	}
	sort.SliceStable(pickedIdx, func(a, b int) bool {
		return probs[pickedIdx[a]] > probs[pickedIdx[b]]
	})
	picked := make([]prog.GlobalSlot, len(pickedIdx))
	for i, idx := range pickedIdx {
		picked[i] = g.Slots[idx]
	}
	return picked, probs
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Save writes config, vocabulary and weights.
func (m *Model) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "snowplow-pmm v1 dim=%d layers=%d callbuckets=%d maxtop=%d maxdepth=%d attn=%t threshold=%g\n",
		m.Cfg.Dim, m.Cfg.Layers, m.Cfg.CallBuckets, m.Cfg.MaxTopArg, m.Cfg.MaxDepth, m.Cfg.UseAttention, m.Cfg.Threshold); err != nil {
		return err
	}
	if err := m.Vocab.Save(w); err != nil {
		return err
	}
	return nn.SaveParams(w, m.Params())
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var cfg Config
	var attn bool
	// Read the single header line byte by byte (the vocab section follows
	// immediately and uses its own scanner).
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "snowplow-pmm v1 dim=%d layers=%d callbuckets=%d maxtop=%d maxdepth=%d attn=%t threshold=%g",
		&cfg.Dim, &cfg.Layers, &cfg.CallBuckets, &cfg.MaxTopArg, &cfg.MaxDepth, &attn, &cfg.Threshold); err != nil {
		return nil, fmt.Errorf("pmm: bad model header %q: %w", line, err)
	}
	cfg.UseAttention = attn
	vocab, err := loadVocabFrom(r)
	if err != nil {
		return nil, err
	}
	m := NewModel(rng.New(0), cfg, vocab)
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

func readLine(r io.Reader) (string, error) {
	var buf []byte
	one := make([]byte, 1)
	for {
		if _, err := r.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(buf), nil
		}
		buf = append(buf, one[0])
	}
}

// loadVocabFrom reads the vocab section without consuming past its end.
func loadVocabFrom(r io.Reader) (*Vocab, error) {
	header, err := readLine(r)
	if err != nil {
		return nil, err
	}
	var size int
	if _, err := fmt.Sscanf(header, "snowplow-vocab v1 size=%d", &size); err != nil {
		return nil, fmt.Errorf("pmm: bad vocab header %q", header)
	}
	v := &Vocab{ids: make(map[string]int, size)}
	for i := 0; i < size; i++ {
		tok, err := readLine(r)
		if err != nil {
			return nil, err
		}
		v.ids[tok] = len(v.tokens)
		v.tokens = append(v.tokens, tok)
	}
	if len(v.tokens) == 0 || v.tokens[0] != "<unk>" {
		return nil, fmt.Errorf("pmm: vocab missing <unk> sentinel")
	}
	return v, nil
}
