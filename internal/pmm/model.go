package pmm

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// Config holds the model hyperparameters (the subject of §5.1's
// hyperparameter search).
type Config struct {
	// Dim is the hidden width of every component.
	Dim int
	// Layers is the number of message-passing rounds.
	Layers int
	// CallBuckets sizes the hashed syscall-name embedding (open vocabulary
	// across kernel versions).
	CallBuckets int
	// MaxTopArg and MaxDepth cap the argument position/depth embeddings.
	MaxTopArg int
	MaxDepth  int
	// UseAttention selects the self-attention token encoder; false falls
	// back to a mean-pooled token MLP (encoder ablation).
	UseAttention bool
	// Threshold is the MUTATE decision threshold on the sigmoid output;
	// tuned on the validation split.
	Threshold float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Dim:          24,
		Layers:       2,
		CallBuckets:  128,
		MaxTopArg:    8,
		MaxDepth:     6,
		UseAttention: true,
		Threshold:    0.5,
	}
}

// Model is the Program Mutation Model.
type Model struct {
	Cfg   Config
	Vocab *Vocab

	// θ_TRANSFORMER: token encoder.
	tokEmb  *nn.Embedding
	tokAttn *nn.SelfAttention
	tokMLP  *nn.MLP

	// θ_Emb: vertex and edge feature embeddings.
	kindEmb   *nn.Embedding // vertex kind
	callEmb   *nn.Embedding // hashed syscall variant name
	typeEmb   *nn.Embedding // argument type kind
	topEmb    *nn.Embedding // top-level argument position
	depthEmb  *nn.Embedding // nesting depth
	absentEmb *nn.Embedding // 0 = present, 1 = absent

	// θ_GNN: per-layer, per-edge-kind, per-direction message transforms.
	edgeW [][]*nn.Linear // [layer][edgeKind*2]
	selfW []*nn.Linear
	norms []*nn.LayerNorm

	// Head: scores [h_arg ‖ h_targets] -> MUTATE logit.
	head *nn.MLP

	// pool backs the allocation-free inference path. Pool is internally
	// synchronized, so concurrent Predict/PredictBatch calls on a frozen
	// model share it safely.
	pool *nn.Pool

	// fused routes frozen forwards through the fused inference kernels
	// (EnableFused); quant holds the int8 registry after Quantize or a
	// mixed-precision checkpoint load. Both paths are bit-identical to the
	// plain pooled forward — see internal/nn's fused.go and quant.go.
	fused bool
	quant *nn.Quantized
}

// PoolStats snapshots the inference tensor-pool traffic counters (the
// observability layer's pool-hit-rate gauges read these).
func (m *Model) PoolStats() nn.PoolStats {
	return m.pool.Stats()
}

// InferProfile snapshots the fused/quantized kernel counters (and, under
// nn.SetKernelProfiling, per-op kernel time) accumulated by this model's
// inference pool.
func (m *Model) InferProfile() nn.InferProfile {
	return m.pool.Profile()
}

// Fused reports whether the fused inference kernels are enabled.
func (m *Model) Fused() bool { return m.fused }

// Quantized returns the int8 weight registry, or nil on a float64 model.
func (m *Model) Quantized() *nn.Quantized { return m.quant }

// linears visits every Linear layer in the model.
func (m *Model) linears(visit func(*nn.Linear)) {
	for _, l := range []*nn.Linear{m.tokAttn.Q, m.tokAttn.K, m.tokAttn.V, m.tokAttn.Out} {
		visit(l)
	}
	for _, l := range m.tokMLP.Layers {
		visit(l)
	}
	for li := range m.edgeW {
		for _, l := range m.edgeW[li] {
			visit(l)
		}
		visit(m.selfW[li])
	}
	for _, l := range m.head.Layers {
		visit(l)
	}
}

// EnableFused switches frozen forwards to the fused inference kernels,
// precomputing each Linear's transposed-weight cache. Requires a frozen
// model; outputs stay bit-identical to the unfused path.
func (m *Model) EnableFused() {
	if !m.frozen() {
		panic("pmm: EnableFused requires a frozen model")
	}
	m.linears(func(l *nn.Linear) { l.FreezeFused() })
	m.fused = true
}

// Quantize builds the per-tensor int8 encoding of every large parameter
// (linear weights and embedding tables; nn.QuantMinSize policy) and rewrites
// the float64 weights with their dequantized values. After Quantize the
// float64 and int8 kernels compute from identical weight values, so model
// outputs are reproducible per seed regardless of which path serves them.
// Requires a frozen model. Call at most once per checkpoint.
func (m *Model) Quantize() error {
	if !m.frozen() {
		panic("pmm: Quantize requires a frozen model")
	}
	params := m.Params()
	qz := nn.QuantizeParams(params, nn.QuantMinSize)
	if err := qz.ApplyDequantized(params); err != nil {
		return err
	}
	m.quant = qz
	if m.fused {
		// Transposed-weight caches were built from the pre-quantization
		// weights; rebuild them from the dequantized values.
		m.linears(func(l *nn.Linear) { l.FreezeFused() })
	}
	return nil
}

// NewModel builds a randomly initialized model.
func NewModel(r *rng.Rand, cfg Config, vocab *Vocab) *Model {
	d := cfg.Dim
	m := &Model{
		Cfg:       cfg,
		Vocab:     vocab,
		tokEmb:    nn.NewEmbedding(r, vocab.Size(), d),
		tokAttn:   nn.NewSelfAttention(r, d),
		tokMLP:    nn.NewMLP(r, d, d),
		kindEmb:   nn.NewEmbedding(r, 5, d),
		callEmb:   nn.NewEmbedding(r, cfg.CallBuckets, d),
		typeEmb:   nn.NewEmbedding(r, 10, d),
		topEmb:    nn.NewEmbedding(r, cfg.MaxTopArg+1, d),
		depthEmb:  nn.NewEmbedding(r, cfg.MaxDepth+1, d),
		absentEmb: nn.NewEmbedding(r, 2, d),
		head:      nn.NewMLP(r, 3*d, d, 1),
		pool:      nn.NewPool(),
	}
	for l := 0; l < cfg.Layers; l++ {
		var kinds []*nn.Linear
		for k := 0; k < qgraph.NumEdgeKinds*2; k++ {
			kinds = append(kinds, nn.NewLinear(r, d, d))
		}
		m.edgeW = append(m.edgeW, kinds)
		m.selfW = append(m.selfW, nn.NewLinear(r, d, d))
		m.norms = append(m.norms, nn.NewLayerNorm(d))
	}
	return m
}

// Params returns the named parameter map (for optimizers and checkpoints).
func (m *Model) Params() map[string]*nn.Tensor {
	params := map[string]*nn.Tensor{}
	add := func(prefix string, l nn.Layer) {
		for i, p := range l.Params() {
			params[fmt.Sprintf("%s.%d", prefix, i)] = p
		}
	}
	add("tok_emb", m.tokEmb)
	add("tok_attn", m.tokAttn)
	add("tok_mlp", m.tokMLP)
	add("kind_emb", m.kindEmb)
	add("call_emb", m.callEmb)
	add("type_emb", m.typeEmb)
	add("top_emb", m.topEmb)
	add("depth_emb", m.depthEmb)
	add("absent_emb", m.absentEmb)
	for l := range m.edgeW {
		for k, lin := range m.edgeW[l] {
			add(fmt.Sprintf("edge.%d.%d", l, k), lin)
		}
		add(fmt.Sprintf("self.%d", l), m.selfW[l])
		add(fmt.Sprintf("norm.%d", l), m.norms[l])
	}
	add("head", m.head)
	return params
}

// ParamList returns the parameters in stable order for the optimizer.
func (m *Model) ParamList() []*nn.Tensor {
	params := m.Params()
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*nn.Tensor, len(names))
	for i, n := range names {
		out[i] = params[n]
	}
	return out
}

// Freeze disables gradient tracking on all parameters (inference mode);
// forward passes then record no tape and are safe for concurrent use.
func (m *Model) Freeze() {
	for _, p := range m.Params() {
		p.UnrequireGrad()
	}
}

// newAliasedModel builds a replica that shares the master's weights (every
// parameter's Data slice is aliased) but owns private gradient storage.
// Data-parallel training workers forward/backward on replicas so tapes and
// gradients never collide, while a master Adam step instantly updates every
// replica. The caller must not use the replica while the master's weights
// are being written.
func newAliasedModel(m *Model) *Model {
	rep := NewModel(rng.New(0), m.Cfg, m.Vocab)
	src := m.Params()
	for name, p := range rep.Params() {
		p.Data = src[name].Data
	}
	return rep
}

// newEvalShadow builds a frozen weight-aliased replica for validation and
// threshold tuning during training: it sees every weight update of the
// master immediately and, being frozen, runs through the pooled inference
// path, which is bit-identical to the training-ops forward.
func newEvalShadow(m *Model) *Model {
	shadow := newAliasedModel(m)
	shadow.Freeze()
	return shadow
}

// encodeBlockOps embeds a block's token sequence into a (1, Dim) tensor
// through the given op set.
func (m *Model) encodeBlockOps(ops nn.Ops, tokens []string) *nn.Tensor {
	ids := m.Vocab.Encode(tokens)
	if len(ids) == 0 {
		ids = []int{UnkID}
	}
	emb := m.tokEmb.ForwardOps(ops, ids)
	if m.Cfg.UseAttention {
		att := m.tokAttn.ForwardOps(ops, emb)
		ops.Recycle(emb)
		emb = att
	}
	mean := ops.MeanRows(emb)
	ops.Recycle(emb)
	out := m.tokMLP.ForwardOps(ops, mean)
	ops.Recycle(mean)
	return out
}

// Forward computes MUTATE logits for every argument vertex of the graph.
// The returned tensor has shape (len(g.ArgVertices), 1).
func (m *Model) Forward(g *qgraph.Graph) *nn.Tensor {
	return m.forwardMany(nn.TrainOps{}, []*qgraph.Graph{g})[0]
}

// forwardMany runs the GNN over a batch of query graphs packed into one
// union graph: vertex rows are concatenated with per-graph offsets, edges
// are bucketed with offset indices, and one shared message-passing pass
// covers the whole batch. Because every kernel in the pass (MatMul,
// LayerNorm, ScatterMean, ...) computes each output row from fixed inputs
// in a fixed order, each graph's rows come out bit-identical to a
// single-graph forward — batching changes throughput, never answers.
// The readout stays per graph (argument/target counts differ). Returned
// tensor i holds graph i's logits, shape (len(gs[i].ArgVertices), 1).
//
// Under an Infer op set every intermediate is recycled as soon as it is
// dead, so the pass runs in a near-constant set of pooled slabs.
func (m *Model) forwardMany(ops nn.Ops, gs []*qgraph.Graph) []*nn.Tensor {
	// Vertex offsets of each graph within the union.
	offsets := make([]int, len(gs))
	total := 0
	for gi, g := range gs {
		offsets[gi] = total
		total += len(g.Vertices)
	}

	// addConsume folds b into acc, recycling both inputs.
	addConsume := func(acc, b *nn.Tensor) *nn.Tensor {
		out := ops.Add(acc, b)
		ops.Recycle(acc, b)
		return out
	}

	// Initial vertex states for every graph, in batch order. Under the
	// fused kernels the whole construction is batched by vertex class
	// (vertexStateFused); otherwise each vertex runs its own embedding
	// chain. Both produce bit-identical rows.
	targetIdx := make([][]int, len(gs)) // union indices of VTarget vertices
	var state *nn.Tensor
	if f, ok := ops.(nn.FusedOps); ok && f.FusionEnabled() {
		state = m.vertexStateFused(f, gs, offsets, total, targetIdx)
	} else {
		rows := make([]*nn.Tensor, 0, total)
		for gi, g := range gs {
			off := offsets[gi]
			for vi := range g.Vertices {
				v := &g.Vertices[vi]
				h := m.kindEmb.ForwardOps(ops, []int{int(v.Kind)})
				switch v.Kind {
				case qgraph.VSyscall:
					h = addConsume(h, m.callEmb.ForwardOps(ops, []int{hashString(v.Name, m.Cfg.CallBuckets)}))
				case qgraph.VArg:
					top := v.TopArg
					if top > m.Cfg.MaxTopArg {
						top = m.Cfg.MaxTopArg
					}
					depth := v.Depth
					if depth > m.Cfg.MaxDepth {
						depth = m.Cfg.MaxDepth
					}
					absent := 0
					if v.Absent {
						absent = 1
					}
					h = addConsume(h, m.typeEmb.ForwardOps(ops, []int{int(v.TypeKind)}))
					h = addConsume(h, m.topEmb.ForwardOps(ops, []int{top}))
					h = addConsume(h, m.depthEmb.ForwardOps(ops, []int{depth}))
					h = addConsume(h, m.absentEmb.ForwardOps(ops, []int{absent}))
					if len(v.Tokens) > 0 {
						// Access-path tokens share the kernel token embedding.
						h = addConsume(h, m.encodeBlockOps(ops, v.Tokens))
					}
				default:
					h = addConsume(h, m.encodeBlockOps(ops, v.Tokens))
					if v.Kind == qgraph.VTarget {
						targetIdx[gi] = append(targetIdx[gi], off+vi)
					}
				}
				rows = append(rows, h)
			}
		}
		state = ops.ConcatRows(rows)
		ops.Recycle(rows...)
	}

	// Pre-index union edges by kind+direction once. Edges never cross
	// graph boundaries, so message passing cannot mix graphs.
	type edgeList struct{ src, dst []int }
	buckets := make([]edgeList, qgraph.NumEdgeKinds*2)
	for gi, g := range gs {
		off := offsets[gi]
		for _, e := range g.Edges {
			k := int(e.Kind)
			buckets[k].src = append(buckets[k].src, off+e.From)
			buckets[k].dst = append(buckets[k].dst, off+e.To)
			rk := k + qgraph.NumEdgeKinds
			buckets[rk].src = append(buckets[rk].src, off+e.To)
			buckets[rk].dst = append(buckets[rk].dst, off+e.From)
		}
	}

	// Message passing over the union graph. Under the fused kernels the
	// per-bucket aggregation accumulates in place and the activation clamps
	// in place — the same per-element sums and clamps, minus one arena
	// tensor and one memory pass per step.
	fusedMP, mpOn := ops.(nn.FusedOps)
	mpOn = mpOn && fusedMP.FusionEnabled()
	for l := 0; l < m.Cfg.Layers; l++ {
		agg := m.selfW[l].ForwardOps(ops, state)
		for k := range buckets {
			if len(buckets[k].src) == 0 {
				continue
			}
			srcRows := ops.Gather(state, buckets[k].src)
			msgs := m.edgeW[l][k].ForwardOps(ops, srcRows)
			ops.Recycle(srcRows)
			if mpOn {
				fusedMP.ScatterMeanInto(agg, msgs, buckets[k].dst)
			} else {
				agg = addConsume(agg, ops.ScatterMean(msgs, buckets[k].dst, total))
			}
			ops.Recycle(msgs)
		}
		var act *nn.Tensor
		if mpOn {
			fusedMP.ReLUInPlace(agg)
			act = agg
		} else {
			act = ops.ReLU(agg)
			ops.Recycle(agg)
		}
		next := m.norms[l].ForwardAddOps(ops, state, act)
		ops.Recycle(act, state)
		state = next
	}

	// Pairwise readout, per graph: score every (argument, target) pair and
	// keep each argument's best match. This lets the head align an
	// argument's position features directly against the register/offset
	// tokens of the specific target block that mentions them, instead of a
	// diluted mean over all targets.
	outs := make([]*nn.Tensor, len(gs))
	for gi, g := range gs {
		off := offsets[gi]
		nArgs := len(g.ArgVertices)
		argIdx := make([]int, nArgs)
		for i, a := range g.ArgVertices {
			argIdx[i] = off + a
		}
		args := ops.Gather(state, argIdx)
		if len(targetIdx[gi]) == 0 {
			// No desired target: score arguments against a zero context.
			zero := ops.Zeros(nArgs, 2*m.Cfg.Dim)
			cat := ops.Concat(args, zero)
			ops.Recycle(args, zero)
			outs[gi] = m.head.ForwardOps(ops, cat)
			ops.Recycle(cat)
			continue
		}
		tgts := ops.Gather(state, targetIdx[gi])
		bigArg := ops.RepeatEachRow(args, len(targetIdx[gi]))
		bigTgt := ops.TileRows(tgts, nArgs)
		ops.Recycle(args, tgts)
		// The elementwise product gives the head a direct similarity channel
		// between an argument's access-path embedding and the target context.
		prod := ops.Mul(bigArg, bigTgt)
		cat := ops.Concat(bigArg, bigTgt, prod)
		ops.Recycle(bigArg, bigTgt, prod)
		pairScores := m.head.ForwardOps(ops, cat)
		ops.Recycle(cat)
		outs[gi] = ops.MaxPerGroup(pairScores, nArgs, len(targetIdx[gi]))
		ops.Recycle(pairScores)
	}
	ops.Recycle(state)
	return outs
}

// vertexStateFused builds the initial union vertex-state matrix through the
// fused kernels. Instead of one embedding chain and one token-encoder pass
// per vertex, it batches every step across vertices of the same shape: all
// token blocks run through a single ragged-attention encoder (one big
// gather, batched Q/K/V/Out projections, per-block attention inside the
// kernel), every embedding table is gathered once for all its consumers,
// and the per-class sums apply the same per-row add order as the per-vertex
// chain. Every row is bit-identical to the unfused construction — the
// batched kernels are row-independent — at a small fraction of the kernel
// launches. Also collects targetIdx (union indices of VTarget vertices).
func (m *Model) vertexStateFused(f nn.FusedOps, gs []*qgraph.Graph, offsets []int, total int, targetIdx [][]int) *nn.Tensor {
	ar := f.Arena()

	// One walk over the union: ragged token-block bounds plus per-class
	// index lists. Arg vertices split on token presence so each class has a
	// uniform add chain.
	blockRow := make([]int, total)
	var flat []int
	bounds := []int{0}
	var (
		sysU, sysCall                                        []int
		argU, argType, argTop, argDepth, argAbsent           []int
		argTU, argTType, argTTop, argTDepth, argTAbs, argTBl []int
		blkU, blkKind, blkBl                                 []int
	)
	for gi, g := range gs {
		off := offsets[gi]
		for vi := range g.Vertices {
			v := &g.Vertices[vi]
			u := off + vi
			blockRow[u] = -1
			needBlock := false
			switch v.Kind {
			case qgraph.VSyscall:
			case qgraph.VArg:
				needBlock = len(v.Tokens) > 0
			default:
				needBlock = true
			}
			if needBlock {
				blockRow[u] = len(bounds) - 1
				if len(v.Tokens) == 0 {
					flat = append(flat, UnkID)
				} else {
					for _, tok := range v.Tokens {
						flat = append(flat, m.Vocab.ID(tok))
					}
				}
				bounds = append(bounds, len(flat))
			}
			switch v.Kind {
			case qgraph.VSyscall:
				sysU = append(sysU, u)
				sysCall = append(sysCall, hashString(v.Name, m.Cfg.CallBuckets))
			case qgraph.VArg:
				top := v.TopArg
				if top > m.Cfg.MaxTopArg {
					top = m.Cfg.MaxTopArg
				}
				depth := v.Depth
				if depth > m.Cfg.MaxDepth {
					depth = m.Cfg.MaxDepth
				}
				absent := 0
				if v.Absent {
					absent = 1
				}
				if blockRow[u] >= 0 {
					argTU = append(argTU, u)
					argTType = append(argTType, int(v.TypeKind))
					argTTop = append(argTTop, top)
					argTDepth = append(argTDepth, depth)
					argTAbs = append(argTAbs, absent)
					argTBl = append(argTBl, blockRow[u])
				} else {
					argU = append(argU, u)
					argType = append(argType, int(v.TypeKind))
					argTop = append(argTop, top)
					argDepth = append(argDepth, depth)
					argAbsent = append(argAbsent, absent)
				}
			default:
				if v.Kind == qgraph.VTarget {
					targetIdx[gi] = append(targetIdx[gi], u)
				}
				blkU = append(blkU, u)
				blkKind = append(blkKind, int(v.Kind))
				blkBl = append(blkBl, blockRow[u])
			}
		}
	}

	// All token blocks → (numBlocks, dim) through the ragged encoder.
	var blockOuts *nn.Tensor
	if len(bounds) > 1 {
		emb := m.tokEmb.ForwardOps(f, flat)
		if m.Cfg.UseAttention {
			att := m.tokAttn.ForwardRaggedOps(f, emb, bounds)
			ar.Recycle(emb)
			emb = att
		}
		mean := f.RaggedMeanRows(emb, bounds)
		ar.Recycle(emb)
		blockOuts = m.tokMLP.ForwardOps(f, mean)
		ar.Recycle(mean)
	}

	constIDs := func(id, n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = id
		}
		return ids
	}
	argChain := func(n int, typ, top, depth, absent []int) *nn.Tensor {
		h := m.kindEmb.ForwardOps(f, constIDs(int(qgraph.VArg), n))
		m.typeEmb.ForwardAddOps(f, h, typ)
		m.topEmb.ForwardAddOps(f, h, top)
		m.depthEmb.ForwardAddOps(f, h, depth)
		m.absentEmb.ForwardAddOps(f, h, absent)
		return h
	}

	// Per-class batched chains, then one permutation gather into union
	// order. Each row of cat is the same sum, in the same order, as the
	// per-vertex chain would produce.
	var parts []*nn.Tensor
	var order []int
	if len(sysU) > 0 {
		h := m.kindEmb.ForwardOps(f, constIDs(int(qgraph.VSyscall), len(sysU)))
		m.callEmb.ForwardAddOps(f, h, sysCall)
		parts = append(parts, h)
		order = append(order, sysU...)
	}
	if len(argU) > 0 {
		parts = append(parts, argChain(len(argU), argType, argTop, argDepth, argAbsent))
		order = append(order, argU...)
	}
	if len(argTU) > 0 {
		h := argChain(len(argTU), argTType, argTTop, argTDepth, argTAbs)
		f.GatherAddInto(h, blockOuts, argTBl)
		parts = append(parts, h)
		order = append(order, argTU...)
	}
	if len(blkU) > 0 {
		h := m.kindEmb.ForwardOps(f, blkKind)
		f.GatherAddInto(h, blockOuts, blkBl)
		parts = append(parts, h)
		order = append(order, blkU...)
	}
	if blockOuts != nil {
		ar.Recycle(blockOuts)
	}
	cat := f.ConcatRows(parts)
	ar.Recycle(parts...)
	perm := make([]int, total)
	for pos, u := range order {
		perm[u] = pos
	}
	state := f.Gather(cat, perm)
	ar.Recycle(cat)
	return state
}

// frozen reports whether the model's parameters are outside differentiation
// (after Freeze); only then may the pooled inference path be used.
func (m *Model) frozen() bool {
	return !m.head.Layers[0].W.RequiresGrad()
}

// Predict returns the slots whose MUTATE probability exceeds the decision
// threshold, sorted by decreasing probability, along with all per-slot
// probabilities. If nothing crosses the threshold, the single
// highest-probability slot is returned (the fuzzer always needs a
// localization).
func (m *Model) Predict(g *qgraph.Graph) ([]prog.GlobalSlot, []float64) {
	slots, probs := m.PredictBatch([]*qgraph.Graph{g})
	return slots[0], probs[0]
}

// PredictBatch runs Predict over a batch of graphs in one union-graph
// forward pass (see forwardMany). Results are positional: slots[i] and
// probs[i] correspond to gs[i], and each is bit-identical to a standalone
// Predict(gs[i]) call. On a frozen model the pass runs through the pooled
// allocation-free path; otherwise it falls back to the autodiff ops.
func (m *Model) PredictBatch(gs []*qgraph.Graph) ([][]prog.GlobalSlot, [][]float64) {
	slots := make([][]prog.GlobalSlot, len(gs))
	probs := make([][]float64, len(gs))
	// Graphs without argument vertices have no slots to localize; skip them.
	live := make([]*qgraph.Graph, 0, len(gs))
	liveIdx := make([]int, 0, len(gs))
	for i, g := range gs {
		if g != nil && len(g.ArgVertices) > 0 {
			live = append(live, g)
			liveIdx = append(liveIdx, i)
		}
	}
	if len(live) == 0 {
		return slots, probs
	}
	if m.frozen() {
		in, done := m.inferOps()
		outs := m.forwardMany(in, live)
		for li, out := range outs {
			slots[liveIdx[li]], probs[liveIdx[li]] = m.pickSlots(live[li], out.Data)
		}
		done()
	} else {
		outs := m.forwardMany(nn.TrainOps{}, live)
		for li, out := range outs {
			slots[liveIdx[li]], probs[liveIdx[li]] = m.pickSlots(live[li], out.Data)
		}
	}
	return slots, probs
}

// inferOps picks the inference op set for a frozen forward: quantized
// kernels when an int8 registry is live and fusion is on, fused float64
// kernels under EnableFused alone, the plain pooled path otherwise. All
// three produce bit-identical outputs (quantization rewrote the float64
// weights with dequantized values), so the choice is purely a speed knob.
func (m *Model) inferOps() (nn.Ops, func()) {
	switch {
	case m.quant != nil && m.fused:
		qi := nn.NewQuantInfer(m.pool, m.quant)
		return qi, qi.Close
	case m.fused:
		in := nn.NewInferFused(m.pool)
		return in, in.Close
	default:
		in := nn.NewInfer(m.pool)
		return in, in.Close
	}
}

// pickSlots converts per-argument logits into the thresholded,
// probability-sorted slot list described on Predict.
func (m *Model) pickSlots(g *qgraph.Graph, logits []float64) ([]prog.GlobalSlot, []float64) {
	probs := make([]float64, len(g.ArgVertices))
	var pickedIdx []int
	best, bestP := 0, -1.0
	for i := range probs {
		probs[i] = sigmoid(logits[i])
		if probs[i] > bestP {
			best, bestP = i, probs[i]
		}
		if probs[i] >= m.Cfg.Threshold {
			pickedIdx = append(pickedIdx, i)
		}
	}
	if len(pickedIdx) == 0 {
		pickedIdx = append(pickedIdx, best)
	}
	sort.SliceStable(pickedIdx, func(a, b int) bool {
		return probs[pickedIdx[a]] > probs[pickedIdx[b]]
	})
	picked := make([]prog.GlobalSlot, len(pickedIdx))
	for i, idx := range pickedIdx {
		picked[i] = g.Slots[idx]
	}
	return picked, probs
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Save writes config, vocabulary and weights.
func (m *Model) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "snowplow-pmm v1 dim=%d layers=%d callbuckets=%d maxtop=%d maxdepth=%d attn=%t threshold=%g\n",
		m.Cfg.Dim, m.Cfg.Layers, m.Cfg.CallBuckets, m.Cfg.MaxTopArg, m.Cfg.MaxDepth, m.Cfg.UseAttention, m.Cfg.Threshold); err != nil {
		return err
	}
	if err := m.Vocab.Save(w); err != nil {
		return err
	}
	return nn.SaveParams(w, m.Params())
}

// SaveQuantized writes config, vocabulary and mixed-precision weights: int8
// codes for quantized tensors, float64 for the rest. The encoding is
// byte-stable, so the cluster's model SHA pins the quantized form. The model
// must have been Quantized first.
func (m *Model) SaveQuantized(w io.Writer) error {
	if m.quant == nil {
		return fmt.Errorf("pmm: SaveQuantized on a model without a quantization registry")
	}
	if _, err := fmt.Fprintf(w, "snowplow-pmm v1 dim=%d layers=%d callbuckets=%d maxtop=%d maxdepth=%d attn=%t threshold=%g\n",
		m.Cfg.Dim, m.Cfg.Layers, m.Cfg.CallBuckets, m.Cfg.MaxTopArg, m.Cfg.MaxDepth, m.Cfg.UseAttention, m.Cfg.Threshold); err != nil {
		return err
	}
	if err := m.Vocab.Save(w); err != nil {
		return err
	}
	return nn.SaveQuantParams(w, m.Params(), m.quant)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var cfg Config
	var attn bool
	// Read the single header line byte by byte (the vocab section follows
	// immediately and uses its own scanner).
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "snowplow-pmm v1 dim=%d layers=%d callbuckets=%d maxtop=%d maxdepth=%d attn=%t threshold=%g",
		&cfg.Dim, &cfg.Layers, &cfg.CallBuckets, &cfg.MaxTopArg, &cfg.MaxDepth, &attn, &cfg.Threshold); err != nil {
		return nil, fmt.Errorf("pmm: bad model header %q: %w", line, err)
	}
	cfg.UseAttention = attn
	vocab, err := loadVocabFrom(r)
	if err != nil {
		return nil, err
	}
	m := NewModel(rng.New(0), cfg, vocab)
	qz, err := nn.LoadParamsAuto(r, m.Params())
	if err != nil {
		return nil, err
	}
	// A mixed-precision checkpoint arrives with the float64 weights already
	// rewritten to their dequantized values; keep the registry so frozen
	// fused forwards can serve from the int8 kernels directly.
	m.quant = qz
	return m, nil
}

func readLine(r io.Reader) (string, error) {
	var buf []byte
	one := make([]byte, 1)
	for {
		if _, err := r.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(buf), nil
		}
		buf = append(buf, one[0])
	}
}

// loadVocabFrom reads the vocab section without consuming past its end.
func loadVocabFrom(r io.Reader) (*Vocab, error) {
	header, err := readLine(r)
	if err != nil {
		return nil, err
	}
	var size int
	if _, err := fmt.Sscanf(header, "snowplow-vocab v1 size=%d", &size); err != nil {
		return nil, fmt.Errorf("pmm: bad vocab header %q", header)
	}
	v := &Vocab{ids: make(map[string]int, size)}
	for i := 0; i < size; i++ {
		tok, err := readLine(r)
		if err != nil {
			return nil, err
		}
		v.ids[tok] = len(v.tokens)
		v.tokens = append(v.tokens, tok)
	}
	if len(v.tokens) == 0 || v.tokens[0] != "<unk>" {
		return nil, fmt.Errorf("pmm: vocab missing <unk> sentinel")
	}
	return v, nil
}
