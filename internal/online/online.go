// Package online implements the continual-learning loop: a background
// retrainer that harvests the campaign's own corpus, retrains the PMM with
// the data-parallel trainer, validates the candidate against the currently
// served checkpoint, and hands the campaign engines versioned model swaps to
// hot-apply at epoch barriers.
//
// Determinism contract. Everything the swapped model depends on is a pure
// function of barrier state: retrains kick off at fixed barrier epochs
// (every Config.Every-th barrier) from the corpus in publish order at that
// barrier, with an RNG seed derived from (campaign seed, checkpoint
// version); training itself is byte-identical at any worker count (the PR-5
// trainer guarantee); and the resulting swap applies exactly Config.Lag
// barriers later. Training runs concurrently with fuzzing in wall-clock
// time — VMs are never paused — but if it has not finished by the apply
// barrier, the engine blocks in wall clock only, exactly like a barrier
// wait. A campaign with online learning therefore replays bit-identically
// per seed at any serving/training/cluster worker count, and a single-host
// fleet matches a distributed cluster swap for swap.
//
// Validation gate. A candidate is swapped in only if its validation F1 on
// the fresh harvest's held-out split is at least the incumbent model's F1 on
// the same split; otherwise the version is journaled as skipped and the
// incumbent keeps serving. Both evaluations are deterministic, so the gate
// decision is too.
package online

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// Config holds the campaign-semantic online-learning parameters: every
// field here changes what a campaign computes, so all of them travel in the
// cluster CampaignSpec and are pinned by checkpoints. Wall-clock knobs
// (training/harvest worker counts) live in Params instead — they never
// change results.
type Config struct {
	// Every is the retrain cadence in epoch barriers: a retrain kicks off
	// at every barrier whose epoch is a positive multiple of Every (unless
	// one is already in flight). Default 8.
	Every int64
	// Lag is how many barriers after its kickoff a retrain's swap applies.
	// The gap is the wall-clock window training gets to overlap with
	// fuzzing; if training is still running at the apply barrier, the
	// engine blocks (wall clock only). Default 2.
	Lag int64
	// MinCorpus is the minimum corpus size (entries) for a kickoff; smaller
	// corpora make degenerate harvests. Default 8.
	MinCorpus int
	// MutationsPerBase is the harvest width per corpus entry (see
	// dataset.Collector). Default 24.
	MutationsPerBase int
	// TrainEpochs is the per-retrain epoch budget. Default 4.
	TrainEpochs int
	// TrainBatch is the retrain minibatch size. Default 8.
	TrainBatch int
}

// Normalized resolves zero fields to their defaults.
func (c Config) Normalized() Config {
	if c.Every <= 0 {
		c.Every = 8
	}
	if c.Lag <= 0 {
		c.Lag = 2
	}
	if c.MinCorpus <= 0 {
		c.MinCorpus = 8
	}
	if c.MutationsPerBase <= 0 {
		c.MutationsPerBase = 24
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 4
	}
	if c.TrainBatch <= 0 {
		c.TrainBatch = 8
	}
	return c
}

// Params wires a Controller into one campaign engine (the single-host
// parallel loop or the cluster coordinator).
type Params struct {
	// Config is the campaign-semantic schedule; zero fields take defaults.
	Config Config
	// Kernel and An are the campaign's kernel and its control-flow
	// analysis; the harvest executes against them.
	Kernel *kernel.Kernel
	An     *cfa.Analysis
	// Seed is the campaign seed; retrain RNG streams derive from it and the
	// checkpoint version, never from wall clock.
	Seed uint64
	// Current is the model serving at version 0 (the gate incumbent). Its
	// quantization state decides the canonical serving form of every
	// swapped checkpoint: quantized campaigns re-encode candidates with
	// SaveQuantized so cluster workers and single-host servers serve
	// byte-identical weights.
	Current *pmm.Model
	// TrainWorkers and CollectWorkers are data-parallel widths for the
	// retrain and the harvest. Results are bit-identical at any value.
	TrainWorkers   int
	CollectWorkers int
	// Metrics receives the online_* instruments when non-nil.
	Metrics *obs.Registry
	// Logf receives progress lines when non-nil.
	Logf func(format string, args ...interface{})
}

// Swap is one versioned SPMV checkpoint-generation record: the outcome of a
// retrain, ready to hot-apply at its barrier. Everything except Elapsed is
// deterministic per (campaign seed, version).
type Swap struct {
	// Version is the checkpoint generation (1, 2, …; 0 is the initial
	// model).
	Version int64
	// Kickoff is the barrier epoch the retrain started at; the swap applies
	// at Kickoff+Lag.
	Kickoff int64
	// Bases and Examples size the harvest: corpus entries snapshotted and
	// labeled examples collected.
	Bases    int
	Examples int
	// NewF1 and OldF1 are the candidate's and the incumbent's validation F1
	// on the harvest's held-out split — the gate inputs.
	NewF1, OldF1 float64
	// Accepted reports the gate decision; Reason explains a skip.
	Accepted bool
	Reason   string
	// Bytes is the canonical serving-form checkpoint (SaveQuantized when
	// the campaign serves quantized weights, Save otherwise); nil when
	// skipped. Digest is the first 16 hex chars of its SHA-256 — the value
	// journaled in the SPMV record on every engine.
	Bytes  []byte
	Digest string
	// Model is Bytes loaded back: the instance a single-host engine hands
	// to serve.Server.SwapModel. Cluster workers load their own copy from
	// the pushed Bytes instead.
	Model *pmm.Model
	// Elapsed is the retrain's wall-clock time (observability only).
	Elapsed time.Duration
}

// Detail renders the swap's canonical journal payload. Single-host and
// cluster engines must journal byte-identical SPMV records, so the string is
// built here, once.
func (sw *Swap) Detail() string {
	if !sw.Accepted {
		return fmt.Sprintf("SPMV f1=%.4f base=%.4f skipped", sw.NewF1, sw.OldF1)
	}
	return fmt.Sprintf("SPMV digest=%s f1=%.4f applied", sw.Digest, sw.NewF1)
}

// KickoffDetail renders the canonical journal payload of a retrain-kickoff
// event over a corpus snapshot of the given size.
func KickoffDetail(bases int) string { return fmt.Sprintf("SPMV bases=%d", bases) }

// pendingTrain is one in-flight retrain. done is closed by the background
// goroutine after swap is populated.
type pendingTrain struct {
	version int64
	kickoff int64
	bases   int
	done    chan struct{}
	swap    *Swap
}

// instruments bundles the online_* observability handles (nil-safe).
type instruments struct {
	retrains *obs.Counter
	swaps    *obs.Counter
	skipped  *obs.Counter
	examples *obs.Counter
	trainNs  *obs.Counter
	version  *obs.Gauge
}

func newInstruments(reg *obs.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	return instruments{
		retrains: reg.Counter("online_retrains_total", "retrains", "continual-learning retrains kicked off"),
		swaps:    reg.Counter("online_swaps_total", "swaps", "model hot-swaps applied at epoch barriers"),
		skipped:  reg.Counter("online_swaps_skipped_total", "swaps", "candidate checkpoints rejected by the validation gate"),
		examples: reg.Counter("online_train_examples_total", "examples", "harvested training examples across retrains"),
		trainNs:  reg.Counter("online_train_wall_ns_total", "ns", "wall-clock time spent in background retrains"),
		version:  reg.Gauge("online_model_version", "version", "current hot-swapped checkpoint generation (0 = initial model)"),
	}
}

// Controller owns one campaign's continual-learning schedule. It is driven
// from a single reconciler goroutine (the parallel loop's barrier or the
// cluster coordinator's merge) and is not safe for concurrent driving; only
// the background retrain goroutine runs concurrently with the driver.
type Controller struct {
	cfg     Config
	p       Params
	quant   bool
	version int64 // last version handed out (kicked off)
	applied int64 // last version swapped in (or skipped) at a barrier
	cur     *pmm.Model
	pending *pendingTrain
	ins     instruments

	retrains, swaps, skips int64
}

// New builds a controller for one campaign. Params.Kernel, An and Current
// are required.
func New(p Params) (*Controller, error) {
	if p.Kernel == nil || p.An == nil {
		return nil, fmt.Errorf("online: controller requires a kernel and its analysis")
	}
	if p.Current == nil {
		return nil, fmt.Errorf("online: controller requires the initial model")
	}
	c := &Controller{
		cfg:   p.Config.Normalized(),
		p:     p,
		quant: p.Current.Quantized() != nil,
		cur:   p.Current,
		ins:   newInstruments(p.Metrics),
	}
	return c, nil
}

// Config returns the normalized schedule the controller runs.
func (c *Controller) Config() Config { return c.cfg }

// Version returns the last barrier-resolved checkpoint generation (applied
// or skipped).
func (c *Controller) Version() int64 { return c.applied }

// Stats reports the controller's lifetime counters: retrains kicked off,
// swaps applied, candidates skipped by the gate.
func (c *Controller) Stats() (retrains, swaps, skips int64) {
	return c.retrains, c.swaps, c.skips
}

// SetApplied fast-forwards the version bookkeeping on checkpoint resume:
// the restored campaign has already resolved generation v at a barrier, so
// the next kickoff hands out v+1 exactly as the original campaign would.
func (c *Controller) SetApplied(v int64) {
	c.version, c.applied = v, v
	c.ins.version.Set(v)
}

// RestoreCounts restores the lifetime counters from a checkpoint, so a
// resumed campaign's end-of-run stats match an uninterrupted run's.
func (c *Controller) RestoreCounts(retrains, swaps, skips int64) {
	c.retrains, c.swaps, c.skips = retrains, swaps, skips
}

// ShouldKickoff reports whether barrier epoch is a retrain kickoff point:
// a positive multiple of Every with no retrain in flight and a corpus big
// enough to harvest. Purely a function of barrier state.
func (c *Controller) ShouldKickoff(epoch int64, corpusLen int) bool {
	return epoch > 0 && epoch%c.cfg.Every == 0 && c.pending == nil && corpusLen >= c.cfg.MinCorpus
}

// Kickoff starts a background retrain from the corpus snapshot at this
// barrier (entries in publish order) and returns the version it will
// produce. The caller must journal the kickoff (KickoffDetail) at this
// barrier so replays agree on the schedule.
func (c *Controller) Kickoff(epoch int64, bases []*prog.Prog) int64 {
	c.version++
	pt := &pendingTrain{version: c.version, kickoff: epoch, bases: len(bases), done: make(chan struct{})}
	c.pending = pt
	c.retrains++
	c.ins.retrains.Inc()
	cur := c.cur
	go func() {
		defer close(pt.done)
		pt.swap = c.retrain(pt.version, epoch, cur, bases)
	}()
	return pt.version
}

// ResumePending restarts a retrain that a checkpoint recorded as in flight:
// the snapshot is the first `bases` entries of the restored corpus, exactly
// the publish-order prefix the original kickoff saw. The retrain counter is
// not bumped — the kickoff was already counted at its original barrier
// (RestoreCounts carries it).
func (c *Controller) ResumePending(version, kickoff int64, bases []*prog.Prog) {
	c.version = version
	pt := &pendingTrain{version: version, kickoff: kickoff, bases: len(bases), done: make(chan struct{})}
	c.pending = pt
	cur := c.cur
	go func() {
		defer close(pt.done)
		pt.swap = c.retrain(version, kickoff, cur, bases)
	}()
}

// Pending describes the in-flight retrain (version, kickoff epoch, snapshot
// size) for checkpointing, or ok=false when none is in flight. The snapshot
// size is the corpus publish-order prefix length the kickoff saw, which is
// all a resumed campaign needs to reconstruct the identical harvest.
func (c *Controller) Pending() (version, kickoff int64, bases int, ok bool) {
	if c.pending == nil {
		return 0, 0, 0, false
	}
	return c.pending.version, c.pending.kickoff, c.pending.bases, true
}

// SwapDue returns the swap scheduled to apply at this barrier, blocking (in
// wall clock only) until its training finishes, or nil when no swap is due.
// After SwapDue returns a swap, the controller's incumbent advances to it
// (when accepted) and the pending slot clears.
func (c *Controller) SwapDue(epoch int64) *Swap {
	pt := c.pending
	if pt == nil || epoch < pt.kickoff+c.cfg.Lag {
		return nil
	}
	<-pt.done
	c.pending = nil
	sw := pt.swap
	c.applied = sw.Version
	if sw.Accepted {
		c.cur = sw.Model
		c.swaps++
		c.ins.swaps.Inc()
		c.ins.version.Set(sw.Version)
	} else {
		c.skips++
		c.ins.skipped.Inc()
	}
	return sw
}

// Wait blocks until any in-flight retrain finishes (campaign teardown).
// The result, if any, stays pending for a subsequent SwapDue; Wait never
// applies it.
func (c *Controller) Wait() {
	if c.pending != nil {
		<-c.pending.done
	}
}

// trainSeed derives the retrain RNG stream for a checkpoint version from
// the campaign seed — never from wall clock.
func trainSeed(campaign uint64, version int64) uint64 {
	return campaign ^ uint64(version)*0x9e3779b97f4a7c15 ^ 0x0b57ac1e
}

// retrain is the background body: harvest → split → train → validate →
// encode. Deterministic per (seed, version, bases); only Elapsed carries
// wall clock.
func (c *Controller) retrain(version, kickoff int64, cur *pmm.Model, bases []*prog.Prog) *Swap {
	start := time.Now()
	sw := &Swap{Version: version, Kickoff: kickoff, Bases: len(bases)}
	defer func() {
		sw.Elapsed = time.Since(start)
		c.ins.trainNs.Add(sw.Elapsed.Nanoseconds())
	}()

	coll := dataset.NewCollector(c.p.Kernel, c.p.An)
	coll.MutationsPerBase = c.cfg.MutationsPerBase
	coll.Workers = c.p.CollectWorkers
	coll.Metrics = c.p.Metrics
	ds, _ := coll.Collect(rng.New(trainSeed(c.p.Seed, version)), bases)
	sw.Examples = ds.Len()
	train, val, _ := ds.Split(0.75, 0.25)
	if train.Len() == 0 || val.Len() == 0 {
		sw.Reason = "harvest too small"
		c.logf("online: v%d skipped: %s (%d examples)", version, sw.Reason, ds.Len())
		return sw
	}

	b := qgraph.NewBuilder(c.p.Kernel, c.p.An)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = c.cfg.TrainEpochs
	tcfg.Batch = c.cfg.TrainBatch
	tcfg.Workers = c.p.TrainWorkers
	tcfg.Seed = trainSeed(c.p.Seed, version)
	tcfg.Metrics = c.p.Metrics
	trainC := pmm.CompileDataset(b, train, tcfg.PosWeight)
	valC := pmm.CompileDataset(b, val, 1)
	m, report := pmm.TrainCompiled(b, cur.Cfg, tcfg, trainC, valC)
	if n := len(report.ValF1); n > 0 {
		sw.NewF1 = report.ValF1[n-1]
	}
	sw.OldF1 = pmm.EvaluateCompiled(cur, valC).F1
	c.ins.examples.Add(int64(ds.Len()))

	if sw.NewF1 < sw.OldF1 {
		sw.Reason = "validation regression"
		c.logf("online: v%d skipped: F1 %.4f < incumbent %.4f", version, sw.NewF1, sw.OldF1)
		return sw
	}

	var buf bytes.Buffer
	var err error
	if c.quant {
		m.Freeze()
		if qerr := m.Quantize(); qerr != nil {
			sw.Reason = "quantize: " + qerr.Error()
			return sw
		}
		err = m.SaveQuantized(&buf)
	} else {
		err = m.Save(&buf)
	}
	if err != nil {
		sw.Reason = "encode: " + err.Error()
		return sw
	}
	sw.Bytes = buf.Bytes()
	sum := sha256.Sum256(sw.Bytes)
	sw.Digest = hex.EncodeToString(sum[:8])
	sw.Model, err = pmm.Load(bytes.NewReader(sw.Bytes))
	if err != nil {
		sw.Bytes, sw.Digest = nil, ""
		sw.Reason = "reload: " + err.Error()
		return sw
	}
	sw.Accepted = true
	c.logf("online: v%d trained on %d examples from %d bases: F1 %.4f (incumbent %.4f), digest %s, %v",
		version, sw.Examples, sw.Bases, sw.NewF1, sw.OldF1, sw.Digest, time.Since(start).Round(time.Millisecond))
	return sw
}

func (c *Controller) logf(format string, args ...interface{}) {
	if c.p.Logf != nil {
		c.p.Logf(format, args...)
	}
}
