// Controller unit tests: schedule gating, version bookkeeping, and the
// determinism contract — the same (seed, version, bases) must produce a
// byte-identical swap, whether kicked off fresh or resumed from a
// checkpoint's pending-retrain record.

package online

import (
	"bytes"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func testModel(seed uint64) *pmm.Model {
	m := pmm.NewModel(rng.New(seed), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	m.Freeze()
	return m
}

func testBases(n int, seed uint64) []*prog.Prog {
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(seed)
	out := make([]*prog.Prog, n)
	for i := range out {
		out[i] = g.Generate(r, 2+r.Intn(3))
	}
	return out
}

// fastParams keeps retrains cheap: tiny harvest, one training epoch.
func fastParams(seed uint64) Params {
	return Params{
		Config: Config{
			Every:            4,
			Lag:              2,
			MinCorpus:        3,
			MutationsPerBase: 4,
			TrainEpochs:      1,
			TrainBatch:       8,
		},
		Kernel:  testKernel,
		An:      testAn,
		Seed:    seed,
		Current: testModel(seed + 1000),
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	c := Config{}.Normalized()
	want := Config{Every: 8, Lag: 2, MinCorpus: 8, MutationsPerBase: 24, TrainEpochs: 4, TrainBatch: 8}
	if c != want {
		t.Fatalf("Normalized() = %+v, want %+v", c, want)
	}
}

func TestScheduleGating(t *testing.T) {
	ctl, err := New(fastParams(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		epoch  int64
		corpus int
		want   bool
	}{
		{0, 10, false},  // epoch 0 is never a kickoff
		{3, 10, false},  // not a multiple of Every
		{4, 2, false},   // corpus below MinCorpus
		{4, 3, true},    // first kickoff point
		{8, 10, true},   // any later multiple
		{12, 10, true},  //
		{-4, 10, false}, // defensive: negative epochs
	} {
		if got := ctl.ShouldKickoff(tc.epoch, tc.corpus); got != tc.want {
			t.Errorf("ShouldKickoff(%d, %d) = %v, want %v", tc.epoch, tc.corpus, got, tc.want)
		}
	}

	bases := testBases(4, 21)
	if v := ctl.Kickoff(4, bases); v != 1 {
		t.Fatalf("first kickoff version = %d, want 1", v)
	}
	if ctl.ShouldKickoff(8, 10) {
		t.Fatal("kickoff allowed while a retrain is pending")
	}
	if v, kick, n, ok := ctl.Pending(); !ok || v != 1 || kick != 4 || n != len(bases) {
		t.Fatalf("Pending() = (%d, %d, %d, %v), want (1, 4, %d, true)", v, kick, n, ok, len(bases))
	}
	if sw := ctl.SwapDue(5); sw != nil {
		t.Fatal("swap due before Kickoff+Lag")
	}
	sw := ctl.SwapDue(6)
	if sw == nil {
		t.Fatal("no swap at the apply barrier")
	}
	if sw.Version != 1 || sw.Kickoff != 4 || sw.Bases != len(bases) {
		t.Fatalf("swap = v%d kickoff=%d bases=%d", sw.Version, sw.Kickoff, sw.Bases)
	}
	if ctl.Version() != 1 {
		t.Fatalf("applied version = %d after the swap barrier, want 1", ctl.Version())
	}
	if _, _, _, ok := ctl.Pending(); ok {
		t.Fatal("pending slot not cleared after SwapDue")
	}
	// The version is consumed whether or not the gate accepted.
	retrains, swaps, skips := ctl.Stats()
	if retrains != 1 || swaps+skips != 1 {
		t.Fatalf("stats = (%d, %d, %d), want one retrain resolved", retrains, swaps, skips)
	}
	if !ctl.ShouldKickoff(8, 10) {
		t.Fatal("kickoff blocked after the pending retrain resolved")
	}
	if v := ctl.Kickoff(8, bases); v != 2 {
		t.Fatalf("second kickoff version = %d, want 2", v)
	}
	ctl.Wait()
}

// TestRetrainDeterministic pins the core contract: two controllers with the
// same campaign seed, schedule and corpus snapshot produce byte-identical
// swaps — same gate decision, same digest, same serialized weights.
func TestRetrainDeterministic(t *testing.T) {
	bases := testBases(5, 33)
	var swaps []*Swap
	for i := 0; i < 2; i++ {
		ctl, err := New(fastParams(77))
		if err != nil {
			t.Fatal(err)
		}
		ctl.Kickoff(4, bases)
		sw := ctl.SwapDue(6)
		if sw == nil {
			t.Fatal("no swap produced")
		}
		swaps = append(swaps, sw)
	}
	a, b := swaps[0], swaps[1]
	if a.Accepted != b.Accepted || a.Digest != b.Digest || a.NewF1 != b.NewF1 || a.OldF1 != b.OldF1 {
		t.Fatalf("swaps diverged: %+v vs %+v", a, b)
	}
	if a.Examples != b.Examples || a.Detail() != b.Detail() {
		t.Fatalf("swap payloads diverged: %q vs %q", a.Detail(), b.Detail())
	}
	if !bytes.Equal(a.Bytes, b.Bytes) {
		t.Fatal("swap checkpoint bytes diverged between identical retrains")
	}
}

// TestResumePendingIdentical replays a checkpoint-restored in-flight
// retrain: ResumePending over the same publish-order prefix must yield the
// identical swap at the identical barrier, without double-counting the
// kickoff.
func TestResumePendingIdentical(t *testing.T) {
	bases := testBases(5, 44)

	orig, err := New(fastParams(88))
	if err != nil {
		t.Fatal(err)
	}
	orig.Kickoff(4, bases)
	want := orig.SwapDue(6)
	if want == nil {
		t.Fatal("no swap produced")
	}

	res, err := New(fastParams(88))
	if err != nil {
		t.Fatal(err)
	}
	res.SetApplied(0)
	res.RestoreCounts(1, 0, 0) // the kickoff was counted at its original barrier
	res.ResumePending(1, 4, bases)
	got := res.SwapDue(6)
	if got == nil {
		t.Fatal("resumed retrain produced no swap")
	}
	if got.Digest != want.Digest || got.Accepted != want.Accepted || got.Detail() != want.Detail() {
		t.Fatalf("resumed swap diverged: %q vs %q", got.Detail(), want.Detail())
	}
	if !bytes.Equal(got.Bytes, want.Bytes) {
		t.Fatal("resumed swap bytes diverged")
	}
	r1, s1, k1 := orig.Stats()
	r2, s2, k2 := res.Stats()
	if r1 != r2 || s1 != s2 || k1 != k2 {
		t.Fatalf("resumed stats (%d,%d,%d) != original (%d,%d,%d)", r2, s2, k2, r1, s1, k1)
	}
}

// TestQuantizedCampaignKeepsQuantizedForm: when the incumbent serves int8
// weights, swapped checkpoints are re-encoded with SaveQuantized so the
// canonical serving form never silently reverts to float.
func TestQuantizedCampaignKeepsQuantizedForm(t *testing.T) {
	p := fastParams(99)
	if err := p.Current.Quantize(); err != nil {
		t.Fatal(err)
	}
	ctl, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Kickoff(4, testBases(5, 55))
	sw := ctl.SwapDue(6)
	if sw == nil {
		t.Fatal("no swap produced")
	}
	if !sw.Accepted {
		t.Skipf("gate skipped v1 (f1 %.4f vs %.4f); quant form untestable on this seed", sw.NewF1, sw.OldF1)
	}
	if sw.Model.Quantized() == nil {
		t.Fatal("accepted swap on a quantized campaign is not quantized")
	}
}
