package serve

import (
	"fmt"
	"sync"
)

// Cross-tenant scheduling: a deterministic weighted-fair queue with strict
// priority bands, feeding the tenant-aware micro-batcher.
//
// Structure. Each tenant owns one bounded FIFO ring per priority band. The
// scheduler serves the directed band to exhaustion before touching the
// background band; inside a band, tenants are served by deficit round-robin
// (Shreedhar & Varghese): visiting a backlogged tenant adds its weight to a
// deficit counter, the visit dequeues up to that deficit (each query costs
// one), and the round-robin pointer only advances when the deficit or the
// backlog is spent. Over any saturated interval every tenant therefore
// receives service proportional to its weight, regardless of arrival order
// — and the schedule is a pure function of queue contents, so replaying a
// campaign replays its service order.
//
// Batch formation. A worker's popBlocking/popMore calls fill a batch of up
// to Options.BatchSize attempts in scheduler order, so one union-graph
// pmm.PredictBatch forward pass serves several tenants at once and
// batch-fill stays high under mixed load: tenancy changes who is served
// next, not how efficiently.

// attemptRing is a fixed-capacity FIFO of queued attempts. Capacity is the
// tenant's QueueSize, fixed at registration, so steady-state enqueue/pop
// never allocates.
type attemptRing struct {
	buf  []*attempt
	head int
	n    int
}

func (r *attemptRing) init(capacity int) { r.buf = make([]*attempt, capacity) }
func (r *attemptRing) full() bool        { return r.n == len(r.buf) }
func (r *attemptRing) empty() bool       { return r.n == 0 }

func (r *attemptRing) push(at *attempt) {
	r.buf[(r.head+r.n)%len(r.buf)] = at
	r.n++
}

func (r *attemptRing) pop() *attempt {
	at := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return at
}

// sched is the shared scheduler state. One mutex guards tenant
// registration, every queue ring, the DRR cursors, and the worker-pool
// target; workers block on cond when all queues are empty.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants []*tenant
	byName  map[string]*tenant
	// rr is the deficit-round-robin cursor per band: the index (mod tenant
	// count) of the tenant whose turn is in progress.
	rr [numPriorities]int
	// queued counts attempts across all rings; perBand splits it by band.
	queued  int
	perBand [numPriorities]int
	closed  bool

	// target is the desired worker-pool size; alive[id] marks worker
	// goroutines that have not exited. Workers with id >= target exit at
	// their next pickup, which is how scale-down drains (autoscale.go).
	target int
	alive  []bool
}

func newSched() *sched {
	sc := &sched{byName: make(map[string]*tenant)}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// register adds a tenant with an already-validated, defaulted config.
func (sc *sched) register(cfg TenantConfig, s *Server) (*tenant, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return nil, ErrServerClosed
	}
	if _, dup := sc.byName[cfg.Name]; dup {
		return nil, fmt.Errorf("%w: duplicate tenant %q", ErrBadTenantConfig, cfg.Name)
	}
	t := &tenant{cfg: cfg, idx: len(sc.tenants), srv: s}
	for band := range t.q {
		t.q[band].init(cfg.QueueSize)
	}
	sc.tenants = append(sc.tenants, t)
	sc.byName[cfg.Name] = t
	return t, nil
}

func (sc *sched) numTenants() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.tenants)
}

func (sc *sched) snapshotTenants() []*tenant {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]*tenant, len(sc.tenants))
	copy(out, sc.tenants)
	return out
}

// enqueue queues one attempt on its tenant's band ring. The caller has
// already passed admission; this enforces only the per-tenant queue bound.
func (sc *sched) enqueue(at *attempt) error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return ErrServerClosed
	}
	r := &at.t.q[at.prio]
	if r.full() {
		sc.mu.Unlock()
		return ErrQueueFull
	}
	r.push(at)
	sc.queued++
	sc.perBand[at.prio]++
	sc.cond.Signal()
	sc.mu.Unlock()
	return nil
}

// depth reports the total queued attempts (the autoscaler's input and the
// serve_queue_depth gauge's source).
func (sc *sched) depth() int {
	sc.mu.Lock()
	d := sc.queued
	sc.mu.Unlock()
	return d
}

// popBlocking waits until work is queued and fills batch (in scheduler
// order) with up to max attempts. It returns an empty batch when the worker
// should exit: the server closed, or the pool scaled below this worker's
// id. On exit the worker is marked dead under the same critical section, so
// setTarget never double-spawns an id.
func (sc *sched) popBlocking(batch []*attempt, max, workerID int) []*attempt {
	sc.mu.Lock()
	for {
		if sc.closed || workerID >= sc.target {
			sc.alive[workerID] = false
			sc.mu.Unlock()
			return batch
		}
		if sc.queued > 0 {
			break
		}
		sc.cond.Wait()
	}
	batch = sc.fillLocked(batch, max)
	sc.mu.Unlock()
	return batch
}

// popMore tops up a batch without blocking.
func (sc *sched) popMore(batch []*attempt, max int) []*attempt {
	if max <= 0 {
		return batch
	}
	sc.mu.Lock()
	if !sc.closed && sc.queued > 0 {
		batch = sc.fillLocked(batch, max)
	}
	sc.mu.Unlock()
	return batch
}

// fillLocked drains bands highest-first into batch, taking at most room
// attempts. Requires sc.mu held and sc.queued > 0 checked by the caller.
func (sc *sched) fillLocked(batch []*attempt, room int) []*attempt {
	for band := numPriorities - 1; band >= 0 && room > 0; band-- {
		n := 0
		batch, n = sc.fillBandLocked(batch, room, band)
		room -= n
	}
	return batch
}

// fillBandLocked runs the DRR service loop over one band. It may stop
// mid-tenant when room runs out; the cursor and the tenant's remaining
// deficit are preserved, so the next fill resumes the interrupted turn
// without re-crediting it.
func (sc *sched) fillBandLocked(batch []*attempt, room, band int) ([]*attempt, int) {
	taken := 0
	n := len(sc.tenants)
	for room > 0 && sc.perBand[band] > 0 {
		t := sc.tenants[sc.rr[band]%n]
		r := &t.q[band]
		if r.empty() {
			t.deficit[band] = 0
			sc.rr[band] = (sc.rr[band] + 1) % n
			continue
		}
		if t.deficit[band] <= 0 {
			t.deficit[band] += t.cfg.Weight
		}
		for t.deficit[band] > 0 && !r.empty() && room > 0 {
			batch = append(batch, r.pop())
			t.deficit[band]--
			room--
			taken++
			sc.queued--
			sc.perBand[band]--
		}
		if r.empty() {
			t.deficit[band] = 0
		}
		if t.deficit[band] <= 0 || r.empty() {
			sc.rr[band] = (sc.rr[band] + 1) % n
		}
	}
	return batch, taken
}

// close wakes every worker so they observe the closed flag and exit. Queued
// attempts are left in the rings: their dispatchers are already aborting on
// closeCh, and each attempt's done channel is buffered, so nothing blocks.
func (sc *sched) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
}
