package serve

import (
	"sync"
	"testing"
)

func startNetServer(t *testing.T) (*NetServer, *Server) {
	t.Helper()
	s := newTestServer(t, 2)
	ns, err := ListenAndServe(s, testKernel.Target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ns, s
}

func TestNetRoundTrip(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()

	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := testQuery(t)
	slots, probs, err := c.Infer(q.Prog, q.Traces, q.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) == 0 {
		t.Fatal("no slots over the wire")
	}
	if len(probs) != q.Prog.NumSlots() {
		t.Fatalf("%d probs for %d slots", len(probs), q.Prog.NumSlots())
	}
	// The network path must agree with the in-process path.
	direct, err := s.Infer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Slots) != len(slots) {
		t.Fatalf("wire %d slots vs direct %d", len(slots), len(direct.Slots))
	}
	for i := range slots {
		if slots[i] != direct.Slots[i] {
			t.Fatalf("slot %d differs over the wire", i)
		}
	}
	for i := range probs {
		if probs[i] != direct.Probs[i] {
			t.Fatalf("prob %d differs over the wire", i)
		}
	}
}

func TestNetMultipleRequestsPerConnection(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQuery(t)
	for i := 0; i < 10; i++ {
		if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestNetConcurrentClients(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	q := testQuery(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ns.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNetBadProgramReturnsError(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.InferText("this is not a program(", nil, nil)
	if err == nil {
		t.Fatal("expected error for malformed program")
	}
	// The connection must survive an application-level error.
	q := testQuery(t)
	if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
		t.Fatalf("connection dead after app error: %v", err)
	}
}

func TestNetCloseIdempotent(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	ns.Close()
	ns.Close()
}
