package serve

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/iotest"
	"time"
)

func startNetServer(t *testing.T) (*NetServer, *Server) {
	t.Helper()
	s := newTestServer(t, 2)
	ns, err := ListenAndServe(s, testKernel.Target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ns, s
}

func TestNetRoundTrip(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()

	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := testQuery(t)
	slots, probs, err := c.Infer(q.Prog, q.Traces, q.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) == 0 {
		t.Fatal("no slots over the wire")
	}
	if len(probs) != q.Prog.NumSlots() {
		t.Fatalf("%d probs for %d slots", len(probs), q.Prog.NumSlots())
	}
	// The network path must agree with the in-process path.
	direct, err := s.Infer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Slots) != len(slots) {
		t.Fatalf("wire %d slots vs direct %d", len(slots), len(direct.Slots))
	}
	for i := range slots {
		if slots[i] != direct.Slots[i] {
			t.Fatalf("slot %d differs over the wire", i)
		}
	}
	for i := range probs {
		if probs[i] != direct.Probs[i] {
			t.Fatalf("prob %d differs over the wire", i)
		}
	}
}

func TestNetMultipleRequestsPerConnection(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQuery(t)
	for i := 0; i < 10; i++ {
		if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestNetConcurrentClients(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	q := testQuery(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ns.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNetBadProgramReturnsError(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.InferText("this is not a program(", nil, nil)
	if err == nil {
		t.Fatal("expected error for malformed program")
	}
	// The connection must survive an application-level error.
	q := testQuery(t)
	if _, _, err := c.Infer(q.Prog, q.Traces, q.Targets); err != nil {
		t.Fatalf("connection dead after app error: %v", err)
	}
}

func TestNetCloseIdempotent(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	ns.Close()
	ns.Close()
}

// TestNetResponseSplitAcrossSegments serves a real response through a relay
// that trickles it to the client one byte at a time (worst-case TCP
// segmentation). The framed client reassembles with io.ReadFull, so the
// prediction must be identical to a whole-frame read.
func TestNetResponseSplitAcrossSegments(t *testing.T) {
	ns, s := startNetServer(t)
	defer s.Close()
	defer ns.Close()

	relay, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	go func() {
		cli, err := relay.Accept()
		if err != nil {
			return
		}
		defer cli.Close()
		up, err := net.Dial("tcp", ns.Addr())
		if err != nil {
			return
		}
		defer up.Close()
		go func() {
			io.Copy(up, cli) // requests pass through untouched
			// Propagate the client's close upstream, or the server-side
			// handler (and NetServer.Close) would wait forever.
			up.Close()
		}()
		// Responses are forwarded one byte at a time with pauses, so the
		// client sees every possible short-read boundary.
		buf := make([]byte, 1)
		for {
			n, err := up.Read(buf)
			if n > 0 {
				if _, werr := cli.Write(buf[:n]); werr != nil {
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
			if err != nil {
				return
			}
		}
	}()

	c, err := Dial(relay.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQuery(t)
	slots, probs, err := c.Infer(q.Prog, q.Traces, q.Targets)
	if err != nil {
		t.Fatalf("split-segment response failed: %v", err)
	}
	direct, err := s.Infer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != len(direct.Slots) || len(probs) != len(direct.Probs) {
		t.Fatalf("split-segment reply shape differs: %d/%d slots, %d/%d probs",
			len(slots), len(direct.Slots), len(probs), len(direct.Probs))
	}
	for i := range slots {
		if slots[i] != direct.Slots[i] {
			t.Fatalf("slot %d differs after segmented read", i)
		}
	}
}

func TestFrameRoundTripAndShortReads(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, 0x42, payload); err != nil {
		t.Fatal(err)
	}
	// iotest.OneByteReader forces a short read on every call.
	typ, got, err := ReadFrame(iotest.OneByteReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 0x42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip got type 0x%02x payload %q", typ, got)
	}
}

func TestFrameTypedErrors(t *testing.T) {
	var whole bytes.Buffer
	if err := WriteFrame(&whole, 0x01, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	frame := whole.Bytes()

	// Truncation at every byte boundary inside the frame must yield
	// ErrFrameTruncated, never a misparse (cut == 0 is a clean io.EOF).
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrFrameTruncated", cut, err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}

	// A declared length beyond the limit fails before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := ReadFrame(bytes.NewReader(huge), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}
