package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Worker-pool autoscaling. An evaluator goroutine samples the scheduler's
// queue depth every ScaleInterval — the same signal the PR-4
// serve_queue_depth gauge exports — and votes: depth above
// ScaleUpAt×workers to grow, below ScaleDownAt×workers to shrink. A vote
// must repeat for ScaleHold consecutive evaluations before it is applied
// (hysteresis), growth takes half-pool steps toward MaxWorkers, shrinkage
// single-worker steps toward MinWorkers. Scale-down is graceful: the target
// drops and workers with id ≥ target exit at their next pickup, so no
// in-flight batch is interrupted.
//
// Every decision is journaled as a ScaleEvent. The journal is deliberately
// separate from the campaign journal (internal/obs): scaling reacts to
// wall-clock load and differs run to run, while campaign replay must not —
// predictions are bit-identical at any pool size, so the autoscale
// trajectory can vary freely without perturbing tenant-visible results.

// ScaleEvent is one journaled autoscaling decision.
type ScaleEvent struct {
	// Seq numbers decisions from 0 in decision order.
	Seq int
	// At is the decision instant relative to server start.
	At time.Duration
	// From and To are the worker-pool targets before and after.
	From int
	To   int
	// Queued is the scheduler depth that drove the decision.
	Queued int
	// Reason is "queue depth over high-water" or "queue idle below
	// low-water".
	Reason string
}

// maxScaleLog bounds the journal; campaigns long enough to overflow it keep
// the newest events and count the overflow.
const maxScaleLog = 4096

// autoscaler runs the evaluator and owns the scale journal. It is embedded
// in Server and inert (no goroutine) when MinWorkers == MaxWorkers.
type autoscaler struct {
	on   bool
	stop chan struct{}
	wg   sync.WaitGroup

	ups, downs atomic.Int64

	mu      sync.Mutex
	events  []ScaleEvent
	dropped int
}

func (a *autoscaler) start(s *Server) {
	if s.opts.MinWorkers == s.opts.MaxWorkers {
		return
	}
	a.on = true
	a.stop = make(chan struct{})
	a.wg.Add(1)
	go a.run(s)
}

func (a *autoscaler) run(s *Server) {
	defer a.wg.Done()
	tick := time.NewTicker(s.opts.ScaleInterval)
	defer tick.Stop()
	upStreak, downStreak := 0, 0
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			a.evaluate(s, &upStreak, &downStreak)
		}
	}
}

// evaluate applies one hysteresis step of the watermark policy.
func (a *autoscaler) evaluate(s *Server, upStreak, downStreak *int) {
	sc := s.sched
	sc.mu.Lock()
	queued, cur := sc.queued, sc.target
	sc.mu.Unlock()
	opts := s.opts
	if float64(queued) > opts.ScaleUpAt*float64(cur) && cur < opts.MaxWorkers {
		*upStreak++
		*downStreak = 0
	} else if float64(queued) < opts.ScaleDownAt*float64(cur) && cur > opts.MinWorkers {
		*downStreak++
		*upStreak = 0
	} else {
		*upStreak, *downStreak = 0, 0
	}
	switch {
	case *upStreak >= opts.ScaleHold:
		*upStreak = 0
		next := cur + max(1, cur/2)
		if next > opts.MaxWorkers {
			next = opts.MaxWorkers
		}
		a.apply(s, cur, next, queued, "queue depth over high-water")
	case *downStreak >= opts.ScaleHold:
		*downStreak = 0
		a.apply(s, cur, cur-1, queued, "queue idle below low-water")
	}
}

// apply retargets the pool and journals the decision. Growth spawns workers
// for dead ids below the target; shrinkage just lowers the target and wakes
// idle workers so the excess ids observe it and exit.
func (a *autoscaler) apply(s *Server, from, to, queued int, reason string) {
	if to == from {
		return
	}
	sc := s.sched
	sc.mu.Lock()
	if sc.closed || sc.target != from {
		sc.mu.Unlock()
		return
	}
	sc.target = to
	if to > from {
		for id := 0; id < to; id++ {
			if !sc.alive[id] {
				sc.alive[id] = true
				s.workerWG.Add(1)
				go s.workerLoop(id)
			}
		}
	} else {
		sc.cond.Broadcast()
	}
	sc.mu.Unlock()
	if to > from {
		a.ups.Add(1)
		s.m.scaleUps.Inc()
	} else {
		a.downs.Add(1)
		s.m.scaleDowns.Inc()
	}
	s.m.scaleWorkers.Set(int64(to))
	a.mu.Lock()
	if len(a.events) >= maxScaleLog {
		copy(a.events, a.events[1:])
		a.events = a.events[:maxScaleLog-1]
		a.dropped++
	}
	a.events = append(a.events, ScaleEvent{
		Seq:    len(a.events) + a.dropped,
		At:     time.Since(s.started),
		From:   from,
		To:     to,
		Queued: queued,
		Reason: reason,
	})
	a.mu.Unlock()
}

func (a *autoscaler) stopEvaluator() {
	if !a.on {
		return
	}
	close(a.stop)
	a.wg.Wait()
}

func (a *autoscaler) workersNow(s *Server) int {
	sc := s.sched
	sc.mu.Lock()
	n := sc.target
	sc.mu.Unlock()
	return n
}

// ScaleLog returns the journaled autoscaling decisions in order. The slice
// is a copy; with more than maxScaleLog decisions the oldest are dropped
// (Seq still reflects the absolute decision number).
func (s *Server) ScaleLog() []ScaleEvent {
	s.scaler.mu.Lock()
	defer s.scaler.mu.Unlock()
	out := make([]ScaleEvent, len(s.scaler.events))
	copy(out, s.scaler.events)
	return out
}
