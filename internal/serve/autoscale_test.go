package serve

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// floodUntil submits async queries until cond holds or the deadline passes,
// returning every reply channel for draining.
func floodUntil(t *testing.T, s *Server, q Query, cond func() bool, deadline time.Duration) []<-chan Prediction {
	t.Helper()
	var replies []<-chan Prediction
	stop := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(stop) {
			t.Fatalf("condition not reached within %v (stats %+v)", deadline, s.Stats())
		}
		for i := 0; i < 16; i++ {
			r, err := s.InferAsync(q)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			replies = append(replies, r)
		}
	}
	return replies
}

func waitFor(t *testing.T, what string, cond func() bool, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(stop) {
			t.Fatalf("%s not reached within %v", what, deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAutoscaleGrowsAndShrinks(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers:       1,
		MinWorkers:    1,
		MaxWorkers:    4,
		ScaleInterval: time.Millisecond,
		ScaleHold:     2,
		QueueSize:     512,
		// The race detector slows inference ~15x; a generous deadline keeps
		// the flooded queue's tail from timing out under instrumentation.
		Deadline: 2 * time.Minute,
	})
	defer s.Close()
	q := testQuery(t)

	replies := floodUntil(t, s, q, func() bool { return s.Stats().ScaleUps > 0 }, 10*time.Second)
	var ok int
	for _, r := range replies {
		p := <-r
		switch {
		case p.Err == nil:
			ok++
		case errors.Is(p.Err, ErrQueueFull):
			// Legitimate backpressure: the flood intentionally outruns the
			// queue to trip the high-water mark.
		default:
			t.Fatalf("prediction under autoscale: %v", p.Err)
		}
	}
	if ok == 0 {
		t.Fatal("no query survived the flood")
	}
	// Idle queue: the pool must drain back to MinWorkers.
	waitFor(t, "scale-down to MinWorkers", func() bool {
		st := s.Stats()
		return st.ScaleDowns > 0 && st.Workers == 1
	}, 10*time.Second)

	log := s.ScaleLog()
	if len(log) == 0 {
		t.Fatal("ScaleLog empty after observed scale decisions")
	}
	if first := log[0]; first.From != 1 || first.To <= first.From || first.Reason == "" {
		t.Fatalf("first scale event %+v, want a journaled grow from 1", first)
	}
	sawDown := false
	for i, ev := range log {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.To < 1 || ev.To > 4 {
			t.Fatalf("event %d target %d outside [MinWorkers, MaxWorkers]", i, ev.To)
		}
		if ev.To < ev.From {
			sawDown = true
			if ev.To != ev.From-1 {
				t.Fatalf("event %d shrinks %d -> %d, want single-worker steps", i, ev.From, ev.To)
			}
		}
	}
	if !sawDown {
		t.Fatal("no scale-down event journaled")
	}
}

func TestAutoscaleDisabledByDefault(t *testing.T) {
	s := newTestServer(t, 2)
	defer s.Close()
	q := testQuery(t)
	for i := 0; i < 8; i++ {
		if _, err := s.Infer(q); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.ScaleUps != 0 || st.ScaleDowns != 0 || st.Workers != 2 {
		t.Fatalf("fixed pool moved: %+v", st)
	}
	if log := s.ScaleLog(); len(log) != 0 {
		t.Fatalf("ScaleLog = %+v, want empty without autoscaling", log)
	}
}

// TestPredictionsIdenticalAcrossPoolConfigs is the determinism contract:
// worker-pool size, batching and the autoscale trajectory change only
// throughput, never a prediction's bits.
func TestPredictionsIdenticalAcrossPoolConfigs(t *testing.T) {
	base := testQuery(t)
	queries := []Query{base}
	for n := 1; n < len(base.Targets); n++ {
		q := base
		q.Targets = base.Targets[:n]
		queries = append(queries, q)
	}

	configs := []Options{
		{Workers: 1, QueueSize: 64},
		{Workers: 4, BatchSize: 4, QueueSize: 64},
		{Workers: 1, MinWorkers: 1, MaxWorkers: 8, ScaleInterval: time.Millisecond, ScaleHold: 1, BatchSize: 2, QueueSize: 64},
	}
	var want []Prediction
	for ci, opts := range configs {
		s := newTestServerOpts(t, opts)
		// Load the server concurrently so the autoscaled config actually
		// scales mid-run, then measure the queries of record synchronously.
		var replies []<-chan Prediction
		for i := 0; i < 32; i++ {
			r, err := s.InferAsync(queries[i%len(queries)])
			if err != nil {
				t.Fatalf("config %d warm-up submit: %v", ci, err)
			}
			replies = append(replies, r)
		}
		got := make([]Prediction, len(queries))
		for i, q := range queries {
			p, err := s.Infer(q)
			if err != nil {
				t.Fatalf("config %d query %d: %v", ci, i, err)
			}
			got[i] = p
		}
		for _, r := range replies {
			if p := <-r; p.Err != nil {
				t.Fatalf("config %d warm-up: %v", ci, p.Err)
			}
		}
		s.Close()
		if ci == 0 {
			want = got
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Slots, want[i].Slots) || !reflect.DeepEqual(got[i].Probs, want[i].Probs) {
				t.Fatalf("config %d query %d prediction differs from single-worker baseline", ci, i)
			}
		}
	}
}
