package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// schedFixture builds a scheduler with registered tenants and no server
// behind it, for white-box service-order tests.
func schedFixture(t *testing.T, cfgs ...TenantConfig) (*sched, []*tenant) {
	t.Helper()
	sc := newSched()
	sc.target = 1
	sc.alive = []bool{true}
	tenants := make([]*tenant, len(cfgs))
	for i, cfg := range cfgs {
		cfg = cfg.withDefaults(Options{QueueSize: 1024})
		tn, err := sc.register(cfg, nil)
		if err != nil {
			t.Fatalf("register %q: %v", cfg.Name, err)
		}
		tenants[i] = tn
	}
	return sc, tenants
}

func enqueueN(t *testing.T, sc *sched, tn *tenant, prio Priority, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := sc.enqueue(&attempt{t: tn, prio: prio}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
}

// countByTenant tallies a popped batch.
func countByTenant(batch []*attempt) map[*tenant]int {
	out := map[*tenant]int{}
	for _, at := range batch {
		out[at.t]++
	}
	return out
}

func TestDRRSharesFollowWeights(t *testing.T) {
	sc, tn := schedFixture(t,
		TenantConfig{Name: "heavy", Weight: 3},
		TenantConfig{Name: "light", Weight: 1},
	)
	// Both saturated: interleaved arrival order must not matter.
	for i := 0; i < 24; i++ {
		enqueueN(t, sc, tn[1], PriorityBackground, 1)
		enqueueN(t, sc, tn[0], PriorityBackground, 1)
	}
	batch := sc.popMore(nil, 16)
	if len(batch) != 16 {
		t.Fatalf("popped %d, want 16", len(batch))
	}
	got := countByTenant(batch)
	if got[tn[0]] != 12 || got[tn[1]] != 4 {
		t.Fatalf("service split heavy=%d light=%d, want 12/3 split 12/4", got[tn[0]], got[tn[1]])
	}
}

func TestDRRDeficitPersistsAcrossFills(t *testing.T) {
	sc, tn := schedFixture(t,
		TenantConfig{Name: "a", Weight: 4},
		TenantConfig{Name: "b", Weight: 4},
	)
	enqueueN(t, sc, tn[0], PriorityBackground, 8)
	enqueueN(t, sc, tn[1], PriorityBackground, 8)
	// Room 2 interrupts tenant a's turn mid-deficit; the next fill must
	// resume a's turn without re-crediting, so over the first 8 pops the
	// 4/4 quantum alternation holds exactly.
	var order []*tenant
	for i := 0; i < 4; i++ {
		for _, at := range sc.popMore(nil, 2) {
			order = append(order, at.t)
		}
	}
	for i, tnGot := range order {
		want := tn[0]
		if i >= 4 {
			want = tn[1]
		}
		if tnGot != want {
			t.Fatalf("pop %d served %q, want %q", i, tnGot.cfg.Name, want.cfg.Name)
		}
	}
}

func TestDirectedBandDrainsFirst(t *testing.T) {
	sc, tn := schedFixture(t,
		TenantConfig{Name: "bg", Weight: 8},
		TenantConfig{Name: "dir", Weight: 1, Priority: PriorityDirected},
	)
	enqueueN(t, sc, tn[0], PriorityBackground, 8)
	enqueueN(t, sc, tn[1], PriorityDirected, 3)
	batch := sc.popMore(nil, 6)
	for i := 0; i < 3; i++ {
		if batch[i].t != tn[1] {
			t.Fatalf("pop %d from %q, want directed tenant first", i, batch[i].t.cfg.Name)
		}
	}
	for i := 3; i < 6; i++ {
		if batch[i].t != tn[0] {
			t.Fatalf("pop %d from %q, want background after directed drained", i, batch[i].t.cfg.Name)
		}
	}
}

func TestQueryPriorityTagRaisesBand(t *testing.T) {
	sc, tn := schedFixture(t, TenantConfig{Name: "bg"})
	enqueueN(t, sc, tn[0], PriorityBackground, 2)
	enqueueN(t, sc, tn[0], PriorityDirected, 1)
	batch := sc.popMore(nil, 3)
	if batch[0].prio != PriorityDirected {
		t.Fatalf("first pop priority %v, want directed ahead of earlier background", batch[0].prio)
	}
}

func TestTenantQueueBoundIsPerTenant(t *testing.T) {
	sc, tn := schedFixture(t,
		TenantConfig{Name: "small", QueueSize: 2},
		TenantConfig{Name: "big", QueueSize: 8},
	)
	enqueueN(t, sc, tn[0], PriorityBackground, 2)
	if err := sc.enqueue(&attempt{t: tn[0], prio: PriorityBackground}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull small tenant: %v, want ErrQueueFull", err)
	}
	// The neighbor's full queue must not block this tenant.
	enqueueN(t, sc, tn[1], PriorityBackground, 8)
}

func newTenantTestServer(t testing.TB, opts Options) *Server {
	t.Helper()
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	s := NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn).WithCache(64), opts)
	t.Cleanup(s.Close)
	return s
}

func TestTenantRegistration(t *testing.T) {
	s := newTenantTestServer(t, Options{Workers: 1})
	if _, err := s.Tenant(TenantConfig{Name: "campaign1"}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := s.Tenant(TenantConfig{Name: "campaign1"}); !errors.Is(err, ErrBadTenantConfig) {
		t.Fatalf("duplicate name: %v, want ErrBadTenantConfig", err)
	}
	if _, err := s.Tenant(TenantConfig{Name: "default"}); err == nil {
		t.Fatal("registering over the implicit default tenant must fail")
	}
	if _, err := s.Tenant(TenantConfig{Name: "bad name"}); !errors.Is(err, ErrBadTenantConfig) {
		t.Fatalf("invalid name: %v, want ErrBadTenantConfig", err)
	}
	if got := s.Stats().TenantCount; got != 2 {
		t.Fatalf("TenantCount = %d, want 2 (default + campaign1)", got)
	}
}

func TestTenantServingAndAttribution(t *testing.T) {
	s := newTenantTestServer(t, Options{Workers: 1})
	t1, err := s.Tenant(TenantConfig{Name: "one"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Tenant(TenantConfig{Name: "two"})
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery(t)
	// one: miss then hit; two: hit. The shared cache's traffic must be
	// attributed to the querying tenant.
	for i, h := range []*Tenant{t1, t1, t2} {
		if _, err := h.Infer(q); err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
	}
	st1, st2 := t1.TenantStats(), t2.TenantStats()
	if st1.Queries != 2 || st1.Succeeded != 2 || st2.Queries != 1 || st2.Succeeded != 1 {
		t.Fatalf("per-tenant counters: one=%+v two=%+v", st1, st2)
	}
	if st1.CacheMisses != 1 || st1.CacheHits != 1 {
		t.Fatalf("tenant one cache hits/misses = %d/%d, want 1/1", st1.CacheHits, st1.CacheMisses)
	}
	if st2.CacheMisses != 0 || st2.CacheHits != 1 {
		t.Fatalf("tenant two cache hits/misses = %d/%d, want 1/0", st2.CacheHits, st2.CacheMisses)
	}
	// The Inferrer Stats view reports the tenant's attributed slice.
	if got := t2.Stats().CacheHits; got != 1 {
		t.Fatalf("tenant two Stats().CacheHits = %d, want 1", got)
	}
	// Default tenant untouched.
	if def := s.DefaultTenant().TenantStats(); def.Queries != 0 {
		t.Fatalf("default tenant saw %d queries, want 0", def.Queries)
	}
	all := s.TenantStats()
	if len(all) != 3 || all[0].Name != "default" || all[1].Name != "one" || all[2].Name != "two" {
		t.Fatalf("TenantStats order: %+v", all)
	}
}

// latencyOnFirst injects one long latency fault on query 0, pinning its
// dispatcher in a sleep so admission state can be observed deterministically.
type latencyOnFirst struct{ d time.Duration }

func (l latencyOnFirst) Plan(query uint64, attempt int) faultinject.Decision {
	if query == 0 && attempt == 0 {
		return faultinject.Decision{Fault: faultinject.FaultLatency, Latency: l.d}
	}
	return faultinject.Decision{}
}

func TestTenantQuotaRejects(t *testing.T) {
	s := newTenantTestServer(t, Options{Workers: 1, Fault: latencyOnFirst{d: 30 * time.Second}})
	h, err := s.Tenant(TenantConfig{Name: "capped", Quota: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery(t)
	if _, err := h.InferAsync(q); err != nil {
		t.Fatalf("first submit within quota: %v", err)
	}
	if _, err := h.InferAsync(q); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second submit: %v, want ErrQuotaExceeded", err)
	}
	if _, err := h.Infer(q); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("blocking submit over quota: %v, want ErrQuotaExceeded", err)
	}
	if st := h.TenantStats(); st.QuotaRejected != 2 {
		t.Fatalf("QuotaRejected = %d, want 2", st.QuotaRejected)
	}
	// The neighbor tenant is not throttled by the capped one's quota.
	other, err := s.Tenant(TenantConfig{Name: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Infer(q); err != nil {
		t.Fatalf("neighbor infer: %v", err)
	}
	// The first query is parked in its latency fault until Close aborts
	// it; Close must not hang on it.
}

// alwaysTransient fails every attempt, driving the health tracker degraded.
type alwaysTransient struct{}

func (alwaysTransient) Plan(uint64, int) faultinject.Decision {
	return faultinject.Decision{Fault: faultinject.FaultTransient}
}

func TestSLOShedsBackgroundNotDirected(t *testing.T) {
	s := newTenantTestServer(t, Options{
		Workers:          1,
		Fault:            alwaysTransient{},
		MaxRetries:       -1,
		HealthWindow:     8,
		HealthMinSamples: 4,
		SLOQueueWait:     time.Hour, // shedding armed; only health can trip it
	})
	q := testQuery(t)
	// Drive the health tracker below threshold with failing directed-class
	// queries (directed is never shed, so the warmup itself cannot trip
	// admission part-way through).
	wq := q
	wq.Priority = PriorityDirected
	for i := 0; i < 8; i++ {
		if _, err := s.Infer(wq); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("warmup query %d: %v, want ErrUnavailable", i, err)
		}
	}
	if s.Healthy() {
		t.Fatal("server still healthy after exclusively failed queries")
	}
	if _, err := s.Infer(q); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded background query: %v, want ErrShed", err)
	}
	// Directed-class queries ride through admission (and then fail on the
	// injector — the point is they were not shed).
	dq := q
	dq.Priority = PriorityDirected
	if _, err := s.Infer(dq); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("degraded directed query: %v, want ErrUnavailable (never ErrShed)", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}
}

func TestNoSheddingWithoutSLO(t *testing.T) {
	// Without an SLO configured, a degraded server must keep accepting —
	// the PR-7 contract deterministic fault campaigns rely on.
	s := newTenantTestServer(t, Options{
		Workers:          1,
		Fault:            alwaysTransient{},
		MaxRetries:       -1,
		HealthWindow:     8,
		HealthMinSamples: 4,
	})
	q := testQuery(t)
	for i := 0; i < 12; i++ {
		if _, err := s.Infer(q); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("query %d: %v, want ErrUnavailable (not shed)", i, err)
		}
	}
	if st := s.Stats(); st.Shed != 0 {
		t.Fatalf("Stats.Shed = %d, want 0 without an SLO", st.Shed)
	}
}

func TestWeightedTenantsShareSaturatedServer(t *testing.T) {
	// End-to-end fairness: two tenants flood a one-worker server; served
	// counts must track weights within a loose tolerance (scheduling is
	// deterministic, but arrival interleaving is not).
	s := newTenantTestServer(t, Options{Workers: 1, BatchSize: 4, QueueSize: 64})
	heavy, err := s.Tenant(TenantConfig{Name: "heavy", Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	light, err := s.Tenant(TenantConfig{Name: "light", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery(t)
	const perTenant = 48
	replies := make([]<-chan Prediction, 0, 2*perTenant)
	for i := 0; i < perTenant; i++ {
		for _, h := range []*Tenant{heavy, light} {
			r, err := h.InferAsync(q)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			replies = append(replies, r)
		}
	}
	for _, r := range replies {
		if p := <-r; p.Err != nil {
			t.Fatalf("prediction: %v", p.Err)
		}
	}
	hs, ls := heavy.TenantStats(), light.TenantStats()
	if hs.Succeeded != perTenant || ls.Succeeded != perTenant {
		t.Fatalf("succeeded heavy=%d light=%d, want %d each", hs.Succeeded, ls.Succeeded, perTenant)
	}
	if hs.Batches == 0 || ls.Batches == 0 {
		t.Fatalf("batch attribution missing: heavy=%d light=%d", hs.Batches, ls.Batches)
	}
}

func TestParseTenantSpec(t *testing.T) {
	sp, err := ParseTenantSpec(4, "3,1", 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Tenants) != 4 || sp.MinWorkers != 1 || sp.MaxWorkers != 8 {
		t.Fatalf("spec: %+v", sp)
	}
	wantW := []int{3, 1, 1, 1} // short list repeats its last value
	for i, tc := range sp.Tenants {
		if tc.Name != fmt.Sprintf("t%d", i) || tc.Weight != wantW[i] {
			t.Fatalf("tenant %d: %+v, want weight %d", i, tc, wantW[i])
		}
	}
	if _, err := ParseTenantSpec(0, "", 0, 0, 0); err == nil {
		t.Fatal("zero tenants must fail")
	}
	if _, err := ParseTenantSpec(2, "1,x", 0, 0, 0); !errors.Is(err, ErrBadTenantConfig) {
		t.Fatalf("bad weight: %v, want ErrBadTenantConfig", err)
	}
	if _, err := ParseTenantSpec(2, "", -1, 0, 0); !errors.Is(err, ErrBadTenantConfig) {
		t.Fatalf("negative quota: %v, want ErrBadTenantConfig", err)
	}
}

func TestTenantSpecCodecRoundTrip(t *testing.T) {
	sp := TenantSpec{
		MinWorkers: 2,
		MaxWorkers: 16,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 3, Quota: 128, QueueSize: 64},
			{Name: "beta", Weight: 1, Priority: PriorityDirected},
		},
	}
	data := EncodeTenantSpec(sp)
	got, err := DecodeTenantSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", sp) {
		t.Fatalf("round trip: %+v != %+v", got, sp)
	}
	if _, err := DecodeTenantSpec(data[:len(data)-1]); !errors.Is(err, ErrBadSpecEncoding) {
		t.Fatalf("truncated: %v, want ErrBadSpecEncoding", err)
	}
	if _, err := DecodeTenantSpec(append(append([]byte{}, data...), 0)); !errors.Is(err, ErrBadSpecEncoding) {
		t.Fatalf("trailing byte: %v, want ErrBadSpecEncoding", err)
	}
	bad := EncodeTenantSpec(TenantSpec{Tenants: []TenantConfig{{Name: "x", Weight: -1}}})
	if _, err := DecodeTenantSpec(bad); !errors.Is(err, ErrBadTenantConfig) {
		t.Fatalf("invalid spec: %v, want ErrBadTenantConfig", err)
	}
}
