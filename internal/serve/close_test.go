package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentClosersAndSubmitters is the Close-lifecycle regression test
// (run with -race): several goroutines race Close against submitters on both
// the sync and async paths. The contract under test: Close is idempotent and
// safe concurrently, every accepted async query still delivers exactly one
// Prediction, and every submission after close fails with ErrServerClosed —
// never a panic, a hang, or a lost reply.
func TestConcurrentClosersAndSubmitters(t *testing.T) {
	s := newTestServerOpts(t, Options{Workers: 2, QueueSize: 64})
	q := testQuery(t)

	var wg sync.WaitGroup
	var accepted, delivered, closedErrs atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					reply, err := s.InferAsync(q)
					if err != nil {
						if !errors.Is(err, ErrServerClosed) {
							t.Errorf("InferAsync: %v", err)
						}
						closedErrs.Add(1)
						continue
					}
					accepted.Add(1)
					<-reply
					delivered.Add(1)
				} else {
					_, err := s.Infer(q)
					if err != nil && !errors.Is(err, ErrServerClosed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Infer: %v", err)
					}
					if errors.Is(err, ErrServerClosed) {
						closedErrs.Add(1)
					}
				}
			}
		}(g)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(2 * time.Millisecond)
			s.Close()
		}()
	}
	wg.Wait()
	s.Close() // and once more sequentially

	if accepted.Load() != delivered.Load() {
		t.Fatalf("accepted %d async queries, delivered %d replies", accepted.Load(), delivered.Load())
	}
	if closedErrs.Load() == 0 {
		t.Log("close won no races this run (legal, just unexercised)")
	}
	if _, err := s.Infer(q); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Infer after close: %v, want ErrServerClosed", err)
	}
	if _, err := s.InferAsync(q); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("InferAsync after close: %v, want ErrServerClosed", err)
	}
	st := s.Stats()
	if st.Queries != st.Succeeded+st.Failed {
		t.Fatalf("accounting: Queries %d != Succeeded %d + Failed %d", st.Queries, st.Succeeded, st.Failed)
	}
}

// TestCloseRacesTenantRegistration: registering a tenant concurrently with
// Close either succeeds (and the handle then refuses with ErrServerClosed)
// or fails with ErrServerClosed — never panics or deadlocks.
func TestCloseRacesTenantRegistration(t *testing.T) {
	s := newTestServerOpts(t, Options{Workers: 1})
	q := testQuery(t)
	var wg sync.WaitGroup
	wg.Add(2)
	handles := make(chan *Tenant, 16)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			h, err := s.Tenant(TenantConfig{Name: "t" + string(rune('a'+i))})
			if err != nil {
				if !errors.Is(err, ErrServerClosed) {
					t.Errorf("Tenant: %v", err)
				}
				continue
			}
			handles <- h
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		s.Close()
	}()
	wg.Wait()
	close(handles)
	for h := range handles {
		if _, err := h.Infer(q); err != nil && !errors.Is(err, ErrServerClosed) {
			t.Fatalf("tenant infer around close: %v", err)
		}
	}
}
