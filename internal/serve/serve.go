// Package serve deploys a trained PMM for inference, playing the role
// torchserve plays in the paper (§4): a pool of workers consumes mutation
// queries asynchronously so the fuzzer's mutator never blocks on the model,
// and the server tracks the §5.5 performance characteristics (throughput at
// saturation, mean latency).
//
// Since PR 8 the server is a multi-tenant platform: many campaigns share
// one model, one graph-encoding cache and one set of tensor arenas, with
// per-tenant queues scheduled by deterministic deficit round-robin under
// strict priority classes (tenant.go, sched.go), per-tenant quotas and
// SLO-aware shedding at admission, and a worker pool that autoscales
// between MinWorkers and MaxWorkers on queue depth (autoscale.go). The
// single-campaign API is unchanged — a Server routes Infer/InferAsync
// through an implicit default tenant whose behavior is bit-identical to the
// pre-tenancy server.
//
// Unlike a lab-bench server, this one has a failure story. Every query gets
// a per-attempt deadline and a bounded retry budget with exponential backoff
// whose jitter is seeded (internal/rng, not wall clock), a fault-injection
// hook (internal/faultinject) can lose, delay, fail, or corrupt attempts,
// and a rolling health tracker summarizes the recent error/timeout rate so
// callers — the fuzzer in particular — can degrade gracefully instead of
// blocking on a sick model. Each accepted query delivers exactly one
// Prediction on its reply channel; a failed query delivers one with Err set.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// Query is one argument-localization request: the base test, its coverage
// traces, and the desired target blocks.
type Query struct {
	Prog    *prog.Prog
	Traces  [][]kernel.BlockID
	Targets []kernel.BlockID
	// Priority optionally raises the query's class above its tenant's
	// default (it never lowers it): directed-mode runners tag
	// PriorityDirected so their queries outrank background snowplow
	// traffic on a shared server. Zero keeps the tenant default.
	Priority Priority
}

// Prediction is the model's localization answer. Exactly one Prediction is
// delivered per accepted query; Err is non-nil when the query failed after
// exhausting its deadline/retry budget, in which case the caller should fall
// back to random localization, as Snowplow does when PMM cannot keep up.
type Prediction struct {
	// Slots are the argument slots predicted MUTATE.
	Slots []prog.GlobalSlot
	// Probs are the per-slot probabilities, aligned with Prog.AllSlots().
	Probs []float64
	// Latency is the queue+inference+retry time of this query.
	Latency time.Duration
	// ModelVersion identifies the hot-swap generation of the model that
	// served this prediction (0 = the model the server started with). A
	// batch is always served wholly by one version: the worker reads the
	// atomic model slot once per forward pass.
	ModelVersion int64
	// Err is the terminal failure, if the query could not be served.
	Err error
}

// Stats reports serving performance (§5.5) and the failure-model counters.
type Stats struct {
	// Served counts worker-completed inference attempts (it can exceed
	// Succeeded: an attempt whose waiter already timed out still ran).
	Served int64
	// Rejected counts submissions refused outright (server closed).
	Rejected int64
	// Queries, Succeeded and Failed count accepted queries and their
	// terminal outcomes; once all replies are delivered,
	// Queries == Succeeded + Failed.
	Queries   int64
	Succeeded int64
	Failed    int64
	// QuotaRejected and Shed count admission-control refusals: tenant
	// quota overruns and SLO/health sheds of background-class queries.
	QuotaRejected int64
	Shed          int64
	// Retries counts extra attempts beyond each query's first.
	Retries int64
	// Timeouts counts attempts that hit the per-query deadline.
	Timeouts int64
	// Batches counts model forward passes; with micro-batching enabled one
	// pass can serve many queries. BatchedQueries counts queries served in
	// passes of two or more, and AvgBatchSize is Served/Batches.
	Batches        int64
	BatchedQueries int64
	AvgBatchSize   float64
	// CacheHits/CacheMisses mirror the builder's graph-encoding cache
	// counters (zero when no cache is attached).
	CacheHits   int64
	CacheMisses int64
	// Injected fault counters, by kind.
	InjDropped   int64
	InjTransient int64
	InjLatency   int64
	InjCorrupt   int64
	// BatchFill is AvgBatchSize / Options.BatchSize — how full the
	// micro-batches ran (1.0 = every forward pass served a full batch).
	BatchFill float64
	// Fused and Quantized report which inference path served the run.
	Fused     bool
	Quantized bool
	// ModelVersion is the current hot-swap generation of the serving model
	// (0 until the first SwapModel).
	ModelVersion int64
	// Kernel snapshots the fused/quantized kernel counters and — when
	// kernel profiling is on — per-op kernel time (see nn.InferProfile).
	Kernel nn.InferProfile
	// MeanLatency averages over succeeded queries.
	MeanLatency time.Duration
	// Throughput is succeeded queries per second over the serving lifetime.
	Throughput float64
	// ErrorRate is the failure fraction over the rolling health window.
	ErrorRate float64
	// Healthy mirrors Server.Healthy at snapshot time.
	Healthy bool
	// TenantCount and Workers report the registered-tenant count and the
	// current worker-pool target; ScaleUps/ScaleDowns count autoscale
	// decisions (see Server.ScaleLog for the full journal).
	TenantCount int
	Workers     int
	ScaleUps    int64
	ScaleDowns  int64
}

// Sentinel errors. ErrServerClosed is returned (or delivered via
// Prediction.Err) for queries submitted to, or in flight across, Close.
// ErrQuotaExceeded and ErrShed are admission refusals: the query was never
// accepted, no Prediction is owed, and neither counts against health.
var (
	ErrServerClosed  = errors.New("serve: server closed")
	ErrDeadline      = errors.New("serve: deadline exceeded")
	ErrQueueFull     = errors.New("serve: queue full")
	ErrUnavailable   = errors.New("serve: unavailable after retries")
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	ErrShed          = errors.New("serve: shed by admission control")
)

// ErrClosed is a deprecated alias for ErrServerClosed.
var ErrClosed = ErrServerClosed

// Options configures a Server. The zero value of any field takes a default.
type Options struct {
	// Workers is the initial inference pool size (the paper's GPU
	// replicas). Default 1. With autoscaling enabled it is clamped into
	// [MinWorkers, MaxWorkers].
	Workers int
	// MinWorkers/MaxWorkers bound the autoscaling worker pool. Both
	// default to Workers, which disables autoscaling; set MaxWorkers >
	// MinWorkers to let the pool grow under queue pressure and shrink when
	// idle (see autoscale.go). Scaling never changes predictions — only
	// how many attempts are in flight at once.
	MinWorkers int
	MaxWorkers int
	// ScaleInterval is the autoscaler evaluation period. Default 5ms.
	ScaleInterval time.Duration
	// ScaleUpAt/ScaleDownAt are queue-depth watermarks in units of queued
	// attempts per current worker: depth > ScaleUpAt*workers votes to grow,
	// depth < ScaleDownAt*workers votes to shrink. Defaults 2.0 / 0.25.
	ScaleUpAt   float64
	ScaleDownAt float64
	// ScaleHold is the hysteresis: how many consecutive evaluations must
	// agree before a scaling decision is applied. Default 2.
	ScaleHold int
	// SLOQueueWait enables SLO-aware shedding: when the smoothed queue
	// wait exceeds it — or the health tracker reports the server degraded —
	// background-class submissions are refused with ErrShed at admission.
	// Directed-class queries are never shed. Zero disables shedding, which
	// keeps deterministic single-campaign replays byte-identical.
	SLOQueueWait time.Duration
	// BatchSize is the micro-batch limit: a worker picking up a query
	// drains up to BatchSize-1 more already-queued queries — across
	// tenants, in scheduler order — and serves them all in one union-graph
	// forward pass (pmm.PredictBatch). Batching changes only throughput —
	// each query's prediction is bit-identical to an unbatched one.
	// Default 1 (no batching).
	BatchSize int
	// QueueSize bounds each tenant's pending-attempt queue (the default
	// for TenantConfig.QueueSize). Default MaxWorkers*8*BatchSize, so a
	// saturated queue can feed full batches at full scale.
	QueueSize int
	// Deadline bounds one attempt's queue+inference wait. Default 5s.
	Deadline time.Duration
	// MaxRetries is the number of extra attempts after the first.
	// Default 2; pass a negative value for no retries.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: attempt k waits Base<<(k-1) plus seeded jitter in
	// [0, Base), capped at Max. Defaults 1ms / 100ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffSeed seeds the retry jitter (per query sequence number, not
	// wall clock), keeping faulty campaigns reproducible. Default 0x5eed.
	BackoffSeed uint64
	// Fault, when non-nil, is consulted once per attempt to inject
	// failures (see internal/faultinject). Nil serves faithfully.
	Fault faultinject.Injector
	// HealthWindow is the rolling-outcome window size. Default 64.
	HealthWindow int
	// HealthMinSamples is how many outcomes must be observed before the
	// server can report unhealthy. Default 16.
	HealthMinSamples int
	// UnhealthyAt is the window error rate at or above which the server
	// reports unhealthy. Default 0.5.
	UnhealthyAt float64
	// Metrics, when non-nil, receives the serving instrument bundle plus
	// pull-model gauges over the graph cache, tensor pool and inference
	// kernels (see OBSERVABILITY.md). Nil disables metrics at zero
	// measurable cost.
	Metrics *obs.Registry
	// Fused routes frozen forwards through the fused inference kernels
	// (pmm.Model.EnableFused): linear+bias+ReLU, attention and add+LayerNorm
	// collapse into single arena-aware kernels, bit-identical to the unfused
	// chain. cmd/snowplow passes -fused (default true).
	Fused bool
	// Quant int8-quantizes the model's large weights before serving
	// (pmm.Model.Quantize): weights are stored as int8 codes and the float64
	// weights are rewritten with their dequantized values, so predictions
	// stay reproducible per seed. No-op if the model already carries a
	// quantized registry (e.g. loaded from a mixed-precision checkpoint).
	Quant bool
	// KernelProfile enables per-op kernel timing (nn.SetKernelProfiling,
	// process-wide): Stats.Kernel then reports time per kernel class.
	// Implied by Metrics so the nn_infer_*_ns gauges are live.
	KernelProfile bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MinWorkers <= 0 {
		o.MinWorkers = o.Workers
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = o.Workers
	}
	if o.MaxWorkers < o.MinWorkers {
		o.MaxWorkers = o.MinWorkers
	}
	if o.Workers < o.MinWorkers {
		o.Workers = o.MinWorkers
	}
	if o.Workers > o.MaxWorkers {
		o.Workers = o.MaxWorkers
	}
	if o.ScaleInterval <= 0 {
		o.ScaleInterval = 5 * time.Millisecond
	}
	if o.ScaleUpAt <= 0 {
		o.ScaleUpAt = 2.0
	}
	if o.ScaleDownAt <= 0 {
		o.ScaleDownAt = 0.25
	}
	if o.ScaleHold <= 0 {
		o.ScaleHold = 2
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = o.MaxWorkers * 8 * o.BatchSize
	}
	if o.Deadline <= 0 {
		o.Deadline = 5 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.BackoffSeed == 0 {
		o.BackoffSeed = 0x5eed
	}
	if o.HealthWindow <= 0 {
		o.HealthWindow = 64
	}
	if o.HealthMinSamples <= 0 {
		o.HealthMinSamples = 16
	}
	if o.UnhealthyAt <= 0 {
		o.UnhealthyAt = 0.5
	}
	return o
}

// attempt is one unit of worker-pool work. done is buffered so the worker
// never blocks on a waiter that already gave up (deadline or close).
// Attempts are pooled (attemptPool): a dispatcher that receives the result
// resets and recycles the struct and its channel; an abandoned attempt is
// left to the garbage collector, since the worker may still deliver into it.
type attempt struct {
	q    Query
	t    *tenant
	prio Priority
	done chan attemptResult
	// enq is the enqueue instant for the queue-wait histogram and the SLO
	// tracker; zero when both are disabled (time.Now is skipped entirely).
	enq time.Time
}

func (a *attempt) reset() {
	a.q = Query{}
	a.t = nil
	a.prio = 0
	a.enq = time.Time{}
}

type attemptResult struct {
	slots   []prog.GlobalSlot
	probs   []float64
	version int64
}

// attemptPool recycles attempt structs and their reply channels through the
// dispatch path: steady-state inference allocates no per-attempt channel.
var attemptPool = sync.Pool{New: func() any {
	return &attempt{done: make(chan attemptResult, 1)}
}}

// timerPool recycles deadline/backoff timers. A timer is recycled only by
// the goroutine that owns its channel, after Stop-and-drain (or after its
// fire was consumed), so Reset on reuse is race-free.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// modelSlot pairs a serving-ready model with its hot-swap generation. The
// server publishes exactly one slot at a time behind an atomic pointer:
// workers load it once per forward pass, so every batch — and therefore
// every reply — is attributable to exactly one version, and a swap can never
// be observed torn.
type modelSlot struct {
	m       *pmm.Model
	version int64
}

// Server runs a worker pool over a frozen model, fronted by per-query
// dispatchers that own deadlines, retries, and fault injection, and a
// cross-tenant scheduler that owns who is served next.
type Server struct {
	model   atomic.Pointer[modelSlot]
	builder *qgraph.Builder
	opts    Options

	sched    *sched
	def      *tenant
	workerWG sync.WaitGroup
	queryWG  sync.WaitGroup
	closeCh  chan struct{}
	started  time.Time
	seq      atomic.Uint64

	mu     sync.Mutex
	closed bool

	health *healthTracker

	// scaler owns the autoscaling evaluator and the scale journal.
	scaler autoscaler

	// ewmaWaitNs smooths observed queue waits for SLO shedding; sloOn
	// gates the time.Now calls it needs.
	ewmaWaitNs atomic.Int64
	sloOn      bool

	// m holds the obs instruments (nil-safe fields when Options.Metrics
	// is nil); obsOn gates the time.Now calls metrics need.
	m     *serveMetrics
	obsOn bool

	served, rejected           atomic.Int64
	queries, succeeded, failed atomic.Int64
	quotaRejected, shed        atomic.Int64
	retries, timeouts          atomic.Int64
	batches, batchedQueries    atomic.Int64
	injDropped, injTransient   atomic.Int64
	injLatency, injCorrupt     atomic.Int64
	totalLat                   atomic.Int64 // nanoseconds, succeeded queries
}

// NewServer creates and starts a server with the given number of worker
// goroutines and default robustness options. The model is frozen for
// concurrent inference.
func NewServer(model *pmm.Model, builder *qgraph.Builder, workers int) *Server {
	return NewServerOpts(model, builder, Options{Workers: workers})
}

// NewServerOpts creates and starts a server with explicit options.
func NewServerOpts(model *pmm.Model, builder *qgraph.Builder, opts Options) *Server {
	opts = opts.withDefaults()
	if err := prepareModel(model, opts); err != nil {
		// Quantization fails only on a registry/model shape mismatch —
		// a programming error, not an input condition.
		panic("serve: prepare model: " + err.Error())
	}
	if opts.KernelProfile || opts.Metrics != nil {
		nn.SetKernelProfiling(true)
	}
	s := &Server{
		builder: builder,
		opts:    opts,
		sched:   newSched(),
		closeCh: make(chan struct{}),
		started: time.Now(),
		health:  newHealthTracker(opts.HealthWindow),
		sloOn:   opts.SLOQueueWait > 0,
		m:       newServeMetrics(opts.Metrics),
		obsOn:   opts.Metrics != nil,
	}
	s.model.Store(&modelSlot{m: model})
	if opts.Metrics != nil {
		s.registerPullGauges(opts.Metrics)
	}
	// The default tenant carries the pre-tenancy contract: weight 1,
	// background class, and no quota (admission bounded only by the
	// retryable queue, exactly as before multi-tenancy).
	def, err := s.sched.register(TenantConfig{
		Name:      "default",
		Weight:    1,
		Quota:     int(^uint(0) >> 1),
		QueueSize: opts.QueueSize,
	}, s)
	if err != nil {
		panic("serve: register default tenant: " + err.Error())
	}
	s.def = def
	s.m.tenantCount.Set(1)
	s.sched.alive = make([]bool, opts.MaxWorkers)
	s.startWorkers(opts.Workers)
	s.scaler.start(s)
	return s
}

// prepareModel makes a model serving-ready under the server's options:
// frozen for concurrent pooled inference, quantized when the server serves
// int8 weights, fused when the server serves fused kernels. Every swapped-in
// checkpoint passes through here, so a hot swap can never silently downgrade
// the inference path the campaign was configured with.
func prepareModel(m *pmm.Model, opts Options) error {
	m.Freeze()
	if opts.Quant && m.Quantized() == nil {
		if err := m.Quantize(); err != nil {
			return err
		}
	}
	if opts.Fused && !m.Fused() {
		m.EnableFused()
	}
	return nil
}

// Model returns the currently served model (the latest swapped-in
// generation). The returned model is frozen and safe for concurrent
// read-only use, but callers must not mutate it.
func (s *Server) Model() *pmm.Model { return s.model.Load().m }

// ModelVersion returns the current hot-swap generation (0 until the first
// SwapModel).
func (s *Server) ModelVersion() int64 { return s.model.Load().version }

// SwapModel atomically replaces the serving model with a new checkpoint
// generation, without pausing workers or in-flight queries: batches already
// holding the old slot finish on the old model, batches picked up after the
// store run wholly on the new one. The model is prepared (Freeze, and
// Quantize/EnableFused when the server's options demand them) before it
// becomes visible. Versions are monotonic: a swap at or below the current
// version is a no-op returning false, which makes concurrent swap attempts
// of the same generation — e.g. every tenant of a shared cluster server
// applying the same coordinator push — idempotent.
func (s *Server) SwapModel(m *pmm.Model, version int64) (bool, error) {
	if m == nil {
		return false, errors.New("serve: swap of nil model")
	}
	if err := prepareModel(m, s.opts); err != nil {
		return false, fmt.Errorf("serve: prepare swapped model: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if version <= s.model.Load().version {
		return false, nil
	}
	s.model.Store(&modelSlot{m: m, version: version})
	return true, nil
}

// GraphCacheCapacity reports the builder's graph-encoding cache capacity
// (0 when no cache is attached). Campaigns use it to mirror the cache's LRU
// policy in deterministic, schedule-independent accounting.
func (s *Server) GraphCacheCapacity() int {
	if s.builder.Cache == nil {
		return 0
	}
	return s.builder.Cache.Capacity()
}

// startWorkers raises the pool target to n, spawning worker goroutines for
// every dead id below n.
func (s *Server) startWorkers(n int) {
	sc := s.sched
	sc.mu.Lock()
	sc.target = n
	for id := 0; id < n; id++ {
		if !sc.alive[id] {
			sc.alive[id] = true
			s.workerWG.Add(1)
			go s.workerLoop(id)
		}
	}
	sc.mu.Unlock()
	s.m.scaleWorkers.Set(int64(n))
}

// workerLoop serves scheduler batches until the server closes or the pool
// scales below this worker's id. With BatchSize > 1 it opportunistically
// tops the batch up with whatever is already queued — never waiting for a
// batch to fill, an idle queue must not add latency — and serves the whole
// micro-batch in one union-graph forward pass.
func (s *Server) workerLoop(id int) {
	defer s.workerWG.Done()
	maxBatch := s.opts.BatchSize
	batch := make([]*attempt, 0, maxBatch)
	gs := make([]*qgraph.Graph, 0, maxBatch)
	for {
		batch = s.sched.popBlocking(batch[:0], 1, id)
		if len(batch) == 0 {
			return
		}
		if maxBatch > 1 {
			if s.sched.depth() == 0 {
				// Yield once so dispatchers that are runnable but not yet
				// scheduled can enqueue; without this, pickup ping-pongs
				// worker and dispatcher on a loaded single-core host and
				// batches never form. Skipped when the queue already holds
				// work — yielding then would only starve serving behind
				// compute-heavy goroutines. Free when nothing else runs.
				runtime.Gosched()
			}
			batch = s.sched.popMore(batch, maxBatch-len(batch))
		}
		s.serveBatch(batch, &gs)
	}
}

// serveBatch runs one union-graph forward pass over a scheduler batch and
// delivers each attempt's result, attributing cache traffic, batch shares
// and queue waits to the owning tenants.
func (s *Server) serveBatch(batch []*attempt, gs *[]*qgraph.Graph) {
	cached := s.builder.Cache != nil
	if s.obsOn || s.sloOn {
		now := time.Now()
		for _, at := range batch {
			if at.enq.IsZero() {
				continue
			}
			wait := now.Sub(at.enq).Nanoseconds()
			if s.obsOn {
				s.m.queueWait.Observe(wait)
			}
			at.t.queueWaitNs.Add(wait)
			at.t.queueWaited.Add(1)
			if s.sloOn {
				// Racy read-modify-write is fine: the EWMA is an
				// approximate load signal, not an accounting counter.
				old := s.ewmaWaitNs.Load()
				s.ewmaWaitNs.Store(old + (wait-old)/8)
			}
		}
		if s.obsOn {
			s.m.queueDepth.Set(int64(s.sched.depth()))
			s.m.batchSize.Observe(int64(len(batch)))
		}
	}
	g := (*gs)[:0]
	for _, at := range batch {
		bg, hit := s.builder.BuildCached(at.q.Prog, at.q.Traces, at.q.Targets)
		g = append(g, bg)
		if cached {
			if hit {
				at.t.cacheHits.Add(1)
			} else {
				at.t.cacheMisses.Add(1)
			}
		}
	}
	*gs = g
	slot := s.model.Load()
	slots, probs := slot.m.PredictBatch(g)
	s.batches.Add(1)
	s.m.batches.Inc()
	if len(batch) > 1 {
		s.batchedQueries.Add(int64(len(batch)))
		s.m.batchedQueries.Add(int64(len(batch)))
	}
	// All per-attempt bookkeeping happens before any result is delivered:
	// the first send hands the attempt back to its dispatcher, which may
	// reset and recycle it while this loop is still walking the batch.
	for i, at := range batch {
		// Credit each distinct tenant's batch share once per pass.
		shared := false
		for j := 0; j < i; j++ {
			if batch[j].t == at.t {
				shared = true
				break
			}
		}
		if !shared {
			at.t.batches.Add(1)
		}
		s.served.Add(1)
		at.t.served.Add(1)
	}
	for i, at := range batch {
		at.done <- attemptResult{slots: slots[i], probs: probs[i], version: slot.version}
	}
}

// effectivePriority resolves a query's class: the tenant default, raised
// (never lowered) by an explicit Query.Priority tag.
func effectivePriority(t *tenant, q Query) Priority {
	p := t.cfg.Priority
	if q.Priority > p && q.Priority < numPriorities {
		p = q.Priority
	}
	return p
}

// accept is admission control: it refuses on a closed server, a tenant over
// quota, or (background class, SLO configured) degraded serving, and
// otherwise registers the query as in flight. Refusals are immediate errors
// — no Prediction is owed — and none count against health: they are load
// control, not serving failure.
func (s *Server) accept(t *tenant, prio Priority) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		s.m.rejected.Inc()
		t.rejected.Add(1)
		return ErrServerClosed
	}
	if t.pending.Load() >= int64(t.cfg.Quota) {
		s.mu.Unlock()
		s.quotaRejected.Add(1)
		s.m.tenantQuotaRejected.Inc()
		t.quotaRejected.Add(1)
		return ErrQuotaExceeded
	}
	if s.sloOn && prio == PriorityBackground &&
		(time.Duration(s.ewmaWaitNs.Load()) > s.opts.SLOQueueWait || !s.Healthy()) {
		s.mu.Unlock()
		s.shed.Add(1)
		s.m.tenantShed.Inc()
		t.shed.Add(1)
		return ErrShed
	}
	t.pending.Add(1)
	s.queryWG.Add(1)
	s.mu.Unlock()
	s.queries.Add(1)
	s.m.queries.Inc()
	s.m.tenantAdmitted.Inc()
	t.queries.Add(1)
	return nil
}

// InferAsync submits a query and returns a channel delivering exactly one
// prediction (with Err set on terminal failure). The error is non-nil only
// if the query is refused at admission (closed, over quota, or shed).
func (s *Server) InferAsync(q Query) (<-chan Prediction, error) {
	return s.inferAsync(s.def, q)
}

// Infer submits a query and blocks for the prediction, applying the same
// deadline/retry/fault machinery as InferAsync.
func (s *Server) Infer(q Query) (Prediction, error) {
	return s.infer(s.def, q)
}

func (s *Server) inferAsync(t *tenant, q Query) (<-chan Prediction, error) {
	prio := effectivePriority(t, q)
	if err := s.accept(t, prio); err != nil {
		return nil, err
	}
	seq := s.seq.Add(1) - 1
	reply := make(chan Prediction, 1)
	go func() {
		reply <- s.dispatch(t, q, prio, seq)
	}()
	return reply, nil
}

func (s *Server) infer(t *tenant, q Query) (Prediction, error) {
	prio := effectivePriority(t, q)
	if err := s.accept(t, prio); err != nil {
		return Prediction{}, err
	}
	seq := s.seq.Add(1) - 1
	// The blocking path dispatches inline: no goroutine, no reply channel.
	p := s.dispatch(t, q, prio, seq)
	if p.Err != nil {
		return Prediction{}, p.Err
	}
	return p, nil
}

// dispatch owns one accepted query end to end: it plans faults, enqueues
// attempts on the scheduler, enforces the deadline, retries with seeded
// backoff, and returns exactly one terminal Prediction.
func (s *Server) dispatch(t *tenant, q Query, prio Priority, seq uint64) Prediction {
	start := time.Now()
	finish := func(p Prediction) Prediction {
		p.Latency = time.Since(start)
		if p.Err != nil {
			s.failed.Add(1)
			s.m.failed.Inc()
			t.failed.Add(1)
		} else {
			s.succeeded.Add(1)
			s.totalLat.Add(int64(p.Latency))
			s.m.succeeded.Inc()
			t.succeeded.Add(1)
		}
		s.m.latency.Observe(p.Latency.Nanoseconds())
		// Queue-full is backpressure from the caller, not server
		// ill-health — counting it would let a hot client talk a healthy
		// server into degraded mode. Close-time terminations are likewise
		// not a health signal.
		if !errors.Is(p.Err, ErrQueueFull) && !errors.Is(p.Err, ErrServerClosed) {
			s.health.record(p.Err == nil)
		}
		t.pending.Add(-1)
		s.queryWG.Done()
		return p
	}
	lastErr := ErrUnavailable
	for att := 0; att <= s.opts.MaxRetries; att++ {
		if att > 0 {
			s.retries.Add(1)
			s.m.retries.Inc()
			if !s.sleep(s.backoff(seq, att)) {
				return finish(Prediction{Err: ErrServerClosed})
			}
		}
		var d faultinject.Decision
		if s.opts.Fault != nil {
			d = s.opts.Fault.Plan(seq, att)
		}
		switch d.Fault {
		case faultinject.FaultTransient:
			s.injTransient.Add(1)
			s.m.injTransient.Inc()
			lastErr = ErrUnavailable
			continue
		case faultinject.FaultDrop:
			// The reply is lost and the deadline expires. The wait
			// itself is not reproduced in wall clock — simulated
			// time lives in the fuzzer's budget, and sleeping here
			// would only slow the host and perturb determinism.
			s.injDropped.Add(1)
			s.m.injDropped.Inc()
			s.timeouts.Add(1)
			s.m.timeouts.Inc()
			lastErr = ErrDeadline
			continue
		case faultinject.FaultLatency:
			s.injLatency.Add(1)
			s.m.injLatency.Inc()
			if !s.sleep(d.Latency) {
				return finish(Prediction{Err: ErrServerClosed})
			}
		}
		res, err := s.runAttempt(t, q, prio)
		if err != nil {
			if errors.Is(err, ErrServerClosed) {
				return finish(Prediction{Err: err})
			}
			if errors.Is(err, ErrDeadline) {
				s.timeouts.Add(1)
				s.m.timeouts.Inc()
			}
			lastErr = err
			continue
		}
		if d.Fault == faultinject.FaultCorrupt {
			s.injCorrupt.Add(1)
			s.m.injCorrupt.Inc()
			res = corruptResult(seq, q, res)
		}
		return finish(Prediction{Slots: res.slots, Probs: res.probs, ModelVersion: res.version})
	}
	return finish(Prediction{Err: lastErr})
}

// runAttempt enqueues one attempt on the scheduler and waits for it under
// the per-attempt deadline. A full tenant queue is a retryable failure, as
// in the paper's deployment where an overloaded replica sheds load.
func (s *Server) runAttempt(t *tenant, q Query, prio Priority) (attemptResult, error) {
	a := attemptPool.Get().(*attempt)
	a.q = q
	a.t = t
	a.prio = prio
	if s.obsOn || s.sloOn {
		a.enq = time.Now()
	}
	if err := s.sched.enqueue(a); err != nil {
		// Never reached a worker: the struct and channel are clean.
		a.reset()
		attemptPool.Put(a)
		return attemptResult{}, err
	}
	timer := getTimer(s.opts.Deadline)
	select {
	case r := <-a.done:
		putTimer(timer)
		a.reset()
		attemptPool.Put(a)
		return r, nil
	case <-timer.C:
		// The worker may still deliver into a.done; the attempt is
		// abandoned to the GC rather than recycled. The fired timer's
		// channel is drained, so it is safe to reuse.
		timerPool.Put(timer)
		return attemptResult{}, ErrDeadline
	case <-s.closeCh:
		putTimer(timer)
		return attemptResult{}, ErrServerClosed
	}
}

// backoff computes the delay before the att-th attempt of query seq:
// exponential in the attempt number with jitter drawn from a generator
// seeded by (BackoffSeed, seq, att) — never from wall clock — so retry
// schedules are identical across campaign replays.
func (s *Server) backoff(seq uint64, att int) time.Duration {
	base := s.opts.BackoffBase
	d := base << uint(att-1)
	if d > s.opts.BackoffMax || d <= 0 {
		d = s.opts.BackoffMax
	}
	r := rng.New(s.opts.BackoffSeed ^ (seq+1)*0x9e3779b97f4a7c15 ^ uint64(att)*0xd6e8feb86659fd93)
	return d + time.Duration(r.Float64()*float64(base))
}

// sleep waits for d, aborting early (returning false) if the server closes.
func (s *Server) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.closeCh:
			return false
		default:
			return true
		}
	}
	timer := getTimer(d)
	select {
	case <-timer.C:
		timerPool.Put(timer)
		return true
	case <-s.closeCh:
		putTimer(timer)
		return false
	}
}

// corruptResult deterministically scrambles a prediction: slot references
// that may point outside the program and probabilities outside [0, 1].
// Consumers must treat predictions as untrusted input.
func corruptResult(seq uint64, q Query, res attemptResult) attemptResult {
	r := rng.New(seq*0xa0761d6478bd642f + 0xbad)
	n := 1 + r.Intn(4)
	slots := make([]prog.GlobalSlot, n)
	for i := range slots {
		slots[i] = prog.GlobalSlot{
			Call: r.Intn(2*len(q.Prog.Calls)+2) - 1,
			Slot: r.Intn(16) - 1,
		}
	}
	probs := make([]float64, len(res.probs))
	for i := range probs {
		probs[i] = 2*r.Float64() - 0.5
	}
	return attemptResult{slots: slots, probs: probs}
}

// Healthy reports whether the rolling error rate is below the unhealthy
// threshold (or too few outcomes have been observed to judge).
func (s *Server) Healthy() bool {
	rate, n := s.health.snapshot()
	return n < s.opts.HealthMinSamples || rate < s.opts.UnhealthyAt
}

// ErrorRate returns the failure fraction over the rolling health window.
func (s *Server) ErrorRate() float64 {
	rate, _ := s.health.snapshot()
	return rate
}

// Stats returns a snapshot of serving statistics.
func (s *Server) Stats() Stats {
	succeeded := s.succeeded.Load()
	var mean time.Duration
	if succeeded > 0 {
		mean = time.Duration(s.totalLat.Load() / succeeded)
	}
	elapsed := time.Since(s.started).Seconds()
	var tput float64
	if elapsed > 0 {
		tput = float64(succeeded) / elapsed
	}
	rate, _ := s.health.snapshot()
	batches := s.batches.Load()
	var avgBatch float64
	if batches > 0 {
		avgBatch = float64(s.served.Load()) / float64(batches)
	}
	var cacheHits, cacheMisses int64
	if s.builder.Cache != nil {
		cs := s.builder.Cache.Stats()
		cacheHits, cacheMisses = cs.Hits, cs.Misses
	}
	var fill float64
	if batches > 0 && s.opts.BatchSize > 0 {
		fill = avgBatch / float64(s.opts.BatchSize)
	}
	slot := s.model.Load()
	return Stats{
		Served:         s.served.Load(),
		Rejected:       s.rejected.Load(),
		Queries:        s.queries.Load(),
		Succeeded:      succeeded,
		Failed:         s.failed.Load(),
		QuotaRejected:  s.quotaRejected.Load(),
		Shed:           s.shed.Load(),
		Retries:        s.retries.Load(),
		Timeouts:       s.timeouts.Load(),
		Batches:        batches,
		BatchedQueries: s.batchedQueries.Load(),
		AvgBatchSize:   avgBatch,
		BatchFill:      fill,
		Fused:          slot.m.Fused(),
		Quantized:      slot.m.Quantized() != nil,
		ModelVersion:   slot.version,
		Kernel:         slot.m.InferProfile(),
		CacheHits:      cacheHits,
		CacheMisses:    cacheMisses,
		InjDropped:     s.injDropped.Load(),
		InjTransient:   s.injTransient.Load(),
		InjLatency:     s.injLatency.Load(),
		InjCorrupt:     s.injCorrupt.Load(),
		MeanLatency:    mean,
		Throughput:     tput,
		ErrorRate:      rate,
		Healthy:        s.Healthy(),
		TenantCount:    s.sched.numTenants(),
		Workers:        s.scaler.workersNow(s),
		ScaleUps:       s.scaler.ups.Load(),
		ScaleDowns:     s.scaler.downs.Load(),
	}
}

// Close stops the server. In-flight queries complete promptly: each still
// delivers exactly one Prediction, with Err set to ErrServerClosed if it was
// interrupted. Submissions racing or following Close return ErrServerClosed.
// Close is idempotent and safe to call concurrently with submitters and
// other closers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.closeCh)
	s.mu.Unlock()
	// Only the first closer reaches this point: stop the autoscaler, wait
	// out every accepted query (all abort promptly on closeCh), then wake
	// the workers to observe the closed scheduler and drain out.
	s.scaler.stopEvaluator()
	s.queryWG.Wait()
	s.sched.close()
	s.workerWG.Wait()
}

// healthTracker keeps a rolling window of query outcomes. It is the signal
// the fuzzer consults to raise its random-fallback probability and shed
// pending queries while serving is degraded (§3.4's graceful degradation).
type healthTracker struct {
	mu    sync.Mutex
	ring  []bool // true = failure
	n     int    // filled entries
	idx   int
	fails int
}

func newHealthTracker(window int) *healthTracker {
	return &healthTracker{ring: make([]bool, window)}
}

func (h *healthTracker) record(ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == len(h.ring) {
		if h.ring[h.idx] {
			h.fails--
		}
	} else {
		h.n++
	}
	h.ring[h.idx] = !ok
	if !ok {
		h.fails++
	}
	h.idx = (h.idx + 1) % len(h.ring)
}

func (h *healthTracker) snapshot() (rate float64, samples int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0, 0
	}
	return float64(h.fails) / float64(h.n), h.n
}
