// Package serve deploys a trained PMM for inference, playing the role
// torchserve plays in the paper (§4): a pool of workers consumes mutation
// queries asynchronously so the fuzzer's mutator never blocks on the model,
// and the server tracks the §5.5 performance characteristics (throughput at
// saturation, mean latency).
package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
)

// Query is one argument-localization request: the base test, its coverage
// traces, and the desired target blocks.
type Query struct {
	Prog    *prog.Prog
	Traces  [][]kernel.BlockID
	Targets []kernel.BlockID
}

// Prediction is the model's localization answer.
type Prediction struct {
	// Slots are the argument slots predicted MUTATE.
	Slots []prog.GlobalSlot
	// Probs are the per-slot probabilities, aligned with Prog.AllSlots().
	Probs []float64
	// Latency is the queue+inference time of this query.
	Latency time.Duration
}

// Stats reports serving performance (§5.5).
type Stats struct {
	Served      int64
	Rejected    int64
	MeanLatency time.Duration
	// Throughput is queries per second over the serving lifetime so far.
	Throughput float64
}

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = errors.New("serve: server closed")

type job struct {
	q        Query
	enqueued time.Time
	reply    chan Prediction
}

// Server runs a worker pool over a frozen model.
type Server struct {
	model   *pmm.Model
	builder *qgraph.Builder

	jobs    chan job
	wg      sync.WaitGroup
	started time.Time

	mu       sync.Mutex
	closed   bool
	served   atomic.Int64
	rejected atomic.Int64
	totalLat atomic.Int64 // nanoseconds
}

// NewServer creates and starts a server with the given number of worker
// goroutines (the paper's GPU replicas). The model is frozen for concurrent
// inference.
func NewServer(model *pmm.Model, builder *qgraph.Builder, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	model.Freeze()
	s := &Server{
		model:   model,
		builder: builder,
		jobs:    make(chan job, workers*8),
		started: time.Now(),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		g := s.builder.Build(j.q.Prog, j.q.Traces, j.q.Targets)
		slots, probs := s.model.Predict(g)
		lat := time.Since(j.enqueued)
		s.served.Add(1)
		s.totalLat.Add(int64(lat))
		j.reply <- Prediction{Slots: slots, Probs: probs, Latency: lat}
	}
}

// InferAsync submits a query and returns a channel delivering exactly one
// prediction. The error is non-nil if the server is closed or its queue is
// full (the caller should fall back to random localization, as Snowplow
// does when PMM cannot keep up).
func (s *Server) InferAsync(q Query) (<-chan Prediction, error) {
	reply := make(chan Prediction, 1)
	j := job{q: q, enqueued: time.Now(), reply: reply}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case s.jobs <- j:
		return reply, nil
	default:
		s.rejected.Add(1)
		return nil, errors.New("serve: queue full")
	}
}

// Infer submits a query and blocks for the prediction.
func (s *Server) Infer(q Query) (Prediction, error) {
	reply := make(chan Prediction, 1)
	j := job{q: q, enqueued: time.Now(), reply: reply}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return Prediction{}, ErrClosed
	}
	s.jobs <- j
	s.mu.Unlock()
	return <-reply, nil
}

// Stats returns a snapshot of serving statistics.
func (s *Server) Stats() Stats {
	served := s.served.Load()
	var mean time.Duration
	if served > 0 {
		mean = time.Duration(s.totalLat.Load() / served)
	}
	elapsed := time.Since(s.started).Seconds()
	var tput float64
	if elapsed > 0 {
		tput = float64(served) / elapsed
	}
	return Stats{
		Served:      served,
		Rejected:    s.rejected.Load(),
		MeanLatency: mean,
		Throughput:  tput,
	}
}

// Close drains the queue and stops the workers. Pending queries complete.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}
