// Steady-state allocation budget for the inference hot path. The sync Infer
// path dispatches inline and recycles attempts, reply bookkeeping and
// deadline timers through pools, so a cache-hit query should allocate only
// the model's per-query outputs. The guard test pins the budget to the
// pre-tenancy server's measured footprint: multi-tenancy must not cost the
// single-campaign hot path anything.

package serve

import (
	"testing"

	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// maxSteadyStateBytesPerOp is the pre-tenancy (PR-7) BenchmarkInferSteadyState
// B/op on the reference container; the pooled dispatch path must stay at or
// under it.
const maxSteadyStateBytesPerOp = 32209

func benchInferSteadyState(b *testing.B) {
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	s := NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn).WithCache(64), Options{Workers: 1})
	defer s.Close()
	q := testQuery(b)
	// Warm the graph cache so the loop measures the steady state.
	if _, err := s.Infer(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Infer(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferSteadyState(b *testing.B) { benchInferSteadyState(b) }

func TestInferSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget measurement in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the allocation footprint")
	}
	res := testing.Benchmark(benchInferSteadyState)
	if got := res.AllocedBytesPerOp(); got > maxSteadyStateBytesPerOp {
		t.Fatalf("steady-state Infer allocates %d B/op, budget %d (result %s, %s)",
			got, maxSteadyStateBytesPerOp, res.String(), res.MemString())
	}
	t.Logf("steady-state Infer: %s %s (budget %d B/op)", res.String(), res.MemString(), maxSteadyStateBytesPerOp)
}
