package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/spec"
)

// The paper deploys PMM behind torchserve and queries it over gRPC from the
// fuzzer's inference worker pool. NetServer provides the equivalent network
// boundary: length-prefixed frames over TCP (see frame.go) carrying the
// serialized test program, its traces, and the desired targets. Programs
// travel in their textual form and are parsed against the server's
// registry, so client and server only need to agree on the specification,
// not on Go types. Framing (rather than a raw gob stream) lets readers
// tolerate arbitrary TCP segmentation and lets the cluster protocol share
// the same transport layer.

// The inference protocol's frame types.
const (
	frameInferRequest  byte = 0x01
	frameInferResponse byte = 0x02
)

// NetRequest is the wire format of one localization query.
type NetRequest struct {
	ProgText string
	Traces   [][]int64
	Targets  []int64
}

// NetResponse is the wire format of one prediction.
type NetResponse struct {
	SlotCalls []int // parallel arrays (gob-friendly flat form)
	SlotIdxs  []int
	Probs     []float64
	Err       string
}

// NetServer exposes a Server over TCP.
type NetServer struct {
	srv    *Server
	target *spec.Registry
	ln     net.Listener
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ListenAndServe starts serving on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns immediately.
func ListenAndServe(srv *Server, target *spec.Registry, addr string) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{srv: srv, target: target, ln: ln}
	ns.wg.Add(1)
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the listening address.
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ns.wg.Add(1)
		go func() {
			defer ns.wg.Done()
			ns.handle(conn)
		}()
	}
}

func (ns *NetServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := ReadFrame(conn, MaxFramePayload)
		if err != nil {
			return // connection closed or corrupt framing
		}
		if typ != frameInferRequest {
			return
		}
		var req NetRequest
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
			return
		}
		resp := ns.serveOne(&req)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			return
		}
		if err := WriteFrame(conn, frameInferResponse, buf.Bytes()); err != nil {
			return
		}
	}
}

func (ns *NetServer) serveOne(req *NetRequest) *NetResponse {
	p, err := prog.Parse(ns.target, req.ProgText)
	if err != nil {
		return &NetResponse{Err: fmt.Sprintf("bad program: %v", err)}
	}
	traces := make([][]kernel.BlockID, len(req.Traces))
	for i, tr := range req.Traces {
		traces[i] = make([]kernel.BlockID, len(tr))
		for j, b := range tr {
			traces[i][j] = kernel.BlockID(b)
		}
	}
	targets := make([]kernel.BlockID, len(req.Targets))
	for i, t := range req.Targets {
		targets[i] = kernel.BlockID(t)
	}
	pred, err := ns.srv.Infer(Query{Prog: p, Traces: traces, Targets: targets})
	if err != nil {
		return &NetResponse{Err: err.Error()}
	}
	resp := &NetResponse{Probs: pred.Probs}
	for _, s := range pred.Slots {
		resp.SlotCalls = append(resp.SlotCalls, s.Call)
		resp.SlotIdxs = append(resp.SlotIdxs, s.Slot)
	}
	return resp
}

// Close stops accepting and waits for in-flight connections to drain.
func (ns *NetServer) Close() {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	ns.closed = true
	ns.mu.Unlock()
	ns.ln.Close()
	ns.wg.Wait()
}

// Client is a synchronous network client for a NetServer. It is safe for
// concurrent use (requests serialize on the connection). Responses are read
// frame-wise with io.ReadFull, so a reply split across TCP segments — or
// trickled in byte by byte — reassembles identically to a whole-frame read.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a NetServer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Infer sends one query and waits for the prediction.
func (c *Client) Infer(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) ([]prog.GlobalSlot, []float64, error) {
	return c.InferText(p.Serialize(), traces, targets)
}

// InferText is Infer for an already-serialized program.
func (c *Client) InferText(progText string, traces [][]kernel.BlockID, targets []kernel.BlockID) ([]prog.GlobalSlot, []float64, error) {
	req := NetRequest{ProgText: progText}
	for _, tr := range traces {
		row := make([]int64, len(tr))
		for j, b := range tr {
			row[j] = int64(b)
		}
		req.Traces = append(req.Traces, row)
	}
	for _, t := range targets {
		req.Targets = append(req.Targets, int64(t))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, frameInferRequest, buf.Bytes()); err != nil {
		return nil, nil, err
	}
	typ, payload, err := ReadFrame(c.conn, MaxFramePayload)
	if err != nil {
		return nil, nil, err
	}
	if typ != frameInferResponse {
		return nil, nil, fmt.Errorf("serve: unexpected frame type 0x%02x in response", typ)
	}
	var resp NetResponse
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	slots := make([]prog.GlobalSlot, len(resp.SlotCalls))
	for i := range slots {
		slots[i] = prog.GlobalSlot{Call: resp.SlotCalls[i], Slot: resp.SlotIdxs[i]}
	}
	return slots, resp.Probs, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
