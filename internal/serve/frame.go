package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire framing shared by the inference protocol (net.go) and the cluster
// protocol (internal/cluster): every message is one length-prefixed frame,
//
//	[4-byte big-endian payload length][1-byte frame type][payload]
//
// written with a single Write call and read with io.ReadFull, so readers
// tolerate arbitrary TCP segmentation — a frame split across segments (or
// delivered byte by byte) reassembles identically. A declared length above
// the reader's limit fails fast with ErrFrameTooLarge before any
// allocation, and a connection that dies mid-frame surfaces
// ErrFrameTruncated rather than a misparse of the next frame.

// frameHeaderSize is the fixed frame prefix: payload length plus type byte.
const frameHeaderSize = 5

// MaxFramePayload is the default per-frame payload bound of ReadFrame
// callers in this package. Inference requests are small; the bound exists
// so a corrupt or hostile length prefix cannot trigger a huge allocation.
const MaxFramePayload = 16 << 20

// Framing errors. ErrFrameTooLarge rejects a declared payload length above
// the reader's limit; ErrFrameTruncated reports a connection that closed
// mid-frame (distinct from io.EOF, which ReadFrame returns only on a clean
// close between frames).
var (
	ErrFrameTooLarge  = errors.New("serve: frame payload exceeds size limit")
	ErrFrameTruncated = errors.New("serve: truncated frame")
)

// WriteFrame writes one frame as a single Write call (header and payload in
// one buffer), so a frame is never interleaved with a concurrent writer's
// frame at the syscall boundary.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = typ
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, tolerating short reads: both the header and
// the payload are assembled with io.ReadFull, so the frame may arrive in
// any number of TCP segments. maxPayload bounds the declared payload length
// (<=0 uses MaxFramePayload). A clean connection close between frames
// returns io.EOF; a close inside a frame returns ErrFrameTruncated.
func ReadFrame(r io.Reader, maxPayload int) (byte, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = MaxFramePayload
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrFrameTruncated
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > uint32(maxPayload) {
		return 0, nil, fmt.Errorf("%w: %d bytes declared, limit %d", ErrFrameTooLarge, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrFrameTruncated
		}
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
