package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Tenant-spec codec and flag parsing. A TenantSpec is the serializable
// description of a shared server's tenancy — worker-pool bounds plus one
// TenantConfig per tenant — built from the -tenants/-tenant-weight/-quota/
// -min-workers/-max-workers flag surface, recorded in benchmark artifacts,
// and checked by FuzzTenantConfig: DecodeTenantSpec accepts exactly the
// canonical encodings of valid specs (reject-invalid), and decode∘encode is
// the identity on everything it accepts, mirroring the cluster wire codec's
// contract.

// TenantSpec describes a shared server's tenancy.
type TenantSpec struct {
	// MinWorkers/MaxWorkers bound the autoscaling pool (Options
	// equivalents; 0 defers to the server's Workers).
	MinWorkers int
	MaxWorkers int
	// Tenants lists the tenant configs, in registration order.
	Tenants []TenantConfig
}

// MaxSpecTenants bounds how many tenants one spec (and one server) may
// declare.
const MaxSpecTenants = 4096

// maxSpecWorkers bounds the declared worker-pool size.
const maxSpecWorkers = 1 << 16

// ErrBadSpecEncoding reports a malformed or non-canonical spec encoding.
var ErrBadSpecEncoding = errors.New("serve: bad tenant spec encoding")

// Validate checks pool bounds, the tenant count, every tenant config, and
// name uniqueness.
func (sp TenantSpec) Validate() error {
	if sp.MinWorkers < 0 || sp.MaxWorkers < 0 ||
		sp.MinWorkers > maxSpecWorkers || sp.MaxWorkers > maxSpecWorkers {
		return fmt.Errorf("%w: worker bounds [%d, %d] out of range", ErrBadTenantConfig, sp.MinWorkers, sp.MaxWorkers)
	}
	if sp.MaxWorkers > 0 && sp.MinWorkers > sp.MaxWorkers {
		return fmt.Errorf("%w: min workers %d > max workers %d", ErrBadTenantConfig, sp.MinWorkers, sp.MaxWorkers)
	}
	if len(sp.Tenants) == 0 {
		return fmt.Errorf("%w: no tenants", ErrBadTenantConfig)
	}
	if len(sp.Tenants) > MaxSpecTenants {
		return fmt.Errorf("%w: %d tenants over the %d cap", ErrBadTenantConfig, len(sp.Tenants), MaxSpecTenants)
	}
	seen := make(map[string]bool, len(sp.Tenants))
	for _, t := range sp.Tenants {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("%w: duplicate tenant %q", ErrBadTenantConfig, t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// specMagic versions the encoding: "sptn" + format 1.
var specMagic = [5]byte{'s', 'p', 't', 'n', 1}

// EncodeTenantSpec canonically serializes a spec (little-endian, fixed
// field order). It does not validate; encode garbage and DecodeTenantSpec
// will refuse it.
func EncodeTenantSpec(sp TenantSpec) []byte {
	b := make([]byte, 0, 64+32*len(sp.Tenants))
	b = append(b, specMagic[:]...)
	u := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u(uint64(int64(sp.MinWorkers)))
	u(uint64(int64(sp.MaxWorkers)))
	u(uint64(len(sp.Tenants)))
	for _, t := range sp.Tenants {
		u(uint64(len(t.Name)))
		b = append(b, t.Name...)
		u(uint64(int64(t.Weight)))
		u(uint64(int64(t.Quota)))
		u(uint64(int64(t.QueueSize)))
		b = append(b, byte(t.Priority))
	}
	return b
}

// DecodeTenantSpec parses and validates a canonical spec encoding. Any
// truncation, trailing bytes, or field that TenantSpec.Validate refuses is
// an error.
func DecodeTenantSpec(data []byte) (TenantSpec, error) {
	var sp TenantSpec
	if len(data) < len(specMagic) || string(data[:len(specMagic)]) != string(specMagic[:]) {
		return sp, fmt.Errorf("%w: missing magic", ErrBadSpecEncoding)
	}
	off := len(specMagic)
	fail := func(what string) (TenantSpec, error) {
		return TenantSpec{}, fmt.Errorf("%w: %s", ErrBadSpecEncoding, what)
	}
	u := func() (uint64, bool) {
		if len(data)-off < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, true
	}
	iv := func() (int, bool) {
		// Out-of-range values round-trip into negatives or absurd sizes
		// that Validate refuses below.
		v, ok := u()
		return int(int64(v)), ok
	}
	var ok bool
	if sp.MinWorkers, ok = iv(); !ok {
		return fail("truncated min workers")
	}
	if sp.MaxWorkers, ok = iv(); !ok {
		return fail("truncated max workers")
	}
	n, ok := u()
	if !ok {
		return fail("truncated tenant count")
	}
	if n == 0 || n > MaxSpecTenants {
		return fail("tenant count out of range")
	}
	sp.Tenants = make([]TenantConfig, 0, n)
	for i := uint64(0); i < n; i++ {
		var t TenantConfig
		nameLen, ok := u()
		if !ok || nameLen > MaxTenantName || uint64(len(data)-off) < nameLen {
			return fail("bad tenant name length")
		}
		t.Name = string(data[off : off+int(nameLen)])
		off += int(nameLen)
		if t.Weight, ok = iv(); !ok {
			return fail("truncated weight")
		}
		if t.Quota, ok = iv(); !ok {
			return fail("truncated quota")
		}
		if t.QueueSize, ok = iv(); !ok {
			return fail("truncated queue size")
		}
		if off >= len(data) {
			return fail("truncated priority")
		}
		t.Priority = Priority(data[off])
		off++
		sp.Tenants = append(sp.Tenants, t)
	}
	if off != len(data) {
		return fail("trailing bytes")
	}
	if err := sp.Validate(); err != nil {
		return TenantSpec{}, err
	}
	return sp, nil
}

// ParseTenantSpec builds a validated spec from the command-line surface:
// n tenants named t0..t{n-1}, weights taken from the comma-separated list
// (an empty list is all-1s; a short list repeats its last value), and one
// shared quota and worker-pool bound applied to every tenant.
func ParseTenantSpec(n int, weightCSV string, quota, minWorkers, maxWorkers int) (TenantSpec, error) {
	if n <= 0 {
		return TenantSpec{}, fmt.Errorf("%w: tenant count %d", ErrBadTenantConfig, n)
	}
	var weights []int
	if strings.TrimSpace(weightCSV) != "" {
		for _, f := range strings.Split(weightCSV, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return TenantSpec{}, fmt.Errorf("%w: weight %q", ErrBadTenantConfig, f)
			}
			weights = append(weights, w)
		}
	}
	sp := TenantSpec{MinWorkers: minWorkers, MaxWorkers: maxWorkers}
	for i := 0; i < n; i++ {
		w := 1
		if len(weights) > 0 {
			if i < len(weights) {
				w = weights[i]
			} else {
				w = weights[len(weights)-1]
			}
		}
		sp.Tenants = append(sp.Tenants, TenantConfig{
			Name:   "t" + strconv.Itoa(i),
			Weight: w,
			Quota:  quota,
		})
	}
	if err := sp.Validate(); err != nil {
		return TenantSpec{}, err
	}
	return sp, nil
}
