package serve

import (
	"bytes"
	"testing"
)

// FuzzTenantConfig checks the tenant-spec codec's two contracts, mirroring
// the cluster wire codec's FuzzClusterCodec: DecodeTenantSpec accepts only
// encodings that validate (reject-invalid — arbitrary bytes must error, not
// yield an out-of-range spec), and on everything it accepts, encode∘decode
// is the identity (the encoding is canonical).
func FuzzTenantConfig(f *testing.F) {
	seeds := []TenantSpec{
		{Tenants: []TenantConfig{{Name: "default", Weight: 1, Quota: 1 << 20, QueueSize: 64}}},
		{MinWorkers: 1, MaxWorkers: 8, Tenants: []TenantConfig{
			{Name: "t0", Weight: 3, Quota: 16, QueueSize: 8},
			{Name: "t1", Weight: 1, Priority: PriorityDirected},
		}},
		{MaxWorkers: 16, Tenants: []TenantConfig{{Name: "worker0"}, {Name: "worker1"}, {Name: "worker2"}}},
	}
	for _, sp := range seeds {
		f.Add(EncodeTenantSpec(sp))
	}
	f.Add([]byte{})
	f.Add([]byte("sptn"))
	f.Add(append([]byte{'s', 'p', 't', 'n', 1}, make([]byte, 24)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeTenantSpec(data)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("decoded spec fails validation: %v (%+v)", err, sp)
		}
		re := EncodeTenantSpec(sp)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode∘encode not identity:\n in: %x\nout: %x", data, re)
		}
		sp2, err := DecodeTenantSpec(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(EncodeTenantSpec(sp2), re) {
			t.Fatal("second round trip diverged")
		}
	})
}
